#include <gtest/gtest.h>

#include "nexus/task/task.hpp"
#include "nexus/task/trace.hpp"
#include "nexus/task/trace_stats.hpp"

namespace nexus {
namespace {

ParamList params1(Addr a, Dir d) { return ParamList{Param{a, d}}; }

TEST(Task, ValidateAcceptsWellFormed) {
  TaskDescriptor t;
  t.id = 0;
  t.duration = us(5);
  t.params.push_back({0x1000, Dir::kIn});
  t.params.push_back({0x2000, Dir::kInOut});
  EXPECT_TRUE(validate_task(t));
}

TEST(Task, ValidateRejectsNoParams) {
  TaskDescriptor t;
  t.duration = us(1);
  EXPECT_FALSE(validate_task(t));
}

TEST(Task, ValidateRejectsDuplicateAddress) {
  TaskDescriptor t;
  t.duration = us(1);
  t.params.push_back({0x1000, Dir::kIn});
  t.params.push_back({0x1000, Dir::kOut});
  EXPECT_FALSE(validate_task(t));
}

TEST(Task, ValidateRejectsOverwideAddress) {
  TaskDescriptor t;
  t.duration = us(1);
  t.params.push_back({1ULL << 50, Dir::kIn});  // beyond 48 bits
  EXPECT_FALSE(validate_task(t));
}

TEST(Task, DirPredicates) {
  EXPECT_FALSE(is_write(Dir::kIn));
  EXPECT_TRUE(is_write(Dir::kOut));
  EXPECT_TRUE(is_write(Dir::kInOut));
}

TEST(Trace, SubmitAssignsDenseIds) {
  Trace tr("t");
  EXPECT_EQ(tr.submit(1, us(1), params1(0x10, Dir::kOut)), 0u);
  EXPECT_EQ(tr.submit(1, us(2), params1(0x20, Dir::kOut)), 1u);
  EXPECT_EQ(tr.num_tasks(), 2u);
  EXPECT_EQ(tr.total_work(), us(3));
}

TEST(Trace, ValidatePassesForWellFormed) {
  Trace tr("t");
  tr.submit(0, us(1), params1(0x10, Dir::kOut));
  tr.taskwait_on(0x10);
  tr.taskwait();
  std::string err;
  EXPECT_TRUE(tr.validate(&err)) << err;
}

TEST(Trace, ValidateFlagsUnwrittenTaskwaitOn) {
  Trace tr("t");
  tr.submit(0, us(1), params1(0x10, Dir::kIn));
  tr.taskwait_on(0x999);
  EXPECT_FALSE(tr.validate());
}

TEST(TraceStats, ComputesTableIIColumns) {
  Trace tr("mini");
  // 3 tasks: durations 2us, 4us, 6us; params 1, 2, 2.
  tr.submit(0, us(2), params1(0x100, Dir::kOut));
  {
    ParamList p;
    p.push_back({0x100, Dir::kIn});
    p.push_back({0x200, Dir::kOut});
    tr.submit(0, us(4), p);
  }
  {
    ParamList p;
    p.push_back({0x200, Dir::kIn});
    p.push_back({0x300, Dir::kOut});
    tr.submit(0, us(6), p);
  }
  tr.taskwait();
  const TraceStats s = compute_stats(tr);
  EXPECT_EQ(s.num_tasks, 3u);
  EXPECT_EQ(s.total_work, us(12));
  EXPECT_EQ(s.avg_task, us(4));
  EXPECT_EQ(s.min_params, 1u);
  EXPECT_EQ(s.max_params, 2u);
  EXPECT_EQ(s.num_taskwaits, 1u);
  EXPECT_EQ(s.num_taskwait_ons, 0u);
  EXPECT_EQ(s.distinct_addresses, 3u);
  EXPECT_EQ(s.params_histogram[1], 1u);
  EXPECT_EQ(s.params_histogram[2], 2u);
}

}  // namespace
}  // namespace nexus
