// nexus-perfdiff library tests: the strict JSON reader, BENCH record
// parsing (schema 1 and 2, malformed inputs rejected), and the comparator
// on fixture records — identical records pass, a doctored makespan or
// conflict burst regresses, an improvement passes.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "nexus/harness/perfdiff.hpp"
#include "nexus/telemetry/json.hpp"

namespace nexus {
namespace {

using harness::BenchRecord;
using harness::parse_bench_records;
using harness::PerfdiffOptions;
using harness::PerfdiffResult;
using telemetry::JsonValue;

// ---------- JSON reader ----------

TEST(JsonParse, ScalarsArraysAndNestedObjects) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(telemetry::json_parse(
      R"({"a": 1, "b": -2.5, "c": [true, false, null], "d": {"e": "hi\n"}})",
      &v, &error))
      << error;
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("a")->int_or(0), 1);
  EXPECT_TRUE(v.find("a")->is_integer);
  EXPECT_DOUBLE_EQ(v.find("b")->num_or(0), -2.5);
  EXPECT_FALSE(v.find("b")->is_integer);
  ASSERT_EQ(v.find("c")->array.size(), 3u);
  EXPECT_TRUE(v.find("c")->array[0].boolean);
  EXPECT_EQ(v.find("c")->array[2].type, JsonValue::Type::kNull);
  EXPECT_EQ(v.find("d")->find("e")->str, "hi\n");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, KeepsLargeIntegersExact) {
  // 2^53 + 1 is not representable in a double; the reader must keep it.
  JsonValue v;
  ASSERT_TRUE(telemetry::json_parse("9007199254740993", &v, nullptr));
  EXPECT_TRUE(v.is_integer);
  EXPECT_EQ(v.integer, 9007199254740993LL);
}

TEST(JsonParse, IntOrSaturatesOutOfRangeDoubles) {
  // Regression: the float->int64 cast on a 1e23 "makespan" was UB and
  // wrapped negative, turning an absurd regression into an "improvement".
  JsonValue v;
  ASSERT_TRUE(telemetry::json_parse("1e23", &v, nullptr));
  EXPECT_FALSE(v.is_integer);
  EXPECT_EQ(v.int_or(0), INT64_MAX);
  ASSERT_TRUE(telemetry::json_parse("-1e23", &v, nullptr));
  EXPECT_EQ(v.int_or(0), INT64_MIN);
}

TEST(JsonParse, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",           "{",        "[1,]",       "{\"a\":}",  "{\"a\" 1}",
      "[1] trailing", "\"unterminated", "{\"a\":1,}", "nul",     "01x",
      "{\"a\": \x01\"b\"}", "\"\\ud83d\\ude00\"", "\"\\udc00\"",
  };
  for (const char* text : bad) {
    JsonValue v;
    std::string error;
    EXPECT_FALSE(telemetry::json_parse(text, &v, &error)) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(JsonParse, RejectsOverDeepNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  JsonValue v;
  std::string error;
  EXPECT_FALSE(telemetry::json_parse(deep, &v, &error));
}

// ---------- record parsing ----------

const char* kRecord = R"([
{"schema":2,"bench":"table2","workload":"c-ray","manager":"nexus#","cores":32,
 "makespan":1000000,"speedup":31.4,
 "metrics":{"nexus#/arbiter/conflicts":40,"runtime/tasks":100,
            "nexus#/pool/occupancy":{"count":10,"sum":50,"min":1,"max":9,"mean":5.0}},
 "timeline":{"interval_ps":10,"points":1,"encoding":"delta","t":[0],
             "series":{"m":{"kind":"counter","v":[1]}}}}
])";

TEST(BenchRecords, ParsesSchema2WithFlattenedHistograms) {
  std::vector<BenchRecord> recs;
  std::string error;
  ASSERT_TRUE(parse_bench_records(kRecord, &recs, &error)) << error;
  ASSERT_EQ(recs.size(), 1u);
  const BenchRecord& r = recs[0];
  EXPECT_EQ(r.schema, 2);
  // No "topology" field => ideal, so pre-NoC baselines join against ideal
  // candidates.
  EXPECT_EQ(r.topology, "ideal");
  EXPECT_EQ(r.key(), "table2|c-ray|nexus#|ideal|32");
  EXPECT_EQ(r.makespan, 1000000);
  EXPECT_DOUBLE_EQ(r.speedup, 31.4);
  EXPECT_DOUBLE_EQ(r.metric_sum("*/arbiter/conflicts"), 40.0);
  EXPECT_DOUBLE_EQ(r.metric_sum("nexus#/pool/occupancy:count"), 10.0);
  EXPECT_DOUBLE_EQ(r.metric_sum("nexus#/pool/occupancy:mean"), 5.0);
  EXPECT_DOUBLE_EQ(r.tasks(), 100.0);
}

TEST(BenchRecords, TopologyFieldJoinsSeparately) {
  std::vector<BenchRecord> recs;
  std::string error;
  ASSERT_TRUE(parse_bench_records(
      R"([{"schema":2,"bench":"ablation_topology","workload":"h264dec-8x8-10f",
           "manager":"nexus#-6TG@55.56MHz","topology":"mesh","cores":8,
           "makespan":5,"speedup":1.0,"metrics":{}}])",
      &recs, &error))
      << error;
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].topology, "mesh");
  EXPECT_EQ(recs[0].key(),
            "ablation_topology|h264dec-8x8-10f|nexus#-6TG@55.56MHz|mesh|8");
}

TEST(BenchRecords, SchemalessRecordsAreSchema1) {
  std::vector<BenchRecord> recs;
  std::string error;
  ASSERT_TRUE(parse_bench_records(
      R"({"bench":"b","workload":"w","manager":"m","cores":1,"makespan":5,
          "speedup":1.0,"metrics":{}})",
      &recs, &error))
      << error;
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].schema, 1);
  EXPECT_DOUBLE_EQ(recs[0].tasks(), 1.0);  // no runtime/tasks -> unit divisor
}

TEST(BenchRecords, RejectsUnknownSchemaAndMalformedInput) {
  std::vector<BenchRecord> recs;
  std::string error;
  EXPECT_FALSE(parse_bench_records(
      R"([{"schema":99,"bench":"b","makespan":1}])", &recs, &error));
  EXPECT_NE(error.find("schema"), std::string::npos);

  EXPECT_FALSE(parse_bench_records("[{", &recs, &error));
  EXPECT_FALSE(parse_bench_records("42", &recs, &error));
  EXPECT_FALSE(parse_bench_records(R"([{"workload":"no-bench-field"}])",
                                   &recs, &error));
  EXPECT_FALSE(parse_bench_records(
      R"([{"bench":"b","workload":"w","manager":"m","cores":1}])", &recs,
      &error));  // missing makespan
}

// ---------- comparator ----------

BenchRecord fixture(std::int64_t makespan, double conflicts,
                    const std::string& workload = "w") {
  BenchRecord r;
  r.schema = 2;
  r.bench = "table2";
  r.workload = workload;
  r.manager = "nexus#";
  r.cores = 32;
  r.makespan = makespan;
  r.speedup = 1.0;
  r.metrics = {{"nexus#/arbiter/conflicts", conflicts},
               {"runtime/tasks", 100.0}};
  return r;
}

TEST(Perfdiff, IdenticalRecordsPass) {
  const std::vector<BenchRecord> recs{fixture(1000, 40), fixture(2000, 0, "x")};
  const PerfdiffResult res = harness::perfdiff_compare(recs, recs);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.compared, 2);
  EXPECT_EQ(res.regressions, 0);
  EXPECT_NE(res.report.find("0 regression(s)"), std::string::npos);
}

TEST(Perfdiff, MakespanRegressionDetected) {
  const std::vector<BenchRecord> base{fixture(1000, 40)};
  const std::vector<BenchRecord> cand{fixture(1100, 40)};  // +10% > 2% limit
  const PerfdiffResult res = harness::perfdiff_compare(base, cand);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.regressions, 1);
  EXPECT_NE(res.report.find("REGRESS"), std::string::npos);
  EXPECT_NE(res.report.find("makespan"), std::string::npos);
}

TEST(Perfdiff, ImprovementPassesAndIsCounted) {
  const std::vector<BenchRecord> base{fixture(1000, 40)};
  const std::vector<BenchRecord> cand{fixture(900, 40)};  // -10%
  const PerfdiffResult res = harness::perfdiff_compare(base, cand);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.improvements, 1);
  EXPECT_NE(res.report.find("faster"), std::string::npos);
  // One line per record: an improved record must not also print [ok].
  EXPECT_EQ(res.report.find("[ok]"), std::string::npos);
}

TEST(Perfdiff, MetricRateRegressionDetectedEvenWithEqualMakespan) {
  const std::vector<BenchRecord> base{fixture(1000, 40)};
  const std::vector<BenchRecord> cand{fixture(1000, 80)};  // conflict rate x2
  const PerfdiffResult res = harness::perfdiff_compare(base, cand);
  EXPECT_FALSE(res.ok());
  EXPECT_NE(res.report.find("conflict_rate"), std::string::npos);

  // Within tolerance passes: +5% < 10% limit.
  const std::vector<BenchRecord> mild{fixture(1000, 42)};
  EXPECT_TRUE(harness::perfdiff_compare(base, mild).ok());
}

TEST(Perfdiff, DefaultWatchedGlobsReachBothManagerLayouts) {
  // Nexus++ nests the watched counters one level deep, Nexus# two or three;
  // the default globs must reach every layout or the gate is silently dead.
  BenchRecord r;
  r.metrics = {{"nexus++/dep_counts/parked", 1.0},
               {"nexus#/arbiter/dep_counts/parked", 2.0},
               {"nexus++/table/stalls", 4.0},
               {"nexus#/tg0/table/stalls", 8.0},
               {"nexus#/tg11/table/stalls", 16.0},
               {"nexus#/arbiter/conflicts", 32.0},
               {"nexus#/arbiter/retries", 64.0}};
  auto rate_glob = [](const std::string& name) {
    for (const auto& w : harness::default_watched_rates())
      if (w.name == name) return w.numerator;
    return std::string();
  };
  EXPECT_DOUBLE_EQ(r.metric_sum(rate_glob("park_rate")), 3.0);
  EXPECT_DOUBLE_EQ(r.metric_sum(rate_glob("table_stall_rate")), 28.0);
  EXPECT_DOUBLE_EQ(r.metric_sum(rate_glob("conflict_rate")), 32.0);
  EXPECT_DOUBLE_EQ(r.metric_sum(rate_glob("retry_rate")), 64.0);
}

BenchRecord simspeed_fixture(double events_per_sec) {
  BenchRecord r;
  r.schema = 2;
  r.bench = "simspeed";
  r.workload = "storm-1000000";
  r.manager = "kernel-calendar";
  r.cores = 1;
  r.makespan = 25970;
  r.speedup = 4.0;
  r.metrics = {{"simspeed/events_per_sec", events_per_sec},
               {"simspeed/wall_us", 1e6}};
  return r;
}

TEST(Perfdiff, HigherIsBetterRateRegressesOnCollapseOnly) {
  // Throughput gauges gate in the opposite direction: shrinking past the
  // (generous, wall-clock) tolerance fails, growth never does, and a
  // machine-noise slowdown within the band passes.
  const std::vector<BenchRecord> base{simspeed_fixture(4e6)};
  // -50%: inside the 75% band — machines differ, not a regression.
  EXPECT_TRUE(harness::perfdiff_compare(base, {simspeed_fixture(2e6)}).ok());
  // +300%: faster is always fine.
  EXPECT_TRUE(harness::perfdiff_compare(base, {simspeed_fixture(16e6)}).ok());
  // -95%: the calendar queue collapsed to below a quarter of the baseline.
  const PerfdiffResult res =
      harness::perfdiff_compare(base, {simspeed_fixture(2e5)});
  EXPECT_FALSE(res.ok());
  EXPECT_NE(res.report.find("sim_events_per_sec"), std::string::npos);
  EXPECT_NE(res.report.find("limit -75.0%"), std::string::npos);
}

TEST(Perfdiff, PerRateToleranceOverridesTheGlobalDefault) {
  // The same -50% shrink fails once the per-rate band is tightened; an
  // overhead-direction rate with a wide override tolerates what the global
  // 10% default would flag.
  const std::vector<BenchRecord> base{simspeed_fixture(4e6)};
  PerfdiffOptions opts;
  opts.watched = {{"sim_events_per_sec", "simspeed/events_per_sec", true, 25.0}};
  EXPECT_FALSE(harness::perfdiff_compare(base, {simspeed_fixture(2e6)}, opts).ok());

  const std::vector<BenchRecord> cbase{fixture(1000, 40)};
  const std::vector<BenchRecord> ccand{fixture(1000, 55)};  // +37.5%
  EXPECT_FALSE(harness::perfdiff_compare(cbase, ccand).ok());
  PerfdiffOptions wide;
  wide.watched = {{"conflict_rate", "**/arbiter/conflicts", false, 50.0}};
  EXPECT_TRUE(harness::perfdiff_compare(cbase, ccand, wide).ok());
}

TEST(Perfdiff, ZeroBaselineRateFlagsNewConflicts) {
  const std::vector<BenchRecord> base{fixture(1000, 0)};
  const std::vector<BenchRecord> cand{fixture(1000, 3)};
  const PerfdiffResult res = harness::perfdiff_compare(base, cand);
  EXPECT_FALSE(res.ok());
  EXPECT_NE(res.report.find("was zero"), std::string::npos);
}

TEST(Perfdiff, AddedAndRemovedRecordsAreReportedNotFailed) {
  const std::vector<BenchRecord> base{fixture(1000, 40, "only-in-base")};
  const std::vector<BenchRecord> cand{fixture(1000, 40, "only-in-cand")};
  const PerfdiffResult res = harness::perfdiff_compare(base, cand);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.compared, 0);
  EXPECT_EQ(res.added, 1);
  EXPECT_EQ(res.removed, 1);
}

TEST(Perfdiff, PlacementIsPartOfTheJoinKey) {
  // A default-layout baseline must not be compared against an optimized
  // candidate of the same bench/workload/manager/topology/cores — they are
  // different configurations, so the optimized row is "new", never a
  // regression even when slower.
  BenchRecord def = fixture(1000, 40);
  BenchRecord opt = fixture(5000, 40);
  opt.placement = "optimized";
  const PerfdiffResult res =
      harness::perfdiff_compare({def}, {def, opt});
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.compared, 1);
  EXPECT_EQ(res.added, 1);
  EXPECT_NE(res.report.find("not a regression"), std::string::npos);

  // Same placement on both sides joins (and here regresses on makespan).
  BenchRecord opt_base = opt;
  opt_base.makespan = 1000;
  EXPECT_FALSE(harness::perfdiff_compare({opt_base}, {opt}).ok());
}

TEST(Perfdiff, PlacementFieldRoundTripsAndDefaultsWhenAbsent) {
  std::vector<BenchRecord> recs;
  std::string error;
  const std::string doc =
      "[" +
      std::string(
          R"({"schema":2,"bench":"ablation_placement","workload":"h264dec-8x8-10f","manager":"nexus#-8TG","topology":"torus","placement":"optimized","cores":16,"makespan":7000,"speedup":1.0,"metrics":{}},)") +
      std::string(
          R"({"schema":2,"bench":"ablation_placement","workload":"h264dec-8x8-10f","manager":"nexus#-8TG","topology":"torus","cores":16,"makespan":7000,"speedup":1.0,"metrics":{}})") +
      "]";
  ASSERT_TRUE(parse_bench_records(doc, &recs, &error)) << error;
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].placement, "optimized");
  EXPECT_EQ(recs[1].placement, "default");
  EXPECT_NE(recs[0].key(), recs[1].key());
}

TEST(Perfdiff, ThresholdsAreConfigurable) {
  const std::vector<BenchRecord> base{fixture(1000, 40)};
  const std::vector<BenchRecord> cand{fixture(1100, 40)};
  PerfdiffOptions loose;
  loose.makespan_tolerance_pct = 15.0;
  EXPECT_TRUE(harness::perfdiff_compare(base, cand, loose).ok());
  PerfdiffOptions tight;
  tight.makespan_tolerance_pct = 0.5;
  EXPECT_FALSE(harness::perfdiff_compare(base, cand, tight).ok());
}

TEST(Perfdiff, QuietSuppressesOkLinesButKeepsSummary) {
  const std::vector<BenchRecord> recs{fixture(1000, 40)};
  PerfdiffOptions quiet;
  quiet.quiet = true;
  const PerfdiffResult res = harness::perfdiff_compare(recs, recs, quiet);
  EXPECT_EQ(res.report.find("[ok]"), std::string::npos);
  EXPECT_NE(res.report.find("perfdiff:"), std::string::npos);
}

// End-to-end over the real serializer: a record written by
// metrics_report_json must round-trip through parse_bench_records.
TEST(Perfdiff, RoundTripsRealReportRecords) {
  std::vector<BenchRecord> recs;
  std::string error;
  const std::string doc =
      "[" +
      std::string(
          R"({"schema":2,"bench":"fig9","workload":"gaussian-250","manager":"nexus#-2TG@100MHz","cores":8,"makespan":70761000000,"speedup":1.1,"metrics":{"runtime/tasks":31374}})") +
      "]";
  ASSERT_TRUE(parse_bench_records(doc, &recs, &error)) << error;
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].makespan, 70761000000LL);
  const PerfdiffResult res = harness::perfdiff_compare(recs, recs);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.compared, 1);
}

// ---------- --timelines mode ----------

/// Fixture with an attached two-series timeline (a counter and a gauge).
BenchRecord timeline_fixture(std::vector<std::int64_t> counter_v,
                             std::vector<std::int64_t> gauge_v) {
  BenchRecord r = fixture(1000, 40);
  r.has_timeline = true;
  r.timeline.interval = 10;
  r.timeline.t = {0, 10, 20, 30};
  r.timeline.series.push_back(
      {"nexus#/finishes", telemetry::MetricKind::kCounter,
       std::move(counter_v)});
  r.timeline.series.push_back(
      {"nexus#/pool/occupancy", telemetry::MetricKind::kGauge,
       std::move(gauge_v)});
  return r;
}

TEST(PerfdiffTimelines, ParsesDeltaEncodedTimelineFromRecord) {
  // The on-disk form delta-encodes the t axis and counter-kind series;
  // the parser must undo both and leave gauges raw.
  std::vector<BenchRecord> recs;
  std::string error;
  ASSERT_TRUE(parse_bench_records(
      R"([{"schema":3,"bench":"b","workload":"w","manager":"m","cores":1,
           "makespan":5,"speedup":1.0,"metrics":{},
           "timeline":{"interval_ps":10,"points":3,"encoding":"delta",
                       "t":[0,10,10],
                       "series":{"cnt":{"kind":"counter","v":[1,2,3]},
                                 "gau":{"kind":"gauge","v":[5,-2,7]}}}}])",
      &recs, &error))
      << error;
  ASSERT_EQ(recs.size(), 1u);
  ASSERT_TRUE(recs[0].has_timeline);
  const telemetry::Timeline& tl = recs[0].timeline;
  EXPECT_EQ(tl.interval, 10);
  EXPECT_EQ(tl.t, (std::vector<telemetry::TimeTick>{0, 10, 20}));
  const telemetry::TimelineSeries* cnt = tl.find("cnt");
  ASSERT_NE(cnt, nullptr);
  EXPECT_EQ(cnt->v, (std::vector<std::int64_t>{1, 3, 6}));  // decoded
  const telemetry::TimelineSeries* gau = tl.find("gau");
  ASSERT_NE(gau, nullptr);
  EXPECT_EQ(gau->v, (std::vector<std::int64_t>{5, -2, 7}));  // raw
}

TEST(PerfdiffTimelines, SkippedByDefaultComparedWhenEnabled) {
  const std::vector<BenchRecord> base{timeline_fixture({0, 1, 2, 3},
                                                       {4, 4, 4, 4})};
  const std::vector<BenchRecord> cand{timeline_fixture({0, 1, 2, 9},
                                                       {4, 4, 4, 4})};
  // Default: timelines describe *when*, not *how much* — no gate.
  EXPECT_TRUE(harness::perfdiff_compare(base, cand).ok());
  PerfdiffOptions opts;
  opts.compare_timelines = true;
  const PerfdiffResult res = harness::perfdiff_compare(base, cand, opts);
  EXPECT_FALSE(res.ok());
  EXPECT_NE(res.report.find("nexus#/finishes"), std::string::npos);
  EXPECT_NE(res.report.find("first diverges at t="), std::string::npos);
}

TEST(PerfdiffTimelines, IdenticalTimelinesPassExactly) {
  const std::vector<BenchRecord> recs{timeline_fixture({0, 1, 2, 3},
                                                       {4, 5, 6, 7})};
  PerfdiffOptions opts;
  opts.compare_timelines = true;  // default tolerance: exact
  EXPECT_TRUE(harness::perfdiff_compare(recs, recs, opts).ok());
}

TEST(PerfdiffTimelines, ReportsFirstDivergenceSimTime) {
  // Divergence at rows 2 and 3; only the first (t=20 ps) is reported.
  const std::vector<BenchRecord> base{timeline_fixture({0, 1, 2, 3},
                                                       {4, 4, 4, 4})};
  const std::vector<BenchRecord> cand{timeline_fixture({0, 1, 5, 9},
                                                       {4, 4, 4, 4})};
  PerfdiffOptions opts;
  opts.compare_timelines = true;
  const PerfdiffResult res = harness::perfdiff_compare(base, cand, opts);
  EXPECT_FALSE(res.ok());
  EXPECT_NE(res.report.find("2 -> 5"), std::string::npos) << res.report;
  EXPECT_EQ(res.report.find("3 -> 9"), std::string::npos) << res.report;
}

TEST(PerfdiffTimelines, PerSeriesToleranceFirstGlobWins) {
  const std::vector<BenchRecord> base{timeline_fixture({0, 100, 200, 300},
                                                       {4, 4, 4, 4})};
  const std::vector<BenchRecord> cand{timeline_fixture({0, 104, 208, 312},
                                                       {4, 4, 4, 4})};
  PerfdiffOptions opts;
  opts.compare_timelines = true;
  // Global default stays exact, but the finish-flow series tolerates 5%.
  opts.timeline_tolerances = {{"nexus#/finishes", 5.0}};
  EXPECT_TRUE(harness::perfdiff_compare(base, cand, opts).ok());
  // First match wins: a preceding stricter glob overrides the loose one.
  opts.timeline_tolerances = {{"nexus#/*", 0.0}, {"nexus#/finishes", 5.0}};
  EXPECT_FALSE(harness::perfdiff_compare(base, cand, opts).ok());
}

TEST(PerfdiffTimelines, LostTimelineOrSeriesIsARegression) {
  const BenchRecord with = timeline_fixture({0, 1, 2, 3}, {4, 4, 4, 4});
  BenchRecord without = fixture(1000, 40);
  PerfdiffOptions opts;
  opts.compare_timelines = true;
  // Candidate lost the whole timeline.
  const PerfdiffResult lost =
      harness::perfdiff_compare({with}, {without}, opts);
  EXPECT_FALSE(lost.ok());
  EXPECT_NE(lost.report.find("missing from candidate"), std::string::npos);
  // A candidate *gaining* a timeline is fine (new instrumentation).
  EXPECT_TRUE(harness::perfdiff_compare({without}, {with}, opts).ok());
  // Candidate lost one series.
  BenchRecord fewer = with;
  fewer.timeline.series.pop_back();
  const PerfdiffResult series =
      harness::perfdiff_compare({with}, {fewer}, opts);
  EXPECT_FALSE(series.ok());
  EXPECT_NE(series.report.find("nexus#/pool/occupancy"), std::string::npos);
}

// ---------- quantile gates ----------

/// A schema-3 serving-style record carrying the histogram quantile fields
/// the tail-latency gates watch, plus the knee gauge.
BenchRecord quantile_fixture(double p50, double p99, double p999,
                             double knee_hz = 50000.0) {
  BenchRecord r;
  r.schema = 3;
  r.bench = "ablation_serving";
  r.workload = "serving-poisson-k@knee";
  r.manager = "nexus#";
  r.cores = 32;
  r.makespan = 1000000;
  r.speedup = 1.0;
  r.metrics = {{"runtime/tasks", 100.0},
               {"runtime/sojourn_ps:p50", p50},
               {"runtime/sojourn_ps:p99", p99},
               {"runtime/sojourn_ps:p999", p999},
               {"runtime/serving_latency_ps:p50", p50},
               {"runtime/serving_latency_ps:p99", p99},
               {"runtime/serving_latency_ps:p999", p999},
               {"serving/knee_hz", knee_hz}};
  return r;
}

TEST(PerfdiffQuantiles, P99OnlyRegressionFails) {
  // The makespan and p50 are untouched — only the tail moved. This is
  // exactly the regression shape the quantile gates exist to catch.
  const std::vector<BenchRecord> base{quantile_fixture(1e6, 5e6, 9e6)};
  const std::vector<BenchRecord> cand{quantile_fixture(1e6, 7e6, 9e6)};
  const PerfdiffResult res = harness::perfdiff_compare(base, cand);
  EXPECT_FALSE(res.ok());
  EXPECT_NE(res.report.find("serving_p99"), std::string::npos);
  EXPECT_NE(res.report.find("sojourn_p99"), std::string::npos);
}

TEST(PerfdiffQuantiles, P50NoiseWithinTolerancePasses) {
  // +5% on the median is inside the 10% default band; nothing else moved.
  const std::vector<BenchRecord> base{quantile_fixture(1e6, 5e6, 9e6)};
  const std::vector<BenchRecord> cand{quantile_fixture(1.05e6, 5e6, 9e6)};
  const PerfdiffResult res = harness::perfdiff_compare(base, cand);
  EXPECT_TRUE(res.ok()) << res.report;
}

TEST(PerfdiffQuantiles, P999GetsTheWiderBand) {
  // +12% on p999 is inside its 15% band but would fail p99's 10% band —
  // the extreme tail is allowed more interpolation slack.
  const std::vector<BenchRecord> base{quantile_fixture(1e6, 5e6, 9e6)};
  const std::vector<BenchRecord> cand{quantile_fixture(1e6, 5e6, 10.1e6)};
  const PerfdiffResult res = harness::perfdiff_compare(base, cand);
  EXPECT_TRUE(res.ok()) << res.report;
}

TEST(PerfdiffQuantiles, KneeCollapseFailsGrowthPasses) {
  const std::vector<BenchRecord> base{quantile_fixture(1e6, 5e6, 9e6, 50000)};
  // Knee shrank 20% (> 10% band): a capacity regression.
  std::vector<BenchRecord> cand{quantile_fixture(1e6, 5e6, 9e6, 40000)};
  EXPECT_FALSE(harness::perfdiff_compare(base, cand).ok());
  // Knee grew 20%: higher-is-better, never a failure.
  cand = {quantile_fixture(1e6, 5e6, 9e6, 60000)};
  EXPECT_TRUE(harness::perfdiff_compare(base, cand).ok());
}

TEST(PerfdiffQuantiles, MissingQuantilesOnOldRecordsAreSkippedNotFailed) {
  // A schema-2 baseline has no quantile fields and no knee gauge. Against a
  // schema-3 candidate that carries them, every require_both gate must
  // disengage — not crash, not read absent metrics as zero and flag a
  // was-zero regression.
  const std::vector<BenchRecord> old_base{fixture(1000000, 40)};
  BenchRecord cand3 = fixture(1000000, 40);
  cand3.schema = 3;
  cand3.metrics.emplace_back("runtime/sojourn_ps:p99", 5e6);
  cand3.metrics.emplace_back("runtime/serving_latency_ps:p99", 6e6);
  cand3.metrics.emplace_back("serving/knee_hz", 50000.0);
  const PerfdiffResult res = harness::perfdiff_compare(old_base, {cand3});
  EXPECT_TRUE(res.ok()) << res.report;
  EXPECT_EQ(res.compared, 1);
  // And the reverse direction (quantile baseline, stripped candidate).
  const PerfdiffResult rev = harness::perfdiff_compare({cand3}, old_base);
  EXPECT_TRUE(rev.ok()) << rev.report;
}

TEST(PerfdiffQuantiles, HasMetricDistinguishesAbsentFromZero) {
  const BenchRecord with = quantile_fixture(0.0, 0.0, 0.0, 0.0);
  EXPECT_TRUE(with.has_metric("serving/knee_hz"));
  EXPECT_TRUE(with.has_metric("runtime/sojourn_ps:p99"));
  const BenchRecord without = fixture(1000, 0);
  EXPECT_FALSE(without.has_metric("serving/knee_hz"));
  EXPECT_FALSE(without.has_metric("runtime/*_ps:p99"));
}

// ---------- schema-4 host-time fields (report-only watches) ----------

BenchRecord host_time_fixture(double scale) {
  BenchRecord r = fixture(1000000, 40);
  r.schema = 4;
  r.metrics.emplace_back("prof/push_ns", 1.0e6 * scale);
  r.metrics.emplace_back("prof/pop_ns", 2.0e6 * scale);
  r.metrics.emplace_back("prof/handle_ns", 4.0e6 * scale);
  r.metrics.emplace_back("prof/total_ns", 9.0e6 * scale);
  return r;
}

TEST(PerfdiffHostTime, ReportOnlyFieldsEchoButNeverRegress) {
  // Host wall-clock attribution tracks the machine, not the code under
  // test: a 10x swing must be echoed as an [info] line, never counted as a
  // regression at any tolerance.
  const std::vector<BenchRecord> base{host_time_fixture(1.0)};
  const std::vector<BenchRecord> cand{host_time_fixture(10.0)};
  const PerfdiffResult res = harness::perfdiff_compare(base, cand);
  EXPECT_TRUE(res.ok()) << res.report;
  EXPECT_EQ(res.regressions, 0);
  EXPECT_NE(res.report.find("[info]"), std::string::npos);
  EXPECT_NE(res.report.find("host_pop_ns"), std::string::npos);
  EXPECT_NE(res.report.find("report-only"), std::string::npos);
  // Shrinkage is equally informational in the other direction.
  const PerfdiffResult rev = harness::perfdiff_compare(cand, base);
  EXPECT_TRUE(rev.ok()) << rev.report;
}

TEST(PerfdiffHostTime, MissingHostFieldsOnOldRecordsAreSkippedNotFailed) {
  // A schema-3 baseline carries no prof/* gauges. Against a schema-4
  // candidate that does, the require_both gate must disengage in both
  // directions — no [info] noise, no was-zero misread.
  std::vector<BenchRecord> old_base{fixture(1000000, 40)};
  old_base[0].schema = 3;
  const std::vector<BenchRecord> cand{host_time_fixture(1.0)};
  const PerfdiffResult res = harness::perfdiff_compare(old_base, cand);
  EXPECT_TRUE(res.ok()) << res.report;
  EXPECT_EQ(res.compared, 1);
  EXPECT_EQ(res.report.find("host_pop_ns"), std::string::npos);
  const PerfdiffResult rev = harness::perfdiff_compare(cand, old_base);
  EXPECT_TRUE(rev.ok()) << rev.report;
  EXPECT_EQ(rev.report.find("host_pop_ns"), std::string::npos);
}

TEST(PerfdiffHostTime, QuietSuppressesInfoLines) {
  PerfdiffOptions opts;
  opts.quiet = true;
  const PerfdiffResult res = harness::perfdiff_compare(
      {host_time_fixture(1.0)}, {host_time_fixture(10.0)}, opts);
  EXPECT_TRUE(res.ok()) << res.report;
  EXPECT_EQ(res.report.find("[info]"), std::string::npos);
}

TEST(PerfdiffTimelines, AxisMismatchDetected) {
  const BenchRecord base = timeline_fixture({0, 1, 2, 3}, {4, 4, 4, 4});
  BenchRecord cand = base;
  cand.timeline.interval = 20;  // coarsening diverged
  cand.timeline.t = {0, 20, 40, 60};
  PerfdiffOptions opts;
  opts.compare_timelines = true;
  const PerfdiffResult res = harness::perfdiff_compare({base}, {cand}, opts);
  EXPECT_FALSE(res.ok());
  EXPECT_NE(res.report.find("interval"), std::string::npos);
}

}  // namespace
}  // namespace nexus
