// Statistical and replay tests for the open-loop arrival generators:
// empirical mean rate within tolerance of the configured λ for every
// process kind, interarrival CV ≈ 1 for Poisson and materially > 1 for the
// bursty MMPP, diurnal arrivals concentrating in the rate curve's peak
// half, exact generator→JSON→reload replay equality (schedule, trace, and
// open-loop run), and identical streams across the heap/calendar event
// queue kinds. Tolerances are sized for the fixed seeds below — the
// generators are deterministic, so these are exact regression checks, not
// flaky statistical gates.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "nexus/runtime/ideal_manager.hpp"
#include "nexus/runtime/simulation_driver.hpp"
#include "nexus/sim/event_queue.hpp"
#include "nexus/workloads/arrivals.hpp"
#include "nexus/workloads/workloads.hpp"

namespace nexus {
namespace {

using workloads::ArrivalConfig;
using workloads::ArrivalProcess;
using workloads::ArrivalSchedule;

/// Interarrival gaps (including the origin->first gap, which the same
/// renewal process produced).
std::vector<double> gaps_of(const ArrivalSchedule& s) {
  std::vector<double> gaps;
  Tick prev = 0;
  for (const Tick t : s.submission.release) {
    gaps.push_back(static_cast<double>(t - prev));
    prev = t;
  }
  return gaps;
}

double mean_of(const std::vector<double>& xs) {
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

/// Coefficient of variation: stddev / mean.
double cv_of(const std::vector<double>& xs) {
  const double m = mean_of(xs);
  double var = 0.0;
  for (const double x : xs) var += (x - m) * (x - m);
  var /= static_cast<double>(xs.size());
  return std::sqrt(var) / m;
}

ArrivalConfig stats_config(ArrivalProcess p) {
  ArrivalConfig cfg;
  cfg.process = p;
  cfg.rate_hz = 2e6;
  cfg.tasks = 20000;
  // Shrink the burst cycle so 20k arrivals span ~250 modulation cycles —
  // enough for the empirical mean to converge on the configured rate.
  cfg.burst_cycle_ps = us(40);
  return cfg;
}

TEST(ArrivalStats, PoissonMeanRateAndUnitCV) {
  const ArrivalSchedule s =
      workloads::generate_arrivals(stats_config(ArrivalProcess::kPoisson));
  const std::vector<double> gaps = gaps_of(s);
  const double mean_ps = mean_of(gaps);
  const double expect_ps = 1e12 / 2e6;
  EXPECT_NEAR(mean_ps, expect_ps, 0.03 * expect_ps);
  // Exponential interarrivals: CV = 1.
  EXPECT_GT(cv_of(gaps), 0.95);
  EXPECT_LT(cv_of(gaps), 1.05);
  // Sorted, starting at or after t=0.
  for (const double g : gaps) EXPECT_GE(g, 0.0);
}

TEST(ArrivalStats, BurstyKeepsMeanRateButOverdisperses) {
  const ArrivalSchedule s =
      workloads::generate_arrivals(stats_config(ArrivalProcess::kBursty));
  const std::vector<double> gaps = gaps_of(s);
  const double mean_ps = mean_of(gaps);
  const double expect_ps = 1e12 / 2e6;
  // The long-run rate matches λ (the on-rate is λ/on_fraction exactly so
  // the duty cycle cancels), but burst-count noise converges slower than
  // Poisson — hence the wider band.
  EXPECT_NEAR(mean_ps, expect_ps, 0.15 * expect_ps);
  // On-off modulation overdisperses: most gaps are 5x shorter than the
  // Poisson mean, a few carry whole off-periods. CV must clear 1 by a
  // margin no homogeneous process would.
  EXPECT_GT(cv_of(gaps), 1.3);
}

TEST(ArrivalStats, DiurnalArrivalsFollowTheRateCurve) {
  const ArrivalConfig cfg = stats_config(ArrivalProcess::kDiurnal);
  const ArrivalSchedule s = workloads::generate_arrivals(cfg);
  EXPECT_NEAR(mean_of(gaps_of(s)), 1e12 / 2e6, 0.05 * (1e12 / 2e6));
  // Fold arrivals by the curve period: the sin>0 half must hold the bulk.
  // With depth 0.8 the halves integrate to (1 ± 2*0.8/π) x the mean rate,
  // a ~3:1 ratio; require at least 2:1 so the check has slack.
  const auto period = static_cast<double>(cfg.period_ps);
  std::uint64_t peak = 0;
  std::uint64_t trough = 0;
  for (const Tick t : s.submission.release) {
    const double phase = std::fmod(static_cast<double>(t), period) / period;
    (phase < 0.5 ? peak : trough) += 1;
  }
  EXPECT_GT(peak, 2 * trough);
}

TEST(ArrivalStats, ClientMarksCoverAllClients) {
  ArrivalConfig cfg;
  cfg.tasks = 2000;
  cfg.clients = 16;
  const ArrivalSchedule s = workloads::generate_arrivals(cfg);
  std::set<std::uint32_t> seen;
  for (const std::uint32_t c : s.submission.client) {
    EXPECT_LT(c, cfg.clients);
    seen.insert(c);
  }
  EXPECT_EQ(seen.size(), cfg.clients);
}

TEST(ArrivalStats, GeneratorIsAPureFunctionOfItsConfig) {
  const ArrivalConfig cfg = stats_config(ArrivalProcess::kBursty);
  EXPECT_EQ(workloads::generate_arrivals(cfg),
            workloads::generate_arrivals(cfg));
  ArrivalConfig other = cfg;
  other.seed ^= 1;
  EXPECT_FALSE(workloads::generate_arrivals(other) ==
               workloads::generate_arrivals(cfg));
}

void expect_traces_equal(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  for (std::size_t i = 0; i < a.num_tasks(); ++i) {
    const TaskDescriptor& x = a.task(static_cast<TaskId>(i));
    const TaskDescriptor& y = b.task(static_cast<TaskId>(i));
    EXPECT_EQ(x.fn, y.fn) << "task " << i;
    EXPECT_EQ(x.duration, y.duration) << "task " << i;
    ASSERT_EQ(x.num_params(), y.num_params()) << "task " << i;
    for (std::size_t p = 0; p < x.num_params(); ++p)
      EXPECT_TRUE(x.params[p] == y.params[p]) << "task " << i << " param " << p;
  }
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].op, b.events()[i].op) << "event " << i;
    EXPECT_EQ(a.events()[i].task, b.events()[i].task) << "event " << i;
  }
}

TEST(ArrivalReplay, JsonRoundTripIsExact) {
  for (const ArrivalProcess p :
       {ArrivalProcess::kPoisson, ArrivalProcess::kBursty,
        ArrivalProcess::kDiurnal}) {
    ArrivalConfig cfg;
    cfg.process = p;
    cfg.tasks = 500;
    cfg.clients = 8;
    const ArrivalSchedule s = workloads::generate_arrivals(cfg);
    const std::string doc = workloads::arrivals_json(s);
    ArrivalSchedule reloaded;
    std::string err;
    ASSERT_TRUE(workloads::parse_arrivals(doc, &reloaded, &err)) << err;
    // Bit-exact replay: config, release times and client marks all survive.
    EXPECT_TRUE(s == reloaded) << workloads::to_string(p);
    // And the schedule alone rebuilds the identical serving trace.
    expect_traces_equal(workloads::make_serving_trace(s),
                        workloads::make_serving_trace(reloaded));
    // Serializing the reload reproduces the document byte for byte.
    EXPECT_EQ(doc, workloads::arrivals_json(reloaded));
  }
}

TEST(ArrivalReplay, ServingTraceValidatesAndChains) {
  ArrivalConfig cfg;
  cfg.tasks = 400;
  cfg.clients = 4;
  cfg.chain_fraction = 0.5;
  const ArrivalSchedule s = workloads::generate_arrivals(cfg);
  const Trace tr = workloads::make_serving_trace(s);
  ASSERT_EQ(tr.num_tasks(), cfg.tasks);
  std::string err;
  EXPECT_TRUE(tr.validate(&err)) << err;
  // Task id i is arrival i (the open-loop driver indexes release[] by id).
  ASSERT_EQ(tr.events().size(), cfg.tasks);
  for (std::size_t i = 0; i < tr.events().size(); ++i) {
    EXPECT_EQ(tr.events()[i].op, TraceOp::kSubmit);
    EXPECT_EQ(tr.events()[i].task, static_cast<TaskId>(i));
  }
  // With chain_fraction 0.5 a healthy share of tasks depends on its
  // client's predecessor (an input param pointing at an earlier output).
  std::size_t chained = 0;
  for (std::size_t i = 0; i < tr.num_tasks(); ++i) {
    const TaskDescriptor& t = tr.task(static_cast<TaskId>(i));
    bool has_in = false;
    for (const Param& p : t.params) has_in |= p.dir == Dir::kIn;
    chained += has_in ? 1 : 0;
  }
  EXPECT_GT(chained, cfg.tasks / 4);
}

TEST(ArrivalReplay, ParseRejectsMalformedDocuments) {
  ArrivalConfig cfg;
  cfg.tasks = 10;
  const std::string good = workloads::arrivals_json(
      workloads::generate_arrivals(cfg));
  ArrivalSchedule out;
  std::string err;
  EXPECT_FALSE(workloads::parse_arrivals("{\"kind\":\"other\"}", &out, &err));
  EXPECT_FALSE(workloads::parse_arrivals("not json", &out, &err));
  // Unknown process name.
  std::string doc = good;
  const auto at = doc.find("\"poisson\"");
  ASSERT_NE(at, std::string::npos);
  doc.replace(at, 9, "\"weekly\"");
  EXPECT_FALSE(workloads::parse_arrivals(doc, &out, &err));
  // Client mark out of range.
  doc = good;
  const auto cl = doc.find("\"clients\":16");
  ASSERT_NE(cl, std::string::npos);
  doc.replace(cl, 12, "\"clients\":1");
  EXPECT_FALSE(workloads::parse_arrivals(doc, &out, &err)) << err;
}

/// Open-loop run fingerprint: makespan plus the full executed schedule.
struct RunFingerprint {
  Tick makespan = 0;
  std::vector<ScheduleEntry> schedule;
};

RunFingerprint run_open_loop(const ArrivalSchedule& s) {
  const Trace tr = workloads::make_serving_trace(s);
  IdealManager mgr;
  RunFingerprint fp;
  RuntimeConfig rc;
  rc.workers = 8;
  rc.open_loop = &s.submission;
  rc.schedule_out = &fp.schedule;
  fp.makespan = run_trace(tr, mgr, rc).makespan;
  return fp;
}

TEST(ArrivalReplay, OpenLoopRunIsIdenticalAcrossQueueKinds) {
  ArrivalConfig cfg;
  cfg.tasks = 300;
  cfg.clients = 4;
  cfg.process = ArrivalProcess::kBursty;
  const ArrivalSchedule s = workloads::generate_arrivals(cfg);

  const QueueKind saved = default_queue_kind();
  set_default_queue_kind(QueueKind::kBinaryHeap);
  const RunFingerprint heap = run_open_loop(s);
  set_default_queue_kind(QueueKind::kCalendar);
  const RunFingerprint calendar = run_open_loop(s);
  set_default_queue_kind(saved);

  EXPECT_EQ(heap.makespan, calendar.makespan);
  ASSERT_EQ(heap.schedule.size(), calendar.schedule.size());
  for (std::size_t i = 0; i < heap.schedule.size(); ++i) {
    EXPECT_EQ(heap.schedule[i].task, calendar.schedule[i].task) << i;
    EXPECT_EQ(heap.schedule[i].worker, calendar.schedule[i].worker) << i;
    EXPECT_EQ(heap.schedule[i].start, calendar.schedule[i].start) << i;
    EXPECT_EQ(heap.schedule[i].end, calendar.schedule[i].end) << i;
  }
  // The open loop really paced the run: no task started before its release.
  std::vector<Tick> start_of(cfg.tasks, -1);
  for (const ScheduleEntry& e : heap.schedule) start_of[e.task] = e.start;
  for (std::size_t i = 0; i < cfg.tasks; ++i)
    EXPECT_GE(start_of[i], s.submission.release[i]) << "task " << i;
}

}  // namespace
}  // namespace nexus
