// Hardware building blocks: distribution function, set-associative task
// graph table with kick-off lists and dummy-entry chaining, task pool and
// dep-counts table.
#include <gtest/gtest.h>

#include <vector>

#include "nexus/common/stats.hpp"
#include "nexus/hw/dep_counts_table.hpp"
#include "nexus/hw/distribution.hpp"
#include "nexus/hw/task_graph_table.hpp"
#include "nexus/hw/task_pool.hpp"

namespace nexus::hw {
namespace {

using InsertKind = TaskGraphTable::InsertKind;

// ---------- distribution ----------

TEST(Distribution, XorFoldInRange) {
  Distributor d(DistributionPolicy::kXorFold, 6);
  for (Addr a = 0; a < 100000; a += 0x40) EXPECT_LT(d.target(a), 6u);
}

TEST(Distribution, SameAddressSameTarget) {
  // Affinity is the correctness requirement: every access to an address
  // must be tracked in one task graph.
  for (const auto policy : {DistributionPolicy::kXorFold, DistributionPolicy::kLowBits,
                            DistributionPolicy::kModulo}) {
    Distributor d(policy, 8);
    for (Addr a = 0x1000; a < 0x3000; a += 0x40)
      EXPECT_EQ(d.target(a), d.target(a)) << to_string(policy);
    EXPECT_TRUE(d.preserves_affinity());
  }
}

TEST(Distribution, RoundRobinBreaksAffinity) {
  Distributor d(DistributionPolicy::kRoundRobin, 4);
  EXPECT_FALSE(d.preserves_affinity());
  EXPECT_NE(d.target(0x40), d.target(0x40));  // rotates even for same address
}

TEST(Distribution, XorFoldBalancesStridedAddresses) {
  // The paper: "has shown experimentally good distribution of the input
  // data among the task graphs". Check with 0x40-strided addresses (our
  // workloads' layout) across every TG count used in the evaluation.
  for (const std::uint32_t n : {2u, 4u, 6u, 8u, 16u, 32u}) {
    Distributor d(DistributionPolicy::kXorFold, n);
    std::vector<std::uint64_t> bins(n, 0);
    for (Addr a = 0x0A100000; a < 0x0A100000 + 0x40 * 4096; a += 0x40)
      ++bins[d.target(a)];
    const BalanceReport r = balance_report(bins);
    EXPECT_LT(r.max_over_mean, 1.35) << n << " task graphs";
  }
}

TEST(Distribution, XorFoldUsesOnlyLow20Bits) {
  Distributor d(DistributionPolicy::kXorFold, 8);
  EXPECT_EQ(d.target(0x12345), d.target(0xFFFF00012345ULL));
}

TEST(Distribution, RejectsTooManyTargets) {
  EXPECT_DEATH(Distributor(DistributionPolicy::kXorFold, 33), "32");
}

// ---------- task graph table ----------

TableConfig small_table() {
  TableConfig cfg;
  cfg.sets = 4;
  cfg.ways = 2;
  cfg.kol_entries = 2;
  cfg.chain_probe_limit = 4;
  return cfg;
}

TEST(TaskGraphTable, FirstWriterRunsNow) {
  TaskGraphTable t{TableConfig{}};
  const auto r = t.insert(0x100, 1, true);
  EXPECT_EQ(r.kind, InsertKind::kRunsNow);
  EXPECT_TRUE(t.tracks(0x100));
  EXPECT_EQ(t.entries_in_use(), 1u);
}

TEST(TaskGraphTable, SecondWriterQueues) {
  TaskGraphTable t{TableConfig{}};
  (void)t.insert(0x100, 1, true);
  EXPECT_EQ(t.insert(0x100, 2, true).kind, InsertKind::kQueued);
}

TEST(TaskGraphTable, ReadersShareRunningGroup) {
  TaskGraphTable t{TableConfig{}};
  EXPECT_EQ(t.insert(0x100, 1, false).kind, InsertKind::kRunsNow);
  EXPECT_EQ(t.insert(0x100, 2, false).kind, InsertKind::kRunsNow);
  EXPECT_EQ(t.insert(0x100, 3, true).kind, InsertKind::kQueued);
  // Reader behind the queued writer must queue too.
  EXPECT_EQ(t.insert(0x100, 4, false).kind, InsertKind::kQueued);
}

TEST(TaskGraphTable, FinishKicksNextGroup) {
  TaskGraphTable t{TableConfig{}};
  (void)t.insert(0x100, 1, true);
  (void)t.insert(0x100, 2, false);
  (void)t.insert(0x100, 3, false);
  (void)t.insert(0x100, 4, true);
  std::vector<Waiter> kicked;
  (void)t.finish(0x100, 1, &kicked);
  // Both readers kick off together; the writer stays queued.
  ASSERT_EQ(kicked.size(), 2u);
  EXPECT_EQ(kicked[0].task, 2u);
  EXPECT_EQ(kicked[1].task, 3u);
  kicked.clear();
  (void)t.finish(0x100, 2, &kicked);
  EXPECT_TRUE(kicked.empty());  // group not drained yet
  (void)t.finish(0x100, 3, &kicked);
  ASSERT_EQ(kicked.size(), 1u);
  EXPECT_EQ(kicked[0].task, 4u);
  kicked.clear();
  const auto fr = t.finish(0x100, 4, &kicked);
  EXPECT_TRUE(fr.entry_freed);
  EXPECT_EQ(t.entries_in_use(), 0u);
}

TEST(TaskGraphTable, SetConflictStalls) {
  // 2 ways per set: three distinct addresses mapping to the same set cannot
  // all be tracked.
  const TableConfig cfg = small_table();
  TaskGraphTable t{cfg};
  // Set index uses bits [6+]: addresses 0x000, 0x100, 0x200 with sets=4
  // map to sets 0, 0, 0 (stride 0x100 = set stride 4 = wraps to 0 mod 4).
  EXPECT_EQ(t.insert(0x000, 1, true).kind, InsertKind::kRunsNow);
  EXPECT_EQ(t.insert(0x100, 2, true).kind, InsertKind::kRunsNow);
  EXPECT_EQ(t.insert(0x200, 3, true).kind, InsertKind::kNoSpace);
  EXPECT_EQ(t.total_stalls(), 1u);
  // Finishing one frees the way; the retry succeeds.
  std::vector<Waiter> kicked;
  (void)t.finish(0x000, 1, &kicked);
  EXPECT_EQ(t.insert(0x200, 3, true).kind, InsertKind::kRunsNow);
}

TEST(TaskGraphTable, DummyChainingGrowsKickoffList) {
  const TableConfig cfg = small_table();  // inline capacity 2
  TaskGraphTable t{cfg};
  (void)t.insert(0x40, 1, true);
  EXPECT_EQ(t.entries_in_use(), 1u);
  // Waiters 2..3 fit inline; 4..5 need one dummy entry; 6..7 another.
  EXPECT_EQ(t.insert(0x40, 2, true).chain_hops, 0u);
  EXPECT_EQ(t.insert(0x40, 3, true).chain_hops, 0u);
  EXPECT_EQ(t.insert(0x40, 4, true).chain_hops, 1u);
  EXPECT_EQ(t.insert(0x40, 5, true).chain_hops, 1u);
  EXPECT_EQ(t.insert(0x40, 6, true).chain_hops, 2u);
  EXPECT_EQ(t.entries_in_use(), 3u);  // head + two dummies
}

TEST(TaskGraphTable, ChainShrinksAsListDrains) {
  const TableConfig cfg = small_table();
  TaskGraphTable t{cfg};
  (void)t.insert(0x40, 1, true);
  for (TaskId id = 2; id <= 7; ++id) (void)t.insert(0x40, id, true);
  EXPECT_EQ(t.entries_in_use(), 3u);
  std::vector<Waiter> kicked;
  TaskId running = 1;
  // Drain the chain one writer at a time; physical slots shrink with it.
  for (TaskId id = 2; id <= 7; ++id) {
    kicked.clear();
    (void)t.finish(0x40, running, &kicked);
    ASSERT_EQ(kicked.size(), 1u);
    running = kicked[0].task;
  }
  EXPECT_EQ(t.entries_in_use(), 1u);  // only the head remains
  kicked.clear();
  (void)t.finish(0x40, running, &kicked);
  EXPECT_EQ(t.entries_in_use(), 0u);
}

TEST(TaskGraphTable, GaussianScaleFanout) {
  // 249 waiters on one pivot row (the Section VI scenario) with default
  // table geometry: chaining must absorb all of them and kick them at once.
  TaskGraphTable t{TableConfig{}};
  (void)t.insert(0x1000, 0, true);
  for (TaskId id = 1; id <= 249; ++id) {
    const auto r = t.insert(0x1000, id, false);
    ASSERT_EQ(r.kind, InsertKind::kQueued) << "waiter " << id;
  }
  EXPECT_GT(t.entries_in_use(), 30u);  // (249-8)/8 = 31 dummy entries
  std::vector<Waiter> kicked;
  (void)t.finish(0x1000, 0, &kicked);
  EXPECT_EQ(kicked.size(), 249u);
  EXPECT_EQ(t.entries_in_use(), 1u);  // chain reclaimed, head group running
}

TEST(TaskGraphTable, ChainProbeExhaustionStalls) {
  // Tiny table: the chain allocator itself can run out of space.
  TableConfig cfg;
  cfg.sets = 2;
  cfg.ways = 1;
  cfg.kol_entries = 1;
  cfg.chain_probe_limit = 2;
  TaskGraphTable t{cfg};
  (void)t.insert(0x40, 1, true);
  EXPECT_EQ(t.insert(0x40, 2, true).kind, InsertKind::kQueued);  // inline
  // Next waiter needs a dummy entry; the only other set may hold one...
  const auto r3 = t.insert(0x40, 3, true);
  // ...and after that, no space can remain for a fourth.
  if (r3.kind == InsertKind::kQueued) {
    EXPECT_EQ(t.insert(0x40, 4, true).kind, InsertKind::kNoSpace);
  } else {
    EXPECT_EQ(r3.kind, InsertKind::kNoSpace);
  }
  EXPECT_GE(t.total_stalls(), 1u);
}

TEST(TaskGraphTable, PeakOccupancyTracked) {
  TaskGraphTable t{TableConfig{}};
  for (Addr a = 0; a < 16; ++a) (void)t.insert(0x40 * (a + 1), static_cast<TaskId>(a), true);
  EXPECT_EQ(t.peak_used(), 16u);
  std::vector<Waiter> kicked;
  for (Addr a = 0; a < 16; ++a) (void)t.finish(0x40 * (a + 1), static_cast<TaskId>(a), &kicked);
  EXPECT_EQ(t.entries_in_use(), 0u);
  EXPECT_EQ(t.peak_used(), 16u);
}

// ---------- task pool ----------

TEST(TaskPool, CapacityAndPeak) {
  TaskPool pool(2);
  TaskDescriptor t1;
  t1.id = 1;
  t1.duration = us(1);
  t1.params.push_back({0x10, Dir::kOut});
  TaskDescriptor t2 = t1;
  t2.id = 2;
  pool.insert(t1);
  pool.insert(t2);
  EXPECT_TRUE(pool.full());
  EXPECT_EQ(pool.peak(), 2u);
  EXPECT_EQ(pool.get(1).id, 1u);
  pool.erase(1);
  EXPECT_FALSE(pool.full());
  EXPECT_EQ(pool.peak(), 2u);
}

TEST(TaskPool, GetAfterEraseDies) {
  TaskPool pool(2);
  TaskDescriptor t;
  t.id = 7;
  t.duration = us(1);
  t.params.push_back({0x10, Dir::kOut});
  pool.insert(t);
  pool.erase(7);
  EXPECT_DEATH((void)pool.get(7), "not in pool");
}

// ---------- dep counts table ----------

TEST(DepCounts, DecrementToReady) {
  DepCountsTable d;
  d.set(5, 3);
  EXPECT_FALSE(d.decrement(5));
  EXPECT_FALSE(d.decrement(5));
  EXPECT_TRUE(d.decrement(5));
  EXPECT_FALSE(d.contains(5));
}

TEST(DepCounts, PeakTracksHighWater) {
  DepCountsTable d;
  d.set(1, 1);
  d.set(2, 1);
  d.set(3, 1);
  (void)d.decrement(1);
  (void)d.decrement(2);
  EXPECT_EQ(d.peak(), 3u);
  EXPECT_EQ(d.size(), 1u);
}

}  // namespace
}  // namespace nexus::hw
