// Driver and trace edge cases: degenerate traces, barrier corner cases,
// master-side costs, and configuration extremes across manager models.
#include <gtest/gtest.h>

#include "nexus/nexussharp/nexussharp.hpp"
#include "nexus/runtime/ideal_manager.hpp"
#include "nexus/runtime/simulation_driver.hpp"
#include "nexus/workloads/workloads.hpp"

namespace nexus {
namespace {

ParamList p_out(Addr a) { return ParamList{Param{a, Dir::kOut}}; }

TEST(RuntimeEdge, TaskwaitBeforeAnySubmit) {
  Trace tr("t");
  tr.taskwait();
  tr.submit(0, us(5), p_out(0x10));
  tr.taskwait();
  EXPECT_EQ(run_trace(tr, *std::make_unique<IdealManager>(),
                      RuntimeConfig{.workers = 1})
                .makespan,
            us(5));
}

TEST(RuntimeEdge, ConsecutiveTaskwaitsAreIdempotent) {
  Trace tr("t");
  tr.submit(0, us(5), p_out(0x10));
  tr.taskwait();
  tr.taskwait();
  tr.taskwait();
  IdealManager mgr;
  EXPECT_EQ(run_trace(tr, mgr, RuntimeConfig{.workers = 2}).makespan, us(5));
}

TEST(RuntimeEdge, TaskwaitOnUnsubmittedRegionIsImmediate) {
  // Address written by an earlier (finished) task: the wait costs nothing.
  Trace tr("t");
  tr.submit(0, us(5), p_out(0x10));
  tr.taskwait();
  tr.taskwait_on(0x10);
  tr.submit(0, us(5), p_out(0x20));
  tr.taskwait();
  IdealManager mgr;
  EXPECT_EQ(run_trace(tr, mgr, RuntimeConfig{.workers = 2}).makespan, us(10));
}

TEST(RuntimeEdge, TrailingSubmitsWithoutFinalTaskwaitStillDrain) {
  Trace tr("t");
  tr.submit(0, us(5), p_out(0x10));
  tr.submit(0, us(7), p_out(0x20));
  // No final taskwait: the driver must still run everything to completion.
  IdealManager mgr;
  EXPECT_EQ(run_trace(tr, mgr, RuntimeConfig{.workers = 2}).makespan, us(7));
}

TEST(RuntimeEdge, OneTickTasks) {
  Trace tr("t");
  for (int i = 0; i < 100; ++i) {
    ParamList p;
    p.push_back({0x1000 + 0x40 * static_cast<Addr>(i), Dir::kOut});
    tr.submit(0, 1, p);  // 1 ps
  }
  tr.taskwait();
  IdealManager mgr;
  const RunResult r = run_trace(tr, mgr, RuntimeConfig{.workers = 3});
  EXPECT_EQ(r.makespan, 34);  // ceil(100/3) 1-ps slots
}

TEST(RuntimeEdge, MoreWorkersThanTasks) {
  Trace tr("t");
  for (int i = 0; i < 3; ++i) {
    ParamList p;
    p.push_back({0x1000 + 0x40 * static_cast<Addr>(i), Dir::kOut});
    tr.submit(0, us(9), p);
  }
  tr.taskwait();
  IdealManager mgr;
  const RunResult r = run_trace(tr, mgr, RuntimeConfig{.workers = 1000});
  EXPECT_EQ(r.makespan, us(9));
}

TEST(RuntimeEdge, MasterEventCostSerializesSubmission) {
  Trace tr("t");
  for (int i = 0; i < 10; ++i) {
    ParamList p;
    p.push_back({0x1000 + 0x40 * static_cast<Addr>(i), Dir::kOut});
    tr.submit(0, us(1), p);
  }
  tr.taskwait();
  IdealManager a;
  IdealManager b;
  const Tick fast =
      run_trace(tr, a, RuntimeConfig{.workers = 10}).makespan;
  RuntimeConfig rc;
  rc.workers = 10;
  rc.master_event_cost = us(2);
  const Tick slow = run_trace(tr, b, rc).makespan;
  EXPECT_EQ(fast, us(1));
  // Submissions at t = 0,2,...,18 us; the last task ends at 19 us but the
  // master itself reaches the final taskwait at 20 us — makespan includes
  // the master thread's own progress.
  EXPECT_EQ(slow, us(20));
}

TEST(RuntimeEdge, NexusSharpPoolOfOne) {
  // Degenerate window: exactly one in-flight task; everything serializes
  // but must remain live.
  NexusSharpConfig cfg;
  cfg.num_task_graphs = 2;
  cfg.freq_mhz = 100.0;
  cfg.pool_capacity = 1;
  NexusSharp mgr(cfg);
  Trace tr("t");
  for (int i = 0; i < 8; ++i) {
    ParamList p;
    p.push_back({0x1000 + 0x40 * static_cast<Addr>(i), Dir::kOut});
    tr.submit(0, us(2), p);
  }
  tr.taskwait();
  const RunResult r = run_trace(tr, mgr, RuntimeConfig{.workers = 4});
  EXPECT_EQ(r.tasks, 8u);
  EXPECT_GE(r.makespan, us(16));  // fully serialized by the window
  EXPECT_EQ(mgr.stats().pool_peak, 1u);
}

TEST(RuntimeEdge, SingleTaskGraphAtThirtyTwo) {
  // The distribution function's upper bound: 32 graphs must work.
  NexusSharpConfig cfg;
  cfg.num_task_graphs = 32;
  cfg.freq_mhz = 100.0;
  NexusSharp mgr(cfg);
  const Trace tr = workloads::make_gaussian({.n = 80});
  const RunResult r = run_trace(tr, mgr, RuntimeConfig{.workers = 8});
  EXPECT_EQ(r.tasks, tr.num_tasks());
  EXPECT_EQ(mgr.stats().sim_tasks_live, 0u);
}

TEST(RuntimeEdge, WorkloadConfigVariants) {
  // Generators must hold their invariants away from the paper defaults.
  {
    workloads::H264Config cfg = workloads::h264_config(4);
    cfg.frames = 3;
    cfg.total_tasks = 0;  // derive: decodes + entropy only, no deblock
    cfg.total_tasks = 3u * 30 * 17 + 3;
    cfg.total_work = ms(100);
    const Trace tr = make_h264dec(cfg);
    EXPECT_EQ(tr.num_tasks(), cfg.total_tasks);
    EXPECT_TRUE(tr.validate());
    // 3 frames: only frame 2 needs a buffer-recycle wait.
    std::size_t waits = 0;
    for (const auto& ev : tr.events())
      if (ev.op == TraceOp::kTaskwaitOn) ++waits;
    EXPECT_EQ(waits, 1u);
  }
  {
    workloads::StreamclusterConfig cfg;
    cfg.total_tasks = 50;
    cfg.phases = 1;
    cfg.total_work = ms(1);
    const Trace tr = make_streamcluster(cfg);
    EXPECT_EQ(tr.num_tasks(), 50u);
    EXPECT_TRUE(tr.validate());
  }
  {
    const Trace tr = workloads::make_gaussian({.n = 2});
    EXPECT_EQ(tr.num_tasks(), 2u);  // one pivot, one elimination
    EXPECT_TRUE(tr.validate());
  }
}

TEST(RuntimeEdge, UtilizationNeverExceedsOne) {
  const Trace tr = workloads::make_gaussian({.n = 100});
  for (const std::uint32_t workers : {1u, 7u, 64u}) {
    IdealManager mgr;
    const RunResult r = run_trace(tr, mgr, RuntimeConfig{.workers = workers});
    EXPECT_GT(r.utilization, 0.0);
    EXPECT_LE(r.utilization, 1.0 + 1e-9);
  }
}

}  // namespace
}  // namespace nexus
