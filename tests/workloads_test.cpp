// Validates that the synthetic workload generators reproduce the published
// structure of the paper's benchmarks: Table II (Starbench + sparselu),
// Table III (Gaussian elimination) and the dependency patterns of Section V-A.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "nexus/depgraph/dependency_tracker.hpp"
#include "nexus/task/trace_stats.hpp"
#include "nexus/workloads/duration_model.hpp"
#include "nexus/workloads/workloads.hpp"

namespace nexus::workloads {
namespace {

std::uint64_t trace_fingerprint(const Trace& tr) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  for (const auto& t : tr.tasks()) {
    mix(static_cast<std::uint64_t>(t.duration));
    for (const auto& p : t.params) mix(p.addr * 3 + static_cast<std::uint64_t>(p.dir));
  }
  for (const auto& e : tr.events()) mix(static_cast<std::uint64_t>(e.op) + e.addr);
  return h;
}

// ---------- duration model ----------

TEST(DurationModel, ScaleHitsExactTotal) {
  Xoshiro256 rng(1);
  const auto w = lognormal_weights(1000, 0.5, rng);
  const auto d = scale_to_total(w, ms(123));
  Tick sum = 0;
  for (const Tick t : d) {
    EXPECT_GT(t, 0);
    sum += t;
  }
  EXPECT_EQ(sum, ms(123));
}

TEST(DurationModel, SingleElement) {
  const auto d = scale_to_total({3.7}, us(42));
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], us(42));
}

// ---------- Table II: c-ray ----------

TEST(Cray, TableIIRow) {
  const Trace tr = make_cray();
  const TraceStats s = compute_stats(tr);
  EXPECT_EQ(s.num_tasks, 1200u);
  EXPECT_EQ(s.total_work, ms(7381));
  EXPECT_NEAR(s.avg_task_us(), 6151.0, 1.0);
  EXPECT_EQ(s.min_params, 1u);
  EXPECT_EQ(s.max_params, 1u);
  EXPECT_TRUE(tr.validate());
}

TEST(Cray, AllTasksIndependent) {
  const Trace tr = make_cray();
  DependencyTracker dt;
  for (const auto& t : tr.tasks()) EXPECT_EQ(dt.submit(t), 0u);
}

// ---------- Table II: rot-cc ----------

TEST(Rotcc, TableIIRow) {
  const Trace tr = make_rotcc();
  const TraceStats s = compute_stats(tr);
  EXPECT_EQ(s.num_tasks, 16262u);
  EXPECT_EQ(s.total_work, ms(8150));
  EXPECT_NEAR(s.avg_task_us(), 501.0, 1.0);
  EXPECT_EQ(s.min_params, 1u);
  EXPECT_EQ(s.max_params, 1u);
  EXPECT_TRUE(tr.validate());
}

TEST(Rotcc, PairwiseChains) {
  const Trace tr = make_rotcc();
  DependencyTracker dt;
  // Even tasks (rotate) are independent; odd tasks (colour-convert) depend
  // exactly on their pair's rotate.
  for (const auto& t : tr.tasks()) {
    const std::size_t deps = dt.submit(t);
    EXPECT_EQ(deps, t.id % 2 == 0 ? 0u : 1u) << "task " << t.id;
  }
}

// ---------- Table II: sparselu ----------

TEST(SparseLu, TableIIRowExactCount) {
  const Trace tr = make_sparselu();
  const TraceStats s = compute_stats(tr);
  EXPECT_EQ(s.num_tasks, 54814u);  // exact by construction search
  EXPECT_EQ(s.total_work, ms(38128));
  EXPECT_NEAR(s.avg_task_us(), 696.0, 1.0);
  EXPECT_EQ(s.min_params, 1u);
  EXPECT_EQ(s.max_params, 3u);
  EXPECT_TRUE(tr.validate());
}

TEST(SparseLu, FirstStepStructure) {
  // Task 0 is lu0 of the (0,0) diagonal block and must be the only
  // immediately-ready task at the head of the factorization.
  const Trace tr = make_sparselu();
  DependencyTracker dt;
  EXPECT_EQ(dt.submit(tr.task(0)), 0u);
  EXPECT_EQ(tr.task(0).params.size(), 1u);
  EXPECT_EQ(tr.task(0).params[0].dir, Dir::kInOut);
  // The first fwd/bdiv wave reads the diagonal block lu0 wrote.
  const std::size_t deps1 = dt.submit(tr.task(1));
  EXPECT_EQ(deps1, 1u);
}

TEST(SparseLu, StructuralMaskMatchesKnownCounts) {
  // Regression anchor for the canonical structural-sparsity pattern.
  EXPECT_EQ(sparselu_task_count(50, sparselu_structural_mask(50)), 11725u);
  EXPECT_EQ(sparselu_task_count(84, sparselu_structural_mask(84)), 53018u);
}

// ---------- Table II: streamcluster ----------

TEST(Streamcluster, TableIIRow) {
  const Trace tr = make_streamcluster();
  const TraceStats s = compute_stats(tr);
  EXPECT_EQ(s.num_tasks, 652776u);
  EXPECT_EQ(s.total_work, ms(237908));
  EXPECT_NEAR(s.avg_task_us(), 364.0, 1.0);
  EXPECT_EQ(s.min_params, 1u);
  EXPECT_EQ(s.max_params, 3u);
  EXPECT_EQ(s.num_taskwaits, 1632u);  // one per fork-join phase
  EXPECT_TRUE(tr.validate());
}

TEST(Streamcluster, ForkJoinPhaseStructure) {
  StreamclusterConfig cfg;
  cfg.total_tasks = 2000;
  cfg.phases = 5;
  cfg.total_work = ms(10);
  const Trace tr = make_streamcluster(cfg);
  // Phases of ~400: between consecutive taskwaits there must be one
  // recenter task followed by worker tasks only.
  std::size_t phase_tasks = 0;
  std::size_t phases_seen = 0;
  bool expect_recenter = true;
  for (const auto& ev : tr.events()) {
    if (ev.op == TraceOp::kSubmit) {
      const auto& t = tr.task(ev.task);
      if (expect_recenter) {
        EXPECT_EQ(t.params.size(), 1u);  // recenter writes only centers
        EXPECT_EQ(t.params[0].dir, Dir::kOut);
        expect_recenter = false;
      }
      ++phase_tasks;
    } else if (ev.op == TraceOp::kTaskwait) {
      EXPECT_GE(phase_tasks, 2u);
      phase_tasks = 0;
      expect_recenter = true;
      ++phases_seen;
    }
  }
  EXPECT_EQ(phases_seen, 5u);
}

// ---------- Table II: h264dec (all four granularities) ----------

struct H264Row {
  int group;
  std::uint64_t tasks;
  double total_ms;
  double avg_us;
};

class H264TableII : public ::testing::TestWithParam<H264Row> {};

TEST_P(H264TableII, MatchesTableII) {
  const auto row = GetParam();
  const Trace tr = make_h264dec(h264_config(row.group));
  const TraceStats s = compute_stats(tr);
  EXPECT_EQ(s.num_tasks, row.tasks);  // exact by construction
  EXPECT_NEAR(s.total_work_ms(), row.total_ms, 0.001);
  EXPECT_NEAR(s.avg_task_us(), row.avg_us, 0.5);
  EXPECT_EQ(s.min_params, 2u);
  EXPECT_EQ(s.max_params, 6u);
  // Buffer-recycle synchronization: one taskwait_on per frame after the
  // first two (the pragma Nexus++ cannot accelerate).
  EXPECT_EQ(s.num_taskwait_ons, 8u);
  EXPECT_TRUE(tr.validate());
}

INSTANTIATE_TEST_SUITE_P(Granularities, H264TableII,
                         ::testing::Values(H264Row{1, 139961, 640.0, 4.6},
                                           H264Row{2, 35921, 550.0, 15.3},
                                           H264Row{4, 9333, 519.0, 55.6},
                                           H264Row{8, 2686, 510.0, 189.9}),
                         [](const ::testing::TestParamInfo<H264Row>& pi) {
                           return std::to_string(pi.param.group) + "x" +
                                  std::to_string(pi.param.group);
                         });

TEST(H264, WavefrontGatedByEntropy) {
  // The frame's top-left decode reads the slice header written by the
  // entropy task; everything else chains off it through the wavefront.
  const Trace tr = make_h264dec(h264_config(8));
  DependencyTracker dt;
  std::size_t immediately_ready = 0;
  for (const auto& t : tr.tasks()) {
    if (dt.submit(t) == 0) ++immediately_ready;
    if (t.id > 200) break;  // first frame is enough
  }
  // Only the first entropy task may be immediately ready.
  EXPECT_EQ(immediately_ready, 1u);
}

TEST(H264, EntropyChainIsSerial) {
  const H264Config cfg = h264_config(8);
  const Trace tr = make_h264dec(cfg);
  // Entropy tasks are the only fn==1 tasks; each inouts the CABAC state, so
  // consecutive ones conflict.
  std::vector<TaskId> entropy;
  for (const auto& t : tr.tasks())
    if (t.fn == 1) entropy.push_back(t.id);
  ASSERT_EQ(entropy.size(), 10u);
  const Addr state = tr.task(entropy[0]).params[0].addr;
  for (const TaskId id : entropy) EXPECT_EQ(tr.task(id).params[0].addr, state);
}

// ---------- Table III: gaussian ----------

TEST(Gaussian, AnalyticFormulasMatchTableIII) {
  EXPECT_EQ(gaussian_task_count(250), 31374u);
  EXPECT_EQ(gaussian_task_count(500), 125249u);
  EXPECT_EQ(gaussian_task_count(1000), 500499u);
  EXPECT_EQ(gaussian_task_count(3000), 4501499u);
  // Average FLOPs per task (Table III: 167 / 334 / 667 / 2012).
  EXPECT_NEAR(static_cast<double>(gaussian_total_flops(250)) / 31374.0, 167.0, 0.5);
  EXPECT_NEAR(static_cast<double>(gaussian_total_flops(500)) / 125249.0, 334.0, 0.5);
  EXPECT_NEAR(static_cast<double>(gaussian_total_flops(1000)) / 500499.0, 667.0, 0.5);
  // n=3000: the paper reports 2012; the closed form gives 2000.3 (0.6% off),
  // see EXPERIMENTS.md.
  EXPECT_NEAR(static_cast<double>(gaussian_total_flops(3000)) / 4501499.0, 2000.3, 0.5);
}

TEST(Gaussian, TraceMatchesAnalyticCounts) {
  const Trace tr = make_gaussian({.n = 250});
  EXPECT_EQ(tr.num_tasks(), 31374u);
  const TraceStats s = compute_stats(tr);
  EXPECT_NEAR(s.avg_task_us(), 0.084, 0.001);  // Table III: 0.084 us
  EXPECT_EQ(s.max_params, 2u);
  EXPECT_TRUE(tr.validate());
}

TEST(Gaussian, FanoutMatchesPaperDescription) {
  // "Running the application on a 250x250 matrix starts by having one ready
  // task (T1), and 249 dependent tasks" (Section VI).
  const Trace tr = make_gaussian({.n = 250});
  DependencyTracker dt;
  std::size_t ready = 0;
  std::size_t blocked = 0;
  for (TaskId id = 0; id < 250; ++id) {  // pivot + 249 eliminations
    if (dt.submit(tr.task(id)) == 0)
      ++ready;
    else
      ++blocked;
  }
  EXPECT_EQ(ready, 1u);
  EXPECT_EQ(blocked, 249u);
}

TEST(Gaussian, StepDurationsShrink) {
  const Trace tr = make_gaussian({.n = 100});
  // First task (step 1) costs (n-i+1)=100 flops; last task (step 99) costs 2.
  const auto last = static_cast<TaskId>(tr.num_tasks() - 1);
  EXPECT_GT(tr.task(0).duration, tr.task(last).duration);
}

// ---------- registry / determinism ----------

TEST(Registry, NamesRoundTrip) {
  for (const auto& name : workload_names()) {
    EXPECT_TRUE(is_workload(name));
  }
  EXPECT_FALSE(is_workload("nonexistent"));
}

TEST(Registry, GeneratorsAreDeterministic) {
  // Same config -> bit-identical trace. Checked on the two cheapest
  // generators plus one seeded one; all generators share the same RNG
  // plumbing.
  EXPECT_EQ(trace_fingerprint(make_cray()), trace_fingerprint(make_cray()));
  EXPECT_EQ(trace_fingerprint(make_gaussian({.n = 100})),
            trace_fingerprint(make_gaussian({.n = 100})));
  EXPECT_EQ(trace_fingerprint(make_h264dec(h264_config(8))),
            trace_fingerprint(make_h264dec(h264_config(8))));
}

TEST(Registry, SeedChangesDurationsNotStructure) {
  CrayConfig a;
  CrayConfig b;
  b.seed = 0xDEADBEEF;
  const Trace ta = make_cray(a);
  const Trace tb = make_cray(b);
  EXPECT_NE(trace_fingerprint(ta), trace_fingerprint(tb));
  ASSERT_EQ(ta.num_tasks(), tb.num_tasks());
  EXPECT_EQ(ta.total_work(), tb.total_work());  // total still pinned
  for (TaskId i = 0; i < ta.num_tasks(); ++i)
    EXPECT_TRUE(ta.task(i).params == tb.task(i).params);
}

}  // namespace
}  // namespace nexus::workloads
