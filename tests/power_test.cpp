// Power/energy model tests: accounting identities, frequency scaling, and
// the dark-silicon gating estimate.
#include <gtest/gtest.h>

#include "nexus/cost/power_model.hpp"
#include "nexus/runtime/simulation_driver.hpp"
#include "nexus/workloads/workloads.hpp"

namespace nexus::cost {
namespace {

NexusSharp::Stats run_and_stats(const Trace& tr, const NexusSharpConfig& cfg,
                                std::uint32_t workers, Tick* makespan) {
  NexusSharp mgr(cfg);
  const RunResult r = run_trace(tr, mgr, RuntimeConfig{.workers = workers});
  *makespan = r.makespan;
  return mgr.stats();
}

TEST(PowerModel, EnergyIsPositiveAndDecomposes) {
  const Trace tr = workloads::make_gaussian({.n = 120});
  NexusSharpConfig cfg;
  cfg.num_task_graphs = 4;
  cfg.freq_mhz = 100.0;
  Tick makespan = 0;
  const auto stats = run_and_stats(tr, cfg, 8, &makespan);
  const EnergyReport r = estimate_energy(stats, cfg, makespan);
  EXPECT_GT(r.dynamic_mj, 0.0);
  EXPECT_GT(r.leakage_mj, 0.0);
  EXPECT_DOUBLE_EQ(r.total_mj(), r.dynamic_mj + r.leakage_mj);
  EXPECT_GT(r.uj_per_task, 0.0);
  EXPECT_GT(r.avg_power_mw, 0.0);
}

TEST(PowerModel, GatingSavesLeakageWhenGraphsIdle) {
  // Coarse tasks leave the task graphs mostly idle: gating must reclaim a
  // large share of their leakage, and never exceed the ungated figure.
  const Trace tr = workloads::make_h264dec(workloads::h264_config(8));
  NexusSharpConfig cfg;
  cfg.num_task_graphs = 8;
  cfg.freq_mhz = 100.0;
  Tick makespan = 0;
  const auto stats = run_and_stats(tr, cfg, 16, &makespan);
  const EnergyReport r = estimate_energy(stats, cfg, makespan);
  EXPECT_LT(r.gated_leakage_mj, r.leakage_mj);
  EXPECT_GT(r.gated_savings_pct, 30.0);
  EXPECT_LE(r.gated_total_mj(), r.total_mj());
}

TEST(PowerModel, MoreGraphsLeakMore) {
  const Trace tr = workloads::make_gaussian({.n = 120});
  Tick mk2 = 0;
  Tick mk8 = 0;
  NexusSharpConfig c2;
  c2.num_task_graphs = 2;
  c2.freq_mhz = 100.0;
  NexusSharpConfig c8;
  c8.num_task_graphs = 8;
  c8.freq_mhz = 100.0;
  const auto s2 = run_and_stats(tr, c2, 8, &mk2);
  const auto s8 = run_and_stats(tr, c8, 8, &mk8);
  const double leak2_rate = estimate_energy(s2, c2, mk2).leakage_mj / to_seconds(mk2);
  const double leak8_rate = estimate_energy(s8, c8, mk8).leakage_mj / to_seconds(mk8);
  EXPECT_GT(leak8_rate, leak2_rate);
}

TEST(PowerModel, DynamicEnergyScalesWithFrequency) {
  // Same busy cycle count at double the frequency = half the busy time but
  // double the power: dynamic energy stays ~constant, leakage shrinks.
  const Trace tr = workloads::make_gaussian({.n = 100});
  NexusSharpConfig slow;
  slow.num_task_graphs = 2;
  slow.freq_mhz = 50.0;
  NexusSharpConfig fast = slow;
  fast.freq_mhz = 100.0;
  Tick mk_slow = 0;
  Tick mk_fast = 0;
  const auto ss = run_and_stats(tr, slow, 64, &mk_slow);
  const auto sf = run_and_stats(tr, fast, 64, &mk_fast);
  const EnergyReport rs = estimate_energy(ss, slow, mk_slow);
  const EnergyReport rf = estimate_energy(sf, fast, mk_fast);
  EXPECT_NEAR(rf.dynamic_mj / rs.dynamic_mj, 1.0, 0.15);
  EXPECT_LT(mk_fast, mk_slow);
}

TEST(PowerModel, NexusPPComparableScale) {
  const Trace tr = workloads::make_gaussian({.n = 120});
  NexusPP mgr;
  const RunResult r = run_trace(tr, mgr, RuntimeConfig{.workers = 8});
  const EnergyReport e = estimate_energy(mgr.stats(), NexusPPConfig{}, r.makespan);
  EXPECT_GT(e.total_mj(), 0.0);
  EXPECT_DOUBLE_EQ(e.gated_leakage_mj, e.leakage_mj);  // nothing to gate
}

}  // namespace
}  // namespace nexus::cost
