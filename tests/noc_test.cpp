// nexus::noc tests: routing geometry (XY mesh, shortest-way ring, torus
// wraparound), multi-flit serialization and flit conservation, link
// contention, queuing/backpressure behind a bottleneck link, hop-count
// goldens, the placement search, and the subsystem's load-bearing contract
// — the ideal topology reproduces the pre-NoC ("seed") makespans
// bit-identically even with multi-flit accounting, while ring/mesh/torus
// bound them from above.
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "nexus/common/rng.hpp"
#include "nexus/noc/network.hpp"
#include "nexus/noc/placement.hpp"
#include "nexus/noc/topology.hpp"
#include "nexus/nexuspp/nexuspp.hpp"
#include "nexus/nexussharp/nexussharp.hpp"
#include "nexus/runtime/simulation_driver.hpp"
#include "nexus/telemetry/registry.hpp"
#include "nexus/workloads/workloads.hpp"

namespace nexus {
namespace {

using noc::Network;
using noc::NocConfig;
using noc::Topology;
using noc::TopologyKind;

constexpr Tick kCycle = 10000;  // 10 ns at 100 MHz

// ---------- topology geometry ----------

TEST(Topology, ParseAndToString) {
  TopologyKind k = TopologyKind::kMesh;
  EXPECT_TRUE(noc::parse_topology("ideal", &k));
  EXPECT_EQ(k, TopologyKind::kIdeal);
  EXPECT_TRUE(noc::parse_topology("ring", &k));
  EXPECT_EQ(k, TopologyKind::kRing);
  EXPECT_TRUE(noc::parse_topology("mesh", &k));
  EXPECT_EQ(k, TopologyKind::kMesh);
  EXPECT_TRUE(noc::parse_topology("torus", &k));
  EXPECT_EQ(k, TopologyKind::kTorus);
  EXPECT_FALSE(noc::parse_topology("fat-tree", &k));
  EXPECT_STREQ(noc::to_string(TopologyKind::kRing), "ring");
  EXPECT_STREQ(noc::to_string(TopologyKind::kTorus), "torus");
}

TEST(Topology, IdealHasNoLinksAndUnitHops) {
  const Topology t(TopologyKind::kIdeal, 8);
  EXPECT_EQ(t.link_count(), 0u);
  EXPECT_EQ(t.node_count(), 8u);
  EXPECT_EQ(t.hops(3, 3), 0u);
  EXPECT_EQ(t.hops(0, 7), 1u);
  EXPECT_EQ(t.describe(), "ideal");
}

TEST(Topology, RingShortestWayWithClockwiseTieBreak) {
  const Topology t(TopologyKind::kRing, 6);
  EXPECT_EQ(t.node_count(), 6u);
  EXPECT_EQ(t.link_count(), 12u);  // cw + ccw per node
  EXPECT_EQ(t.hops(0, 1), 1u);
  EXPECT_EQ(t.hops(0, 5), 1u);  // counter-clockwise is shorter
  EXPECT_EQ(t.hops(1, 4), 3u);  // tie: both ways are 3
  EXPECT_EQ(t.describe(), "ring6");

  // Tie-break must route clockwise: 1 -> 2 -> 3 -> 4.
  std::vector<noc::LinkId> route;
  t.route(1, 4, &route);
  ASSERT_EQ(route.size(), 3u);
  EXPECT_EQ(t.link_dst(route[0]), 2u);
  EXPECT_EQ(t.link_dst(route[1]), 3u);
  EXPECT_EQ(t.link_dst(route[2]), 4u);

  // Shortest way wraps: 0 -> 5 uses the single counter-clockwise link.
  t.route(0, 5, &route);
  ASSERT_EQ(route.size(), 1u);
  EXPECT_EQ(t.link_src(route[0]), 0u);
  EXPECT_EQ(t.link_dst(route[0]), 5u);
}

TEST(Topology, TwoNodeRingKeepsOneLinkPerDirection) {
  const Topology t(TopologyKind::kRing, 2);
  EXPECT_EQ(t.link_count(), 2u);
  EXPECT_EQ(t.hops(0, 1), 1u);
  EXPECT_EQ(t.hops(1, 0), 1u);
}

TEST(Topology, MeshAutoGeometryIsNearSquare) {
  // 8 endpoints -> 3x3 router grid (the 9th router is a filler).
  const Topology t(TopologyKind::kMesh, 8);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.node_count(), 9u);
  EXPECT_EQ(t.describe(), "mesh3x3");
  // 2D mesh directed links: 2 * (rows*(cols-1) + cols*(rows-1)) = 24.
  EXPECT_EQ(t.link_count(), 24u);

  const Topology wide(TopologyKind::kMesh, 8, /*mesh_cols=*/4);
  EXPECT_EQ(wide.cols(), 4u);
  EXPECT_EQ(wide.rows(), 2u);
  EXPECT_EQ(wide.describe(), "mesh2x4");
}

TEST(Topology, MeshXYRoutingGoldens) {
  //  0 1 2
  //  3 4 5
  //  6 7 8
  const Topology t(TopologyKind::kMesh, 9);
  EXPECT_EQ(t.hops(0, 8), 4u);
  EXPECT_EQ(t.hops(2, 6), 4u);
  EXPECT_EQ(t.hops(4, 4), 0u);

  // XY: exhaust x first, then y — 0 -> 1 -> 2 -> 5 -> 8.
  std::vector<noc::LinkId> route;
  t.route(0, 8, &route);
  ASSERT_EQ(route.size(), 4u);
  EXPECT_EQ(t.link_dst(route[0]), 1u);
  EXPECT_EQ(t.link_dst(route[1]), 2u);
  EXPECT_EQ(t.link_dst(route[2]), 5u);
  EXPECT_EQ(t.link_dst(route[3]), 8u);

  // 8 -> 3: x first (8 -> 7 -> 6), then y (6 -> 3).
  t.route(8, 3, &route);
  ASSERT_EQ(route.size(), 3u);
  EXPECT_EQ(t.link_dst(route[0]), 7u);
  EXPECT_EQ(t.link_dst(route[1]), 6u);
  EXPECT_EQ(t.link_dst(route[2]), 3u);
}

TEST(Topology, TorusWraparoundHopGoldens) {
  // Mirrors MeshXYRoutingGoldens on the same 3x3 grid, now with wraps:
  //  0 1 2
  //  3 4 5    (+ wraparound links in both dimensions)
  //  6 7 8
  const Topology t(TopologyKind::kTorus, 9);
  EXPECT_EQ(t.describe(), "torus3x3");
  EXPECT_EQ(t.node_count(), 9u);
  EXPECT_EQ(t.link_count(), 36u);  // full torus: every node has degree 4
  EXPECT_EQ(t.hops(0, 8), 2u);     // the mesh pays 4 corner-to-corner
  EXPECT_EQ(t.hops(2, 6), 2u);
  EXPECT_EQ(t.hops(0, 2), 1u);  // x wraparound
  EXPECT_EQ(t.hops(0, 6), 1u);  // y wraparound
  EXPECT_EQ(t.hops(4, 4), 0u);
  EXPECT_EQ(t.hops(3, 5), 1u);

  // XY order still holds: 0 -> 8 wraps x first (0 -> 2), then y (2 -> 8).
  std::vector<noc::LinkId> route;
  t.route(0, 8, &route);
  ASSERT_EQ(route.size(), 2u);
  EXPECT_EQ(t.link_dst(route[0]), 2u);
  EXPECT_EQ(t.link_dst(route[1]), 8u);

  // Interior routes do not wrap: 4 -> 0 goes 4 -> 3 -> 0.
  t.route(4, 0, &route);
  ASSERT_EQ(route.size(), 2u);
  EXPECT_EQ(t.link_dst(route[0]), 3u);
  EXPECT_EQ(t.link_dst(route[1]), 0u);
}

TEST(Topology, TorusTieBreaksForwardAndSmallDimsStayMesh) {
  //  0 1 2 3    2 rows x 4 cols: the x dimension has equal-way ties, the
  //  4 5 6 7    y dimension (size 2) is too small to wrap at all.
  const Topology t(TopologyKind::kTorus, 8, /*mesh_cols=*/4);
  EXPECT_EQ(t.describe(), "torus2x4");
  // Mesh links 2*(2*3 + 4*1) = 20, plus x wraps on each row = 4; no y wraps.
  EXPECT_EQ(t.link_count(), 24u);
  EXPECT_EQ(t.hops(0, 2), 2u);  // tie: both ways are 2
  EXPECT_EQ(t.hops(0, 3), 1u);  // wrap is shorter
  // Tie-break routes forward (+x): 0 -> 1 -> 2, mirroring the ring's
  // deterministic clockwise rule.
  std::vector<noc::LinkId> route;
  t.route(0, 2, &route);
  ASSERT_EQ(route.size(), 2u);
  EXPECT_EQ(t.link_dst(route[0]), 1u);
  EXPECT_EQ(t.link_dst(route[1]), 2u);

  // A torus whose dimensions are all <= 2 degenerates to exactly the mesh.
  const Topology small(TopologyKind::kTorus, 4, /*mesh_cols=*/2);
  const Topology mesh(TopologyKind::kMesh, 4, /*mesh_cols=*/2);
  EXPECT_EQ(small.link_count(), mesh.link_count());
  EXPECT_EQ(small.hops(0, 3), mesh.hops(0, 3));
}

TEST(Topology, LinkLabelsAreTelemetryPathSafe) {
  const Topology t(TopologyKind::kRing, 3);
  const std::string label = t.link_label(0);
  EXPECT_EQ(label, "l0_0to1");
  EXPECT_EQ(label.find('/'), std::string::npos);
}

// ---------- network dynamics ----------

/// Collects (time, op, a) triples for every delivered payload.
struct Sink final : Component {
  struct Delivery {
    Tick t;
    std::uint32_t op;
    std::uint64_t a;
  };
  std::vector<Delivery> seen;
  void handle(Simulation& sim, const Event& ev) override {
    seen.push_back({sim.now(), ev.op, ev.a});
  }
};

NocConfig cfg_kind(TopologyKind kind, std::int64_t hop = 1,
                   std::int64_t link = 1) {
  NocConfig cfg;
  cfg.kind = kind;
  cfg.hop_cycles = hop;
  cfg.link_cycles = link;
  return cfg;
}

TEST(Network, IdealDeliversAtUniformLatency) {
  Simulation sim;
  Sink sink;
  const std::uint32_t dst = sim.add_component(&sink);
  Network net(cfg_kind(TopologyKind::kIdeal), 4, 100.0,
              /*ideal_latency=*/3 * kCycle);
  net.attach(sim);
  net.send(sim, 0, 0, 3, dst, 7, 42);
  net.send(sim, 0, 0, 3, dst, 7, 43);  // a crossbar never contends
  sim.run();
  ASSERT_EQ(sink.seen.size(), 2u);
  EXPECT_EQ(sink.seen[0].t, 3 * kCycle);
  EXPECT_EQ(sink.seen[1].t, 3 * kCycle);
  EXPECT_EQ(sink.seen[0].a, 42u);
  const Network::Stats s = net.stats();
  EXPECT_EQ(s.messages, 2u);
  EXPECT_EQ(s.delivered, 2u);
  EXPECT_EQ(s.total_hops, 2u);
  EXPECT_EQ(s.blocked_flits, 0u);
}

TEST(Network, LinkSerializesOneFlitPerLinkCycles) {
  // Two nodes, four same-instant messages on the one 0->1 link: arrivals
  // separate by link_cycles (1 cycle) — this is the contention the ideal
  // crossbar cannot see.
  Simulation sim;
  Sink sink;
  const std::uint32_t dst = sim.add_component(&sink);
  Network net(cfg_kind(TopologyKind::kRing, /*hop=*/1, /*link=*/1), 2, 100.0, 0);
  net.attach(sim);
  for (std::uint64_t i = 0; i < 4; ++i) net.send(sim, 0, 0, 1, dst, 0, i);
  sim.run();
  ASSERT_EQ(sink.seen.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(sink.seen[i].a, i) << "FIFO order must hold on one link";
    EXPECT_EQ(sink.seen[i].t, static_cast<Tick>(i + 1) * kCycle);
  }
  const Network::Stats s = net.stats();
  EXPECT_EQ(s.blocked_flits, 3u);                      // msgs 1..3 waited
  EXPECT_EQ(s.stall_ticks, (1 + 2 + 3) * kCycle);      // 1+2+3 cycles
  EXPECT_EQ(s.link_flits[0], 4u);
  EXPECT_EQ(s.link_busy[0], 4 * kCycle);
  EXPECT_EQ(s.max_in_flight, 4u);
}

TEST(Network, BottleneckLinkBacksUpUpstreamTraffic) {
  // 1x3 mesh (0 - 1 - 2): a burst from node 0 and a burst from node 1 both
  // need link 1->2. The later-injected flits from node 0 queue behind
  // node 1's at the shared link — their delivery times stretch out even
  // though their first hop (0->1) was uncontended.
  Simulation sim;
  Sink sink;
  const std::uint32_t dst = sim.add_component(&sink);
  NocConfig cfg = cfg_kind(TopologyKind::kMesh, /*hop=*/1, /*link=*/1);
  cfg.mesh_cols = 3;  // force the 1x3 row (auto geometry would pick 2x2)
  Network net(cfg, 3, 100.0, 0);
  ASSERT_EQ(net.topology().rows(), 1u);
  net.attach(sim);
  for (std::uint64_t i = 0; i < 3; ++i) net.send(sim, 0, 1, 2, dst, 1, i);
  net.send(sim, 0, 0, 2, dst, 0, 99);  // two hops, shares link 1->2
  sim.run();
  ASSERT_EQ(sink.seen.size(), 4u);
  // Node 1's burst serializes at cycles 1, 2, 3; the 0->2 message reaches
  // node 1 at cycle 1 but finds the shared link owned until cycle 3, so it
  // arrives at cycle 4 instead of the uncontended 2.
  EXPECT_EQ(sink.seen.back().a, 99u);
  EXPECT_EQ(sink.seen.back().t, 4 * kCycle);
  EXPECT_GT(net.stats().stall_ticks, 0);
}

TEST(Network, HopCountGoldensAcrossTheMesh) {
  // 3x3 mesh: corner-to-corner message records 4 hops; neighbours 1.
  Simulation sim;
  Sink sink;
  const std::uint32_t dst = sim.add_component(&sink);
  Network net(cfg_kind(TopologyKind::kMesh, /*hop=*/2, /*link=*/1), 9, 100.0, 0);
  net.attach(sim);
  net.send(sim, 0, 0, 8, dst, 0, 1);
  net.send(sim, 0, 3, 4, dst, 0, 2);
  sim.run();
  const Network::Stats s = net.stats();
  EXPECT_EQ(s.delivered, 2u);
  EXPECT_EQ(s.total_hops, 5u);
  // Uncontended latency = hops * hop_cycles.
  ASSERT_EQ(sink.seen.size(), 2u);
  EXPECT_EQ(sink.seen[0].a, 2u);
  EXPECT_EQ(sink.seen[0].t, 1 * 2 * kCycle);  // 1 hop * 2 cycles
  EXPECT_EQ(sink.seen[1].t, 4 * 2 * kCycle);  // 4 hops * 2 cycles
}

TEST(Network, FlitsForMatchesTheHeaderPlusPayloadFormula) {
  Network net(cfg_kind(TopologyKind::kRing), 2, 100.0, 0);
  EXPECT_EQ(net.flits_for(0), 1u);   // bare record: header only
  EXPECT_EQ(net.flits_for(1), 2u);
  EXPECT_EQ(net.flits_for(8), 2u);   // one parameter
  EXPECT_EQ(net.flits_for(9), 3u);
  EXPECT_EQ(net.flits_for(32), 5u);  // four parameters
}

TEST(Network, MultiFlitMessageOccupiesTheLinkForItsWholeTrain) {
  // Two nodes, hop=1, link=1, flit_bytes=8. A 16-byte message is 3 flits:
  // the head emerges after the hop cycle, the tail 2 link cycles later, so
  // delivery lands at cycle 3 and the link stays busy for 3 cycles. A
  // second identical message injected at the same instant queues behind
  // the whole train (3 stall cycles), not just behind one flit.
  Simulation sim;
  Sink sink;
  const std::uint32_t dst = sim.add_component(&sink);
  Network net(cfg_kind(TopologyKind::kRing, /*hop=*/1, /*link=*/1), 2, 100.0, 0);
  net.attach(sim);
  net.send(sim, 0, 0, 1, dst, 0, 1, 0, /*payload_bytes=*/16);
  net.send(sim, 0, 0, 1, dst, 0, 2, 0, /*payload_bytes=*/16);
  sim.run();
  ASSERT_EQ(sink.seen.size(), 2u);
  EXPECT_EQ(sink.seen[0].t, 3 * kCycle);
  EXPECT_EQ(sink.seen[1].t, 6 * kCycle);
  const Network::Stats s = net.stats();
  EXPECT_EQ(s.injected_flits, 6u);
  EXPECT_EQ(s.delivered_flits, 6u);
  EXPECT_EQ(s.link_flits[0], 6u);
  EXPECT_EQ(s.link_busy[0], 6 * kCycle);
  EXPECT_EQ(s.blocked_flits, 1u);
  EXPECT_EQ(s.stall_ticks, 3 * kCycle);
}

TEST(Network, FlitConservationAcrossTopologies) {
  // Property: after a drained run of seeded pseudo-random traffic, every
  // message was delivered and the delivered flit count equals the sum of
  // the per-message flit counts (= the injected count, = the traffic-matrix
  // total) on every topology — nothing is lost, duplicated or re-split.
  for (const TopologyKind kind :
       {TopologyKind::kIdeal, TopologyKind::kRing, TopologyKind::kMesh,
        TopologyKind::kTorus}) {
    Simulation sim;
    Sink sink;
    const std::uint32_t dst = sim.add_component(&sink);
    Network net(cfg_kind(kind, /*hop=*/2, /*link=*/1), 9, 100.0, 3 * kCycle);
    net.attach(sim);
    Xoshiro256 rng(2026);
    std::uint64_t expected_flits = 0;
    constexpr std::uint64_t kMsgs = 200;
    for (std::uint64_t i = 0; i < kMsgs; ++i) {
      const auto src = static_cast<noc::NodeId>(rng.below(9));
      const auto to = static_cast<noc::NodeId>(rng.below(9));
      const auto payload = static_cast<std::uint32_t>(rng.below(40));
      expected_flits += net.flits_for(payload);
      net.send(sim, sim.now(), src, to, dst, 0, i, 0, payload);
    }
    sim.run();
    const Network::Stats s = net.stats();
    EXPECT_EQ(sink.seen.size(), kMsgs) << noc::to_string(kind);
    EXPECT_EQ(s.messages, kMsgs) << noc::to_string(kind);
    EXPECT_EQ(s.delivered, kMsgs) << noc::to_string(kind);
    EXPECT_EQ(s.injected_flits, expected_flits) << noc::to_string(kind);
    EXPECT_EQ(s.delivered_flits, expected_flits) << noc::to_string(kind);
    EXPECT_EQ(std::accumulate(s.traffic.begin(), s.traffic.end(),
                              std::uint64_t{0}),
              expected_flits)
        << noc::to_string(kind);
  }
}

TEST(Network, TelemetryMatchesStats) {
  telemetry::MetricRegistry reg;
  Simulation sim;
  Sink sink;
  const std::uint32_t dst = sim.add_component(&sink);
  Network net(cfg_kind(TopologyKind::kRing), 2, 100.0, 0);
  net.attach(sim);
  net.bind_telemetry(reg, "noc");
  for (std::uint64_t i = 0; i < 3; ++i) net.send(sim, 0, 0, 1, dst, 0, i);
  sim.run();
  const telemetry::Snapshot snap = reg.snapshot();
  const Network::Stats s = net.stats();
  EXPECT_EQ(snap.counter_at("noc/messages"), s.messages);
  EXPECT_EQ(snap.counter_at("noc/delivered"), s.delivered);
  EXPECT_EQ(snap.counter_at("noc/flits"), s.injected_flits);
  EXPECT_EQ(snap.counter_at("noc/delivered_flits"), s.delivered_flits);
  EXPECT_EQ(snap.counter_at("noc/blocked_flits"), s.blocked_flits);
  EXPECT_EQ(snap.counter_at("noc/stall_ps"),
            static_cast<std::uint64_t>(s.stall_ticks));
  EXPECT_EQ(snap.counter_at("noc/link/l0_0to1/flits"), s.link_flits[0]);
  const telemetry::MetricValue* hops = snap.find("noc/hops");
  ASSERT_NE(hops, nullptr);
  EXPECT_EQ(hops->hist.count, s.delivered);
  EXPECT_EQ(hops->hist.sum, s.total_hops);
}

// ---------- placement ----------

TEST(Placement, CostTracksWeightedHopDistance) {
  //  0 - 1 - 2  (1x3 mesh row): all traffic between endpoints 0 and 2.
  const Topology t(TopologyKind::kMesh, 3, /*mesh_cols=*/3);
  noc::TrafficMatrix m(3);
  m.add(0, 2, 10);
  m.add(2, 0, 10);
  const std::vector<std::uint32_t> identity{0, 1, 2};
  EXPECT_EQ(noc::placement_cost(t, identity, m), 40u);  // 2 hops x 20 flits
  const std::vector<std::uint32_t> adjacent{0, 2, 1};   // 1 gets out of the way
  EXPECT_EQ(noc::placement_cost(t, adjacent, m), 20u);
}

TEST(Placement, SearchFindsTheAdjacentLayout) {
  const Topology t(TopologyKind::kMesh, 3, /*mesh_cols=*/3);
  noc::TrafficMatrix m(3);
  m.add(0, 2, 10);
  m.add(2, 0, 10);
  const noc::PlacementResult r = noc::optimize_placement(t, m);
  EXPECT_EQ(r.initial_cost, 40u);
  EXPECT_EQ(r.cost, 20u);
  EXPECT_EQ(noc::placement_cost(t, r.assignment, m), r.cost);
  EXPECT_EQ(t.hops(r.assignment[0], r.assignment[2]), 1u);
  EXPECT_GE(r.greedy_swaps, 1u);
}

TEST(Placement, IdealTopologyReturnsTheIdentity) {
  const Topology t(TopologyKind::kIdeal, 4);
  noc::TrafficMatrix m(4);
  m.add(0, 3, 100);
  const noc::PlacementResult r = noc::optimize_placement(t, m);
  EXPECT_EQ(r.assignment, (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(r.cost, r.initial_cost);
}

TEST(Placement, SearchMayUseFillerTiles) {
  // 3 endpoints on a 2x2 grid (tile 3 is a filler): heavy 0<->1<->2 chain
  // traffic. The search is free to park an endpoint on the filler.
  const Topology t(TopologyKind::kMesh, 3, /*mesh_cols=*/2);
  ASSERT_EQ(t.node_count(), 4u);
  noc::TrafficMatrix m(3);
  m.add(0, 1, 5);
  m.add(1, 2, 5);
  m.add(2, 0, 5);
  const noc::PlacementResult r = noc::optimize_placement(t, m);
  EXPECT_LE(r.cost, r.initial_cost);
  // Whatever layout wins, it must stay a valid injection into the grid.
  std::vector<bool> used(t.node_count(), false);
  for (const std::uint32_t tile : r.assignment) {
    ASSERT_LT(tile, t.node_count());
    EXPECT_FALSE(used[tile]);
    used[tile] = true;
  }
}

TEST(Placement, NetworkAppliesThePlacement) {
  // 1x3 mesh, endpoints 0 and 2 talk. Under the identity they pay 2 hops;
  // placed adjacently ({0, 2, 1}) the same logical send pays 1 — and the
  // traffic matrix still records the *logical* pair, so a measured matrix
  // is placement-independent.
  Simulation sim;
  Sink sink;
  const std::uint32_t dst = sim.add_component(&sink);
  NocConfig cfg = cfg_kind(TopologyKind::kMesh, /*hop=*/1, /*link=*/1);
  cfg.mesh_cols = 3;
  cfg.placement = {0, 2, 1};
  cfg.placement_name = "swap12";
  Network net(cfg, 3, 100.0, 0);
  net.attach(sim);
  EXPECT_EQ(net.tile_of(1), 2u);
  net.send(sim, 0, 0, 2, dst, 0, 7);
  sim.run();
  ASSERT_EQ(sink.seen.size(), 1u);
  EXPECT_EQ(sink.seen[0].t, 1 * kCycle);  // one hop instead of two
  const Network::Stats s = net.stats();
  EXPECT_EQ(s.total_hops, 1u);
  EXPECT_EQ(s.traffic[0 * 3 + 2], 1u) << "traffic keyed by logical endpoint";
}

// ---------- whole-stack contracts ----------

NexusSharpConfig sharp_cfg(std::uint32_t tgs, double mhz,
                           TopologyKind kind = TopologyKind::kIdeal) {
  NexusSharpConfig cfg;
  cfg.num_task_graphs = tgs;
  if (mhz > 0.0) cfg.freq_mhz = mhz;
  cfg.noc.kind = kind;
  return cfg;
}

// Pre-NoC ("seed") makespans, captured on the commit before this subsystem
// landed. The default ideal topology must reproduce them bit-identically:
// attaching the Network may not perturb a single event.
constexpr Tick kSeedSharp4Gauss120W16 = 868065000;
constexpr Tick kSeedSharp6Gauss120W16 = 1562408195;
constexpr Tick kSeedNppGauss120W8 = 1300582000;

TEST(NocIntegration, IdealTopologyReproducesSeedMakespans) {
  const Trace tr = workloads::make_gaussian({.n = 120});
  {
    NexusSharp mgr(sharp_cfg(4, 100.0));
    EXPECT_EQ(run_trace(tr, mgr, RuntimeConfig{.workers = 16}).makespan,
              kSeedSharp4Gauss120W16);
  }
  {
    NexusSharp mgr;  // default config: 6 TGs, ideal NoC
    EXPECT_EQ(run_trace(tr, mgr, RuntimeConfig{.workers = 16}).makespan,
              kSeedSharp6Gauss120W16);
  }
  {
    NexusPP mgr;
    EXPECT_EQ(run_trace(tr, mgr, RuntimeConfig{.workers = 8}).makespan,
              kSeedNppGauss120W8);
  }
}

TEST(NocIntegration, IdealNetworkWithTelemetryDoesNotPerturb) {
  // The no-perturbation contract, end to end: binding a registry (which
  // also instruments every NoC) and explicitly setting the ideal topology
  // on both the manager and the host changes no makespan.
  const Trace tr = workloads::make_gaussian({.n = 120});
  telemetry::MetricRegistry reg;
  NexusSharp mgr(sharp_cfg(4, 100.0, TopologyKind::kIdeal));
  RuntimeConfig rc;
  rc.workers = 16;
  rc.noc.kind = TopologyKind::kIdeal;
  rc.metrics = &reg;
  EXPECT_EQ(run_trace(tr, mgr, rc).makespan, kSeedSharp4Gauss120W16);
  // The ideal interconnect still observes its traffic.
  const telemetry::Snapshot snap = reg.snapshot();
  EXPECT_GT(snap.counter_at("nexus#/noc/messages"), 0u);
  EXPECT_EQ(snap.counter_at("nexus#/noc/blocked_flits"), 0u);
}

TEST(NocIntegration, RingMeshAndTorusBoundIdealFromAbove) {
  const Trace tr = workloads::make_gaussian({.n = 120});
  Tick ideal = 0;
  Tick mesh = 0;
  for (const TopologyKind kind :
       {TopologyKind::kIdeal, TopologyKind::kRing, TopologyKind::kMesh,
        TopologyKind::kTorus}) {
    NexusSharp mgr(sharp_cfg(6, 0.0, kind));
    RuntimeConfig rc;
    rc.workers = 16;
    rc.noc.kind = kind;
    const Tick makespan = run_trace(tr, mgr, rc).makespan;
    if (kind == TopologyKind::kIdeal) {
      ideal = makespan;
      EXPECT_EQ(makespan, kSeedSharp6Gauss120W16);
    } else {
      EXPECT_GT(makespan, ideal)
          << noc::to_string(kind)
          << " must pay distance + contention over the ideal crossbar";
      const Network::Stats s = mgr.network().stats();
      EXPECT_GT(s.blocked_flits, 0u);
      EXPECT_GT(s.stall_ticks, 0);
      EXPECT_GT(s.total_hops, s.delivered);  // mean hop count > 1
      // Conservation holds across the whole drained run.
      EXPECT_EQ(s.delivered, s.messages);
      EXPECT_EQ(s.delivered_flits, s.injected_flits);
      if (kind == TopologyKind::kMesh) mesh = makespan;
      if (kind == TopologyKind::kTorus) {
        // Wraparound shortens routes; same grid, same traffic.
        EXPECT_LT(makespan, mesh);
      }
    }
  }
}

TEST(NocIntegration, IdealMultiFlitAccountingDoesNotPerturb) {
  // The satellite contract: enabling multi-flit accounting (payloads are
  // attached to every send) must leave the ideal topology bit-identical to
  // the pinned seed makespans — the crossbar counts flits but never
  // charges them.
  const Trace tr = workloads::make_gaussian({.n = 120});
  NexusSharp mgr(sharp_cfg(4, 100.0));
  EXPECT_EQ(run_trace(tr, mgr, RuntimeConfig{.workers = 16}).makespan,
            kSeedSharp4Gauss120W16);
  const Network::Stats s = mgr.network().stats();
  EXPECT_EQ(s.delivered, s.messages);
  EXPECT_GT(s.injected_flits, s.messages)
      << "parameter payloads should make most messages multi-flit";
  EXPECT_EQ(s.delivered_flits, s.injected_flits);
  EXPECT_EQ(std::accumulate(s.traffic.begin(), s.traffic.end(),
                            std::uint64_t{0}),
            s.injected_flits);
}

TEST(NocIntegration, MeshRunDrainsAndStaysLive) {
  // The reordering a real topology introduces (records overtaking each
  // other on different routes) must not wedge the arbiter's gather logic.
  const Trace tr = workloads::make_workload("h264dec-8x8-10f");
  NexusSharp mgr(sharp_cfg(6, 0.0, TopologyKind::kMesh));
  RuntimeConfig rc;
  rc.workers = 32;
  rc.noc.kind = TopologyKind::kMesh;
  const RunResult r = run_trace(tr, mgr, rc);
  EXPECT_EQ(r.tasks, tr.num_tasks());
  const NexusSharp::Stats s = mgr.stats();
  EXPECT_EQ(s.sim_tasks_live, 0u);
  EXPECT_EQ(s.tasks_in, tr.num_tasks());
  EXPECT_EQ(s.ready_out, tr.num_tasks());
}

TEST(NocIntegration, HostNocChargesDispatchAndNotifyDistance) {
  // A single task on one worker: the host mesh adds the manager->core and
  // core->manager traversals around the execution interval.
  Trace tr("t");
  tr.submit(0, us(5), {{0x40, Dir::kOut}});
  tr.taskwait();
  const auto run_with = [&tr](TopologyKind kind) {
    NexusSharp mgr(sharp_cfg(2, 100.0));
    RuntimeConfig rc;
    rc.workers = 4;
    rc.noc.kind = kind;
    return run_trace(tr, mgr, rc).makespan;
  };
  const Tick ideal = run_with(TopologyKind::kIdeal);
  const Tick ring = run_with(TopologyKind::kRing);
  // Worker 0 sits at host node 1: one hop out, one hop back = 2 hops of 3
  // cycles each at the host NoC's 100 MHz clock. The dispatch carries a
  // parameter-sized payload (task id + fn ptr), so its tail flit adds one
  // more link cycle; the bare finish notification stays a single flit.
  EXPECT_EQ(ring, ideal + (2 * 3 + 1) * kCycle);
}

TEST(NocIntegration, NexusPPRingSerializesTheOneLinkPair) {
  const Trace tr = workloads::make_gaussian({.n = 120});
  NexusPPConfig cfg;
  cfg.noc.kind = TopologyKind::kRing;
  NexusPP mgr(cfg);
  const Tick makespan = run_trace(tr, mgr, RuntimeConfig{.workers = 8}).makespan;
  EXPECT_GT(makespan, kSeedNppGauss120W8);
  const Network::Stats s = mgr.network().stats();
  EXPECT_EQ(s.delivered, s.messages);
  EXPECT_EQ(s.total_hops, s.delivered);  // every route is the single hop
}

}  // namespace
}  // namespace nexus
