// Edge-case and death-test coverage for nexus/common containers and the
// assertion macros. The simulator leans on NEXUS_ASSERT staying enabled in
// release builds (a silent overflow corrupts timing results), so these tests
// pin the abort-on-violation contract in every build type.
#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "nexus/common/assert.hpp"
#include "nexus/common/fixed_ring.hpp"
#include "nexus/common/inline_vec.hpp"

namespace nexus {
namespace {

using FixedRingDeathTest = ::testing::Test;
using InlineVecDeathTest = ::testing::Test;
using NexusAssertDeathTest = ::testing::Test;

// ---------------------------------------------------------------------------
// FixedRing
// ---------------------------------------------------------------------------

TEST(FixedRingEdge, WrapAroundKeepsFifoOrder) {
  FixedRing<int> ring(3);
  ring.push(1);
  ring.push(2);
  ring.push(3);
  EXPECT_TRUE(ring.full());
  EXPECT_EQ(ring.pop(), 1);
  ring.push(4);  // head has advanced; this write wraps
  EXPECT_EQ(ring.pop(), 2);
  EXPECT_EQ(ring.pop(), 3);
  EXPECT_EQ(ring.pop(), 4);
  EXPECT_TRUE(ring.empty());
}

TEST(FixedRingEdge, TryPushOnFullLeavesRingUnchanged) {
  FixedRing<int> ring(2);
  ASSERT_TRUE(ring.try_push(10));
  ASSERT_TRUE(ring.try_push(20));
  EXPECT_FALSE(ring.try_push(30));
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.at(0), 10);
  EXPECT_EQ(ring.at(1), 20);
}

TEST(FixedRingEdge, ClearResetsToEmpty) {
  FixedRing<std::string> ring(4);
  ring.push("a");
  ring.push("b");
  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0u);
  ring.push("c");  // usable again after clear
  EXPECT_EQ(ring.front(), "c");
}

TEST(FixedRingEdge, CapacityOneCyclesIndefinitely) {
  FixedRing<int> ring(1);
  for (int i = 0; i < 10; ++i) {
    ring.push(i);
    EXPECT_TRUE(ring.full());
    EXPECT_EQ(ring.pop(), i);
  }
}

TEST(FixedRingDeathTest, ZeroCapacityAborts) {
  EXPECT_DEATH({ FixedRing<int> ring(0); }, "capacity must be positive");
}

TEST(FixedRingDeathTest, PushOnFullAborts) {
  FixedRing<int> ring(1);
  ring.push(1);
  EXPECT_DEATH(ring.push(2), "push on full FixedRing");
}

TEST(FixedRingDeathTest, PopOnEmptyAborts) {
  FixedRing<int> ring(2);
  EXPECT_DEATH({ (void)ring.pop(); }, "pop on empty FixedRing");
}

TEST(FixedRingDeathTest, FrontOnEmptyAborts) {
  FixedRing<int> ring(2);
  EXPECT_DEATH({ (void)ring.front(); }, "front on empty FixedRing");
}

TEST(FixedRingDeathTest, AtPastSizeAborts) {
  FixedRing<int> ring(4);
  ring.push(1);
  EXPECT_DEATH({ (void)ring.at(1); }, "NEXUS_ASSERT failed");
}

// ---------------------------------------------------------------------------
// InlineVec
// ---------------------------------------------------------------------------

TEST(InlineVecEdge, FillToCapacityAndIterate) {
  InlineVec<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i * 10);
  EXPECT_TRUE(v.full());
  int expect = 0;
  for (const int x : v) {
    EXPECT_EQ(x, expect);
    expect += 10;
  }
}

TEST(InlineVecEdge, EqualityComparesSizeThenElements) {
  InlineVec<int, 4> a{1, 2};
  InlineVec<int, 4> b{1, 2};
  InlineVec<int, 4> c{1, 2, 3};
  InlineVec<int, 4> d{1, 9};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
}

TEST(InlineVecEdge, ClearAllowsRefill) {
  InlineVec<int, 2> v{7, 8};
  v.clear();
  EXPECT_TRUE(v.empty());
  v.push_back(9);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 9);
}

using IntVec2 = InlineVec<int, 2>;

TEST(InlineVecDeathTest, PushBeyondCapacityAborts) {
  IntVec2 v{1, 2};
  EXPECT_DEATH(v.push_back(3), "InlineVec overflow");
}

TEST(InlineVecDeathTest, OversizedInitializerListAborts) {
  EXPECT_DEATH({ IntVec2 v({1, 2, 3}); }, "NEXUS_ASSERT failed");
}

// ---------------------------------------------------------------------------
// NEXUS_ASSERT / NEXUS_DCHECK build-type contract
// ---------------------------------------------------------------------------

TEST(NexusAssertDeathTest, AssertFiresInEveryBuildType) {
  // Always-on: release builds must still catch invariant violations.
  EXPECT_DEATH(NEXUS_ASSERT(false), "NEXUS_ASSERT failed");
}

TEST(NexusAssertDeathTest, AssertMsgIncludesMessage) {
  EXPECT_DEATH(NEXUS_ASSERT_MSG(1 + 1 == 3, "arithmetic is broken"),
               "arithmetic is broken");
}

TEST(NexusAssertDeathTest, DcheckFollowsNdebug) {
#if defined(NDEBUG)
  // Compiled out in release: evaluating must be a no-op, not an abort.
  NEXUS_DCHECK(false);
  SUCCEED();
#else
  EXPECT_DEATH(NEXUS_DCHECK(false), "NEXUS_ASSERT failed");
#endif
}

TEST(NexusAssertEdge, PassingAssertsAreSilent) {
  NEXUS_ASSERT(true);
  NEXUS_ASSERT_MSG(2 + 2 == 4, "unused");
  NEXUS_DCHECK(true);
  SUCCEED();
}

}  // namespace
}  // namespace nexus
