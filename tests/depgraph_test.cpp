#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <queue>
#include <set>
#include <vector>

#include "nexus/common/rng.hpp"
#include "nexus/depgraph/dependency_tracker.hpp"

namespace nexus {
namespace {

TaskDescriptor make_task(TaskId id, std::initializer_list<Param> ps) {
  TaskDescriptor t;
  t.id = id;
  t.fn = 0;
  t.duration = us(1);
  for (const auto& p : ps) t.params.push_back(p);
  return t;
}

// ---------- basic hazard ordering ----------

TEST(DependencyTracker, RawDependency) {
  DependencyTracker dt;
  EXPECT_EQ(dt.submit(make_task(0, {{0x10, Dir::kOut}})), 0u);        // writer runs
  EXPECT_EQ(dt.submit(make_task(1, {{0x10, Dir::kIn}})), 1u);         // reader waits
  std::vector<TaskId> ready;
  dt.finish(0, &ready);
  EXPECT_EQ(ready, (std::vector<TaskId>{1}));
}

TEST(DependencyTracker, WawDependency) {
  DependencyTracker dt;
  dt.submit(make_task(0, {{0x10, Dir::kOut}}));
  EXPECT_EQ(dt.submit(make_task(1, {{0x10, Dir::kOut}})), 1u);
  std::vector<TaskId> ready;
  dt.finish(0, &ready);
  EXPECT_EQ(ready, (std::vector<TaskId>{1}));
}

TEST(DependencyTracker, WarDependency) {
  DependencyTracker dt;
  dt.submit(make_task(0, {{0x10, Dir::kIn}}));   // reader on fresh address runs
  EXPECT_EQ(dt.submit(make_task(1, {{0x10, Dir::kOut}})), 1u);  // writer waits
  std::vector<TaskId> ready;
  dt.finish(0, &ready);
  EXPECT_EQ(ready, (std::vector<TaskId>{1}));
}

TEST(DependencyTracker, ConcurrentReadersShareHeadGroup) {
  DependencyTracker dt;
  dt.submit(make_task(0, {{0x10, Dir::kOut}}));
  EXPECT_EQ(dt.submit(make_task(1, {{0x10, Dir::kIn}})), 1u);
  EXPECT_EQ(dt.submit(make_task(2, {{0x10, Dir::kIn}})), 1u);
  EXPECT_EQ(dt.submit(make_task(3, {{0x10, Dir::kIn}})), 1u);
  std::vector<TaskId> ready;
  dt.finish(0, &ready);
  // All three readers kick off at once.
  std::sort(ready.begin(), ready.end());
  EXPECT_EQ(ready, (std::vector<TaskId>{1, 2, 3}));
}

TEST(DependencyTracker, ReadersOnFreshAddressRunImmediately) {
  DependencyTracker dt;
  EXPECT_EQ(dt.submit(make_task(0, {{0x10, Dir::kIn}})), 0u);
  EXPECT_EQ(dt.submit(make_task(1, {{0x10, Dir::kIn}})), 0u);  // joins running group
}

TEST(DependencyTracker, WriterWaitsForWholeReaderGroup) {
  DependencyTracker dt;
  dt.submit(make_task(0, {{0x10, Dir::kIn}}));
  dt.submit(make_task(1, {{0x10, Dir::kIn}}));
  EXPECT_EQ(dt.submit(make_task(2, {{0x10, Dir::kOut}})), 1u);
  std::vector<TaskId> ready;
  dt.finish(0, &ready);
  EXPECT_TRUE(ready.empty());  // one reader still running
  dt.finish(1, &ready);
  EXPECT_EQ(ready, (std::vector<TaskId>{2}));
}

TEST(DependencyTracker, ReaderAfterQueuedWriterWaits) {
  // r0 running; w1 queued; r2 must NOT join r0's group (it would read
  // pre-w1 data) — it queues behind w1.
  DependencyTracker dt;
  dt.submit(make_task(0, {{0x10, Dir::kIn}}));
  dt.submit(make_task(1, {{0x10, Dir::kOut}}));
  EXPECT_EQ(dt.submit(make_task(2, {{0x10, Dir::kIn}})), 1u);
  std::vector<TaskId> ready;
  dt.finish(0, &ready);
  EXPECT_EQ(ready, (std::vector<TaskId>{1}));
  ready.clear();
  dt.finish(1, &ready);
  EXPECT_EQ(ready, (std::vector<TaskId>{2}));
}

TEST(DependencyTracker, QueuedReadersCoalesceIntoOneGroup) {
  DependencyTracker dt;
  dt.submit(make_task(0, {{0x10, Dir::kOut}}));
  dt.submit(make_task(1, {{0x10, Dir::kIn}}));
  dt.submit(make_task(2, {{0x10, Dir::kIn}}));
  dt.submit(make_task(3, {{0x10, Dir::kOut}}));
  dt.submit(make_task(4, {{0x10, Dir::kIn}}));  // separate group after writer 3
  std::vector<TaskId> ready;
  dt.finish(0, &ready);
  std::sort(ready.begin(), ready.end());
  EXPECT_EQ(ready, (std::vector<TaskId>{1, 2}));
  ready.clear();
  dt.finish(1, &ready);
  EXPECT_TRUE(ready.empty());
  dt.finish(2, &ready);
  EXPECT_EQ(ready, (std::vector<TaskId>{3}));
  ready.clear();
  dt.finish(3, &ready);
  EXPECT_EQ(ready, (std::vector<TaskId>{4}));
}

TEST(DependencyTracker, MultiParamTaskReadyOnlyWhenAllParamsClear) {
  DependencyTracker dt;
  dt.submit(make_task(0, {{0x10, Dir::kOut}}));
  dt.submit(make_task(1, {{0x20, Dir::kOut}}));
  EXPECT_EQ(dt.submit(make_task(2, {{0x10, Dir::kIn}, {0x20, Dir::kIn}})), 2u);
  std::vector<TaskId> ready;
  dt.finish(0, &ready);
  EXPECT_TRUE(ready.empty());
  EXPECT_EQ(dt.dep_count(2), 1u);
  dt.finish(1, &ready);
  EXPECT_EQ(ready, (std::vector<TaskId>{2}));
}

TEST(DependencyTracker, InoutBehavesAsReadAndWrite) {
  DependencyTracker dt;
  dt.submit(make_task(0, {{0x10, Dir::kInOut}}));
  EXPECT_EQ(dt.submit(make_task(1, {{0x10, Dir::kInOut}})), 1u);
  EXPECT_EQ(dt.submit(make_task(2, {{0x10, Dir::kInOut}})), 1u);
  std::vector<TaskId> ready;
  dt.finish(0, &ready);
  EXPECT_EQ(ready, (std::vector<TaskId>{1}));  // strict chain
}

// ---------- pending_writer / taskwait_on support ----------

TEST(DependencyTracker, PendingWriterTracksLatestUnfinished) {
  DependencyTracker dt;
  EXPECT_EQ(dt.pending_writer(0x10), std::nullopt);
  dt.submit(make_task(0, {{0x10, Dir::kOut}}));
  EXPECT_EQ(dt.pending_writer(0x10), std::optional<TaskId>(0));
  dt.submit(make_task(1, {{0x10, Dir::kOut}}));
  EXPECT_EQ(dt.pending_writer(0x10), std::optional<TaskId>(1));
  std::vector<TaskId> ready;
  dt.finish(0, &ready);
  EXPECT_EQ(dt.pending_writer(0x10), std::optional<TaskId>(1));
  dt.finish(1, &ready);
  EXPECT_EQ(dt.pending_writer(0x10), std::nullopt);
}

TEST(DependencyTracker, PendingWriterIgnoresRunningReaders) {
  DependencyTracker dt;
  dt.submit(make_task(0, {{0x10, Dir::kOut}}));
  dt.submit(make_task(1, {{0x10, Dir::kIn}}));
  std::vector<TaskId> ready;
  dt.finish(0, &ready);
  // Data is produced even though a reader is still using it.
  EXPECT_EQ(dt.pending_writer(0x10), std::nullopt);
}

// ---------- lifecycle / bookkeeping ----------

TEST(DependencyTracker, StateDrainsToEmpty) {
  DependencyTracker dt;
  dt.submit(make_task(0, {{0x10, Dir::kOut}}));
  dt.submit(make_task(1, {{0x10, Dir::kIn}, {0x20, Dir::kOut}}));
  EXPECT_EQ(dt.in_flight(), 2u);
  std::vector<TaskId> ready;
  dt.finish(0, &ready);
  dt.finish(1, &ready);
  EXPECT_EQ(dt.in_flight(), 0u);
  EXPECT_EQ(dt.live_addresses(), 0u);  // all entries reclaimed
  EXPECT_TRUE(dt.is_finished(0));
  EXPECT_TRUE(dt.is_finished(1));
}

TEST(DependencyTracker, GaussianFanoutPattern) {
  // The Fig. 6 / Section VI pattern: one pivot row read by N eliminations.
  constexpr int kN = 249;
  DependencyTracker dt;
  dt.submit(make_task(0, {{0x1000, Dir::kInOut}}));  // pivot task T1
  for (TaskId j = 1; j <= kN; ++j) {
    const Addr row = 0x2000 + j * 0x40;
    EXPECT_EQ(dt.submit(make_task(j, {{0x1000, Dir::kIn}, {row, Dir::kInOut}})), 1u);
  }
  std::vector<TaskId> ready;
  dt.finish(0, &ready);
  EXPECT_EQ(ready.size(), static_cast<std::size_t>(kN));  // all kick off at once
}

// ---------- randomized property test ----------
//
// Build random task streams over a small address pool, execute with a random
// (but legal) schedule, and check the fundamental safety property: no two
// concurrent tasks conflict (write/write or read/write on a shared address),
// and the whole stream always drains (liveness).

struct RandomStreamParams {
  int n_tasks;
  int n_addrs;
  int max_params;
  std::uint64_t seed;
};

class DepTrackerPropertyTest : public ::testing::TestWithParam<RandomStreamParams> {};

TEST_P(DepTrackerPropertyTest, SafetyAndLiveness) {
  const auto p = GetParam();
  Xoshiro256 rng(p.seed);

  std::vector<TaskDescriptor> tasks;
  for (int i = 0; i < p.n_tasks; ++i) {
    TaskDescriptor t;
    t.id = static_cast<TaskId>(i);
    t.duration = us(1);
    // A task cannot name more distinct addresses than the pool holds.
    const int param_cap = std::min(p.max_params, p.n_addrs);
    const int np = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(param_cap)));
    std::set<Addr> used;
    for (int k = 0; k < np; ++k) {
      Addr a = 0;
      do {
        a = 0x1000 + rng.below(static_cast<std::uint64_t>(p.n_addrs)) * 0x40;
      } while (used.count(a) > 0);
      used.insert(a);
      const auto dir = static_cast<Dir>(rng.below(3));
      t.params.push_back({a, dir});
    }
    tasks.push_back(t);
  }

  DependencyTracker dt;
  std::vector<TaskId> running;
  std::vector<TaskId> ready_pool;
  std::size_t submitted = 0;
  std::size_t finished = 0;

  auto conflict = [&](const TaskDescriptor& a, const TaskDescriptor& b) {
    for (const auto& pa : a.params)
      for (const auto& pb : b.params)
        if (pa.addr == pb.addr && (is_write(pa.dir) || is_write(pb.dir))) return true;
    return false;
  };

  while (finished < tasks.size()) {
    const bool can_submit = submitted < tasks.size();
    const bool can_finish = !running.empty();
    const bool can_start = !ready_pool.empty();
    const auto choice = rng.below(3);
    if (choice == 0 && can_submit) {
      if (dt.submit(tasks[submitted]) == 0) ready_pool.push_back(tasks[submitted].id);
      ++submitted;
    } else if ((choice == 1 && can_start) || (!can_submit && !can_finish && can_start)) {
      const auto idx = rng.below(ready_pool.size());
      const TaskId id = ready_pool[idx];
      ready_pool.erase(ready_pool.begin() + static_cast<std::ptrdiff_t>(idx));
      // Safety: the newly running task must not conflict with anything running.
      for (const TaskId r : running)
        ASSERT_FALSE(conflict(tasks[id], tasks[r]))
            << "conflicting tasks " << id << " and " << r << " ran concurrently";
      running.push_back(id);
    } else if (can_finish) {
      const auto idx = rng.below(running.size());
      const TaskId id = running[idx];
      running.erase(running.begin() + static_cast<std::ptrdiff_t>(idx));
      std::vector<TaskId> newly;
      dt.finish(id, &newly);
      ++finished;
      for (const TaskId n : newly) ready_pool.push_back(n);
    } else if (can_submit) {
      if (dt.submit(tasks[submitted]) == 0) ready_pool.push_back(tasks[submitted].id);
      ++submitted;
    }
  }
  EXPECT_EQ(dt.in_flight(), 0u);
  EXPECT_EQ(dt.live_addresses(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    RandomStreams, DepTrackerPropertyTest,
    ::testing::Values(RandomStreamParams{200, 4, 3, 1},
                      RandomStreamParams{200, 2, 2, 2},
                      RandomStreamParams{500, 8, 4, 3},
                      RandomStreamParams{500, 16, 6, 4},
                      RandomStreamParams{1000, 3, 3, 5},
                      RandomStreamParams{1000, 32, 6, 6},
                      RandomStreamParams{2000, 1, 2, 7},   // single hot address
                      RandomStreamParams{300, 64, 1, 8}),  // independent-ish
    [](const ::testing::TestParamInfo<RandomStreamParams>& pi) {
      return "n" + std::to_string(pi.param.n_tasks) + "_a" +
             std::to_string(pi.param.n_addrs) + "_p" +
             std::to_string(pi.param.max_params) + "_s" +
             std::to_string(pi.param.seed);
    });

}  // namespace
}  // namespace nexus
