// Host-simulation driver tests: scheduling semantics, barrier handling,
// the ideal manager against hand-computed makespans and the independent
// list-scheduler oracle, and the Nanos cost model's contention behaviour.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "nexus/runtime/ideal_manager.hpp"
#include "nexus/runtime/list_scheduler.hpp"
#include "nexus/runtime/nanos_model.hpp"
#include "nexus/runtime/simulation_driver.hpp"
#include "nexus/workloads/workloads.hpp"

namespace nexus {
namespace {

ParamList p_out(Addr a) { return ParamList{Param{a, Dir::kOut}}; }
ParamList p_inout(Addr a) { return ParamList{Param{a, Dir::kInOut}}; }

RunResult run_ideal(const Trace& tr, std::uint32_t workers) {
  IdealManager mgr;
  return run_trace(tr, mgr, RuntimeConfig{.workers = workers});
}

// ---------- ideal manager: hand-computed makespans ----------

TEST(IdealRun, SingleTask) {
  Trace tr("t");
  tr.submit(0, us(10), p_out(0x10));
  tr.taskwait();
  EXPECT_EQ(run_ideal(tr, 1).makespan, us(10));
  EXPECT_EQ(run_ideal(tr, 4).makespan, us(10));
}

TEST(IdealRun, IndependentTasksScalePerfectly) {
  Trace tr("t");
  for (int i = 0; i < 8; ++i) tr.submit(0, us(10), p_out(0x100 + 0x40u * static_cast<Addr>(i)));
  tr.taskwait();
  EXPECT_EQ(run_ideal(tr, 1).makespan, us(80));
  EXPECT_EQ(run_ideal(tr, 2).makespan, us(40));
  EXPECT_EQ(run_ideal(tr, 4).makespan, us(20));
  EXPECT_EQ(run_ideal(tr, 8).makespan, us(10));
  EXPECT_EQ(run_ideal(tr, 16).makespan, us(10));  // no more parallelism
}

TEST(IdealRun, ChainSerializes) {
  Trace tr("t");
  for (int i = 0; i < 5; ++i) tr.submit(0, us(7), p_inout(0x10));
  tr.taskwait();
  EXPECT_EQ(run_ideal(tr, 8).makespan, us(35));
}

TEST(IdealRun, DiamondDag) {
  // a -> (b, c) -> d; durations 10, 20, 30, 5.
  Trace tr("t");
  tr.submit(0, us(10), p_out(0xA));
  {
    ParamList p{Param{0xA, Dir::kIn}, Param{0xB, Dir::kOut}};
    tr.submit(0, us(20), p);
  }
  {
    ParamList p{Param{0xA, Dir::kIn}, Param{0xC, Dir::kOut}};
    tr.submit(0, us(30), p);
  }
  {
    ParamList p{Param{0xB, Dir::kIn}, Param{0xC, Dir::kIn}, Param{0xD, Dir::kOut}};
    tr.submit(0, us(5), p);
  }
  tr.taskwait();
  EXPECT_EQ(run_ideal(tr, 2).makespan, us(45));  // 10 + max(20,30) + 5
  EXPECT_EQ(run_ideal(tr, 1).makespan, us(65));  // fully serial
  EXPECT_EQ(critical_path(tr), us(45));
}

TEST(IdealRun, TaskwaitBlocksSubmission) {
  // Two independent tasks separated by a taskwait cannot overlap.
  Trace tr("t");
  tr.submit(0, us(10), p_out(0x10));
  tr.taskwait();
  tr.submit(0, us(10), p_out(0x20));
  tr.taskwait();
  EXPECT_EQ(run_ideal(tr, 4).makespan, us(20));
}

TEST(IdealRun, TaskwaitOnBlocksOnlyOnProducer) {
  // t0 (slow, writes A), t1 (fast, writes B); taskwait_on(B) must not wait
  // for t0, so t2 (writes C) overlaps with t0.
  Trace tr("t");
  tr.submit(0, us(100), p_out(0xA));
  tr.submit(0, us(10), p_out(0xB));
  tr.taskwait_on(0xB);
  tr.submit(0, us(90), p_out(0xC));
  tr.taskwait();
  EXPECT_EQ(run_ideal(tr, 4).makespan, us(100));  // t2 runs t=10..100
}

TEST(IdealRun, TaskwaitOnAlreadyFinishedProducer) {
  Trace tr("t");
  tr.submit(0, us(10), p_out(0xA));
  tr.submit(0, us(50), p_out(0xB));
  tr.taskwait_on(0xA);  // producer finishes long before the wait matters
  tr.submit(0, us(50), p_out(0xC));
  tr.taskwait();
  EXPECT_EQ(run_ideal(tr, 4).makespan, us(60));  // C starts at 10
}

TEST(IdealRun, FifoDispatchOrder) {
  // One worker: tasks run in readiness order even if later ones are shorter.
  Trace tr("t");
  tr.submit(0, us(30), p_out(0x10));
  tr.submit(0, us(1), p_out(0x20));
  tr.submit(0, us(1), p_out(0x30));
  tr.taskwait();
  const RunResult r = run_ideal(tr, 1);
  EXPECT_EQ(r.makespan, us(32));
}

TEST(IdealRun, UtilizationAccounting) {
  Trace tr("t");
  for (int i = 0; i < 4; ++i) tr.submit(0, us(10), p_out(0x100 + 0x40u * static_cast<Addr>(i)));
  tr.taskwait();
  const RunResult r = run_ideal(tr, 4);
  EXPECT_DOUBLE_EQ(r.utilization, 1.0);
  const RunResult r2 = run_ideal(tr, 8);
  EXPECT_DOUBLE_EQ(r2.utilization, 0.5);
}

// ---------- cross-validation: DES+IdealManager == list scheduler ----------

class IdealOracleTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint32_t>> {};

TEST_P(IdealOracleTest, DesMatchesListScheduler) {
  const auto& [name, workers] = GetParam();
  Trace tr;
  if (name == "gauss100") {
    tr = workloads::make_gaussian({.n = 100});
  } else if (name == "h264-8x8") {
    tr = workloads::make_h264dec(workloads::h264_config(8));
  } else if (name == "cray") {
    tr = workloads::make_cray();
  } else {
    workloads::StreamclusterConfig cfg;
    cfg.total_tasks = 4000;
    cfg.phases = 10;
    cfg.total_work = ms(20);
    tr = workloads::make_streamcluster(cfg);
  }
  const RunResult des = run_ideal(tr, workers);
  EXPECT_EQ(des.makespan, list_schedule_makespan(tr, workers))
      << name << " on " << workers << " workers";
  // The critical path lower-bounds every schedule.
  EXPECT_GE(des.makespan, critical_path(tr));
}

INSTANTIATE_TEST_SUITE_P(
    TracesXWorkers, IdealOracleTest,
    ::testing::Combine(::testing::Values("gauss100", "h264-8x8", "cray", "sc-small"),
                       ::testing::Values(1u, 3u, 16u, 256u)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::uint32_t>>& pi) {
      auto n = std::get<0>(pi.param) + "_w" + std::to_string(std::get<1>(pi.param));
      for (auto& c : n)
        if (c == '-') c = '_';
      return n;
    });

TEST(IdealRun, ManyWorkersReachCriticalPath) {
  const Trace tr = workloads::make_gaussian({.n = 60});
  EXPECT_EQ(run_ideal(tr, 100000).makespan, critical_path(tr));
}

// ---------- determinism ----------

TEST(Runtime, DeterministicAcrossRuns) {
  const Trace tr = workloads::make_h264dec(workloads::h264_config(8));
  const RunResult a = run_ideal(tr, 16);
  const RunResult b = run_ideal(tr, 16);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.events, b.events);
}

// ---------- Nanos cost model ----------

TEST(Nanos, SingleTaskCostBreakdown) {
  Trace tr("t");
  tr.submit(0, us(10), p_out(0x10));
  tr.taskwait();
  NanosConfig cfg;
  cfg.create_cost = us(2);
  cfg.insert_per_param = us(1);
  cfg.dispatch_cs = us(3);
  cfg.finish_cs = us(4);
  NanosModel mgr(cfg);
  const RunResult r = run_trace(tr, mgr, RuntimeConfig{.workers = 1});
  // create(2) + insert(1) -> ready at 3; dispatch CS ends 6; exec 10 -> 16;
  // makespan is the task completion (the completion CS holds the worker but
  // the barrier releases on task completion).
  EXPECT_EQ(r.makespan, us(16));
}

TEST(Nanos, SubmissionSerializesOnMaster) {
  // 100 tiny tasks, 4 workers: master-side cost (create+insert) bounds the
  // rate; speedup over 1 worker must be well below 4.
  Trace tr("t");
  for (int i = 0; i < 100; ++i)
    tr.submit(0, us(2), p_out(0x1000 + 0x40u * static_cast<Addr>(i)));
  tr.taskwait();
  NanosModel m1;
  NanosModel m4;
  const Tick t1 = run_trace(tr, m1, RuntimeConfig{.workers = 1}).makespan;
  const Tick t4 = run_trace(tr, m4, RuntimeConfig{.workers = 4}).makespan;
  // Tasks are 2us; Nanos costs several us per task, so extra workers barely help.
  EXPECT_LT(static_cast<double>(t1) / static_cast<double>(t4), 1.5);
}

TEST(Nanos, LockContentionGrowsWithWorkers) {
  // Medium tasks: with more workers the runtime lock sees more dispatch and
  // completion sections; its total queueing wait must grow.
  workloads::StreamclusterConfig cfg;
  cfg.total_tasks = 800;
  cfg.phases = 2;
  cfg.total_work = ms(80);  // 100us tasks
  const Trace tr = make_streamcluster(cfg);
  NanosModel m2;
  NanosModel m32;
  (void)run_trace(tr, m2, RuntimeConfig{.workers = 2});
  (void)run_trace(tr, m32, RuntimeConfig{.workers = 32});
  EXPECT_GT(m32.lock().total_wait(), m2.lock().total_wait());
}

TEST(Nanos, CoarseTasksStillScale) {
  // c-ray-like: 6ms tasks dwarf runtime overheads; 8 workers ~ 8x.
  Trace tr("t");
  for (int i = 0; i < 64; ++i)
    tr.submit(0, ms(6), p_out(0x1000 + 0x40u * static_cast<Addr>(i)));
  tr.taskwait();
  NanosModel m1;
  NanosModel m8;
  const Tick t1 = run_trace(tr, m1, RuntimeConfig{.workers = 1}).makespan;
  const Tick t8 = run_trace(tr, m8, RuntimeConfig{.workers = 8}).makespan;
  const double speedup = static_cast<double>(t1) / static_cast<double>(t8);
  EXPECT_GT(speedup, 7.0);
  EXPECT_LE(speedup, 8.1);
}

TEST(Nanos, HostMessageCostSlowsEverything) {
  const Trace tr = workloads::make_gaussian({.n = 40});
  NanosModel a;
  NanosModel b;
  const Tick t0 = run_trace(tr, a, RuntimeConfig{.workers = 4}).makespan;
  const Tick t1 =
      run_trace(tr, b, RuntimeConfig{.workers = 4, .host_message_cost = us(2)})
          .makespan;
  EXPECT_GT(t1, t0);
}

}  // namespace
}  // namespace nexus
