// Backwards-compatible shim: the schedule oracle moved into the library
// (nexus/runtime/schedule_validator.hpp) so downstream users can validate
// their own manager models. Tests use it through this alias.
#pragma once

#include "nexus/runtime/schedule_validator.hpp"

namespace nexus::testing {

using nexus::validate_schedule;

}  // namespace nexus::testing
