// Host-side self-profiler (telemetry::Profiler): the exclusion-ledger
// attribution invariants, the deterministic frozen tree shape, the
// zero-overhead-when-detached contract (attached and detached runs produce
// bit-identical schedules and BENCH records — the trace_test pattern), and
// the exporter round-trips.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "nexus/harness/experiment.hpp"
#include "nexus/nexussharp/nexussharp.hpp"
#include "nexus/runtime/simulation_driver.hpp"
#include "nexus/sim/simulation.hpp"
#include "nexus/telemetry/profile_export.hpp"
#include "nexus/telemetry/profiler.hpp"
#include "nexus/telemetry/registry.hpp"
#include "nexus/telemetry/writers.hpp"
#include "nexus/workloads/workloads.hpp"

namespace nexus {
namespace {

using telemetry::ProfileData;
using telemetry::ProfileNode;
using telemetry::Profiler;
using telemetry::ProfScope;

/// Burn a little measurable wall time (freeze() calibrates against
/// steady_clock, so any busy loop shows up as nanoseconds).
void spin() {
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < 20000; ++i) sink = sink + 1;
}

// ---------- node registration and frozen shape ----------

TEST(Profiler, NodesAreFindOrCreateAndStable) {
  Profiler p;
  const auto a = p.node(Profiler::kRoot, "queue");
  const auto b = p.node(a, "pop");
  EXPECT_EQ(p.node(Profiler::kRoot, "queue"), a);
  EXPECT_EQ(p.node(a, "pop"), b);
  EXPECT_NE(p.node(a, "push"), b);
  EXPECT_EQ(p.num_nodes(), 4u);  // root + queue + pop + push
}

TEST(Profiler, FreezeSortsChildrenAndKeepsParentsFirst) {
  Profiler p;
  // Register in reverse-alphabetical order; the frozen shape must not
  // depend on registration order.
  const auto z = p.node(Profiler::kRoot, "zeta");
  p.node(Profiler::kRoot, "alpha");
  p.node(z, "nested");
  const ProfileData d = p.freeze();
  ASSERT_EQ(d.nodes.size(), 4u);
  EXPECT_EQ(d.nodes[0].name, "all");
  const ProfileNode& root = d.nodes[0];
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(d.nodes[root.children[0]].name, "alpha");
  EXPECT_EQ(d.nodes[root.children[1]].name, "zeta");
  for (std::uint32_t i = 1; i < d.nodes.size(); ++i)
    EXPECT_LT(d.nodes[i].parent, i) << "parent must precede child";
}

TEST(Profiler, PathOfAndFindRoundTrip) {
  Profiler p;
  const auto q = p.node(Profiler::kRoot, "queue");
  p.node(q, "pop");
  const ProfileData d = p.freeze();
  const ProfileNode* pop = d.find("queue;pop");
  ASSERT_NE(pop, nullptr);
  EXPECT_EQ(pop->name, "pop");
  bool found = false;
  for (std::uint32_t i = 0; i < d.nodes.size(); ++i) {
    if (&d.nodes[i] == pop) {
      EXPECT_EQ(d.path_of(i), "all;queue;pop");
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(d.find("queue;nope"), nullptr);
  EXPECT_EQ(d.find("nope"), nullptr);
}

// ---------- exclusion-ledger attribution ----------

TEST(Profiler, NestedScopesAttributeExclusively) {
  Profiler p;
  const auto outer = p.node(Profiler::kRoot, "outer");
  const auto inner = p.node(outer, "inner");
  {
    ProfScope so(&p, outer);
    spin();
    {
      ProfScope si(&p, inner);
      spin();
    }
    spin();
  }
  const ProfileData d = p.freeze();
  const ProfileNode* o = d.find("outer");
  const ProfileNode* i = d.find("outer;inner");
  ASSERT_NE(o, nullptr);
  ASSERT_NE(i, nullptr);
  EXPECT_EQ(o->count, 1u);
  EXPECT_EQ(i->count, 1u);
  EXPECT_GT(o->self_ns, 0u);
  EXPECT_GT(i->self_ns, 0u);
  // Exclusive attribution: the outer total is self + the nested total, and
  // the root rollup reconciles exactly (no nanosecond lands in two nodes).
  EXPECT_EQ(o->total_ns, o->self_ns + i->total_ns);
  EXPECT_EQ(d.nodes[0].total_ns, o->total_ns);
}

TEST(Profiler, SiblingScopesSumIntoTheParentLedger) {
  Profiler p;
  const auto outer = p.node(Profiler::kRoot, "outer");
  const auto a = p.node(outer, "a");
  const auto b = p.node(outer, "b");
  {
    ProfScope so(&p, outer);
    for (int k = 0; k < 3; ++k) {
      ProfScope sa(&p, a);
      spin();
    }
    {
      ProfScope sb(&p, b);
      spin();
    }
  }
  const ProfileData d = p.freeze();
  const ProfileNode* o = d.find("outer");
  ASSERT_NE(o, nullptr);
  EXPECT_EQ(d.find("outer;a")->count, 3u);
  EXPECT_EQ(d.find("outer;b")->count, 1u);
  EXPECT_EQ(o->total_ns,
            o->self_ns + d.find("outer;a")->total_ns +
                d.find("outer;b")->total_ns);
}

TEST(Profiler, DynamicNestingOutsideTheStaticTreeStaysExclusive) {
  // A scope on a node that is NOT a static ancestor of the inner scope's
  // node: the ledger must still net the inner interval out of the outer
  // one, so the two siblings never double-count the same wall time.
  Profiler p;
  const auto a = p.node(Profiler::kRoot, "a");
  const auto b = p.node(Profiler::kRoot, "b");
  {
    ProfScope sa(&p, a);
    spin();
    {
      ProfScope sb(&p, b);  // dynamically nested, statically a sibling
      spin();
    }
  }
  const ProfileData d = p.freeze();
  const std::uint64_t root_total = d.nodes[0].total_ns;
  EXPECT_EQ(root_total, d.find("a")->total_ns + d.find("b")->total_ns);
}

TEST(Profiler, CountAndStatNodes) {
  Profiler p;
  const auto n = p.node(Profiler::kRoot, "stats");
  p.add_count(n, 5);
  p.add_count(n);
  p.stat_max(n, 7);
  p.stat_max(n, 3);  // lower: must not overwrite
  p.set_count(n, 42);
  const ProfileData d = p.freeze();
  EXPECT_EQ(d.find("stats")->count, 42u);
  EXPECT_EQ(d.find("stats")->max, 7u);
  EXPECT_EQ(d.find("stats")->self_ns, 0u);
}

// ---------- null-safety (the detached contract, scope level) ----------

TEST(Profiler, NullProfilerScopesAreNoOps) {
  // Must not crash, must not need a profiler instance at all.
  for (int i = 0; i < 3; ++i) {
    ProfScope s(nullptr, 17);
    spin();
  }
  SUCCEED();
}

// ---------- the detached contract, full-stack level ----------

struct ObservedRun {
  RunResult result;
  std::vector<ScheduleEntry> schedule;
  std::string record;
};

ObservedRun run_gaussian(Profiler* prof) {
  const Trace tr = workloads::make_gaussian({.n = 60});
  telemetry::MetricRegistry reg;
  NexusSharpConfig cfg;
  cfg.num_task_graphs = 2;
  cfg.freq_mhz = 100.0;
  NexusSharp mgr(cfg);
  RuntimeConfig rc;
  rc.workers = 8;
  rc.metrics = &reg;
  rc.profiler = prof;
  ObservedRun out;
  rc.schedule_out = &out.schedule;
  out.result = run_trace(tr, mgr, rc);
  const telemetry::Snapshot snap = reg.snapshot();
  out.record = harness::metrics_report_json("profiler_test", "gaussian-60",
                                            "nexus#-2TG", 8,
                                            out.result.makespan, 1.0, &snap);
  return out;
}

TEST(Profiler, AttachedRunIsBitIdenticalToDetached) {
  // The profiler observes the simulator; it must not perturb it. Same
  // contract (and test shape) as TraceRecorder's: schedules and BENCH
  // records bit-identical with and without the observer attached.
  const ObservedRun detached = run_gaussian(nullptr);
  Profiler prof;
  const ObservedRun attached = run_gaussian(&prof);
  EXPECT_EQ(detached.result.makespan, attached.result.makespan);
  EXPECT_EQ(detached.result.events, attached.result.events);
  EXPECT_EQ(detached.record, attached.record);
  ASSERT_EQ(detached.schedule.size(), attached.schedule.size());
  for (std::size_t i = 0; i < detached.schedule.size(); ++i) {
    EXPECT_EQ(detached.schedule[i].task, attached.schedule[i].task) << i;
    EXPECT_EQ(detached.schedule[i].worker, attached.schedule[i].worker) << i;
    EXPECT_EQ(detached.schedule[i].start, attached.schedule[i].start) << i;
    EXPECT_EQ(detached.schedule[i].end, attached.schedule[i].end) << i;
  }
  // And the attached run actually profiled something.
  const ProfileData d = prof.freeze();
  EXPECT_GT(d.nodes[0].total_ns, 0u);
}

TEST(Profiler, FullStackRunAttributesQueueOpsAndComponentTypes) {
  Profiler prof;
  const ObservedRun run = run_gaussian(&prof);
  const ProfileData d = prof.freeze();
  // The DES hot loop: every processed event was popped and handled, every
  // scheduled event pushed. Counts are exact, not sampled.
  const ProfileNode* pop = d.find("queue;pop");
  const ProfileNode* push = d.find("queue;push");
  const ProfileNode* handle = d.find("handle");
  ASSERT_NE(pop, nullptr);
  ASSERT_NE(push, nullptr);
  ASSERT_NE(handle, nullptr);
  EXPECT_EQ(pop->count, run.result.events);
  EXPECT_GE(push->count, run.result.events);  // pushes >= pops (drained last)
  std::uint64_t handled = 0;
  for (const std::uint32_t c : handle->children) handled += d.nodes[c].count;
  EXPECT_EQ(handled, run.result.events);
  // Component *types* appear (replicated workers fold into one node).
  EXPECT_NE(d.find("handle;tg"), nullptr);
  EXPECT_NE(d.find("handle;driver"), nullptr);
  // The root reconciliation invariant the validator checks.
  std::uint64_t child_sum = 0;
  for (const std::uint32_t c : d.nodes[0].children)
    child_sum += d.nodes[c].total_ns;
  EXPECT_EQ(d.nodes[0].total_ns, d.nodes[0].self_ns + child_sum);
}

// ---------- exporters ----------

ProfileData tiny_profile() {
  Profiler p;
  const auto q = p.node(Profiler::kRoot, "queue");
  const auto pop = p.node(q, "pop");
  const auto push = p.node(q, "push");
  for (int i = 0; i < 4; ++i) {
    ProfScope s(&p, pop);
    spin();
  }
  {
    ProfScope s(&p, push);
    spin();
  }
  return p.freeze();
}

TEST(ProfileExport, JsonCarriesSchemaAndReconcilingTree) {
  const ProfileData d = tiny_profile();
  const std::string json = telemetry::profile_json(d, 12345);
  EXPECT_NE(json.find("\"schema\":1"), std::string::npos);
  EXPECT_NE(json.find("\"unit\":\"ns\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_ns\":12345"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"queue\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":4"), std::string::npos);
}

TEST(ProfileExport, CollapsedStacksUseSemicolonPathsAndSelfTime) {
  const ProfileData d = tiny_profile();
  const std::string collapsed = telemetry::profile_collapsed(d);
  // One line per nonzero-self node: "all;queue;pop <self_ns>".
  EXPECT_NE(collapsed.find("all;queue;pop "), std::string::npos);
  EXPECT_NE(collapsed.find("all;queue;push "), std::string::npos);
  // Zero-self structural nodes are omitted.
  EXPECT_EQ(collapsed.find("all;queue\n"), std::string::npos);
  EXPECT_EQ(collapsed.find("all;queue "), std::string::npos);
}

TEST(ProfileExport, TopRanksBySelfTimeDescending) {
  const ProfileData d = tiny_profile();
  const auto top = telemetry::profile_top(d, 10);
  ASSERT_GE(top.size(), 2u);
  for (std::size_t i = 1; i < top.size(); ++i)
    EXPECT_GE(top[i - 1].self_ns, top[i].self_ns);
  double pct_sum = 0.0;
  for (const auto& row : top) pct_sum += row.pct;
  EXPECT_LE(pct_sum, 100.0 + 1e-6);
  // The table renders every ranked row.
  const std::string table = telemetry::profile_top_table(d, 10);
  for (const auto& row : top)
    EXPECT_NE(table.find(row.path), std::string::npos) << row.path;
}

}  // namespace
}  // namespace nexus
