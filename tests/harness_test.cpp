// Harness tests: sweep mechanics, baseline definition, manager factories.
#include <gtest/gtest.h>

#include "nexus/harness/experiment.hpp"
#include "nexus/harness/serving.hpp"
#include "nexus/telemetry/snapshot.hpp"
#include "nexus/workloads/workloads.hpp"

namespace nexus::harness {
namespace {

TEST(Harness, PaperCoreAxes) {
  EXPECT_EQ(paper_cores_256().size(), 9u);
  EXPECT_EQ(paper_cores_256().front(), 1u);
  EXPECT_EQ(paper_cores_256().back(), 256u);
  EXPECT_EQ(paper_cores_64().back(), 64u);
  EXPECT_EQ(nanos_cores_32().back(), 32u);
}

TEST(Harness, BaselineIsSingleCoreIdeal) {
  const Trace tr = workloads::make_gaussian({.n = 50});
  // With one worker and no overhead, the makespan is the serial time.
  EXPECT_EQ(ideal_baseline(tr), tr.total_work());
}

TEST(Harness, IdealSweepSpeedupsAreSane) {
  const Trace tr = workloads::make_cray();
  const Tick base = ideal_baseline(tr);
  const Series s = sweep(tr, ManagerSpec::ideal(), {1, 2, 4}, base);
  ASSERT_EQ(s.points.size(), 3u);
  EXPECT_NEAR(s.points[0].speedup, 1.0, 1e-9);
  EXPECT_GT(s.points[1].speedup, 1.8);
  EXPECT_LE(s.points[1].speedup, 2.0 + 1e-9);
  EXPECT_GT(s.points[2].speedup, 3.5);
  EXPECT_EQ(s.max_speedup(), s.points[2].speedup);
}

TEST(Harness, SpeedupAtFindsLargestCoveredPoint) {
  Series s;
  s.label = "x";
  const auto point = [](std::uint32_t cores, double speedup) {
    SweepPoint p;
    p.cores = cores;
    p.speedup = speedup;
    return p;
  };
  s.points = {point(1, 1.0), point(8, 5.0), point(32, 9.0)};
  EXPECT_DOUBLE_EQ(s.speedup_at(32), 9.0);
  EXPECT_DOUBLE_EQ(s.speedup_at(16), 5.0);
  EXPECT_DOUBLE_EQ(s.speedup_at(256), 9.0);
}

TEST(Harness, SharpSpecUsesTableIFrequency) {
  const ManagerSpec s6 = ManagerSpec::nexussharp(6);
  EXPECT_DOUBLE_EQ(s6.sharp.freq_mhz, 55.56);
  EXPECT_EQ(s6.sharp.num_task_graphs, 6u);
  const ManagerSpec fixed = ManagerSpec::nexussharp(6, 100.0);
  EXPECT_DOUBLE_EQ(fixed.sharp.freq_mhz, 100.0);
}

TEST(Harness, TopologyAndPlacementLabelsJoinBothAxes) {
  ManagerSpec spec = ManagerSpec::nexussharp(6);
  RuntimeConfig rc;
  EXPECT_EQ(topology_label(spec, rc), "ideal");
  EXPECT_EQ(placement_label(spec, rc), "default");

  spec.sharp.noc.kind = noc::TopologyKind::kTorus;
  EXPECT_EQ(topology_label(spec, rc), "torus");

  spec.sharp.noc.placement = {0, 1, 2, 3, 4, 5, 6, 7};
  spec.sharp.noc.placement_name = "optimized";
  EXPECT_EQ(placement_label(spec, rc), "optimized");

  // Host-side-only placement keeps its own label; mixed axes combine.
  ManagerSpec plain = ManagerSpec::nexussharp(6);
  rc.noc.placement_name = "opt-host";
  EXPECT_EQ(placement_label(plain, rc), "host-opt-host");
  EXPECT_EQ(placement_label(spec, rc), "optimized+host-opt-host");

  // The record serializer emits both optional fields only when non-default.
  const std::string rec = metrics_report_json(
      "b", "w", "m", 8, 1000, 1.0, nullptr, nullptr, "torus", "optimized");
  EXPECT_NE(rec.find("\"topology\":\"torus\""), std::string::npos);
  EXPECT_NE(rec.find("\"placement\":\"optimized\""), std::string::npos);
  const std::string plain_rec =
      metrics_report_json("b", "w", "m", 8, 1000, 1.0, nullptr);
  EXPECT_EQ(plain_rec.find("\"topology\""), std::string::npos);
  EXPECT_EQ(plain_rec.find("\"placement\""), std::string::npos);
}

TEST(Harness, ManagersOrderOnFineGrainedWork) {
  // The paper's qualitative result in one assertion: on fine-grained
  // wavefront work with many cores, ideal >= nexus# >= nexus++ and all
  // managers beat Nanos.
  const Trace tr = workloads::make_h264dec(workloads::h264_config(4));
  const Tick base = ideal_baseline(tr);
  const std::vector<std::uint32_t> cores{32};
  const double ideal =
      sweep(tr, ManagerSpec::ideal(), cores, base).max_speedup();
  const double sharp =
      sweep(tr, ManagerSpec::nexussharp(6), cores, base).max_speedup();
  const double npp =
      sweep(tr, ManagerSpec::nexuspp_default(), cores, base).max_speedup();
  const double nanos =
      sweep(tr, ManagerSpec::nanos_default(), cores, base).max_speedup();
  EXPECT_GE(ideal, sharp);
  EXPECT_GE(sharp, npp);
  EXPECT_GT(sharp, nanos);
}

// ---------------------------------------------------------------------------
// Serving harness: run_serving field reconciliation and knee-search
// bracketing on a small open-loop configuration.
// ---------------------------------------------------------------------------

workloads::ArrivalConfig serving_config() {
  workloads::ArrivalConfig cfg;
  cfg.tasks = 300;
  cfg.clients = 4;
  cfg.kernel = "h264dec-8x8-10f";
  return cfg;
}

TEST(Serving, RunServingFillsAConsistentPoint) {
  const workloads::ArrivalConfig cfg = serving_config();
  const ServingPoint p =
      run_serving(cfg, /*rate_hz=*/20000.0, ManagerSpec::nexussharp(4), 16,
                  {}, nullptr, {{"serving/knee_hz", 12345}});
  EXPECT_EQ(p.tasks, cfg.tasks);
  EXPECT_GT(p.horizon, 0);
  // The run cannot finish before the last arrival.
  EXPECT_GE(p.makespan, p.horizon);
  // Realized offered rate tracks the requested one (same seed, 300 draws).
  EXPECT_NEAR(p.offered_hz, 20000.0, 0.2 * 20000.0);
  EXPECT_GT(p.accepted_hz, 0.0);
  EXPECT_LE(p.accepted_hz, p.offered_hz + 1.0);
  // Quantiles were extracted and are ordered.
  EXPECT_GT(p.p50_ps, 0.0);
  EXPECT_LE(p.p50_ps, p.p95_ps);
  EXPECT_LE(p.p95_ps, p.p99_ps);
  EXPECT_LE(p.p99_ps, p.p999_ps);
  // The context gauges landed in the same snapshot as the measurements.
  ASSERT_NE(p.report.metrics, nullptr);
  EXPECT_EQ(p.report.metrics->gauge_at("serving/rate_hz"), 20000);
  EXPECT_EQ(p.report.metrics->gauge_at("serving/knee_hz"), 12345);
  EXPECT_EQ(p.report.metrics->counter_at("runtime/offered"), cfg.tasks);
  EXPECT_EQ(p.report.metrics->counter_at("runtime/accepted"), cfg.tasks);
}

TEST(Serving, FindKneeBracketsTheSaturationRate) {
  const workloads::ArrivalConfig cfg = serving_config();
  KneeSearch search;
  search.p99_budget_ps = ms(8.0);
  search.lo_hz = 5000.0;
  search.bisect_iters = 5;
  const KneeResult r =
      find_knee(cfg, search, ManagerSpec::nexussharp(4), 16);
  ASSERT_TRUE(r.bracketed);
  EXPECT_EQ(r.outcome, KneeOutcome::kBracketed);
  EXPECT_STREQ(to_string(r.outcome), "bracketed");
  ASSERT_GT(r.knee_hz, 0.0);
  EXPECT_GE(r.knee_hz, search.lo_hz);
  EXPECT_GT(r.probes, 2u);
  // The knee point itself meets the budget...
  EXPECT_LE(r.knee.p99_ps, static_cast<double>(search.p99_budget_ps));
  EXPECT_EQ(r.knee.rate_hz, r.knee_hz);
  // ...and a rate well past it violates the budget (saturation is real).
  const ServingPoint beyond =
      run_serving(cfg, 4.0 * r.knee_hz, ManagerSpec::nexussharp(4), 16);
  EXPECT_GT(beyond.p99_ps, static_cast<double>(search.p99_budget_ps));
}

TEST(Serving, KneeSearchIsDeterministic) {
  const workloads::ArrivalConfig cfg = serving_config();
  KneeSearch search;
  search.p99_budget_ps = ms(8.0);
  search.lo_hz = 5000.0;
  search.bisect_iters = 4;
  const KneeResult a = find_knee(cfg, search, ManagerSpec::nexussharp(4), 16);
  const KneeResult b = find_knee(cfg, search, ManagerSpec::nexussharp(4), 16);
  EXPECT_EQ(a.knee_hz, b.knee_hz);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.knee.makespan, b.knee.makespan);
  EXPECT_EQ(a.knee.p99_ps, b.knee.p99_ps);
}

TEST(Serving, UnattainableBudgetReportsUnbracketed) {
  const workloads::ArrivalConfig cfg = serving_config();
  KneeSearch search;
  // A budget below any task's execution time fails even unloaded.
  search.p99_budget_ps = 1;
  search.lo_hz = 1000.0;
  const KneeResult r =
      find_knee(cfg, search, ManagerSpec::nexussharp(4), 16);
  EXPECT_FALSE(r.bracketed);
  EXPECT_EQ(r.outcome, KneeOutcome::kUnattainable);
  EXPECT_EQ(r.knee_hz, 0.0);
  EXPECT_EQ(r.probes, 1u);
  // The violating lo_hz point is kept for diagnosis: how far off was the
  // budget at the lightest load probed.
  EXPECT_EQ(r.knee.rate_hz, search.lo_hz);
  EXPECT_GT(r.knee.p99_ps, static_cast<double>(search.p99_budget_ps));
}

TEST(Serving, GenerousBudgetReportsLowerBoundNotKnee) {
  const workloads::ArrivalConfig cfg = serving_config();
  KneeSearch search;
  // A budget nothing can violate within two doublings: the search must say
  // "lower bound", not claim a bracketed knee.
  search.p99_budget_ps = static_cast<Tick>(ms(8.0)) * 1000000;
  search.lo_hz = 1000.0;
  search.max_doublings = 2;
  const KneeResult r =
      find_knee(cfg, search, ManagerSpec::nexussharp(4), 16);
  EXPECT_FALSE(r.bracketed);
  EXPECT_EQ(r.outcome, KneeOutcome::kLowerBound);
  EXPECT_STREQ(to_string(r.outcome), "lower-bound");
  // Every probed rate passed; the best one is lo * 2^max_doublings.
  EXPECT_DOUBLE_EQ(r.knee_hz, 4000.0);
  EXPECT_EQ(r.probes, 3u);
}

TEST(Serving, CallerBracketTopStillPassingIsLowerBound) {
  const workloads::ArrivalConfig cfg = serving_config();
  KneeSearch search;
  search.p99_budget_ps = static_cast<Tick>(ms(8.0)) * 1000000;
  search.lo_hz = 1000.0;
  search.hi_hz = 2000.0;  // caller's bracket top — also passes
  const KneeResult r =
      find_knee(cfg, search, ManagerSpec::nexussharp(4), 16);
  EXPECT_EQ(r.outcome, KneeOutcome::kLowerBound);
  EXPECT_DOUBLE_EQ(r.knee_hz, 2000.0);
}

}  // namespace
}  // namespace nexus::harness
