#include <gtest/gtest.h>

#include <vector>

#include "nexus/sim/latency_fifo.hpp"
#include "nexus/sim/server.hpp"
#include "nexus/sim/simulation.hpp"
#include "nexus/sim/time.hpp"

namespace nexus {
namespace {

// ---------- time / clock domains ----------

TEST(Time, UnitHelpers) {
  EXPECT_EQ(ns(1), 1000);
  EXPECT_EQ(us(1), 1000000);
  EXPECT_EQ(ms(1), 1000000000);
  EXPECT_DOUBLE_EQ(to_us(us(4.6)), 4.6);
}

TEST(ClockDomain, PeriodsAtPaperFrequencies) {
  EXPECT_EQ(ClockDomain(100.0).period(), 10000);  // 100 MHz -> 10 ns
  EXPECT_EQ(ClockDomain(100.0).cycles(18), ns(180));
  // Table I test frequencies.
  EXPECT_NEAR(ClockDomain(55.56).mhz(), 55.56, 0.01);
  EXPECT_NEAR(ClockDomain(41.66).mhz(), 41.66, 0.01);
}

TEST(ClockDomain, EdgeAlignment) {
  const ClockDomain clk(100.0);  // 10 ns period
  EXPECT_EQ(clk.edge_at_or_after(0), 0);
  EXPECT_EQ(clk.edge_at_or_after(ns(10)), ns(10));
  EXPECT_EQ(clk.edge_at_or_after(ns(10) + 1), ns(20));
  EXPECT_EQ(clk.cycles_in(ns(95)), 9);
}

// ---------- event queue ----------

class Recorder final : public Component {
 public:
  void handle(Simulation& sim, const Event& ev) override {
    order.push_back(ev.op);
    times.push_back(sim.now());
    if (ev.op == 99) sim.stop();
  }
  std::vector<std::uint32_t> order;
  std::vector<Tick> times;
};

TEST(Simulation, DeliversInTimeOrder) {
  Simulation sim;
  Recorder rec;
  const auto id = sim.add_component(&rec);
  sim.schedule(ns(30), id, 3);
  sim.schedule(ns(10), id, 1);
  sim.schedule(ns(20), id, 2);
  sim.run();
  EXPECT_EQ(rec.order, (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_EQ(rec.times, (std::vector<Tick>{ns(10), ns(20), ns(30)}));
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulation, TiesBreakInIssueOrder) {
  Simulation sim;
  Recorder rec;
  const auto id = sim.add_component(&rec);
  for (std::uint32_t i = 0; i < 10; ++i) sim.schedule(ns(5), id, i);
  sim.run();
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(rec.order[i], i);
}

TEST(Simulation, StopHaltsDelivery) {
  Simulation sim;
  Recorder rec;
  const auto id = sim.add_component(&rec);
  sim.schedule(ns(1), id, 99);
  sim.schedule(ns(2), id, 1);
  sim.run();
  EXPECT_EQ(rec.order.size(), 1u);
}

class Chainer final : public Component {
 public:
  void handle(Simulation& sim, const Event& ev) override {
    ++count;
    if (ev.a > 0) sim.schedule_in(ns(1), ev.comp, 0, ev.a - 1);
  }
  int count = 0;
};

TEST(Simulation, SelfSchedulingChain) {
  Simulation sim;
  Chainer c;
  const auto id = sim.add_component(&c);
  sim.schedule(0, id, 0, 100);
  sim.run();
  EXPECT_EQ(c.count, 101);
  EXPECT_EQ(sim.now(), ns(100));
}

TEST(Simulation, RunSomeResumable) {
  Simulation sim;
  Chainer c;
  const auto id = sim.add_component(&c);
  sim.schedule(0, id, 0, 10);
  EXPECT_TRUE(sim.run_some(5));
  EXPECT_EQ(c.count, 5);
  EXPECT_FALSE(sim.run_some(1000));
  EXPECT_EQ(c.count, 11);
}

// ---------- server ----------

TEST(Server, SerializesFifo) {
  Server s;
  // Two jobs arriving together: second starts when first completes.
  EXPECT_EQ(s.acquire(ns(0), ns(10)), ns(10));
  EXPECT_EQ(s.acquire(ns(0), ns(10)), ns(20));
  // A job arriving after the server freed starts immediately.
  EXPECT_EQ(s.acquire(ns(50), ns(5)), ns(55));
  EXPECT_EQ(s.jobs(), 3u);
  EXPECT_EQ(s.busy_time(), ns(25));
  EXPECT_EQ(s.total_wait(), ns(10));
}

TEST(Server, IdleQuery) {
  Server s;
  s.acquire(0, ns(10));
  EXPECT_FALSE(s.idle_at(ns(5)));
  EXPECT_TRUE(s.idle_at(ns(10)));
}

// ---------- latency fifo ----------

TEST(LatencyFifo, VisibilityDelay) {
  LatencyFifo<int> f(4, ns(30));  // e.g. 3 cycles at 100 MHz
  f.push(ns(0), 7);
  EXPECT_FALSE(f.front_ready(ns(29)));
  EXPECT_TRUE(f.front_ready(ns(30)));
  EXPECT_EQ(f.front_ready_at(), ns(30));
  EXPECT_EQ(f.pop(), 7);
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.front_ready_at(), kTickInfinity);
}

TEST(LatencyFifo, DepthBackpressure) {
  LatencyFifo<int> f(2, ns(10));
  f.push(0, 1);
  f.push(0, 2);
  EXPECT_TRUE(f.full());
  EXPECT_EQ(f.pop(), 1);
  EXPECT_FALSE(f.full());
}

TEST(LatencyFifo, OrderPreserved) {
  LatencyFifo<int> f(8, ns(5));
  for (int i = 0; i < 8; ++i) f.push(ns(i), i);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(f.front_ready_at(), ns(i) + ns(5));
    EXPECT_EQ(f.pop(), i);
  }
}

}  // namespace
}  // namespace nexus
