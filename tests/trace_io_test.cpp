#include <gtest/gtest.h>

#include <sstream>

#include "nexus/task/trace.hpp"
#include "nexus/task/trace_io.hpp"

namespace nexus {
namespace {

Trace make_round_trip_trace() {
  Trace tr("roundtrip");
  ParamList p1;
  p1.push_back({0xABCDE, Dir::kOut});
  const TaskId a = tr.submit(3, us(10), p1);
  (void)a;
  ParamList p2;
  p2.push_back({0xABCDE, Dir::kIn});
  p2.push_back({0x1234567890AB, Dir::kInOut});
  tr.submit(4, ns(250), p2);
  tr.taskwait_on(0xABCDE);
  tr.taskwait();
  return tr;
}

TEST(TraceIo, RoundTripPreservesEverything) {
  const Trace original = make_round_trip_trace();
  std::stringstream ss;
  write_trace(ss, original);

  Trace reread;
  std::string err;
  ASSERT_TRUE(read_trace(ss, &reread, &err)) << err;

  EXPECT_EQ(reread.name(), "roundtrip");
  ASSERT_EQ(reread.num_tasks(), original.num_tasks());
  for (TaskId i = 0; i < original.num_tasks(); ++i) {
    EXPECT_EQ(reread.task(i).fn, original.task(i).fn);
    EXPECT_EQ(reread.task(i).duration, original.task(i).duration);
    EXPECT_TRUE(reread.task(i).params == original.task(i).params);
  }
  ASSERT_EQ(reread.num_events(), original.num_events());
  for (std::size_t i = 0; i < original.events().size(); ++i) {
    EXPECT_EQ(reread.events()[i].op, original.events()[i].op);
    EXPECT_EQ(reread.events()[i].addr, original.events()[i].addr);
  }
}

TEST(TraceIo, RejectsMalformedDirection) {
  std::stringstream ss("task 0 1 100 1 abc sideways\nsubmit 0\n");
  Trace t;
  std::string err;
  EXPECT_FALSE(read_trace(ss, &t, &err));
  EXPECT_NE(err.find("direction"), std::string::npos);
}

TEST(TraceIo, RejectsSubmitWithoutDeclaration) {
  std::stringstream ss("submit 5\n");
  Trace t;
  EXPECT_FALSE(read_trace(ss, &t));
}

TEST(TraceIo, RejectsTooManyParams) {
  std::stringstream ss("task 0 1 100 9 a in b in c in d in e in f in 10 in 11 in 12 in\nsubmit 0\n");
  Trace t;
  EXPECT_FALSE(read_trace(ss, &t));
}

TEST(TraceIo, IgnoresCommentsAndBlankLines) {
  std::stringstream ss(
      "# a comment\n"
      "\n"
      "task 0 1 100 1 ff out\n"
      "submit 0\n");
  Trace t;
  std::string err;
  ASSERT_TRUE(read_trace(ss, &t, &err)) << err;
  EXPECT_EQ(t.num_tasks(), 1u);
  EXPECT_EQ(t.task(0).params[0].addr, 0xFFu);
}

}  // namespace
}  // namespace nexus
