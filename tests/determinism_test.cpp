// Determinism coverage: the whole stack — rng, workload generation,
// trace_stats, the DES kernel, and full trace-driven runs — must be
// bit-reproducible given the same seed. Every experiment in the paper
// harness depends on this property.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "nexus/common/rng.hpp"
#include "nexus/harness/experiment.hpp"
#include "nexus/nexussharp/nexussharp.hpp"
#include "nexus/noc/placement.hpp"
#include "nexus/runtime/simulation_driver.hpp"
#include "nexus/sim/event_queue.hpp"
#include "nexus/sim/simulation.hpp"
#include "nexus/task/trace.hpp"
#include "nexus/task/trace_stats.hpp"
#include "nexus/telemetry/registry.hpp"
#include "nexus/telemetry/writers.hpp"
#include "nexus/workloads/arrivals.hpp"
#include "nexus/workloads/workloads.hpp"

namespace nexus {
namespace {

// ---------------------------------------------------------------------------
// RNG engine: identical seed => identical stream; different seed => different.
// ---------------------------------------------------------------------------

TEST(Determinism, RngStreamsReproduce) {
  Xoshiro256 a(42), b(42), c(43);
  bool any_diff = false;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t va = a(), vb = b(), vc = c();
    ASSERT_EQ(va, vb) << "same-seed streams diverged at draw " << i;
    any_diff |= (va != vc);
  }
  EXPECT_TRUE(any_diff) << "different seeds produced identical streams";
}

// ---------------------------------------------------------------------------
// Workload generation: two generator invocations with the same config must
// produce bit-identical traces, and compute_stats must agree field-for-field.
// ---------------------------------------------------------------------------

void expect_traces_identical(const Trace& x, const Trace& y) {
  ASSERT_EQ(x.num_tasks(), y.num_tasks());
  ASSERT_EQ(x.num_events(), y.num_events());
  for (TaskId id = 0; id < x.num_tasks(); ++id) {
    const TaskDescriptor& tx = x.task(id);
    const TaskDescriptor& ty = y.task(id);
    ASSERT_EQ(tx.id, ty.id) << "task " << id;
    ASSERT_EQ(tx.fn, ty.fn) << "task " << id;
    ASSERT_EQ(tx.duration, ty.duration) << "task " << id;
    ASSERT_TRUE(tx.params == ty.params) << "task " << id;
  }
  for (std::size_t i = 0; i < x.num_events(); ++i) {
    const TraceEvent& ex = x.events()[i];
    const TraceEvent& ey = y.events()[i];
    ASSERT_EQ(ex.op, ey.op) << "event " << i;
    ASSERT_EQ(ex.task, ey.task) << "event " << i;
    ASSERT_EQ(ex.addr, ey.addr) << "event " << i;
  }
}

void expect_stats_identical(const Trace& x, const Trace& y) {
  const TraceStats sx = compute_stats(x);
  const TraceStats sy = compute_stats(y);
  EXPECT_EQ(sx.num_tasks, sy.num_tasks);
  EXPECT_EQ(sx.total_work, sy.total_work);
  EXPECT_EQ(sx.avg_task, sy.avg_task);
  EXPECT_EQ(sx.min_params, sy.min_params);
  EXPECT_EQ(sx.max_params, sy.max_params);
  EXPECT_EQ(sx.num_taskwaits, sy.num_taskwaits);
  EXPECT_EQ(sx.num_taskwait_ons, sy.num_taskwait_ons);
  EXPECT_EQ(sx.distinct_addresses, sy.distinct_addresses);
  EXPECT_EQ(sx.params_histogram, sy.params_histogram);
}

TEST(Determinism, CrayGeneratorReproduces) {
  const Trace a = workloads::make_cray();
  const Trace b = workloads::make_cray();
  expect_traces_identical(a, b);
  expect_stats_identical(a, b);
}

TEST(Determinism, RotccGeneratorReproduces) {
  workloads::RotccConfig cfg;
  cfg.lines = 500;  // small instance keeps the suite fast
  const Trace a = workloads::make_rotcc(cfg);
  const Trace b = workloads::make_rotcc(cfg);
  expect_traces_identical(a, b);
  expect_stats_identical(a, b);
}

TEST(Determinism, SeedChangesTheTrace) {
  workloads::CrayConfig cfg;
  const Trace a = workloads::make_cray(cfg);
  cfg.seed ^= 0xDEADBEEF;
  const Trace b = workloads::make_cray(cfg);
  ASSERT_EQ(a.num_tasks(), b.num_tasks());  // structure is config-driven...
  bool any_diff = false;                    // ...but durations are seed-driven
  for (TaskId id = 0; id < a.num_tasks(); ++id)
    any_diff |= (a.task(id).duration != b.task(id).duration);
  EXPECT_TRUE(any_diff);
}

// ---------------------------------------------------------------------------
// DES kernel: with seeded random components, two simulations must dispatch
// the exact same event sequence — including same-tick ties, which the kernel
// breaks by issue order (Event::seq), never by pointer or hash order.
// ---------------------------------------------------------------------------

struct LoggedEvent {
  Tick t;
  std::uint32_t comp;
  std::uint32_t op;
  std::uint64_t a;
  std::uint64_t b;

  friend bool operator==(const LoggedEvent&, const LoggedEvent&) = default;
};

// Handles events by logging them and randomly fanning out follow-ups, with
// deliberately colliding timestamps to stress tie-breaking.
class ChatterBox final : public Component {
 public:
  ChatterBox(std::uint64_t seed, int budget, std::vector<LoggedEvent>* log)
      : rng_(seed), budget_(budget), log_(log) {}

  void attach(Simulation& sim) { id_ = sim.add_component(this); }
  void set_peer(std::uint32_t peer) { peer_ = peer; }
  [[nodiscard]] std::uint32_t id() const { return id_; }

  void kick(Simulation& sim, int n) {
    for (int i = 0; i < n; ++i) {
      // Draws hoisted into locals: argument evaluation order is unspecified,
      // and the certified stream must not depend on the compiler's choice.
      const Tick delay = rng_.below(4);
      const std::uint64_t payload = rng_();
      sim.schedule_in(delay, id_, /*op=*/0, payload, static_cast<std::uint64_t>(i));
    }
  }

  void handle(Simulation& sim, const Event& ev) override {
    log_->push_back({ev.t, ev.comp, ev.op, ev.a, ev.b});
    if (budget_ <= 0) return;
    --budget_;
    const int fanout = static_cast<int>(rng_.below(3));  // 0..2 follow-ups
    for (int i = 0; i < fanout; ++i) {
      const std::uint32_t dest = (rng_.below(2) == 0) ? id_ : peer_;
      // below(3) makes same-tick collisions common on purpose. Draws are
      // hoisted so the stream can't depend on argument evaluation order.
      const Tick delay = rng_.below(3);
      const std::uint64_t payload = rng_();
      sim.schedule_in(delay, dest, ev.op + 1, payload, ev.a);
    }
  }

 private:
  Xoshiro256 rng_;
  int budget_;
  std::vector<LoggedEvent>* log_;
  std::uint32_t id_ = 0;
  std::uint32_t peer_ = 0;
};

std::vector<LoggedEvent> run_chatter(std::uint64_t seed) {
  std::vector<LoggedEvent> log;
  Simulation sim;
  ChatterBox alpha(seed, /*budget=*/400, &log);
  ChatterBox beta(seed ^ 0x1234, /*budget=*/400, &log);
  alpha.attach(sim);
  beta.attach(sim);
  alpha.set_peer(beta.id());
  beta.set_peer(alpha.id());
  alpha.kick(sim, 8);
  beta.kick(sim, 8);
  sim.run();
  return log;
}

TEST(Determinism, SimulationEventOrderReproduces) {
  const std::vector<LoggedEvent> a = run_chatter(7);
  const std::vector<LoggedEvent> b = run_chatter(7);
  ASSERT_GT(a.size(), 16u);  // the chatter actually fanned out
  EXPECT_EQ(a, b);
}

TEST(Determinism, SimulationSeedChangesEventOrder) {
  const std::vector<LoggedEvent> a = run_chatter(7);
  const std::vector<LoggedEvent> b = run_chatter(8);
  EXPECT_NE(a, b);
}

// ---------------------------------------------------------------------------
// Full stack: trace-driven Nexus# runs must reproduce makespan, event counts
// and the complete per-worker schedule.
// ---------------------------------------------------------------------------

TEST(Determinism, RunTraceReproducesScheduleExactly) {
  workloads::GaussianConfig gcfg;
  gcfg.n = 60;
  const Trace tr = workloads::make_gaussian(gcfg);

  auto run_once = [&tr](std::vector<ScheduleEntry>* sched) {
    NexusSharpConfig cfg;
    cfg.num_task_graphs = 4;
    cfg.freq_mhz = 100.0;
    NexusSharp mgr(cfg);
    RuntimeConfig rc;
    rc.workers = 8;
    rc.schedule_out = sched;
    return run_trace(tr, mgr, rc);
  };

  std::vector<ScheduleEntry> sched_a, sched_b;
  const RunResult a = run_once(&sched_a);
  const RunResult b = run_once(&sched_b);

  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_work, b.total_work);
  EXPECT_EQ(a.tasks, b.tasks);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.utilization, b.utilization);

  ASSERT_EQ(sched_a.size(), sched_b.size());
  for (std::size_t i = 0; i < sched_a.size(); ++i) {
    EXPECT_EQ(sched_a[i].task, sched_b[i].task) << "entry " << i;
    EXPECT_EQ(sched_a[i].worker, sched_b[i].worker) << "entry " << i;
    EXPECT_EQ(sched_a[i].start, sched_b[i].start) << "entry " << i;
    EXPECT_EQ(sched_a[i].end, sched_b[i].end) << "entry " << i;
  }
}

TEST(Determinism, NetworkEventOrderingReproduces) {
  // Mesh topologies multiply event counts (one per hop) and break every
  // message into link acquisitions whose FIFO order is decided purely by
  // (time, issue-seq) — two identical runs must agree on the makespan, the
  // full schedule, and every NoC counter.
  workloads::GaussianConfig gcfg;
  gcfg.n = 60;
  const Trace tr = workloads::make_gaussian(gcfg);

  auto run_mesh = [&tr](std::vector<ScheduleEntry>* sched, RunResult* out) {
    NexusSharpConfig cfg;
    cfg.num_task_graphs = 4;
    cfg.freq_mhz = 100.0;
    cfg.noc.kind = noc::TopologyKind::kMesh;
    NexusSharp mgr(cfg);
    RuntimeConfig rc;
    rc.workers = 8;
    rc.noc.kind = noc::TopologyKind::kRing;  // host ring, manager mesh
    rc.schedule_out = sched;
    *out = run_trace(tr, mgr, rc);
    return mgr.network().stats();
  };

  std::vector<ScheduleEntry> sched_a, sched_b;
  RunResult a, b;
  const noc::Network::Stats na = run_mesh(&sched_a, &a);
  const noc::Network::Stats nb = run_mesh(&sched_b, &b);

  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.events, b.events);
  EXPECT_GT(na.blocked_flits, 0u) << "the mesh run never contended";
  EXPECT_EQ(na.messages, nb.messages);
  EXPECT_EQ(na.total_hops, nb.total_hops);
  EXPECT_EQ(na.blocked_flits, nb.blocked_flits);
  EXPECT_EQ(na.stall_ticks, nb.stall_ticks);
  EXPECT_EQ(na.link_flits, nb.link_flits);
  EXPECT_EQ(na.link_busy, nb.link_busy);
  ASSERT_EQ(sched_a.size(), sched_b.size());
  for (std::size_t i = 0; i < sched_a.size(); ++i) {
    EXPECT_EQ(sched_a[i].task, sched_b[i].task) << "entry " << i;
    EXPECT_EQ(sched_a[i].worker, sched_b[i].worker) << "entry " << i;
    EXPECT_EQ(sched_a[i].start, sched_b[i].start) << "entry " << i;
    EXPECT_EQ(sched_a[i].end, sched_b[i].end) << "entry " << i;
  }
}

TEST(Determinism, PlacementSearchReproduces) {
  // End-to-end reproducibility of the placement pipeline: two identical
  // mesh runs measure bit-identical traffic matrices, and two searches over
  // that matrix (same seed) return bit-identical assignments and costs —
  // the property that makes BENCH_placement.json diffable at all.
  const Trace tr = workloads::make_h264dec(workloads::h264_config(8));
  auto measure = [&tr]() {
    NexusSharpConfig cfg;
    cfg.num_task_graphs = 6;
    cfg.freq_mhz = 100.0;
    cfg.noc.kind = noc::TopologyKind::kMesh;
    NexusSharp mgr(cfg);
    run_trace(tr, mgr, RuntimeConfig{.workers = 16});
    return mgr.network().stats().traffic;
  };
  const std::vector<std::uint64_t> ta = measure();
  const std::vector<std::uint64_t> tb = measure();
  ASSERT_EQ(ta, tb) << "measured traffic matrices diverged";

  const std::uint32_t endpoints = sharp_noc_endpoints(6);
  const noc::Topology topo(noc::TopologyKind::kMesh, endpoints);
  const noc::TrafficMatrix m = noc::TrafficMatrix::from_network(endpoints, ta);
  const noc::PlacementResult a = noc::optimize_placement(topo, m);
  const noc::PlacementResult b = noc::optimize_placement(topo, m);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.greedy_swaps, b.greedy_swaps);
  EXPECT_EQ(a.anneal_accepts, b.anneal_accepts);
  EXPECT_LT(a.cost, a.initial_cost) << "search should beat the corner layout";

  // A different annealing seed still reproduces against itself.
  noc::PlacementOptions opts;
  opts.seed = 1234567;
  const noc::PlacementResult c = noc::optimize_placement(topo, m, opts);
  const noc::PlacementResult d = noc::optimize_placement(topo, m, opts);
  EXPECT_EQ(c.assignment, d.assignment);
  EXPECT_EQ(c.cost, d.cost);
}

TEST(Determinism, TorusRunWithPlacementReproduces) {
  // The full gen-2 configuration — torus fabric, optimized placement,
  // kMeta over the NoC — must still be bit-reproducible run to run.
  workloads::GaussianConfig gcfg;
  gcfg.n = 60;
  const Trace tr = workloads::make_gaussian(gcfg);
  auto run_once = [&tr](std::vector<ScheduleEntry>* sched) {
    NexusSharpConfig cfg;
    cfg.num_task_graphs = 4;
    cfg.freq_mhz = 100.0;
    cfg.noc.kind = noc::TopologyKind::kTorus;
    cfg.noc.placement = {5, 0, 1, 2, 3, 4};  // rotate all six endpoints
    cfg.noc.placement_name = "rot1";
    NexusSharp mgr(cfg);
    RuntimeConfig rc;
    rc.workers = 8;
    rc.schedule_out = sched;
    return run_trace(tr, mgr, rc).makespan;
  };
  std::vector<ScheduleEntry> sa, sb;
  const Tick a = run_once(&sa);
  const Tick b = run_once(&sb);
  EXPECT_EQ(a, b);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].task, sb[i].task) << "entry " << i;
    EXPECT_EQ(sa[i].start, sb[i].start) << "entry " << i;
  }
}

// ---------------------------------------------------------------------------
// Queue-implementation sweep: the kernel's pop-order contract ((time, issue
// seq), same-tick ties in insertion order) is queue-independent, so the
// binary heap and the calendar queue must produce bit-identical schedules
// AND bit-identical telemetry — not merely equal makespans — on every
// configuration the stack can run. This is what pins the six pre-existing
// BENCH records across the scheduler swap.
// ---------------------------------------------------------------------------

/// Restores the process-default queue kind on scope exit (the sweep must
/// not leak a kind into unrelated suites).
class ScopedQueueKind {
 public:
  explicit ScopedQueueKind(QueueKind k) : saved_(default_queue_kind()) {
    set_default_queue_kind(k);
  }
  ~ScopedQueueKind() { set_default_queue_kind(saved_); }
  ScopedQueueKind(const ScopedQueueKind&) = delete;
  ScopedQueueKind& operator=(const ScopedQueueKind&) = delete;

 private:
  QueueKind saved_;
};

constexpr QueueKind kBothKinds[] = {QueueKind::kBinaryHeap,
                                    QueueKind::kCalendar};

/// Queue-structure gauges (sim/queue/*: calendar lane grows/shrinks, arena
/// slab reuse, bucket occupancy) describe the queue *implementation*, not
/// the simulated workload, so they legitimately differ across queue kinds.
/// The cross-kind contract covers everything else: schedules, makespans,
/// event counts, and all workload-visible metrics stay bit-identical.
telemetry::Snapshot drop_queue_structure_gauges(telemetry::Snapshot snap) {
  std::erase_if(snap.values, [](const telemetry::MetricValue& v) {
    return v.path.rfind("sim/queue/", 0) == 0;
  });
  return snap;
}

/// Everything observable about one run: the result scalars, the full
/// per-worker schedule, and the complete metric snapshot as JSON.
struct ObservedRun {
  Tick makespan = 0;
  std::uint64_t events = 0;
  std::vector<ScheduleEntry> schedule;
  std::string metrics_json;
};

void expect_runs_identical(const ObservedRun& x, const ObservedRun& y,
                           const char* what) {
  EXPECT_EQ(x.makespan, y.makespan) << what;
  EXPECT_EQ(x.events, y.events) << what;
  EXPECT_EQ(x.metrics_json, y.metrics_json) << what;
  ASSERT_EQ(x.schedule.size(), y.schedule.size()) << what;
  for (std::size_t i = 0; i < x.schedule.size(); ++i) {
    ASSERT_EQ(x.schedule[i].task, y.schedule[i].task) << what << " entry " << i;
    ASSERT_EQ(x.schedule[i].worker, y.schedule[i].worker)
        << what << " entry " << i;
    ASSERT_EQ(x.schedule[i].start, y.schedule[i].start)
        << what << " entry " << i;
    ASSERT_EQ(x.schedule[i].end, y.schedule[i].end) << what << " entry " << i;
  }
}

ObservedRun run_observed(const Trace& tr, noc::TopologyKind mgr_noc,
                         noc::TopologyKind host_noc) {
  ObservedRun out;
  telemetry::MetricRegistry reg;
  NexusSharpConfig cfg;
  cfg.num_task_graphs = 4;
  cfg.freq_mhz = 100.0;
  cfg.noc.kind = mgr_noc;
  NexusSharp mgr(cfg);
  RuntimeConfig rc;
  rc.workers = 8;
  rc.noc.kind = host_noc;
  rc.schedule_out = &out.schedule;
  rc.metrics = &reg;
  const RunResult r = run_trace(tr, mgr, rc);
  out.makespan = r.makespan;
  out.events = r.events;
  out.metrics_json =
      telemetry::snapshot_json(drop_queue_structure_gauges(reg.snapshot()));
  return out;
}

TEST(QueueKindSweep, RunTraceIdenticalUnderHeapAndCalendar) {
  workloads::GaussianConfig gcfg;
  gcfg.n = 60;
  const Trace tr = workloads::make_gaussian(gcfg);
  std::vector<ObservedRun> runs;
  for (const QueueKind kind : kBothKinds) {
    ScopedQueueKind guard(kind);
    runs.push_back(run_observed(tr, noc::TopologyKind::kIdeal,
                                noc::TopologyKind::kIdeal));
  }
  ASSERT_GT(runs[0].events, 1000u);
  expect_runs_identical(runs[0], runs[1], "ideal-topology run");
}

TEST(QueueKindSweep, NocRunIdenticalUnderHeapAndCalendar) {
  // Mesh manager fabric + ring host fabric: per-hop events and link-FIFO
  // ordering are exactly where a queue that mis-breaks ties would diverge.
  workloads::GaussianConfig gcfg;
  gcfg.n = 60;
  const Trace tr = workloads::make_gaussian(gcfg);
  std::vector<ObservedRun> runs;
  for (const QueueKind kind : kBothKinds) {
    ScopedQueueKind guard(kind);
    runs.push_back(
        run_observed(tr, noc::TopologyKind::kMesh, noc::TopologyKind::kRing));
  }
  expect_runs_identical(runs[0], runs[1], "mesh+ring run");
}

TEST(QueueKindSweep, PlacementPipelineIdenticalUnderHeapAndCalendar) {
  // The placement search consumes a traffic matrix measured by a NoC run;
  // identical matrices across queue kinds mean identical search inputs, and
  // the seeded search itself does not touch the DES at all.
  const Trace tr = workloads::make_h264dec(workloads::h264_config(8));
  std::vector<std::vector<std::uint64_t>> traffic;
  for (const QueueKind kind : kBothKinds) {
    ScopedQueueKind guard(kind);
    NexusSharpConfig cfg;
    cfg.num_task_graphs = 6;
    cfg.freq_mhz = 100.0;
    cfg.noc.kind = noc::TopologyKind::kMesh;
    NexusSharp mgr(cfg);
    run_trace(tr, mgr, RuntimeConfig{.workers = 16});
    traffic.push_back(mgr.network().stats().traffic);
  }
  ASSERT_EQ(traffic[0], traffic[1]) << "traffic matrices diverged across kinds";

  const std::uint32_t endpoints = sharp_noc_endpoints(6);
  const noc::Topology topo(noc::TopologyKind::kMesh, endpoints);
  const noc::TrafficMatrix m =
      noc::TrafficMatrix::from_network(endpoints, traffic[0]);
  const noc::PlacementResult a = noc::optimize_placement(topo, m);
  const noc::PlacementResult b = noc::optimize_placement(topo, m);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.cost, b.cost);
}

// ---------------------------------------------------------------------------
// Open-loop serving sweep: the arrival generators plus the release-gated
// driver must stay bit-reproducible — same seed means identical executed
// schedules AND identical BENCH records — across both event-queue kinds and
// across ideal/mesh/torus interconnects. This is what pins the committed
// BENCH_serving.json trajectory.
// ---------------------------------------------------------------------------

TEST(QueueKindSweep, OpenLoopServingIdenticalAcrossKindsAndTopologies) {
  workloads::ArrivalConfig acfg;
  acfg.process = workloads::ArrivalProcess::kBursty;
  acfg.tasks = 250;
  acfg.clients = 4;
  acfg.kernel = "h264dec-8x8-10f";
  acfg.rate_hz = 4e6;
  const workloads::ArrivalSchedule sched = workloads::generate_arrivals(acfg);
  const Trace tr = workloads::make_serving_trace(sched);

  for (const noc::TopologyKind topo :
       {noc::TopologyKind::kIdeal, noc::TopologyKind::kMesh,
        noc::TopologyKind::kTorus}) {
    std::vector<ObservedRun> runs;
    std::vector<std::string> records;
    for (const QueueKind kind : kBothKinds) {
      ScopedQueueKind guard(kind);
      ObservedRun out;
      telemetry::MetricRegistry reg;
      NexusSharpConfig cfg;
      cfg.num_task_graphs = 4;
      cfg.freq_mhz = 100.0;
      cfg.noc.kind = topo;
      NexusSharp mgr(cfg);
      RuntimeConfig rc;
      rc.workers = 8;
      rc.noc.kind = topo;
      rc.open_loop = &sched.submission;
      rc.schedule_out = &out.schedule;
      rc.metrics = &reg;
      const RunResult r = run_trace(tr, mgr, rc);
      out.makespan = r.makespan;
      out.events = r.events;
      const telemetry::Snapshot snap =
          drop_queue_structure_gauges(reg.snapshot());
      out.metrics_json = telemetry::snapshot_json(snap);
      runs.push_back(std::move(out));
      records.push_back(harness::metrics_report_json(
          "determinism", "serving-bursty", "nexus#-4TG", 8, r.makespan, 0.0,
          &snap, nullptr, noc::to_string(topo)));
    }
    expect_runs_identical(runs[0], runs[1], noc::to_string(topo));
    EXPECT_EQ(records[0], records[1])
        << "BENCH record diverged across queue kinds on "
        << noc::to_string(topo);
    // Release gating held on every interconnect: no early starts.
    for (const ScheduleEntry& e : runs[0].schedule)
      ASSERT_GE(e.start, sched.submission.release[e.task]) << e.task;
  }
}

}  // namespace
}  // namespace nexus
