// Negative coverage for the schedule oracle (nexus::validate_schedule):
// every class of illegal schedule — missing/duplicated tasks, forged
// durations, worker overlap, dependency and fence violations — must be
// rejected with a diagnostic naming the violation. The positive direction
// is exercised constantly by the integration suites (every manager run is
// validated); what was untested is that the oracle actually *fails* on bad
// schedules, i.e. that those suites are capable of catching a buggy
// manager. Tests go through the tests/schedule_checker.hpp shim so the
// alias keeps compiling too.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "nexus/task/trace.hpp"
#include "schedule_checker.hpp"

namespace nexus {
namespace {

constexpr Addr kA = 0x1000;
constexpr Addr kB = 0x2000;

/// writer(A) -> reader(A), plus an independent writer(B).
///   task 0: out A, duration 10
///   task 1: in  A, duration 10  (RAW on task 0)
///   task 2: out B, duration 10  (independent)
Trace diamond() {
  Trace tr("diamond");
  tr.submit(0, 10, {{kA, Dir::kOut}});
  tr.submit(1, 10, {{kA, Dir::kIn}});
  tr.submit(2, 10, {{kB, Dir::kOut}});
  return tr;
}

/// The canonical legal schedule for diamond(): task 1 after task 0, task 2
/// parallel on another worker.
std::vector<ScheduleEntry> good_schedule() {
  return {{0, 0, 0, 10}, {1, 0, 10, 20}, {2, 1, 0, 10}};
}

std::string why(const Trace& tr, const std::vector<ScheduleEntry>& sched) {
  std::string error;
  EXPECT_FALSE(testing::validate_schedule(tr, sched, &error));
  EXPECT_FALSE(error.empty()) << "rejection must carry a diagnostic";
  return error;
}

TEST(ScheduleValidator, AcceptsALegalSchedule) {
  std::string error;
  EXPECT_TRUE(testing::validate_schedule(diamond(), good_schedule(), &error))
      << error;
  EXPECT_TRUE(error.empty());
}

TEST(ScheduleValidator, NullErrorPointerIsAccepted) {
  auto sched = good_schedule();
  sched.pop_back();
  EXPECT_FALSE(testing::validate_schedule(diamond(), sched));  // no *error out
}

TEST(ScheduleValidator, RejectsMissingTask) {
  auto sched = good_schedule();
  sched.pop_back();
  EXPECT_NE(why(diamond(), sched).find("2 of 3 tasks"), std::string::npos);
}

TEST(ScheduleValidator, RejectsDoubleCommit) {
  // Task 2's slot re-executes task 0: same count, one task twice.
  auto sched = good_schedule();
  sched[2] = {0, 1, 30, 40};
  EXPECT_NE(why(diamond(), sched).find("executed twice"), std::string::npos);
}

TEST(ScheduleValidator, RejectsUnknownTaskId) {
  auto sched = good_schedule();
  sched[2].task = 7;  // diamond() has tasks 0..2
  EXPECT_NE(why(diamond(), sched).find("unknown task"), std::string::npos);
}

TEST(ScheduleValidator, RejectsForgedDuration) {
  auto sched = good_schedule();
  sched[2].end = sched[2].start + 9;  // declared duration is 10
  EXPECT_NE(why(diamond(), sched).find("wrong duration"), std::string::npos);
}

TEST(ScheduleValidator, RejectsWorkerOverlap) {
  // Legal dependency order, but tasks 1 and 2 share worker 0 while their
  // intervals intersect.
  const std::vector<ScheduleEntry> sched = {
      {0, 0, 0, 10}, {1, 0, 10, 20}, {2, 0, 15, 25}};
  EXPECT_NE(why(diamond(), sched).find("overlaps"), std::string::npos);
}

TEST(ScheduleValidator, RejectsRawViolation) {
  // The reader (task 1) is committed in a reordered position: it starts
  // before its producer's end.
  const std::vector<ScheduleEntry> sched = {
      {0, 0, 0, 10}, {1, 1, 5, 15}, {2, 1, 15, 25}};
  const std::string error = why(diamond(), sched);
  EXPECT_NE(error.find("task 1"), std::string::npos);
  EXPECT_NE(error.find("before its dependences"), std::string::npos);
}

TEST(ScheduleValidator, RejectsWarViolation) {
  // writer(A), reader(A), writer(A) again: the second writer must wait for
  // the reader group to drain, not only for the first writer.
  Trace tr("war");
  tr.submit(0, 10, {{kA, Dir::kOut}});
  tr.submit(1, 20, {{kA, Dir::kIn}});  // long reader: the WAR window
  tr.submit(2, 10, {{kA, Dir::kOut}});
  // Writer 2 starts when writer 0 ends but while reader 1 is still running.
  const std::vector<ScheduleEntry> sched = {
      {0, 0, 0, 10}, {1, 1, 10, 30}, {2, 0, 10, 20}};
  EXPECT_NE(why(tr, sched).find("before its dependences"), std::string::npos);

  const std::vector<ScheduleEntry> legal = {
      {0, 0, 0, 10}, {1, 1, 10, 30}, {2, 0, 30, 40}};
  EXPECT_TRUE(testing::validate_schedule(tr, legal));
}

TEST(ScheduleValidator, RejectsTaskwaitFenceViolation) {
  // Independent tasks separated by a barrier: the second may not start
  // until everything before the barrier has finished.
  Trace tr("fence");
  tr.submit(0, 10, {{kA, Dir::kOut}});
  tr.taskwait();
  tr.submit(1, 10, {{kB, Dir::kOut}});
  const std::vector<ScheduleEntry> bad = {{0, 0, 0, 10}, {1, 1, 5, 15}};
  EXPECT_NE(why(tr, bad).find("before its dependences"), std::string::npos);
  const std::vector<ScheduleEntry> legal = {{0, 0, 0, 10}, {1, 1, 10, 20}};
  EXPECT_TRUE(testing::validate_schedule(tr, legal));
}

TEST(ScheduleValidator, RejectsTaskwaitOnProducerFenceViolation) {
  // taskwait_on(A) fences A's producer only: task 2 touches neither A nor
  // B, so the *only* thing ordering it is the producer fence — and unlike a
  // full taskwait, the long-running writer(B) does not hold it back.
  constexpr Addr kC = 0x3000;
  Trace tr("twon");
  tr.submit(0, 20, {{kA, Dir::kOut}});
  tr.submit(1, 50, {{kB, Dir::kOut}});
  tr.taskwait_on(kA);
  tr.submit(2, 10, {{kC, Dir::kOut}});
  // Task 2 starting at 15 violates the producer fence (task 0 ends at 20).
  const std::vector<ScheduleEntry> bad = {
      {0, 0, 0, 20}, {1, 1, 0, 50}, {2, 2, 15, 25}};
  EXPECT_NE(why(tr, bad).find("before its dependences"), std::string::npos);
  // Starting exactly at the producer's end is legal even though writer(B)
  // is still running — the fence is per-producer, not a full barrier.
  const std::vector<ScheduleEntry> legal = {
      {0, 0, 0, 20}, {1, 1, 0, 50}, {2, 2, 20, 30}};
  EXPECT_TRUE(testing::validate_schedule(tr, legal));
}

TEST(ScheduleValidator, ReaderGroupMayOverlapItself) {
  // Two readers of A may run concurrently; the oracle must not serialize
  // the reader group (that would reject every parallel manager).
  Trace tr("readers");
  tr.submit(0, 10, {{kA, Dir::kOut}});
  tr.submit(1, 10, {{kA, Dir::kIn}});
  tr.submit(2, 10, {{kA, Dir::kIn}});
  const std::vector<ScheduleEntry> sched = {
      {0, 0, 0, 10}, {1, 1, 10, 20}, {2, 2, 12, 22}};
  std::string error;
  EXPECT_TRUE(testing::validate_schedule(tr, sched, &error)) << error;
}

}  // namespace
}  // namespace nexus
