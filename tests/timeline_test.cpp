// TimelineRecorder tests: glob selection, sampling cadence on the sim-time
// grid, delta-encoding round-trips, auto-coarsening, zero-padded late
// series, empty-registry no-ops, and the two whole-stack contracts — a
// timeline never changes a run's makespan, and identical runs produce
// bit-identical timeline JSON.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "nexus/harness/experiment.hpp"
#include "nexus/nexussharp/nexussharp.hpp"
#include "nexus/runtime/simulation_driver.hpp"
#include "nexus/telemetry/json.hpp"
#include "nexus/telemetry/registry.hpp"
#include "nexus/telemetry/timeline.hpp"
#include "nexus/telemetry/writers.hpp"
#include "nexus/workloads/workloads.hpp"

namespace nexus {
namespace {

using telemetry::MetricRegistry;
using telemetry::Timeline;
using telemetry::TimelineConfig;
using telemetry::TimelineRecorder;

// ---------- glob matching ----------

TEST(PathGlob, LiteralAndSingleSegmentStar) {
  EXPECT_TRUE(telemetry::path_glob_match("a/b/c", "a/b/c"));
  EXPECT_FALSE(telemetry::path_glob_match("a/b/c", "a/b/d"));
  EXPECT_TRUE(telemetry::path_glob_match("nexus#/tg*/routed", "nexus#/tg0/routed"));
  EXPECT_TRUE(telemetry::path_glob_match("nexus#/tg*/routed", "nexus#/tg12/routed"));
  // '*' must not cross a '/' boundary.
  EXPECT_FALSE(telemetry::path_glob_match("nexus#/*", "nexus#/tg0/routed"));
  EXPECT_TRUE(telemetry::path_glob_match("nexus#/*/routed", "nexus#/tg0/routed"));
  EXPECT_FALSE(
      telemetry::path_glob_match("nexus#/*/routed", "nexus#/a/b/routed"));
}

TEST(PathGlob, DoubleStarCrossesSegments) {
  EXPECT_TRUE(telemetry::path_glob_match("**", "a/b/c"));
  EXPECT_TRUE(telemetry::path_glob_match("nexus#/**", "nexus#/tg0/table/fill"));
  EXPECT_TRUE(telemetry::path_glob_match("**/stalls", "nexus#/tg3/table/stalls"));
  EXPECT_FALSE(telemetry::path_glob_match("**/stalls", "nexus#/tg3/table/fill"));
}

TEST(PathGlob, QuestionMarkMatchesOneNonSlashChar) {
  EXPECT_TRUE(telemetry::path_glob_match("tg?", "tg0"));
  EXPECT_FALSE(telemetry::path_glob_match("tg?", "tg10"));
  EXPECT_FALSE(telemetry::path_glob_match("a?b", "a/b"));
  EXPECT_FALSE(telemetry::path_glob_match("tg?", "tg"));
}

TEST(PathGlob, EmptySelectorListSelectsEverything) {
  EXPECT_TRUE(telemetry::selectors_match({}, "anything/at/all"));
  EXPECT_TRUE(telemetry::selectors_match({"x", "any*"}, "anything"));
  EXPECT_FALSE(telemetry::selectors_match({"x", "y"}, "z"));
}

// ---------- delta encoding ----------

TEST(DeltaEncoding, RoundTripsIncludingNegativesAndEmpty) {
  const std::vector<std::int64_t> cases[] = {
      {}, {42}, {0, 1, 3, 3, 10}, {5, -7, 100, -100, 0}};
  for (const auto& v : cases) {
    EXPECT_EQ(telemetry::delta_decode(telemetry::delta_encode(v)), v);
  }
  EXPECT_EQ(telemetry::delta_encode({10, 12, 12, 20}),
            (std::vector<std::int64_t>{10, 2, 0, 8}));
}

// ---------- recorder mechanics ----------

TEST(TimelineRecorderTest, SamplesOnTheGridIncludingTimeZero) {
  MetricRegistry reg;
  auto& c = reg.counter("c");
  TimelineConfig cfg;
  cfg.interval_ps = 10;
  TimelineRecorder rec(reg, cfg);

  c.inc(5);
  rec.sample_until(0);  // grid point 0 only
  EXPECT_EQ(rec.rows(), 1u);
  c.inc(5);
  rec.sample_until(35);  // grid points 10, 20, 30
  EXPECT_EQ(rec.rows(), 4u);

  const Timeline tl = rec.freeze();
  EXPECT_EQ(tl.t, (std::vector<telemetry::TimeTick>{0, 10, 20, 30}));
  ASSERT_NE(tl.find("c"), nullptr);
  EXPECT_EQ(tl.find("c")->v, (std::vector<std::int64_t>{5, 10, 10, 10}));
}

TEST(TimelineRecorderTest, GlobSelectionAndHistogramSplitting) {
  MetricRegistry reg;
  reg.counter("nexus#/tg0/routed").inc(3);
  reg.counter("nexus#/tg1/routed").inc(4);
  reg.counter("nexus#/finishes").inc(9);
  reg.gauge("runtime/cores").set(8);
  reg.histogram("nexus#/pool/occupancy").record(7);
  reg.histogram("nexus#/pool/occupancy").record(9);

  TimelineConfig cfg;
  cfg.interval_ps = 10;
  cfg.select = {"nexus#/tg*/routed", "nexus#/pool/occupancy"};
  TimelineRecorder rec(reg, cfg);
  rec.sample_until(0);

  const Timeline tl = rec.freeze();
  ASSERT_EQ(tl.series.size(), 4u);  // tg0, tg1, occupancy:count, occupancy:sum
  EXPECT_NE(tl.find("nexus#/tg0/routed"), nullptr);
  EXPECT_NE(tl.find("nexus#/tg1/routed"), nullptr);
  EXPECT_EQ(tl.find("nexus#/finishes"), nullptr);
  EXPECT_EQ(tl.find("runtime/cores"), nullptr);
  ASSERT_NE(tl.find("nexus#/pool/occupancy:count"), nullptr);
  ASSERT_NE(tl.find("nexus#/pool/occupancy:sum"), nullptr);
  EXPECT_EQ(tl.find("nexus#/pool/occupancy:count")->v.front(), 2);
  EXPECT_EQ(tl.find("nexus#/pool/occupancy:sum")->v.front(), 16);
}

TEST(TimelineRecorderTest, EmptyRegistryIsANoOp) {
  MetricRegistry reg;
  TimelineConfig cfg;
  cfg.interval_ps = 10;
  TimelineRecorder rec(reg, cfg);
  rec.sample_until(100);
  rec.finish(105);
  EXPECT_EQ(reg.size(), 0u);  // sampling must never create metrics
  const Timeline tl = rec.freeze();
  EXPECT_TRUE(tl.series.empty());
  EXPECT_EQ(tl.t.size(), rec.rows());
}

TEST(TimelineRecorderTest, LateMetricsAreZeroPaddedToAlign) {
  MetricRegistry reg;
  reg.counter("early").inc(1);
  TimelineConfig cfg;
  cfg.interval_ps = 10;
  TimelineRecorder rec(reg, cfg);
  rec.sample_until(20);  // rows at 0, 10, 20 with only "early"

  reg.counter("late").inc(7);  // registered mid-run
  rec.sample_until(40);        // rows at 30, 40

  const Timeline tl = rec.freeze();
  ASSERT_EQ(tl.t.size(), 5u);
  ASSERT_NE(tl.find("late"), nullptr);
  EXPECT_EQ(tl.find("late")->v, (std::vector<std::int64_t>{0, 0, 0, 7, 7}));
  EXPECT_EQ(tl.find("early")->v.size(), 5u);
}

TEST(TimelineRecorderTest, SkipUntilExportsUnobservedPrefixAsZeros) {
  // A recorder attached after warm-up never observed the early grid
  // points: skip_until consumes them as bare rows, and the zero back-fill
  // machinery exports them as zeros instead of back-dating the attach-time
  // metric values onto history the recorder never saw.
  MetricRegistry reg;
  auto& c = reg.counter("c");
  c.inc(9);  // counted *before* the recorder attached
  TimelineConfig cfg;
  cfg.interval_ps = 10;
  TimelineRecorder rec(reg, cfg);
  rec.skip_until(25);    // grid points 0, 10, 20 pass unobserved
  rec.sample_until(40);  // first real rows: 30, 40

  const Timeline tl = rec.freeze();
  EXPECT_EQ(tl.t, (std::vector<telemetry::TimeTick>{0, 10, 20, 30, 40}));
  ASSERT_NE(tl.find("c"), nullptr);
  EXPECT_EQ(tl.find("c")->v, (std::vector<std::int64_t>{0, 0, 0, 9, 9}));
}

TEST(TimelineRecorderTest, SkipUntilBeforeTimeZeroIsANoOp) {
  MetricRegistry reg;
  reg.counter("c").inc(1);
  TimelineConfig cfg;
  cfg.interval_ps = 10;
  TimelineRecorder rec(reg, cfg);
  rec.skip_until(-1);  // pre-run attach: nothing behind the grid yet
  rec.sample_until(10);
  const Timeline tl = rec.freeze();
  EXPECT_EQ(tl.t, (std::vector<telemetry::TimeTick>{0, 10}));
  EXPECT_EQ(tl.find("c")->v, (std::vector<std::int64_t>{1, 1}));
}

TEST(TimelineRecorderTest, CoarseningBoundsRowsAndKeepsCoverage) {
  MetricRegistry reg;
  auto& c = reg.counter("c");
  TimelineConfig cfg;
  cfg.interval_ps = 1;
  cfg.max_points = 8;
  TimelineRecorder rec(reg, cfg);

  for (telemetry::TimeTick t = 0; t <= 1000; ++t) {
    c.inc();
    rec.sample_until(t);
  }
  EXPECT_LE(rec.rows(), 8u);
  EXPECT_GT(rec.interval(), 1);  // doubled at least once

  const Timeline tl = rec.freeze();
  EXPECT_EQ(tl.t.front(), 0);
  EXPECT_GE(tl.t.back(), 1000 - tl.interval);  // still covers the whole run
  // Rows survived decimation with their original (time, value) pairing:
  // the counter is incremented once per tick before sampling, so each row's
  // value is its timestamp + 1.
  const auto* s = tl.find("c");
  ASSERT_NE(s, nullptr);
  for (std::size_t i = 0; i < tl.t.size(); ++i)
    EXPECT_EQ(s->v[i], tl.t[i] + 1) << "row " << i;
}

TEST(TimelineRecorderTest, FinishRowSurvivesCoarseningAtTheCap) {
  // Regression: finish() used to append first and coarsen after, so with an
  // exactly-full grid the final makespan row landed on an odd index and was
  // immediately decimated away.
  MetricRegistry reg;
  reg.counter("c").inc(1);
  TimelineConfig cfg;
  cfg.interval_ps = 1;
  cfg.max_points = 7;
  TimelineRecorder rec(reg, cfg);
  rec.sample_until(6);  // exactly 7 grid rows: t = 0..6
  ASSERT_EQ(rec.rows(), 7u);
  rec.finish(100);
  EXPECT_LE(rec.rows(), cfg.max_points);
  EXPECT_EQ(rec.freeze().t.back(), 100);
}

TEST(TimelineRecorderTest, FinishAddsOneOffGridRowOnce) {
  MetricRegistry reg;
  reg.counter("c").inc(2);
  TimelineConfig cfg;
  cfg.interval_ps = 10;
  TimelineRecorder rec(reg, cfg);
  rec.sample_until(20);
  EXPECT_EQ(rec.rows(), 3u);
  rec.finish(25);
  EXPECT_EQ(rec.rows(), 4u);
  rec.finish(25);  // second finish at the same time is a no-op
  EXPECT_EQ(rec.rows(), 4u);
  rec.finish(20);  // a finish not past the last row is a no-op
  EXPECT_EQ(rec.rows(), 4u);
  EXPECT_EQ(rec.freeze().t.back(), 25);
}

// ---------- export ----------

TEST(TimelineExport, JsonDeltaRoundTripsThroughTheParser) {
  MetricRegistry reg;
  auto& c = reg.counter("flow");
  auto& g = reg.gauge("level");
  TimelineConfig cfg;
  cfg.interval_ps = 10;
  TimelineRecorder rec(reg, cfg);
  const std::int64_t gauge_walk[] = {5, -3, 12, 0};
  for (telemetry::TimeTick t = 0; t < 4; ++t) {
    c.inc(static_cast<std::uint64_t>(t) * 7);
    g.set(gauge_walk[t]);
    rec.sample_until(t * 10);
  }
  const Timeline tl = rec.freeze();
  const std::string doc = telemetry::timeline_json(tl);

  telemetry::JsonValue v;
  std::string error;
  ASSERT_TRUE(telemetry::json_parse(doc, &v, &error)) << error;
  EXPECT_EQ(v.find("encoding")->str, "delta");
  EXPECT_EQ(v.find("points")->int_or(0), 4);

  auto decode = [](const telemetry::JsonValue& arr) {
    std::vector<std::int64_t> raw;
    for (const auto& e : arr.array) raw.push_back(e.int_or(0));
    return telemetry::delta_decode(raw);
  };
  EXPECT_EQ(decode(*v.find("t")), (std::vector<std::int64_t>{0, 10, 20, 30}));
  const telemetry::JsonValue* series = v.find("series");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(decode(*series->find("flow")->find("v")), tl.find("flow")->v);
  // Gauges are exported raw (they are not monotone), so no decoding needed.
  std::vector<std::int64_t> gauge_vals;
  for (const auto& e : series->find("level")->find("v")->array)
    gauge_vals.push_back(e.int_or(0));
  EXPECT_EQ(gauge_vals, tl.find("level")->v);
  EXPECT_EQ(gauge_vals, (std::vector<std::int64_t>{5, -3, 12, 0}));
}

TEST(TimelineExport, CsvIsColumnarWithOneRowPerSample) {
  Timeline tl;
  tl.interval = 10;
  tl.t = {0, 10};
  tl.series.push_back({"a", telemetry::MetricKind::kCounter, {1, 2}});
  tl.series.push_back({"b", telemetry::MetricKind::kGauge, {-1, 5}});
  EXPECT_EQ(telemetry::timeline_csv(tl), "t_ps,a,b\n0,1,-1\n10,2,5\n");
}

// ---------- whole-stack contracts ----------

Trace small_gaussian() { return workloads::make_gaussian({.n = 60}); }

RunResult run_small(TimelineRecorder* rec, telemetry::MetricRegistry* reg) {
  NexusSharpConfig cfg;
  cfg.num_task_graphs = 4;
  cfg.freq_mhz = 100.0;
  NexusSharp mgr(cfg);
  RuntimeConfig rc;
  rc.workers = 8;
  rc.metrics = reg;
  rc.timeline = rec;
  const Trace tr = small_gaussian();
  return run_trace(tr, mgr, rc);
}

TEST(TimelineIntegration, AttachingATimelineDoesNotChangeTheMakespan) {
  telemetry::MetricRegistry reg_plain;
  const RunResult plain = run_small(nullptr, &reg_plain);

  telemetry::MetricRegistry reg_tl;
  TimelineConfig cfg;
  cfg.interval_ps = us(50.0);
  TimelineRecorder rec(reg_tl, cfg);
  const RunResult with_tl = run_small(&rec, &reg_tl);

  EXPECT_EQ(plain.makespan, with_tl.makespan);
  EXPECT_EQ(plain.events, with_tl.events);
  EXPECT_GT(rec.rows(), 2u);
  // The end-of-run snapshots must also be identical.
  EXPECT_EQ(telemetry::snapshot_json(reg_plain.snapshot()),
            telemetry::snapshot_json(reg_tl.snapshot()));
}

TEST(TimelineIntegration, DeterministicAcrossIdenticalRuns) {
  std::string json[2];
  for (int i = 0; i < 2; ++i) {
    telemetry::MetricRegistry reg;
    TimelineConfig cfg;
    cfg.interval_ps = us(50.0);
    TimelineRecorder rec(reg, cfg);
    (void)run_small(&rec, &reg);
    json[i] = telemetry::timeline_json(rec.freeze());
  }
  EXPECT_EQ(json[0], json[1]);
  EXPECT_GT(json[0].size(), 100u);
}

TEST(TimelineIntegration, FinalRowLandsOnTheMakespanWithSettledCounters) {
  telemetry::MetricRegistry reg;
  TimelineConfig cfg;
  cfg.interval_ps = us(50.0);
  TimelineRecorder rec(reg, cfg);
  const RunResult r = run_small(&rec, &reg);
  const Timeline tl = rec.freeze();
  ASSERT_FALSE(tl.t.empty());
  EXPECT_EQ(tl.t.back(), r.makespan);
  const auto* fin = tl.find("nexus#/finishes");
  ASSERT_NE(fin, nullptr);
  EXPECT_EQ(fin->v.back(), static_cast<std::int64_t>(r.tasks));
  // Monotone series really are monotone over sim time.
  for (std::size_t i = 1; i < fin->v.size(); ++i)
    EXPECT_LE(fin->v[i - 1], fin->v[i]);
}

TEST(TimelineIntegration, LateAttachedSamplerZeroPadsWarmupInExportedJson) {
  // Attach the recorder through Simulation::set_sampler *after* the sim has
  // advanced (the live attach path): the warm-up grid points must export as
  // zeros in the JSON, not as copies of the attach-time counter values.
  struct Noop final : Component {
    void handle(Simulation&, const Event&) override {}
  };
  telemetry::MetricRegistry reg;
  auto& c = reg.counter("c");
  Simulation sim;
  Noop comp;
  const std::uint32_t id = sim.add_component(&comp);
  sim.schedule(0, id, 0);
  sim.schedule(55, id, 0);
  sim.run();  // warm-up: now() == 55, nothing sampled
  c.inc(9);   // state accumulated before the recorder existed

  TimelineConfig cfg;
  cfg.interval_ps = 10;
  TimelineRecorder rec(reg, cfg);
  sim.set_sampler(&rec);
  sim.schedule(75, id, 0);
  sim.run();

  const Timeline tl = rec.freeze();
  EXPECT_EQ(tl.t,
            (std::vector<telemetry::TimeTick>{0, 10, 20, 30, 40, 50, 60, 70}));
  ASSERT_NE(tl.find("c"), nullptr);
  EXPECT_EQ(tl.find("c")->v,
            (std::vector<std::int64_t>{0, 0, 0, 0, 0, 0, 9, 9}));
  // And the on-disk form: delta-encoded, the warm-up rows stay zeros.
  const std::string json = telemetry::timeline_json(tl);
  EXPECT_NE(json.find("\"c\":{\"kind\":\"counter\",\"v\":[0,0,0,0,0,0,9,0]}"),
            std::string::npos)
      << json;
}

TEST(TimelineIntegration, PreRunAttachStaysBitIdenticalWithSetSampler) {
  // set_sampler before the first event must behave exactly as the legacy
  // pre-run attach (no skipped rows) — the bit-identity pin for the fix.
  struct Noop final : Component {
    void handle(Simulation&, const Event&) override {}
  };
  telemetry::MetricRegistry reg;
  reg.counter("c").inc(2);
  Simulation sim;
  Noop comp;
  const std::uint32_t id = sim.add_component(&comp);
  TimelineConfig cfg;
  cfg.interval_ps = 10;
  TimelineRecorder rec(reg, cfg);
  sim.set_sampler(&rec);
  sim.schedule(0, id, 0);
  sim.schedule(25, id, 0);
  sim.run();
  const Timeline tl = rec.freeze();
  EXPECT_EQ(tl.t, (std::vector<telemetry::TimeTick>{0, 10, 20}));
  EXPECT_EQ(tl.find("c")->v, (std::vector<std::int64_t>{2, 2, 2}));
}

TEST(TimelineIntegration, BenchConfigSelectsContentionPathsOfBothManagers) {
  const auto select = harness::bench_timeline_config().select;
  // The stall-burst series are the point of the fig-bench timelines; the
  // selectors must reach the nested per-TGU layout, not just Nexus++'s.
  EXPECT_TRUE(telemetry::selectors_match(select, "nexus#/tg0/table/stalls"));
  EXPECT_TRUE(telemetry::selectors_match(select, "nexus#/tg11/table/stalls"));
  EXPECT_TRUE(telemetry::selectors_match(select, "nexus++/table/stalls"));
  EXPECT_TRUE(telemetry::selectors_match(select, "nexus#/arbiter/conflicts"));
  EXPECT_TRUE(telemetry::selectors_match(select, "nexus#/tg3/routed"));
  EXPECT_FALSE(telemetry::selectors_match(select, "runtime/core0/busy_ps"));
}

TEST(TimelineIntegration, HarnessRunOnceReportAttachesFrozenTimeline) {
  const Trace tr = small_gaussian();
  const auto spec = harness::ManagerSpec::nexussharp(2, 100.0);
  telemetry::TimelineConfig cfg;
  cfg.interval_ps = us(50.0);
  const harness::RunReport rep =
      harness::run_once_report(tr, spec, 4, {}, true, &cfg);
  ASSERT_NE(rep.timeline, nullptr);
  ASSERT_NE(rep.metrics, nullptr);
  EXPECT_FALSE(rep.timeline->t.empty());
  EXPECT_EQ(rep.timeline->t.back(), rep.result.makespan);

  // Without a config the report carries no timeline (back-compat).
  const harness::RunReport plain =
      harness::run_once_report(tr, spec, 4, {}, true);
  EXPECT_EQ(plain.timeline, nullptr);
  EXPECT_EQ(plain.result.makespan, rep.result.makespan);
}

TEST(TimelineIntegration, SweepAttachesPerPointTimelines) {
  const Trace tr = small_gaussian();
  const auto spec = harness::ManagerSpec::nexussharp(2, 100.0);
  const Tick baseline = harness::ideal_baseline(tr);
  telemetry::TimelineConfig cfg;
  cfg.interval_ps = us(50.0);
  const harness::Series s =
      harness::sweep(tr, spec, {1, 4}, baseline, {}, true, &cfg);
  ASSERT_EQ(s.points.size(), 2u);
  for (const auto& p : s.points) {
    ASSERT_NE(p.timeline, nullptr) << p.cores << " cores";
    EXPECT_EQ(p.timeline->t.back(), p.makespan);
  }
}

}  // namespace
}  // namespace nexus
