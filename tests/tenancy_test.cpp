// Multi-tenant Nexus# tests: clustered arbiter hierarchy correctness,
// flat-mode bit-identity, per-tenant quota NACK isolation and liveness,
// WRR starvation regression, fairness-harness arithmetic, and the
// determinism contracts of the tenant driver.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "nexus/harness/fairness.hpp"
#include "nexus/nexussharp/nexussharp.hpp"
#include "nexus/runtime/schedule_validator.hpp"
#include "nexus/runtime/tenancy.hpp"
#include "nexus/sim/event_queue.hpp"
#include "nexus/telemetry/registry.hpp"
#include "nexus/workloads/arrivals.hpp"
#include "nexus/workloads/workloads.hpp"

namespace nexus {
namespace {

NexusSharpConfig sharp_cfg(std::uint32_t clusters) {
  NexusSharpConfig cfg;
  cfg.num_task_graphs = 4;
  cfg.freq_mhz = 100.0;
  cfg.arbiter_clusters = clusters;
  return cfg;
}

/// Owns the per-tenant serving workloads a run_tenants call references.
struct TenantSet {
  std::vector<workloads::ArrivalSchedule> scheds;
  std::vector<Trace> traces;
  std::vector<TenantStream> streams;
};

TenantSet make_tenants(const std::vector<double>& rates_hz,
                       std::uint64_t tasks_each, std::uint64_t seed = 0x7E4A) {
  TenantSet set;
  set.scheds.reserve(rates_hz.size());
  set.traces.reserve(rates_hz.size());
  for (std::size_t t = 0; t < rates_hz.size(); ++t) {
    workloads::ArrivalConfig c;
    c.rate_hz = rates_hz[t];
    c.tasks = tasks_each;
    c.clients = 1;
    c.seed = seed + t;
    c.chain_fraction = 0.0;
    set.scheds.push_back(workloads::generate_arrivals(c));
    set.traces.push_back(workloads::make_serving_trace(set.scheds.back()));
  }
  for (std::size_t t = 0; t < rates_hz.size(); ++t)
    set.streams.push_back({&set.traces[t], set.scheds[t].submission.release});
  return set;
}

// --- clustered arbiter hierarchy -----------------------------------------

TEST(Clustered, DrainsAndScheduleIsValid) {
  const Trace tr = workloads::make_gaussian({.n = 150});
  NexusSharp mgr(sharp_cfg(2));
  std::vector<ScheduleEntry> sched;
  RuntimeConfig rc;
  rc.workers = 16;
  rc.schedule_out = &sched;
  const RunResult r = run_trace(tr, mgr, rc);
  EXPECT_EQ(r.tasks, tr.num_tasks());
  EXPECT_EQ(mgr.stats().sim_tasks_live, 0u);
  EXPECT_TRUE(mgr.clustered());
  std::string err;
  EXPECT_TRUE(validate_schedule(tr, sched, &err)) << err;
}

TEST(Clustered, FourClustersValidToo) {
  const Trace tr = workloads::make_h264dec(workloads::h264_config(8));
  NexusSharp mgr(sharp_cfg(4));
  std::vector<ScheduleEntry> sched;
  RuntimeConfig rc;
  rc.workers = 16;
  rc.schedule_out = &sched;
  const RunResult r = run_trace(tr, mgr, rc);
  EXPECT_EQ(r.tasks, tr.num_tasks());
  EXPECT_EQ(mgr.stats().sim_tasks_live, 0u);
  std::string err;
  EXPECT_TRUE(validate_schedule(tr, sched, &err)) << err;
}

TEST(Clustered, ZeroAndOneClusterAreFlatBitIdentical) {
  // arbiter_clusters 0 and 1 must both take the legacy single-arbiter
  // pipeline: not just equal makespans, the entire schedule bit-identical.
  const Trace tr = workloads::make_gaussian({.n = 120});
  std::vector<ScheduleEntry> s0;
  std::vector<ScheduleEntry> s1;
  {
    NexusSharp mgr(sharp_cfg(0));
    RuntimeConfig rc;
    rc.workers = 8;
    rc.schedule_out = &s0;
    run_trace(tr, mgr, rc);
    EXPECT_FALSE(mgr.clustered());
  }
  {
    NexusSharp mgr(sharp_cfg(1));
    RuntimeConfig rc;
    rc.workers = 8;
    rc.schedule_out = &s1;
    run_trace(tr, mgr, rc);
    EXPECT_FALSE(mgr.clustered());
  }
  ASSERT_EQ(s0.size(), s1.size());
  for (std::size_t i = 0; i < s0.size(); ++i) {
    EXPECT_EQ(s0[i].task, s1[i].task);
    EXPECT_EQ(s0[i].worker, s1[i].worker);
    EXPECT_EQ(s0[i].start, s1[i].start);
    EXPECT_EQ(s0[i].end, s1[i].end);
  }
}

TEST(Clustered, Deterministic) {
  const Trace tr = workloads::make_gaussian({.n = 100});
  std::vector<ScheduleEntry> a;
  std::vector<ScheduleEntry> b;
  for (std::vector<ScheduleEntry>* out : {&a, &b}) {
    NexusSharp mgr(sharp_cfg(2));
    RuntimeConfig rc;
    rc.workers = 8;
    rc.schedule_out = out;
    run_trace(tr, mgr, rc);
  }
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].task, b[i].task);
    EXPECT_EQ(a[i].start, b[i].start);
  }
}

TEST(Clustered, SingleClusterParticipationDrains) {
  // Single-param tasks: each touches exactly one task graph, so exactly one
  // cluster participates and the root must not wait on the idle cluster.
  Trace tr("oneparam");
  for (int i = 0; i < 40; ++i) {
    ParamList p;
    p.push_back({0x1000 + 0x40 * static_cast<Addr>(i), Dir::kOut});
    tr.submit(0, us(5), p);
  }
  tr.taskwait();
  NexusSharp mgr(sharp_cfg(4));
  const RunResult r = run_trace(tr, mgr, RuntimeConfig{.workers = 8});
  EXPECT_EQ(r.tasks, 40u);
  EXPECT_EQ(mgr.stats().sim_tasks_live, 0u);
}

// --- admission control / quotas -------------------------------------------

TEST(Tenancy, QuotaNackIsolatesHeavyTenant) {
  // Heavy tenant 0 offered 50x the light tenant's rate, pool quota far
  // below its burst depth: the heavy stream must be NACK-held while the
  // light one keeps flowing, and everything still drains.
  TenantSet set = make_tenants({5e6, 1e5}, 300);
  NexusSharpConfig cfg = sharp_cfg(2);
  cfg.pool_capacity = 64;
  cfg.tenancy.tenants = 2;
  cfg.tenancy.quota.pool = 8;
  NexusSharp mgr(cfg);
  const TenantRunResult r =
      run_tenants(set.streams, mgr, RuntimeConfig{.workers = 4});
  EXPECT_EQ(r.total_tasks, 600u);
  EXPECT_EQ(r.tenants[0].tasks, 300u);
  EXPECT_EQ(r.tenants[1].tasks, 300u);
  EXPECT_GT(r.tenants[0].nack_holds, 0u);
  EXPECT_GT(mgr.stats().nacks, 0u);
  EXPECT_EQ(mgr.stats().sim_tasks_live, 0u);
}

TEST(Tenancy, TinyQuotaStaysLive) {
  // quota.pool = 1 serializes the tenant completely; the NACK/resume
  // retry loop must still drain every task.
  TenantSet set = make_tenants({2e6}, 120);
  NexusSharpConfig cfg = sharp_cfg(0);  // flat mode polices quotas too
  cfg.tenancy.tenants = 1;
  cfg.tenancy.quota.pool = 1;
  NexusSharp mgr(cfg);
  const TenantRunResult r =
      run_tenants(set.streams, mgr, RuntimeConfig{.workers = 2});
  EXPECT_EQ(r.total_tasks, 120u);
  EXPECT_GT(r.tenants[0].nack_holds, 0u);
  EXPECT_EQ(mgr.stats().sim_tasks_live, 0u);
}

TEST(Tenancy, DisabledTenancyNeverNacks) {
  TenantSet set = make_tenants({2e6, 2e6}, 150);
  NexusSharp mgr(sharp_cfg(2));
  const TenantRunResult r =
      run_tenants(set.streams, mgr, RuntimeConfig{.workers = 8});
  EXPECT_EQ(r.total_tasks, 300u);
  EXPECT_EQ(r.tenants[0].nack_holds + r.tenants[1].nack_holds, 0u);
  EXPECT_EQ(mgr.stats().nacks, 0u);
}

// --- determinism ----------------------------------------------------------

TEST(Tenancy, QueueKindBitIdentity) {
  // The co-run's every per-task latency must be identical under the heap
  // and calendar event queues (the repo-wide determinism contract).
  TenantSet set = make_tenants({1e6, 4e6, 5e5}, 150);
  NexusSharpConfig cfg = sharp_cfg(2);
  cfg.tenancy.tenants = 3;
  cfg.tenancy.quota.pool = 16;
  cfg.tenancy.weights = {1, 4, 1};

  const QueueKind saved = default_queue_kind();
  std::vector<TenantRunResult> results;
  for (const QueueKind k : {QueueKind::kBinaryHeap, QueueKind::kCalendar}) {
    set_default_queue_kind(k);
    NexusSharp mgr(cfg);
    results.push_back(
        run_tenants(set.streams, mgr, RuntimeConfig{.workers = 8}));
  }
  set_default_queue_kind(saved);

  EXPECT_EQ(results[0].makespan, results[1].makespan);
  ASSERT_EQ(results[0].tenants.size(), results[1].tenants.size());
  for (std::size_t t = 0; t < results[0].tenants.size(); ++t) {
    EXPECT_EQ(results[0].tenants[t].raw, results[1].tenants[t].raw)
        << "tenant " << t;
    EXPECT_EQ(results[0].tenants[t].nack_holds,
              results[1].tenants[t].nack_holds);
  }
}

// --- QoS / starvation regression ------------------------------------------

TEST(Tenancy, WrrAndQuotasProtectLightTenants) {
  // One heavy bursty tenant against three light tenants on a small pool.
  // Unpoliced (no quotas, FIFO root), the heavy burst monopolizes the pool
  // and the light tenants' mean latency inflates; with per-tenant quotas +
  // WRR the light tenants must stay close to their unpoliced-from-light
  // baseline. Regression gate: QoS light mean < unpoliced light mean.
  TenantSet set = make_tenants({8e6, 2e5, 2e5, 2e5}, 250);

  auto light_mean = [](const TenantRunResult& r) {
    double sum = 0.0;
    for (std::size_t t = 1; t < r.tenants.size(); ++t)
      sum += r.tenants[t].mean_ps;
    return sum / static_cast<double>(r.tenants.size() - 1);
  };

  NexusSharpConfig base = sharp_cfg(2);
  base.pool_capacity = 48;

  NexusSharpConfig fifo = base;
  fifo.tenancy.tenants = 4;
  fifo.tenancy.weighted = false;  // no quotas, FIFO root: the baseline
  NexusSharp m_fifo(fifo);
  const TenantRunResult r_fifo =
      run_tenants(set.streams, m_fifo, RuntimeConfig{.workers = 4});

  NexusSharpConfig qos = base;
  qos.tenancy.tenants = 4;
  qos.tenancy.quota.pool = 12;
  qos.tenancy.weighted = true;
  qos.tenancy.weights = {1, 1, 1, 1};
  NexusSharp m_qos(qos);
  const TenantRunResult r_qos =
      run_tenants(set.streams, m_qos, RuntimeConfig{.workers = 4});

  EXPECT_EQ(r_fifo.total_tasks, 1000u);
  EXPECT_EQ(r_qos.total_tasks, 1000u);
  EXPECT_LT(light_mean(r_qos), light_mean(r_fifo));
}

// --- fairness harness ------------------------------------------------------

TEST(Fairness, JainIndexMath) {
  EXPECT_DOUBLE_EQ(harness::jain_index({1.0, 1.0, 1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(harness::jain_index({1.0, 0.0, 0.0, 0.0}), 0.25);
  EXPECT_DOUBLE_EQ(harness::jain_index({}), 0.0);
  EXPECT_DOUBLE_EQ(harness::jain_index({0.0, 0.0}), 0.0);
  const double j = harness::jain_index({2.0, 1.0});
  EXPECT_GT(j, 0.5);
  EXPECT_LT(j, 1.0);
}

TEST(Fairness, ReportAndGaugesAreConsistent) {
  TenantSet set = make_tenants({2e6, 1e6}, 120);
  harness::ManagerSpec spec = harness::ManagerSpec::nexussharp(4, 100.0);
  spec.sharp.arbiter_clusters = 2;
  spec.sharp.tenancy.tenants = 2;
  spec.sharp.tenancy.quota.pool = 16;

  telemetry::MetricRegistry reg;
  RuntimeConfig rc;
  rc.metrics = &reg;
  const harness::FairnessReport rep =
      harness::run_fairness(set.streams, spec, 8, rc);

  ASSERT_EQ(rep.tenants.size(), 2u);
  for (const harness::TenantFairness& f : rep.tenants) {
    EXPECT_GT(f.solo_mean_ps, 0.0);
    EXPECT_GE(f.slowdown, 1.0);  // contention can only hurt
  }
  EXPECT_GT(rep.jain, 0.0);
  EXPECT_LE(rep.jain, 1.0 + 1e-9);
  EXPECT_GE(rep.slowdown_ratio, 1.0);

  const telemetry::Snapshot snap = reg.snapshot();
  const telemetry::MetricValue* jain = snap.find("fairness/jain_x1e6");
  ASSERT_NE(jain, nullptr);
  EXPECT_EQ(jain->gauge, std::llround(rep.jain * 1e6));
  EXPECT_NE(snap.find("fairness/tenant0/slowdown_x1e3"), nullptr);
  EXPECT_NE(snap.find("runtime/offered"), nullptr);
}

TEST(Tenancy, TenantTelemetryPathsAreZeroPadded) {
  // 12 tenants: per-tenant paths must carry two-digit indices so snapshot
  // path order equals numeric tenant order.
  std::vector<double> rates(12, 5e5);
  TenantSet set = make_tenants(rates, 20);
  NexusSharpConfig cfg = sharp_cfg(2);
  cfg.tenancy.tenants = 12;
  NexusSharp mgr(cfg);
  telemetry::MetricRegistry reg;
  RuntimeConfig rc;
  rc.workers = 8;
  rc.metrics = &reg;
  run_tenants(set.streams, mgr, rc);
  const telemetry::Snapshot snap = reg.snapshot();
  EXPECT_NE(snap.find("tenancy/tenant07/tasks"), nullptr);
  EXPECT_NE(snap.find("tenancy/tenant11/tasks"), nullptr);
  EXPECT_EQ(snap.find("tenancy/tenant7/tasks"), nullptr);
}

}  // namespace
}  // namespace nexus
