// The DES scheduler equivalence suite: the calendar queue must pop the
// exact (t, seq) total order the reference binary heap pops, event by
// event, under every load shape the kernel can produce — same-tick bursts,
// regime changes that force bucket-array resizes in both directions,
// far-future stragglers that trigger full-rotation sweeps, and
// schedule-during-pop reentrancy (the hold model every component's handle()
// runs). The heap is the original kernel structure, so agreement here is
// what licenses swapping the implementation under six pinned BENCH records.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "nexus/common/rng.hpp"
#include "nexus/sim/event_queue.hpp"
#include "nexus/sim/simulation.hpp"
#include "nexus/sim/time.hpp"

namespace nexus {
namespace {

// ---------- knobs ----------

TEST(QueueKind, ToString) {
  EXPECT_STREQ(to_string(QueueKind::kBinaryHeap), "heap");
  EXPECT_STREQ(to_string(QueueKind::kCalendar), "calendar");
}

/// Restores the process default on scope exit so tests cannot leak a kind
/// into later suites (gtest runs everything in one process).
class ScopedQueueKind {
 public:
  explicit ScopedQueueKind(QueueKind k) : saved_(default_queue_kind()) {
    set_default_queue_kind(k);
  }
  ~ScopedQueueKind() { set_default_queue_kind(saved_); }
  ScopedQueueKind(const ScopedQueueKind&) = delete;
  ScopedQueueKind& operator=(const ScopedQueueKind&) = delete;

 private:
  QueueKind saved_;
};

TEST(QueueKind, DefaultKnobSelectsNewSimulationsQueue) {
  {
    ScopedQueueKind guard(QueueKind::kBinaryHeap);
    EXPECT_EQ(Simulation().queue_kind(), QueueKind::kBinaryHeap);
  }
  {
    ScopedQueueKind guard(QueueKind::kCalendar);
    EXPECT_EQ(Simulation().queue_kind(), QueueKind::kCalendar);
  }
  // The explicit constructor wins over the default either way.
  ScopedQueueKind guard(QueueKind::kCalendar);
  EXPECT_EQ(Simulation(QueueKind::kBinaryHeap).queue_kind(),
            QueueKind::kBinaryHeap);
}

// ---------- direct calendar-queue semantics ----------

Event ev_at(Tick t, std::uint64_t seq) { return Event{t, seq, 0, 0, seq, 0}; }

TEST(CalendarQueue, PopsTimeThenSeqOrder) {
  // A batch whose arrival order is adversarially shuffled across buckets.
  EventQueue q(QueueKind::kCalendar);
  std::uint64_t seq = 0;
  for (const Tick t : {ns(50), ns(10), ns(90), ns(10), ns(0), ns(50), ns(200)})
    q.push(ev_at(t, seq++));
  std::vector<std::pair<Tick, std::uint64_t>> popped;
  while (!q.empty()) {
    const Event e = q.pop();
    popped.emplace_back(e.t, e.seq);
  }
  const std::vector<std::pair<Tick, std::uint64_t>> want = {
      {ns(0), 4},  {ns(10), 1}, {ns(10), 3}, {ns(50), 0},
      {ns(50), 5}, {ns(90), 2}, {ns(200), 6}};
  EXPECT_EQ(popped, want);
}

TEST(CalendarQueue, SameTickBurstPopsInInsertionOrder) {
  EventQueue q(QueueKind::kCalendar);
  for (std::uint64_t i = 0; i < 1000; ++i) q.push(ev_at(ns(7), i));
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const Event e = q.pop();
    ASSERT_EQ(e.seq, i);
    ASSERT_EQ(e.t, ns(7));
  }
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, FarFutureStragglerTriggersSweepAndStillPopsLast) {
  // Dense region plus one event seconds ahead: after the dense region
  // drains, serving it by rotating window by window would walk millions of
  // empty windows — the direct-search fallback (a "sweep") must jump there.
  // The population is kept at 16 events so neither resize threshold can
  // fire: a rebuild re-aims the server at the earliest pending event
  // directly, which would reach the straggler without ever sweeping.
  EventQueue q(QueueKind::kCalendar);
  std::uint64_t seq = 0;
  q.push(ev_at(ms(4500), seq++));  // straggler, ~4.5e9 ps ahead
  for (int i = 0; i < 15; ++i) q.push(ev_at(ns(i), seq++));
  Tick last = -1;
  std::size_t n = 0;
  while (!q.empty()) {
    const Event e = q.pop();
    ASSERT_GE(e.t, last);
    last = e.t;
    ++n;
  }
  EXPECT_EQ(n, 16u);
  EXPECT_EQ(last, ms(4500));
  EXPECT_GE(q.calendar_stats().sweeps, 1u);
}

TEST(CalendarQueue, ResizeChurnAndArenaReuse) {
  // Two fill/drain waves across the grow and shrink thresholds: the second
  // wave's bucket storage must come out of the arena pool, not the
  // allocator.
  EventQueue q(QueueKind::kCalendar);
  Xoshiro256 rng(17);
  std::uint64_t seq = 0;
  auto fill_drain = [&](std::size_t n) {
    for (std::size_t i = 0; i < n; ++i)
      q.push(ev_at(static_cast<Tick>(rng.below(ns(1000))), seq++));
    Tick last = -1;
    while (!q.empty()) {
      const Event e = q.pop();
      ASSERT_GE(e.t, last);
      last = e.t;
    }
  };
  fill_drain(4096);
  const CalendarQueue::Stats s1 = q.calendar_stats();
  EXPECT_GT(s1.grows, 0u);    // 4096 events >> 8 initial buckets
  EXPECT_GT(s1.shrinks, 0u);  // the drain crosses the halving threshold
  fill_drain(4096);
  const CalendarQueue::Stats s2 = q.calendar_stats();
  EXPECT_GT(s2.arena_reuses, s1.arena_reuses)
      << "second wave should recycle slabs pooled by the first";
}

TEST(CalendarQueue, StructureStatsTrackHighWaters) {
  // The introspection stats the profiler/telemetry surface: arena slab
  // high-water, densest-bucket occupancy, and the queue's max depth.
  EventQueue q(QueueKind::kCalendar);
  std::uint64_t seq = 0;
  // A same-tick burst makes one bucket visibly dense.
  for (int i = 0; i < 64; ++i) q.push(ev_at(ns(5), seq++));
  for (int i = 0; i < 32; ++i) q.push(ev_at(ns(100 + i), seq++));
  EXPECT_EQ(q.max_depth(), 96u);
  const CalendarQueue::Stats s = q.calendar_stats();
  EXPECT_GE(s.max_bucket, 64u) << "the same-tick burst shares one bucket";
  EXPECT_GT(s.arena_high_water, 0u) << "bucket slabs come from the arena";
  while (!q.empty()) (void)q.pop();
  // High-waters are monotone: draining must not lower them.
  EXPECT_EQ(q.max_depth(), 96u);
  EXPECT_GE(q.calendar_stats().max_bucket, 64u);
}

TEST(EventQueueDepth, HeapTracksMaxDepthToo) {
  // max_depth is queue-kind-independent (it feeds the sim/queue/max_depth
  // gauge on both kinds).
  EventQueue q(QueueKind::kBinaryHeap);
  std::uint64_t seq = 0;
  for (int i = 0; i < 10; ++i) q.push(ev_at(ns(i), seq++));
  for (int i = 0; i < 5; ++i) (void)q.pop();
  for (int i = 0; i < 3; ++i) q.push(ev_at(ns(50 + i), seq++));
  EXPECT_EQ(q.max_depth(), 10u);  // the first wave's peak
}

// ---------- differential: queue level ----------

/// Drives a heap and a calendar through the identical operation stream and
/// asserts every popped event matches field for field. The stream follows
/// the kernel's monotonic-time contract (pushes never precede the last
/// popped time), mimicking handle()-reentrancy: most pops immediately push
/// successors.
void run_differential(std::uint64_t seed, std::uint64_t total_pops) {
  EventQueue heap(QueueKind::kBinaryHeap);
  EventQueue cal(QueueKind::kCalendar);
  Xoshiro256 rng(seed);
  std::uint64_t seq = 0;
  Tick now = 0;
  auto push_both = [&](Tick t, std::uint32_t op) {
    const Event e{t, seq, 0, op, seq, static_cast<std::uint64_t>(t)};
    ++seq;
    heap.push(e);
    cal.push(e);
  };

  for (int i = 0; i < 256; ++i)
    push_both(static_cast<Tick>(rng.below(ns(100))), 0);

  for (std::uint64_t pops = 0; pops < total_pops && !heap.empty(); ++pops) {
    ASSERT_FALSE(cal.empty());
    ASSERT_EQ(heap.size(), cal.size());
    const Event a = heap.pop();
    const Event b = cal.pop();
    ASSERT_EQ(a.t, b.t) << "pop " << pops;
    ASSERT_EQ(a.seq, b.seq) << "pop " << pops;
    ASSERT_EQ(a.op, b.op);
    ASSERT_EQ(a.a, b.a);
    now = a.t;

    // Schedule-during-pop: the regimes sweep dense bursts, typical jitter,
    // population growth/shrink phases, and rare far-future stragglers.
    const std::uint64_t phase = pops * 8 / total_pops;  // 0..7
    const std::uint64_t sel = rng.below(100);
    if (sel < 8) {
      for (int k = 0; k < 3; ++k) push_both(now, 1);  // same-tick burst
    } else if (sel < 10) {
      push_both(now + ms(2) + static_cast<Tick>(rng.below(ms(8))), 2);
    } else if (sel < (phase % 2 == 0 ? 95u : 60u)) {
      // Even phases push more than they pop (population grows, calendar
      // must resize up); odd phases drain it back down.
      push_both(now + static_cast<Tick>(rng.below(ns(200))), 3);
      if (sel < 40) push_both(now + static_cast<Tick>(rng.below(ns(20))), 4);
    }
  }
  while (!heap.empty()) {
    ASSERT_FALSE(cal.empty());
    const Event a = heap.pop();
    const Event b = cal.pop();
    ASSERT_EQ(a.t, b.t);
    ASSERT_EQ(a.seq, b.seq);
  }
  EXPECT_TRUE(cal.empty());
}

TEST(EventQueueDifferential, AdversarialHoldModelPopsIdentically) {
  run_differential(0xD1FFE12Eull, 60000);
}

TEST(EventQueueDifferential, SeedSweep) {
  for (const std::uint64_t seed : {1ull, 42ull, 0xFEEDull})
    run_differential(seed, 12000);
}

// ---------- differential: whole simulations ----------

/// A component web with seeded random fan-out: every live event reschedules
/// one successor (occasionally two) across components at mixed delays
/// (including zero), so each seed chain survives its whole budget instead of
/// dying as a critical branching process would. The recorded (time, op,
/// payload) journal is the full observable schedule.
class ChatterBox final : public Component {
 public:
  ChatterBox(std::uint64_t seed, std::vector<std::string>* journal)
      : rng_(seed), journal_(journal) {}

  void set_peers(std::vector<std::uint32_t> ids) { peers_ = std::move(ids); }

  void handle(Simulation& sim, const Event& e) override {
    journal_->push_back(std::to_string(sim.now()) + "/" +
                        std::to_string(e.op) + "/" + std::to_string(e.a));
    if (e.a == 0) return;
    // Hoisted draws: the stream must not depend on evaluation order.
    const std::uint64_t fan = 1 + (rng_.below(10) == 9 ? 1 : 0);
    for (std::uint64_t k = 0; k < fan; ++k) {
      const std::uint64_t sel = rng_.below(10);
      const Tick d = sel < 3 ? 0
                     : sel < 9
                         ? static_cast<Tick>(rng_.below(ns(50)))
                         : ns(2000) + static_cast<Tick>(rng_.below(ns(500)));
      const auto dest = static_cast<std::uint32_t>(rng_.below(peers_.size()));
      sim.schedule_in(d, peers_[dest], e.op + 1, e.a - 1);
    }
  }

 private:
  Xoshiro256 rng_;
  std::vector<std::string>* journal_;
  std::vector<std::uint32_t> peers_;
};

std::vector<std::string> run_chatter(QueueKind kind, std::uint64_t seed) {
  Simulation sim(kind);
  std::vector<std::string> journal;
  std::vector<ChatterBox> boxes;
  boxes.reserve(8);
  for (int i = 0; i < 8; ++i) boxes.emplace_back(seed + 100u + static_cast<std::uint64_t>(i), &journal);
  std::vector<std::uint32_t> ids;
  ids.reserve(boxes.size());
  for (auto& b : boxes) ids.push_back(sim.add_component(&b));
  for (auto& b : boxes) b.set_peers(ids);
  for (std::uint32_t i = 0; i < ids.size(); ++i)
    sim.schedule(ns(i), ids[i], 0, 40);  // fan-out budget 40 per seed event
  sim.run();
  journal.push_back("makespan=" + std::to_string(sim.now()) +
                    " events=" + std::to_string(sim.events_processed()));
  return journal;
}

TEST(EventQueueDifferential, FullSimulationJournalsMatch) {
  for (const std::uint64_t seed : {7ull, 0xABCDull}) {
    const std::vector<std::string> heap = run_chatter(QueueKind::kBinaryHeap, seed);
    const std::vector<std::string> cal = run_chatter(QueueKind::kCalendar, seed);
    ASSERT_EQ(heap.size(), cal.size());
    EXPECT_EQ(heap, cal);
    EXPECT_GT(heap.size(), 100u) << "web died too early to prove anything";
  }
}

}  // namespace
}  // namespace nexus
