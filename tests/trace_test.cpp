// Trace-layer tests: span-chain conservation (every task exactly one
// complete, monotone lifecycle chain whose phase durations telescope to the
// sojourn), cross-checks against the schedule oracle and the exec log, dep
// edges bracketed by producer finish and consumer resolve, NoC flow events
// conserving delivered flits against Network::stats(), the zero-overhead
// contract (attaching a recorder must not change the schedule by one
// event), critical-path attribution tiling [0, makespan] exactly on
// ideal/mesh/torus interconnects, and the Chrome exporter's invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "nexus/nexuspp/nexuspp.hpp"
#include "nexus/nexussharp/nexussharp.hpp"
#include "nexus/noc/network.hpp"
#include "nexus/runtime/ideal_manager.hpp"
#include "nexus/runtime/simulation_driver.hpp"
#include "nexus/telemetry/critical_path.hpp"
#include "nexus/telemetry/registry.hpp"
#include "nexus/telemetry/snapshot.hpp"
#include "nexus/telemetry/trace.hpp"
#include "nexus/telemetry/trace_export.hpp"
#include "nexus/workloads/arrivals.hpp"
#include "nexus/workloads/workloads.hpp"
#include "schedule_checker.hpp"

namespace nexus {
namespace {

using telemetry::CriticalPathReport;
using telemetry::DepEdge;
using telemetry::NocMessage;
using telemetry::TaskPhases;
using telemetry::TaskSpan;
using telemetry::TraceData;
using telemetry::TraceRecorder;

Trace small_gaussian() {
  workloads::GaussianConfig gcfg;
  gcfg.n = 40;
  return workloads::make_gaussian(gcfg);
}

NexusSharpConfig sharp_cfg(noc::TopologyKind kind) {
  NexusSharpConfig cfg;
  cfg.num_task_graphs = 4;
  cfg.freq_mhz = 100.0;
  cfg.noc.kind = kind;
  return cfg;
}

struct TracedRun {
  RunResult result;
  TraceData trace;
  std::vector<ScheduleEntry> schedule;
};

TracedRun run_traced(const Trace& tr, TaskManagerModel& mgr,
                     std::uint32_t workers = 8) {
  TracedRun out;
  TraceRecorder rec;
  RuntimeConfig rc;
  rc.workers = workers;
  rc.trace = &rec;
  rc.schedule_out = &out.schedule;
  out.result = run_trace(tr, mgr, rc);
  out.trace = rec.freeze();
  return out;
}

/// The conservation core: one complete span per task, monotone boundaries,
/// phases telescoping to the sojourn, exec intervals matching the executed
/// schedule entry for entry, and dep edges bracketed causally.
void check_conservation(const Trace& tr, const TracedRun& r) {
  ASSERT_EQ(r.trace.tasks.size(), tr.num_tasks());
  ASSERT_EQ(r.schedule.size(), tr.num_tasks());
  EXPECT_EQ(r.trace.makespan, r.result.makespan);

  std::map<std::uint64_t, const ScheduleEntry*> sched;
  for (const ScheduleEntry& e : r.schedule) {
    EXPECT_TRUE(sched.emplace(e.task, &e).second)
        << "task " << e.task << " executed twice";
  }

  for (const TaskSpan& s : r.trace.tasks) {
    ASSERT_TRUE(s.complete()) << "task " << s.task << " has an open span";
    EXPECT_GE(s.worker, 0) << "task " << s.task;
    // Monotone chain.
    EXPECT_LE(s.submit, s.accepted) << "task " << s.task;
    EXPECT_LE(s.accepted, s.resolved) << "task " << s.task;
    EXPECT_LE(s.resolved, s.ready) << "task " << s.task;
    EXPECT_LE(s.ready, s.dispatch) << "task " << s.task;
    EXPECT_LE(s.dispatch, s.exec_start) << "task " << s.task;
    EXPECT_LE(s.exec_start, s.exec_end) << "task " << s.task;
    EXPECT_LE(s.exec_end, r.trace.makespan) << "task " << s.task;
    // Phases telescope to the sojourn exactly.
    const TaskPhases p = telemetry::phases_of(s);
    EXPECT_EQ(p.ingest + p.dep_wait + p.writeback + p.queue_wait + p.dispatch +
                  p.execute,
              s.sojourn())
        << "task " << s.task;
    // The span's exec interval is the schedule's, entry for entry.
    const auto it = sched.find(s.task);
    ASSERT_NE(it, sched.end()) << "task " << s.task << " traced but not run";
    EXPECT_EQ(s.exec_start, it->second->start) << "task " << s.task;
    EXPECT_EQ(s.exec_end, it->second->end) << "task " << s.task;
    EXPECT_EQ(s.worker, static_cast<std::int32_t>(it->second->worker))
        << "task " << s.task;
  }

  // The schedule the spans mirror must itself be legal.
  std::string err;
  EXPECT_TRUE(testing::validate_schedule(tr, r.schedule, &err)) << err;

  // Dep edges: both endpoints traced; the kick happens no earlier than the
  // producer's finish and no later than the consumer's resolve stamp.
  for (const DepEdge& d : r.trace.deps) {
    const TaskSpan* prod = r.trace.find(d.producer);
    const TaskSpan* cons = r.trace.find(d.consumer);
    ASSERT_NE(prod, nullptr) << "edge producer " << d.producer;
    ASSERT_NE(cons, nullptr) << "edge consumer " << d.consumer;
    EXPECT_LE(prod->exec_end, d.t)
        << "kick " << d.producer << "->" << d.consumer << " precedes finish";
    EXPECT_LE(d.t, cons->resolved)
        << "kick " << d.producer << "->" << d.consumer << " after resolve";
  }
}

TEST(TraceConservation, NexusSharpIdeal) {
  const Trace tr = small_gaussian();
  NexusSharp mgr(sharp_cfg(noc::TopologyKind::kIdeal));
  const TracedRun r = run_traced(tr, mgr);
  check_conservation(tr, r);
  // The ideal crossbar still carries every manager message as a traced
  // flight, delivered inline.
  EXPECT_FALSE(r.trace.messages.empty());
  EXPECT_TRUE(r.trace.link_spans.empty());
}

TEST(TraceConservation, NexusSharpMesh) {
  const Trace tr = small_gaussian();
  NexusSharp mgr(sharp_cfg(noc::TopologyKind::kMesh));
  const TracedRun r = run_traced(tr, mgr);
  check_conservation(tr, r);
  // Routed topology: per-hop link spans exist and each stays inside its
  // message's flight window.
  EXPECT_FALSE(r.trace.link_spans.empty());
  for (const telemetry::LinkSpan& l : r.trace.link_spans) {
    ASSERT_LT(l.msg, r.trace.messages.size());
    const NocMessage& m = r.trace.messages[l.msg];
    EXPECT_GE(l.start, m.depart);
    if (m.arrive >= 0) {
      EXPECT_LE(l.start + l.dur, m.arrive);
    }
  }
}

TEST(TraceConservation, NexusPP) {
  const Trace tr = small_gaussian();
  NexusPP mgr;
  const TracedRun r = run_traced(tr, mgr);
  check_conservation(tr, r);
}

TEST(TraceConservation, IdealManager) {
  const Trace tr = small_gaussian();
  IdealManager mgr;
  const TracedRun r = run_traced(tr, mgr);
  check_conservation(tr, r);
}

TEST(TraceConservation, NexusSharpConfigFieldAttachMatchesBindTrace) {
  // The NexusSharpConfig::trace field is construction-time sugar for
  // bind_trace: both attach paths must produce the identical span graph.
  const Trace tr = small_gaussian();
  TraceRecorder via_cfg;
  {
    NexusSharpConfig cfg = sharp_cfg(noc::TopologyKind::kIdeal);
    cfg.trace = &via_cfg;
    NexusSharp mgr(cfg);
    RuntimeConfig rc;
    rc.workers = 8;
    rc.trace = &via_cfg;
    run_trace(tr, mgr, rc);
  }
  NexusSharp mgr(sharp_cfg(noc::TopologyKind::kIdeal));
  const TracedRun r = run_traced(tr, mgr);
  const TraceData a = via_cfg.freeze();
  ASSERT_EQ(a.tasks.size(), r.trace.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].task, r.trace.tasks[i].task);
    EXPECT_EQ(a.tasks[i].resolved, r.trace.tasks[i].resolved);
    EXPECT_EQ(a.tasks[i].exec_end, r.trace.tasks[i].exec_end);
  }
  EXPECT_EQ(a.messages.size(), r.trace.messages.size());
  EXPECT_EQ(a.deps.size(), r.trace.deps.size());
}

// ---------------------------------------------------------------------------
// NoC flow events vs the Network's own conservation ledger.
// ---------------------------------------------------------------------------

TEST(TraceNoc, DeliveredFlitsMatchNetworkStats) {
  const Trace tr = small_gaussian();
  for (const noc::TopologyKind kind :
       {noc::TopologyKind::kIdeal, noc::TopologyKind::kMesh,
        noc::TopologyKind::kTorus}) {
    NexusSharp mgr(sharp_cfg(kind));
    const TracedRun r = run_traced(tr, mgr);
    const noc::Network::Stats s = mgr.network().stats();
    EXPECT_EQ(r.trace.delivered_flits("nexus#/noc"), s.delivered_flits)
        << noc::to_string(kind);
    // Every traced message was sent; every delivered one has an arrival no
    // earlier than its departure.
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    for (const NocMessage& m : r.trace.messages) {
      if (r.trace.str(m.net) != "nexus#/noc") continue;
      ++sent;
      if (m.arrive >= 0) {
        ++delivered;
        EXPECT_GE(m.arrive, m.depart);
      }
    }
    EXPECT_EQ(sent, s.messages) << noc::to_string(kind);
    EXPECT_EQ(delivered, s.delivered) << noc::to_string(kind);
  }
}

// ---------------------------------------------------------------------------
// Zero-overhead contract: attaching a recorder must not change one event.
// ---------------------------------------------------------------------------

TEST(TraceZeroOverhead, ScheduleBitIdenticalWithAndWithoutRecorder) {
  const Trace tr = small_gaussian();
  for (const noc::TopologyKind kind :
       {noc::TopologyKind::kIdeal, noc::TopologyKind::kMesh}) {
    auto run_one = [&](TraceRecorder* rec, std::vector<ScheduleEntry>* sched) {
      NexusSharp mgr(sharp_cfg(kind));
      RuntimeConfig rc;
      rc.workers = 8;
      rc.trace = rec;
      rc.schedule_out = sched;
      return run_trace(tr, mgr, rc);
    };
    TraceRecorder rec;
    std::vector<ScheduleEntry> with;
    std::vector<ScheduleEntry> without;
    const RunResult a = run_one(&rec, &with);
    const RunResult b = run_one(nullptr, &without);
    EXPECT_EQ(a.makespan, b.makespan) << noc::to_string(kind);
    EXPECT_EQ(a.events, b.events) << noc::to_string(kind);
    ASSERT_EQ(with.size(), without.size()) << noc::to_string(kind);
    for (std::size_t i = 0; i < with.size(); ++i) {
      EXPECT_EQ(with[i].task, without[i].task) << "entry " << i;
      EXPECT_EQ(with[i].worker, without[i].worker) << "entry " << i;
      EXPECT_EQ(with[i].start, without[i].start) << "entry " << i;
      EXPECT_EQ(with[i].end, without[i].end) << "entry " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Critical-path attribution.
// ---------------------------------------------------------------------------

void check_attribution(const TraceData& td) {
  const CriticalPathReport cp = telemetry::critical_path(td);
  ASSERT_FALSE(cp.segments.empty());
  EXPECT_EQ(cp.makespan, td.makespan);
  // Contiguous tiling of [0, makespan]: each segment starts where the
  // previous ended, so the durations sum to the makespan by construction.
  telemetry::TraceTick at = 0;
  for (const telemetry::PathSegment& s : cp.segments) {
    EXPECT_EQ(s.from, at);
    EXPECT_GE(s.to, s.from);
    at = s.to;
  }
  EXPECT_EQ(at, td.makespan);
  telemetry::TraceTick sum = 0;
  for (const telemetry::PathSegment& s : cp.segments) sum += s.dur();
  EXPECT_EQ(sum, td.makespan);
}

TEST(CriticalPath, AttributionSumsToMakespanAcrossTopologies) {
  const Trace tr = small_gaussian();
  for (const noc::TopologyKind kind :
       {noc::TopologyKind::kIdeal, noc::TopologyKind::kMesh,
        noc::TopologyKind::kTorus}) {
    NexusSharp mgr(sharp_cfg(kind));
    const TracedRun r = run_traced(tr, mgr);
    SCOPED_TRACE(noc::to_string(kind));
    check_attribution(r.trace);
  }
}

TEST(CriticalPath, AttributionHoldsForOtherManagers) {
  const Trace tr = small_gaussian();
  {
    NexusPP mgr;
    check_attribution(run_traced(tr, mgr).trace);
  }
  {
    IdealManager mgr;
    check_attribution(run_traced(tr, mgr).trace);
  }
}

TEST(CriticalPath, SingleTaskIsChargedFully) {
  // One task, one core: master prefix + the six phases + master tail must
  // cover the whole run.
  TraceRecorder rec;
  rec.on_submit(0, 10);
  rec.on_accepted(0, 20);
  rec.on_resolved(0, 30);
  rec.on_ready(0, 45);
  rec.on_dispatch(0, 50, 0);
  rec.on_exec(0, 60, 160);
  rec.on_freed(0, 170);
  rec.set_makespan(180);
  const TraceData td = rec.freeze();
  const CriticalPathReport cp = telemetry::critical_path(td);
  EXPECT_EQ(cp.last_task, 0u);
  using telemetry::PathPhase;
  EXPECT_EQ(cp.total(PathPhase::kMaster), 10);
  EXPECT_EQ(cp.total(PathPhase::kIngest), 10);
  EXPECT_EQ(cp.total(PathPhase::kDepWait), 10);
  EXPECT_EQ(cp.total(PathPhase::kWriteback), 15);
  EXPECT_EQ(cp.total(PathPhase::kQueueWait), 5);
  EXPECT_EQ(cp.total(PathPhase::kDispatch), 10);
  EXPECT_EQ(cp.total(PathPhase::kExecute), 100);
  EXPECT_EQ(cp.total(PathPhase::kMasterTail), 20);
  check_attribution(td);
}

TEST(CriticalPath, BindingProducerWinsOverEarlierKicks) {
  // Two producers kick one consumer; the walk must charge the gap to the
  // *latest* kick (task 2), not the earlier one.
  TraceRecorder rec;
  for (std::uint64_t p : {1u, 2u}) {
    rec.on_submit(p, 0);
    rec.on_accepted(p, 0);
    rec.on_resolved(p, 0);
    rec.on_ready(p, 0);
    rec.on_dispatch(p, 0, static_cast<std::int32_t>(p));
  }
  rec.on_exec(1, 0, 50);
  rec.on_exec(2, 0, 90);
  rec.on_submit(3, 0);
  rec.on_accepted(3, 5);
  rec.on_dep(1, 3, 55);
  rec.on_dep(2, 3, 95);
  rec.on_resolved(3, 95);
  rec.on_ready(3, 100);
  rec.on_dispatch(3, 100, 0);
  rec.on_exec(3, 110, 200);
  rec.set_makespan(200);
  const TraceData td = rec.freeze();
  const CriticalPathReport cp = telemetry::critical_path(td);
  EXPECT_EQ(cp.last_task, 3u);
  bool charged_to_2 = false;
  for (const telemetry::PathSegment& s : cp.segments)
    if (s.phase == telemetry::PathPhase::kExecute && s.task == 2)
      charged_to_2 = true;
  EXPECT_TRUE(charged_to_2) << "binding producer must be the latest kick";
  check_attribution(td);
}

// ---------------------------------------------------------------------------
// Chrome exporter invariants (the validator script checks the same things
// on a full bench export; this keeps them under unit-test granularity).
// ---------------------------------------------------------------------------

TEST(TraceExport, JsonCarriesEventsAndExactAttribution) {
  const Trace tr = small_gaussian();
  NexusSharp mgr(sharp_cfg(noc::TopologyKind::kMesh));
  const TracedRun r = run_traced(tr, mgr);
  const std::string json = telemetry::chrome_trace_json(r.trace);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"critical_path\""), std::string::npos);
  EXPECT_NE(json.find("\"makespan_ps\""), std::string::npos);
  // Track metadata for cores, the manager units and the NoC links.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"core0\""), std::string::npos);
  EXPECT_NE(json.find("sharp/arbiter"), std::string::npos);
  // Lifecycle chain phases appear as async begin/end pairs.
  EXPECT_NE(json.find("\"dep_wait\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Open-loop serving conservation: the serving histograms the driver fills
// must reconcile exactly against the span chains — the sojourn histogram is
// the spans' submit->finish set, the serving-latency histogram the
// release->finish set, and every arrival is both offered and accepted.
// ---------------------------------------------------------------------------

TEST(ServingConservation, OpenLoopHistogramsMatchSpanChains) {
  workloads::ArrivalConfig acfg;
  acfg.tasks = 300;
  acfg.clients = 4;
  acfg.kernel = "h264dec-8x8-10f";
  acfg.rate_hz = 4e6;
  const workloads::ArrivalSchedule sched = workloads::generate_arrivals(acfg);
  const Trace tr = workloads::make_serving_trace(sched);

  NexusSharp mgr(sharp_cfg(noc::TopologyKind::kIdeal));
  TraceRecorder rec;
  telemetry::MetricRegistry reg;
  RuntimeConfig rc;
  rc.workers = 8;
  rc.open_loop = &sched.submission;
  rc.trace = &rec;
  rc.metrics = &reg;
  const RunResult result = run_trace(tr, mgr, rc);
  const TraceData td = rec.freeze();
  const telemetry::Snapshot snap = reg.snapshot();

  ASSERT_EQ(td.tasks.size(), tr.num_tasks());
  EXPECT_EQ(result.tasks, tr.num_tasks());
  // Every arrival was offered and admitted exactly once.
  EXPECT_EQ(snap.counter_at("runtime/offered"), tr.num_tasks());
  EXPECT_EQ(snap.counter_at("runtime/accepted"), tr.num_tasks());

  // Reconstruct the two latency sets from the span chains. Phases
  // telescope to the sojourn (check_conservation's contract), so matching
  // the histogram against span sojourns ties the serving metrics to the
  // per-phase durations of PR 7's trace layer.
  std::uint64_t sojourn_sum = 0;
  std::uint64_t sojourn_min = ~0ULL;
  std::uint64_t sojourn_max = 0;
  std::uint64_t serving_sum = 0;
  for (const TaskSpan& s : td.tasks) {
    ASSERT_TRUE(s.complete()) << "task " << s.task;
    const TaskPhases p = telemetry::phases_of(s);
    const auto sojourn = static_cast<std::uint64_t>(
        p.ingest + p.dep_wait + p.writeback + p.queue_wait + p.dispatch +
        p.execute);
    ASSERT_EQ(sojourn, static_cast<std::uint64_t>(s.sojourn()));
    sojourn_sum += sojourn;
    sojourn_min = std::min(sojourn_min, sojourn);
    sojourn_max = std::max(sojourn_max, sojourn);
    // Open loop: the span's submit stamp is the release-gated attempt, so
    // serving latency is sojourn plus the (zero here) admission backlog.
    EXPECT_GE(s.submit, sched.submission.release[s.task]) << s.task;
    serving_sum += static_cast<std::uint64_t>(
        s.exec_end - sched.submission.release[s.task]);
  }

  const telemetry::MetricValue* soj = snap.find("runtime/sojourn_ps");
  ASSERT_NE(soj, nullptr);
  EXPECT_EQ(soj->hist.count, tr.num_tasks());
  EXPECT_EQ(soj->hist.sum, sojourn_sum);
  EXPECT_EQ(soj->hist.min, sojourn_min);
  EXPECT_EQ(soj->hist.max, sojourn_max);

  const telemetry::MetricValue* serving =
      snap.find("runtime/serving_latency_ps");
  ASSERT_NE(serving, nullptr);
  EXPECT_EQ(serving->hist.count, tr.num_tasks());
  EXPECT_EQ(serving->hist.sum, serving_sum);

  // Admission wait: one sample per task, each bounded by that task's
  // serving latency, so the maxima are ordered too.
  const telemetry::MetricValue* adm = snap.find("runtime/admission_wait_ps");
  ASSERT_NE(adm, nullptr);
  EXPECT_EQ(adm->hist.count, tr.num_tasks());
  EXPECT_LE(adm->hist.max, serving->hist.max);

  // Per-client histograms partition the serving-latency set exactly.
  std::uint64_t client_count = 0;
  std::uint64_t client_sum = 0;
  for (std::uint32_t c = 0; c < acfg.clients; ++c) {
    const telemetry::MetricValue* h =
        snap.find("runtime/client" + std::to_string(c) + "/sojourn_ps");
    ASSERT_NE(h, nullptr) << "client " << c;
    client_count += h->hist.count;
    client_sum += h->hist.sum;
  }
  EXPECT_EQ(client_count, tr.num_tasks());
  EXPECT_EQ(client_sum, serving_sum);
}

TEST(TraceRecorderUnit, FirstSubmitWinsAndFreezeSorts) {
  TraceRecorder rec;
  rec.on_submit(7, 100);
  rec.on_submit(7, 250);  // back-pressured retry: must not move the stamp
  rec.on_submit(3, 50);
  const TraceData td = rec.freeze();
  ASSERT_EQ(td.tasks.size(), 2u);
  EXPECT_EQ(td.tasks[0].task, 3u);
  EXPECT_EQ(td.tasks[1].task, 7u);
  EXPECT_EQ(td.tasks[1].submit, 100);
}

}  // namespace
}  // namespace nexus
