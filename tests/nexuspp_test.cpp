// Nexus++ model tests: pipeline cycle fidelity against the paper's Fig. 1
// example, finish-path timing, pool backpressure, the taskwait_on fallback,
// and schedule-legality on whole workloads.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "nexus/nexuspp/nexuspp.hpp"
#include "nexus/runtime/ideal_manager.hpp"
#include "nexus/runtime/simulation_driver.hpp"
#include "nexus/workloads/workloads.hpp"
#include "schedule_checker.hpp"

namespace nexus {
namespace {

constexpr Tick kCycle = 10000;  // 10 ns at the 100 MHz test frequency

ParamList params_n(std::size_t n, Addr base, Dir dir = Dir::kOut) {
  ParamList p;
  for (std::size_t i = 0; i < n; ++i)
    p.push_back({base + 0x40 * static_cast<Addr>(i), dir});
  return p;
}

// ---------- Fig. 1 cycle fidelity ----------

TEST(NexusPPTiming, FourParamTaskLatency) {
  // Input Parser 4+2*4 = 12 cycles (the paper's "12 cycles per task"),
  // stage FIFO 3, Insert 2+4*4 = 18 ("18 cycles for our 4-parameter task"),
  // output FIFO 3, Write-Back 3 => ready 39 cycles after submission.
  Trace tr("t");
  tr.submit(0, us(5), params_n(4, 0x1000));
  tr.taskwait();
  NexusPP mgr;
  const RunResult r = run_trace(tr, mgr, RuntimeConfig{.workers = 1});
  EXPECT_EQ(r.makespan, 39 * kCycle + us(5));
}

TEST(NexusPPTiming, OneParamTaskLatency) {
  // 4+2 = 6 receive, +3 fifo, 2+4 = 6 insert, +3 fifo, +3 WB = 21 cycles.
  Trace tr("t");
  tr.submit(0, us(1), params_n(1, 0x1000));
  tr.taskwait();
  NexusPP mgr;
  const RunResult r = run_trace(tr, mgr, RuntimeConfig{.workers = 1});
  EXPECT_EQ(r.makespan, 21 * kCycle + us(1));
}

TEST(NexusPPTiming, InsertStageBoundsThroughput) {
  // Back-to-back independent 4-param tasks: the paper notes the write-back
  // "took place every other 18 cycles" — the insert stage is the bottleneck.
  Trace tr("t");
  tr.submit(0, us(5), params_n(4, 0x1000));
  tr.submit(0, us(5), params_n(4, 0x2000));
  tr.submit(0, us(5), params_n(4, 0x3000));
  tr.taskwait();
  NexusPP mgr;
  const RunResult r = run_trace(tr, mgr, RuntimeConfig{.workers = 3});
  // Task 3 ready at 39 + 2*18 cycles; all run in parallel for 5us.
  EXPECT_EQ(r.makespan, (39 + 36) * kCycle + us(5));
}

TEST(NexusPPTiming, FinishPathKicksDependent) {
  // t0 out(A); t1 in(A): t1's start = t0 end + notify(2) + fifo(3)
  // + finish port (4/param + 2/kick = 6) + fifo(3) + WB(3) = +17 cycles.
  Trace tr("t");
  tr.submit(0, us(10), params_n(1, 0x1000));
  {
    ParamList p;
    p.push_back({0x1000, Dir::kIn});
    tr.submit(0, us(1), p);
  }
  tr.taskwait();
  NexusPP mgr;
  const RunResult r = run_trace(tr, mgr, RuntimeConfig{.workers = 2});
  const Tick t0_end = 21 * kCycle + us(10);
  EXPECT_EQ(r.makespan, t0_end + 17 * kCycle + us(1));
}

TEST(NexusPPTiming, FrequencyScalesLatency) {
  Trace tr("t");
  tr.submit(0, us(5), params_n(4, 0x1000));
  tr.taskwait();
  NexusPPConfig cfg;
  cfg.freq_mhz = 50.0;  // 20 ns cycles: hardware latency doubles
  NexusPP mgr(cfg);
  const RunResult r = run_trace(tr, mgr, RuntimeConfig{.workers = 1});
  EXPECT_EQ(r.makespan, 39 * 2 * kCycle + us(5));
}

// ---------- structural behaviour ----------

TEST(NexusPP, DoesNotSupportTaskwaitOn) {
  NexusPP mgr;
  EXPECT_FALSE(mgr.supports_taskwait_on());
}

TEST(NexusPP, TaskwaitOnFallsBackToFullBarrier) {
  // t0 slow writes A, t1 fast writes B, taskwait_on(B), t2 writes C.
  // Ideal overlaps t2 with t0; Nexus++ must drain both first.
  Trace tr("t");
  tr.submit(0, us(100), params_n(1, 0xA00));
  tr.submit(0, us(1), params_n(1, 0xB00));
  tr.taskwait_on(0xB00);
  tr.submit(0, us(50), params_n(1, 0xC00));
  tr.taskwait();
  IdealManager ideal;
  NexusPP npp;
  const Tick t_ideal = run_trace(tr, ideal, RuntimeConfig{.workers = 4}).makespan;
  const Tick t_npp = run_trace(tr, npp, RuntimeConfig{.workers = 4}).makespan;
  EXPECT_EQ(t_ideal, us(100));            // t2 overlaps t0
  EXPECT_GT(t_npp, us(150));              // t2 serialized after the barrier
}

TEST(NexusPP, PoolBackpressureBlocksMaster) {
  NexusPPConfig cfg;
  cfg.pool_capacity = 2;
  NexusPP mgr(cfg);
  Trace tr("t");
  for (int i = 0; i < 6; ++i)
    tr.submit(0, us(10), params_n(1, 0x1000 + 0x400 * static_cast<Addr>(i)));
  tr.taskwait();
  const RunResult r = run_trace(tr, mgr, RuntimeConfig{.workers = 1});
  EXPECT_EQ(mgr.stats().pool_peak, 2u);
  EXPECT_EQ(mgr.stats().tasks_in, 6u);
  // One worker: tasks serialize; makespan at least 6x10us.
  EXPECT_GE(r.makespan, us(60));
}

TEST(NexusPP, TableStallsRecoveredUnderPressure) {
  // Long-running independent tasks pile up live entries; a tiny table must
  // stall inserts and recover as tasks retire, still completing with a
  // legal schedule. (Table capacity: 8 sets x 2 ways = 16 entries, but 40
  // tasks are in flight because only one worker drains them.)
  NexusPPConfig cfg;
  cfg.table.sets = 8;
  cfg.table.ways = 2;
  cfg.table.kol_entries = 2;
  cfg.table.chain_probe_limit = 4;
  cfg.pool_capacity = 64;
  NexusPP mgr(cfg);
  Trace tr("t");
  for (int i = 0; i < 40; ++i)
    tr.submit(0, us(500), params_n(1, 0x1000 + 0x40 * static_cast<Addr>(i)));
  tr.taskwait();
  std::vector<ScheduleEntry> sched;
  RuntimeConfig rc;
  rc.workers = 1;
  rc.schedule_out = &sched;
  (void)run_trace(tr, mgr, rc);
  EXPECT_GT(mgr.stats().table_stalls, 0u);
  std::string err;
  EXPECT_TRUE(testing::validate_schedule(tr, sched, &err)) << err;
}

// ---------- whole-workload schedule legality ----------

class NexusPPWorkloadTest : public ::testing::TestWithParam<std::string> {};

TEST_P(NexusPPWorkloadTest, ScheduleIsLegal) {
  Trace tr;
  const std::string which = GetParam();
  if (which == "gaussian-120") {
    tr = workloads::make_gaussian({.n = 120});
  } else if (which == "h264-8x8") {
    tr = workloads::make_h264dec(workloads::h264_config(8));
  } else {
    workloads::StreamclusterConfig cfg;
    cfg.total_tasks = 3000;
    cfg.phases = 8;
    cfg.total_work = ms(30);
    tr = workloads::make_streamcluster(cfg);
  }
  NexusPP mgr;
  std::vector<ScheduleEntry> sched;
  RuntimeConfig rc;
  rc.workers = 16;
  rc.schedule_out = &sched;
  const RunResult r = run_trace(tr, mgr, rc);
  EXPECT_EQ(r.tasks, tr.num_tasks());
  std::string err;
  EXPECT_TRUE(testing::validate_schedule(tr, sched, &err)) << err;
}

INSTANTIATE_TEST_SUITE_P(Workloads, NexusPPWorkloadTest,
                         ::testing::Values("gaussian-120", "h264-8x8", "sc-small"),
                         [](const ::testing::TestParamInfo<std::string>& pi) {
                           std::string n = pi.param;
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST(NexusPP, BetweenIdealAndSerialOnCoarseTasks) {
  // On coarse tasks (h264 8x8: ~190us) the manager overhead hides behind
  // execution: makespan lies between ideal and fully serial.
  const Trace tr = workloads::make_h264dec(workloads::h264_config(8));
  IdealManager ideal;
  NexusPP npp;
  const Tick t_ideal = run_trace(tr, ideal, RuntimeConfig{.workers = 16}).makespan;
  const Tick t_npp = run_trace(tr, npp, RuntimeConfig{.workers = 16}).makespan;
  EXPECT_GE(t_npp, t_ideal);
  EXPECT_LT(t_npp, tr.total_work());
}

TEST(NexusPP, ManagerBoundOnUltraFineTasks) {
  // gaussian-120 tasks average tens of nanoseconds — far below the
  // manager's per-task pipeline occupancy, so hardware management costs
  // dominate and the run is slower than 1-core no-overhead execution.
  // This is the regime Fig. 9's small matrices probe.
  const Trace tr = workloads::make_gaussian({.n = 120});
  NexusPP npp;
  const Tick t_npp = run_trace(tr, npp, RuntimeConfig{.workers = 16}).makespan;
  EXPECT_GT(t_npp, tr.total_work());
}

TEST(NexusPP, DeterministicAcrossRuns) {
  const Trace tr = workloads::make_gaussian({.n = 80});
  NexusPP a;
  NexusPP b;
  EXPECT_EQ(run_trace(tr, a, RuntimeConfig{.workers = 8}).makespan,
            run_trace(tr, b, RuntimeConfig{.workers = 8}).makespan);
}

}  // namespace
}  // namespace nexus
