// Telemetry subsystem tests: counter/gauge/histogram semantics (pow2 bucket
// edges including 0 and uint64 max), registry path rules and collisions,
// JSON/CSV golden output, snapshot determinism across identical runs, and
// the per-core busy/idle ledger the runtime writes.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "nexus/harness/experiment.hpp"
#include "nexus/nexussharp/nexussharp.hpp"
#include "nexus/runtime/simulation_driver.hpp"
#include "nexus/sim/latency_fifo.hpp"
#include "nexus/telemetry/registry.hpp"
#include "nexus/telemetry/writers.hpp"
#include "nexus/workloads/workloads.hpp"

namespace nexus {
namespace {

using telemetry::Counter;
using telemetry::Gauge;
using telemetry::Histogram;
using telemetry::MetricRegistry;
using telemetry::Snapshot;

// ---------- primitives ----------

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.set(-7);
  g.add(10);
  EXPECT_EQ(g.value(), 3);
}

TEST(Histogram, Pow2BucketEdges) {
  // Bucket 0 is exact zeros; bucket i covers [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(7), 3u);
  EXPECT_EQ(Histogram::bucket_of(8), 4u);
  EXPECT_EQ(Histogram::bucket_of((std::uint64_t{1} << 63) - 1), 63u);
  EXPECT_EQ(Histogram::bucket_of(std::uint64_t{1} << 63), 64u);
  EXPECT_EQ(Histogram::bucket_of(UINT64_MAX), 64u);
  static_assert(Histogram::kBuckets == 65);

  EXPECT_EQ(Histogram::bucket_floor(0), 0u);
  EXPECT_EQ(Histogram::bucket_floor(1), 1u);
  EXPECT_EQ(Histogram::bucket_floor(2), 2u);
  EXPECT_EQ(Histogram::bucket_floor(3), 4u);
  EXPECT_EQ(Histogram::bucket_floor(64), std::uint64_t{1} << 63);
}

TEST(Histogram, RecordsCountSumMinMaxMean) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  h.record(0);
  h.record(3);
  h.record(9);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 12u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 9u);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
  EXPECT_EQ(h.bucket(0), 1u);  // 0
  EXPECT_EQ(h.bucket(2), 1u);  // 3 in [2,4)
  EXPECT_EQ(h.bucket(4), 1u);  // 9 in [8,16)
}

TEST(Histogram, FullRangeIncludingMax) {
  Histogram h;
  h.record(UINT64_MAX);
  h.record(0);
  EXPECT_EQ(h.bucket(64), 1u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), UINT64_MAX);
}

TEST(Histogram, QuantilesEmptyHistogramIsZero) {
  const Histogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);
  EXPECT_DOUBLE_EQ(h.p95(), 0.0);
  EXPECT_DOUBLE_EQ(h.p999(), 0.0);
}

TEST(Histogram, QuantilesSingleValueReportExactly) {
  // All mass in one bucket: min/max clipping collapses the interpolation
  // range to the recorded value, whatever q asks for.
  Histogram h;
  for (int i = 0; i < 10; ++i) h.record(100);
  EXPECT_DOUBLE_EQ(h.p50(), 100.0);
  EXPECT_DOUBLE_EQ(h.p95(), 100.0);
  EXPECT_DOUBLE_EQ(h.p99(), 100.0);
  EXPECT_DOUBLE_EQ(h.p999(), 100.0);
}

TEST(Histogram, QuantilesAllZerosStayZero) {
  // Bucket 0 holds exact zeros; no interpolation may invent mass above it.
  Histogram h;
  for (int i = 0; i < 5; ++i) h.record(0);
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);
  EXPECT_DOUBLE_EQ(h.p999(), 0.0);
}

TEST(Histogram, QuantilesInterpolateWithinBucketAndOrder) {
  Histogram h;
  // 100 samples spread over [16, 32) — one bucket; quantiles interpolate
  // linearly between the clipped edges and stay monotone in q.
  for (std::uint64_t v = 16; v < 32; ++v)
    for (int i = 0; i < 100 / 16 + 1; ++i) h.record(v);
  const double p50 = h.p50();
  const double p95 = h.p95();
  const double p99 = h.p99();
  EXPECT_GE(p50, 16.0);
  EXPECT_LE(p99, 31.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.p999());
}

TEST(Histogram, QuantilesMaxBucketClipsToRecordedMax) {
  // Samples in the open-topped final bucket [2^63, 2^64): the bucket's
  // nominal upper edge exceeds any representable sample, so the recorded
  // max must cap the interpolation.
  Histogram h;
  h.record(std::uint64_t{1} << 63);
  h.record(UINT64_MAX);
  EXPECT_GE(h.p50(), static_cast<double>(std::uint64_t{1} << 63));
  EXPECT_LE(h.p999(), static_cast<double>(UINT64_MAX));
  EXPECT_DOUBLE_EQ(h.quantile(1.0), static_cast<double>(UINT64_MAX));
}

TEST(Histogram, QuantilesTwoBucketSplit) {
  // 3 zeros + 1 large value: p50 must sit in the zero bucket, p95
  // interpolates inside the top bucket's clipped range [512, 1000].
  Histogram h;
  h.record(0);
  h.record(0);
  h.record(0);
  h.record(1000);
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);
  EXPECT_GT(h.p95(), 512.0);
  EXPECT_LE(h.p95(), 1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
}

// ---------- registry ----------

TEST(MetricRegistryTest, SamePathSameKindReturnsSameObject) {
  MetricRegistry reg;
  Counter& a = reg.counter("hw/pool/inserts");
  Counter& b = reg.counter("hw/pool/inserts");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricRegistryTest, AddressesStayStableAsRegistryGrows) {
  MetricRegistry reg;
  Counter& first = reg.counter("m0");
  for (int i = 1; i < 200; ++i)
    reg.counter("m" + std::to_string(i)).inc();
  first.inc(7);
  EXPECT_EQ(reg.counter("m0").value(), 7u);
  EXPECT_EQ(reg.size(), 200u);
}

TEST(MetricRegistryDeathTest, PathCollisionAcrossKindsAborts) {
  MetricRegistry reg;
  reg.counter("x/y");
  EXPECT_DEATH(reg.gauge("x/y"), "different kind");
  EXPECT_DEATH(reg.histogram("x/y"), "different kind");
}

TEST(MetricRegistryDeathTest, RejectsMalformedPaths) {
  MetricRegistry reg;
  EXPECT_DEATH(reg.counter(""), "non-empty");
  EXPECT_DEATH(reg.counter("/x"), "start or end");
  EXPECT_DEATH(reg.counter("x/"), "start or end");
}

TEST(MetricRegistryTest, PathJoin) {
  EXPECT_EQ(telemetry::path_join("a", "b"), "a/b");
  EXPECT_EQ(telemetry::path_join("", "b"), "b");
  EXPECT_EQ(telemetry::path_join("a", ""), "a");
}

TEST(MetricRegistryTest, SnapshotIsSortedAndSelfContained) {
  MetricRegistry reg;
  reg.counter("z").inc(1);
  reg.gauge("a").set(-3);
  reg.histogram("m").record(5);
  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.values.size(), 3u);
  EXPECT_EQ(snap.values[0].path, "a");
  EXPECT_EQ(snap.values[1].path, "m");
  EXPECT_EQ(snap.values[2].path, "z");
  EXPECT_EQ(snap.counter_at("z"), 1u);
  EXPECT_EQ(snap.gauge_at("a"), -3);
  ASSERT_NE(snap.find("m"), nullptr);
  EXPECT_EQ(snap.find("m")->hist.sum, 5u);
  EXPECT_EQ(snap.find("missing"), nullptr);
}

// ---------- writers ----------

TEST(JsonWriterTest, BuildsNestedDocumentsWithEscaping) {
  telemetry::JsonWriter w;
  w.begin_object()
      .key("a\"b")
      .value("x\ny")
      .key("arr")
      .begin_array()
      .value(1)
      .value(true)
      .value(2.5)
      .end_array()
      .kv("n", std::int64_t{-4})
      .end_object();
  EXPECT_EQ(w.str(), "{\"a\\\"b\":\"x\\ny\",\"arr\":[1,true,2.5],\"n\":-4}");
}

TEST(CsvWriterTest, EscapesCellsWithSeparators) {
  telemetry::CsvWriter w({"a", "b"});
  w.row({"plain", "has,comma"});
  w.row({"has\"quote", "x"});
  EXPECT_EQ(w.str(), "a,b\nplain,\"has,comma\"\n\"has\"\"quote\",x\n");
}

TEST(SnapshotExport, JsonGolden) {
  MetricRegistry reg;
  reg.counter("a/count").inc(3);
  reg.gauge("a/gauge").set(-7);
  Histogram& h = reg.histogram("b/hist");
  h.record(0);
  h.record(1);
  h.record(5);
  EXPECT_EQ(telemetry::snapshot_json(reg.snapshot()),
            "{\"a/count\":3,\"a/gauge\":-7,\"b/hist\":{\"count\":3,\"sum\":6,"
            "\"min\":0,\"max\":5,\"mean\":2,\"p50\":1.5,\"p95\":4.85,"
            "\"p99\":4.97,\"p999\":4.997,\"buckets\":{\"0\":1,\"1\":1,"
            "\"4\":1}}}");
}

TEST(SnapshotExport, CsvGolden) {
  MetricRegistry reg;
  reg.counter("a/count").inc(3);
  reg.gauge("a/gauge").set(-7);
  Histogram& h = reg.histogram("b/hist");
  h.record(0);
  h.record(1);
  h.record(5);
  EXPECT_EQ(telemetry::snapshot_csv(reg.snapshot()),
            "path,kind,value,count,sum,min,max,mean\n"
            "a/count,counter,3,,,,,\n"
            "a/gauge,gauge,-7,,,,,\n"
            "b/hist,histogram,,3,6,0,5,2\n");
}

TEST(SnapshotExport, TreeRendersHierarchy) {
  MetricRegistry reg;
  reg.counter("top/left/c").inc(1);
  reg.counter("top/right").inc(2);
  const std::string tree = telemetry::format_tree(reg.snapshot());
  EXPECT_NE(tree.find("top\n"), std::string::npos);
  EXPECT_NE(tree.find("  left\n"), std::string::npos);
  EXPECT_NE(tree.find("    c"), std::string::npos);
  EXPECT_NE(tree.find("  right"), std::string::npos);
}

TEST(MetricsReportJson, MatchesBenchSchema) {
  MetricRegistry reg;
  reg.counter("m").inc(9);
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(harness::metrics_report_json("table2", "c-ray", "nexus#", 32,
                                         1234, 1.5, &snap),
            "{\"schema\":4,\"bench\":\"table2\",\"workload\":\"c-ray\","
            "\"manager\":\"nexus#\",\"cores\":32,\"makespan\":1234,"
            "\"speedup\":1.5,\"metrics\":{\"m\":9}}");
  EXPECT_EQ(harness::metrics_report_json("b", "w", "m", 1, 0, 0.0, nullptr),
            "{\"schema\":4,\"bench\":\"b\",\"workload\":\"w\",\"manager\":"
            "\"m\",\"cores\":1,\"makespan\":0,\"speedup\":0,\"metrics\":{}}");
}

TEST(MetricsReportJson, AppendsTimelineWhenGiven) {
  telemetry::Timeline tl;
  tl.interval = 10;
  tl.t = {0, 10, 20};
  tl.series.push_back({"m", telemetry::MetricKind::kCounter, {0, 4, 9}});
  const std::string doc =
      harness::metrics_report_json("b", "w", "m", 1, 20, 1.0, nullptr, &tl);
  EXPECT_NE(doc.find("\"timeline\":{\"interval_ps\":10,\"points\":3,"
                     "\"encoding\":\"delta\",\"t\":[0,10,10],\"series\":"
                     "{\"m\":{\"kind\":\"counter\",\"v\":[0,4,5]}}}"),
            std::string::npos)
      << doc;
}

// ---------- sim-layer hooks ----------

TEST(LatencyFifoTelemetry, RecordsDepthOnPushAndPop) {
  Histogram depth;
  LatencyFifo<int> f(4, ns(30));
  f.bind_depth_telemetry(&depth);
  f.push(0, 1);
  f.push(0, 2);
  (void)f.pop();
  f.push(ns(100), 3);
  // Depths seen: push->1, push->2, pop->1, push->2. Recording the drain
  // side too is what lets the histogram show a queue emptying, not only
  // filling.
  EXPECT_EQ(depth.count(), 4u);
  EXPECT_EQ(depth.max(), 2u);
  EXPECT_EQ(depth.sum(), 6u);
  (void)f.pop();
  (void)f.pop();
  EXPECT_EQ(depth.count(), 6u);
  EXPECT_EQ(depth.sum(), 7u);  // drain records depths 1 then 0
}

// ---------- whole-stack integration ----------

Trace small_gaussian() { return workloads::make_gaussian({.n = 60}); }

TEST(TelemetryIntegration, SnapshotDeterministicAcrossIdenticalRuns) {
  const Trace tr = small_gaussian();
  std::string json[2];
  for (int i = 0; i < 2; ++i) {
    MetricRegistry reg;
    NexusSharpConfig cfg;
    cfg.num_task_graphs = 4;
    cfg.freq_mhz = 100.0;
    NexusSharp mgr(cfg);
    RuntimeConfig rc;
    rc.workers = 8;
    rc.metrics = &reg;
    (void)run_trace(tr, mgr, rc);
    json[i] = telemetry::snapshot_json(reg.snapshot());
  }
  EXPECT_EQ(json[0], json[1]);
  EXPECT_GT(json[0].size(), 100u);
}

TEST(TelemetryIntegration, RuntimeLedgerReconciles) {
  // Acceptance contract: sum over cores of (busy + idle) == cores * makespan,
  // and the DES event counter agrees with the kernel's own count.
  const Trace tr = small_gaussian();
  MetricRegistry reg;
  NexusSharpConfig cfg;
  cfg.num_task_graphs = 4;
  cfg.freq_mhz = 100.0;
  NexusSharp mgr(cfg);
  RuntimeConfig rc;
  rc.workers = 8;
  rc.metrics = &reg;
  const RunResult r = run_trace(tr, mgr, rc);
  const Snapshot snap = reg.snapshot();

  EXPECT_EQ(snap.gauge_at("runtime/makespan_ps"), r.makespan);
  EXPECT_EQ(snap.gauge_at("runtime/cores"), 8);
  std::int64_t busy_plus_idle = 0;
  for (int w = 0; w < 8; ++w) {
    const std::string core = "runtime/core" + std::to_string(w);
    const std::int64_t busy = snap.gauge_at(core + "/busy_ps");
    const std::int64_t idle = snap.gauge_at(core + "/idle_ps");
    EXPECT_EQ(busy + idle, r.makespan) << "core " << w;
    busy_plus_idle += busy + idle;
  }
  EXPECT_EQ(busy_plus_idle, 8 * r.makespan);
  EXPECT_EQ(snap.counter_at("sim/events"), r.events);
  EXPECT_EQ(snap.counter_at("nexus#/tasks_in"), r.tasks);
  EXPECT_EQ(snap.counter_at("nexus#/finishes"), r.tasks);
}

TEST(TelemetryIntegration, RoutingBalanceCoversEveryGraph) {
  const Trace tr = workloads::make_h264dec(workloads::h264_config(8));
  MetricRegistry reg;
  NexusSharpConfig cfg;
  cfg.num_task_graphs = 6;
  cfg.freq_mhz = 100.0;
  NexusSharp mgr(cfg);
  RuntimeConfig rc;
  rc.workers = 8;
  rc.metrics = &reg;
  (void)run_trace(tr, mgr, rc);
  const Snapshot snap = reg.snapshot();
  std::uint64_t routed = 0;
  for (int g = 0; g < 6; ++g) {
    const std::uint64_t n =
        snap.counter_at("nexus#/tg" + std::to_string(g) + "/routed");
    EXPECT_GT(n, 0u) << "graph " << g << " never routed to";
    routed += n;
  }
  // Every parameter is routed once on submission and once on finish.
  std::uint64_t total_params = 0;
  for (const auto& t : tr.tasks()) total_params += t.num_params();
  EXPECT_EQ(routed, 2 * total_params);
}

TEST(TelemetryIntegration, SweepAttachesSnapshotsOnRequest) {
  const Trace tr = small_gaussian();
  const auto spec = harness::ManagerSpec::nexussharp(2, 100.0);
  const Tick baseline = harness::ideal_baseline(tr);
  const harness::Series plain =
      harness::sweep(tr, spec, {1, 4}, baseline);
  for (const auto& p : plain.points) EXPECT_EQ(p.metrics, nullptr);
  const harness::Series metered =
      harness::sweep(tr, spec, {1, 4}, baseline, {}, /*collect_metrics=*/true);
  ASSERT_EQ(metered.points.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(metered.points[i].makespan, plain.points[i].makespan)
        << "telemetry must not change simulated time";
    ASSERT_NE(metered.points[i].metrics, nullptr);
    EXPECT_GT(metered.points[i].metrics->counter_at("nexus#/tasks_in"), 0u);
  }
}

}  // namespace
}  // namespace nexus
