// Nexus# model tests: Fig. 4/5 pipeline behaviour, the Section IV-E
// micro-benchmark, distributed-insertion semantics, native taskwait_on,
// stall recovery, and schedule legality across TG counts and workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "nexus/nexuspp/nexuspp.hpp"
#include "nexus/nexussharp/nexussharp.hpp"
#include "nexus/runtime/ideal_manager.hpp"
#include "nexus/runtime/simulation_driver.hpp"
#include "nexus/telemetry/registry.hpp"
#include "nexus/workloads/workloads.hpp"
#include "schedule_checker.hpp"

namespace nexus {
namespace {

constexpr Tick kCycle = 10000;  // 10 ns at 100 MHz (used for timing tests)

NexusSharpConfig cfg_at_100mhz(std::uint32_t tgs) {
  NexusSharpConfig cfg;
  cfg.num_task_graphs = tgs;
  cfg.freq_mhz = 100.0;
  return cfg;
}

ParamList params_n(std::size_t n, Addr base, Dir dir = Dir::kOut) {
  ParamList p;
  for (std::size_t i = 0; i < n; ++i)
    p.push_back({base + 0x40 * static_cast<Addr>(i), dir});
  return p;
}

// Addresses whose XOR-folds land on 4 distinct graphs of a 4-TG config:
// fold(0x20)=1, fold(0x40)=2, fold(0x60)=3, fold(0x80)=4 -> TGs 1,2,3,0.
ParamList four_spread_params() {
  ParamList p;
  p.push_back({0x20, Dir::kOut});
  p.push_back({0x40, Dir::kOut});
  p.push_back({0x60, Dir::kOut});
  p.push_back({0x80, Dir::kOut});
  return p;
}

// ---------- Fig. 4 cycle fidelity ----------

TEST(NexusSharpTiming, FourParamTaskAcrossFourGraphs) {
  // Params arrive at cycles 4/6/8/10 (IPh=2 + 2/param), cross the New Args
  // FIFO (3), insert in parallel (5 each): done 12/14/16/18; records visible
  // 15/17/19/21; gather grants (2 cy, one record per graph per grant) end at
  // 17/19/21/23; conclusion -> fifo (3) -> WB (3): ready at cycle 29.
  Trace tr("t");
  tr.submit(0, us(5), four_spread_params());
  tr.taskwait();
  NexusSharp mgr(cfg_at_100mhz(4));
  const RunResult r = run_trace(tr, mgr, RuntimeConfig{.workers = 1});
  EXPECT_EQ(r.makespan, 29 * kCycle + us(5));
}

TEST(NexusSharpTiming, FourParamTaskOnSingleGraphSerializes) {
  // Same task, 1 TG: inserts serialize (5 cy each back-to-back), records at
  // 15/20/25/30, single-record grants end 17/22/27/32, +3 +3 = 38 cycles —
  // about Nexus++'s 39: one task graph is "most analogous to Nexus++".
  Trace tr("t");
  tr.submit(0, us(5), four_spread_params());
  tr.taskwait();
  NexusSharp mgr(cfg_at_100mhz(1));
  const RunResult r = run_trace(tr, mgr, RuntimeConfig{.workers = 1});
  EXPECT_EQ(r.makespan, 38 * kCycle + us(5));
}

TEST(NexusSharpTiming, InsertionStartsBeforeWholeTaskArrives) {
  // The core Fig. 4 claim: distribution is immediate, so a 6-param task's
  // first parameter is already inserted while later ones are still on the
  // bus, and parameters proceed in parallel across graphs. With 6 graphs
  // the task is ready at cycle 33; a single graph serializes the six
  // insertions and needs 48.
  Trace tr("t");
  tr.submit(0, us(1), params_n(6, 0x40));
  tr.taskwait();
  NexusSharp six(cfg_at_100mhz(6));
  NexusSharp one(cfg_at_100mhz(1));
  const Tick t6 = run_trace(tr, six, RuntimeConfig{.workers = 1}).makespan - us(1);
  const Tick t1 = run_trace(tr, one, RuntimeConfig{.workers = 1}).makespan - us(1);
  EXPECT_EQ(t6, 33 * kCycle);
  EXPECT_EQ(t1, 48 * kCycle);
}

TEST(NexusSharpTiming, SingleParamFastPath) {
  // 1-param task: receive 2+2+1 = 5, fifo 3, insert 5, Rdy buffer 3,
  // arbiter forward 1, fifo 3, WB 3 => ready at cycle 22.
  Trace tr("t");
  tr.submit(0, us(1), params_n(1, 0x40));
  tr.taskwait();
  NexusSharp mgr(cfg_at_100mhz(4));
  const RunResult r = run_trace(tr, mgr, RuntimeConfig{.workers = 1});
  EXPECT_EQ(r.makespan, 22 * kCycle + us(1));
}

TEST(NexusSharpTiming, BestCaseWriteBackEveryFiveCycles) {
  // Fig. 5's steady state: with the front end pacing at 5 cycles per
  // 1-param task (2 header + 2 addr + 1 pool write), independent tasks
  // reach write-back 5 cycles apart.
  Trace tr("t");
  constexpr int kTasks = 8;
  for (int i = 0; i < kTasks; ++i)
    tr.submit(0, us(5), params_n(1, 0x1000 + 0x40 * static_cast<Addr>(i)));
  tr.taskwait();
  NexusSharp mgr(cfg_at_100mhz(4));
  const RunResult r = run_trace(tr, mgr, RuntimeConfig{.workers = kTasks});
  // First ready at 22; each subsequent 5 cycles later; all run 5us parallel.
  EXPECT_EQ(r.makespan, (22 + 5 * (kTasks - 1)) * kCycle + us(5));
}

TEST(NexusSharpTiming, FrequencyScalesHardwareLatency) {
  Trace tr("t");
  tr.submit(0, us(5), four_spread_params());
  tr.taskwait();
  NexusSharpConfig cfg = cfg_at_100mhz(4);
  cfg.freq_mhz = 50.0;
  NexusSharp mgr(cfg);
  const RunResult r = run_trace(tr, mgr, RuntimeConfig{.workers = 1});
  EXPECT_EQ(r.makespan, 29 * 2 * kCycle + us(5));
}

// ---------- Section IV-E micro-benchmark ----------

TEST(NexusSharpTiming, MicroFiveTasksTwoParams) {
  // "Using a micro benchmark built after [19] that includes inserting 5
  // independent tasks, each with two parameters, Nexus# (with one task
  // graph) consumes 78 cycles compared to 172 cycles consumed in [19]."
  // Our model measures 68 cycles end-to-end (submission of the first packet
  // to the last ready write-back): the same order, ~13% below the paper's
  // VHDL count (see EXPERIMENTS.md). Pin the value as a regression anchor
  // and keep it decisively under Task Superscalar's 172.
  Trace tr("t");
  for (int i = 0; i < 5; ++i)
    tr.submit(0, us(1), params_n(2, 0x1000 + 0x100 * static_cast<Addr>(i)));
  tr.taskwait();
  NexusSharp mgr(cfg_at_100mhz(1));
  const RunResult r = run_trace(tr, mgr, RuntimeConfig{.workers = 5});
  const Tick hw_cycles = (r.makespan - us(1)) / kCycle;
  EXPECT_EQ(hw_cycles, 68);
  EXPECT_LT(hw_cycles, 172);
}

// ---------- structural behaviour ----------

TEST(NexusSharp, SupportsTaskwaitOnNatively) {
  NexusSharp mgr(cfg_at_100mhz(4));
  EXPECT_TRUE(mgr.supports_taskwait_on());
  EXPECT_EQ(mgr.taskwait_on_query_cost(), 5 * kCycle);
}

TEST(NexusSharp, TaskwaitOnOverlapsUnlikeNexusPP) {
  // The h264dec-defining difference: waiting on one datum's producer lets
  // the master continue while unrelated slow tasks still run.
  Trace tr("t");
  tr.submit(0, us(100), params_n(1, 0xA00));
  tr.submit(0, us(1), params_n(1, 0xB00));
  tr.taskwait_on(0xB00);
  tr.submit(0, us(50), params_n(1, 0xC00));
  tr.taskwait();
  NexusSharp sharp(cfg_at_100mhz(4));
  NexusPP npp;
  const Tick t_sharp = run_trace(tr, sharp, RuntimeConfig{.workers = 4}).makespan;
  const Tick t_npp = run_trace(tr, npp, RuntimeConfig{.workers = 4}).makespan;
  EXPECT_LT(t_sharp, us(110));  // t2 overlaps the slow writer
  EXPECT_GT(t_npp, us(150));    // the fallback barrier serializes
}

TEST(NexusSharp, PoolBackpressureBlocksMaster) {
  NexusSharpConfig cfg = cfg_at_100mhz(2);
  cfg.pool_capacity = 2;
  NexusSharp mgr(cfg);
  Trace tr("t");
  for (int i = 0; i < 6; ++i)
    tr.submit(0, us(10), params_n(1, 0x1000 + 0x400 * static_cast<Addr>(i)));
  tr.taskwait();
  const RunResult r = run_trace(tr, mgr, RuntimeConfig{.workers = 1});
  EXPECT_EQ(mgr.stats().pool_peak, 2u);
  EXPECT_EQ(mgr.stats().tasks_in, 6u);
  EXPECT_GE(r.makespan, us(60));
}

TEST(NexusSharp, DependentTaskKickedAfterFinish) {
  Trace tr("t");
  tr.submit(0, us(10), params_n(1, 0x1000));
  {
    ParamList p;
    p.push_back({0x1000, Dir::kIn});
    tr.submit(0, us(1), p);
  }
  tr.taskwait();
  NexusSharp mgr(cfg_at_100mhz(4));
  const RunResult r = run_trace(tr, mgr, RuntimeConfig{.workers = 2});
  // t1 waits for t0 and a finish-path trip; makespan comfortably above
  // t0_end + t1 but below adding a whole second pipeline latency.
  EXPECT_GT(r.makespan, us(11));
  EXPECT_LT(r.makespan, us(12));
}

TEST(NexusSharp, GaussianFanoutDrainsCleanly) {
  // 249 readers kicked at once (Section VI): chained kick-off lists feed
  // the Waiting Tasks path; everything must drain with no gather leaks.
  const Trace tr = workloads::make_gaussian({.n = 250});
  NexusSharp mgr(cfg_at_100mhz(2));
  const RunResult r = run_trace(tr, mgr, RuntimeConfig{.workers = 16});
  EXPECT_EQ(r.tasks, 31374u);
  EXPECT_EQ(mgr.stats().ready_out, 31374u);
  EXPECT_EQ(mgr.stats().sim_tasks_live, 0u);
}

TEST(NexusSharp, TableStallRecovery) {
  NexusSharpConfig cfg = cfg_at_100mhz(2);
  cfg.table.sets = 8;
  cfg.table.ways = 2;
  cfg.table.kol_entries = 2;
  cfg.table.chain_probe_limit = 4;
  cfg.pool_capacity = 64;
  NexusSharp mgr(cfg);
  Trace tr("t");
  for (int i = 0; i < 40; ++i)
    tr.submit(0, us(500), params_n(1, 0x1000 + 0x40 * static_cast<Addr>(i)));
  tr.taskwait();
  std::vector<ScheduleEntry> sched;
  RuntimeConfig rc;
  rc.workers = 1;
  rc.schedule_out = &sched;
  (void)run_trace(tr, mgr, rc);
  EXPECT_GT(mgr.stats().table_stalls, 0u);
  std::string err;
  EXPECT_TRUE(testing::validate_schedule(tr, sched, &err)) << err;
}

TEST(NexusSharp, WorkSpreadsAcrossGraphs) {
  // On h264 (hundreds of distinct addresses) every graph must see work.
  const Trace tr = workloads::make_h264dec(workloads::h264_config(8));
  NexusSharp mgr(cfg_at_100mhz(6));
  (void)run_trace(tr, mgr, RuntimeConfig{.workers = 8});
  const auto s = mgr.stats();
  for (std::uint32_t g = 0; g < 6; ++g)
    EXPECT_GT(s.tg_args[g], 0u) << "task graph " << g << " idle";
}

TEST(NexusSharp, ArbiterSeesContentionUnderLoad) {
  // With 31k tasks racing through 2 graphs the single-grant arbiter port
  // must regularly find more than one buffer class pending (conflicts) and
  // defer pumps on a busy port (retries); the per-TGU New Args queues must
  // actually queue. This is the visibility the telemetry layer exists for.
  const Trace tr = workloads::make_gaussian({.n = 120});
  telemetry::MetricRegistry reg;
  NexusSharp mgr(cfg_at_100mhz(2));
  RuntimeConfig rc;
  rc.workers = 16;
  rc.metrics = &reg;
  (void)run_trace(tr, mgr, rc);
  const telemetry::Snapshot snap = reg.snapshot();
  EXPECT_GT(snap.counter_at("nexus#/arbiter/conflicts"), 0u);
  EXPECT_GT(snap.counter_at("nexus#/arbiter/retries"), 0u);
  EXPECT_GT(snap.counter_at("nexus#/arbiter/grants_dep"), 0u);
  EXPECT_GT(snap.counter_at("nexus#/arbiter/grants_wait"), 0u);
  for (int g = 0; g < 2; ++g) {
    const std::string tg = "nexus#/tg" + std::to_string(g);
    const telemetry::MetricValue* depth = snap.find(tg + "/new_q_depth");
    ASSERT_NE(depth, nullptr);
    EXPECT_GT(depth->hist.count, 0u);
    EXPECT_GT(depth->hist.max, 1u) << "graph " << g << " never queued";
  }
}

TEST(NexusSharp, TelemetryDoesNotPerturbTiming) {
  // Attaching a registry must observe, never alter: identical makespans
  // with and without metrics.
  const Trace tr = workloads::make_gaussian({.n = 120});
  NexusSharp plain(cfg_at_100mhz(2));
  const Tick t_plain = run_trace(tr, plain, RuntimeConfig{.workers = 16}).makespan;
  telemetry::MetricRegistry reg;
  NexusSharp metered(cfg_at_100mhz(2));
  RuntimeConfig rc;
  rc.workers = 16;
  rc.metrics = &reg;
  const Tick t_metered = run_trace(tr, metered, rc).makespan;
  EXPECT_EQ(t_plain, t_metered);
}

TEST(NexusSharp, RejectsRoundRobinDistribution) {
  NexusSharpConfig cfg = cfg_at_100mhz(4);
  cfg.distribution = hw::DistributionPolicy::kRoundRobin;
  EXPECT_DEATH(NexusSharp{cfg}, "affinity");
}

// ---------- schedule legality across TG counts and workloads ----------

struct SharpCase {
  std::uint32_t tgs;
  std::string workload;
};

class NexusSharpWorkloadTest : public ::testing::TestWithParam<SharpCase> {};

TEST_P(NexusSharpWorkloadTest, ScheduleIsLegalAndDrains) {
  const auto& pc = GetParam();
  Trace tr;
  if (pc.workload == "gaussian-120") {
    tr = workloads::make_gaussian({.n = 120});
  } else if (pc.workload == "h264-8x8") {
    tr = workloads::make_h264dec(workloads::h264_config(8));
  } else if (pc.workload == "sc-small") {
    workloads::StreamclusterConfig cfg;
    cfg.total_tasks = 3000;
    cfg.phases = 8;
    cfg.total_work = ms(30);
    tr = workloads::make_streamcluster(cfg);
  } else {  // "mixed": rot-cc-like pair chains
    workloads::RotccConfig cfg;
    cfg.lines = 500;
    cfg.total_work = ms(5);
    tr = workloads::make_rotcc(cfg);
  }
  NexusSharp mgr(cfg_at_100mhz(pc.tgs));
  std::vector<ScheduleEntry> sched;
  RuntimeConfig rc;
  rc.workers = 16;
  rc.schedule_out = &sched;
  const RunResult r = run_trace(tr, mgr, rc);
  EXPECT_EQ(r.tasks, tr.num_tasks());
  EXPECT_EQ(mgr.stats().ready_out, tr.num_tasks());
  EXPECT_EQ(mgr.stats().sim_tasks_live, 0u);
  std::string err;
  EXPECT_TRUE(testing::validate_schedule(tr, sched, &err)) << err;
}

INSTANTIATE_TEST_SUITE_P(
    TgByWorkload, NexusSharpWorkloadTest,
    ::testing::Values(SharpCase{1, "gaussian-120"}, SharpCase{2, "gaussian-120"},
                      SharpCase{6, "gaussian-120"}, SharpCase{8, "gaussian-120"},
                      SharpCase{1, "h264-8x8"}, SharpCase{2, "h264-8x8"},
                      SharpCase{4, "h264-8x8"}, SharpCase{6, "h264-8x8"},
                      SharpCase{8, "h264-8x8"}, SharpCase{6, "sc-small"},
                      SharpCase{2, "mixed"}, SharpCase{6, "mixed"}),
    [](const ::testing::TestParamInfo<SharpCase>& pi) {
      std::string n = "tg" + std::to_string(pi.param.tgs) + "_" + pi.param.workload;
      for (auto& c : n)
        if (c == '-') c = '_';
      return n;
    });

// ---------- arbiter record reordering (kMeta over the NoC) ----------

/// Captures every write-back the arbiter delivers, directly as a host.
struct RecordingHost final : RuntimeHost {
  std::vector<TaskId> ready;
  void task_ready(Simulation&, TaskId id) override { ready.push_back(id); }
  void master_resume(Simulation&) override {}
};

/// Drive a bare SharpArbiter with an explicit event schedule: each entry is
/// (time-in-cycles, op, a, b). Returns the committed (write-back) task set.
std::vector<TaskId> run_arbiter_schedule(
    const NexusSharpConfig& cfg,
    const std::vector<std::tuple<std::int64_t, std::uint32_t, std::uint64_t,
                                 std::uint64_t>>& events,
    std::uint64_t* meta_parks = nullptr) {
  noc::Network net(cfg.noc, sharp_noc_endpoints(cfg.num_task_graphs),
                   cfg.freq_mhz, 0);
  detail::SharpArbiter arb(cfg, ArbiterPolicy::kReadyFirst, &net);
  Simulation sim;
  RecordingHost host;
  arb.attach(sim, &host);
  net.attach(sim);
  for (const auto& [cycle, op, a, b] : events)
    sim.schedule(static_cast<Tick>(cycle) * kCycle, arb.component_id(), op, a,
                 b);
  sim.run();
  EXPECT_EQ(arb.sim_tasks_live(), 0u) << "gather state must drain";
  if (meta_parks != nullptr) *meta_parks = arb.meta_parks();
  return host.ready;
}

/// Pack (task, value<<32): kMeta's nparams and kDep's contributes share the
/// encoding.
std::uint64_t meta_rec(TaskId id, std::uint32_t value) {
  return static_cast<std::uint64_t>(id) |
         (static_cast<std::uint64_t>(value) << 32);
}

TEST(NexusSharpArbiter, MetaAfterReadyParksThenCommitsIdentically) {
  // A single-param ready task, in order (meta first) and adversarially
  // reordered (ready first): both schedules must commit exactly task 7,
  // and the reordered one must have parked the ready record.
  const NexusSharpConfig cfg = cfg_at_100mhz(2);
  using detail::SharpArbiter;
  std::uint64_t parks = 0;
  const std::vector<TaskId> in_order = run_arbiter_schedule(
      cfg, {{0, SharpArbiter::kMeta, meta_rec(7, 1), 0},
            {1, SharpArbiter::kReady, 7, 0}});
  const std::vector<TaskId> reordered = run_arbiter_schedule(
      cfg, {{0, SharpArbiter::kReady, 7, 0},
            {1, SharpArbiter::kMeta, meta_rec(7, 1), 0}},
      &parks);
  EXPECT_EQ(in_order, (std::vector<TaskId>{7}));
  EXPECT_EQ(reordered, in_order) << "commit set must not depend on order";
  EXPECT_EQ(parks, 1u);
}

TEST(NexusSharpArbiter, MetaAfterDepsAndKickCommitsIdentically) {
  // A two-param task whose blocking dependence is kicked before the
  // descriptor even lands: dep records from both graphs, then the kick,
  // then kMeta dead last. The gather must absorb the kick (pending_dec)
  // and conclude the task ready — the same commit set as the in-order
  // schedule.
  const NexusSharpConfig cfg = cfg_at_100mhz(2);
  using detail::SharpArbiter;
  const std::vector<TaskId> in_order = run_arbiter_schedule(
      cfg, {{0, SharpArbiter::kMeta, meta_rec(3, 2), 0},
            {1, SharpArbiter::kDep, meta_rec(3, 1), 0},  // blocking param
            {2, SharpArbiter::kDep, meta_rec(3, 0), 1},  // free param
            {3, SharpArbiter::kWait, 3, 0}});
  const std::vector<TaskId> reordered = run_arbiter_schedule(
      cfg, {{0, SharpArbiter::kDep, meta_rec(3, 1), 0},
            {1, SharpArbiter::kDep, meta_rec(3, 0), 1},
            {2, SharpArbiter::kWait, 3, 0},
            {3, SharpArbiter::kMeta, meta_rec(3, 2), 0}});
  EXPECT_EQ(in_order, (std::vector<TaskId>{3}));
  EXPECT_EQ(reordered, in_order);
}

TEST(NexusSharpArbiter, InterleavedTasksReorderedCommitTheSameSet) {
  // Several tasks with interleaved, adversarially shuffled record streams:
  // a parked ready (task 10), a late meta behind a full gather (task 11,
  // stays blocked -> parked in dep counts), and a normal in-order task 12.
  const NexusSharpConfig cfg = cfg_at_100mhz(2);
  using detail::SharpArbiter;
  std::uint64_t parks = 0;
  const std::vector<TaskId> committed = run_arbiter_schedule(
      cfg, {{0, SharpArbiter::kReady, 10, 0},
            {0, SharpArbiter::kDep, meta_rec(11, 1), 0},
            {1, SharpArbiter::kMeta, meta_rec(12, 1), 0},
            {1, SharpArbiter::kDep, meta_rec(11, 0), 1},
            {2, SharpArbiter::kMeta, meta_rec(11, 2), 0},  // concludes: blocked
            {3, SharpArbiter::kReady, 12, 0},
            {4, SharpArbiter::kMeta, meta_rec(10, 1), 0},  // releases the park
            {5, SharpArbiter::kWait, 11, 0}},              // kicks 11 ready
      &parks);
  std::vector<TaskId> sorted = committed;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<TaskId>{10, 11, 12}));
  EXPECT_EQ(parks, 1u);
}

TEST(NexusSharp, TorusMetaOverNocKeepsSchedulesLegal) {
  // Whole-stack version of the reordering contract: on a torus the kMeta
  // descriptor is routed traffic and really can land after ready records.
  // The run must still execute every task exactly once, produce a
  // hazard-legal schedule, and commit the same task set as the in-order
  // (ideal side-band) baseline.
  const Trace tr = workloads::make_h264dec(workloads::h264_config(8));
  NexusSharpConfig cfg = cfg_at_100mhz(6);
  cfg.noc.kind = noc::TopologyKind::kTorus;
  NexusSharp mgr(cfg);
  std::vector<ScheduleEntry> sched;
  RuntimeConfig rc;
  rc.workers = 32;
  rc.schedule_out = &sched;
  const RunResult r = run_trace(tr, mgr, rc);
  EXPECT_EQ(r.tasks, tr.num_tasks());
  ASSERT_EQ(sched.size(), tr.num_tasks());
  std::string error;
  EXPECT_TRUE(testing::validate_schedule(tr, sched, &error)) << error;
  const NexusSharp::Stats s = mgr.stats();
  EXPECT_EQ(s.sim_tasks_live, 0u);
  EXPECT_EQ(s.ready_out, tr.num_tasks());
}

TEST(NexusSharp, DeterministicAcrossRuns) {
  const Trace tr = workloads::make_h264dec(workloads::h264_config(8));
  NexusSharp a(cfg_at_100mhz(6));
  NexusSharp b(cfg_at_100mhz(6));
  EXPECT_EQ(run_trace(tr, a, RuntimeConfig{.workers = 16}).makespan,
            run_trace(tr, b, RuntimeConfig{.workers = 16}).makespan);
}

// ---------- the headline comparison, in miniature ----------

TEST(NexusSharp, BeatsNexusPPOnFineGrainedWavefront) {
  // h264dec-8x8 on many cores: Nexus# (6 TGs) must beat Nexus++ — both the
  // distributed front end and native taskwait_on contribute.
  const Trace tr = workloads::make_h264dec(workloads::h264_config(8));
  NexusSharp sharp(cfg_at_100mhz(6));
  NexusPP npp;
  const Tick t_sharp = run_trace(tr, sharp, RuntimeConfig{.workers = 32}).makespan;
  const Tick t_npp = run_trace(tr, npp, RuntimeConfig{.workers = 32}).makespan;
  EXPECT_LT(t_sharp, t_npp);
}

TEST(NexusSharp, MoreGraphsHelpOnManyCores) {
  // Scalability in TG count (the Fig. 7 axis), on the finest h264 we can
  // run quickly: 6 TGs must not be slower than 1 TG.
  const Trace tr = workloads::make_h264dec(workloads::h264_config(4));
  NexusSharp one(cfg_at_100mhz(1));
  NexusSharp six(cfg_at_100mhz(6));
  const Tick t1 = run_trace(tr, one, RuntimeConfig{.workers = 64}).makespan;
  const Tick t6 = run_trace(tr, six, RuntimeConfig{.workers = 64}).makespan;
  EXPECT_LE(t6, t1);
}

}  // namespace
}  // namespace nexus
