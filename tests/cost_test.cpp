// FPGA cost model: Table I reproduction and interpolation sanity.
#include <gtest/gtest.h>

#include <cmath>

#include "nexus/cost/fpga_model.hpp"

namespace nexus::cost {
namespace {

TEST(FpgaModel, NexusPPRowMatchesTableI) {
  const UtilizationRow r = nexuspp_row();
  EXPECT_DOUBLE_EQ(r.regs_pct, 1.0);
  EXPECT_DOUBLE_EQ(r.luts_pct, 7.0);
  EXPECT_DOUBLE_EQ(r.bram_pct, 14.0);
  EXPECT_DOUBLE_EQ(r.fmax_mhz, 114.44);
  EXPECT_DOUBLE_EQ(r.test_mhz, 100.00);
  EXPECT_TRUE(r.measured);
}

TEST(FpgaModel, MeasuredSharpRowsMatchTableI) {
  struct Expect {
    std::uint32_t tgs;
    double luts, bram, fmax, test;
  };
  const Expect rows[] = {
      {1, 8.0, 13.0, 112.63, 100.00},
      {2, 15.0, 25.0, 112.63, 100.00},
      {4, 29.0, 47.0, 85.26, 83.33},
      {6, 44.0, 69.0, 55.66, 55.56},
  };
  for (const auto& e : rows) {
    const UtilizationRow r = nexussharp_row(e.tgs);
    EXPECT_DOUBLE_EQ(r.luts_pct, e.luts) << e.tgs;
    EXPECT_DOUBLE_EQ(r.bram_pct, e.bram) << e.tgs;
    EXPECT_DOUBLE_EQ(r.fmax_mhz, e.fmax) << e.tgs;
    EXPECT_DOUBLE_EQ(r.test_mhz, e.test) << e.tgs;
    EXPECT_TRUE(r.measured);
  }
}

TEST(FpgaModel, EightTgAbsolutesMatchPaperCounts) {
  // "their design consumes 29,138 registers and 110,729 LUTs respectively,
  // which is comparable to the resources needed by our 8 task graphs design
  // (19,350/127,290 registers/LUTs respectively)".
  const UtilizationRow r = nexussharp_row(8);
  EXPECT_NEAR(static_cast<double>(r.regs_abs()), 19350.0, 50.0);
  EXPECT_NEAR(static_cast<double>(r.luts_abs()), 127290.0, 300.0);
}

TEST(FpgaModel, InterpolatedRowsAreMonotone) {
  // Unlisted counts (3, 5, 7) sit between their measured neighbours.
  for (const std::uint32_t n : {3u, 5u, 7u}) {
    const UtilizationRow lo = nexussharp_row(n - 1);
    const UtilizationRow mid = nexussharp_row(n);
    const UtilizationRow hi = nexussharp_row(n + 1);
    EXPECT_FALSE(mid.measured);
    EXPECT_GE(mid.luts_pct, lo.luts_pct);
    EXPECT_LE(mid.luts_pct, hi.luts_pct);
    EXPECT_GE(mid.bram_pct, lo.bram_pct);
    EXPECT_LE(mid.bram_pct, hi.bram_pct);
    EXPECT_LE(mid.fmax_mhz, lo.fmax_mhz);
    EXPECT_GE(mid.fmax_mhz, hi.fmax_mhz);
    EXPECT_LE(mid.test_mhz, mid.fmax_mhz);
  }
}

TEST(FpgaModel, Table1HasSixRows) {
  const auto rows = table1_rows();
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows[0].config, "Nexus++");
  EXPECT_EQ(rows[5].config, "Nexus# 8 TGs");
}

TEST(FpgaModel, DeviceRunsOutAroundNineGraphs) {
  // The 8-TG design already uses 91% of the block RAMs; the extrapolated
  // 10-TG design cannot fit — the paper stops at 8 for the same reason.
  const std::uint32_t max_tgs = max_feasible_task_graphs();
  EXPECT_GE(max_tgs, 8u);
  EXPECT_LT(max_tgs, 10u);
}

TEST(FpgaModel, ExtrapolatedTestFrequencyIsIntegerPeriod) {
  const UtilizationRow r = nexussharp_row(5);
  const double period_ns = 1000.0 / r.test_mhz;
  EXPECT_NEAR(period_ns, std::round(period_ns), 1e-9);
}

}  // namespace
}  // namespace nexus::cost
