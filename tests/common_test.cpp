#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "nexus/common/bit_ops.hpp"
#include "nexus/common/fixed_ring.hpp"
#include "nexus/common/flags.hpp"
#include "nexus/common/inline_vec.hpp"
#include "nexus/common/rng.hpp"
#include "nexus/common/stats.hpp"
#include "nexus/common/table.hpp"

namespace nexus {
namespace {

// ---------- bit_ops ----------

TEST(BitOps, BitsExtractsInclusiveRange) {
  EXPECT_EQ(bits(0xABCD, 3, 0), 0xDu);
  EXPECT_EQ(bits(0xABCD, 7, 4), 0xCu);
  EXPECT_EQ(bits(0xABCD, 15, 12), 0xAu);
  EXPECT_EQ(bits(~0ULL, 63, 0), ~0ULL);
}

TEST(BitOps, XorFoldMatchesPaperFormula) {
  // addr(19..15) ^ addr(14..10) ^ addr(9..5) ^ addr(4..0)
  const std::uint64_t addr = 0xF5ACAu;  // 1111_0101_1010_1100_1010
  const std::uint64_t expect =
      ((addr >> 15) & 0x1F) ^ ((addr >> 10) & 0x1F) ^ ((addr >> 5) & 0x1F) ^ (addr & 0x1F);
  EXPECT_EQ(xor_fold20_5(addr), expect);
}

TEST(BitOps, XorFoldIgnoresHighBits) {
  // The paper observes application addresses differ only in the low 20 bits;
  // the fold must be insensitive to everything above bit 19.
  EXPECT_EQ(xor_fold20_5(0x12345), xor_fold20_5(0xFFF0000012345ULL & 0xFFFFF0012345ULL));
  EXPECT_EQ(xor_fold20_5(0xABC12345ULL), xor_fold20_5(0x12345ULL));
}

TEST(BitOps, XorFoldRange) {
  for (std::uint64_t a = 0; a < 4096; ++a) EXPECT_LT(xor_fold20_5(a * 977), 32u);
}

TEST(BitOps, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(256));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_EQ(ceil_pow2(5), 8u);
  EXPECT_EQ(log2_pow2(1024), 10u);
}

// ---------- FixedRing ----------

TEST(FixedRing, FifoOrderAndWraparound) {
  FixedRing<int> r(3);
  EXPECT_TRUE(r.empty());
  r.push(1);
  r.push(2);
  r.push(3);
  EXPECT_TRUE(r.full());
  EXPECT_FALSE(r.try_push(4));
  EXPECT_EQ(r.pop(), 1);
  EXPECT_TRUE(r.try_push(4));
  EXPECT_EQ(r.pop(), 2);
  EXPECT_EQ(r.pop(), 3);
  EXPECT_EQ(r.pop(), 4);
  EXPECT_TRUE(r.empty());
}

TEST(FixedRing, AtInspectsWithoutPopping) {
  FixedRing<int> r(4);
  r.push(10);
  r.push(20);
  EXPECT_EQ(r.at(0), 10);
  EXPECT_EQ(r.at(1), 20);
  EXPECT_EQ(r.size(), 2u);
}

TEST(FixedRing, StressWraparound) {
  FixedRing<std::size_t> r(7);
  std::size_t next_in = 0;
  std::size_t next_out = 0;
  for (int round = 0; round < 1000; ++round) {
    while (!r.full()) r.push(next_in++);
    const std::size_t drain = 1 + static_cast<std::size_t>(round % 7);
    for (std::size_t i = 0; i < drain && !r.empty(); ++i) {
      EXPECT_EQ(r.pop(), next_out++);
    }
  }
}

// ---------- InlineVec ----------

TEST(InlineVec, BasicOps) {
  InlineVec<int, 4> v;
  EXPECT_TRUE(v.empty());
  v.push_back(1);
  v.push_back(2);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 2);
  int sum = 0;
  for (int x : v) sum += x;
  EXPECT_EQ(sum, 3);
}

TEST(InlineVec, Equality) {
  InlineVec<int, 4> a{1, 2, 3};
  InlineVec<int, 4> b{1, 2, 3};
  InlineVec<int, 4> c{1, 2};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

// ---------- RNG ----------

TEST(Rng, Deterministic) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 g(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = g.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NormalMoments) {
  Xoshiro256 g(123);
  Accumulator acc;
  for (int i = 0; i < 200000; ++i) acc.add(g.normal());
  EXPECT_NEAR(acc.mean(), 0.0, 0.02);
  EXPECT_NEAR(acc.stddev(), 1.0, 0.02);
}

TEST(Rng, LognormalMedian) {
  Xoshiro256 g(99);
  Percentiles p;
  for (int i = 0; i < 50000; ++i) p.add(g.lognormal(std::log(100.0), 0.5));
  EXPECT_NEAR(p.quantile(0.5), 100.0, 5.0);
}

// ---------- Stats ----------

TEST(Stats, AccumulatorBasics) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_NEAR(a.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Stats, BalanceReportPerfect) {
  const BalanceReport r = balance_report({100, 100, 100, 100});
  EXPECT_DOUBLE_EQ(r.max_over_mean, 1.0);
  EXPECT_DOUBLE_EQ(r.cv, 0.0);
}

TEST(Stats, BalanceReportSkewed) {
  const BalanceReport r = balance_report({400, 0, 0, 0});
  EXPECT_DOUBLE_EQ(r.max_over_mean, 4.0);
  EXPECT_GT(r.cv, 1.0);
}

// ---------- Flags ----------

TEST(Flags, ParsesKeyValueForms) {
  const char* argv[] = {"prog", "--cores=8", "--freq", "55.56", "--csv"};
  const std::map<std::string, std::string> spec = {
      {"cores", ""}, {"freq", ""}, {"csv", ""}};
  Flags f(5, argv, spec);
  EXPECT_EQ(f.get_int("cores", 0), 8);
  EXPECT_NEAR(f.get_double("freq", 0.0), 55.56, 1e-9);
  EXPECT_TRUE(f.get_bool("csv", false));
  EXPECT_EQ(f.get_int("absent", 17), 17);
}

TEST(Flags, ParsesIntList) {
  const char* argv[] = {"prog", "--cores=1,2,4,8"};
  Flags f(2, argv, {{"cores", ""}});
  const auto v = f.get_int_list("cores", {});
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[3], 8);
}

// ---------- TextTable ----------

TEST(TextTable, AlignsAndCsv) {
  TextTable t({"bench", "tasks", "speedup"});
  t.add_row({"c-ray", "1200", "194.00"});
  t.add_row({"h264dec-1x1-10f", "139961", "6.90"});
  const std::string s = t.str();
  EXPECT_NE(s.find("c-ray"), std::string::npos);
  EXPECT_NE(s.find("139961"), std::string::npos);
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("bench,tasks,speedup"), std::string::npos);
  EXPECT_NE(csv.find("c-ray,1200,194.00"), std::string::npos);
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::integer(42), "42");
}

}  // namespace
}  // namespace nexus
