// Cross-manager integration properties: randomized traces (mixed dependency
// patterns, barriers, taskwait_on) must produce LEGAL schedules under every
// manager model, drain completely, and respect the performance ordering
// ideal <= hardware-managed <= serial-with-overheads where it must hold.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "nexus/common/rng.hpp"
#include "nexus/nexuspp/nexuspp.hpp"
#include "nexus/nexussharp/nexussharp.hpp"
#include "nexus/runtime/ideal_manager.hpp"
#include "nexus/runtime/list_scheduler.hpp"
#include "nexus/runtime/nanos_model.hpp"
#include "nexus/runtime/schedule_validator.hpp"
#include "nexus/runtime/simulation_driver.hpp"

namespace nexus {
namespace {

struct FuzzParams {
  std::uint64_t seed;
  int n_tasks;
  int n_addrs;
  int max_params;
  double barrier_prob;      ///< taskwait between submissions
  double taskwait_on_prob;  ///< taskwait_on a previously written address
  Tick min_dur, max_dur;
};

Trace fuzz_trace(const FuzzParams& p) {
  Xoshiro256 rng(p.seed);
  Trace tr("fuzz-" + std::to_string(p.seed));
  std::vector<Addr> written;
  for (int i = 0; i < p.n_tasks; ++i) {
    const int cap = std::min(p.max_params, p.n_addrs);
    const int np = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(cap)));
    ParamList params;
    std::vector<Addr> used;
    for (int k = 0; k < np; ++k) {
      Addr a = 0;
      bool dup = true;
      while (dup) {
        a = 0x5000 + rng.below(static_cast<std::uint64_t>(p.n_addrs)) * 0x40;
        dup = false;
        for (const Addr u : used) dup |= (u == a);
      }
      used.push_back(a);
      const auto dir = static_cast<Dir>(rng.below(3));
      params.push_back({a, dir});
      if (is_write(dir)) written.push_back(a);
    }
    const Tick dur =
        p.min_dur + static_cast<Tick>(rng.below(
                        static_cast<std::uint64_t>(p.max_dur - p.min_dur + 1)));
    tr.submit(0, dur, params);
    if (rng.uniform() < p.barrier_prob) tr.taskwait();
    if (!written.empty() && rng.uniform() < p.taskwait_on_prob)
      tr.taskwait_on(written[rng.below(written.size())]);
  }
  tr.taskwait();
  std::string err;
  NEXUS_ASSERT_MSG(tr.validate(&err), err.c_str());
  return tr;
}

class ManagerFuzzTest : public ::testing::TestWithParam<FuzzParams> {};

TEST_P(ManagerFuzzTest, AllManagersProduceLegalSchedules) {
  const Trace tr = fuzz_trace(GetParam());
  const Tick serial = tr.total_work();

  struct Case {
    std::string label;
    std::unique_ptr<TaskManagerModel> mgr;
  };
  std::vector<Case> cases;
  cases.push_back({"ideal", std::make_unique<IdealManager>()});
  cases.push_back({"nanos", std::make_unique<NanosModel>()});
  cases.push_back({"nexus++", std::make_unique<NexusPP>()});
  {
    NexusSharpConfig cfg;
    cfg.num_task_graphs = 4;
    cfg.freq_mhz = 100.0;
    cases.push_back({"nexus#4", std::make_unique<NexusSharp>(cfg)});
  }
  {
    NexusSharpConfig cfg;
    cfg.num_task_graphs = 8;
    cfg.freq_mhz = 100.0;
    cfg.pool_capacity = 32;  // force pool backpressure too
    cases.push_back({"nexus#8-smallpool", std::make_unique<NexusSharp>(cfg)});
  }

  // True lower bounds on any legal schedule. (The FIFO "ideal" makespan is
  // NOT a bound: delaying readiness can accidentally pack better — Graham's
  // scheduling anomalies — and the fuzzer does find such cases.)
  const Tick cp_bound = critical_path(tr);
  const Tick work_bound = serial / 8;
  for (auto& c : cases) {
    std::vector<ScheduleEntry> sched;
    RuntimeConfig rc;
    rc.workers = 8;
    rc.schedule_out = &sched;
    const RunResult r = run_trace(tr, *c.mgr, rc);
    std::string err;
    EXPECT_TRUE(validate_schedule(tr, sched, &err)) << c.label << ": " << err;
    EXPECT_EQ(r.tasks, tr.num_tasks()) << c.label;
    if (c.label == "ideal") {
      EXPECT_EQ(r.makespan, list_schedule_makespan(tr, 8));
    }
    EXPECT_GE(r.makespan, cp_bound) << c.label;
    EXPECT_GE(r.makespan, work_bound) << c.label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, ManagerFuzzTest,
    ::testing::Values(
        // Dense conflicts on few addresses, coarse tasks.
        FuzzParams{11, 300, 4, 3, 0.00, 0.00, us(20), us(200)},
        // Wide and mostly independent, fine tasks.
        FuzzParams{12, 500, 128, 2, 0.00, 0.00, us(1), us(10)},
        // Barrier-heavy fork/join.
        FuzzParams{13, 400, 16, 3, 0.05, 0.00, us(5), us(50)},
        // taskwait_on-heavy streaming.
        FuzzParams{14, 400, 16, 3, 0.00, 0.08, us(5), us(50)},
        // Everything at once, max params.
        FuzzParams{15, 600, 24, 6, 0.02, 0.04, us(2), us(80)},
        // Single hot address (pure chain).
        FuzzParams{16, 200, 1, 1, 0.00, 0.10, us(5), us(20)},
        // Reader-group heavy: many addresses, writes rare via low dir draw
        // (still random, the seed drives it).
        FuzzParams{17, 500, 8, 4, 0.01, 0.02, us(1), us(40)},
        FuzzParams{18, 800, 48, 5, 0.03, 0.03, us(1), us(30)}),
    [](const ::testing::TestParamInfo<FuzzParams>& pi) {
      return "seed" + std::to_string(pi.param.seed);
    });

// The managers must also agree on *what* ran, not just legality: with one
// worker and FIFO dispatch, the ideal DES execution and the independent
// list scheduler produce identical schedules on fuzz traces.
TEST(Integration, SingleWorkerIdealMatchesOracleExactly) {
  for (const std::uint64_t seed : {21u, 22u, 23u}) {
    const Trace tr =
        fuzz_trace({seed, 300, 12, 3, 0.02, 0.03, us(2), us(60)});
    IdealManager mgr;
    const RunResult r = run_trace(tr, mgr, RuntimeConfig{.workers = 1});
    EXPECT_EQ(r.makespan, list_schedule_makespan(tr, 1)) << seed;
  }
}

// Hardware managers under a hostile configuration: tiny tables, tiny pool,
// minimal kick-off lists — liveness and legality must survive.
TEST(Integration, HostileHardwareConfigsStillDrain) {
  const Trace tr = fuzz_trace({31, 400, 6, 3, 0.02, 0.02, us(2), us(40)});
  {
    NexusPPConfig cfg;
    cfg.pool_capacity = 3;
    cfg.table.sets = 4;
    cfg.table.ways = 2;
    cfg.table.kol_entries = 1;
    cfg.table.chain_probe_limit = 2;
    NexusPP mgr(cfg);
    std::vector<ScheduleEntry> sched;
    RuntimeConfig rc;
    rc.workers = 4;
    rc.schedule_out = &sched;
    const RunResult r = run_trace(tr, mgr, rc);
    EXPECT_EQ(r.tasks, tr.num_tasks());
    std::string err;
    EXPECT_TRUE(validate_schedule(tr, sched, &err)) << err;
  }
  {
    NexusSharpConfig cfg;
    cfg.num_task_graphs = 2;
    cfg.freq_mhz = 100.0;
    cfg.pool_capacity = 3;
    cfg.table.sets = 4;
    cfg.table.ways = 2;
    cfg.table.kol_entries = 1;
    cfg.table.chain_probe_limit = 2;
    NexusSharp mgr(cfg);
    std::vector<ScheduleEntry> sched;
    RuntimeConfig rc;
    rc.workers = 4;
    rc.schedule_out = &sched;
    const RunResult r = run_trace(tr, mgr, rc);
    EXPECT_EQ(r.tasks, tr.num_tasks());
    EXPECT_EQ(mgr.stats().sim_tasks_live, 0u);
    std::string err;
    EXPECT_TRUE(validate_schedule(tr, sched, &err)) << err;
  }
}

// Host-interface sensitivity: adding per-message cost must slow every
// manager monotonically (the DESIGN.md §5 sensitivity knob).
TEST(Integration, HostMessageCostIsMonotone) {
  const Trace tr = fuzz_trace({41, 300, 16, 3, 0.01, 0.02, us(2), us(40)});
  Tick prev = 0;
  for (const double cost_us : {0.0, 1.0, 5.0}) {
    NexusSharpConfig cfg;
    cfg.num_task_graphs = 4;
    cfg.freq_mhz = 100.0;
    NexusSharp mgr(cfg);
    RuntimeConfig rc;
    rc.workers = 8;
    rc.host_message_cost = us(cost_us);
    const Tick mk = run_trace(tr, mgr, rc).makespan;
    EXPECT_GE(mk, prev);
    prev = mk;
  }
}

}  // namespace
}  // namespace nexus
