// Million-event stress properties of the DES kernel: the calendar queue's
// steady state must stop allocating (arena recycling), a hold-model storm
// must produce the bit-identical event order under both queue
// implementations even with a TimelineRecorder attached mid-run, and a full
// runtime-over-NoC run must keep its conservation ledgers (per-core busy +
// idle == makespan, injected == delivered flits) intact under either
// scheduler.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "nexus/common/rng.hpp"
#include "nexus/nexussharp/nexussharp.hpp"
#include "nexus/runtime/simulation_driver.hpp"
#include "nexus/sim/event_queue.hpp"
#include "nexus/sim/simulation.hpp"
#include "nexus/telemetry/registry.hpp"
#include "nexus/telemetry/timeline.hpp"
#include "nexus/workloads/workloads.hpp"

namespace nexus {
namespace {

class ScopedQueueKind {
 public:
  explicit ScopedQueueKind(QueueKind k) : saved_(default_queue_kind()) {
    set_default_queue_kind(k);
  }
  ~ScopedQueueKind() { set_default_queue_kind(saved_); }
  ScopedQueueKind(const ScopedQueueKind&) = delete;
  ScopedQueueKind& operator=(const ScopedQueueKind&) = delete;

 private:
  QueueKind saved_;
};

// ---------------------------------------------------------------------------
// Hold-model storm: a fixed in-flight population where every handled event
// schedules exactly one successor. The running checksum folds (t, a) in pop
// order, so two runs agree iff their complete event sequences agree.
// ---------------------------------------------------------------------------

constexpr Tick kMeanDelay = 20000;

class StormCore final : public Component {
 public:
  StormCore(std::uint64_t seed, std::uint32_t ncomp, std::uint64_t* checksum)
      : rng_(seed), ncomp_(ncomp), checksum_(checksum) {}

  void handle(Simulation& sim, const Event& ev) override {
    *checksum_ = (*checksum_ * 0x9E3779B97F4A7C15ULL) ^
                 static_cast<std::uint64_t>(ev.t) ^ (ev.a << 17);
    // Draws hoisted: the stream must not depend on evaluation order.
    const std::uint64_t sel = rng_.below(128);
    const Tick delay = sel < 6 ? 0  // same-tick burst
                       : sel < 8
                           ? 100 * kMeanDelay  // far-future straggler
                           : static_cast<Tick>(rng_.below(2 * kMeanDelay));
    const auto dest = static_cast<std::uint32_t>(rng_.below(ncomp_));
    sim.schedule_in(delay, dest, ev.op, ev.a + 1);
  }

 private:
  Xoshiro256 rng_;
  std::uint32_t ncomp_;
  std::uint64_t* checksum_;
};

struct StormOutcome {
  Tick makespan = 0;
  std::uint64_t events = 0;
  std::uint64_t checksum = 0;
};

/// Run `n_events` of the storm. With `timeline` set, kernel telemetry is
/// bound and the recorder is attached *mid-run* (after a third of the
/// budget) — attaching a sampler must not perturb the schedule.
StormOutcome run_storm(QueueKind kind, std::uint64_t n_events,
                       std::uint64_t inflight,
                       telemetry::TimelineRecorder* timeline = nullptr,
                       telemetry::MetricRegistry* reg = nullptr) {
  constexpr std::uint32_t kComps = 64;
  Simulation sim(kind);
  std::uint64_t checksum = 0x6E78757353696D21ULL;
  std::vector<StormCore> cores;
  cores.reserve(kComps);
  for (std::uint32_t i = 0; i < kComps; ++i)
    cores.emplace_back(0x5EED0000 + i, kComps, &checksum);
  for (auto& c : cores) sim.add_component(&c);
  if (reg != nullptr) sim.bind_telemetry(*reg);

  Xoshiro256 prime(99);
  for (std::uint64_t i = 0; i < inflight; ++i) {
    const Tick t = static_cast<Tick>(prime.below(2 * kMeanDelay));
    const auto dest = static_cast<std::uint32_t>(prime.below(kComps));
    sim.schedule(t, dest, 0, i);
  }

  if (timeline != nullptr) {
    EXPECT_TRUE(sim.run_some(n_events / 3));
    sim.set_sampler(timeline);  // mid-run attach
    EXPECT_TRUE(sim.run_some(n_events - n_events / 3));
    timeline->finish(sim.now());
  } else {
    EXPECT_TRUE(sim.run_some(n_events));
  }
  return {sim.now(), sim.events_processed(), checksum};
}

TEST(SimStress, MillionEventStormIdenticalAcrossKindsWithMidRunTimeline) {
  constexpr std::uint64_t kEvents = 1000000;
  constexpr std::uint64_t kInflight = 1 << 16;

  const StormOutcome heap = run_storm(QueueKind::kBinaryHeap, kEvents, kInflight);

  telemetry::MetricRegistry reg;
  telemetry::TimelineConfig cfg;
  cfg.interval_ps = 4096;
  telemetry::TimelineRecorder rec(reg, cfg);
  const StormOutcome cal =
      run_storm(QueueKind::kCalendar, kEvents, kInflight, &rec, &reg);

  EXPECT_EQ(heap.events, kEvents);
  EXPECT_EQ(cal.events, kEvents);
  EXPECT_EQ(heap.makespan, cal.makespan);
  EXPECT_EQ(heap.checksum, cal.checksum)
      << "pop order diverged between heap and calendar";

  // The mid-run recorder really sampled, and its event counter is monotone
  // and consistent with the kernel's own count.
  const telemetry::Timeline tl = rec.freeze();
  ASSERT_GT(tl.t.size(), 2u);
  const telemetry::TimelineSeries* events = tl.find("sim/events");
  ASSERT_NE(events, nullptr);
  for (std::size_t i = 1; i < events->v.size(); ++i)
    ASSERT_GE(events->v[i], events->v[i - 1]) << "row " << i;
  EXPECT_EQ(static_cast<std::uint64_t>(events->v.back()), kEvents);
}

TEST(SimStress, CalendarSteadyStateStopsAllocating) {
  // Direct queue drive: after the population stabilises and resizes settle,
  // bucket drains must recycle slabs through the arena instead of touching
  // the allocator — `allocs` freezes while `reuses` keeps climbing.
  EventQueue q(QueueKind::kCalendar);
  Xoshiro256 rng(7);
  std::uint64_t seq = 0;
  Tick now = 0;
  for (int i = 0; i < (1 << 15); ++i) {
    const Tick t = static_cast<Tick>(rng.below(2 * kMeanDelay));
    q.push(Event{t, seq, 0, 0, seq, 0});
    ++seq;
  }
  auto spin = [&](std::uint64_t pops) {
    for (std::uint64_t i = 0; i < pops; ++i) {
      const Event ev = q.pop();
      ASSERT_GE(ev.t, now);
      now = ev.t;
      const Tick d = static_cast<Tick>(rng.below(2 * kMeanDelay));
      q.push(Event{now + d, seq, 0, 0, seq, 0});
      ++seq;
    }
  };
  spin(500000);  // warm-up: growth resizes, width re-measurement, pooling
  const CalendarQueue::Stats warm = q.calendar_stats();
  spin(500000);  // steady state
  const CalendarQueue::Stats steady = q.calendar_stats();
  EXPECT_GT(warm.grows, 0u);
  EXPECT_EQ(steady.arena_allocs, warm.arena_allocs)
      << "steady-state bucket churn hit the allocator";
  EXPECT_GT(steady.arena_reuses, warm.arena_reuses);
  EXPECT_EQ(q.size(), std::size_t{1} << 15);
}

// ---------------------------------------------------------------------------
// Conservation ledgers through the full runtime stack, swept over both
// queue implementations.
// ---------------------------------------------------------------------------

TEST(SimStress, LedgerAndFlitConservationUnderBothQueues) {
  workloads::GaussianConfig gcfg;
  gcfg.n = 100;
  const Trace tr = workloads::make_gaussian(gcfg);
  constexpr std::uint32_t kWorkers = 8;

  std::vector<Tick> makespans;
  for (const QueueKind kind : {QueueKind::kBinaryHeap, QueueKind::kCalendar}) {
    ScopedQueueKind guard(kind);
    telemetry::MetricRegistry reg;
    NexusSharpConfig cfg;
    cfg.num_task_graphs = 4;
    cfg.freq_mhz = 100.0;
    NexusSharp mgr(cfg);
    RuntimeConfig rc;
    rc.workers = kWorkers;
    rc.noc.kind = noc::TopologyKind::kMesh;  // host-side mesh fabric
    rc.metrics = &reg;
    const RunResult r = run_trace(tr, mgr, rc);
    const telemetry::Snapshot snap = reg.snapshot();
    const std::string tag = std::string("queue=") + to_string(kind);

    // Time ledger: every core's busy + idle spans the whole run exactly.
    EXPECT_EQ(snap.gauge_at("runtime/makespan_ps"), r.makespan) << tag;
    for (std::uint32_t w = 0; w < kWorkers; ++w) {
      const std::string core = "runtime/core" + std::to_string(w);
      EXPECT_EQ(snap.gauge_at(core + "/busy_ps") +
                    snap.gauge_at(core + "/idle_ps"),
                r.makespan)
          << tag << " core " << w;
    }

    // Flit ledger at drain time: the host fabric delivered every flit it
    // accepted (nothing parked in a link when the run ended).
    const std::uint64_t injected = snap.counter_at("runtime/noc/flits");
    const std::uint64_t delivered =
        snap.counter_at("runtime/noc/delivered_flits");
    EXPECT_GT(injected, 0u) << tag;
    EXPECT_EQ(injected, delivered) << tag;
    EXPECT_EQ(snap.counter_at("sim/events"), r.events) << tag;
    makespans.push_back(r.makespan);
  }
  EXPECT_EQ(makespans[0], makespans[1]) << "kinds disagreed on the makespan";
}

}  // namespace
}  // namespace nexus
