// Multi-application co-management tests: isolation of address spaces and
// barriers, shared-manager contention, and legality of combined schedules.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "nexus/nexussharp/nexussharp.hpp"
#include "nexus/runtime/ideal_manager.hpp"
#include "nexus/runtime/multi_app.hpp"
#include "nexus/telemetry/registry.hpp"
#include "nexus/workloads/workloads.hpp"

namespace nexus {
namespace {

Trace chain_trace(int n, Tick dur) {
  Trace tr("chain");
  for (int i = 0; i < n; ++i) {
    ParamList p;
    p.push_back({0x1000, Dir::kInOut});
    tr.submit(0, dur, p);
  }
  tr.taskwait();
  return tr;
}

Trace independent_trace(int n, Tick dur) {
  Trace tr("indep");
  for (int i = 0; i < n; ++i) {
    ParamList p;
    p.push_back({0x1000 + 0x40 * static_cast<Addr>(i), Dir::kOut});
    tr.submit(0, dur, p);
  }
  tr.taskwait();
  return tr;
}

TEST(MultiApp, SingleAppMatchesDriver) {
  const Trace tr = workloads::make_gaussian({.n = 80});
  IdealManager m1;
  IdealManager m2;
  const RunResult single = run_trace(tr, m1, RuntimeConfig{.workers = 8});
  const MultiAppResult multi = run_multi_app({&tr}, m2, RuntimeConfig{.workers = 8});
  EXPECT_EQ(multi.makespan, single.makespan);
  EXPECT_EQ(multi.total_tasks, single.tasks);
}

TEST(MultiApp, AddressSpacesAreIsolated) {
  // Two apps whose traces use the SAME raw addresses: a serial chain each.
  // Co-run with enough workers, the chains must overlap (no false
  // dependencies across apps), so the makespan equals one chain.
  const Trace a = chain_trace(10, us(10));
  const Trace b = chain_trace(10, us(10));
  IdealManager mgr;
  const MultiAppResult r = run_multi_app({&a, &b}, mgr, RuntimeConfig{.workers = 4});
  EXPECT_EQ(r.makespan, us(100));
  EXPECT_EQ(r.app_completion.size(), 2u);
}

TEST(MultiApp, BarriersAreScopedPerApp) {
  // App A: one long task, then taskwait, then a second long task.
  // App B: many short independent tasks. B must finish long before A's
  // barrier-delimited second phase would allow if barriers were global.
  Trace a("a");
  {
    ParamList p;
    p.push_back({0x10, Dir::kOut});
    a.submit(0, us(100), p);
    a.taskwait();
    ParamList q;
    q.push_back({0x20, Dir::kOut});
    a.submit(0, us(100), q);
    a.taskwait();
  }
  const Trace b = independent_trace(8, us(10));
  IdealManager mgr;
  const MultiAppResult r = run_multi_app({&a, &b}, mgr, RuntimeConfig{.workers = 4});
  EXPECT_EQ(r.app_completion[0], us(200));
  EXPECT_LE(r.app_completion[1], us(40));  // not held by A's taskwait
}

TEST(MultiApp, TaskwaitOnScopedPerApp) {
  // Both apps taskwait_on the same RAW address; placement must keep them
  // waiting on their OWN producer.
  Trace a("a");
  {
    ParamList p;
    p.push_back({0x10, Dir::kOut});
    a.submit(0, us(50), p);
    a.taskwait_on(0x10);
    ParamList q;
    q.push_back({0x20, Dir::kOut});
    a.submit(0, us(1), q);
    a.taskwait();
  }
  Trace b("b");
  {
    ParamList p;
    p.push_back({0x10, Dir::kOut});
    b.submit(0, us(5), p);
    b.taskwait_on(0x10);
    ParamList q;
    q.push_back({0x20, Dir::kOut});
    b.submit(0, us(1), q);
    b.taskwait();
  }
  IdealManager mgr;
  const MultiAppResult r = run_multi_app({&a, &b}, mgr, RuntimeConfig{.workers = 4});
  // B's wait releases at 5us; its second task ends ~6us. A's at ~51us.
  EXPECT_LE(r.app_completion[1], us(7));
  EXPECT_GE(r.app_completion[0], us(51));
}

TEST(MultiApp, SharedNexusSharpDrains) {
  // Two real workloads through one Nexus# instance: both complete, the
  // gather state drains, and co-running beats back-to-back serial runs.
  const Trace a = workloads::make_h264dec(workloads::h264_config(8));
  const Trace b = workloads::make_gaussian({.n = 250});
  NexusSharpConfig cfg;
  cfg.num_task_graphs = 6;
  cfg.freq_mhz = 100.0;
  NexusSharp co(cfg);
  const MultiAppResult r = run_multi_app({&a, &b}, co, RuntimeConfig{.workers = 32});
  EXPECT_EQ(r.total_tasks, a.num_tasks() + b.num_tasks());
  EXPECT_EQ(co.stats().sim_tasks_live, 0u);

  NexusSharp s1(cfg);
  NexusSharp s2(cfg);
  const Tick serial =
      run_trace(a, s1, RuntimeConfig{.workers = 32}).makespan +
      run_trace(b, s2, RuntimeConfig{.workers = 32}).makespan;
  EXPECT_LT(r.makespan, serial);
}

TEST(MultiApp, PoolContentionStillDrains) {
  // A tiny shared pool forces both masters to block and hand slots back
  // and forth; liveness must hold.
  const Trace a = independent_trace(30, us(5));
  const Trace b = independent_trace(30, us(5));
  NexusSharpConfig cfg;
  cfg.num_task_graphs = 2;
  cfg.freq_mhz = 100.0;
  cfg.pool_capacity = 4;
  NexusSharp mgr(cfg);
  const MultiAppResult r = run_multi_app({&a, &b}, mgr, RuntimeConfig{.workers = 4});
  EXPECT_EQ(r.total_tasks, 60u);
  EXPECT_GT(r.makespan, 0);
}

TEST(MultiApp, EmptyTraceListIsWellDefined) {
  IdealManager mgr;
  const MultiAppResult r = run_multi_app({}, mgr, RuntimeConfig{.workers = 4});
  EXPECT_EQ(r.total_tasks, 0u);
  EXPECT_EQ(r.makespan, 0);
  EXPECT_TRUE(r.app_completion.empty());
}

TEST(MultiApp, ZeroTaskAppContributesNothing) {
  // An app whose trace has no tasks (only a barrier) completes at 0 and
  // must not wedge the other app.
  Trace empty("empty");
  empty.taskwait();
  const Trace b = independent_trace(6, us(10));
  IdealManager mgr;
  const MultiAppResult r =
      run_multi_app({&empty, &b}, mgr, RuntimeConfig{.workers = 2});
  EXPECT_EQ(r.total_tasks, 6u);
  ASSERT_EQ(r.app_completion.size(), 2u);
  EXPECT_EQ(r.app_completion[0], 0);
  EXPECT_GT(r.app_completion[1], 0);
}

TEST(MultiApp, EndGaugesReconcileWithUtilization) {
  // The metrics binding added for parity with the single-app driver: per
  // core, busy + idle == makespan, and the busy sum reproduces the
  // report's utilization exactly.
  const Trace a = workloads::make_gaussian({.n = 60});
  const Trace b = independent_trace(20, us(5));
  IdealManager mgr;
  telemetry::MetricRegistry reg;
  RuntimeConfig rc;
  rc.workers = 4;
  rc.metrics = &reg;
  const MultiAppResult r = run_multi_app({&a, &b}, mgr, rc);
  const telemetry::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find("runtime/makespan_ps")->gauge, r.makespan);
  EXPECT_EQ(snap.find("runtime/apps")->gauge, 2);
  std::int64_t busy_sum = 0;
  for (std::uint32_t w = 0; w < 4; ++w) {
    const std::string core = "runtime/core" + std::to_string(w);
    const auto* busy = snap.find(core + "/busy_ps");
    const auto* idle = snap.find(core + "/idle_ps");
    ASSERT_NE(busy, nullptr);
    ASSERT_NE(idle, nullptr);
    EXPECT_EQ(busy->gauge + idle->gauge, r.makespan);
    busy_sum += busy->gauge;
  }
  EXPECT_NEAR(r.utilization,
              static_cast<double>(busy_sum) /
                  (static_cast<double>(r.makespan) * 4.0),
              1e-12);
  // Per-app completion gauges exist (single-digit family: no padding).
  EXPECT_EQ(snap.find("runtime/app0/completion_ps")->gauge,
            r.app_completion[0]);
  EXPECT_EQ(snap.find("runtime/app1/completion_ps")->gauge,
            r.app_completion[1]);
}

TEST(MultiApp, Deterministic) {
  const Trace a = workloads::make_gaussian({.n = 60});
  const Trace b = independent_trace(50, us(3));
  NexusSharpConfig cfg;
  cfg.num_task_graphs = 4;
  cfg.freq_mhz = 100.0;
  NexusSharp m1(cfg);
  NexusSharp m2(cfg);
  const MultiAppResult r1 = run_multi_app({&a, &b}, m1, RuntimeConfig{.workers = 8});
  const MultiAppResult r2 = run_multi_app({&a, &b}, m2, RuntimeConfig{.workers = 8});
  EXPECT_EQ(r1.makespan, r2.makespan);
  EXPECT_EQ(r1.app_completion, r2.app_completion);
}

}  // namespace
}  // namespace nexus
