// nexus-perfdiff: compare two BENCH_*.json trajectory records and flag
// makespan/metric regressions, so CI gates on the bench trajectory instead
// of a human eyeballing numbers. The default watch list includes the
// tail-latency quantile gates (runtime/sojourn_ps and
// runtime/serving_latency_ps p50/p99/p999, plus the serving/knee_hz
// throughput gauge): a p99 regression fails CI even when the makespan is
// unchanged. Quantile gates only engage when both records carry the fields,
// so schema<3 baselines are skipped, never failed.
//
//   nexus-perfdiff [options] <baseline.json> <candidate.json>
//
//   --max-makespan-pct=P   makespan growth tolerance in percent (default 2)
//   --max-metric-pct=P     watched-rate growth tolerance in percent (default 10)
//   --metrics=G1,G2,...    replace the watched-rate globs (each glob is
//                          summed over flattened metric paths and divided by
//                          the run's task count)
//   --timelines            additionally diff the sampled sim-time timelines
//                          point by point, reporting the sim-time of each
//                          series' first divergence
//   --max-timeline-pct=P   per-point timeline tolerance in percent of the
//                          baseline value (default 0 = exact); GLOB=P entries
//                          set per-series overrides, first match wins, e.g.
//                          --max-timeline-pct=sim/events=5,**/noc/*=1,0
//   --report-only          print the full report but always exit 0 on a
//                          clean parse (CI burn-in mode)
//   --quiet                suppress per-record [ok] lines
//
// Exit status: 0 no regression (or --report-only), 1 regression found,
// 2 usage/IO/parse error. Flags use the --key=value form only, so file
// arguments can never be mistaken for flag values.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "nexus/harness/perfdiff.hpp"

namespace {

void usage(std::FILE* to) {
  std::fputs(
      "usage: nexus-perfdiff [options] <baseline.json> <candidate.json>\n"
      "  --max-makespan-pct=P  makespan tolerance in percent (default 2)\n"
      "  --max-metric-pct=P    watched-rate tolerance in percent (default 10)\n"
      "  --metrics=G1,G2,...   override watched-rate metric globs\n"
      "  --timelines           also diff sampled timelines point by point\n"
      "  --max-timeline-pct=L  timeline tolerance: default pct and/or\n"
      "                        comma-separated GLOB=P per-series overrides\n"
      "  --report-only         report but exit 0 even on regressions\n"
      "  --quiet               only regressions and the summary\n",
      to);
}

/// Parse a percentage flag value strictly: a typo like "--max-metric-pct=2x"
/// or an empty value must not silently become a 0.0 tolerance.
bool parse_pct(const std::string& flag, const std::string& val, double* out) {
  char* end = nullptr;
  *out = std::strtod(val.c_str(), &end);
  if (val.empty() || end != val.c_str() + val.size() || *out < 0.0) {
    std::fprintf(stderr,
                 "nexus-perfdiff: %s needs a non-negative number, got \"%s\"\n",
                 flag.c_str(), val.c_str());
    return false;
  }
  return true;
}

bool read_file(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out->append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool load_records(const std::string& path,
                  std::vector<nexus::harness::BenchRecord>* out) {
  std::string text;
  if (!read_file(path, &text)) {
    std::fprintf(stderr, "nexus-perfdiff: cannot read %s\n", path.c_str());
    return false;
  }
  std::string error;
  if (!nexus::harness::parse_bench_records(text, out, &error)) {
    std::fprintf(stderr, "nexus-perfdiff: %s: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  nexus::harness::PerfdiffOptions opts;
  bool report_only = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      files.push_back(arg);
      continue;
    }
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string val =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--help") {
      usage(stdout);
      return 0;
    } else if (key == "--report-only") {
      report_only = true;
    } else if (key == "--quiet") {
      opts.quiet = true;
    } else if (key == "--max-makespan-pct") {
      if (!parse_pct(key, val, &opts.makespan_tolerance_pct)) return 2;
    } else if (key == "--max-metric-pct") {
      if (!parse_pct(key, val, &opts.metric_tolerance_pct)) return 2;
    } else if (key == "--timelines") {
      opts.compare_timelines = true;
    } else if (key == "--max-timeline-pct") {
      // Comma-separated list of bare percentages (set the default) and
      // GLOB=P entries (per-series overrides; first matching glob wins).
      opts.compare_timelines = true;
      std::size_t start = 0;
      while (start <= val.size()) {
        const std::size_t comma = val.find(',', start);
        const std::size_t end = comma == std::string::npos ? val.size() : comma;
        if (end > start) {
          const std::string item = val.substr(start, end - start);
          const std::size_t eq2 = item.find('=');
          double pct = 0.0;
          if (eq2 == std::string::npos) {
            if (!parse_pct(key, item, &pct)) return 2;
            opts.timeline_tolerance_pct = pct;
          } else {
            if (!parse_pct(key, item.substr(eq2 + 1), &pct)) return 2;
            opts.timeline_tolerances.emplace_back(item.substr(0, eq2), pct);
          }
        }
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (key == "--metrics") {
      opts.watched.clear();
      std::size_t start = 0;
      while (start <= val.size()) {
        const std::size_t comma = val.find(',', start);
        const std::size_t end = comma == std::string::npos ? val.size() : comma;
        if (end > start) {
          const std::string glob = val.substr(start, end - start);
          opts.watched.push_back({glob, glob});
        }
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else {
      std::fprintf(stderr, "nexus-perfdiff: unknown flag %s\n", key.c_str());
      usage(stderr);
      return 2;
    }
  }

  if (files.size() != 2) {
    usage(stderr);
    return 2;
  }

  std::vector<nexus::harness::BenchRecord> base;
  std::vector<nexus::harness::BenchRecord> cand;
  if (!load_records(files[0], &base) || !load_records(files[1], &cand)) return 2;

  const nexus::harness::PerfdiffResult res =
      nexus::harness::perfdiff_compare(base, cand, opts);
  std::printf("comparing %s (baseline) vs %s (candidate)\n", files[0].c_str(),
              files[1].c_str());
  std::fputs(res.report.c_str(), stdout);
  if (!res.ok() && report_only) {
    std::puts("(report-only: regressions reported but not failing the run)");
    return 0;
  }
  return res.ok() ? 0 : 1;
}
