// nexus-prof: host-side self-profile of the simulator itself.
//
// Runs a workload x manager x topology grid with a telemetry::Profiler
// attached and reports where the simulator's own wall-clock time goes —
// event-queue operations (push/pop/rebuild/sweep), per-Component-type
// handlers, NoC send paths by op kind, and driver dispatch/notify — as a
// top-N self-time table per cell. This is the "where would partitioning
// help" evidence for the parallel-DES roadmap item: the hot node names
// identify the kernel phase worth parallelising before any code moves.
//
// Output modes:
//   (default)         per-cell self-time ranking tables
//   --json=PATH       one JSON array, one object per cell: the grid key,
//                     the run's makespan/wall time, and the full profile
//                     tree (schema'd; scripts/validate_profile.py checks
//                     its reconciliation invariants)
//   --collapsed=PATH  speedscope/FlameGraph collapsed stacks; each cell's
//                     stacks are prefixed with a "wl|manager|topo|cN" root
//                     frame so a multi-cell file stays separable
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "nexus/common/flags.hpp"
#include "nexus/harness/experiment.hpp"
#include "nexus/noc/topology.hpp"
#include "nexus/telemetry/profile_export.hpp"
#include "nexus/telemetry/profiler.hpp"
#include "nexus/telemetry/writers.hpp"
#include "nexus/workloads/workloads.hpp"

using namespace nexus;
using namespace nexus::harness;

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// Parse a manager label: "ideal", "nanos", "nexus++", or "nexus#-<N>TG".
bool parse_manager(const std::string& name, ManagerSpec* out) {
  if (name == "ideal") {
    *out = ManagerSpec::ideal();
    return true;
  }
  if (name == "nanos") {
    *out = ManagerSpec::nanos_default();
    return true;
  }
  if (name == "nexus++") {
    *out = ManagerSpec::nexuspp_default();
    return true;
  }
  const std::string prefix = "nexus#-";
  if (name.rfind(prefix, 0) == 0) {
    std::size_t pos = prefix.size();
    std::uint32_t tgs = 0;
    while (pos < name.size() && name[pos] >= '0' && name[pos] <= '9') {
      tgs = tgs * 10 + static_cast<std::uint32_t>(name[pos] - '0');
      ++pos;
    }
    if (tgs > 0 && (pos == name.size() || name.substr(pos) == "TG")) {
      *out = ManagerSpec::nexussharp(tgs);
      return true;
    }
  }
  return false;
}

/// One profiled run: fresh profiler and registry per cell, the topology
/// applied to both the manager-side and host-side fabrics (like the
/// ablation benches), wall time measured independently of the profiler so
/// the root-reconciliation check is against a second clock.
struct CellResult {
  Tick makespan = 0;
  std::uint64_t wall_ns = 0;
  telemetry::ProfileData profile;
};

CellResult run_cell(const Trace& tr, ManagerSpec spec,
                    noc::TopologyKind topo, std::uint32_t cores) {
  telemetry::Profiler prof;
  RuntimeConfig rc;
  rc.noc.kind = topo;
  rc.profiler = &prof;
  if (spec.kind == ManagerSpec::Kind::kNexusSharp) spec.sharp.noc.kind = topo;
  if (spec.kind == ManagerSpec::Kind::kNexusPP) spec.npp.noc.kind = topo;
  const auto t0 = std::chrono::steady_clock::now();
  const RunReport rep =
      run_once_report(tr, spec, cores, rc, /*collect_metrics=*/false);
  const auto t1 = std::chrono::steady_clock::now();
  CellResult out;
  out.makespan = rep.result.makespan;
  out.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  out.profile = prof.freeze();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(
      argc, argv,
      {{"workloads",
        "comma-separated Table II workload names (default gaussian-250; "
        "see --list)"},
       {"managers",
        "comma-separated managers: ideal, nanos, nexus++, nexus#-<N>TG "
        "(default nexus#-2TG)"},
       {"topologies",
        "comma-separated interconnects: ideal, ring, mesh, torus "
        "(default ideal)"},
       {"cores", "worker cores per run (default 8)"},
       {"top", "rows in the self-time ranking (default 12)"},
       {"json", "write the grid's schema'd profile trees to this file"},
       {"collapsed", "write speedscope collapsed stacks to this file"},
       {"list", "list known workload names and exit"}});

  if (flags.get_bool("list", false)) {
    for (const auto& n : workloads::workload_names())
      std::printf("%s\n", n.c_str());
    return 0;
  }

  const auto cores = static_cast<std::uint32_t>(flags.get_int("cores", 8));
  const auto top_n = static_cast<std::size_t>(flags.get_int("top", 12));
  const std::vector<std::string> wl_names =
      split_csv(flags.get("workloads", "gaussian-250"));
  const std::vector<std::string> mgr_names =
      split_csv(flags.get("managers", "nexus#-2TG"));
  const std::vector<std::string> topo_names =
      split_csv(flags.get("topologies", "ideal"));

  std::vector<ManagerSpec> specs;
  for (const auto& m : mgr_names) {
    ManagerSpec spec;
    if (!parse_manager(m, &spec)) {
      std::fprintf(stderr, "unknown manager: %s\n", m.c_str());
      return 2;
    }
    specs.push_back(std::move(spec));
  }
  std::vector<noc::TopologyKind> topos;
  for (const auto& t : topo_names) {
    noc::TopologyKind k{};
    if (!noc::parse_topology(t, &k)) {
      std::fprintf(stderr, "unknown topology: %s\n", t.c_str());
      return 2;
    }
    topos.push_back(k);
  }
  for (const auto& w : wl_names) {
    if (!workloads::is_workload(w)) {
      std::fprintf(stderr, "unknown workload: %s (see --list)\n", w.c_str());
      return 2;
    }
  }

  telemetry::JsonWriter json;
  json.begin_array();
  std::string collapsed;

  for (const auto& wl : wl_names) {
    const Trace tr = workloads::make_workload(wl);
    for (const ManagerSpec& spec : specs) {
      for (const noc::TopologyKind topo : topos) {
        const CellResult cell = run_cell(tr, spec, topo, cores);
        const std::string cell_key = wl + "|" + spec.label + "|" +
                                     noc::to_string(topo) + "|c" +
                                     std::to_string(cores);

        std::printf("=== %s: makespan %.3f ms, host wall %.3f ms ===\n",
                    cell_key.c_str(), to_ms(cell.makespan),
                    static_cast<double>(cell.wall_ns) * 1e-6);
        std::printf("%s\n",
                    telemetry::profile_top_table(cell.profile, top_n).c_str());

        if (flags.has("json")) {
          json.begin_object();
          json.kv("workload", wl);
          json.kv("manager", spec.label);
          json.kv("topology", noc::to_string(topo));
          json.kv("cores", cores);
          json.kv("makespan", static_cast<std::int64_t>(cell.makespan));
          json.key("profile");
          telemetry::append_profile(json, cell.profile, cell.wall_ns);
          json.end_object();
        }
        if (flags.has("collapsed")) {
          // Prefix every stack with the cell key so one file can hold the
          // whole grid without merging distinct cells' frames.
          const std::string stacks = telemetry::profile_collapsed(cell.profile);
          std::size_t start = 0;
          while (start < stacks.size()) {
            std::size_t nl = stacks.find('\n', start);
            if (nl == std::string::npos) nl = stacks.size();
            collapsed += cell_key + ";" + stacks.substr(start, nl - start) + "\n";
            start = nl + 1;
          }
        }
      }
    }
  }
  json.end_array();

  int rc = 0;
  if (flags.has("json")) {
    const std::string path = flags.get("json", "");
    if (telemetry::write_text_file(path, json.str())) {
      std::printf("wrote profile grid to %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "error: could not write %s\n", path.c_str());
      rc = 2;
    }
  }
  if (flags.has("collapsed")) {
    const std::string path = flags.get("collapsed", "");
    if (telemetry::write_text_file(path, collapsed)) {
      std::printf("wrote collapsed stacks to %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "error: could not write %s\n", path.c_str());
      rc = 2;
    }
  }
  return rc;
}
