// Ablation: the Section IV-B distribution function.
//
// The paper requires the function to be fast (1 cycle) and fair, and picks
// an XOR fold of the low 20 address bits. This bench compares the paper's
// fold against low-bits and whole-value modulo on (a) static balance of the
// workloads' address streams and (b) end-to-end makespan, plus the
// degenerate per-TG load imbalance the paper's Fig. 3(B) worst case warns
// about (gaussian: every wave's pivot row funnels into one graph).
#include <cstdio>
#include <vector>

#include "nexus/common/flags.hpp"
#include "nexus/common/stats.hpp"
#include "nexus/common/table.hpp"
#include "nexus/harness/experiment.hpp"
#include "nexus/hw/distribution.hpp"
#include "nexus/workloads/workloads.hpp"

using namespace nexus;
using namespace nexus::harness;

namespace {

BalanceReport stream_balance(const Trace& tr, hw::DistributionPolicy policy,
                             std::uint32_t tgs) {
  hw::Distributor d(policy, tgs);
  std::vector<std::uint64_t> bins(tgs, 0);
  for (const auto& t : tr.tasks())
    for (const auto& p : t.params) ++bins[d.target(p.addr)];
  return balance_report(bins);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv, {{"quick", "reduced grid"}});
  const bool quick = flags.get_bool("quick", false);
  constexpr std::uint32_t kTgs = 6;

  const std::vector<hw::DistributionPolicy> policies{
      hw::DistributionPolicy::kXorFold, hw::DistributionPolicy::kLowBits,
      hw::DistributionPolicy::kModulo};

  std::printf("Ablation: distribution function (6 task graphs)\n\n");
  for (const char* name : {"h264dec-2x2-10f", "gaussian-500"}) {
    const Trace tr = workloads::make_workload(name);
    const Tick base = ideal_baseline(tr);
    TextTable t({"policy", "max/mean load", "cv", "speedup@64c"});
    for (const auto policy : policies) {
      const BalanceReport b = stream_balance(tr, policy, kTgs);
      ManagerSpec spec = ManagerSpec::nexussharp(kTgs, 100.0);
      spec.sharp.distribution = policy;
      const double sp =
          quick ? 0.0
                : static_cast<double>(base) /
                      static_cast<double>(run_once(tr, spec, 64));
      t.add_row({to_string(policy), TextTable::num(b.max_over_mean, 2),
                 TextTable::num(b.cv, 3),
                 quick ? "-" : TextTable::num(sp, 2)});
    }
    std::printf("-- %s --\n", name);
    t.print();
    std::printf("\n");
  }
  std::printf("Reading: the XOR fold keeps per-graph load near-uniform on real\n"
              "address streams at 1-cycle cost; low-bits degenerates on strided\n"
              "layouts. Gaussian is the paper's declared worst case regardless\n"
              "of policy (serial pivot-row waves, Fig. 3(B)).\n");
  return 0;
}
