// Reproduces the Section IV-E micro-benchmark: "inserting 5 independent
// tasks, each with two parameters, Nexus# (with one task graph) consumes 78
// cycles compared to 172 cycles consumed in [19]" (the Task Superscalar
// FPGA prototype).
//
// We measure the cycle count from the first submission packet to the last
// ready write-back, across task-graph counts.
#include <cstdio>

#include "nexus/common/flags.hpp"
#include "nexus/common/table.hpp"
#include "nexus/nexussharp/nexussharp.hpp"
#include "nexus/nexuspp/nexuspp.hpp"
#include "nexus/runtime/simulation_driver.hpp"

using namespace nexus;

namespace {

Trace micro_trace() {
  Trace tr("micro-5x2");
  for (int i = 0; i < 5; ++i) {
    ParamList p;
    p.push_back({0x1000 + 0x100 * static_cast<Addr>(i), Dir::kIn});
    p.push_back({0x1040 + 0x100 * static_cast<Addr>(i), Dir::kOut});
    tr.submit(0, us(1), p);
  }
  tr.taskwait();
  return tr;
}

std::int64_t hw_cycles(Tick makespan, double mhz) {
  const ClockDomain clk(mhz);
  return clk.cycles_in(makespan - us(1));
}

}  // namespace

int main(int argc, char** argv) {
  (void)Flags(argc, argv, {});
  const Trace tr = micro_trace();
  constexpr double kMhz = 100.0;

  std::printf("Section IV-E micro-benchmark: 5 independent tasks, 2 params each\n"
              "(cycles from first packet to last ready write-back)\n\n");
  TextTable t({"design", "cycles", "reference"});
  for (const std::uint32_t tgs : {1u, 2u, 4u}) {
    NexusSharpConfig cfg;
    cfg.num_task_graphs = tgs;
    cfg.freq_mhz = kMhz;
    NexusSharp mgr(cfg);
    const RunResult r = run_trace(tr, mgr, RuntimeConfig{.workers = 5});
    t.add_row({"nexus# " + std::to_string(tgs) + " TG",
               TextTable::integer(hw_cycles(r.makespan, kMhz)),
               tgs == 1 ? "paper: 78" : ""});
  }
  {
    NexusPP mgr;
    const RunResult r = run_trace(tr, mgr, RuntimeConfig{.workers = 5});
    t.add_row({"nexus++", TextTable::integer(hw_cycles(r.makespan, kMhz)), ""});
  }
  t.add_row({"task superscalar [19]", "172", "from the literature"});
  t.print();
  std::printf("\n(Their prototype clocks at 150 MHz vs our 100 MHz test clock —\n"
              "the cycle-count comparison is the one the paper makes.)\n");
  return 0;
}
