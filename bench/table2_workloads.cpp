// Reproduces Table II: per-benchmark task counts, total work, average task
// size and parameter ranges, from the synthetic trace generators, printed
// next to the paper's values.
#include <cstdio>
#include <string>

#include "nexus/common/flags.hpp"
#include "nexus/common/table.hpp"
#include "nexus/task/trace_stats.hpp"
#include "nexus/workloads/workloads.hpp"

using namespace nexus;
using namespace nexus::workloads;

namespace {

struct PaperRow {
  const char* name;
  std::uint64_t tasks;
  double total_ms;
  double avg_us;
  const char* deps;
};

constexpr PaperRow kPaper[] = {
    {"c-ray", 1200, 7381, 6151, "1"},
    {"rot-cc", 16262, 8150, 501, "1"},
    {"sparselu", 54814, 38128, 696, "1-3"},
    {"streamcluster", 652776, 237908, 364, "1-3"},
    {"h264dec-1x1-10f", 139961, 640, 4.6, "2-6"},
    {"h264dec-2x2-10f", 35921, 550, 15.3, "2-6"},
    {"h264dec-4x4-10f", 9333, 519, 55.6, "2-6"},
    {"h264dec-8x8-10f", 2686, 510, 189.9, "2-6"},
};

}  // namespace

int main(int argc, char** argv) {
  (void)Flags(argc, argv, {});
  std::printf("Table II: benchmark durations (traces regenerated synthetically; "
              "see DESIGN.md)\n\n");
  TextTable t({"benchmark", "# tasks", "paper", "total work (ms)", "paper",
               "avg task (us)", "paper", "# deps", "paper"});
  for (const auto& row : kPaper) {
    const Trace tr = make_workload(row.name);
    const TraceStats s = compute_stats(tr);
    const std::string deps = std::to_string(s.min_params) +
                             (s.min_params == s.max_params
                                  ? ""
                                  : "-" + std::to_string(s.max_params));
    t.add_row({row.name, TextTable::integer(static_cast<long long>(s.num_tasks)),
               TextTable::integer(static_cast<long long>(row.tasks)),
               TextTable::num(s.total_work_ms(), 0), TextTable::num(row.total_ms, 0),
               TextTable::num(s.avg_task_us(), 1), TextTable::num(row.avg_us, 1),
               deps, row.deps});
  }
  t.print();
  return 0;
}
