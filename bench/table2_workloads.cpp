// Reproduces Table II: per-benchmark task counts, total work, average task
// size and parameter ranges, from the synthetic trace generators, printed
// next to the paper's values.
//
// With --json=<path> the binary additionally *runs* each selected workload
// against Nexus# (6 TGs at the Table I test frequency) with a telemetry
// registry attached and writes a JSON array of records
//   {bench, workload, manager, cores, makespan, speedup, metrics{...}}
// — the machine-readable seed for the BENCH_table2.json perf trajectory.
//
// With --trace=<path> it instead writes a Chrome trace (ui.perfetto.dev) of
// one run — sparselu (or the first --workloads entry) under Nexus# 6 TGs.
#include <cstdio>
#include <string>
#include <vector>

#include "nexus/common/flags.hpp"
#include "nexus/common/table.hpp"
#include "nexus/harness/experiment.hpp"
#include "nexus/task/trace_stats.hpp"
#include "nexus/workloads/workloads.hpp"

using namespace nexus;
using namespace nexus::workloads;

namespace {

struct PaperRow {
  const char* name;
  std::uint64_t tasks;
  double total_ms;
  double avg_us;
  const char* deps;
};

constexpr PaperRow kPaper[] = {
    {"c-ray", 1200, 7381, 6151, "1"},
    {"rot-cc", 16262, 8150, 501, "1"},
    {"sparselu", 54814, 38128, 696, "1-3"},
    {"streamcluster", 652776, 237908, 364, "1-3"},
    {"h264dec-1x1-10f", 139961, 640, 4.6, "2-6"},
    {"h264dec-2x2-10f", 35921, 550, 15.3, "2-6"},
    {"h264dec-4x4-10f", 9333, 519, 55.6, "2-6"},
    {"h264dec-8x8-10f", 2686, 510, 189.9, "2-6"},
};

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(
      argc, argv,
      {{"json", "write per-workload Nexus# run records to this file"},
       {"trace", "write a Chrome trace of one run to this file"},
       {"cores", "worker cores for the --json runs (default 32)"},
       {"workloads",
        "comma-separated subset of Table II workloads to run for --json "
        "(default: all)"}});
  std::printf("Table II: benchmark durations (traces regenerated synthetically; "
              "see DESIGN.md)\n\n");
  TextTable t({"benchmark", "# tasks", "paper", "total work (ms)", "paper",
               "avg task (us)", "paper", "# deps", "paper"});
  for (const auto& row : kPaper) {
    const Trace tr = make_workload(row.name);
    const TraceStats s = compute_stats(tr);
    const std::string deps = std::to_string(s.min_params) +
                             (s.min_params == s.max_params
                                  ? ""
                                  : "-" + std::to_string(s.max_params));
    t.add_row({row.name, TextTable::integer(static_cast<long long>(s.num_tasks)),
               TextTable::integer(static_cast<long long>(row.tasks)),
               TextTable::num(s.total_work_ms(), 0), TextTable::num(row.total_ms, 0),
               TextTable::num(s.avg_task_us(), 1), TextTable::num(row.avg_us, 1),
               deps, row.deps});
  }
  t.print();

  if (flags.has("trace")) {
    const std::vector<std::string> sel = split_csv(flags.get("workloads", ""));
    const std::string name = sel.empty() ? "sparselu" : sel.front();
    if (!is_workload(name)) {
      std::fprintf(stderr, "unknown workload: %s\n", name.c_str());
      return 2;
    }
    const auto c = static_cast<std::uint32_t>(flags.get_int("cores", 32));
    return harness::write_chrome_trace(make_workload(name),
                                       harness::ManagerSpec::nexussharp(6), c,
                                       {}, flags.get("trace", ""))
               ? 0
               : 2;
  }

  if (!flags.has("json")) return 0;

  // --json: measured runs with telemetry, one record per workload.
  const auto cores = static_cast<std::uint32_t>(flags.get_int("cores", 32));
  std::vector<std::string> selected = split_csv(flags.get("workloads", ""));
  if (selected.empty())
    for (const auto& row : kPaper) selected.push_back(row.name);

  const harness::ManagerSpec spec = harness::ManagerSpec::nexussharp(6);
  harness::BenchRecordWriter out;
  for (const auto& name : selected) {
    if (!is_workload(name)) {
      std::fprintf(stderr, "unknown workload: %s\n", name.c_str());
      return 2;
    }
    const Trace tr = make_workload(name);
    const Tick baseline = harness::ideal_baseline(tr);
    const harness::RunReport rep =
        harness::run_once_report(tr, spec, cores, {}, /*collect_metrics=*/true);
    out.append(harness::metrics_report_json(
        "table2", name, spec.label, cores, rep.result.makespan,
        rep.result.speedup_vs(baseline), rep.metrics.get()));
    std::printf("ran %-18s %8.2f ms makespan, %6.2fx speedup at %u cores\n",
                name.c_str(), to_ms(rep.result.makespan),
                rep.result.speedup_vs(baseline), cores);
  }
  std::printf("\n");
  return out.write(flags.get("json", "")) ? 0 : 2;
}
