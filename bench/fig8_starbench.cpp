// Reproduces Figure 8: speedups of the Starbench benchmarks (a) and the
// h264dec granularities (b) under four task managers: the no-overhead
// bound, Nanos (software RTS model, up to 32 cores — the paper's test
// machine), Nexus++ (100 MHz) and Nexus# (6 TGs at 55.56 MHz).
//
// Flags: --quick       cores {1,8,32,256}; skips streamcluster
//        --bench NAME  run a single benchmark
//        --csv         also emit CSV rows
//        --host-cost-us X  sensitivity: per-message host interface cost for
//                          the hardware managers (see DESIGN.md §5)
#include <cstdio>
#include <string>
#include <vector>

#include "nexus/common/flags.hpp"
#include "nexus/harness/experiment.hpp"
#include "nexus/workloads/workloads.hpp"

using namespace nexus;
using namespace nexus::harness;

int main(int argc, char** argv) {
  const Flags flags(argc, argv,
                    {{"quick", "reduced grid"},
                     {"bench", "single benchmark name"},
                     {"csv", "emit csv"},
                     {"host-cost-us", "per-message host cost in us (hw managers)"}});
  const bool quick = flags.get_bool("quick", false);
  const bool csv = flags.get_bool("csv", false);
  const double host_cost_us = flags.get_double("host-cost-us", 0.0);

  std::vector<std::string> benches{"c-ray",           "rot-cc",
                                   "sparselu",        "streamcluster",
                                   "h264dec-1x1-10f", "h264dec-2x2-10f",
                                   "h264dec-4x4-10f", "h264dec-8x8-10f"};
  if (flags.has("bench")) {
    benches = {flags.get("bench", "")};
  } else if (quick) {
    benches = {"c-ray", "rot-cc", "sparselu", "h264dec-1x1-10f", "h264dec-8x8-10f"};
  }
  const std::vector<std::uint32_t> cores =
      quick ? std::vector<std::uint32_t>{1, 8, 32, 256} : paper_cores_256();
  std::vector<std::uint32_t> nanos_cores;
  for (const std::uint32_t c : cores)
    if (c <= 32) nanos_cores.push_back(c);

  RuntimeConfig hw_rc;
  hw_rc.host_message_cost = us(host_cost_us);

  for (const auto& name : benches) {
    const Trace tr = workloads::make_workload(name);
    const Tick base = ideal_baseline(tr);
    std::fprintf(stderr, "[fig8] %s: %zu tasks, baseline %.1f ms\n", name.c_str(),
                 tr.num_tasks(), to_ms(base));

    std::vector<Series> series;
    series.push_back(sweep(tr, ManagerSpec::ideal(), cores, base));
    series.back().label = "no-overhead";
    series.push_back(sweep(tr, ManagerSpec::nanos_default(), nanos_cores, base));
    series.push_back(sweep(tr, ManagerSpec::nexuspp_default(), cores, base, hw_rc));
    series.push_back(sweep(tr, ManagerSpec::nexussharp(6), cores, base, hw_rc));

    print_series("Fig. 8: " + name, cores, series, csv);
    std::printf("max speedups: ");
    for (const auto& s : series)
      std::printf("%s=%.1f  ", s.label.c_str(), s.max_speedup());
    std::printf("\n");
  }
  return 0;
}
