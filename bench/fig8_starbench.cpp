// Reproduces Figure 8: speedups of the Starbench benchmarks (a) and the
// h264dec granularities (b) under four task managers: the no-overhead
// bound, Nanos (software RTS model, up to 32 cores — the paper's test
// machine), Nexus++ (100 MHz) and Nexus# (6 TGs at 55.56 MHz).
//
// Flags: --quick       cores {1,8,32,256}; skips streamcluster
//        --bench NAME  run a single benchmark
//        --csv         also emit CSV rows
//        --host-cost-us X  sensitivity: per-message host interface cost for
//                          the hardware managers (see DESIGN.md §5)
//        --json=PATH   instead of the figure tables, write machine-readable
//                      run records (Nexus++ and Nexus# 6 TGs, 8 and 32
//                      cores per benchmark) in the BENCH_*.json schema
//        --timeline    attach sampled sim-time timelines to --json records
#include <cstdio>
#include <string>
#include <vector>

#include "nexus/common/flags.hpp"
#include "nexus/harness/experiment.hpp"
#include "nexus/workloads/workloads.hpp"

using namespace nexus;
using namespace nexus::harness;

int main(int argc, char** argv) {
  const Flags flags(argc, argv,
                    {{"quick", "reduced grid"},
                     {"bench", "single benchmark name"},
                     {"csv", "emit csv"},
                     {"host-cost-us", "per-message host cost in us (hw managers)"},
                     {"json", "write BENCH-schema run records to this file"},
                     {"timeline", "attach sim-time timelines to --json records"}});
  const bool quick = flags.get_bool("quick", false);
  const bool csv = flags.get_bool("csv", false);
  const double host_cost_us = flags.get_double("host-cost-us", 0.0);

  std::vector<std::string> benches{"c-ray",           "rot-cc",
                                   "sparselu",        "streamcluster",
                                   "h264dec-1x1-10f", "h264dec-2x2-10f",
                                   "h264dec-4x4-10f", "h264dec-8x8-10f"};
  if (flags.has("bench")) {
    benches = {flags.get("bench", "")};
  } else if (quick) {
    benches = {"c-ray", "rot-cc", "sparselu", "h264dec-1x1-10f", "h264dec-8x8-10f"};
  }
  const std::vector<std::uint32_t> cores =
      quick ? std::vector<std::uint32_t>{1, 8, 32, 256} : paper_cores_256();
  std::vector<std::uint32_t> nanos_cores;
  for (const std::uint32_t c : cores)
    if (c <= 32) nanos_cores.push_back(c);

  RuntimeConfig hw_rc;
  hw_rc.host_message_cost = us(host_cost_us);

  if (flags.has("json")) {
    // Trajectory records: both hardware managers head-to-head per benchmark
    // at two core counts, with metrics and (optionally) timelines.
    const telemetry::TimelineConfig tcfg = bench_timeline_config();
    const telemetry::TimelineConfig* tl =
        flags.get_bool("timeline", false) ? &tcfg : nullptr;
    BenchRecordWriter out;
    for (const auto& name : benches) {
      const Trace tr = workloads::make_workload(name);
      const Tick base = ideal_baseline(tr);
      for (const ManagerSpec& spec :
           {ManagerSpec::nexuspp_default(), ManagerSpec::nexussharp(6)}) {
        for (const std::uint32_t c : {8u, 32u}) {
          const RunReport rep = run_once_report(tr, spec, c, hw_rc, true, tl);
          out.append(metrics_report_json("fig8", name, spec.label, c,
                                         rep.result.makespan,
                                         rep.result.speedup_vs(base),
                                         rep.metrics.get(), rep.timeline.get()));
          std::fprintf(stderr, "[fig8] %-18s %-22s %3u cores: %8.2f ms\n",
                       name.c_str(), spec.label.c_str(), c,
                       to_ms(rep.result.makespan));
        }
      }
    }
    return out.write(flags.get("json", "")) ? 0 : 2;
  }

  for (const auto& name : benches) {
    const Trace tr = workloads::make_workload(name);
    const Tick base = ideal_baseline(tr);
    std::fprintf(stderr, "[fig8] %s: %zu tasks, baseline %.1f ms\n", name.c_str(),
                 tr.num_tasks(), to_ms(base));

    std::vector<Series> series;
    series.push_back(sweep(tr, ManagerSpec::ideal(), cores, base));
    series.back().label = "no-overhead";
    series.push_back(sweep(tr, ManagerSpec::nanos_default(), nanos_cores, base));
    series.push_back(sweep(tr, ManagerSpec::nexuspp_default(), cores, base, hw_rc));
    series.push_back(sweep(tr, ManagerSpec::nexussharp(6), cores, base, hw_rc));

    print_series("Fig. 8: " + name, cores, series, csv);
    std::printf("max speedups: ");
    for (const auto& s : series)
      std::printf("%s=%.1f  ", s.label.c_str(), s.max_speedup());
    std::printf("\n");
  }
  return 0;
}
