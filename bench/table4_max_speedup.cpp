// Reproduces Table IV: maximum achieved speedup per benchmark under Nanos,
// Nexus++ and Nexus# (6 TGs at 55.56 MHz), printed next to the paper's
// numbers.
//
// By default the sweep uses the core counts where each curve plateaus
// (Nanos <= 32 cores, the hardware managers up to 256); --full sweeps the
// complete Fig. 8 axis, which takes several times longer and produces the
// same maxima.
#include <cstdio>
#include <string>
#include <vector>

#include "nexus/common/flags.hpp"
#include "nexus/common/table.hpp"
#include "nexus/harness/experiment.hpp"
#include "nexus/workloads/workloads.hpp"

using namespace nexus;
using namespace nexus::harness;

namespace {

struct PaperRow {
  const char* name;
  double nanos, npp, sharp;
};

constexpr PaperRow kPaper[] = {
    {"c-ray", 31.4, 60.4, 194.0},
    {"rot-cc", 24.5, 254.0, 254.0},
    {"sparselu", 24.5, 84.9, 94.4},
    {"streamcluster", 4.9, 7.9, 39.6},
    {"h264dec-1x1-10f", 0.7, 2.2, 6.9},
    {"h264dec-2x2-10f", 1.4, 2.7, 7.7},
    {"h264dec-4x4-10f", 3.6, 2.7, 6.8},
    {"h264dec-8x8-10f", 3.9, 2.5, 4.7},
};

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv, {{"full", "sweep the full Fig. 8 core axis"},
                                 {"quick", "tiny benchmark subset"}});
  const bool full = flags.get_bool("full", false);
  const bool quick = flags.get_bool("quick", false);

  const std::vector<std::uint32_t> hw_cores =
      full ? paper_cores_256() : std::vector<std::uint32_t>{32, 128, 256};
  const std::vector<std::uint32_t> sw_cores =
      full ? nanos_cores_32() : std::vector<std::uint32_t>{8, 16, 32};

  std::printf("Table IV: maximum scalability using the different task graph "
              "managers\n(measured vs paper)\n\n");
  TextTable t({"Benchmark", "Nanos", "paper", "Nexus++", "paper", "Nexus#",
               "paper"});
  for (const auto& row : kPaper) {
    if (quick && std::string(row.name) == "streamcluster") continue;
    const Trace tr = workloads::make_workload(row.name);
    const Tick base = ideal_baseline(tr);
    std::fprintf(stderr, "[table4] %s...\n", row.name);
    const double nanos =
        sweep(tr, ManagerSpec::nanos_default(), sw_cores, base).max_speedup();
    const double npp =
        sweep(tr, ManagerSpec::nexuspp_default(), hw_cores, base).max_speedup();
    const double sharp =
        sweep(tr, ManagerSpec::nexussharp(6), hw_cores, base).max_speedup();
    t.add_row({row.name, TextTable::num(nanos, 1), TextTable::num(row.nanos, 1),
               TextTable::num(npp, 1), TextTable::num(row.npp, 1),
               TextTable::num(sharp, 1), TextTable::num(row.sharp, 1)});
  }
  t.print();
  std::printf(
      "\nKnown deviation: the paper's Nexus++ column behaves as if it includes\n"
      "host-integration overheads (c-ray: 1200 independent 6 ms tasks reach\n"
      "only 60.4x); our pure-hardware Nexus++ tracks the ideal curve there.\n"
      "Run fig8_starbench --host-cost-us 30 for the sensitivity study.\n");
  return 0;
}
