// Ablation: open-loop serving — saturation knee and tail latency under an
// arrival process, per topology x manager.
//
// Every other bench is closed-loop (replay a fixed trace, report makespan).
// This one drives the runtime open-loop: Poisson (or bursty/diurnal)
// arrivals from N logical clients at an offered rate, judged on the p99
// serving latency (release -> finish). Per topology x manager combination
// it bisects for the saturation knee — the highest arrival rate whose p99
// stays under a latency budget — then measures the full quantile profile at
// 50/80/95% of the knee and at the knee itself. The committed
// BENCH_serving.json rows carry the knee as a serving/knee_hz gauge, which
// nexus-perfdiff gates on (a knee collapse or a p99 regression fails CI
// even when no makespan moved).
//
// Flags: --quick         smaller grid + fewer arrivals (the CI configuration)
//        --process=NAME  arrival process: poisson | bursty | diurnal
//        --kernel=NAME   donor workload kernel (durations + param shapes)
//        --clients=N     logical clients
//        --tasks=N       arrivals per measured run
//        --cores=N       worker cores
//        --tgs=N         Nexus# task-graph count
//        --budget-us=B   p99 budget in microseconds (default 25x the mean
//                        task duration)
//        --csv           emit CSV rows
//        --json=PATH     write BENCH-schema run records
//        --timeline      attach sampled sim-time timelines to --json records
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "nexus/common/flags.hpp"
#include "nexus/common/table.hpp"
#include "nexus/harness/serving.hpp"
#include "nexus/workloads/workloads.hpp"

using namespace nexus;
using namespace nexus::harness;

namespace {

/// The knee-relative operating points every combination is measured at.
struct OperatingPoint {
  const char* label;
  double fraction;
};
constexpr OperatingPoint kPoints[] = {
    {"@50%", 0.50}, {"@80%", 0.80}, {"@95%", 0.95}, {"@knee", 1.00}};

ManagerSpec manager_with_noc(const ManagerSpec& base, noc::TopologyKind kind) {
  ManagerSpec spec = base;
  if (spec.kind == ManagerSpec::Kind::kNexusSharp) spec.sharp.noc.kind = kind;
  if (spec.kind == ManagerSpec::Kind::kNexusPP) spec.npp.noc.kind = kind;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(
      argc, argv,
      {{"quick", "smaller grid and fewer arrivals (CI configuration)"},
       {"process", "arrival process: poisson | bursty | diurnal"},
       {"kernel", "donor workload kernel (default gaussian-250)"},
       {"clients", "logical clients (default 16)"},
       {"tasks", "arrivals per measured run"},
       {"cores", "worker cores"},
       {"tgs", "Nexus# task-graph count"},
       {"budget-us", "p99 serving-latency budget in microseconds"},
       {"csv", "emit csv"},
       {"json", "write BENCH-schema run records to this file"},
       {"timeline", "attach sim-time timelines to --json records"}});
  const bool quick = flags.get_bool("quick", false);

  workloads::ArrivalConfig cfg;
  if (!workloads::arrival_process_from(flags.get("process", "poisson"),
                                       &cfg.process)) {
    std::fprintf(stderr, "unknown arrival process: %s\n",
                 flags.get("process", "").c_str());
    return 2;
  }
  cfg.kernel = flags.get("kernel", quick ? "h264dec-8x8-10f" : "gaussian-250");
  if (!workloads::is_workload(cfg.kernel)) {
    std::fprintf(stderr, "unknown kernel: %s\n", cfg.kernel.c_str());
    return 2;
  }
  cfg.clients =
      static_cast<std::uint32_t>(flags.get_int("clients", quick ? 8 : 16));
  cfg.tasks =
      static_cast<std::uint64_t>(flags.get_int("tasks", quick ? 600 : 2000));
  const auto cores =
      static_cast<std::uint32_t>(flags.get_int("cores", quick ? 16 : 32));
  const auto tgs = static_cast<std::uint32_t>(flags.get_int("tgs", 4));

  // Mean task duration of the serving mix sets both the capacity estimate
  // (bracket start) and the default latency budget. The donor mix is
  // rate-independent, so one throwaway schedule suffices.
  const Trace probe_trace =
      workloads::make_serving_trace(workloads::generate_arrivals(cfg));
  Tick total_work = 0;
  for (std::size_t i = 0; i < probe_trace.num_tasks(); ++i)
    total_work += probe_trace.task(static_cast<TaskId>(i)).duration;
  const double mean_task_ps = static_cast<double>(total_work) /
                              static_cast<double>(probe_trace.num_tasks());
  const double capacity_hz = static_cast<double>(cores) / (mean_task_ps * 1e-12);

  KneeSearch search;
  const double budget_us = flags.get_double("budget-us", 0.0);
  search.p99_budget_ps = budget_us > 0.0
                             ? static_cast<Tick>(us(budget_us))
                             : static_cast<Tick>(25.0 * mean_task_ps);
  search.lo_hz = 0.05 * capacity_hz;
  search.bisect_iters = quick ? 7 : 10;

  std::printf("Ablation: open-loop serving (%s arrivals, %s donor, %u clients, "
              "%llu tasks, %u cores)\n",
              workloads::to_string(cfg.process), cfg.kernel.c_str(),
              cfg.clients, static_cast<unsigned long long>(cfg.tasks), cores);
  std::printf("p99 budget %.1f us, core capacity ~%.0f k tasks/s\n\n",
              static_cast<double>(search.p99_budget_ps) * 1e-6,
              capacity_hz * 1e-3);

  const std::vector<noc::TopologyKind> kinds =
      quick ? std::vector<noc::TopologyKind>{noc::TopologyKind::kIdeal,
                                             noc::TopologyKind::kMesh}
            : std::vector<noc::TopologyKind>{noc::TopologyKind::kIdeal,
                                             noc::TopologyKind::kMesh,
                                             noc::TopologyKind::kTorus};
  const std::vector<ManagerSpec> managers = {ManagerSpec::nexussharp(tgs),
                                             ManagerSpec::nexuspp_default()};

  const telemetry::TimelineConfig tcfg = bench_timeline_config();
  const telemetry::TimelineConfig* tl =
      flags.get_bool("timeline", false) ? &tcfg : nullptr;
  const bool json = flags.has("json");
  BenchRecordWriter out;

  TextTable table({"topology", "manager", "knee (k/s)", "point",
                   "offered (k/s)", "p50 (us)", "p99 (us)", "p999 (us)"});
  for (const noc::TopologyKind kind : kinds) {
    for (const ManagerSpec& mgr : managers) {
      const ManagerSpec spec = manager_with_noc(mgr, kind);
      RuntimeConfig rc;
      rc.noc.kind = kind;

      const KneeResult knee = find_knee(cfg, search, spec, cores, rc);
      if (knee.knee_hz <= 0.0) {
        std::fprintf(stderr,
                     "[serving] %-5s %-20s: budget unattainable at %.0f /s\n",
                     noc::to_string(kind), spec.label.c_str(), search.lo_hz);
        continue;
      }
      std::fprintf(stderr,
                   "[serving] %-5s %-20s: knee %8.1f k tasks/s "
                   "(%u probes%s)\n",
                   noc::to_string(kind), spec.label.c_str(),
                   knee.knee_hz * 1e-3, knee.probes,
                   knee.bracketed ? "" : ", unbracketed lower bound");

      const std::vector<ServingGauge> gauges = {
          {"serving/knee_hz", std::llround(knee.knee_hz)}};
      for (const OperatingPoint& op : kPoints) {
        const double rate = knee.knee_hz * op.fraction;
        const ServingPoint p =
            run_serving(cfg, rate, spec, cores, rc, tl, gauges);
        table.add_row({noc::to_string(kind), spec.label,
                       TextTable::num(knee.knee_hz * 1e-3, 1), op.label,
                       TextTable::num(p.offered_hz * 1e-3, 1),
                       TextTable::num(p.p50_ps * 1e-6, 1),
                       TextTable::num(p.p99_ps * 1e-6, 1),
                       TextTable::num(p.p999_ps * 1e-6, 1)});
        if (json) {
          // The workload label is knee-relative (never an absolute rate) so
          // the perfdiff join survives knee shifts between code versions;
          // the "speedup" slot reports the sustained fraction
          // accepted_hz/offered_hz (1.0 = keeping up with the load).
          const std::string label = std::string("serving-") +
                                    workloads::to_string(cfg.process) + "-" +
                                    cfg.kernel + op.label;
          out.append(metrics_report_json(
              "ablation_serving", label, spec.label, cores, p.makespan,
              p.offered_hz > 0.0 ? p.accepted_hz / p.offered_hz : 0.0,
              p.report.metrics.get(), p.report.timeline.get(),
              p.report.topology, p.report.placement));
        }
      }
    }
  }

  table.print();
  if (flags.get_bool("csv", false)) std::fputs(table.csv().c_str(), stdout);
  std::printf(
      "\nReading: the knee is the highest offered rate whose p99 serving\n"
      "latency (arrival -> completion) meets the budget; it is the bench's\n"
      "capacity claim for that topology/manager pair. Below the knee the\n"
      "tail grows smoothly with load; past it the admission backlog\n"
      "compounds and p99 diverges, which is why the gate bisects on p99\n"
      "rather than throughput (accepted always converges to offered until\n"
      "saturation).\n");
  if (json) return out.write(flags.get("json", "")) ? 0 : 2;
  return 0;
}
