// DES kernel throughput: events/sec of the binary-heap and calendar-queue
// schedulers on (a) a synthetic hold-model event storm and (b) Table-II
// workload runs through the full Nexus# stack.
//
// The storm is a PHOLD-style hold model: a fixed in-flight population of
// events, each handled event scheduling exactly one successor at a seeded
// random delay (mostly uniform, with same-tick bursts and far-future
// stragglers mixed in, so the calendar queue's tie-break, bucket rotation
// and sweep paths are all on the measured path). Both queue kinds replay
// the identical event stream — the bench cross-checks makespan, event count
// and an order-sensitive checksum between them, so a speedup number from a
// queue that reordered events can never be reported.
//
// With --json=<path> it writes BENCH_simspeed.json records: one row per
// (workload, queue kind), manager "kernel-heap"/"kernel-calendar", the
// deterministic sim makespan (perfdiff gates it tightly), and wall-clock
// metrics simspeed/events_per_sec + simspeed/wall_us (gated
// improvement-only with a generous tolerance — wall clock is machine-
// dependent). The record's "speedup" field is events/sec relative to the
// binary-heap row of the same workload.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "nexus/common/flags.hpp"
#include "nexus/common/rng.hpp"
#include "nexus/common/table.hpp"
#include "nexus/harness/experiment.hpp"
#include "nexus/sim/event_queue.hpp"
#include "nexus/sim/simulation.hpp"
#include "nexus/telemetry/profile_export.hpp"
#include "nexus/telemetry/profiler.hpp"
#include "nexus/telemetry/registry.hpp"
#include "nexus/workloads/workloads.hpp"

using namespace nexus;

namespace {

constexpr Tick kMeanDelay = 20000;  // ~2 cycles at 100 MHz

/// Hold-model component: every event schedules exactly one successor, so
/// the in-flight population (and therefore the pending-queue size) stays
/// constant at whatever the priming pass injected.
class StormCore final : public Component {
 public:
  StormCore(std::uint64_t seed, std::uint32_t ncomp, std::uint64_t* checksum)
      : rng_(seed), ncomp_(ncomp), checksum_(checksum) {}

  void handle(Simulation& sim, const Event& ev) override {
    // Order-sensitive checksum: multiplying the running value in ties the
    // result to the exact pop order, not just the popped multiset.
    *checksum_ = (*checksum_ * 0x9E3779B97F4A7C15ULL) ^
                 static_cast<std::uint64_t>(ev.t) ^ (ev.a << 17);
    // Draws hoisted: the certified stream must not depend on argument
    // evaluation order (same discipline as determinism_test).
    const std::uint64_t sel = rng_.below(128);
    const Tick delay = sel < 6    ? 0                       // same-tick burst
                       : sel < 8  ? 100 * kMeanDelay        // straggler
                                  : static_cast<Tick>(rng_.below(2 * kMeanDelay));
    const auto dest = static_cast<std::uint32_t>(rng_.below(ncomp_));
    sim.schedule_in(delay, dest, ev.op, ev.a + 1);
  }

 private:
  Xoshiro256 rng_;
  std::uint32_t ncomp_;
  std::uint64_t* checksum_;
};

struct StormResult {
  Tick makespan = 0;
  std::uint64_t events = 0;
  std::uint64_t checksum = 0;
  double wall_us = 0.0;
  double events_per_sec = 0.0;
};

/// The schema-4 host-time fields: where the simulator's own wall clock
/// went during a profiled re-run, total (inclusive) ns per kernel phase.
/// Folded into BENCH records as prof/* gauges — report-only perfdiff
/// watches, because wall time tracks the machine, not the code under test.
struct HostProfile {
  std::uint64_t push_ns = 0;
  std::uint64_t pop_ns = 0;
  std::uint64_t handle_ns = 0;
  std::uint64_t total_ns = 0;
};

HostProfile host_profile_from(const telemetry::ProfileData& d) {
  HostProfile h;
  if (const auto* n = d.find("queue;push")) h.push_ns = n->total_ns;
  if (const auto* n = d.find("queue;pop")) h.pop_ns = n->total_ns;
  if (const auto* n = d.find("handle")) h.handle_ns = n->total_ns;
  if (!d.nodes.empty()) h.total_ns = d.nodes[0].total_ns;
  return h;
}

StormResult run_storm(QueueKind kind, std::uint64_t n_events,
                      std::uint64_t inflight, std::uint32_t ncomp,
                      std::uint64_t seed,
                      telemetry::ProfileData* profile_out = nullptr) {
  Simulation sim(kind);
  telemetry::Profiler prof;
  if (profile_out != nullptr) sim.bind_profiler(prof);
  std::uint64_t checksum = 0x6E78757353696D21ULL;
  std::vector<StormCore> cores;
  cores.reserve(ncomp);
  for (std::uint32_t i = 0; i < ncomp; ++i)
    cores.emplace_back(seed ^ (0x1000 + i), ncomp, &checksum);
  for (auto& c : cores) sim.add_component(&c);

  Xoshiro256 prime(seed);
  for (std::uint64_t i = 0; i < inflight; ++i) {
    const Tick t = static_cast<Tick>(prime.below(2 * kMeanDelay));
    const auto dest = static_cast<std::uint32_t>(prime.below(ncomp));
    sim.schedule(t, dest, /*op=*/0, /*a=*/i);
  }

  const auto t0 = std::chrono::steady_clock::now();
  sim.run_some(n_events);
  const auto t1 = std::chrono::steady_clock::now();

  StormResult r;
  r.makespan = sim.now();
  r.events = sim.events_processed();
  r.checksum = checksum;
  r.wall_us =
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
          t1 - t0)
          .count();
  r.events_per_sec = r.wall_us > 0.0 ? static_cast<double>(r.events) /
                                           (r.wall_us * 1e-6)
                                     : 0.0;
  if (profile_out != nullptr) *profile_out = prof.freeze();
  return r;
}

struct TraceResult {
  Tick makespan = 0;
  std::uint64_t events = 0;
  double wall_us = 0.0;
  double events_per_sec = 0.0;
};

TraceResult run_workload(QueueKind kind, const Trace& tr, std::uint32_t cores,
                         telemetry::ProfileData* profile_out = nullptr) {
  set_default_queue_kind(kind);  // run_trace builds its Simulation internally
  const harness::ManagerSpec spec = harness::ManagerSpec::nexussharp(6);
  NexusSharp mgr(spec.sharp);
  telemetry::Profiler prof;
  RuntimeConfig rc;
  rc.workers = cores;
  if (profile_out != nullptr) rc.profiler = &prof;
  const auto t0 = std::chrono::steady_clock::now();
  const RunResult res = run_trace(tr, mgr, rc);
  const auto t1 = std::chrono::steady_clock::now();
  TraceResult r;
  r.makespan = res.makespan;
  r.events = res.events;
  r.wall_us =
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
          t1 - t0)
          .count();
  r.events_per_sec =
      r.wall_us > 0.0 ? static_cast<double>(r.events) / (r.wall_us * 1e-6) : 0.0;
  if (profile_out != nullptr) *profile_out = prof.freeze();
  return r;
}

/// One BENCH record: the deterministic makespan plus wall-clock gauges.
/// A non-null `host` (from a --prof re-run) folds the schema-4 host-time
/// fields in as prof/* gauges.
std::string record(const std::string& workload, QueueKind kind,
                   std::uint32_t cores, Tick makespan, std::uint64_t events,
                   double wall_us, double events_per_sec, double speedup,
                   const HostProfile* host = nullptr) {
  telemetry::MetricRegistry reg;
  reg.gauge("simspeed/events").set(static_cast<std::int64_t>(events));
  reg.gauge("simspeed/events_per_sec")
      .set(static_cast<std::int64_t>(events_per_sec));
  reg.gauge("simspeed/wall_us").set(static_cast<std::int64_t>(wall_us));
  if (host != nullptr) {
    reg.gauge("prof/push_ns").set(static_cast<std::int64_t>(host->push_ns));
    reg.gauge("prof/pop_ns").set(static_cast<std::int64_t>(host->pop_ns));
    reg.gauge("prof/handle_ns").set(static_cast<std::int64_t>(host->handle_ns));
    reg.gauge("prof/total_ns").set(static_cast<std::int64_t>(host->total_ns));
  }
  const telemetry::Snapshot snap = reg.snapshot();
  const std::string manager = std::string("kernel-") + to_string(kind);
  return harness::metrics_report_json("simspeed", workload, manager, cores,
                                      makespan, speedup, &snap);
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(
      argc, argv,
      {{"events", "storm events to process (default 1000000)"},
       {"inflight", "storm in-flight event population (default 1048576)"},
       {"components", "storm component count (default 256)"},
       {"seed", "storm rng seed (default 42)"},
       {"workloads",
        "comma-separated Table II workloads to time through run_trace "
        "(default sparselu,h264dec-8x8-10f; \"none\" to skip)"},
       {"cores", "worker cores for the workload runs (default 32)"},
       {"min-speedup",
        "fail (exit 1) unless calendar/heap events/sec on the storm reaches "
        "this ratio (default 0 = report only)"},
       {"prof",
        "profiled re-run per row: fold prof/*_ns host-time gauges into "
        "--json records (report-only perfdiff watches) and print self-time "
        "tables"},
       {"max-overhead-pct",
        "fail (exit 1) if the attached-profiler wall-clock overhead on the "
        "gaussian-250 smoke exceeds this percentage (min-of-3 walls per "
        "side; default 0 = report only, requires --prof)"},
       {"json", "write BENCH_simspeed.json records to this file"}});

  const auto n_events = static_cast<std::uint64_t>(flags.get_int("events", 1000000));
  const auto inflight = static_cast<std::uint64_t>(flags.get_int("inflight", 1048576));
  const auto ncomp = static_cast<std::uint32_t>(flags.get_int("components", 256));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const auto cores = static_cast<std::uint32_t>(flags.get_int("cores", 32));
  const bool prof_mode = flags.get_bool("prof", false);
  const QueueKind saved_default = default_queue_kind();

  std::printf("simspeed: DES kernel throughput, heap vs calendar\n\n");
  const std::string storm_label = "storm-" + std::to_string(n_events);
  harness::BenchRecordWriter out;

  // --- synthetic storm ---
  const StormResult heap = run_storm(QueueKind::kBinaryHeap, n_events,
                                     inflight, ncomp, seed);
  const StormResult cal = run_storm(QueueKind::kCalendar, n_events, inflight,
                                    ncomp, seed);
  if (heap.makespan != cal.makespan || heap.events != cal.events ||
      heap.checksum != cal.checksum) {
    std::fprintf(stderr,
                 "FATAL: queue implementations diverged on the storm "
                 "(makespan %lld vs %lld, events %llu vs %llu, checksum "
                 "%016llx vs %016llx)\n",
                 static_cast<long long>(heap.makespan),
                 static_cast<long long>(cal.makespan),
                 static_cast<unsigned long long>(heap.events),
                 static_cast<unsigned long long>(cal.events),
                 static_cast<unsigned long long>(heap.checksum),
                 static_cast<unsigned long long>(cal.checksum));
    return 2;
  }
  const double storm_speedup =
      heap.events_per_sec > 0.0 ? cal.events_per_sec / heap.events_per_sec : 0.0;

  TextTable t({"workload", "queue", "events", "wall (ms)", "events/sec",
               "vs heap"});
  auto add = [&t](const std::string& wl, const char* queue, std::uint64_t ev,
                  double wall_us, double eps, double ratio) {
    t.add_row({wl, queue, TextTable::integer(static_cast<long long>(ev)),
               TextTable::num(wall_us * 1e-3, 2),
               TextTable::integer(static_cast<long long>(eps)),
               TextTable::num(ratio, 2)});
  };
  add(storm_label, "heap", heap.events, heap.wall_us, heap.events_per_sec, 1.0);
  add(storm_label, "calendar", cal.events, cal.wall_us, cal.events_per_sec,
      storm_speedup);

  // Profiled re-runs attribute the measured wall time; the *measurement*
  // rows above stay detached so attribution never taxes the headline
  // events/sec numbers.
  HostProfile heap_host, cal_host;
  if (prof_mode) {
    telemetry::ProfileData dh, dc;
    run_storm(QueueKind::kBinaryHeap, n_events, inflight, ncomp, seed, &dh);
    run_storm(QueueKind::kCalendar, n_events, inflight, ncomp, seed, &dc);
    heap_host = host_profile_from(dh);
    cal_host = host_profile_from(dc);
    std::printf("--- %s kernel-calendar self-time (profiled re-run) ---\n%s\n",
                storm_label.c_str(),
                telemetry::profile_top_table(dc, 10).c_str());
  }
  out.append(record(storm_label, QueueKind::kBinaryHeap, 1, heap.makespan,
                    heap.events, heap.wall_us, heap.events_per_sec, 1.0,
                    prof_mode ? &heap_host : nullptr));
  out.append(record(storm_label, QueueKind::kCalendar, 1, cal.makespan,
                    cal.events, cal.wall_us, cal.events_per_sec, storm_speedup,
                    prof_mode ? &cal_host : nullptr));

  // --- Table II workloads through the full stack ---
  std::vector<std::string> selected =
      split_csv(flags.get("workloads", "sparselu,h264dec-8x8-10f"));
  if (selected.size() == 1 && selected[0] == "none") selected.clear();
  for (const auto& name : selected) {
    if (!workloads::is_workload(name)) {
      std::fprintf(stderr, "unknown workload: %s\n", name.c_str());
      return 2;
    }
    const Trace tr = workloads::make_workload(name);
    const TraceResult h = run_workload(QueueKind::kBinaryHeap, tr, cores);
    const TraceResult c = run_workload(QueueKind::kCalendar, tr, cores);
    if (h.makespan != c.makespan || h.events != c.events) {
      std::fprintf(stderr, "FATAL: queue implementations diverged on %s\n",
                   name.c_str());
      return 2;
    }
    const double ratio =
        h.events_per_sec > 0.0 ? c.events_per_sec / h.events_per_sec : 0.0;
    add(name, "heap", h.events, h.wall_us, h.events_per_sec, 1.0);
    add(name, "calendar", c.events, c.wall_us, c.events_per_sec, ratio);
    HostProfile h_host, c_host;
    if (prof_mode) {
      telemetry::ProfileData dh, dc;
      run_workload(QueueKind::kBinaryHeap, tr, cores, &dh);
      run_workload(QueueKind::kCalendar, tr, cores, &dc);
      h_host = host_profile_from(dh);
      c_host = host_profile_from(dc);
      std::printf("--- %s kernel-calendar self-time (profiled re-run) ---\n%s\n",
                  name.c_str(), telemetry::profile_top_table(dc, 10).c_str());
    }
    out.append(record(name, QueueKind::kBinaryHeap, cores, h.makespan,
                      h.events, h.wall_us, h.events_per_sec, 1.0,
                      prof_mode ? &h_host : nullptr));
    out.append(record(name, QueueKind::kCalendar, cores, c.makespan, c.events,
                      c.wall_us, c.events_per_sec, ratio,
                      prof_mode ? &c_host : nullptr));
  }
  set_default_queue_kind(saved_default);

  t.print();
  std::printf("\nstorm cross-check: makespan %lld, checksum %016llx — "
              "identical under both queues\n",
              static_cast<long long>(cal.makespan),
              static_cast<unsigned long long>(cal.checksum));
  std::printf("storm calendar speedup: %.2fx over the binary heap "
              "(%llu in-flight)\n",
              storm_speedup, static_cast<unsigned long long>(inflight));

  int rc = 0;
  const double min_speedup = flags.get_double("min-speedup", 0.0);
  if (min_speedup > 0.0 && storm_speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: storm speedup %.2fx < required %.2fx\n",
                 storm_speedup, min_speedup);
    rc = 1;
  }

  // Attached-overhead smoke: the profiler's whole value proposition is that
  // leaving it attached is cheap. Min-of-3 walls per side on the fig9
  // workload (gaussian-250, full Nexus# stack) filters scheduler noise —
  // the *minimum* wall is the least-perturbed run each side achieved.
  const double max_overhead = flags.get_double("max-overhead-pct", 0.0);
  if (prof_mode) {
    const Trace smoke = workloads::make_workload("gaussian-250");
    double detached_us = 0.0, attached_us = 0.0;
    for (int i = 0; i < 3; ++i) {
      const double d = run_workload(QueueKind::kCalendar, smoke, 8).wall_us;
      telemetry::ProfileData unused;
      const double a =
          run_workload(QueueKind::kCalendar, smoke, 8, &unused).wall_us;
      if (detached_us == 0.0 || d < detached_us) detached_us = d;
      if (attached_us == 0.0 || a < attached_us) attached_us = a;
    }
    const double overhead_pct =
        detached_us > 0.0 ? (attached_us - detached_us) / detached_us * 100.0
                          : 0.0;
    std::printf("profiler overhead smoke (gaussian-250, min of 3): "
                "detached %.2f ms, attached %.2f ms, overhead %.1f%%\n",
                detached_us * 1e-3, attached_us * 1e-3, overhead_pct);
    if (max_overhead > 0.0 && overhead_pct > max_overhead) {
      std::fprintf(stderr, "FAIL: profiler overhead %.1f%% > allowed %.1f%%\n",
                   overhead_pct, max_overhead);
      rc = 1;
    }
  }
  if (flags.has("json") && !out.write(flags.get("json", ""))) rc = 2;
  return rc;
}
