// Reproduces Figure 7: scalability of Nexus# on the h264dec benchmark while
// varying the number of task graphs (1, 2, 4, 6, 8), for all four
// macroblock-grouping granularities, against the no-overhead curve.
//
//   (a) every configuration clocked at 100 MHz (pure TG-count scaling)
//   (b) every configuration clocked at its Table I test frequency
//       (the realistic design points; larger configs clock slower)
//
// Flags: --quick        granularities 1x1 and 8x8 only, cores {1,8,64,256}
//        --csv          also emit CSV rows
//        --granularity  restrict to one of 1,2,4,8
//        --json=PATH    instead of the figure tables, write machine-readable
//                       run records (Nexus# 1/6 TGs at test frequency, 8 and
//                       32 cores per granularity) in the BENCH_*.json schema
//        --timeline     attach sampled sim-time timelines to --json records
//        --trace=PATH   instead of the figure tables, write a Chrome trace
//                       (ui.perfetto.dev) of one representative run —
//                       h264dec-8x8-10f under Nexus# 6 TGs on 32 cores
#include <cstdio>
#include <string>
#include <vector>

#include "nexus/common/flags.hpp"
#include "nexus/harness/experiment.hpp"
#include "nexus/workloads/workloads.hpp"

using namespace nexus;
using namespace nexus::harness;

int main(int argc, char** argv) {
  const Flags flags(argc, argv,
                    {{"quick", "reduced grid"},
                     {"csv", "emit csv"},
                     {"granularity", "only this macroblock grouping (1/2/4/8)"},
                     {"json", "write BENCH-schema run records to this file"},
                     {"timeline", "attach sim-time timelines to --json records"},
                     {"trace", "write a Chrome trace of one run to this file"}});
  const bool quick = flags.get_bool("quick", false);
  const bool csv = flags.get_bool("csv", false);

  std::vector<int> groups{1, 2, 4, 8};
  if (flags.has("granularity")) {
    groups = {static_cast<int>(flags.get_int("granularity", 1))};
  } else if (quick) {
    groups = {1, 8};
  }

  if (flags.has("trace")) {
    // One representative lifecycle trace: the paper's best configuration
    // (6 TGs at its Table I test frequency) on the coarsest granularity.
    return write_chrome_trace(
               workloads::make_h264dec(workloads::h264_config(8)),
               ManagerSpec::nexussharp(6), 32, {}, flags.get("trace", ""))
               ? 0
               : 2;
  }

  if (flags.has("json")) {
    // Trajectory records: the TG-scaling claim distilled to its endpoints
    // (1 TG vs the paper's best 6-TG point) at two core counts per
    // granularity, with metrics and (optionally) timelines attached.
    const telemetry::TimelineConfig tcfg = bench_timeline_config();
    const telemetry::TimelineConfig* tl =
        flags.get_bool("timeline", false) ? &tcfg : nullptr;
    BenchRecordWriter out;
    for (const int g : groups) {
      const Trace tr = workloads::make_h264dec(workloads::h264_config(g));
      const Tick base = ideal_baseline(tr);
      char wl[32];
      std::snprintf(wl, sizeof wl, "h264dec-%dx%d-10f", g, g);
      for (const std::uint32_t tgs : {1u, 6u}) {
        const ManagerSpec spec = ManagerSpec::nexussharp(tgs);
        for (const std::uint32_t c : {8u, 32u}) {
          const RunReport rep = run_once_report(tr, spec, c, {}, true, tl);
          out.append(metrics_report_json("fig7", wl, spec.label, c,
                                         rep.result.makespan,
                                         rep.result.speedup_vs(base),
                                         rep.metrics.get(), rep.timeline.get()));
          std::fprintf(stderr, "[fig7] %s %s %3u cores: %8.2f ms\n", wl,
                       spec.label.c_str(), c, to_ms(rep.result.makespan));
        }
      }
    }
    return out.write(flags.get("json", "")) ? 0 : 2;
  }
  const std::vector<std::uint32_t> cores =
      quick ? std::vector<std::uint32_t>{1, 8, 64, 256} : paper_cores_256();
  const std::vector<std::uint32_t> tg_counts{1, 2, 4, 6, 8};

  for (const int g : groups) {
    const Trace tr = workloads::make_h264dec(workloads::h264_config(g));
    const Tick base = ideal_baseline(tr);
    std::fprintf(stderr, "[fig7] h264dec-%dx%d-10f: %zu tasks, baseline %.1f ms\n",
                 g, g, tr.num_tasks(), to_ms(base));

    for (const bool fixed_100mhz : {true, false}) {
      std::vector<Series> series;
      series.push_back(sweep(tr, ManagerSpec::ideal(), cores, base));
      series.back().label = "no-overhead";
      for (const std::uint32_t tgs : tg_counts) {
        const ManagerSpec spec =
            ManagerSpec::nexussharp(tgs, fixed_100mhz ? 100.0 : 0.0);
        series.push_back(sweep(tr, spec, cores, base));
      }
      char title[128];
      std::snprintf(title, sizeof title,
                    "Fig. 7(%c): h264dec-%dx%d-10f speedup, Nexus# %s",
                    fixed_100mhz ? 'a' : 'b', g, g,
                    fixed_100mhz ? "at 100 MHz" : "at Table I test frequencies");
      print_series(title, cores, series, csv);
    }
  }

  std::printf("\nPaper's reading: ~7x on the finest tasks with 6 TGs; 4/6/8 TGs "
              "nearly tie,\nand at test frequencies 6 TGs remains the best "
              "configuration (Section VI).\n");
  return 0;
}
