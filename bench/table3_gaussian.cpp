// Reproduces Table III: Gaussian-elimination task counts and average task
// weights (FLOPs and microseconds at 2 GFLOPS) for the four matrix sizes.
#include <cstdio>

#include "nexus/common/flags.hpp"
#include "nexus/common/table.hpp"
#include "nexus/task/trace_stats.hpp"
#include "nexus/workloads/workloads.hpp"

using namespace nexus;
using namespace nexus::workloads;

int main(int argc, char** argv) {
  const Flags flags(argc, argv,
                    {{"skip-3000", "skip generating the 4.5M-task trace"}});
  std::printf("Table III: Gaussian elimination tasks for different matrix sizes\n\n");
  TextTable t({"Matrix dim", "# tasks", "paper", "avg FLOPs", "paper",
               "avg us", "paper"});
  struct PaperRow {
    int n;
    std::uint64_t tasks;
    double flops, usec;
  };
  const PaperRow paper[] = {{250, 31374, 167, 0.084},
                            {500, 125249, 334, 0.167},
                            {1000, 500499, 667, 0.334},
                            {3000, 4501499, 2012, 1.006}};
  for (const auto& row : paper) {
    const auto n = static_cast<std::uint64_t>(row.n);
    const double avg_flops = static_cast<double>(gaussian_total_flops(n)) /
                             static_cast<double>(gaussian_task_count(n));
    double avg_us_measured = avg_flops / 2000.0;
    std::uint64_t tasks_measured = gaussian_task_count(n);
    if (!(row.n == 3000 && flags.get_bool("skip-3000", false))) {
      // Generate the actual trace and measure, rather than trusting algebra.
      const Trace tr = make_gaussian({.n = row.n});
      const TraceStats s = compute_stats(tr);
      tasks_measured = s.num_tasks;
      avg_us_measured = s.avg_task_us();
    }
    t.add_row({TextTable::integer(row.n),
               TextTable::integer(static_cast<long long>(tasks_measured)),
               TextTable::integer(static_cast<long long>(row.tasks)),
               TextTable::num(avg_flops, 1), TextTable::num(row.flops, 0),
               TextTable::num(avg_us_measured, 3), TextTable::num(row.usec, 3)});
  }
  t.print();
  std::printf("\nNote: the n=3000 average FLOPs from the closed form is 2000.3; the\n"
              "paper reports 2012 (0.6%% difference), see EXPERIMENTS.md.\n");
  return 0;
}
