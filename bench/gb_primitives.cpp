// google-benchmark micro-benchmarks of the simulator's hot primitives: the
// XOR-fold hash, the set-associative task-graph table, the dependency
// tracker, the event queue and the bounded FIFOs. These bound the wall-time
// cost of the whole-trace simulations (millions of events per figure).
#include <benchmark/benchmark.h>

#include <vector>

#include "nexus/common/fixed_ring.hpp"
#include "nexus/common/rng.hpp"
#include "nexus/depgraph/dependency_tracker.hpp"
#include "nexus/hw/distribution.hpp"
#include "nexus/hw/task_graph_table.hpp"
#include "nexus/sim/simulation.hpp"

namespace nexus {
namespace {

void BM_XorFold(benchmark::State& state) {
  std::uint64_t a = 0x12345;
  for (auto _ : state) {
    benchmark::DoNotOptimize(xor_fold20_5(a));
    a += 0x40;
  }
}
BENCHMARK(BM_XorFold);

void BM_DistributorTarget(benchmark::State& state) {
  hw::Distributor d(hw::DistributionPolicy::kXorFold,
                    static_cast<std::uint32_t>(state.range(0)));
  Addr a = 0x1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.target(a));
    a += 0x40;
  }
}
BENCHMARK(BM_DistributorTarget)->Arg(2)->Arg(6)->Arg(8);

void BM_TableInsertFinish(benchmark::State& state) {
  hw::TaskGraphTable table{hw::TableConfig{}};
  std::vector<hw::Waiter> kicked;
  TaskId id = 0;
  for (auto _ : state) {
    const Addr a = 0x1000 + (static_cast<Addr>(id) % 512) * 0x40;
    (void)table.insert(a, id, true);
    kicked.clear();
    (void)table.finish(a, id, &kicked);
    ++id;
  }
}
BENCHMARK(BM_TableInsertFinish);

void BM_TableChainedFanout(benchmark::State& state) {
  // One writer + N queued readers, then a kick of the whole group.
  const auto n = static_cast<TaskId>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    hw::TaskGraphTable table{hw::TableConfig{}};
    state.ResumeTiming();
    (void)table.insert(0x1000, 0, true);
    for (TaskId i = 1; i <= n; ++i) (void)table.insert(0x1000, i, false);
    std::vector<hw::Waiter> kicked;
    (void)table.finish(0x1000, 0, &kicked);
    benchmark::DoNotOptimize(kicked.size());
  }
}
BENCHMARK(BM_TableChainedFanout)->Arg(8)->Arg(64)->Arg(249);

void BM_TrackerSubmitFinish(benchmark::State& state) {
  DependencyTracker dt;
  std::vector<TaskId> ready;
  TaskId id = 0;
  for (auto _ : state) {
    TaskDescriptor t;
    t.id = id;
    t.duration = us(1);
    t.params.push_back({0x1000 + (static_cast<Addr>(id) % 1024) * 0x40, Dir::kOut});
    (void)dt.submit(t);
    ready.clear();
    dt.finish(id, &ready);
    ++id;
  }
}
BENCHMARK(BM_TrackerSubmitFinish);

class NullComponent final : public Component {
 public:
  void handle(Simulation&, const Event&) override {}
};

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto batch = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    Simulation sim;
    NullComponent c;
    const auto id = sim.add_component(&c);
    for (std::uint64_t i = 0; i < batch; ++i)
      sim.schedule(static_cast<Tick>((i * 7919) % 100000), id, 0);
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(65536);

void BM_FixedRingPushPop(benchmark::State& state) {
  FixedRing<std::uint64_t> ring(64);
  std::uint64_t v = 0;
  for (auto _ : state) {
    ring.push(v++);
    benchmark::DoNotOptimize(ring.pop());
  }
}
BENCHMARK(BM_FixedRingPushPop);

void BM_Xoshiro(benchmark::State& state) {
  Xoshiro256 rng(42);
  for (auto _ : state) benchmark::DoNotOptimize(rng());
}
BENCHMARK(BM_Xoshiro);

}  // namespace
}  // namespace nexus

BENCHMARK_MAIN();
