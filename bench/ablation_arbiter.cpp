// Ablation: the Dependence Counts Arbiter's service priority.
//
// Section IV-D argues for Ready > Waiting > DepCounts: ready tasks only
// need forwarding, waiting tasks are potential ready tasks, and serving
// them first "gives time for the different task graphs to finish what they
// do". This bench compares the paper's policy against the reversed and
// round-robin policies on the fine-grained h264 decode.
#include <cstdio>
#include <vector>

#include "nexus/common/flags.hpp"
#include "nexus/common/table.hpp"
#include "nexus/harness/experiment.hpp"
#include "nexus/workloads/workloads.hpp"

using namespace nexus;
using namespace nexus::harness;

int main(int argc, char** argv) {
  const Flags flags(argc, argv, {{"quick", "coarser workload"}});
  const bool quick = flags.get_bool("quick", false);

  const char* name = quick ? "h264dec-4x4-10f" : "h264dec-1x1-10f";
  const Trace tr = workloads::make_workload(name);
  const Tick base = ideal_baseline(tr);

  std::printf("Ablation: arbiter priority policy (%s, Nexus# 6 TG @ 55.56 MHz)\n\n",
              name);
  TextTable t({"policy", "speedup@32c", "speedup@256c"});
  for (const auto policy : {ArbiterPolicy::kReadyFirst, ArbiterPolicy::kDepFirst,
                            ArbiterPolicy::kRoundRobin}) {
    ManagerSpec spec = ManagerSpec::nexussharp(6);
    spec.arbiter_policy = policy;
    spec.label = to_string(policy);
    const Series s = sweep(tr, spec, {32, 256}, base);
    t.add_row({to_string(policy), TextTable::num(s.points[0].speedup, 2),
               TextTable::num(s.points[1].speedup, 2)});
  }
  t.print();
  std::printf("\nReading: the paper's ready-first policy keeps the forwarding path\n"
              "short; the alternatives defer write-backs behind bulk gathering.\n");
  return 0;
}
