// Energy analysis and the dark-silicon estimate (the paper's future work,
// Section VI/VII): activity-based management energy per configuration, and
// the leakage reclaimed by power-gating idle task graphs.
//
// Flags: --workload NAME (default h264dec-2x2-10f), --cores N (default 64)
#include <cstdio>

#include "nexus/common/flags.hpp"
#include "nexus/common/table.hpp"
#include "nexus/cost/fpga_model.hpp"
#include "nexus/cost/power_model.hpp"
#include "nexus/runtime/simulation_driver.hpp"
#include "nexus/workloads/workloads.hpp"

using namespace nexus;

int main(int argc, char** argv) {
  const Flags flags(argc, argv, {{"workload", "trace (default h264dec-2x2-10f)"},
                                 {"cores", "worker cores (default 64)"}});
  const std::string name = flags.get("workload", "h264dec-2x2-10f");
  const auto cores = static_cast<std::uint32_t>(flags.get_int("cores", 64));
  if (!workloads::is_workload(name)) {
    std::fprintf(stderr, "unknown workload %s\n", name.c_str());
    return 2;
  }
  const Trace tr = workloads::make_workload(name);

  std::printf("Management energy for %s on %u cores (synthetic coefficients —\n"
              "the framework, not absolute claims; see power_model.hpp)\n\n",
              name.c_str(), cores);
  TextTable t({"config", "makespan ms", "dynamic mJ", "leak mJ", "gated leak mJ",
               "saved", "uJ/task"});
  for (const std::uint32_t tgs : {1u, 2u, 4u, 6u, 8u}) {
    NexusSharpConfig cfg;
    cfg.num_task_graphs = tgs;
    cfg.freq_mhz = cost::nexussharp_row(tgs).test_mhz;
    NexusSharp mgr(cfg);
    const RunResult r = run_trace(tr, mgr, RuntimeConfig{.workers = cores});
    const cost::EnergyReport e = cost::estimate_energy(mgr.stats(), cfg, r.makespan);
    t.add_row({"nexus# " + std::to_string(tgs) + " TG",
               TextTable::num(to_ms(r.makespan), 1), TextTable::num(e.dynamic_mj, 2),
               TextTable::num(e.leakage_mj, 2), TextTable::num(e.gated_leakage_mj, 2),
               TextTable::num(e.gated_savings_pct, 0) + "%",
               TextTable::num(e.uj_per_task, 2)});
  }
  {
    NexusPP mgr;
    const RunResult r = run_trace(tr, mgr, RuntimeConfig{.workers = cores});
    const cost::EnergyReport e =
        cost::estimate_energy(mgr.stats(), NexusPPConfig{}, r.makespan);
    t.add_row({"nexus++", TextTable::num(to_ms(r.makespan), 1),
               TextTable::num(e.dynamic_mj, 2), TextTable::num(e.leakage_mj, 2),
               TextTable::num(e.gated_leakage_mj, 2), "0%",
               TextTable::num(e.uj_per_task, 2)});
  }
  t.print();
  std::printf("\nReading: management energy is leakage-dominated when task graphs\n"
              "idle; dark-silicon gating reclaims most per-graph leakage at high\n"
              "TG counts — the paper's \"turn it off\" proposal quantified.\n");
  return 0;
}
