// Ablation: interconnect topology for the distributed manager traffic.
//
// The paper's Nexus# distributes dependency tracking across task graph
// units, but the baseline model charges every IO<->TGU and TGU<->arbiter
// message a flat FIFO latency, so the *cost* of distribution is invisible.
// This bench sweeps the `nexus::noc` topologies — ideal crossbar, ring, 2D
// mesh, 2D torus — applied to both the on-manager NoC
// (NexusSharpConfig::noc) and the host-side core<->manager NoC
// (RuntimeConfig::noc), across core counts on a Table II workload.
// Distance and multi-flit link contention make ring/mesh/torus makespans a
// strict upper bound on the ideal crossbar; the gap is the distribution
// tax the topology pays, and the mesh-vs-torus gap is what the wraparound
// links buy back.
//
// Flags: --quick         coarser workload (h264dec-8x8-10f) + smaller grid
//        --workload=NAME override the Table II workload
//        --cores=LIST    override the core-count axis
//        --csv           emit CSV rows
//        --json=PATH     write BENCH-schema run records (with the optional
//                        "topology" field) instead of only the tables
//        --timeline      attach sampled sim-time timelines to --json records
#include <cstdio>
#include <string>
#include <vector>

#include "nexus/common/flags.hpp"
#include "nexus/common/table.hpp"
#include "nexus/harness/experiment.hpp"
#include "nexus/workloads/workloads.hpp"

using namespace nexus;
using namespace nexus::harness;

namespace {

constexpr noc::TopologyKind kKinds[] = {
    noc::TopologyKind::kIdeal, noc::TopologyKind::kRing,
    noc::TopologyKind::kMesh, noc::TopologyKind::kTorus};

/// A Nexus# spec (6 TGs at the Table I frequency) with both NoCs set.
ManagerSpec sharp_with_noc(noc::TopologyKind kind) {
  ManagerSpec spec = ManagerSpec::nexussharp(6);
  spec.sharp.noc.kind = kind;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(
      argc, argv,
      {{"quick", "coarser workload and smaller core grid"},
       {"workload", "Table II workload to run (default h264dec-4x4-10f)"},
       {"cores", "comma-separated core counts (default 8,32,128)"},
       {"csv", "emit csv"},
       {"json", "write BENCH-schema run records to this file"},
       {"timeline", "attach sim-time timelines to --json records"}});
  const bool quick = flags.get_bool("quick", false);
  const std::string name =
      flags.get(
          "workload",
          quick ? "h264dec-8x8-10f" : "h264dec-4x4-10f");
  if (!workloads::is_workload(name)) {
    std::fprintf(stderr, "unknown workload: %s\n", name.c_str());
    return 2;
  }
  std::vector<std::uint32_t> cores;
  for (const std::int64_t c :
       flags.get_int_list("cores", quick ? std::vector<std::int64_t>{8, 32}
                                         : std::vector<std::int64_t>{8, 32, 128}))
    cores.push_back(static_cast<std::uint32_t>(c));

  const Trace tr = workloads::make_workload(name);
  const Tick base = ideal_baseline(tr);

  std::printf("Ablation: interconnect topology (%s, Nexus# 6 TG, NoC on "
              "manager + host)\n\n",
              name.c_str());

  const telemetry::TimelineConfig tcfg = bench_timeline_config();
  const telemetry::TimelineConfig* tl =
      flags.get_bool("timeline", false) ? &tcfg : nullptr;
  const bool json = flags.has("json");
  BenchRecordWriter out;

  std::vector<Series> series;
  TextTable contention(
      {"topology", "cores", "noc msgs", "mean hops", "blocked", "stall (us)"});
  for (const noc::TopologyKind kind : kKinds) {
    const ManagerSpec spec = sharp_with_noc(kind);
    RuntimeConfig rc;
    rc.noc.kind = kind;
    Series s;
    s.label = noc::to_string(kind);
    for (const std::uint32_t c : cores) {
      const RunReport rep = run_once_report(tr, spec, c, rc,
                                            /*collect_metrics=*/true, tl);
      SweepPoint p;
      p.cores = c;
      p.makespan = rep.result.makespan;
      p.speedup = rep.result.speedup_vs(base);
      p.topology = rep.topology;
      s.points.push_back(p);
      const telemetry::Snapshot& snap = *rep.metrics;
      // Every column sums the manager NoC and the host NoC (the latter
      // only registers under a real topology), so ratios between columns
      // stay meaningful.
      std::uint64_t hop_sum = 0;
      std::uint64_t hop_count = 0;
      for (const char* net : {"nexus#/noc/hops", "runtime/noc/hops"}) {
        const telemetry::MetricValue* hops = snap.find(net);
        if (hops == nullptr) continue;
        hop_sum += hops->hist.sum;
        hop_count += hops->hist.count;
      }
      const double mean_hops =
          hop_count > 0
              ? static_cast<double>(hop_sum) / static_cast<double>(hop_count)
              : 0.0;
      contention.add_row(
          {s.label, std::to_string(c),
           TextTable::integer(static_cast<long long>(
               snap.counter_at("nexus#/noc/messages") +
               snap.counter_at("runtime/noc/messages"))),
           TextTable::num(mean_hops, 2),
           TextTable::integer(static_cast<long long>(
               snap.counter_at("nexus#/noc/blocked_flits") +
               snap.counter_at("runtime/noc/blocked_flits"))),
           TextTable::num(
               static_cast<double>(snap.counter_at("nexus#/noc/stall_ps") +
                                   snap.counter_at("runtime/noc/stall_ps")) *
                   1e-6,
               1)});
      if (json) {
        out.append(metrics_report_json(
            "ablation_topology", name, spec.label, c, rep.result.makespan,
            rep.result.speedup_vs(base), rep.metrics.get(), rep.timeline.get(),
            rep.topology));
      }
      std::fprintf(stderr, "[topology] %-5s %3u cores: %8.2f ms\n",
                   s.label.c_str(), c, to_ms(rep.result.makespan));
    }
    series.push_back(std::move(s));
  }

  print_series("speedup vs ideal-crossbar baseline", cores, series,
               flags.get_bool("csv", false));
  std::printf("\nInterconnect pressure (manager + host NoCs):\n");
  contention.print();
  std::printf("\nReading: the ideal crossbar is the paper's implicit model; ring, mesh\n"
              "and torus charge the same traffic per-hop distance and multi-flit\n"
              "per-link serialization, so in the critical-path-bound regime their\n"
              "makespans bound it from above — the gap is what physical distribution\n"
              "of the task graph units would cost. (At worker-bound core counts a\n"
              "delayed record can reorder dispatches into a luckier schedule — a\n"
              "standard scheduling anomaly, so single rows may dip below ideal.)\n");
  if (json) return out.write(flags.get("json", "")) ? 0 : 2;
  return 0;
}
