// Multi-application co-management (Section VI: "Since multiple applications
// use different memory spaces inherently, Nexus# can manage them at the
// same time"): two applications share one Nexus# instance and one worker
// pool; compare against running them back-to-back on the same hardware.
//
// Flags: --cores N (default 64), --quick
#include <cstdio>

#include "nexus/common/flags.hpp"
#include "nexus/common/table.hpp"
#include "nexus/nexussharp/nexussharp.hpp"
#include "nexus/runtime/multi_app.hpp"
#include "nexus/workloads/workloads.hpp"

using namespace nexus;

namespace {

NexusSharpConfig sharp6() {
  NexusSharpConfig cfg;
  cfg.num_task_graphs = 6;
  cfg.freq_mhz = 55.56;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv,
                    {{"cores", "worker cores (default 64)"}, {"quick", "smaller pair"}});
  const auto cores = static_cast<std::uint32_t>(flags.get_int("cores", 64));
  const bool quick = flags.get_bool("quick", false);

  const Trace a = workloads::make_h264dec(workloads::h264_config(quick ? 8 : 2));
  const Trace b = quick ? workloads::make_gaussian({.n = 250})
                        : workloads::make_workload("rot-cc");

  std::printf("Co-managing two applications on one Nexus# (6 TG @ 55.56 MHz), "
              "%u cores\n\n", cores);

  // Back-to-back: each app gets the full machine, one after the other.
  Tick serial = 0;
  Tick t_a = 0;
  Tick t_b = 0;
  {
    NexusSharp m1(sharp6());
    t_a = run_trace(a, m1, RuntimeConfig{.workers = cores}).makespan;
    NexusSharp m2(sharp6());
    t_b = run_trace(b, m2, RuntimeConfig{.workers = cores}).makespan;
    serial = t_a + t_b;
  }
  // Co-run: shared manager, shared workers, disjoint address windows.
  NexusSharp co(sharp6());
  const MultiAppResult r = run_multi_app({&a, &b}, co, RuntimeConfig{.workers = cores});

  TextTable t({"schedule", "makespan ms", "throughput gain"});
  t.add_row({a.name() + " alone", TextTable::num(to_ms(t_a), 1), ""});
  t.add_row({b.name() + " alone", TextTable::num(to_ms(t_b), 1), ""});
  t.add_row({"back-to-back", TextTable::num(to_ms(serial), 1), "1.00x"});
  t.add_row({"co-managed", TextTable::num(to_ms(r.makespan), 1),
             TextTable::num(static_cast<double>(serial) /
                                static_cast<double>(r.makespan), 2) + "x"});
  t.print();
  std::printf("\nper-app completion under co-management: %s %.1f ms, %s %.1f ms\n",
              a.name().c_str(), to_ms(r.app_completion[0]), b.name().c_str(),
              to_ms(r.app_completion[1]));
  std::printf("utilization: %.0f%%; gather state drained: %s\n",
              100.0 * r.utilization,
              co.stats().sim_tasks_live == 0 ? "yes" : "NO");
  return 0;
}
