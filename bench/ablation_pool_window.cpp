// Ablation: the in-flight task window (Task Pool capacity).
//
// The paper describes the pool and its backpressure but not its size. This
// sweep shows why the size matters more than any other unstated capacity:
// on the finest h264 decode, a 256-task window covers only ~2 macroblock
// rows of lookahead, capping *every* manager near 4x and masking the
// central-vs-distributed difference; from ~1024 the designs separate the
// way Figs. 7/8 show. This is the experimental basis for the repository's
// default (DESIGN.md §4).
#include <cstdio>
#include <vector>

#include "nexus/common/flags.hpp"
#include "nexus/common/table.hpp"
#include "nexus/harness/experiment.hpp"
#include "nexus/workloads/workloads.hpp"

using namespace nexus;
using namespace nexus::harness;

int main(int argc, char** argv) {
  const Flags flags(argc, argv, {{"quick", "fewer pool sizes"},
                                 {"cores", "worker cores (default 64)"}});
  const bool quick = flags.get_bool("quick", false);
  const auto cores = static_cast<std::uint32_t>(flags.get_int("cores", 64));

  const Trace tr = workloads::make_h264dec(workloads::h264_config(1));
  const Tick base = ideal_baseline(tr);
  const double ideal = static_cast<double>(base) /
                       static_cast<double>(run_once(tr, ManagerSpec::ideal(), cores));

  std::vector<std::size_t> pools{128, 256, 512, 1024, 2048, 4096};
  if (quick) pools = {256, 1024};

  std::printf("Ablation: task-pool window on h264dec-1x1-10f, %u cores "
              "(no-overhead bound: %.2fx)\n\n", cores, ideal);
  TextTable t({"pool", "nexus# 6TG@55.56", "nexus++@100"});
  for (const std::size_t pool : pools) {
    ManagerSpec sharp = ManagerSpec::nexussharp(6);
    sharp.sharp.pool_capacity = pool;
    ManagerSpec npp = ManagerSpec::nexuspp_default();
    npp.npp.pool_capacity = pool;
    const double s_sharp = static_cast<double>(base) /
                           static_cast<double>(run_once(tr, sharp, cores));
    const double s_npp =
        static_cast<double>(base) / static_cast<double>(run_once(tr, npp, cores));
    t.add_row({TextTable::integer(static_cast<long long>(pool)),
               TextTable::num(s_sharp, 2), TextTable::num(s_npp, 2)});
  }
  t.print();
  std::printf("\nReading: below ~512 the lookahead window (not the manager) is\n"
              "the binding constraint; the designs differentiate above it.\n");
  return 0;
}
