// Ablation: tile placement for the distributed manager's NoC traffic.
//
// PR 4/5 made the cost of distributing Nexus# visible: on a mesh or torus
// every IO->TGU parameter, TGU->arbiter record, IO->arbiter descriptor and
// arbiter->IO write-back pays per-hop distance and multi-flit link
// serialization. That cost depends on *where* the IO tile, the task graph
// units and the arbiter sit on the fabric — the identity layout parks the
// two hottest endpoints (IO and the arbiter) at opposite corners. This
// bench measures the traffic matrix of a default-layout run, feeds it to
// the deterministic placement search (noc/placement.hpp: greedy descent +
// seeded annealing over weighted hop distance), and reruns the workload
// with the optimized assignment: the makespan gap is what floorplanning
// the task manager is worth.
//
// Flags: --quick         coarser workload (h264dec-8x8-10f) + smaller grid
//        --workload=NAME override the h264 workload
//        --tgs=N         task graph count (default 8)
//        --cores=LIST    override the core-count axis
//        --csv           emit CSV rows
//        --json=PATH     write BENCH-schema run records (with "topology"
//                        and "placement" fields) instead of only the tables
//        --timeline      attach sampled sim-time timelines to --json records
#include <cstdio>
#include <string>
#include <vector>

#include "nexus/common/flags.hpp"
#include "nexus/common/table.hpp"
#include "nexus/harness/experiment.hpp"
#include "nexus/noc/placement.hpp"
#include "nexus/workloads/workloads.hpp"

using namespace nexus;
using namespace nexus::harness;

namespace {

constexpr noc::TopologyKind kKinds[] = {noc::TopologyKind::kMesh,
                                        noc::TopologyKind::kTorus};

ManagerSpec sharp_with(std::uint32_t tgs, noc::TopologyKind kind,
                       std::int64_t hop_cycles, std::int64_t link_cycles,
                       const noc::PlacementResult* placement) {
  ManagerSpec spec = ManagerSpec::nexussharp(tgs);
  spec.sharp.noc.kind = kind;
  spec.sharp.noc.hop_cycles = hop_cycles;
  spec.sharp.noc.link_cycles = link_cycles;
  if (placement != nullptr) {
    spec.sharp.noc.placement = placement->assignment;
    spec.sharp.noc.placement_name = "optimized";
  }
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(
      argc, argv,
      {{"quick", "coarser workload (the core axis is already minimal)"},
       {"workload", "Table II workload to run (default h264dec-4x4-10f)"},
       {"tgs", "task graph count (default 8)"},
       {"hop", "per-hop router+wire cycles (default 8: wire-dominated)"},
       {"link", "per-flit link serialization cycles (default 2)"},
       {"cores", "comma-separated core counts (default 16,32)"},
       {"csv", "emit csv"},
       {"json", "write BENCH-schema run records to this file"},
       {"timeline", "attach sim-time timelines to --json records"}});
  const bool quick = flags.get_bool("quick", false);
  const std::string name =
      flags.get("workload", quick ? "h264dec-8x8-10f" : "h264dec-4x4-10f");
  if (!workloads::is_workload(name)) {
    std::fprintf(stderr, "unknown workload: %s\n", name.c_str());
    return 2;
  }
  const auto tgs =
      static_cast<std::uint32_t>(flags.get_int("tgs", 8));
  // Placement only matters on a fabric whose wires cost something: the
  // default models a wire-dominated floorplan (8 router+wire cycles per
  // hop, 2 cycles per flit on a link) instead of the NocConfig default's
  // near-free 3/1 — the same knob ablation_topology leaves untouched.
  const std::int64_t hop_cycles = flags.get_int("hop", 8);
  const std::int64_t link_cycles = flags.get_int("link", 2);
  // Core counts at or past the workload's saturation knee: below it the run
  // is worker-bound and the placement signal drowns in dispatch-order
  // noise; at the knee the makespan is critical-path-bound and the gap is
  // pure interconnect latency (use --cores to sweep the starved region).
  std::vector<std::uint32_t> cores;
  for (const std::int64_t c :
       flags.get_int_list("cores", std::vector<std::int64_t>{16, 32}))
    cores.push_back(static_cast<std::uint32_t>(c));

  const Trace tr = workloads::make_workload(name);
  const Tick base = ideal_baseline(tr);

  std::printf("Ablation: NoC tile placement (%s, Nexus# %u TG, manager NoC "
              "mesh/torus, host ideal)\n\n",
              name.c_str(), tgs);

  const telemetry::TimelineConfig tcfg = bench_timeline_config();
  const telemetry::TimelineConfig* tl =
      flags.get_bool("timeline", false) ? &tcfg : nullptr;
  const bool json = flags.has("json");
  BenchRecordWriter out;

  TextTable table({"topology", "cores", "default (ms)", "optimized (ms)",
                   "gain", "hop-cost", "opt hop-cost"});
  bool all_better = true;
  for (const noc::TopologyKind kind : kKinds) {
    // Measure the traffic matrix once per topology, on the largest core
    // count of the default layout (the endpoint-pair pattern is what the
    // search needs; it is recorded before the tile mapping, so the
    // measurement layout cannot bias it).
    NexusSharp probe(sharp_with(tgs, kind, hop_cycles, link_cycles,
                                nullptr).sharp);
    RuntimeConfig probe_rc;
    probe_rc.workers = cores.back();
    run_trace(tr, probe, probe_rc);
    const noc::Network::Stats probe_stats = probe.network().stats();
    const std::uint32_t endpoints = sharp_noc_endpoints(tgs);
    const noc::TrafficMatrix traffic =
        noc::TrafficMatrix::from_network(endpoints, probe_stats.traffic);
    const noc::Topology topo(kind, endpoints);
    const noc::PlacementResult placed = noc::optimize_placement(topo, traffic);
    std::fprintf(stderr,
                 "[placement] %-5s %s: hop-cost %llu -> %llu "
                 "(%u greedy swaps, %u anneal accepts)\n",
                 noc::to_string(kind), topo.describe().c_str(),
                 static_cast<unsigned long long>(placed.initial_cost),
                 static_cast<unsigned long long>(placed.cost),
                 placed.greedy_swaps, placed.anneal_accepts);

    const ManagerSpec specs[2] = {
        sharp_with(tgs, kind, hop_cycles, link_cycles, nullptr),
        sharp_with(tgs, kind, hop_cycles, link_cycles, &placed)};
    for (const std::uint32_t c : cores) {
      Tick makespans[2] = {0, 0};
      for (int v = 0; v < 2; ++v) {
        const RunReport rep = run_once_report(tr, specs[v], c, RuntimeConfig{},
                                              /*collect_metrics=*/true, tl);
        makespans[v] = rep.result.makespan;
        if (json) {
          out.append(metrics_report_json(
              "ablation_placement", name, specs[v].label, c,
              rep.result.makespan, rep.result.speedup_vs(base),
              rep.metrics.get(), rep.timeline.get(), rep.topology,
              rep.placement));
        }
        std::fprintf(stderr, "[placement] %-5s %-9s %3u cores: %8.2f ms\n",
                     noc::to_string(kind), rep.placement.c_str(), c,
                     to_ms(rep.result.makespan));
      }
      if (makespans[1] >= makespans[0]) all_better = false;
      const double gain = makespans[0] > 0
                              ? (1.0 - static_cast<double>(makespans[1]) /
                                           static_cast<double>(makespans[0])) *
                                    100.0
                              : 0.0;
      table.add_row({noc::to_string(kind), std::to_string(c),
                     TextTable::num(to_ms(makespans[0]), 2),
                     TextTable::num(to_ms(makespans[1]), 2),
                     TextTable::num(gain, 2) + "%",
                     TextTable::integer(
                         static_cast<long long>(placed.initial_cost)),
                     TextTable::integer(static_cast<long long>(placed.cost))});
    }
  }

  std::printf("Default (identity) vs optimized tile placement:\n");
  table.print();
  if (flags.get_bool("csv", false)) std::fputs(table.csv().c_str(), stdout);
  std::printf("\nReading: the identity layout puts the IO tile and the arbiter —\n"
              "the two hottest endpoints of the gather traffic — far apart on the\n"
              "grid; the search pulls them together and centers them among the\n"
              "task graph tiles, so every record pays fewer hops. The residual\n"
              "gap between mesh and torus rows is the wraparound advantage.\n");
  if (!all_better)
    std::printf("\nWARNING: at least one optimized row did not beat the "
                "default layout.\n");
  if (json) return out.write(flags.get("json", "")) ? 0 : 2;
  return 0;
}
