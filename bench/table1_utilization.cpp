// Reproduces Table I: device utilization of Nexus++ and Nexus# (1-8 task
// graphs) on the ZC706, including the maximum and test frequencies that
// drive the Fig. 7(b)/8/9 performance simulations.
//
// Flags: --extended  also print interpolated rows (3,5,7) and the
//                    extrapolated feasibility limit.
#include <cstdio>

#include "nexus/common/flags.hpp"
#include "nexus/common/table.hpp"
#include "nexus/cost/fpga_model.hpp"

using namespace nexus;
using namespace nexus::cost;

namespace {

void add_row(TextTable& t, const UtilizationRow& r) {
  t.add_row({r.config, TextTable::num(r.regs_pct, 0) + "%",
             TextTable::num(r.luts_pct, 0) + "%",
             TextTable::num(r.bram_pct, 0) + "%",
             TextTable::num(r.fmax_mhz, 2) + " (" + TextTable::num(r.test_mhz, 2) + ")",
             TextTable::integer(static_cast<long long>(r.regs_abs())),
             TextTable::integer(static_cast<long long>(r.luts_abs())),
             r.measured ? "paper" : "model"});
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv, {{"extended", "also print interpolated rows"}});

  std::printf("Table I: device utilization on the ZC706 "
              "(totals: 437200 regs, 218600 LUTs, 545 BRAMs)\n\n");
  TextTable t({"Configuration", "Registers", "LUTs", "BlockRAMs",
               "Max(Test) Freq MHz", "regs(abs)", "luts(abs)", "source"});
  for (const auto& r : table1_rows()) add_row(t, r);
  if (flags.get_bool("extended", false)) {
    for (const std::uint32_t n : {3u, 5u, 7u, 9u, 10u}) add_row(t, nexussharp_row(n));
  }
  t.print();

  std::printf("\nComparison (Section IV-E): Task Superscalar [19,20] uses "
              "29138 registers / 110729 LUTs,\ncomparable to the 8-TG design "
              "(19350/127290) and ~6x the 1-TG configuration.\n");
  std::printf("Largest configuration that still fits the device: %u task graphs\n",
              max_feasible_task_graphs());
  return 0;
}
