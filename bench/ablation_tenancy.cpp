// Ablation: multi-tenant QoS — admission quotas + weighted round-robin vs
// an unpoliced shared manager, judged on per-tenant slowdown fairness.
//
// One heavy bursty tenant co-runs with N-1 light Poisson tenants on a
// single Nexus# instance (clustered arbiter hierarchy). Each tenant's
// slowdown is its co-run mean serving latency over its solo-run mean; the
// verdict numbers are the max/min slowdown ratio and the Jain fairness
// index over the slowdown vector (see harness/fairness.hpp). Two rows:
//
//   fifo  tenancy enabled for attribution only — no quotas, the root
//         arbiter serves one global FIFO. The heavy tenant's bursts fill
//         the shared Task Pool, the submission port stalls for everyone,
//         and the light tenants' slowdown explodes: the baseline is
//         EXPECTED to violate the fairness bound.
//   wrr   per-tenant pool quotas NACK the heavy tenant at admission
//         (backpressure on that stream only) and the root serves ready
//         tasks weighted-round-robin. The bench gates that this row meets
//         the fairness bound.
//
// The bench is self-gating: exit 1 if the QoS row violates the bound OR
// the baseline fails to violate it (i.e. the scenario stopped stressing
// isolation and the gate went vacuous). The committed BENCH_tenancy.json
// rows carry fairness/jain_x1e6 and fairness/slowdown_ratio_x1e3 gauges,
// which nexus-perfdiff watches (a fairness regression fails CI even when
// no makespan moved).
//
// Flags: --quick        fewer tasks per tenant (the CI configuration)
//        --tenants=N    total tenants including the heavy one (default 64)
//        --cores=N      worker cores
//        --tgs=N        Nexus# task-graph count
//        --clusters=N   arbiter clusters (must divide tgs)
//        --weight=W     heavy tenant's WRR weight (default 4)
//        --bound=R      fairness bound on max/min slowdown (default 3.0)
//        --csv          emit CSV rows
//        --json=PATH    write BENCH-schema run records
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "nexus/common/flags.hpp"
#include "nexus/common/table.hpp"
#include "nexus/harness/fairness.hpp"
#include "nexus/telemetry/registry.hpp"
#include "nexus/workloads/arrivals.hpp"

using namespace nexus;
using namespace nexus::harness;

namespace {

struct Row {
  const char* label;
  bool qos;  ///< quotas + WRR on; off = the FIFO baseline
};

double light_mean_slowdown(const FairnessReport& rep) {
  double sum = 0.0;
  for (std::size_t t = 1; t < rep.tenants.size(); ++t)
    sum += rep.tenants[t].slowdown;
  return rep.tenants.size() > 1
             ? sum / static_cast<double>(rep.tenants.size() - 1)
             : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(
      argc, argv,
      {{"quick", "fewer tasks per tenant (CI configuration)"},
       {"tenants", "total tenants including the heavy one (default 64)"},
       {"cores", "worker cores (default 8)"},
       {"tgs", "Nexus# task-graph count (default 4)"},
       {"clusters", "arbiter clusters (default 2, must divide tgs)"},
       {"weight", "heavy tenant's WRR weight (default 4)"},
       {"bound", "fairness bound on max/min slowdown (default 3.0)"},
       {"csv", "emit csv"},
       {"json", "write BENCH-schema run records to this file"}});
  const bool quick = flags.get_bool("quick", false);

  const auto tenants =
      static_cast<std::uint32_t>(flags.get_int("tenants", 64));
  if (tenants < 2 || tenants > 256) {
    std::fprintf(stderr, "--tenants must be in [2, 256]\n");
    return 2;
  }
  const auto cores = static_cast<std::uint32_t>(flags.get_int("cores", 8));
  const auto tgs = static_cast<std::uint32_t>(flags.get_int("tgs", 4));
  const auto clusters =
      static_cast<std::uint32_t>(flags.get_int("clusters", 2));
  const auto weight = static_cast<std::uint32_t>(flags.get_int("weight", 4));
  const double bound = flags.get_double("bound", 3.0);
  const std::uint64_t light_tasks = quick ? 12 : 24;

  // Measured saturation throughput of THIS manager shape (not a core-count
  // estimate — for fine-grained tasks the manager pipeline, not compute,
  // is the bottleneck): blast a batch through a tenancy-free instance and
  // take tasks/makespan. Rates are set relative to it so the mean load has
  // headroom (0.8 mu) while the heavy tenant's bursts (on-rate 3 mu at
  // on_fraction 0.2) overrun the pool and force the isolation question.
  workloads::ArrivalConfig probe_cfg;
  probe_cfg.kernel = "gaussian-250";
  probe_cfg.tasks = 400;
  probe_cfg.clients = 1;
  probe_cfg.chain_fraction = 0.0;
  const workloads::ArrivalSchedule probe_sched =
      workloads::generate_arrivals(probe_cfg);
  const Trace probe = workloads::make_serving_trace(probe_sched);
  double mu_hz = 0.0;
  {
    ManagerSpec pspec = ManagerSpec::nexussharp(tgs, 100.0);
    pspec.sharp.arbiter_clusters = clusters;
    pspec.sharp.pool_capacity = 48;
    const std::unique_ptr<TaskManagerModel> mgr = make_manager(pspec);
    const TenantStream blast{&probe,
                             std::vector<Tick>(probe.num_tasks(), 0)};
    const TenantRunResult r =
        run_tenants({blast}, *mgr, RuntimeConfig{.workers = cores});
    mu_hz = static_cast<double>(r.total_tasks) /
            (static_cast<double>(r.makespan) * 1e-12);
  }
  const double heavy_hz = 0.6 * mu_hz;
  const double light_hz = 0.2 * mu_hz / static_cast<double>(tenants - 1);
  // Both stream kinds span the same horizon, so light arrivals sample the
  // whole bursty interference pattern rather than its aftermath.
  const double horizon_s = static_cast<double>(light_tasks) / light_hz;
  const std::uint64_t heavy_tasks =
      static_cast<std::uint64_t>(heavy_hz * horizon_s);

  // Per-tenant workloads: tenant 0 is the heavy bursty stream, the rest
  // are light Poisson streams with per-tenant seeds.
  std::vector<workloads::ArrivalSchedule> scheds;
  std::vector<Trace> traces;
  scheds.reserve(tenants);
  traces.reserve(tenants);
  for (std::uint32_t t = 0; t < tenants; ++t) {
    workloads::ArrivalConfig c;
    c.kernel = "gaussian-250";
    c.clients = 1;
    c.chain_fraction = 0.0;
    c.seed = 0x7E4A57 + t;
    if (t == 0) {
      c.process = workloads::ArrivalProcess::kBursty;
      c.rate_hz = heavy_hz;
      c.tasks = heavy_tasks;
    } else {
      c.process = workloads::ArrivalProcess::kPoisson;
      c.rate_hz = light_hz;
      c.tasks = light_tasks;
    }
    scheds.push_back(workloads::generate_arrivals(c));
    traces.push_back(workloads::make_serving_trace(scheds.back()));
  }
  std::vector<TenantStream> streams;
  for (std::uint32_t t = 0; t < tenants; ++t)
    streams.push_back({&traces[t], scheds[t].submission.release});

  std::printf("Ablation: multi-tenant QoS (%u tenants: 1 bursty heavy @"
              " %.0f k/s (%llu tasks) + %u light @ %.1f k/s each, %u cores,"
              " %u TGs in %u clusters)\n",
              tenants, heavy_hz * 1e-3,
              static_cast<unsigned long long>(heavy_tasks), tenants - 1,
              light_hz * 1e-3, cores, tgs, clusters);
  std::printf("measured saturation ~%.0f k tasks/s; fairness bound:"
              " max/min slowdown <= %.2f\n\n",
              mu_hz * 1e-3, bound);

  const Row rows[] = {{"fifo", false}, {"wrr", true}};
  const bool json = flags.has("json");
  BenchRecordWriter out;
  TextTable table({"policy", "jain", "slowdown max", "slowdown min",
                   "max/min", "heavy slow", "light mean", "nack holds",
                   "verdict"});

  bool qos_ok = false;
  bool baseline_violates = false;
  for (const Row& row : rows) {
    ManagerSpec spec = ManagerSpec::nexussharp(tgs, 100.0);
    spec.sharp.arbiter_clusters = clusters;
    spec.sharp.pool_capacity = 48;
    spec.sharp.tenancy.tenants = tenants;
    spec.sharp.tenancy.weighted = row.qos;
    if (row.qos) {
      spec.sharp.tenancy.quota.pool = 8;
      spec.sharp.tenancy.weights.assign(tenants, 1);
      spec.sharp.tenancy.weights[0] = weight;
    }
    spec.label += row.qos ? "-wrr" : "-fifo";

    telemetry::MetricRegistry reg;
    RuntimeConfig rc;
    rc.metrics = &reg;
    const FairnessReport rep = run_fairness(streams, spec, cores, rc);

    std::uint64_t holds = 0;
    for (const TenantFairness& f : rep.tenants) holds += f.nack_holds;
    const bool meets = rep.slowdown_ratio <= bound;
    if (row.qos) qos_ok = meets;
    else baseline_violates = !meets;

    table.add_row({row.label, TextTable::num(rep.jain, 3),
                   TextTable::num(rep.max_slowdown, 2),
                   TextTable::num(rep.min_slowdown, 2),
                   TextTable::num(rep.slowdown_ratio, 2),
                   TextTable::num(rep.tenants[0].slowdown, 2),
                   TextTable::num(light_mean_slowdown(rep), 2),
                   std::to_string(holds), meets ? "meets" : "VIOLATES"});
    std::fprintf(stderr,
                 "[tenancy] %-4s: jain %.3f, max/min slowdown %.2f (%s the"
                 " %.2f bound), %llu NACK holds\n",
                 row.label, rep.jain, rep.slowdown_ratio,
                 meets ? "meets" : "violates", bound,
                 static_cast<unsigned long long>(holds));

    if (json) {
      // The "speedup" slot carries the Jain index (1.0 = perfectly fair);
      // the fairness verdict gauges ride in the metrics snapshot.
      const std::string label =
          "tenancy-" + std::to_string(tenants) + "t-bursty+light";
      const telemetry::Snapshot snap = reg.snapshot();
      out.append(metrics_report_json("ablation_tenancy", label, spec.label,
                                     cores, rep.corun.makespan, rep.jain,
                                     &snap));
    }
  }

  table.print();
  if (flags.get_bool("csv", false)) std::fputs(table.csv().c_str(), stdout);
  std::printf(
      "\nReading: a tenant's slowdown is its co-run mean serving latency\n"
      "over its solo mean on the same (policy-identical) manager. Under\n"
      "FIFO the heavy tenant's bursts occupy the shared pool and every\n"
      "light tenant stalls behind it — max/min slowdown blows through the\n"
      "bound. Quotas NACK the heavy stream at admission (it alone waits)\n"
      "and the root arbiter's weighted round-robin meters its grants, so\n"
      "the light tenants track their solo latency and the ratio stays\n"
      "bounded. Jain condenses the same vector: 1.0 is perfect fairness,\n"
      "1/n is one starved tenant.\n");

  if (!qos_ok) {
    std::fprintf(stderr, "[tenancy] FAIL: QoS row violates the fairness"
                         " bound\n");
    return 1;
  }
  if (!baseline_violates) {
    std::fprintf(stderr, "[tenancy] FAIL: FIFO baseline no longer violates"
                         " the bound — the scenario has gone vacuous\n");
    return 1;
  }
  if (json) return out.write(flags.get("json", "")) ? 0 : 2;
  return 0;
}
