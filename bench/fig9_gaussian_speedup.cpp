// Reproduces Figure 9: Gaussian elimination with partial pivoting for
// matrices of 250..3000, on up to 64 cores (2 GFLOPS each), under Nexus++,
// Nexus# 1 TG and Nexus# 2 TGs — all at 100 MHz, as in the paper. The
// baseline is the single-core execution time under Nexus++ (Section VI).
//
// The benchmark is the worst case for the distribution function (every wave
// funnels into the pivot row's task graph) and validates the dummy-entry
// mechanism: up to n-1 tasks wait on a single address.
//
// Flags: --quick     sizes {250,1000}, cores {1,8,64}
//        --max-n     largest matrix size to run (default 3000)
//        --csv       emit CSV rows
//        --json=PATH instead of the figure tables, write machine-readable
//                    run records (Nexus++, Nexus# 1/2 TGs at 100 MHz, 8 and
//                    64 cores per matrix size) in the BENCH_*.json schema
//        --timeline  attach sampled sim-time timelines to --json records
//        --trace=PATH instead of the figure tables, write a Chrome trace
//                    (ui.perfetto.dev) of one representative run — the
//                    dummy-entry worst case gaussian-250 under Nexus# 2 TGs
//                    at 100 MHz on 8 cores
#include <cstdio>
#include <string>
#include <vector>

#include "nexus/common/flags.hpp"
#include "nexus/harness/experiment.hpp"
#include "nexus/workloads/workloads.hpp"

using namespace nexus;
using namespace nexus::harness;

int main(int argc, char** argv) {
  const Flags flags(argc, argv,
                    {{"quick", "reduced grid"},
                     {"max-n", "largest matrix size"},
                     {"csv", "emit csv"},
                     {"json", "write BENCH-schema run records to this file"},
                     {"timeline", "attach sim-time timelines to --json records"},
                     {"trace", "write a Chrome trace of one run to this file"}});
  const bool quick = flags.get_bool("quick", false);
  const bool csv = flags.get_bool("csv", false);
  const auto max_n = flags.get_int("max-n", 3000);

  std::vector<int> sizes{250, 500, 1000, 3000};
  if (quick) sizes = {250, 1000};
  const std::vector<std::uint32_t> cores =
      quick ? std::vector<std::uint32_t>{1, 8, 64} : paper_cores_64();

  if (flags.has("trace")) {
    // One representative lifecycle trace: the benchmark's headline
    // configuration (Nexus# 2 TGs at 100 MHz) on the finest matrix, where
    // the dummy-entry mechanism is busiest.
    ManagerSpec spec = ManagerSpec::nexussharp(2, 100.0);
    spec.label = "nexus#-2TG@100MHz";
    return write_chrome_trace(workloads::make_gaussian({.n = 250}), spec, 8,
                              {}, flags.get("trace", ""))
               ? 0
               : 2;
  }

  if (flags.has("json")) {
    // Trajectory records against the paper's baseline (Nexus++ single-core):
    // the dummy-entry worst case under all three manager configurations.
    const telemetry::TimelineConfig tcfg = bench_timeline_config();
    const telemetry::TimelineConfig* tl =
        flags.get_bool("timeline", false) ? &tcfg : nullptr;
    BenchRecordWriter out;
    for (const int n : sizes) {
      if (n > max_n) continue;
      const Trace tr = workloads::make_gaussian({.n = n});
      const std::string wl = "gaussian-" + std::to_string(n);
      const Tick base = run_once(tr, ManagerSpec::nexuspp_default(), 1);
      std::vector<ManagerSpec> specs{ManagerSpec::nexuspp_default(),
                                     ManagerSpec::nexussharp(1, 100.0),
                                     ManagerSpec::nexussharp(2, 100.0)};
      specs[1].label = "nexus#-1TG@100MHz";
      specs[2].label = "nexus#-2TG@100MHz";
      for (const ManagerSpec& spec : specs) {
        for (const std::uint32_t c : {8u, 64u}) {
          const RunReport rep = run_once_report(tr, spec, c, {}, true, tl);
          out.append(metrics_report_json("fig9", wl, spec.label, c,
                                         rep.result.makespan,
                                         rep.result.speedup_vs(base),
                                         rep.metrics.get(), rep.timeline.get()));
          std::fprintf(stderr, "[fig9] %-13s %-18s %3u cores: %8.2f ms\n",
                       wl.c_str(), spec.label.c_str(), c,
                       to_ms(rep.result.makespan));
        }
      }
    }
    return out.write(flags.get("json", "")) ? 0 : 2;
  }

  for (const int n : sizes) {
    if (n > max_n) continue;
    const Trace tr = workloads::make_gaussian({.n = n});
    std::fprintf(stderr, "[fig9] gaussian-%d: %zu tasks\n", n, tr.num_tasks());

    // Paper baseline: "the single-core execution time using Nexus++".
    const ManagerSpec npp = ManagerSpec::nexuspp_default();
    const Tick base = run_once(tr, npp, 1);

    std::vector<Series> series;
    series.push_back(sweep(tr, npp, cores, base));
    series.push_back(sweep(tr, ManagerSpec::nexussharp(1, 100.0), cores, base));
    series.back().label = "nexus#-1TG@100MHz";
    series.push_back(sweep(tr, ManagerSpec::nexussharp(2, 100.0), cores, base));
    series.back().label = "nexus#-2TG@100MHz";

    char title[64];
    std::snprintf(title, sizeof title, "Fig. 9: gaussian elimination, matrix %d", n);
    print_series(title, cores, series, csv);
  }
  std::printf("\nPaper's reading: Nexus# (2TG) improves ~19%% over Nexus++ on the\n"
              "finest tasks (matrix-250) and ~10%% as matrices grow; more TGs do\n"
              "not help because each wave's pivot row maps to one graph.\n");
  return 0;
}
