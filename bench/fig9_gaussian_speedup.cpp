// Reproduces Figure 9: Gaussian elimination with partial pivoting for
// matrices of 250..3000, on up to 64 cores (2 GFLOPS each), under Nexus++,
// Nexus# 1 TG and Nexus# 2 TGs — all at 100 MHz, as in the paper. The
// baseline is the single-core execution time under Nexus++ (Section VI).
//
// The benchmark is the worst case for the distribution function (every wave
// funnels into the pivot row's task graph) and validates the dummy-entry
// mechanism: up to n-1 tasks wait on a single address.
//
// Flags: --quick     sizes {250,1000}, cores {1,8,64}
//        --max-n     largest matrix size to run (default 3000)
//        --csv       emit CSV rows
#include <cstdio>
#include <vector>

#include "nexus/common/flags.hpp"
#include "nexus/harness/experiment.hpp"
#include "nexus/workloads/workloads.hpp"

using namespace nexus;
using namespace nexus::harness;

int main(int argc, char** argv) {
  const Flags flags(argc, argv,
                    {{"quick", "reduced grid"},
                     {"max-n", "largest matrix size"},
                     {"csv", "emit csv"}});
  const bool quick = flags.get_bool("quick", false);
  const bool csv = flags.get_bool("csv", false);
  const auto max_n = flags.get_int("max-n", 3000);

  std::vector<int> sizes{250, 500, 1000, 3000};
  if (quick) sizes = {250, 1000};
  const std::vector<std::uint32_t> cores =
      quick ? std::vector<std::uint32_t>{1, 8, 64} : paper_cores_64();

  for (const int n : sizes) {
    if (n > max_n) continue;
    const Trace tr = workloads::make_gaussian({.n = n});
    std::fprintf(stderr, "[fig9] gaussian-%d: %zu tasks\n", n, tr.num_tasks());

    // Paper baseline: "the single-core execution time using Nexus++".
    const ManagerSpec npp = ManagerSpec::nexuspp_default();
    const Tick base = run_once(tr, npp, 1);

    std::vector<Series> series;
    series.push_back(sweep(tr, npp, cores, base));
    series.push_back(sweep(tr, ManagerSpec::nexussharp(1, 100.0), cores, base));
    series.back().label = "nexus#-1TG@100MHz";
    series.push_back(sweep(tr, ManagerSpec::nexussharp(2, 100.0), cores, base));
    series.back().label = "nexus#-2TG@100MHz";

    char title[64];
    std::snprintf(title, sizeof title, "Fig. 9: gaussian elimination, matrix %d", n);
    print_series(title, cores, series, csv);
  }
  std::printf("\nPaper's reading: Nexus# (2TG) improves ~19%% over Nexus++ on the\n"
              "finest tasks (matrix-250) and ~10%% as matrices grow; more TGs do\n"
              "not help because each wave's pivot row maps to one graph.\n");
  return 0;
}
