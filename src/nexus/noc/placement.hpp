// Tile placement search: where should the logical endpoints sit on the
// fabric?
//
// The Network records a flit-weighted traffic matrix between logical
// endpoints; given a topology, a placement assigns each endpoint a router
// tile, and its quality is the weighted hop distance the measured traffic
// would pay under that layout. This header provides the cost function and a
// deterministic two-phase optimizer — steepest-descent pairwise swaps to a
// local optimum, then a seeded simulated-annealing refinement — so the same
// traffic matrix and seed always produce the same assignment (a tested
// determinism contract, like every other search in this repo). Filler
// routers of a mesh/torus count as legal tiles: pulling a hot endpoint onto
// a central filler is often the winning move.
#pragma once

#include <cstdint>
#include <vector>

#include "nexus/noc/topology.hpp"

namespace nexus::noc {

/// Flit-weighted message volume between logical endpoints, row-major
/// src x dst. Build one from Network::Stats::traffic or synthesize one.
struct TrafficMatrix {
  explicit TrafficMatrix(std::uint32_t endpoint_count)
      : endpoints(endpoint_count),
        flits(static_cast<std::size_t>(endpoint_count) * endpoint_count, 0) {}

  /// Wrap a measured Network traffic vector (endpoints x endpoints).
  static TrafficMatrix from_network(std::uint32_t endpoint_count,
                                    std::vector<std::uint64_t> measured);

  std::uint32_t endpoints;
  std::vector<std::uint64_t> flits;

  [[nodiscard]] std::uint64_t at(NodeId src, NodeId dst) const {
    return flits[static_cast<std::size_t>(src) * endpoints + dst];
  }
  void add(NodeId src, NodeId dst, std::uint64_t n) {
    flits[static_cast<std::size_t>(src) * endpoints + dst] += n;
  }
};

struct PlacementOptions {
  /// Annealing RNG seed; the whole search is a pure function of
  /// (topology, traffic, options).
  std::uint64_t seed = 0x9E3779B97F4A7C15ULL;
  /// Annealing proposals after the greedy descent; 0 disables the phase
  /// (pure greedy stays a deterministic local optimum).
  std::uint32_t anneal_iterations = 4000;
  /// Initial temperature as a fraction of the greedy-optimum cost.
  double initial_temperature_frac = 0.05;
  /// Geometric cooling applied every proposal.
  double cooling = 0.999;
};

struct PlacementResult {
  /// endpoint -> tile; install as NocConfig::placement.
  std::vector<std::uint32_t> assignment;
  std::uint64_t initial_cost = 0;  ///< identity-layout cost
  std::uint64_t cost = 0;          ///< optimized cost (<= initial_cost)
  std::uint32_t greedy_swaps = 0;
  std::uint32_t anneal_accepts = 0;
};

/// Weighted hop distance of `assignment` (endpoint -> tile) under `topo`:
/// sum over endpoint pairs of traffic * hops(tile(src), tile(dst)).
std::uint64_t placement_cost(const Topology& topo,
                             const std::vector<std::uint32_t>& assignment,
                             const TrafficMatrix& traffic);

/// Search for a low-cost placement. Deterministic: identical inputs yield
/// an identical assignment. On the ideal crossbar every layout costs the
/// same; the identity assignment is returned unchanged.
PlacementResult optimize_placement(const Topology& topo,
                                   const TrafficMatrix& traffic,
                                   const PlacementOptions& opts = {});

}  // namespace nexus::noc
