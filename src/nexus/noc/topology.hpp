// nexus::noc — topology-aware interconnect model for distributed traffic.
//
// The paper's Nexus# spreads dependency tracking across task graph units,
// but every core<->TGU and TGU<->arbiter message in the baseline model costs
// a flat FIFO visibility latency, which makes the cost of distribution — the
// central trade-off of a *distributed* hardware task manager — invisible.
// This layer provides the geometry half of the interconnect model: a
// Topology maps endpoint ids to nodes on an ideal crossbar, a bidirectional
// ring, a 2D mesh, or a 2D torus (the mesh plus wraparound links), and
// computes deterministic hop routes (XY routing on the mesh, shortest-way
// XY with wraparound on the torus, shortest-way with a clockwise tie-break
// on the ring). The Network (network.hpp) carries messages over those
// routes with per-hop latency and per-link serialization.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "nexus/common/assert.hpp"

namespace nexus::noc {

enum class TopologyKind : std::uint8_t {
  kIdeal = 0,  ///< single-hop crossbar, uniform latency, no contention
  kRing = 1,   ///< bidirectional ring, shortest-way routing
  kMesh = 2,   ///< 2D mesh, dimension-ordered (XY) routing
  kTorus = 3,  ///< 2D torus: mesh + wraparound, shortest-way XY routing
};

const char* to_string(TopologyKind k);

/// Parse "ideal" / "ring" / "mesh" / "torus" (case-sensitive). False on
/// anything else.
bool parse_topology(std::string_view name, TopologyKind* out);

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;

/// Payload bytes one task parameter contributes to a message: a 48-bit
/// address crosses the interconnect as two 32-bit packets (the same
/// granularity as the recv_per_param cycle counts).
inline constexpr std::uint32_t kParamBytes = 8;

/// Interconnect configuration embedded in a block's config (NexusSharpConfig,
/// NexusPPConfig, RuntimeConfig). The default — ideal topology — reproduces
/// the legacy uniform-FIFO-latency behaviour bit-identically.
struct NocConfig {
  TopologyKind kind = TopologyKind::kIdeal;

  /// Mesh/torus columns; 0 picks a near-square geometry
  /// (ceil(sqrt(endpoints))).
  std::uint32_t mesh_cols = 0;

  /// Per-hop router + wire traversal latency, in interconnect clock cycles.
  /// The default matches the legacy FIFO visibility latency, so a one-hop
  /// route costs the same as the ideal crossbar.
  std::int64_t hop_cycles = 3;

  /// Per-link serialization: a link accepts one flit every `link_cycles`
  /// cycles. This is where contention and queuing come from.
  std::int64_t link_cycles = 1;

  /// Link width: one flit carries this many payload bytes. A message is one
  /// header flit plus ceil(payload_bytes / flit_bytes) payload flits, so
  /// large-argument messages occupy every link on their route longer.
  std::uint32_t flit_bytes = 8;

  /// Interconnect clock in MHz; 0 inherits the owning block's clock domain.
  double freq_mhz = 0.0;

  /// Endpoint -> tile assignment (see noc/placement.hpp). Empty means the
  /// identity layout (endpoint e on router e); otherwise it must be a
  /// size-`endpoints` injection into the topology's router grid — filler
  /// routers of a mesh/torus are legal tiles too.
  std::vector<std::uint32_t> placement;

  /// Report/perfdiff label of the placement ("default" for the identity
  /// layout); benches installing an optimized assignment set it so the two
  /// layouts stay distinct rows in the BENCH trajectory.
  std::string placement_name = "default";

  [[nodiscard]] bool ideal() const { return kind == TopologyKind::kIdeal; }
};

/// Node/link geometry and routing. Endpoints 0..endpoints-1 attach to the
/// first `endpoints` routers by default (the Network applies a placement on
/// top); a mesh/torus may have extra filler routers so the grid is
/// rectangular (they route traffic but host no endpoint).
class Topology {
 public:
  Topology(TopologyKind kind, std::uint32_t endpoints,
           std::uint32_t mesh_cols = 0);

  [[nodiscard]] TopologyKind kind() const { return kind_; }
  [[nodiscard]] std::uint32_t endpoints() const { return endpoints_; }
  [[nodiscard]] std::uint32_t node_count() const { return nodes_; }
  [[nodiscard]] std::uint32_t link_count() const {
    return static_cast<std::uint32_t>(links_.size());
  }
  /// Mesh/torus geometry (both 0 for ideal/ring).
  [[nodiscard]] std::uint32_t rows() const { return rows_; }
  [[nodiscard]] std::uint32_t cols() const { return cols_; }

  /// Hop count of the deterministic route (0 iff from == to; 1 for any
  /// ideal-crossbar traversal).
  [[nodiscard]] std::uint32_t hops(NodeId from, NodeId to) const;

  /// First link of the route from `from` towards `to`. Precondition:
  /// from != to and the topology is not ideal (the crossbar has no links).
  [[nodiscard]] LinkId next_link(NodeId from, NodeId to) const;

  [[nodiscard]] NodeId link_src(LinkId l) const { return links_[l].src; }
  [[nodiscard]] NodeId link_dst(LinkId l) const { return links_[l].dst; }

  /// Full route as a link sequence (empty when from == to or ideal).
  void route(NodeId from, NodeId to, std::vector<LinkId>* out) const;

  /// Telemetry-path-safe link label, e.g. "l4_2to5".
  [[nodiscard]] std::string link_label(LinkId l) const;

  /// Human/report label: "ideal", "ring8", "mesh3x3", "torus3x3".
  [[nodiscard]] std::string describe() const;

 private:
  struct Link {
    NodeId src = 0;
    NodeId dst = 0;
  };

  [[nodiscard]] LinkId link_between(NodeId a, NodeId b) const;
  void add_link(NodeId src, NodeId dst);

  TopologyKind kind_;
  std::uint32_t endpoints_;
  std::uint32_t rows_ = 0;
  std::uint32_t cols_ = 0;
  std::uint32_t nodes_;
  std::vector<Link> links_;
  /// Outgoing link ids per node (degree <= 4), searched linearly.
  std::vector<std::vector<LinkId>> out_links_;
};

}  // namespace nexus::noc
