#include "nexus/noc/network.hpp"

#include <algorithm>
#include <string>

#include "nexus/telemetry/profiler.hpp"
#include "nexus/telemetry/registry.hpp"
#include "nexus/telemetry/trace.hpp"

namespace nexus::noc {

Network::Network(const NocConfig& cfg, std::uint32_t endpoints,
                 double default_mhz, Tick ideal_latency)
    : cfg_(cfg),
      topo_(cfg.kind, endpoints, cfg.mesh_cols),
      clk_(cfg.freq_mhz > 0.0 ? cfg.freq_mhz : default_mhz),
      ideal_latency_(ideal_latency),
      links_(topo_.link_count()),
      traffic_(static_cast<std::size_t>(endpoints) * endpoints, 0) {
  NEXUS_ASSERT_MSG(cfg.hop_cycles >= 0 && cfg.link_cycles >= 1,
                   "noc needs hop_cycles >= 0 and link_cycles >= 1");
  NEXUS_ASSERT_MSG(cfg.flit_bytes >= 1, "noc needs flit_bytes >= 1");
  if (!cfg_.placement.empty()) {
    NEXUS_ASSERT_MSG(cfg_.placement.size() == endpoints,
                     "placement must assign every endpoint a tile");
    std::vector<bool> used(topo_.node_count(), false);
    for (const std::uint32_t tile : cfg_.placement) {
      NEXUS_ASSERT_MSG(tile < topo_.node_count(),
                       "placement tile outside the router grid");
      NEXUS_ASSERT_MSG(!used[tile], "placement maps two endpoints to a tile");
      used[tile] = true;
    }
  }
}

void Network::attach(Simulation& sim) { self_ = sim.add_component(this); }

void Network::bind_telemetry(telemetry::MetricRegistry& reg,
                             std::string_view prefix) {
  m_messages_ = &reg.counter(telemetry::path_join(prefix, "messages"));
  m_delivered_ = &reg.counter(telemetry::path_join(prefix, "delivered"));
  m_flits_ = &reg.counter(telemetry::path_join(prefix, "flits"));
  m_delivered_flits_ =
      &reg.counter(telemetry::path_join(prefix, "delivered_flits"));
  m_blocked_ = &reg.counter(telemetry::path_join(prefix, "blocked_flits"));
  m_stall_ticks_ = &reg.counter(telemetry::path_join(prefix, "stall_ps"));
  m_hops_ = &reg.histogram(telemetry::path_join(prefix, "hops"));
  m_in_flight_ = &reg.histogram(telemetry::path_join(prefix, "in_flight"));
  for (LinkId l = 0; l < topo_.link_count(); ++l) {
    const std::string link =
        telemetry::path_join(prefix, "link/" + topo_.link_label(l));
    links_[l].m_flits = &reg.counter(link + "/flits");
    links_[l].m_busy = &reg.counter(link + "/busy_ps");
  }
}

void Network::bind_trace(telemetry::TraceRecorder* trace,
                         std::string_view name,
                         std::vector<std::string> op_names) {
  trace_ = trace;
  trace_name_.assign(name);
  trace_ops_ = std::move(op_names);
  trace_links_.clear();
  trace_links_.reserve(topo_.link_count());
  for (LinkId l = 0; l < topo_.link_count(); ++l)
    trace_links_.push_back(topo_.link_label(l));
}

void Network::bind_profiler(Simulation& sim, std::vector<std::string> op_names) {
  prof_ = sim.profiler();
  if (prof_ == nullptr) return;
  prof_parent_ = sim.profiler_component_node(self_);
  // Share the op spellings with the trace layer so a profile and a trace of
  // the same run agree on message-kind names.
  if (trace_ops_.empty()) trace_ops_ = std::move(op_names);
  prof_send_.clear();
}

std::uint32_t Network::prof_send_node(std::uint32_t op) {
  while (prof_send_.size() <= op) {
    const auto next = static_cast<std::uint32_t>(prof_send_.size());
    prof_send_.push_back(
        prof_->node(prof_parent_, "send:" + std::string(op_label(next))));
  }
  return prof_send_[op];
}

std::string_view Network::op_label(std::uint32_t op) {
  // Fallback labels are grown on demand and kept, so the recorder's string
  // interner always sees a stable spelling for a given op code.
  while (trace_ops_.size() <= op)
    trace_ops_.push_back("op" + std::to_string(trace_ops_.size()));
  return trace_ops_[op];
}

void Network::send(Simulation& sim, Tick depart, NodeId src, NodeId dst,
                   std::uint32_t comp, std::uint32_t op, std::uint64_t a,
                   std::uint64_t b, std::uint32_t payload_bytes) {
  NEXUS_DCHECK(depart >= sim.now());
  NEXUS_DCHECK(src < topo_.endpoints() && dst < topo_.endpoints());
  telemetry::ProfScope prof_scope(prof_,
                                  prof_ != nullptr ? prof_send_node(op) : 0);
  const std::uint32_t flits = flits_for(payload_bytes);
  ++messages_;
  injected_flits_ += flits;
  traffic_[static_cast<std::size_t>(src) * topo_.endpoints() + dst] += flits;
  telemetry::inc(m_messages_);
  telemetry::inc(m_flits_, flits);
  std::uint32_t tmsg = 0;
  if (trace_ != nullptr) {
    tmsg = trace_->noc_send(trace_name_, src, dst, op_label(op), flits,
                            static_cast<telemetry::TraceTick>(depart));
  }
  if (cfg_.ideal() || src == dst) {
    // Direct delivery: scheduling here — from the same call site, with the
    // same timestamp arithmetic as the legacy fixed-latency FIFOs — keeps
    // event issue order (and therefore tie-breaking) bit-identical. The
    // crossbar has no links, so the flit train occupies nothing: payload
    // size is accounted (flit counters) but never charged.
    const std::uint32_t h = src == dst ? 0 : 1;
    total_hops_ += h;
    ++delivered_;
    delivered_flits_ += flits;
    telemetry::record(m_hops_, h);
    telemetry::inc(m_delivered_);
    telemetry::inc(m_delivered_flits_, flits);
    const Tick deliver = depart + (src == dst ? 0 : ideal_latency_);
    if (trace_ != nullptr)
      trace_->noc_deliver(tmsg, static_cast<telemetry::TraceTick>(deliver));
    sim.schedule(deliver, comp, op, a, b);
    return;
  }

  std::uint32_t slot = 0;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    msgs_[slot] = Msg{};
  } else {
    slot = static_cast<std::uint32_t>(msgs_.size());
    msgs_.emplace_back();
  }
  Msg& m = msgs_[slot];
  m.at = tile_of(src);
  m.dst = tile_of(dst);
  m.comp = comp;
  m.op = op;
  m.a = a;
  m.b = b;
  m.flits = flits;
  m.tmsg = tmsg;
  ++in_flight_;
  max_in_flight_ = std::max(max_in_flight_, in_flight_);
  telemetry::record(m_in_flight_, in_flight_);
  sim.schedule(depart, self_, kHop, slot);
}

void Network::handle(Simulation& sim, const Event& ev) {
  switch (ev.op) {
    case kHop:
      hop(sim, static_cast<std::uint32_t>(ev.a));
      break;
    default:
      NEXUS_ASSERT_MSG(false, "unknown Network op");
  }
}

void Network::hop(Simulation& sim, std::uint32_t slot) {
  Msg& m = msgs_[slot];
  const Tick now = sim.now();
  if (m.at == m.dst) {
    // Arrived: hand the payload to its endpoint component at this time (a
    // same-time event keeps delivery in deterministic issue order).
    ++delivered_;
    total_hops_ += m.hops;
    delivered_flits_ += m.flits;
    telemetry::inc(m_delivered_);
    telemetry::inc(m_delivered_flits_, m.flits);
    telemetry::record(m_hops_, m.hops);
    if (trace_ != nullptr)
      trace_->noc_deliver(m.tmsg, static_cast<telemetry::TraceTick>(now));
    sim.schedule(now, m.comp, m.op, m.a, m.b);
    NEXUS_DCHECK(in_flight_ > 0);
    --in_flight_;
    free_slots_.push_back(slot);
    return;
  }

  // One flit per link per `link_cycles`: wait for the output link, occupy
  // it for the whole flit train, and emerge at the next router once the
  // tail has crossed (hop latency + the train's serialization beyond the
  // head flit). Later messages queue behind earlier ones (FIFO in
  // deterministic event order), which is exactly the serialization and
  // backpressure an overloaded link produces — and a large-payload message
  // now really owns each link `flits` times longer than a bare record.
  const LinkId l = topo_.next_link(m.at, m.dst);
  LinkState& link = links_[l];
  const Tick start = std::max(now, link.free_at);
  if (start > now) {
    ++blocked_flits_;
    stall_ticks_ += start - now;
    telemetry::inc(m_blocked_);
    telemetry::inc(m_stall_ticks_, static_cast<std::uint64_t>(start - now));
  }
  const Tick ser = cycles(cfg_.link_cycles * m.flits);
  if (trace_ != nullptr) {
    trace_->noc_link(m.tmsg, trace_links_[l],
                     static_cast<telemetry::TraceTick>(start),
                     static_cast<telemetry::TraceTick>(ser));
  }
  link.free_at = start + ser;
  link.busy += ser;
  link.flits += m.flits;
  if (link.m_flits != nullptr) {
    link.m_flits->inc(m.flits);
    link.m_busy->inc(static_cast<std::uint64_t>(ser));
  }
  ++m.hops;
  m.at = topo_.link_dst(l);
  sim.schedule(start + cycles(cfg_.hop_cycles + cfg_.link_cycles *
                                                    (m.flits - 1)),
               self_, kHop, slot);
}

Network::Stats Network::stats() const {
  Stats s;
  s.messages = messages_;
  s.delivered = delivered_;
  s.total_hops = total_hops_;
  s.injected_flits = injected_flits_;
  s.delivered_flits = delivered_flits_;
  s.blocked_flits = blocked_flits_;
  s.stall_ticks = stall_ticks_;
  s.max_in_flight = max_in_flight_;
  s.link_flits.reserve(links_.size());
  s.link_busy.reserve(links_.size());
  for (const LinkState& l : links_) {
    s.link_flits.push_back(l.flits);
    s.link_busy.push_back(l.busy);
  }
  s.traffic = traffic_;
  return s;
}

}  // namespace nexus::noc
