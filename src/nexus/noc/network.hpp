// The interconnect simulation component: typed messages over a Topology.
//
// A Network carries (component, op, a, b) payloads between logical
// endpoints; a placement (NocConfig::placement) maps each endpoint to its
// router tile, so the same traffic can be laid out differently on the same
// fabric. Under the ideal topology every send is delivered directly after
// the uniform latency — no intermediate events, so wiring a Network into a
// block is provably perturbation-free (the legacy fixed-latency FIFO
// behaviour, bit-identical, is a tested contract). Under ring/mesh/torus
// each message hops link by link as a worm of `1 + ceil(payload_bytes /
// flit_bytes)` flits: a link accepts one flit every `link_cycles`
// (serialization => real contention and queuing; a saturated link backs
// later flits up behind it, and a long message occupies each link for its
// whole flit train), and each hop adds `hop_cycles` of router+wire latency
// before the tail clears the next router. Per-link utilization, hop
// histograms, flit counts, in-flight depth and contention stalls are
// exported through the telemetry registry and are timeline-samplable like
// every other component's metrics; a per-endpoint-pair traffic matrix feeds
// the placement search (noc/placement.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "nexus/noc/topology.hpp"
#include "nexus/sim/simulation.hpp"
#include "nexus/telemetry/fwd.hpp"
#include "nexus/telemetry/metrics.hpp"

namespace nexus::noc {

class Network final : public Component {
 public:
  /// `default_mhz` clocks the interconnect when cfg.freq_mhz is 0 (the
  /// owning block's domain); `ideal_latency` is the uniform delivery delay
  /// under the ideal topology (the legacy FIFO visibility latency).
  Network(const NocConfig& cfg, std::uint32_t endpoints, double default_mhz,
          Tick ideal_latency);

  /// Register with the simulation. Call after the owning block's own
  /// components so their ids (and telemetry labels) keep their positions.
  void attach(Simulation& sim);

  [[nodiscard]] const Topology& topology() const { return topo_; }
  [[nodiscard]] bool ideal() const { return cfg_.ideal(); }
  [[nodiscard]] const NocConfig& config() const { return cfg_; }

  /// Router tile hosting logical endpoint `e` (identity without a
  /// configured placement).
  [[nodiscard]] NodeId tile_of(NodeId e) const {
    return cfg_.placement.empty() ? e : cfg_.placement[e];
  }

  /// Flits of a message with `payload_bytes` of payload: one header flit
  /// plus ceil(payload_bytes / flit_bytes).
  [[nodiscard]] std::uint32_t flits_for(std::uint32_t payload_bytes) const {
    return 1 + (payload_bytes + cfg_.flit_bytes - 1) / cfg_.flit_bytes;
  }

  /// Deliver (comp, op, a, b) after traversing endpoint src -> dst,
  /// departing at `depart` (>= sim.now()). Ideal: one event at depart +
  /// ideal_latency (depart exactly, when src == dst). Ring/mesh/torus: the
  /// message hops tile to tile with per-link serialization — every link on
  /// the route is occupied for the message's whole flit train, so
  /// `payload_bytes` (a parameter list, a descriptor) directly stretches
  /// link occupancy and queuing behind it.
  void send(Simulation& sim, Tick depart, NodeId src, NodeId dst,
            std::uint32_t comp, std::uint32_t op, std::uint64_t a = 0,
            std::uint64_t b = 0, std::uint32_t payload_bytes = 0);

  // Component
  void handle(Simulation& sim, const Event& ev) override;
  [[nodiscard]] const char* telemetry_label() const override { return "noc"; }

  /// Register interconnect metrics under `prefix` (e.g. "nexus#/noc"):
  /// messages/delivered counters, hop + in-flight histograms, contention
  /// stalls, and per-link flit counts and busy time.
  void bind_telemetry(telemetry::MetricRegistry& reg, std::string_view prefix);

  /// Attach a span recorder: every send becomes a trace message named under
  /// `name`, delivered messages get an arrival stamp, and routed topologies
  /// additionally record one link-occupancy span per hop. `op_names`
  /// optionally labels the op codes; unknown ops fall back to "op<N>".
  void bind_trace(telemetry::TraceRecorder* trace, std::string_view name,
                  std::vector<std::string> op_names = {});

  /// Attach the host profiler bound to `sim` (no-op if none): send() time
  /// accumulates into per-op-kind "send:<label>" children of this
  /// component's profile node, so the profile separates injection cost by
  /// message kind from the hop/delivery time handled under the component
  /// node itself. Call after attach(); shares op spellings with
  /// bind_trace when both are bound.
  void bind_profiler(Simulation& sim, std::vector<std::string> op_names = {});

  // --- introspection for tests and reports ---
  struct Stats {
    std::uint64_t messages = 0;   ///< send() calls
    std::uint64_t delivered = 0;  ///< messages that reached their endpoint
    std::uint64_t total_hops = 0;
    std::uint64_t injected_flits = 0;   ///< summed per-message flit counts
    std::uint64_t delivered_flits = 0;  ///< flits of delivered messages
    std::uint64_t blocked_flits = 0;  ///< hop acquisitions that had to wait
    Tick stall_ticks = 0;             ///< summed link-wait time
    std::uint64_t max_in_flight = 0;
    std::vector<std::uint64_t> link_flits;  ///< per link
    std::vector<Tick> link_busy;            ///< per link, serialization time
    /// Flit-weighted traffic between logical endpoints, row-major
    /// endpoints() x endpoints() — the measured input of the placement
    /// search (placement-independent: recorded before the tile mapping).
    std::vector<std::uint64_t> traffic;
  };
  [[nodiscard]] Stats stats() const;

 private:
  enum Op : std::uint32_t {
    kHop = 0,  ///< a = message slot
  };

  struct Msg {
    NodeId at = 0;
    NodeId dst = 0;
    std::uint32_t comp = 0;
    std::uint32_t op = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint32_t hops = 0;
    std::uint32_t flits = 1;
    std::uint32_t tmsg = 0;  ///< TraceRecorder message handle (trace_ set)
  };

  [[nodiscard]] Tick cycles(std::int64_t n) const { return clk_.cycles(n); }
  void hop(Simulation& sim, std::uint32_t slot);
  [[nodiscard]] std::string_view op_label(std::uint32_t op);
  [[nodiscard]] std::uint32_t prof_send_node(std::uint32_t op);

  /// Everything a hop touches about one link, in one cache line: the
  /// serialization horizon, the stats mirrors, and the telemetry pointers.
  /// The old layout spread these over five parallel vectors, so a single
  /// link acquisition paid up to five cache misses — this bookkeeping
  /// dominates large-fabric runs, where hops outnumber messages ~6:1.
  struct LinkState {
    Tick free_at = 0;           ///< serialization horizon
    Tick busy = 0;              ///< accumulated serialization time
    std::uint64_t flits = 0;    ///< flits that crossed this link
    telemetry::Counter* m_flits = nullptr;
    telemetry::Counter* m_busy = nullptr;  ///< picoseconds
  };

  NocConfig cfg_;
  Topology topo_;
  ClockDomain clk_;
  Tick ideal_latency_;
  std::uint32_t self_ = 0;

  std::vector<Msg> msgs_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t in_flight_ = 0;
  std::vector<LinkState> links_;  ///< per-link horizon + mirrors, hot

  // --- stats mirrors (always on; cheap integer updates) ---
  std::uint64_t messages_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t total_hops_ = 0;
  std::uint64_t injected_flits_ = 0;
  std::uint64_t delivered_flits_ = 0;
  std::uint64_t blocked_flits_ = 0;
  Tick stall_ticks_ = 0;
  std::uint64_t max_in_flight_ = 0;
  std::vector<std::uint64_t> traffic_;  ///< endpoints x endpoints, flits

  telemetry::Profiler* prof_ = nullptr;
  std::uint32_t prof_parent_ = 0;
  std::vector<std::uint32_t> prof_send_;  ///< per-op nodes, grown on demand

  telemetry::TraceRecorder* trace_ = nullptr;
  std::string trace_name_;
  std::vector<std::string> trace_ops_;    ///< op-code labels (grown on demand)
  std::vector<std::string> trace_links_;  ///< cached per-link labels

  telemetry::Counter* m_messages_ = nullptr;
  telemetry::Counter* m_delivered_ = nullptr;
  telemetry::Counter* m_flits_ = nullptr;           ///< injected flits
  telemetry::Counter* m_delivered_flits_ = nullptr;
  telemetry::Counter* m_blocked_ = nullptr;
  telemetry::Counter* m_stall_ticks_ = nullptr;     ///< picoseconds
  telemetry::Histogram* m_hops_ = nullptr;          ///< per delivered message
  telemetry::Histogram* m_in_flight_ = nullptr;     ///< depth at each inject
};

}  // namespace nexus::noc
