#include "nexus/noc/placement.hpp"

#include <cmath>
#include <utility>

#include "nexus/common/rng.hpp"

namespace nexus::noc {

TrafficMatrix TrafficMatrix::from_network(std::uint32_t endpoint_count,
                                          std::vector<std::uint64_t> measured) {
  TrafficMatrix m(endpoint_count);
  NEXUS_ASSERT_MSG(measured.size() == m.flits.size(),
                   "traffic vector does not match the endpoint count");
  m.flits = std::move(measured);
  return m;
}

std::uint64_t placement_cost(const Topology& topo,
                             const std::vector<std::uint32_t>& assignment,
                             const TrafficMatrix& traffic) {
  NEXUS_ASSERT_MSG(assignment.size() == traffic.endpoints &&
                       traffic.endpoints <= topo.node_count(),
                   "assignment/traffic/topology sizes disagree");
  std::uint64_t cost = 0;
  for (NodeId s = 0; s < traffic.endpoints; ++s) {
    for (NodeId d = 0; d < traffic.endpoints; ++d) {
      const std::uint64_t f = traffic.at(s, d);
      if (f == 0) continue;
      cost += f * topo.hops(assignment[s], assignment[d]);
    }
  }
  return cost;
}

namespace {

/// Apply "endpoint e moves to tile t" to (assignment, tile_owner): if t is
/// occupied the two endpoints swap tiles, otherwise e moves onto the free
/// (filler) tile. Self-inverse: a second call with e's previous tile
/// restores both structures exactly, so candidates can be evaluated with an
/// apply/undo pair instead of cloning the state.
void apply_move(std::vector<std::uint32_t>* assignment,
                std::vector<std::int32_t>* tile_owner, NodeId e,
                std::uint32_t t) {
  const std::uint32_t from = (*assignment)[e];
  const std::int32_t other = (*tile_owner)[t];
  if (other >= 0) {
    (*assignment)[static_cast<std::size_t>(other)] = from;
    (*tile_owner)[from] = other;
  } else {
    (*tile_owner)[from] = -1;
  }
  (*assignment)[e] = t;
  (*tile_owner)[t] = static_cast<std::int32_t>(e);
}

/// Cost terms involving endpoint e (both traffic directions), excluding
/// pairs with `skip` so two contributions can be summed without double
/// counting. A move only changes the terms of the endpoints it touches, so
/// candidate costs are O(endpoints) deltas off the current cost instead of
/// full O(endpoints^2) recomputations.
std::uint64_t endpoint_contrib(const Topology& topo,
                               const std::vector<std::uint32_t>& assignment,
                               const TrafficMatrix& traffic, NodeId e,
                               NodeId skip) {
  std::uint64_t sum = 0;
  for (NodeId d = 0; d < traffic.endpoints; ++d) {
    if (d == e || d == skip) continue;
    const std::uint32_t h_out = topo.hops(assignment[e], assignment[d]);
    const std::uint32_t h_in = topo.hops(assignment[d], assignment[e]);
    sum += traffic.at(e, d) * h_out + traffic.at(d, e) * h_in;
  }
  return sum;
}

/// Cost of the current assignment after moving e to t, via apply /
/// delta-measure / undo. Exact integer arithmetic: bit-identical to a full
/// placement_cost recomputation.
std::uint64_t moved_cost(const Topology& topo,
                         std::vector<std::uint32_t>* assignment,
                         std::vector<std::int32_t>* tile_owner,
                         const TrafficMatrix& traffic, std::uint64_t cur_cost,
                         NodeId e, std::uint32_t t) {
  const std::uint32_t from = (*assignment)[e];
  const std::int32_t other = (*tile_owner)[t];
  const auto f = other >= 0 ? static_cast<NodeId>(other) : e;
  std::uint64_t before = endpoint_contrib(topo, *assignment, traffic, e, e);
  if (f != e) before += endpoint_contrib(topo, *assignment, traffic, f, e);
  apply_move(assignment, tile_owner, e, t);
  std::uint64_t after = endpoint_contrib(topo, *assignment, traffic, e, e);
  if (f != e) after += endpoint_contrib(topo, *assignment, traffic, f, e);
  apply_move(assignment, tile_owner, e, from);  // undo
  return cur_cost - before + after;
}

}  // namespace

PlacementResult optimize_placement(const Topology& topo,
                                   const TrafficMatrix& traffic,
                                   const PlacementOptions& opts) {
  const std::uint32_t endpoints = traffic.endpoints;
  PlacementResult res;
  res.assignment.resize(endpoints);
  for (NodeId e = 0; e < endpoints; ++e) res.assignment[e] = e;
  res.initial_cost = placement_cost(topo, res.assignment, traffic);
  res.cost = res.initial_cost;
  if (topo.kind() == TopologyKind::kIdeal) return res;  // every layout ties

  std::vector<std::int32_t> tile_owner(topo.node_count(), -1);
  for (NodeId e = 0; e < endpoints; ++e)
    tile_owner[e] = static_cast<std::int32_t>(e);

  // Phase 1 — steepest descent: apply the best strictly-improving
  // move/swap until none exists. Candidate order (endpoint-major, tile
  // ascending) and the strict `<` make every tie-break deterministic.
  for (;;) {
    std::uint64_t best_cost = res.cost;
    NodeId best_e = 0;
    std::uint32_t best_t = 0;
    bool found = false;
    for (NodeId e = 0; e < endpoints; ++e) {
      for (std::uint32_t t = 0; t < topo.node_count(); ++t) {
        if (res.assignment[e] == t) continue;
        const std::uint64_t c = moved_cost(topo, &res.assignment, &tile_owner,
                                           traffic, res.cost, e, t);
        if (c < best_cost) {
          best_cost = c;
          best_e = e;
          best_t = t;
          found = true;
        }
      }
    }
    if (!found) break;
    apply_move(&res.assignment, &tile_owner, best_e, best_t);
    res.cost = best_cost;
    ++res.greedy_swaps;
  }

  // Phase 2 — seeded annealing around the local optimum: random move
  // proposals, worse ones accepted with probability exp(-delta/T) under
  // geometric cooling. The engine is the repo's deterministic xoshiro (one
  // uniform drawn per worsening proposal, none otherwise), so the
  // refinement reproduces bit-identically for a given seed.
  if (opts.anneal_iterations > 0) {
    Xoshiro256 rng(opts.seed);
    std::vector<std::uint32_t> cur = res.assignment;
    std::vector<std::int32_t> owner = tile_owner;
    std::uint64_t cur_cost = res.cost;
    double temp =
        opts.initial_temperature_frac * static_cast<double>(res.cost) + 1.0;
    for (std::uint32_t i = 0; i < opts.anneal_iterations; ++i) {
      const NodeId e = static_cast<NodeId>(rng.below(endpoints));
      const std::uint32_t t =
          static_cast<std::uint32_t>(rng.below(topo.node_count()));
      temp *= opts.cooling;
      if (cur[e] == t) continue;
      const std::uint64_t c =
          moved_cost(topo, &cur, &owner, traffic, cur_cost, e, t);
      const bool accept =
          c <= cur_cost ||
          rng.uniform() < std::exp(-static_cast<double>(c - cur_cost) / temp);
      if (!accept) continue;
      apply_move(&cur, &owner, e, t);
      cur_cost = c;
      ++res.anneal_accepts;
      if (cur_cost < res.cost) {
        res.cost = cur_cost;
        res.assignment = cur;
      }
    }
  }
  return res;
}

}  // namespace nexus::noc
