#include "nexus/noc/topology.hpp"

#include <algorithm>

namespace nexus::noc {

const char* to_string(TopologyKind k) {
  switch (k) {
    case TopologyKind::kIdeal: return "ideal";
    case TopologyKind::kRing: return "ring";
    case TopologyKind::kMesh: return "mesh";
    case TopologyKind::kTorus: return "torus";
  }
  return "?";
}

bool parse_topology(std::string_view name, TopologyKind* out) {
  if (name == "ideal") {
    *out = TopologyKind::kIdeal;
  } else if (name == "ring") {
    *out = TopologyKind::kRing;
  } else if (name == "mesh") {
    *out = TopologyKind::kMesh;
  } else if (name == "torus") {
    *out = TopologyKind::kTorus;
  } else {
    return false;
  }
  return true;
}

Topology::Topology(TopologyKind kind, std::uint32_t endpoints,
                   std::uint32_t mesh_cols)
    : kind_(kind), endpoints_(endpoints), nodes_(endpoints) {
  NEXUS_ASSERT_MSG(endpoints >= 1, "topology needs at least one endpoint");
  switch (kind_) {
    case TopologyKind::kIdeal:
      break;  // a crossbar: no modelled links
    case TopologyKind::kRing: {
      out_links_.resize(nodes_);
      // Clockwise links first (i -> i+1), then counter-clockwise. A 2-node
      // ring keeps one link per direction (the counter-clockwise set would
      // duplicate it); a 1-node ring has no links at all.
      if (nodes_ == 2) {
        add_link(0, 1);
        add_link(1, 0);
      } else if (nodes_ > 2) {
        for (NodeId i = 0; i < nodes_; ++i) add_link(i, (i + 1) % nodes_);
        for (NodeId i = 0; i < nodes_; ++i)
          add_link(i, (i + nodes_ - 1) % nodes_);
      }
      break;
    }
    case TopologyKind::kMesh:
    case TopologyKind::kTorus: {
      cols_ = mesh_cols;
      if (cols_ == 0) {
        while (cols_ * cols_ < endpoints_) ++cols_;
      }
      NEXUS_ASSERT_MSG(cols_ >= 1, "mesh needs at least one column");
      rows_ = (endpoints_ + cols_ - 1) / cols_;
      nodes_ = rows_ * cols_;  // full router grid; fillers host no endpoint
      out_links_.resize(nodes_);
      for (NodeId n = 0; n < nodes_; ++n) {
        const std::uint32_t x = n % cols_;
        const std::uint32_t y = n / cols_;
        if (x + 1 < cols_) add_link(n, n + 1);
        if (x > 0) add_link(n, n - 1);
        if (y + 1 < rows_) add_link(n, n + cols_);
        if (y > 0) add_link(n, n - cols_);
        if (kind_ == TopologyKind::kTorus) {
          // Wraparound links. Dimensions of size <= 2 already connect their
          // two nodes both ways through the mesh links (a wrap would
          // duplicate them), so wraps only exist from size 3 on — the same
          // rule the 2-node ring applies.
          if (cols_ >= 3) {
            if (x == cols_ - 1) add_link(n, n - (cols_ - 1));
            if (x == 0) add_link(n, n + (cols_ - 1));
          }
          if (rows_ >= 3) {
            if (y == rows_ - 1) add_link(n, n - (rows_ - 1) * cols_);
            if (y == 0) add_link(n, n + (rows_ - 1) * cols_);
          }
        }
      }
      break;
    }
  }
}

void Topology::add_link(NodeId src, NodeId dst) {
  out_links_[src].push_back(static_cast<LinkId>(links_.size()));
  links_.push_back(Link{src, dst});
}

LinkId Topology::link_between(NodeId a, NodeId b) const {
  for (const LinkId l : out_links_[a])
    if (links_[l].dst == b) return l;
  NEXUS_ASSERT_MSG(false, "no link between adjacent nodes");
  return 0;
}

std::uint32_t Topology::hops(NodeId from, NodeId to) const {
  NEXUS_DCHECK(from < nodes_ && to < nodes_);
  if (from == to) return 0;
  switch (kind_) {
    case TopologyKind::kIdeal:
      return 1;  // one crossbar traversal
    case TopologyKind::kRing: {
      const std::uint32_t cw = (to + nodes_ - from) % nodes_;
      const std::uint32_t ccw = (from + nodes_ - to) % nodes_;
      return cw <= ccw ? cw : ccw;
    }
    case TopologyKind::kMesh: {
      const auto dx = static_cast<std::int64_t>(to % cols_) -
                      static_cast<std::int64_t>(from % cols_);
      const auto dy = static_cast<std::int64_t>(to / cols_) -
                      static_cast<std::int64_t>(from / cols_);
      return static_cast<std::uint32_t>((dx < 0 ? -dx : dx) +
                                        (dy < 0 ? -dy : dy));
    }
    case TopologyKind::kTorus: {
      // Each dimension is a ring: the shorter way may wrap around.
      const std::uint32_t fwd_x = (to % cols_ + cols_ - from % cols_) % cols_;
      const std::uint32_t fwd_y = (to / cols_ + rows_ - from / cols_) % rows_;
      const std::uint32_t dx = fwd_x == 0 ? 0 : std::min(fwd_x, cols_ - fwd_x);
      const std::uint32_t dy = fwd_y == 0 ? 0 : std::min(fwd_y, rows_ - fwd_y);
      return dx + dy;
    }
  }
  return 0;
}

LinkId Topology::next_link(NodeId from, NodeId to) const {
  NEXUS_DCHECK(from != to && from < nodes_ && to < nodes_);
  NEXUS_ASSERT_MSG(kind_ != TopologyKind::kIdeal,
                   "the ideal crossbar has no routed links");
  if (kind_ == TopologyKind::kRing) {
    const std::uint32_t cw = (to + nodes_ - from) % nodes_;
    const std::uint32_t ccw = (from + nodes_ - to) % nodes_;
    // Shortest way; clockwise on a tie (deterministic across runs).
    const NodeId next = cw <= ccw ? (from + 1) % nodes_
                                  : (from + nodes_ - 1) % nodes_;
    return link_between(from, next);
  }
  // Mesh/torus: dimension-ordered XY routing — exhaust the x offset, then
  // y. The torus additionally picks the shorter way around each dimension's
  // ring (forward on a tie, deterministic across runs).
  const std::uint32_t fx = from % cols_;
  const std::uint32_t tx = to % cols_;
  const std::uint32_t fy = from / cols_;
  const std::uint32_t ty = to / cols_;
  NodeId next = 0;
  if (kind_ == TopologyKind::kTorus) {
    if (fx != tx) {
      const std::uint32_t fwd = (tx + cols_ - fx) % cols_;
      const std::uint32_t nx = fwd <= cols_ - fwd ? (fx + 1) % cols_
                                                  : (fx + cols_ - 1) % cols_;
      next = fy * cols_ + nx;
    } else {
      const std::uint32_t fwd = (ty + rows_ - fy) % rows_;
      const std::uint32_t ny = fwd <= rows_ - fwd ? (fy + 1) % rows_
                                                  : (fy + rows_ - 1) % rows_;
      next = ny * cols_ + fx;
    }
  } else if (fx != tx) {
    next = fx < tx ? from + 1 : from - 1;
  } else {
    next = fy < ty ? from + cols_ : from - cols_;
  }
  return link_between(from, next);
}

void Topology::route(NodeId from, NodeId to, std::vector<LinkId>* out) const {
  out->clear();
  if (kind_ == TopologyKind::kIdeal) return;
  NodeId at = from;
  while (at != to) {
    const LinkId l = next_link(at, to);
    out->push_back(l);
    at = links_[l].dst;
  }
}

std::string Topology::link_label(LinkId l) const {
  return "l" + std::to_string(l) + "_" + std::to_string(links_[l].src) + "to" +
         std::to_string(links_[l].dst);
}

std::string Topology::describe() const {
  switch (kind_) {
    case TopologyKind::kIdeal: return "ideal";
    case TopologyKind::kRing: return "ring" + std::to_string(nodes_);
    case TopologyKind::kMesh:
      return "mesh" + std::to_string(rows_) + "x" + std::to_string(cols_);
    case TopologyKind::kTorus:
      return "torus" + std::to_string(rows_) + "x" + std::to_string(cols_);
  }
  return "?";
}

}  // namespace nexus::noc
