// Synthetic workload generators reproducing the paper's benchmark traces.
//
// The paper's evaluation (Section V) replays traces collected on a 40-core
// Xeon E7-4870 for four Starbench benchmarks plus sparselu, and generates the
// Gaussian-elimination micro-benchmark analytically. We do not have the
// original traces; each generator here reproduces the *published* structure:
//
//   - the dependency pattern described in Section V-A,
//   - the task counts / total work / average task size of Table II
//     (exactly where construction permits, within rounding otherwise),
//   - the parameter-count ranges of Table II's "# deps" column,
//   - Table III's task counts and FLOP model for Gaussian elimination.
//
// Durations are seeded lognormal samples rescaled so the trace total matches
// Table II exactly; the variance parameter per benchmark is the one degree
// of freedom the paper does not publish (see DESIGN.md §5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nexus/task/trace.hpp"

namespace nexus::workloads {

// ---------------------------------------------------------------------------
// c-ray: ray tracing. One task per scan line, all independent, one parameter
// (the task's own output line, Table II "# deps" = 1). Long tasks (~6.2 ms).
// ---------------------------------------------------------------------------
struct CrayConfig {
  int lines = 1200;
  Tick total_work = ms(7381);
  double sigma = 0.35;  ///< lognormal shape: scene-dependent per-line cost
  std::uint64_t seed = 0xC0FFEE01;
};
Trace make_cray(const CrayConfig& cfg = {});

// ---------------------------------------------------------------------------
// rot-cc: image rotation + colour conversion. Two tasks per line operating
// in-place on the line buffer (1 param each, inout), so the colour-conversion
// task chains after the rotation task; pairs are mutually independent.
// ---------------------------------------------------------------------------
struct RotccConfig {
  int lines = 8131;           ///< 2 tasks/line -> 16262 tasks (Table II)
  Tick total_work = ms(8150);
  double rot_share = 0.55;    ///< fraction of a pair's work in the rotate task
  double sigma = 0.25;
  std::uint64_t seed = 0xC0FFEE02;
};
Trace make_rotcc(const RotccConfig& cfg = {});

// ---------------------------------------------------------------------------
// sparselu: blocked sparse LU factorization (the OmpSs developers' kernel).
// Tasks: lu0 (diag, 1 param), fwd/bdiv (2 params), bmod (3 params); bmod can
// create fill-in. The classic structural-sparsity init is used, and a
// deterministic greedy search flips initially-null blocks until the task
// count hits Table II's 54814 exactly.
// ---------------------------------------------------------------------------
struct SparseLuConfig {
  int nb = 84;                     ///< blocks per matrix dimension
  std::uint64_t target_tasks = 54814;
  Tick total_work = ms(38128);
  double sigma = 0.15;
  std::uint64_t seed = 0xC0FFEE03;
};
Trace make_sparselu(const SparseLuConfig& cfg = {});

/// Number of tasks sparse LU factorization would create for the given
/// structural-sparsity mask (exposed for the construction-search test).
std::uint64_t sparselu_task_count(int nb, const std::vector<std::uint8_t>& null_mask);

/// The canonical structural init mask (true = block initially null).
std::vector<std::uint8_t> sparselu_structural_mask(int nb);

// ---------------------------------------------------------------------------
// streamcluster: streaming k-median. Fork-join chains: per phase one
// recenter task (writes the shared centers block) plus ~400 point-chunk
// tasks reading centers (and, for some, a shared weights block) and updating
// their own chunk; each phase ends with a taskwait. Heavy-tailed durations
// (the per-phase max task bounds achievable speedup, as in the paper where
// streamcluster tops out around 40x).
// ---------------------------------------------------------------------------
struct StreamclusterConfig {
  std::uint64_t total_tasks = 652776;
  int phases = 1632;          ///< "groups of about 400 tasks followed by a taskwait"
  int group_jitter = 15;      ///< phase sizes vary in [400-j, 400+j]
  Tick total_work = ms(237908);
  double sigma = 0.85;
  double weights_fraction = 0.3;  ///< fraction of worker tasks with a 3rd param
  std::uint64_t seed = 0xC0FFEE04;
};
Trace make_streamcluster(const StreamclusterConfig& cfg = {});

// ---------------------------------------------------------------------------
// h264dec: macroblock wavefront decoding of 10 full-HD frames
// (1920x1088 -> 120x68 macroblocks), with groups of 1x1/2x2/4x4/8x8
// macroblocks per task. Per frame: one entropy task (serial chain across
// frames), one decode task per group (wavefront: left/up/up-right/up-left
// neighbours + co-located previous-frame reference on P frames; 2-6 params),
// and a deblock task for a deterministic subset of groups (chosen so the
// total task count matches Table II exactly). The master performs
// `taskwait on` (display/buffer-recycle synchronization) before reusing a
// frame-store parity — the pragma Nexus++ does not support.
// ---------------------------------------------------------------------------
struct H264Config {
  int group = 1;     ///< macroblocks per task edge: 1, 2, 4 or 8
  int frames = 10;
  int mb_width = 120;
  int mb_height = 68;
  std::uint64_t total_tasks = 139961;  ///< Table II target for this granularity
  Tick total_work = ms(640);
  double entropy_fraction = 0.08;  ///< share of total work in entropy tasks
  double deblock_weight = 0.4;     ///< deblock cost relative to decode
  double sigma = 0.3;
  std::uint64_t seed = 0xC0FFEE05;
};

/// Table II constants for h264dec-{1x1,2x2,4x4,8x8}-10f.
H264Config h264_config(int group);
Trace make_h264dec(const H264Config& cfg);

// ---------------------------------------------------------------------------
// gaussian: Gaussian elimination with partial pivoting (Fig. 6 / Table III).
// Per step i: one pivot task (inout row_i) then one elimination task per
// remaining row (in row_i, inout row_j) — at most 2 params, and rows fan out
// to unbounded waiter counts (the dummy-entry stress case). Durations are
// analytic: FLOPs(step i) = n-i+1, time = FLOPs / (GFLOPS * 1000) us.
// ---------------------------------------------------------------------------
struct GaussianConfig {
  int n = 250;          ///< matrix dimension (250/500/1000/3000 in Table III)
  double gflops = 2.0;  ///< per-core compute rate assumed by the paper
};
Trace make_gaussian(const GaussianConfig& cfg = {});

/// Analytic task count for the Gaussian benchmark: (n-1)(n+2)/2 (Table III).
constexpr std::uint64_t gaussian_task_count(std::uint64_t n) {
  return (n - 1) * (n + 2) / 2;
}
/// Analytic total FLOPs: sum_{k=2..n} k^2 = n(n+1)(2n+1)/6 - 1.
constexpr std::uint64_t gaussian_total_flops(std::uint64_t n) {
  return n * (n + 1) * (2 * n + 1) / 6 - 1;
}

// ---------------------------------------------------------------------------
// Registry: name -> generator with paper-default parameters, for harnesses.
// Names: c-ray, rot-cc, sparselu, streamcluster, h264dec-{1x1,2x2,4x4,8x8}-10f,
// gaussian-{250,500,1000,3000}.
// ---------------------------------------------------------------------------
std::vector<std::string> workload_names();
bool is_workload(const std::string& name);
Trace make_workload(const std::string& name);

}  // namespace nexus::workloads
