// Open-loop arrival processes for serving-style benchmarks.
//
// Every paper bench is closed-loop: a fixed trace replays as fast as the
// manager admits it and the figure of merit is makespan. A production task
// manager instead faces an *arrival process* — requests from many
// independent clients at an offered rate — and is judged on tail latency at
// that rate. This layer generates deterministic seeded arrival schedules
// (Poisson, bursty MMPP on-off, diurnal rate curve) over the existing
// workload kernels, turns them into dependency-correct serving traces, and
// round-trips the whole schedule through JSON so any generated workload can
// be saved, diffed, and re-run bit-identically.
//
// Determinism contract: `generate_arrivals` and `make_serving_trace` are
// pure functions of their inputs — same config, same bytes, on every
// platform (the RNG is the repo-wide xoshiro256**, time accumulates in
// IEEE doubles with a fixed operation order). `make_serving_trace` reads
// only the schedule (config + explicit arrival/client vectors), never the
// generator's RNG position, so a schedule re-loaded from JSON rebuilds the
// exact same trace the original produced. Config doubles should use short
// decimal forms (0.25, not 1/3) so the %.12g JSON round trip is exact.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "nexus/runtime/simulation_driver.hpp"
#include "nexus/task/trace.hpp"

namespace nexus::workloads {

enum class ArrivalProcess : std::uint8_t {
  kPoisson = 0,  ///< memoryless aggregate rate (interarrival CV = 1)
  kBursty = 1,   ///< MMPP on-off: exponential bursts, silent gaps (CV > 1)
  kDiurnal = 2,  ///< sinusoidal rate curve (nonhomogeneous Poisson)
};

const char* to_string(ArrivalProcess p);
bool arrival_process_from(std::string_view name, ArrivalProcess* out);

struct ArrivalConfig {
  ArrivalProcess process = ArrivalProcess::kPoisson;
  /// Mean aggregate offered rate over all clients, tasks per second of sim
  /// time (the long-run rate for every process kind).
  double rate_hz = 2e6;
  /// Number of arrivals to generate. Fixing the count (not the horizon)
  /// keeps run cost flat while a sweep varies the rate.
  std::uint64_t tasks = 2000;
  std::uint32_t clients = 16;
  std::uint64_t seed = 0x5E21A115;
  /// Workload kernel that donates task durations, function ids and
  /// parameter shape (any workloads::make_workload name).
  std::string kernel = "gaussian-250";
  /// Probability that a task depends on its client's previous task (a
  /// client session issuing sequential requests); 0 = fully independent.
  double chain_fraction = 0.25;

  // -- bursty (MMPP on-off) knobs --
  /// Long-run fraction of time a burst is active; the on-state rate is
  /// rate_hz / on_fraction so the mean rate stays rate_hz.
  double on_fraction = 0.2;
  /// Mean length of one on+off modulation cycle.
  Tick burst_cycle_ps = us(400);

  // -- diurnal knobs --
  /// Period of the rate curve rate_hz * (1 + depth * sin(2*pi*t/period)).
  Tick period_ps = ms(1.0);
  /// Swing of the rate curve, in [0, 1).
  double depth = 0.8;

  friend bool operator==(const ArrivalConfig&, const ArrivalConfig&) = default;
};

/// A generated multi-client arrival schedule: the provenance config plus
/// the explicit per-task release times and client marks the runtime
/// consumes (OpenLoopSubmission). The vectors, not the config, are the
/// source of truth for replay — they survive generator changes.
struct ArrivalSchedule {
  ArrivalConfig config;
  OpenLoopSubmission submission;

  [[nodiscard]] std::uint64_t tasks() const {
    return submission.release.size();
  }
  /// Time of the last arrival (the offered-load horizon).
  [[nodiscard]] Tick horizon() const {
    return submission.release.empty() ? 0 : submission.release.back();
  }

  friend bool operator==(const ArrivalSchedule&,
                         const ArrivalSchedule&) = default;
};

/// Generate a schedule: `cfg.tasks` arrivals, sorted release times, client
/// marks uniform over `cfg.clients` (N independent clients at rate_hz/N
/// superpose to the aggregate process).
ArrivalSchedule generate_arrivals(const ArrivalConfig& cfg);

/// Build the serving trace for a schedule: one task per arrival, duration /
/// fn / parameter count donated by the kernel workload (seeded
/// permutation), one unique output address per task, and — with probability
/// chain_fraction — an input dependence on the same client's previous task.
/// No taskwaits: the trace is a pure open-loop submission stream. Task id i
/// is arrival i, so the schedule's vectors index it directly.
Trace make_serving_trace(const ArrivalSchedule& s);

/// Serialize a schedule as a self-contained JSON document (telemetry
/// JsonWriter dialect; exact int64 release times).
std::string arrivals_json(const ArrivalSchedule& s);

/// Parse a document written by arrivals_json. Returns false with a message
/// on malformed input, unknown process names, or mismatched vector sizes.
bool parse_arrivals(std::string_view text, ArrivalSchedule* out,
                    std::string* error);

}  // namespace nexus::workloads
