#include "nexus/workloads/workloads.hpp"

#include <algorithm>

#include "nexus/workloads/duration_model.hpp"

namespace nexus::workloads {
namespace {

constexpr Addr kCentersAddr = 0x0F000000;  // shared cluster-centers block
constexpr Addr kWeightsAddr = 0x0F000040;  // shared per-point weights block
constexpr Addr kChunkBase = 0x0F100000;    // per-task point chunks
constexpr Addr kChunkStride = 0x40;
constexpr std::uint32_t kFnRecenter = 1;
constexpr std::uint32_t kFnPgain = 2;

}  // namespace

Trace make_streamcluster(const StreamclusterConfig& cfg) {
  Trace tr("streamcluster");
  tr.reserve(cfg.total_tasks);
  Xoshiro256 rng(cfg.seed);

  // Phase sizes: jittered around total/phases, with the final phase absorbing
  // the remainder so the total matches Table II exactly.
  const auto phases = static_cast<std::uint64_t>(cfg.phases);
  const std::uint64_t mean_size = cfg.total_tasks / phases;
  std::vector<std::uint64_t> sizes(phases);
  std::uint64_t assigned = 0;
  for (std::uint64_t p = 0; p + 1 < phases; ++p) {
    const auto jitter = static_cast<std::int64_t>(rng.below(
                            static_cast<std::uint64_t>(2 * cfg.group_jitter + 1))) -
                        cfg.group_jitter;
    sizes[p] = static_cast<std::uint64_t>(
        std::max<std::int64_t>(2, static_cast<std::int64_t>(mean_size) + jitter));
    assigned += sizes[p];
  }
  NEXUS_ASSERT_MSG(assigned + 2 <= cfg.total_tasks,
                   "phase jitter consumed the whole task budget");
  sizes[phases - 1] = cfg.total_tasks - assigned;

  // Durations: the recenter task is modest; worker tasks are heavy-tailed —
  // the per-phase maximum bounds the achievable speedup, which is what caps
  // streamcluster around 40x in the paper's no-overhead curve.
  std::vector<double> weights;
  weights.reserve(cfg.total_tasks);
  for (std::uint64_t p = 0; p < phases; ++p) {
    weights.push_back(0.5 * rng.lognormal(0.0, 0.2));  // recenter
    for (std::uint64_t i = 1; i < sizes[p]; ++i)
      weights.push_back(rng.lognormal(0.0, cfg.sigma));
  }
  const auto durations = scale_to_total(weights, cfg.total_work);

  std::size_t t = 0;
  for (std::uint64_t p = 0; p < phases; ++p) {
    // Recenter: rewrites the shared centers block. The previous phase's
    // readers are gone (taskwait), so this starts each phase's fork.
    ParamList rc;
    rc.push_back({kCentersAddr, Dir::kOut});
    tr.submit(kFnRecenter, durations[t++], rc);

    for (std::uint64_t i = 1; i < sizes[p]; ++i) {
      ParamList w;
      w.push_back({kCentersAddr, Dir::kIn});
      const Addr chunk =
          (kChunkBase + static_cast<Addr>(i - 1) * kChunkStride) & kAddrMask;
      w.push_back({chunk, Dir::kInOut});
      if (rng.uniform() < cfg.weights_fraction) w.push_back({kWeightsAddr, Dir::kIn});
      tr.submit(kFnPgain, durations[t++], w);
    }
    tr.taskwait();  // fork-join: "groups of about 400 tasks followed by a taskwait"
  }
  return tr;
}

}  // namespace nexus::workloads
