#include "nexus/workloads/workloads.hpp"

namespace nexus::workloads {

std::vector<std::string> workload_names() {
  return {"c-ray",
          "rot-cc",
          "sparselu",
          "streamcluster",
          "h264dec-1x1-10f",
          "h264dec-2x2-10f",
          "h264dec-4x4-10f",
          "h264dec-8x8-10f",
          "gaussian-250",
          "gaussian-500",
          "gaussian-1000",
          "gaussian-3000"};
}

bool is_workload(const std::string& name) {
  for (const auto& n : workload_names())
    if (n == name) return true;
  return false;
}

Trace make_workload(const std::string& name) {
  if (name == "c-ray") return make_cray();
  if (name == "rot-cc") return make_rotcc();
  if (name == "sparselu") return make_sparselu();
  if (name == "streamcluster") return make_streamcluster();
  if (name == "h264dec-1x1-10f") return make_h264dec(h264_config(1));
  if (name == "h264dec-2x2-10f") return make_h264dec(h264_config(2));
  if (name == "h264dec-4x4-10f") return make_h264dec(h264_config(4));
  if (name == "h264dec-8x8-10f") return make_h264dec(h264_config(8));
  if (name == "gaussian-250") return make_gaussian({.n = 250});
  if (name == "gaussian-500") return make_gaussian({.n = 500});
  if (name == "gaussian-1000") return make_gaussian({.n = 1000});
  if (name == "gaussian-3000") return make_gaussian({.n = 3000});
  NEXUS_ASSERT_MSG(false, ("unknown workload: " + name).c_str());
  return Trace{};
}

}  // namespace nexus::workloads
