#include <algorithm>
#include <numeric>

#include "nexus/workloads/duration_model.hpp"
#include "nexus/workloads/workloads.hpp"

namespace nexus::workloads {
namespace {

constexpr Addr kEntropyState = 0x0A000000;  // CABAC context, serial across frames
constexpr Addr kHeaderBase = 0x0A000040;    // per-parity slice-header blocks
constexpr Addr kFrameBase = 0x0A100000;     // double-buffered macroblock store
constexpr Addr kStride = 0x40;
constexpr std::uint32_t kFnEntropy = 1;
constexpr std::uint32_t kFnDecode = 2;
constexpr std::uint32_t kFnDeblock = 3;

struct Geometry {
  int gw = 0;  ///< groups per row
  int gh = 0;  ///< groups per column
  [[nodiscard]] int groups() const { return gw * gh; }
};

Geometry geometry(const H264Config& cfg) {
  return Geometry{(cfg.mb_width + cfg.group - 1) / cfg.group,
                  (cfg.mb_height + cfg.group - 1) / cfg.group};
}

Addr mb_addr(const Geometry& g, int x, int y, int parity) {
  return (kFrameBase +
          static_cast<Addr>((parity * g.gh + y) * g.gw + x) * kStride) & kAddrMask;
}

Addr header_addr(int parity) { return kHeaderBase + static_cast<Addr>(parity) * kStride; }

}  // namespace

H264Config h264_config(int group) {
  H264Config cfg;
  cfg.group = group;
  switch (group) {  // Table II rows for h264dec-{1x1,2x2,4x4,8x8}-10f
    case 1:
      cfg.total_tasks = 139961;
      cfg.total_work = ms(640);
      break;
    case 2:
      cfg.total_tasks = 35921;
      cfg.total_work = ms(550);
      break;
    case 4:
      cfg.total_tasks = 9333;
      cfg.total_work = ms(519);
      break;
    case 8:
      cfg.total_tasks = 2686;
      cfg.total_work = ms(510);
      break;
    default:
      NEXUS_ASSERT_MSG(false, "h264 group must be 1, 2, 4 or 8");
  }
  return cfg;
}

Trace make_h264dec(const H264Config& cfg) {
  const Geometry g = geometry(cfg);
  const auto frames = static_cast<std::uint64_t>(cfg.frames);
  const auto groups = static_cast<std::uint64_t>(g.groups());
  const std::uint64_t decodes = frames * groups;
  NEXUS_ASSERT_MSG(cfg.total_tasks >= decodes + frames,
                   "h264 target below decode+entropy task count");
  const std::uint64_t deblocks_total = cfg.total_tasks - decodes - frames;
  NEXUS_ASSERT_MSG(deblocks_total <= decodes,
                   "h264 target implies more deblocks than groups");

  Trace tr("h264dec-" + std::to_string(cfg.group) + "x" + std::to_string(cfg.group) +
           "-" + std::to_string(cfg.frames) + "f");
  tr.reserve(cfg.total_tasks);
  Xoshiro256 rng(cfg.seed);

  std::vector<double> weights;  // aligned with submission order
  weights.reserve(cfg.total_tasks);
  std::vector<TaskId> entropy_ids;

  // Deblock-skip selection: exactly deblocks_total deblock tasks across all
  // frames, spread as evenly as the remainder allows, positions chosen by a
  // seeded shuffle per frame. This is the deterministic construction that
  // pins the Table II task counts exactly.
  std::vector<std::uint64_t> deblocks_per_frame(frames, deblocks_total / frames);
  for (std::uint64_t f = 0; f < deblocks_total % frames; ++f) ++deblocks_per_frame[f];

  std::vector<int> group_order(groups);

  for (std::uint64_t f = 0; f < frames; ++f) {
    const int parity = static_cast<int>(f % 2);
    const int prev_parity = 1 - parity;

    // Display/buffer-recycle synchronization: before overwriting parity p
    // (last used by frame f-2), wait for that frame's bottom-right block —
    // the `taskwait on` pragma that Nexus++ lacks (Section III).
    if (f >= 2) tr.taskwait_on(mb_addr(g, g.gw - 1, g.gh - 1, parity));

    // Entropy decode: serial chain through the CABAC state; produces the
    // slice header this frame's wavefront root consumes.
    {
      ParamList p;
      p.push_back({kEntropyState, Dir::kInOut});
      p.push_back({header_addr(parity), Dir::kOut});
      entropy_ids.push_back(tr.submit(kFnEntropy, 1, p));
      weights.push_back(1.0);  // placeholder; patched after worker sum is known
    }

    // Decode wavefront, row-major. Neighbour reads reproduce the macroblock
    // dependency pattern of Listing 1 (left, up-right) plus the up/up-left
    // intra references and the co-located previous-frame motion reference,
    // giving the 2-6 parameter range of Table II.
    for (int y = 0; y < g.gh; ++y) {
      for (int x = 0; x < g.gw; ++x) {
        ParamList p;
        p.push_back({mb_addr(g, x, y, parity), Dir::kInOut});
        if (x > 0) p.push_back({mb_addr(g, x - 1, y, parity), Dir::kIn});
        if (y > 0) p.push_back({mb_addr(g, x, y - 1, parity), Dir::kIn});
        if (y > 0 && x + 1 < g.gw) p.push_back({mb_addr(g, x + 1, y - 1, parity), Dir::kIn});
        if (f > 0 && p.size() < kMaxParams)
          p.push_back({mb_addr(g, x, y, prev_parity), Dir::kIn});
        if (x > 0 && y > 0 && p.size() < kMaxParams)
          p.push_back({mb_addr(g, x - 1, y - 1, parity), Dir::kIn});
        if (x == 0 && y == 0) p.push_back({header_addr(parity), Dir::kIn});
        tr.submit(kFnDecode, 1, p);
        weights.push_back(rng.lognormal(0.0, cfg.sigma));
      }
    }

    // Deblock pass over a seeded subset of groups (boundary-strength zero
    // blocks skip filtering in a real decoder; the subset size per frame is
    // fixed by the Table II construction).
    std::iota(group_order.begin(), group_order.end(), 0);
    for (std::uint64_t i = groups - 1; i > 0; --i) {
      const auto j = rng.below(i + 1);
      std::swap(group_order[i], group_order[j]);
    }
    std::vector<int> selected(group_order.begin(),
                              group_order.begin() +
                                  static_cast<std::ptrdiff_t>(deblocks_per_frame[f]));
    std::sort(selected.begin(), selected.end());  // row-major submission
    for (const int gi : selected) {
      const int x = gi % g.gw;
      const int y = gi / g.gw;
      ParamList p;
      p.push_back({mb_addr(g, x, y, parity), Dir::kInOut});
      if (x > 0) p.push_back({mb_addr(g, x - 1, y, parity), Dir::kIn});
      if (y > 0) p.push_back({mb_addr(g, x, y - 1, parity), Dir::kIn});
      if (x == 0 && y == 0) p.push_back({header_addr(parity), Dir::kIn});
      tr.submit(kFnDeblock, 1, p);
      weights.push_back(cfg.deblock_weight * rng.lognormal(0.0, cfg.sigma));
    }
  }
  tr.taskwait();
  NEXUS_ASSERT_MSG(tr.num_tasks() == cfg.total_tasks,
                   "h264 construction missed the Table II task count");

  // Entropy weights: a fixed fraction of total work, split across frames.
  double worker_sum = 0.0;
  for (const double w : weights) worker_sum += w;
  worker_sum -= static_cast<double>(frames);  // subtract placeholders
  const double entropy_total =
      worker_sum * cfg.entropy_fraction / (1.0 - cfg.entropy_fraction);
  Xoshiro256 erng(cfg.seed ^ 0xE17709);
  for (const TaskId id : entropy_ids) {
    weights[id] = entropy_total / static_cast<double>(frames) *
                  (0.95 + 0.1 * erng.uniform());
  }

  const auto durations = scale_to_total(weights, cfg.total_work);
  for (TaskId id = 0; id < tr.num_tasks(); ++id) tr.set_duration(id, durations[id]);
  return tr;
}

}  // namespace nexus::workloads
