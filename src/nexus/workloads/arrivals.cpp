#include "nexus/workloads/arrivals.hpp"

#include <cmath>
#include <numeric>
#include <utility>
#include <vector>

#include "nexus/common/assert.hpp"
#include "nexus/common/rng.hpp"
#include "nexus/telemetry/json.hpp"
#include "nexus/telemetry/writers.hpp"
#include "nexus/workloads/workloads.hpp"

namespace nexus::workloads {
namespace {

/// Serving address space: client c's task k writes kServingBase + (c<<28) +
/// k*64 — unique per task, disjoint between clients, within 48 bits for
/// any plausible client count.
constexpr Addr kServingBase = 0x5E0000000000;

constexpr Addr out_addr(std::uint32_t client, std::uint64_t seq) {
  return (kServingBase + (static_cast<Addr>(client) << 28) + seq * 64) &
         kAddrMask;
}

/// Exponential sample with the given rate (events per second), in seconds.
double exp_sample(Xoshiro256& rng, double rate_hz) {
  return -std::log(1.0 - rng.uniform()) / rate_hz;
}

constexpr double kTwoPi = 6.283185307179586;

}  // namespace

const char* to_string(ArrivalProcess p) {
  switch (p) {
    case ArrivalProcess::kPoisson: return "poisson";
    case ArrivalProcess::kBursty: return "bursty";
    case ArrivalProcess::kDiurnal: return "diurnal";
  }
  return "?";
}

bool arrival_process_from(std::string_view name, ArrivalProcess* out) {
  for (const ArrivalProcess p :
       {ArrivalProcess::kPoisson, ArrivalProcess::kBursty,
        ArrivalProcess::kDiurnal}) {
    if (name == to_string(p)) {
      *out = p;
      return true;
    }
  }
  return false;
}

ArrivalSchedule generate_arrivals(const ArrivalConfig& cfg) {
  NEXUS_ASSERT_MSG(cfg.rate_hz > 0.0, "arrival rate must be positive");
  NEXUS_ASSERT_MSG(cfg.tasks > 0, "need at least one arrival");
  NEXUS_ASSERT_MSG(cfg.clients > 0, "need at least one client");
  NEXUS_ASSERT_MSG(cfg.depth >= 0.0 && cfg.depth < 1.0,
                   "diurnal depth must be in [0, 1)");
  NEXUS_ASSERT_MSG(cfg.on_fraction > 0.0 && cfg.on_fraction <= 1.0,
                   "on_fraction must be in (0, 1]");

  ArrivalSchedule s;
  s.config = cfg;
  s.submission.clients = cfg.clients;
  s.submission.release.reserve(cfg.tasks);
  s.submission.client.reserve(cfg.tasks);

  Xoshiro256 rng(cfg.seed);
  double t_ps = 0.0;  // fixed-order double accumulation: deterministic

  // Bursty (MMPP on-off) modulation state.
  const double mean_on_ps =
      cfg.on_fraction * static_cast<double>(cfg.burst_cycle_ps);
  const double mean_off_ps =
      (1.0 - cfg.on_fraction) * static_cast<double>(cfg.burst_cycle_ps);
  const double rate_on_hz = cfg.rate_hz / cfg.on_fraction;
  double on_end_ps = 0.0;
  bool burst_started = false;

  // Diurnal thinning bound.
  const double rate_max_hz = cfg.rate_hz * (1.0 + cfg.depth);

  for (std::uint64_t i = 0; i < cfg.tasks; ++i) {
    switch (cfg.process) {
      case ArrivalProcess::kPoisson:
        t_ps += exp_sample(rng, cfg.rate_hz) * 1e12;
        break;
      case ArrivalProcess::kBursty: {
        if (!burst_started) {
          // The stream opens inside a burst (memorylessness makes the
          // choice of origin immaterial to the statistics).
          on_end_ps = -std::log(1.0 - rng.uniform()) * mean_on_ps;
          burst_started = true;
        }
        for (;;) {
          const double dt = exp_sample(rng, rate_on_hz) * 1e12;
          if (t_ps + dt <= on_end_ps) {
            t_ps += dt;
            break;
          }
          // Burst exhausted before the next arrival: jump to its end,
          // sleep through an off gap, open a fresh burst. Discarding the
          // partial interarrival is exact for exponentials.
          t_ps = on_end_ps - std::log(1.0 - rng.uniform()) * mean_off_ps;
          on_end_ps = t_ps - std::log(1.0 - rng.uniform()) * mean_on_ps;
        }
        break;
      }
      case ArrivalProcess::kDiurnal: {
        // Lewis-Shedler thinning against the curve's peak rate.
        for (;;) {
          t_ps += exp_sample(rng, rate_max_hz) * 1e12;
          const double lambda_t =
              cfg.rate_hz *
              (1.0 + cfg.depth *
                         std::sin(kTwoPi * t_ps /
                                  static_cast<double>(cfg.period_ps)));
          if (rng.uniform() * rate_max_hz <= lambda_t) break;
        }
        break;
      }
    }
    s.submission.release.push_back(static_cast<Tick>(t_ps));
    s.submission.client.push_back(
        static_cast<std::uint32_t>(rng.below(cfg.clients)));
  }
  return s;
}

Trace make_serving_trace(const ArrivalSchedule& s) {
  const ArrivalConfig& cfg = s.config;
  NEXUS_ASSERT_MSG(s.submission.client.size() == s.submission.release.size(),
                   "schedule client marks must cover every arrival");
  const Trace donor = make_workload(cfg.kernel);
  const std::size_t donor_n = donor.num_tasks();

  // Seeded donor permutation so consecutive arrivals do not walk the donor
  // trace in phase order; an independent stream keeps trace construction
  // decoupled from the arrival draws (replay reads only the schedule).
  Xoshiro256 rng(cfg.seed ^ 0x7EACE5E2);
  std::vector<std::uint32_t> perm(donor_n);
  std::iota(perm.begin(), perm.end(), 0u);
  for (std::size_t i = donor_n; i > 1; --i) {
    const std::uint64_t j = rng.below(i);
    std::swap(perm[i - 1], perm[j]);
  }

  Trace tr(std::string("serving-") + to_string(cfg.process) + "-" +
           cfg.kernel);
  tr.reserve(s.tasks());
  std::vector<std::uint64_t> seq(cfg.clients, 0);
  for (std::uint64_t i = 0; i < s.tasks(); ++i) {
    const std::uint32_t c = s.submission.client[i];
    const TaskDescriptor& d =
        donor.task(perm[static_cast<std::size_t>(i % donor_n)]);
    ParamList p;
    // Drawn unconditionally so every task consumes one uniform: the chain
    // decision stream is position-independent of the client interleaving.
    const bool chain = rng.uniform() < cfg.chain_fraction && seq[c] > 0;
    if (chain) p.push_back({out_addr(c, seq[c] - 1), Dir::kIn});
    p.push_back({out_addr(c, seq[c]), Dir::kOut});
    // Pad to the donor's parameter count with reads of this client's older
    // outputs (known-written addresses, so the dependence is well-defined
    // and the descriptor's flit payload matches the donor's shape).
    std::uint64_t back = chain ? 2 : 1;
    while (p.size() < d.num_params() && back <= seq[c]) {
      p.push_back({out_addr(c, seq[c] - back), Dir::kIn});
      ++back;
    }
    tr.submit(d.fn, d.duration, p);
    ++seq[c];
  }
  return tr;
}

std::string arrivals_json(const ArrivalSchedule& s) {
  const ArrivalConfig& cfg = s.config;
  telemetry::JsonWriter w;
  w.begin_object();
  w.kv("schema", 1);
  w.kv("kind", "nexus-arrivals");
  w.kv("process", to_string(cfg.process));
  w.kv("kernel", cfg.kernel);
  w.kv("seed", cfg.seed);
  w.kv("rate_hz", cfg.rate_hz);
  w.kv("clients", cfg.clients);
  w.kv("chain_fraction", cfg.chain_fraction);
  w.kv("on_fraction", cfg.on_fraction);
  w.kv("burst_cycle_ps", cfg.burst_cycle_ps);
  w.kv("period_ps", cfg.period_ps);
  w.kv("depth", cfg.depth);
  w.kv("tasks", static_cast<std::uint64_t>(s.tasks()));
  w.key("arrival_ps").begin_array();
  for (const Tick t : s.submission.release) w.value(t);
  w.end_array();
  w.key("client").begin_array();
  for (const std::uint32_t c : s.submission.client) w.value(c);
  w.end_array();
  w.end_object();
  return w.str();
}

bool parse_arrivals(std::string_view text, ArrivalSchedule* out,
                    std::string* error) {
  telemetry::JsonValue doc;
  if (!telemetry::json_parse(text, &doc, error)) return false;
  auto fail = [error](const char* why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (!doc.is_object()) return fail("document is not a JSON object");
  const telemetry::JsonValue* f = doc.find("kind");
  if (f == nullptr || f->str_or("") != "nexus-arrivals")
    return fail("not a nexus-arrivals document (missing/wrong \"kind\")");
  if ((f = doc.find("schema")) != nullptr && f->int_or(1) != 1)
    return fail("unknown arrivals schema version");

  ArrivalSchedule s;
  ArrivalConfig& cfg = s.config;
  f = doc.find("process");
  if (f == nullptr || !f->is_string() ||
      !arrival_process_from(f->str, &cfg.process))
    return fail("missing or unknown \"process\"");
  cfg.kernel = (f = doc.find("kernel")) != nullptr ? f->str_or(cfg.kernel)
                                                   : cfg.kernel;
  if (!is_workload(cfg.kernel)) return fail("unknown donor kernel");
  cfg.seed = static_cast<std::uint64_t>(
      (f = doc.find("seed")) != nullptr
          ? f->int_or(static_cast<std::int64_t>(cfg.seed))
          : static_cast<std::int64_t>(cfg.seed));
  cfg.rate_hz =
      (f = doc.find("rate_hz")) != nullptr ? f->num_or(cfg.rate_hz)
                                           : cfg.rate_hz;
  cfg.clients = static_cast<std::uint32_t>(
      (f = doc.find("clients")) != nullptr ? f->int_or(cfg.clients)
                                           : cfg.clients);
  if (cfg.clients == 0) return fail("\"clients\" must be positive");
  cfg.chain_fraction = (f = doc.find("chain_fraction")) != nullptr
                           ? f->num_or(cfg.chain_fraction)
                           : cfg.chain_fraction;
  cfg.on_fraction = (f = doc.find("on_fraction")) != nullptr
                        ? f->num_or(cfg.on_fraction)
                        : cfg.on_fraction;
  cfg.burst_cycle_ps = (f = doc.find("burst_cycle_ps")) != nullptr
                           ? f->int_or(cfg.burst_cycle_ps)
                           : cfg.burst_cycle_ps;
  cfg.period_ps = (f = doc.find("period_ps")) != nullptr
                      ? f->int_or(cfg.period_ps)
                      : cfg.period_ps;
  cfg.depth =
      (f = doc.find("depth")) != nullptr ? f->num_or(cfg.depth) : cfg.depth;

  const telemetry::JsonValue* arr = doc.find("arrival_ps");
  if (arr == nullptr || !arr->is_array() || arr->array.empty())
    return fail("missing or empty \"arrival_ps\" array");
  const telemetry::JsonValue* cli = doc.find("client");
  if (cli == nullptr || !cli->is_array() ||
      cli->array.size() != arr->array.size())
    return fail("\"client\" array must match \"arrival_ps\" in size");
  Tick prev = 0;
  for (const telemetry::JsonValue& e : arr->array) {
    const Tick t = e.int_or(-1);
    if (t < prev) return fail("\"arrival_ps\" must be non-decreasing and >= 0");
    s.submission.release.push_back(t);
    prev = t;
  }
  for (const telemetry::JsonValue& e : cli->array) {
    const std::int64_t c = e.int_or(-1);
    if (c < 0 || c >= static_cast<std::int64_t>(cfg.clients))
      return fail("\"client\" entry out of range");
    s.submission.client.push_back(static_cast<std::uint32_t>(c));
  }
  s.submission.clients = cfg.clients;
  cfg.tasks = s.tasks();
  *out = std::move(s);
  return true;
}

}  // namespace nexus::workloads
