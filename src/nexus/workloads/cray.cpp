#include "nexus/workloads/duration_model.hpp"
#include "nexus/workloads/workloads.hpp"

namespace nexus::workloads {
namespace {
constexpr Addr kLineBase = 0x0C100000;  // c-ray output line buffers
constexpr Addr kLineStride = 0x40;
constexpr std::uint32_t kFnRenderLine = 1;
}  // namespace

Trace make_cray(const CrayConfig& cfg) {
  Trace tr("c-ray");
  tr.reserve(static_cast<std::size_t>(cfg.lines));
  Xoshiro256 rng(cfg.seed);
  const auto weights =
      lognormal_weights(static_cast<std::size_t>(cfg.lines), cfg.sigma, rng);
  const auto durations = scale_to_total(weights, cfg.total_work);
  for (int i = 0; i < cfg.lines; ++i) {
    ParamList p;
    p.push_back({(kLineBase + static_cast<Addr>(i) * kLineStride) & kAddrMask,
                 Dir::kOut});
    tr.submit(kFnRenderLine, durations[static_cast<std::size_t>(i)], p);
  }
  tr.taskwait();
  return tr;
}

}  // namespace nexus::workloads
