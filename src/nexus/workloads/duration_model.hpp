// Duration shaping shared by the workload generators.
#pragma once

#include <cstdint>
#include <vector>

#include "nexus/common/rng.hpp"
#include "nexus/sim/time.hpp"

namespace nexus::workloads {

/// Rescale raw positive weights so they sum exactly to `total` ticks.
/// Rounding drift is absorbed by the largest entry, keeping every duration
/// positive and the sum exact (Table II totals are matched to the tick).
std::vector<Tick> scale_to_total(const std::vector<double>& raw, Tick total);

/// Draw `n` lognormal weights with the given shape parameter.
std::vector<double> lognormal_weights(std::size_t n, double sigma, nexus::Xoshiro256& rng);

}  // namespace nexus::workloads
