#include "nexus/workloads/duration_model.hpp"
#include "nexus/workloads/workloads.hpp"

namespace nexus::workloads {
namespace {
constexpr Addr kLineBase = 0x0D200000;  // in-place line buffers
constexpr Addr kLineStride = 0x40;
constexpr std::uint32_t kFnRotate = 1;
constexpr std::uint32_t kFnColourConvert = 2;
}  // namespace

Trace make_rotcc(const RotccConfig& cfg) {
  Trace tr("rot-cc");
  const auto n_lines = static_cast<std::size_t>(cfg.lines);
  tr.reserve(n_lines * 2);
  Xoshiro256 rng(cfg.seed);

  // Per-line pair weight, split rot/cc by rot_share with per-task jitter.
  const auto pair_weights = lognormal_weights(n_lines, cfg.sigma, rng);
  std::vector<double> weights;
  weights.reserve(n_lines * 2);
  for (std::size_t i = 0; i < n_lines; ++i) {
    const double jitter = 0.9 + 0.2 * rng.uniform();
    const double rot_w = pair_weights[i] * cfg.rot_share * jitter;
    weights.push_back(rot_w);
    weights.push_back(pair_weights[i] - rot_w > 0 ? pair_weights[i] - rot_w
                                                  : pair_weights[i] * 0.1);
  }
  const auto durations = scale_to_total(weights, cfg.total_work);

  for (std::size_t i = 0; i < n_lines; ++i) {
    const Addr line = (kLineBase + static_cast<Addr>(i) * kLineStride) & kAddrMask;
    // Rotation then colour conversion chain through the in-place buffer
    // (inout -> inout gives the pairwise dependency of Section V-A with a
    // single parameter per task, matching Table II's "# deps" = 1).
    ParamList rot;
    rot.push_back({line, Dir::kInOut});
    tr.submit(kFnRotate, durations[2 * i], rot);
    ParamList cc;
    cc.push_back({line, Dir::kInOut});
    tr.submit(kFnColourConvert, durations[2 * i + 1], cc);
  }
  tr.taskwait();
  return tr;
}

}  // namespace nexus::workloads
