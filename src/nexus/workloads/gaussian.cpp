#include "nexus/workloads/workloads.hpp"

namespace nexus::workloads {
namespace {

constexpr Addr kRowBase = 0x0B000000;
constexpr Addr kRowStride = 0x40;
constexpr std::uint32_t kFnPivot = 1;
constexpr std::uint32_t kFnEliminate = 2;

Addr row_addr(int j) { return (kRowBase + static_cast<Addr>(j) * kRowStride) & kAddrMask; }

/// Task time for `flops` at the configured per-core rate, in ticks.
Tick flops_time(std::uint64_t flops, double gflops) {
  return static_cast<Tick>(static_cast<double>(flops) / gflops * 1e3);  // ps
}

}  // namespace

Trace make_gaussian(const GaussianConfig& cfg) {
  // Fig. 6 pattern: step i produces pivot row i (pivot task, inout row_i),
  // then every remaining row j > i eliminates against it (in row_i,
  // inout row_j). Tasks have at most 2 parameters, and row_i fans out to
  // n-i waiting readers — the unbounded kick-off-list stress case the
  // paper validates with this benchmark.
  //
  // Task count: (n-1) pivots + n(n-1)/2 eliminations = (n-1)(n+2)/2, and
  // FLOPs(step i) = n-i+1 per task, exactly reproducing Table III's counts
  // and average weights. Durations are analytic (no randomness): the paper
  // derives them from a 2 GFLOPS core model.
  const int n = cfg.n;
  NEXUS_ASSERT_MSG(n >= 2, "gaussian needs at least a 2x2 matrix");
  Trace tr("gaussian-" + std::to_string(n));
  tr.reserve(gaussian_task_count(static_cast<std::uint64_t>(n)));

  for (int i = 1; i < n; ++i) {
    const auto flops = static_cast<std::uint64_t>(n - i + 1);
    const Tick dur = flops_time(flops, cfg.gflops);
    ParamList pivot;
    pivot.push_back({row_addr(i), Dir::kInOut});
    tr.submit(kFnPivot, dur, pivot);
    for (int j = i + 1; j <= n; ++j) {
      ParamList elim;
      elim.push_back({row_addr(i), Dir::kIn});
      elim.push_back({row_addr(j), Dir::kInOut});
      tr.submit(kFnEliminate, dur, elim);
    }
  }
  tr.taskwait();
  NEXUS_ASSERT(tr.num_tasks() == gaussian_task_count(static_cast<std::uint64_t>(n)));
  return tr;
}

}  // namespace nexus::workloads
