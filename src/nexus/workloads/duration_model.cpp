#include "nexus/workloads/duration_model.hpp"

#include <algorithm>

#include "nexus/common/assert.hpp"

namespace nexus::workloads {

std::vector<Tick> scale_to_total(const std::vector<double>& raw, Tick total) {
  NEXUS_ASSERT(!raw.empty());
  double sum = 0.0;
  for (const double w : raw) {
    NEXUS_ASSERT_MSG(w > 0.0, "duration weights must be positive");
    sum += w;
  }
  std::vector<Tick> out(raw.size());
  const double scale = static_cast<double>(total) / sum;
  Tick assigned = 0;
  std::size_t largest = 0;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    out[i] = std::max<Tick>(1, static_cast<Tick>(raw[i] * scale));
    assigned += out[i];
    if (raw[i] > raw[largest]) largest = i;
  }
  // Absorb rounding drift in the largest task; it is orders of magnitude
  // larger than the drift (at most one tick per task).
  const Tick drift = total - assigned;
  NEXUS_ASSERT_MSG(out[largest] + drift > 0, "rounding drift exceeds largest task");
  out[largest] += drift;
  return out;
}

std::vector<double> lognormal_weights(std::size_t n, double sigma, nexus::Xoshiro256& rng) {
  std::vector<double> w(n);
  for (auto& x : w) x = rng.lognormal(0.0, sigma);
  return w;
}

}  // namespace nexus::workloads
