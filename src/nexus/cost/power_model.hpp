// Activity-based power/energy model (the paper's declared future work:
// "power analysis... and the possibility of dynamically turning (parts of)
// it on and off (as dark silicon)").
//
// The simulation already tracks per-unit busy time (IO/input parser, each
// task graph, the arbiter), so dynamic energy is busy-time x per-unit power
// at the configured clock, and leakage accrues over the whole run for every
// powered block. The dark-silicon estimate power-gates idle task graphs:
// each graph leaks only over its own duty cycle (plus a wake overhead),
// which is the paper's "turn it off when the ready-task bank is full" idea
// in steady state.
//
// Coefficients are synthetic (the paper publishes no power numbers) but
// follow FPGA intuition: dynamic power scales with frequency, block RAM
// dominated task graphs cost more than control logic, and leakage scales
// with the area of Table I. They are configuration knobs, not claims.
#pragma once

#include <cstdint>

#include "nexus/nexussharp/nexussharp.hpp"
#include "nexus/nexuspp/nexuspp.hpp"

namespace nexus::cost {

struct PowerConfig {
  // Dynamic power of a unit while busy, in mW at 100 MHz (linear in f).
  double io_dynamic_mw = 30.0;
  double tg_dynamic_mw = 55.0;       ///< per task graph (BRAM-heavy)
  double arbiter_dynamic_mw = 40.0;
  // Static leakage while powered, in mW (frequency-independent).
  double base_leakage_mw = 18.0;     ///< IO, pool, write-back, clocking
  double tg_leakage_mw = 7.5;        ///< per task graph
  // Dark-silicon gating: extra duty cycle charged per gated graph for
  // wake/sleep transitions.
  double gating_overhead = 0.05;
};

struct EnergyReport {
  double dynamic_mj = 0.0;
  double leakage_mj = 0.0;
  double gated_leakage_mj = 0.0;  ///< leakage under dark-silicon gating
  [[nodiscard]] double total_mj() const { return dynamic_mj + leakage_mj; }
  [[nodiscard]] double gated_total_mj() const { return dynamic_mj + gated_leakage_mj; }
  double avg_power_mw = 0.0;      ///< total energy / makespan
  double uj_per_task = 0.0;       ///< management energy per task
  double gated_savings_pct = 0.0; ///< leakage saved by gating idle graphs
};

/// Energy of a Nexus# run from its stats and the run's makespan.
EnergyReport estimate_energy(const NexusSharp::Stats& stats,
                             const NexusSharpConfig& cfg, Tick makespan,
                             const PowerConfig& power = {});

/// Energy of a Nexus++ run (single task graph, no gating benefit).
EnergyReport estimate_energy(const NexusPP::Stats& stats, const NexusPPConfig& cfg,
                             Tick makespan, const PowerConfig& power = {});

}  // namespace nexus::cost
