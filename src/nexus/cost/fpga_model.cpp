#include "nexus/cost/fpga_model.hpp"

#include <algorithm>
#include <cmath>

#include "nexus/common/assert.hpp"

namespace nexus::cost {
namespace {

struct MeasuredRow {
  std::uint32_t tgs;
  double regs_pct, luts_pct, bram_pct, fmax, test;
};

// Table I, measured on the ZC706. (The 8-TG design's absolute counts,
// 19350 registers / 127290 LUTs, pin the percentage scale.)
constexpr MeasuredRow kSharpRows[] = {
    {1, 1.0, 8.0, 13.0, 112.63, 100.00},
    {2, 2.0, 15.0, 25.0, 112.63, 100.00},
    {4, 3.0, 29.0, 47.0, 85.26, 83.33},
    {6, 4.0, 44.0, 69.0, 55.66, 55.56},
    {8, 4.43, 58.23, 91.0, 43.53, 41.66},
};

/// Interpolate (or extrapolate from the last two measured points) over the
/// measured task-graph counts.
double interp(std::uint32_t tgs, double MeasuredRow::* field) {
  constexpr std::size_t n = std::size(kSharpRows);
  const auto* lo = &kSharpRows[0];
  const auto* hi = &kSharpRows[1];
  if (tgs > kSharpRows[n - 1].tgs) {
    lo = &kSharpRows[n - 2];
    hi = &kSharpRows[n - 1];
  } else {
    for (std::size_t i = 0; i + 1 < n; ++i) {
      if (kSharpRows[i].tgs <= tgs && tgs <= kSharpRows[i + 1].tgs) {
        lo = &kSharpRows[i];
        hi = &kSharpRows[i + 1];
        break;
      }
    }
  }
  const double t = (static_cast<double>(tgs) - lo->tgs) / (hi->tgs - lo->tgs);
  return lo->*field + t * (hi->*field - lo->*field);
}

/// Test frequencies in the paper are integer-nanosecond clock periods
/// (10 ns, 12 ns, 18 ns, 24 ns): pick the fastest such period <= fmax,
/// capped at the 100 MHz test bound used for the small designs.
double test_frequency_for(double fmax) {
  for (int period_ns = 10; period_ns <= 40; ++period_ns) {
    const double f = 1000.0 / period_ns;
    if (f <= fmax) return std::min(f, 100.0);
  }
  return 25.0;
}

}  // namespace

std::uint64_t UtilizationRow::regs_abs(const DeviceTotals& d) const {
  return static_cast<std::uint64_t>(regs_pct / 100.0 *
                                    static_cast<double>(d.registers) + 0.5);
}

std::uint64_t UtilizationRow::luts_abs(const DeviceTotals& d) const {
  return static_cast<std::uint64_t>(luts_pct / 100.0 *
                                    static_cast<double>(d.luts) + 0.5);
}

UtilizationRow nexuspp_row() {
  UtilizationRow r;
  r.config = "Nexus++";
  r.regs_pct = 1.0;
  r.luts_pct = 7.0;
  r.bram_pct = 14.0;
  r.fmax_mhz = 114.44;
  r.test_mhz = 100.00;
  r.measured = true;
  return r;
}

UtilizationRow nexussharp_row(std::uint32_t num_task_graphs) {
  NEXUS_ASSERT_MSG(num_task_graphs >= 1 && num_task_graphs <= 32,
                   "1..32 task graphs");
  UtilizationRow r;
  r.config = "Nexus# " + std::to_string(num_task_graphs) +
             (num_task_graphs == 1 ? " TG" : " TGs");
  for (const auto& m : kSharpRows) {
    if (m.tgs == num_task_graphs) {
      r.regs_pct = m.regs_pct;
      r.luts_pct = m.luts_pct;
      r.bram_pct = m.bram_pct;
      r.fmax_mhz = m.fmax;
      r.test_mhz = m.test;
      r.measured = true;
      return r;
    }
  }
  r.regs_pct = interp(num_task_graphs, &MeasuredRow::regs_pct);
  r.luts_pct = interp(num_task_graphs, &MeasuredRow::luts_pct);
  r.bram_pct = interp(num_task_graphs, &MeasuredRow::bram_pct);
  r.fmax_mhz = interp(num_task_graphs, &MeasuredRow::fmax);
  r.test_mhz = test_frequency_for(r.fmax_mhz);
  r.measured = false;
  return r;
}

std::vector<UtilizationRow> table1_rows() {
  std::vector<UtilizationRow> rows;
  rows.push_back(nexuspp_row());
  for (const std::uint32_t n : {1u, 2u, 4u, 6u, 8u}) rows.push_back(nexussharp_row(n));
  return rows;
}

std::uint32_t max_feasible_task_graphs() {
  std::uint32_t best = 1;
  for (std::uint32_t n = 1; n <= 32; ++n) {
    const UtilizationRow r = nexussharp_row(n);
    if (r.regs_pct < 100.0 && r.luts_pct < 100.0 && r.bram_pct < 100.0) best = n;
  }
  return best;
}

}  // namespace nexus::cost
