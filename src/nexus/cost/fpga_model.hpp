// FPGA resource and frequency model for the ZC706 target (Table I).
//
// We cannot run Xilinx synthesis offline, so Table I itself is the ground
// truth: the rows the paper measured are stored exactly, and unlisted
// task-graph counts are interpolated with the per-graph increments the
// table exhibits (block RAMs ~11%/graph — the replicated task-graph
// tables; LUTs ~7%/graph — the extra Input Parser and arbiter gather
// logic; fmax degrading as the arbiter fan-in grows). The *test*
// frequencies feed the Fig. 7(b)/8/9 performance simulations exactly as in
// the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nexus::cost {

/// Device totals of the Xilinx ZYNQ-7 ZC706 board (Z-7045).
struct DeviceTotals {
  std::uint64_t registers = 437200;
  std::uint64_t luts = 218600;
  std::uint64_t block_rams = 545;
};

struct UtilizationRow {
  std::string config;      ///< "Nexus++" or "Nexus# N TG(s)"
  double regs_pct = 0.0;   ///< registers, % of device
  double luts_pct = 0.0;   ///< look-up tables, % of device
  double bram_pct = 0.0;   ///< block RAMs, % of device
  double fmax_mhz = 0.0;   ///< maximum synthesized frequency
  double test_mhz = 0.0;   ///< frequency used in the evaluation runs
  bool measured = false;   ///< true: paper row; false: interpolated

  /// Absolute resource counts derived from the device totals (the paper
  /// quotes 19350 registers / 127290 LUTs for the 8-TG design).
  [[nodiscard]] std::uint64_t regs_abs(const DeviceTotals& d = {}) const;
  [[nodiscard]] std::uint64_t luts_abs(const DeviceTotals& d = {}) const;
};

/// The Nexus++ baseline row (re-synthesized on the ZC706 in the paper).
UtilizationRow nexuspp_row();

/// The Nexus# row for a task-graph count. Counts present in Table I
/// (1, 2, 4, 6, 8) return the measured values; others interpolate.
UtilizationRow nexussharp_row(std::uint32_t num_task_graphs);

/// All rows of Table I in paper order.
std::vector<UtilizationRow> table1_rows();

/// Largest task-graph count whose interpolated utilization still fits the
/// device (every resource < 100%). With Table I's trend this lands at 8-9.
std::uint32_t max_feasible_task_graphs();

}  // namespace nexus::cost
