#include "nexus/cost/power_model.hpp"

#include <algorithm>

#include "nexus/common/assert.hpp"

namespace nexus::cost {
namespace {

/// mW * seconds -> mJ; busy time arrives in Ticks (ps).
double energy_mj(double mw, Tick t) { return mw * to_seconds(t); }

double freq_scale(double mhz) { return mhz / 100.0; }

}  // namespace

EnergyReport estimate_energy(const NexusSharp::Stats& stats,
                             const NexusSharpConfig& cfg, Tick makespan,
                             const PowerConfig& power) {
  NEXUS_ASSERT(makespan > 0);
  EnergyReport r;
  const double fs = freq_scale(cfg.freq_mhz);

  r.dynamic_mj += energy_mj(power.io_dynamic_mw * fs, stats.io_busy);
  r.dynamic_mj += energy_mj(power.arbiter_dynamic_mw * fs, stats.arbiter_busy);
  for (const Tick busy : stats.tg_busy)
    r.dynamic_mj += energy_mj(power.tg_dynamic_mw * fs, busy);

  // Always-on leakage: base blocks plus every task graph for the whole run.
  const double n_tgs = static_cast<double>(cfg.num_task_graphs);
  r.leakage_mj = energy_mj(power.base_leakage_mw + power.tg_leakage_mw * n_tgs,
                           makespan);

  // Dark-silicon gating: each graph leaks over its own duty cycle (plus the
  // wake/sleep overhead); the base blocks stay powered.
  r.gated_leakage_mj = energy_mj(power.base_leakage_mw, makespan);
  for (const Tick busy : stats.tg_busy) {
    const double duty =
        std::min(1.0, static_cast<double>(busy) / static_cast<double>(makespan) +
                          power.gating_overhead);
    r.gated_leakage_mj += energy_mj(power.tg_leakage_mw, makespan) * duty;
  }

  r.avg_power_mw = r.total_mj() / to_seconds(makespan);
  if (stats.tasks_in > 0)
    r.uj_per_task = r.total_mj() * 1e3 / static_cast<double>(stats.tasks_in);
  if (r.leakage_mj > 0)
    r.gated_savings_pct = 100.0 * (r.leakage_mj - r.gated_leakage_mj) / r.leakage_mj;
  return r;
}

EnergyReport estimate_energy(const NexusPP::Stats& stats, const NexusPPConfig& cfg,
                             Tick makespan, const PowerConfig& power) {
  NEXUS_ASSERT(makespan > 0);
  EnergyReport r;
  const double fs = freq_scale(cfg.freq_mhz);
  // The central design's table port plays the role of one task graph; its
  // IO/write-back activity is folded into the insert-path busy time.
  r.dynamic_mj += energy_mj((power.io_dynamic_mw + power.tg_dynamic_mw) * fs,
                            stats.insert_busy);
  r.leakage_mj =
      energy_mj(power.base_leakage_mw + power.tg_leakage_mw, makespan);
  r.gated_leakage_mj = r.leakage_mj;  // one always-hot graph: nothing to gate
  r.avg_power_mw = r.total_mj() / to_seconds(makespan);
  if (stats.tasks_in > 0)
    r.uj_per_task = r.total_mj() * 1e3 / static_cast<double>(stats.tasks_in);
  return r;
}

}  // namespace nexus::cost
