// Pending-event schedulers for the DES kernel.
//
// The kernel's contract is a *total* pop order: earliest time first, ties
// broken by issue sequence (Event::seq), so same-tick events pop in
// insertion order. Any structure that honours that order produces the same
// schedule bit for bit — which is what lets the queue implementation be
// swapped for speed without moving a single golden. Two implementations
// live behind the EventQueue facade:
//
//   kBinaryHeap — std::priority_queue, O(log n) per op. The original
//     kernel and the reference the differential tests compare against.
//   kCalendar — a calendar queue (Brown 1988, vector buckets): events hash
//     into time-width buckets by `(t >> width_shift) & mask`, the server
//     walks buckets window by window, and the structure resizes itself to
//     keep ~O(1) events per bucket. Amortised O(1) push/pop regardless of
//     the pending population, which is what million-event serving traces
//     are bound by.
//
// Bucket storage is slab-recycled through an EventArena: rotation, drain
// and resize return vectors to a free pool instead of the allocator, so a
// steady-state run stops allocating entirely after warm-up.
//
// CalendarQueue additionally relies on the kernel's monotonicity invariant
// (pushed times never precede the last popped time — Simulation asserts
// `t >= now()`), which lets served bucket prefixes be dropped lazily.
#pragma once

#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

#include "nexus/sim/event.hpp"
#include "nexus/telemetry/fwd.hpp"

namespace nexus {

/// Which pending-event structure a Simulation drains.
enum class QueueKind : std::uint8_t {
  kBinaryHeap = 0,
  kCalendar = 1,
};

[[nodiscard]] const char* to_string(QueueKind k);

/// The process-wide default for newly constructed Simulations: the
/// NEXUS_SIM_QUEUE environment variable ("heap" / "calendar") when set,
/// else kCalendar. Reads the environment once.
[[nodiscard]] QueueKind default_queue_kind();

/// Override the default (tests sweep implementations through this; it also
/// wins over the environment variable). Affects Simulations constructed
/// *after* the call.
void set_default_queue_kind(QueueKind k);

/// Slab pool for bucket storage: vectors are released with their capacity
/// intact and handed back out on demand, so bucket churn (drain, rotation,
/// resize) recycles memory instead of round-tripping the allocator.
class EventArena {
 public:
  /// An empty vector, with capacity when a recycled slab is available.
  [[nodiscard]] std::vector<Event> acquire() {
    if (free_.empty()) {
      ++allocs_;
      return {};
    }
    ++reuses_;
    std::vector<Event> v = std::move(free_.back());
    free_.pop_back();
    return v;
  }

  /// Return a slab to the pool (cleared, capacity kept).
  void release(std::vector<Event>&& v) {
    if (v.capacity() == 0) return;  // nothing worth pooling
    v.clear();
    free_.push_back(std::move(v));
    if (free_.size() > high_water_) high_water_ = free_.size();
  }

  [[nodiscard]] std::uint64_t allocs() const { return allocs_; }
  [[nodiscard]] std::uint64_t reuses() const { return reuses_; }
  /// Most slabs ever parked in the pool at once (memory footprint bound).
  [[nodiscard]] std::uint64_t high_water() const { return high_water_; }

 private:
  std::vector<std::vector<Event>> free_;
  std::uint64_t allocs_ = 0;
  std::uint64_t reuses_ = 0;
  std::uint64_t high_water_ = 0;
};

/// Calendar-queue scheduler with exact (t, seq) pop order.
class CalendarQueue {
 public:
  CalendarQueue();

  void push(const Event& ev);

  /// Pop the minimum (earliest t, lowest seq). Precondition: !empty().
  Event pop();

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  // --- introspection for the differential/stress tests and telemetry ---
  struct Stats {
    std::uint64_t grows = 0;      ///< bucket-array doublings
    std::uint64_t shrinks = 0;    ///< bucket-array halvings
    std::uint64_t sweeps = 0;     ///< full-rotation direct-search fallbacks
    std::uint64_t arena_allocs = 0;
    std::uint64_t arena_reuses = 0;
    std::uint64_t arena_high_water = 0;  ///< most slabs ever pooled at once
    std::uint64_t max_bucket = 0;        ///< deepest single-bucket occupancy
  };
  [[nodiscard]] Stats stats() const;

  /// Attach the host-side profiler to the cold structural paths (bucket
  /// rebuilds and straggler-sweep fallbacks). Null-safe; hot push/pop are
  /// timed by the Simulation loop instead, so this adds nothing there.
  void bind_profiler(telemetry::Profiler* p, std::uint32_t rebuild_node,
                     std::uint32_t sweep_node) {
    prof_ = p;
    prof_rebuild_ = rebuild_node;
    prof_sweep_ = sweep_node;
  }

 private:
  /// One calendar day: a (t, seq)-sorted vector plus a served-prefix head.
  /// Popping advances `head` instead of erasing (O(1)); monotonic push
  /// times guarantee new events always sort at or after it.
  struct Bucket {
    std::vector<Event> events;
    std::uint32_t head = 0;

    [[nodiscard]] bool drained() const { return head >= events.size(); }
  };

  [[nodiscard]] std::size_t bucket_of(Tick t) const {
    return static_cast<std::size_t>(static_cast<std::uint64_t>(t) >>
                                    width_shift_) &
           mask_;
  }

  void insert_sorted(Bucket& b, const Event& ev);
  void rebuild(std::size_t nbuckets);
  void resize_if_needed();
  /// Point the server at the window containing `t`.
  void aim_at(Tick t);

  std::vector<Bucket> buckets_;
  std::size_t mask_ = 0;          ///< buckets_.size() - 1 (power of two)
  std::uint32_t width_shift_ = 0; ///< bucket width == 1 << width_shift_
  std::size_t size_ = 0;

  std::size_t cur_bucket_ = 0;
  Tick window_end_ = 0;  ///< exclusive upper edge of the served window
  Tick min_t_ = 0;       ///< no pending event is earlier than this

  EventArena arena_;
  std::uint64_t grows_ = 0;
  std::uint64_t shrinks_ = 0;
  std::uint64_t sweeps_ = 0;
  std::uint64_t max_bucket_ = 0;

  telemetry::Profiler* prof_ = nullptr;
  std::uint32_t prof_rebuild_ = 0;
  std::uint32_t prof_sweep_ = 0;
};

/// The facade Simulation drains: one branch on `kind()` per operation, so
/// the calendar hot path pays a predictable branch and nothing else.
class EventQueue {
 public:
  explicit EventQueue(QueueKind kind) : kind_(kind) {}

  [[nodiscard]] QueueKind kind() const { return kind_; }

  void push(const Event& ev) {
    if (kind_ == QueueKind::kCalendar) {
      cal_.push(ev);
      if (cal_.size() > max_depth_) max_depth_ = cal_.size();
    } else {
      heap_.push(ev);
      if (heap_.size() > max_depth_) max_depth_ = heap_.size();
    }
  }

  [[nodiscard]] Event pop() {
    if (kind_ == QueueKind::kCalendar) return cal_.pop();
    Event ev = heap_.top();
    heap_.pop();
    return ev;
  }

  [[nodiscard]] bool empty() const {
    return kind_ == QueueKind::kCalendar ? cal_.empty() : heap_.empty();
  }

  [[nodiscard]] std::size_t size() const {
    return kind_ == QueueKind::kCalendar ? cal_.size() : heap_.size();
  }

  /// Calendar internals (zeroed Stats under kBinaryHeap).
  [[nodiscard]] CalendarQueue::Stats calendar_stats() const {
    return kind_ == QueueKind::kCalendar ? cal_.stats()
                                         : CalendarQueue::Stats{};
  }

  /// Deepest the pending set has ever been (either implementation).
  [[nodiscard]] std::size_t max_depth() const { return max_depth_; }

  /// Forwarded to the calendar's cold structural paths (no-op under heap).
  void bind_profiler(telemetry::Profiler* p, std::uint32_t rebuild_node,
                     std::uint32_t sweep_node) {
    cal_.bind_profiler(p, rebuild_node, sweep_node);
  }

 private:
  QueueKind kind_;
  std::priority_queue<Event, std::vector<Event>, EventLater> heap_;
  CalendarQueue cal_;
  std::size_t max_depth_ = 0;
};

}  // namespace nexus
