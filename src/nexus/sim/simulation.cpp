#include "nexus/sim/simulation.hpp"

#include "nexus/common/assert.hpp"

namespace nexus {

std::uint32_t Simulation::add_component(Component* c) {
  NEXUS_ASSERT(c != nullptr);
  components_.push_back(c);
  return static_cast<std::uint32_t>(components_.size() - 1);
}

void Simulation::schedule(Tick t, std::uint32_t comp, std::uint32_t op,
                          std::uint64_t a, std::uint64_t b) {
  NEXUS_ASSERT_MSG(t >= now_, "cannot schedule into the past");
  NEXUS_ASSERT_MSG(comp < components_.size(), "unknown component id");
  queue_.push(Event{t, seq_++, comp, op, a, b});
}

void Simulation::run() {
  while (!queue_.empty() && !stopped_) {
    const Event ev = queue_.top();
    queue_.pop();
    now_ = ev.t;
    ++processed_;
    components_[ev.comp]->handle(*this, ev);
  }
}

bool Simulation::run_some(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (!queue_.empty() && !stopped_ && n < max_events) {
    const Event ev = queue_.top();
    queue_.pop();
    now_ = ev.t;
    ++processed_;
    ++n;
    components_[ev.comp]->handle(*this, ev);
  }
  return !queue_.empty() && !stopped_;
}

}  // namespace nexus
