#include "nexus/sim/simulation.hpp"

#include <string>

#include "nexus/common/assert.hpp"
#include "nexus/telemetry/profiler.hpp"
#include "nexus/telemetry/registry.hpp"
#include "nexus/telemetry/timeline.hpp"

namespace nexus {

std::uint32_t Simulation::add_component(Component* c) {
  NEXUS_ASSERT(c != nullptr);
  components_.push_back(c);
  return static_cast<std::uint32_t>(components_.size() - 1);
}

void Simulation::schedule(Tick t, std::uint32_t comp, std::uint32_t op,
                          std::uint64_t a, std::uint64_t b) {
  NEXUS_ASSERT_MSG(t >= now_, "cannot schedule into the past");
  NEXUS_ASSERT_MSG(comp < components_.size(), "unknown component id");
  const Event ev{t, seq_++, comp, op, a, b};
  if (prof_ == nullptr) {
    queue_.push(ev);
    return;
  }
  telemetry::ProfScope ps(prof_, prof_push_);
  queue_.push(ev);
}

void Simulation::run() {
  if (prof_ != nullptr) {
    run_profiled(~std::uint64_t{0});
    return;
  }
  while (!queue_.empty() && !stopped_) {
    const Event ev = queue_.pop();
    observe(ev);
    now_ = ev.t;
    ++processed_;
    components_[ev.comp]->handle(*this, ev);
  }
  flush_queue_metrics();
}

bool Simulation::run_some(std::uint64_t max_events) {
  if (prof_ != nullptr) return run_profiled(max_events);
  std::uint64_t n = 0;
  while (!queue_.empty() && !stopped_ && n < max_events) {
    const Event ev = queue_.pop();
    observe(ev);
    now_ = ev.t;
    ++processed_;
    ++n;
    components_[ev.comp]->handle(*this, ev);
  }
  flush_queue_metrics();
  return !queue_.empty() && !stopped_;
}

bool Simulation::run_profiled(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (!queue_.empty() && !stopped_ && n < max_events) {
    Event ev;
    {
      telemetry::ProfScope ps(prof_, prof_pop_);
      ev = queue_.pop();
    }
    observe(ev);
    now_ = ev.t;
    ++processed_;
    ++n;
    {
      telemetry::ProfScope ps(prof_, profiler_component_node(ev.comp));
      components_[ev.comp]->handle(*this, ev);
    }
  }
  flush_queue_stats();
  flush_queue_metrics();
  return !queue_.empty() && !stopped_;
}

void Simulation::bind_profiler(telemetry::Profiler& prof,
                               std::uint32_t parent) {
  prof_ = &prof;
  const auto queue = prof.node(parent, "queue");
  prof_push_ = prof.node(queue, "push");
  prof_pop_ = prof.node(queue, "pop");
  const auto rebuild = prof.node(queue, "rebuild");
  const auto sweep = prof.node(queue, "sweep");
  queue_.bind_profiler(&prof, rebuild, sweep);
  prof_grows_ = prof.node(queue, "grows");
  prof_shrinks_ = prof.node(queue, "shrinks");
  prof_arena_alloc_ = prof.node(queue, "arena_alloc");
  prof_arena_reuse_ = prof.node(queue, "arena_reuse");
  prof_arena_high_ = prof.node(queue, "arena_high_water");
  prof_max_bucket_ = prof.node(queue, "max_bucket");
  prof_max_depth_ = prof.node(queue, "max_depth");

  prof_handle_ = prof.node(parent, "handle");
  prof_comp_node_.clear();
  prof_comp_node_.reserve(components_.size());
  for (Component* c : components_) {
    // Keyed by type label, so replicated components (16 worker cores, N
    // TGUs) aggregate into one node each — the profile answers "where do
    // the cycles go per *kind* of unit", which is what partitioning needs.
    prof_comp_node_.push_back(prof.node(prof_handle_, c->telemetry_label()));
  }
}

void Simulation::flush_queue_stats() {
  const CalendarQueue::Stats s = queue_.calendar_stats();
  prof_->set_count(prof_grows_, s.grows);
  prof_->set_count(prof_shrinks_, s.shrinks);
  prof_->set_count(prof_arena_alloc_, s.arena_allocs);
  prof_->set_count(prof_arena_reuse_, s.arena_reuses);
  prof_->stat_max(prof_arena_high_, s.arena_high_water);
  prof_->stat_max(prof_max_bucket_, s.max_bucket);
  prof_->stat_max(prof_max_depth_, queue_.max_depth());
}

void Simulation::bind_telemetry(telemetry::MetricRegistry& reg,
                                std::string_view prefix) {
  m_events_ = &reg.counter(telemetry::path_join(prefix, "events"));
  m_advance_ = &reg.histogram(telemetry::path_join(prefix, "advance_ps"));
  comp_events_.clear();
  comp_gap_.clear();
  comp_last_.assign(components_.size(), 0);
  for (std::size_t i = 0; i < components_.size(); ++i) {
    const std::string comp = "c" + std::to_string(i) + "_" +
                             components_[i]->telemetry_label();
    const std::string base = telemetry::path_join(prefix, comp);
    comp_events_.push_back(&reg.counter(telemetry::path_join(base, "events")));
    comp_gap_.push_back(&reg.histogram(telemetry::path_join(base, "gap_ps")));
  }
  const std::string q = telemetry::path_join(prefix, "queue");
  m_q_grows_ = &reg.gauge(telemetry::path_join(q, "grows"));
  m_q_shrinks_ = &reg.gauge(telemetry::path_join(q, "shrinks"));
  m_q_sweeps_ = &reg.gauge(telemetry::path_join(q, "sweeps"));
  m_q_arena_allocs_ = &reg.gauge(telemetry::path_join(q, "arena_allocs"));
  m_q_arena_reuses_ = &reg.gauge(telemetry::path_join(q, "arena_reuses"));
  m_q_arena_high_ = &reg.gauge(telemetry::path_join(q, "arena_high_water"));
  m_q_max_bucket_ = &reg.gauge(telemetry::path_join(q, "max_bucket"));
  m_q_max_depth_ = &reg.gauge(telemetry::path_join(q, "max_depth"));
}

void Simulation::flush_queue_metrics() {
  if (m_q_grows_ == nullptr) return;
  const CalendarQueue::Stats s = queue_.calendar_stats();
  m_q_grows_->set(static_cast<std::int64_t>(s.grows));
  m_q_shrinks_->set(static_cast<std::int64_t>(s.shrinks));
  m_q_sweeps_->set(static_cast<std::int64_t>(s.sweeps));
  m_q_arena_allocs_->set(static_cast<std::int64_t>(s.arena_allocs));
  m_q_arena_reuses_->set(static_cast<std::int64_t>(s.arena_reuses));
  m_q_arena_high_->set(static_cast<std::int64_t>(s.arena_high_water));
  m_q_max_bucket_->set(static_cast<std::int64_t>(s.max_bucket));
  m_q_max_depth_->set(static_cast<std::int64_t>(queue_.max_depth()));
}

void Simulation::set_sampler(telemetry::TimelineRecorder* sampler) {
  sampler_ = sampler;
  // A recorder attached mid-run has not observed anything yet: consume the
  // grid points already behind now() as unobserved rows (exported as zeros)
  // rather than letting the first sample back-date the attach-time metric
  // values onto them. Pre-run (now() == 0) this is a no-op, keeping the
  // attach-before-run path bit-identical to the pre-fix behavior.
  if (sampler_ != nullptr && now_ > 0) sampler_->skip_until(now_);
}

void Simulation::sample_to(Tick t) { sampler_->sample_until(t); }

void Simulation::observe_slow(const Event& ev) {
  m_events_->inc();
  m_advance_->record(static_cast<std::uint64_t>(ev.t - now_));
  if (ev.comp < comp_events_.size()) {
    comp_events_[ev.comp]->inc();
    comp_gap_[ev.comp]->record(
        static_cast<std::uint64_t>(ev.t - comp_last_[ev.comp]));
    comp_last_[ev.comp] = ev.t;
  }
}

}  // namespace nexus
