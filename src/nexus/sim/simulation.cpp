#include "nexus/sim/simulation.hpp"

#include <string>

#include "nexus/common/assert.hpp"
#include "nexus/telemetry/registry.hpp"
#include "nexus/telemetry/timeline.hpp"

namespace nexus {

std::uint32_t Simulation::add_component(Component* c) {
  NEXUS_ASSERT(c != nullptr);
  components_.push_back(c);
  return static_cast<std::uint32_t>(components_.size() - 1);
}

void Simulation::schedule(Tick t, std::uint32_t comp, std::uint32_t op,
                          std::uint64_t a, std::uint64_t b) {
  NEXUS_ASSERT_MSG(t >= now_, "cannot schedule into the past");
  NEXUS_ASSERT_MSG(comp < components_.size(), "unknown component id");
  queue_.push(Event{t, seq_++, comp, op, a, b});
}

void Simulation::run() {
  while (!queue_.empty() && !stopped_) {
    const Event ev = queue_.pop();
    observe(ev);
    now_ = ev.t;
    ++processed_;
    components_[ev.comp]->handle(*this, ev);
  }
}

bool Simulation::run_some(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (!queue_.empty() && !stopped_ && n < max_events) {
    const Event ev = queue_.pop();
    observe(ev);
    now_ = ev.t;
    ++processed_;
    ++n;
    components_[ev.comp]->handle(*this, ev);
  }
  return !queue_.empty() && !stopped_;
}

void Simulation::bind_telemetry(telemetry::MetricRegistry& reg,
                                std::string_view prefix) {
  m_events_ = &reg.counter(telemetry::path_join(prefix, "events"));
  m_advance_ = &reg.histogram(telemetry::path_join(prefix, "advance_ps"));
  comp_events_.clear();
  comp_gap_.clear();
  comp_last_.assign(components_.size(), 0);
  for (std::size_t i = 0; i < components_.size(); ++i) {
    const std::string comp = "c" + std::to_string(i) + "_" +
                             components_[i]->telemetry_label();
    const std::string base = telemetry::path_join(prefix, comp);
    comp_events_.push_back(&reg.counter(telemetry::path_join(base, "events")));
    comp_gap_.push_back(&reg.histogram(telemetry::path_join(base, "gap_ps")));
  }
}

void Simulation::set_sampler(telemetry::TimelineRecorder* sampler) {
  sampler_ = sampler;
  // A recorder attached mid-run has not observed anything yet: consume the
  // grid points already behind now() as unobserved rows (exported as zeros)
  // rather than letting the first sample back-date the attach-time metric
  // values onto them. Pre-run (now() == 0) this is a no-op, keeping the
  // attach-before-run path bit-identical to the pre-fix behavior.
  if (sampler_ != nullptr && now_ > 0) sampler_->skip_until(now_);
}

void Simulation::sample_to(Tick t) { sampler_->sample_until(t); }

void Simulation::observe_slow(const Event& ev) {
  m_events_->inc();
  m_advance_->record(static_cast<std::uint64_t>(ev.t - now_));
  if (ev.comp < comp_events_.size()) {
    comp_events_[ev.comp]->inc();
    comp_gap_[ev.comp]->record(
        static_cast<std::uint64_t>(ev.t - comp_last_[ev.comp]));
    comp_last_[ev.comp] = ev.t;
  }
}

}  // namespace nexus
