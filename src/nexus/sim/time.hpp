// Simulated time.
//
// All simulation timestamps are integer picoseconds. Integer time makes the
// simulation exactly deterministic (no float drift across platforms) and
// picosecond resolution represents both domains that coexist in the model:
// manager clock cycles (10-24 ns at 41-114 MHz) and task durations
// (sub-microsecond Gaussian tasks up to multi-millisecond c-ray tasks).
#pragma once

#include <cstdint>

#include "nexus/common/assert.hpp"

namespace nexus {

using Tick = std::int64_t;  ///< picoseconds

constexpr Tick kTickInfinity = INT64_MAX / 4;  // headroom so sums never overflow

constexpr Tick ps(double v) { return static_cast<Tick>(v); }
constexpr Tick ns(double v) { return static_cast<Tick>(v * 1e3); }
constexpr Tick us(double v) { return static_cast<Tick>(v * 1e6); }
constexpr Tick ms(double v) { return static_cast<Tick>(v * 1e9); }
constexpr Tick seconds(double v) { return static_cast<Tick>(v * 1e12); }

constexpr double to_ns(Tick t) { return static_cast<double>(t) * 1e-3; }
constexpr double to_us(Tick t) { return static_cast<double>(t) * 1e-6; }
constexpr double to_ms(Tick t) { return static_cast<double>(t) * 1e-9; }
constexpr double to_seconds(Tick t) { return static_cast<double>(t) * 1e-12; }

/// A clock domain at a fixed frequency; converts cycle counts to Ticks.
class ClockDomain {
 public:
  ClockDomain() : period_ps_(10000) {}  // default 100 MHz
  explicit ClockDomain(double mhz)
      : period_ps_(static_cast<Tick>(1e6 / mhz + 0.5)) {
    NEXUS_ASSERT_MSG(mhz > 0.0, "frequency must be positive");
  }

  [[nodiscard]] Tick period() const { return period_ps_; }
  [[nodiscard]] double mhz() const { return 1e6 / static_cast<double>(period_ps_); }

  /// Duration of n cycles.
  [[nodiscard]] Tick cycles(std::int64_t n) const { return n * period_ps_; }

  /// Number of whole cycles elapsed in a duration (floor).
  [[nodiscard]] std::int64_t cycles_in(Tick duration) const {
    return duration / period_ps_;
  }

  /// The first clock edge at or after t.
  [[nodiscard]] Tick edge_at_or_after(Tick t) const {
    const Tick rem = t % period_ps_;
    return rem == 0 ? t : t + (period_ps_ - rem);
  }

 private:
  Tick period_ps_;
};

}  // namespace nexus
