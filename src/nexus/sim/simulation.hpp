// Deterministic discrete-event simulation kernel.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "nexus/sim/component.hpp"
#include "nexus/sim/event.hpp"

namespace nexus {

class Simulation {
 public:
  /// Register a component; returns its id for event addressing.
  /// The component must outlive the simulation. Not owned.
  std::uint32_t add_component(Component* c);

  /// Schedule an event at absolute time t (must be >= now()).
  void schedule(Tick t, std::uint32_t comp, std::uint32_t op, std::uint64_t a = 0,
                std::uint64_t b = 0);

  /// Schedule an event `delay` after now().
  void schedule_in(Tick delay, std::uint32_t comp, std::uint32_t op,
                   std::uint64_t a = 0, std::uint64_t b = 0) {
    schedule(now_ + delay, comp, op, a, b);
  }

  /// Run until the event queue drains (or a component calls stop()).
  void run();

  /// Run at most `max_events` more events; returns false if the queue drained.
  bool run_some(std::uint64_t max_events);

  void stop() { stopped_ = true; }

  [[nodiscard]] Tick now() const { return now_; }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

 private:
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::vector<Component*> components_;
  Tick now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
  bool stopped_ = false;
};

}  // namespace nexus
