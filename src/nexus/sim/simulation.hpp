// Deterministic discrete-event simulation kernel.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "nexus/sim/component.hpp"
#include "nexus/sim/event.hpp"
#include "nexus/sim/event_queue.hpp"
#include "nexus/telemetry/fwd.hpp"

namespace nexus {

class Simulation {
 public:
  /// Pending events live in the process-default queue implementation (see
  /// default_queue_kind(): NEXUS_SIM_QUEUE or the calendar queue). The pop
  /// order — (time, issue seq), so same-tick events pop in insertion
  /// order — is a queue-independent contract: every implementation yields
  /// bit-identical schedules (differential-tested).
  Simulation() : Simulation(default_queue_kind()) {}
  explicit Simulation(QueueKind kind) : queue_(kind) {}

  [[nodiscard]] QueueKind queue_kind() const { return queue_.kind(); }

  /// Register a component; returns its id for event addressing.
  /// The component must outlive the simulation. Not owned.
  std::uint32_t add_component(Component* c);

  /// Schedule an event at absolute time t (must be >= now()).
  void schedule(Tick t, std::uint32_t comp, std::uint32_t op, std::uint64_t a = 0,
                std::uint64_t b = 0);

  /// Schedule an event `delay` after now().
  void schedule_in(Tick delay, std::uint32_t comp, std::uint32_t op,
                   std::uint64_t a = 0, std::uint64_t b = 0) {
    schedule(now_ + delay, comp, op, a, b);
  }

  /// Run until the event queue drains (or a component calls stop()).
  void run();

  /// Run at most `max_events` more events; returns false if the queue drained.
  bool run_some(std::uint64_t max_events);

  void stop() { stopped_ = true; }

  [[nodiscard]] Tick now() const { return now_; }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  /// Register kernel metrics under `prefix`: total events, a histogram of
  /// time advances, per-component event counts plus inter-event sim-time
  /// histograms ("<prefix>/c<i>_<label>/..."), and the event-queue
  /// structure gauges ("<prefix>/queue/...": calendar grows/shrinks/sweeps,
  /// arena alloc/reuse/high-water, max bucket occupancy, max pending
  /// depth — flushed from the queue's cumulative counters at the end of
  /// each run()/run_some() call). Call after every component has been
  /// added (attach time); later components are not covered.
  void bind_telemetry(telemetry::MetricRegistry& reg,
                      std::string_view prefix = "sim");

  /// Attach the host-side self-profiler (not owned). Creates a stable node
  /// layout under `parent`: "queue" with push/pop/rebuild/sweep timers and
  /// the calendar/arena structure stats, and "handle" with one child per
  /// component *type* (telemetry_label(), so replicated components
  /// aggregate). Call after every component has been added, like
  /// bind_telemetry. Detached (never called), the hot loop pays a single
  /// branch per run call and schedules stay bit-identical.
  void bind_profiler(telemetry::Profiler& prof, std::uint32_t parent = 0);

  /// The profile node a component's handle() time accumulates into
  /// (valid after bind_profiler; used by components that want op-level
  /// children of their own node, e.g. noc::Network and the driver).
  [[nodiscard]] std::uint32_t profiler_component_node(std::uint32_t comp) const {
    return comp < prof_comp_node_.size() ? prof_comp_node_[comp] : prof_handle_;
  }

  [[nodiscard]] telemetry::Profiler* profiler() const { return prof_; }

  /// Attach a periodic metric sampler (not owned; may be null to detach).
  /// Before each event is dispatched, the recorder is advanced to the event's
  /// timestamp, so timeline rows capture the state just *before* the sim
  /// crosses each grid point. The sampler only reads metrics — it schedules
  /// nothing and never changes simulated behavior. Attaching mid-run marks
  /// the grid points already behind now() as unobserved (zero-padded on
  /// export) instead of letting the first sample fabricate warm history.
  void set_sampler(telemetry::TimelineRecorder* sampler);

 private:
  /// Per-event metric hook; a single null check when telemetry is unbound.
  void observe(const Event& ev) {
    if (sampler_ != nullptr) sample_to(ev.t);
    if (m_events_ == nullptr) return;
    observe_slow(ev);
  }
  void observe_slow(const Event& ev);
  void sample_to(Tick t);

  /// The instrumented twin of the run loops (only entered when a profiler
  /// is bound, so the detached loops stay untouched).
  bool run_profiled(std::uint64_t max_events);
  /// Re-flush the queue's cumulative structure stats into their profile
  /// nodes (absolute values, so repeated flushes are idempotent).
  void flush_queue_stats();
  /// Same, into the telemetry gauges (run epilogue; one null check).
  void flush_queue_metrics();

  EventQueue queue_;
  std::vector<Component*> components_;
  Tick now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
  bool stopped_ = false;

  telemetry::Profiler* prof_ = nullptr;
  std::uint32_t prof_push_ = 0;
  std::uint32_t prof_pop_ = 0;
  std::uint32_t prof_handle_ = 0;
  std::vector<std::uint32_t> prof_comp_node_;  ///< per component id
  std::uint32_t prof_grows_ = 0;
  std::uint32_t prof_shrinks_ = 0;
  std::uint32_t prof_arena_alloc_ = 0;
  std::uint32_t prof_arena_reuse_ = 0;
  std::uint32_t prof_arena_high_ = 0;
  std::uint32_t prof_max_bucket_ = 0;
  std::uint32_t prof_max_depth_ = 0;

  telemetry::TimelineRecorder* sampler_ = nullptr;
  telemetry::Counter* m_events_ = nullptr;
  telemetry::Histogram* m_advance_ = nullptr;  ///< now() jumps, in ps
  std::vector<telemetry::Counter*> comp_events_;
  std::vector<telemetry::Histogram*> comp_gap_;  ///< per-component event gaps
  std::vector<Tick> comp_last_;

  // Event-queue structure gauges (null until bind_telemetry; flushed from
  // the queue's cumulative counters at the end of each run call).
  telemetry::Gauge* m_q_grows_ = nullptr;
  telemetry::Gauge* m_q_shrinks_ = nullptr;
  telemetry::Gauge* m_q_sweeps_ = nullptr;
  telemetry::Gauge* m_q_arena_allocs_ = nullptr;
  telemetry::Gauge* m_q_arena_reuses_ = nullptr;
  telemetry::Gauge* m_q_arena_high_ = nullptr;
  telemetry::Gauge* m_q_max_bucket_ = nullptr;
  telemetry::Gauge* m_q_max_depth_ = nullptr;
};

}  // namespace nexus
