#pragma once

#include "nexus/sim/event.hpp"

namespace nexus {

class Simulation;

/// A simulation component receives the events addressed to it.
/// Components are registered with the Simulation, which assigns their id.
class Component {
 public:
  virtual ~Component() = default;
  virtual void handle(Simulation& sim, const Event& ev) = 0;

  /// Short identifier used in telemetry paths ("sim/c3_arbiter/..."); must
  /// be a string literal or otherwise outlive the component.
  [[nodiscard]] virtual const char* telemetry_label() const { return "comp"; }
};

}  // namespace nexus
