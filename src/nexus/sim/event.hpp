// POD simulation event.
//
// Events carry a destination component, an opcode interpreted by that
// component, and two 64-bit payload words (task ids, addresses, indices).
// Keeping events POD — no std::function — is what lets the simulator process
// tens of millions of events per second on one core, which the full Fig. 7/8
// sweeps need.
#pragma once

#include <cstdint>

#include "nexus/sim/time.hpp"

namespace nexus {

struct Event {
  Tick t = 0;
  std::uint64_t seq = 0;  ///< global issue order; breaks time ties deterministically
  std::uint32_t comp = 0;
  std::uint32_t op = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Min-heap ordering: earliest time first, then issue order.
struct EventLater {
  bool operator()(const Event& x, const Event& y) const {
    if (x.t != y.t) return x.t > y.t;
    return x.seq > y.seq;
  }
};

}  // namespace nexus
