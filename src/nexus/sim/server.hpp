// Occupancy resources for queueing-style hardware models.
//
// A Server models a unit that processes one item at a time (a pipeline
// stage, a bus, a lock). Work requested at time `now` begins when the server
// frees up and occupies it for `duration`; the caller schedules its
// completion event at the returned finish time. This captures serialization
// and queueing delay exactly for FIFO service order without stepping idle
// cycles, which is what keeps whole-trace simulations fast.
#pragma once

#include <algorithm>
#include <cstdint>

#include "nexus/sim/time.hpp"

namespace nexus {

class Server {
 public:
  /// Reserve the server at `now` for `duration`; returns completion time.
  Tick acquire(Tick now, Tick duration) {
    const Tick start = std::max(now, free_at_);
    free_at_ = start + duration;
    busy_ += duration;
    ++jobs_;
    wait_ += start - now;
    return free_at_;
  }

  /// When the server next becomes free.
  [[nodiscard]] Tick free_at() const { return free_at_; }

  /// True if an acquire at `now` would start immediately.
  [[nodiscard]] bool idle_at(Tick now) const { return free_at_ <= now; }

  // --- utilization accounting (for reports/tests) ---
  [[nodiscard]] Tick busy_time() const { return busy_; }
  [[nodiscard]] std::uint64_t jobs() const { return jobs_; }
  [[nodiscard]] Tick total_wait() const { return wait_; }

  void reset() { *this = Server{}; }

 private:
  Tick free_at_ = 0;
  Tick busy_ = 0;
  Tick wait_ = 0;
  std::uint64_t jobs_ = 0;
};

}  // namespace nexus
