#include "nexus/sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "nexus/common/assert.hpp"
#include "nexus/telemetry/profiler.hpp"

namespace nexus {

namespace {

/// Strict (t, seq) order — the kernel's total pop order.
struct EventEarlier {
  bool operator()(const Event& x, const Event& y) const {
    if (x.t != y.t) return x.t < y.t;
    return x.seq < y.seq;
  }
};

constexpr std::size_t kMinBuckets = 8;
/// Bucket width is 2^shift picoseconds; the cap (~1.1 ms) keeps
/// window_end_ arithmetic far from Tick overflow even after long scans.
constexpr std::uint32_t kMaxWidthShift = 40;
/// Default width 2^13 ps ~= one cycle at 122 MHz; the first resize replaces
/// it with a measured value.
constexpr std::uint32_t kInitialWidthShift = 13;

QueueKind parse_queue_env() {
  const char* v = std::getenv("NEXUS_SIM_QUEUE");
  if (v == nullptr || *v == '\0') return QueueKind::kCalendar;
  if (std::strcmp(v, "calendar") == 0) return QueueKind::kCalendar;
  if (std::strcmp(v, "heap") == 0) return QueueKind::kBinaryHeap;
  std::fprintf(stderr,
               "nexus: ignoring unknown NEXUS_SIM_QUEUE=\"%s\" "
               "(expected \"heap\" or \"calendar\"); using calendar\n",
               v);
  return QueueKind::kCalendar;
}

QueueKind g_default_kind = QueueKind::kCalendar;
bool g_default_resolved = false;

}  // namespace

const char* to_string(QueueKind k) {
  return k == QueueKind::kCalendar ? "calendar" : "heap";
}

QueueKind default_queue_kind() {
  if (!g_default_resolved) {
    g_default_kind = parse_queue_env();
    g_default_resolved = true;
  }
  return g_default_kind;
}

void set_default_queue_kind(QueueKind k) {
  g_default_kind = k;
  g_default_resolved = true;
}

CalendarQueue::CalendarQueue() {
  buckets_.resize(kMinBuckets);
  mask_ = kMinBuckets - 1;
  width_shift_ = kInitialWidthShift;
  aim_at(0);
}

void CalendarQueue::aim_at(Tick t) {
  cur_bucket_ = bucket_of(t);
  window_end_ = ((t >> width_shift_) + 1) << width_shift_;
  min_t_ = t;
}

void CalendarQueue::insert_sorted(Bucket& b, const Event& ev) {
  if (b.events.capacity() == 0) b.events = arena_.acquire();
  // Fast path: at-or-after everything pending in this bucket (the common
  // case — same-tick bursts append, and seq grows monotonically).
  if (b.events.empty() || !EventEarlier{}(ev, b.events.back())) {
    b.events.push_back(ev);
    return;
  }
  const auto it = std::upper_bound(b.events.begin() + b.head, b.events.end(),
                                   ev, EventEarlier{});
  b.events.insert(it, ev);
}

void CalendarQueue::push(const Event& ev) {
  NEXUS_DCHECK(ev.t >= 0);
  Bucket& b = buckets_[bucket_of(ev.t)];
  insert_sorted(b, ev);
  const std::uint64_t pending = b.events.size() - b.head;
  if (pending > max_bucket_) max_bucket_ = pending;
  ++size_;
  // An event earlier than the served window (possible for a fresh queue, or
  // for direct users that do not follow the kernel's monotonic-time
  // contract): pull the server back so it is not skipped.
  if (ev.t < window_end_ - (Tick{1} << width_shift_)) aim_at(ev.t);
  resize_if_needed();
}

Event CalendarQueue::pop() {
  NEXUS_ASSERT_MSG(size_ > 0, "pop on empty CalendarQueue");
  const Tick width = Tick{1} << width_shift_;
  for (std::size_t scanned = 0; scanned <= mask_; ++scanned) {
    Bucket& b = buckets_[cur_bucket_];
    if (!b.drained() && b.events[b.head].t < window_end_) {
      const Event ev = b.events[b.head];
      ++b.head;
      --size_;
      min_t_ = ev.t;
      if (b.drained()) {
        arena_.release(std::move(b.events));
        b.events = {};
        b.head = 0;
      } else if (b.head >= 32 && b.head * 2 >= b.events.size()) {
        // Served prefix compaction: keep long-lived buckets (ones always
        // holding a future-year straggler) from growing without bound.
        b.events.erase(b.events.begin(),
                       b.events.begin() + static_cast<std::ptrdiff_t>(b.head));
        b.head = 0;
      }
      resize_if_needed();
      return ev;
    }
    cur_bucket_ = (cur_bucket_ + 1) & mask_;
    window_end_ += width;
  }

  // A full rotation found nothing inside its window: everything pending is
  // far in the future. Jump the server straight to the earliest bucket
  // front instead of scanning year by year.
  ++sweeps_;
  {
    telemetry::ProfScope ps(prof_, prof_sweep_);
    const Bucket* best = nullptr;
    for (const Bucket& b : buckets_) {
      if (b.drained()) continue;
      if (best == nullptr ||
          EventEarlier{}(b.events[b.head], best->events[best->head]))
        best = &b;
    }
    NEXUS_ASSERT_MSG(best != nullptr, "CalendarQueue lost events");
    aim_at(best->events[best->head].t);
  }
  return pop();
}

void CalendarQueue::resize_if_needed() {
  const std::size_t nbuckets = buckets_.size();
  if (size_ > nbuckets * 2) {
    ++grows_;
    rebuild(nbuckets * 2);
  } else if (nbuckets > kMinBuckets && size_ < nbuckets / 2) {
    ++shrinks_;
    rebuild(nbuckets / 2);
  }
}

void CalendarQueue::rebuild(std::size_t nbuckets) {
  NEXUS_DCHECK(std::has_single_bit(nbuckets));
  telemetry::ProfScope ps(prof_, prof_rebuild_);
  // Gather the pending events, releasing the old slabs as we go.
  std::vector<Event> pending = arena_.acquire();
  pending.reserve(size_);
  for (Bucket& b : buckets_) {
    pending.insert(pending.end(), b.events.begin() + b.head, b.events.end());
    arena_.release(std::move(b.events));
    b.events = {};
    b.head = 0;
  }
  NEXUS_DCHECK(pending.size() == size_);

  // Width from the inter-event gap near the head (Brown's calendar-queue
  // rule): sample the earliest ~64 events and take 3x their mean
  // separation, so far-future stragglers cannot stretch the buckets that
  // serve the dense region.
  if (!pending.empty()) {
    const std::size_t sample = std::min<std::size_t>(64, pending.size());
    std::partial_sort(pending.begin(),
                      pending.begin() + static_cast<std::ptrdiff_t>(sample),
                      pending.end(), EventEarlier{});
    Tick width = 1;
    if (sample > 1) {
      const Tick span = pending[sample - 1].t - pending[0].t;
      width = std::max<Tick>(1, 3 * span / static_cast<Tick>(sample - 1));
    }
    width_shift_ = std::min(
        kMaxWidthShift,
        static_cast<std::uint32_t>(
            std::bit_width(static_cast<std::uint64_t>(width - 1))));
  }

  buckets_.resize(nbuckets);
  buckets_.shrink_to_fit();
  mask_ = nbuckets - 1;
  for (const Event& ev : pending) insert_sorted(buckets_[bucket_of(ev.t)], ev);
  aim_at(pending.empty() ? min_t_ : pending[0].t);
  arena_.release(std::move(pending));
}

CalendarQueue::Stats CalendarQueue::stats() const {
  Stats s;
  s.grows = grows_;
  s.shrinks = shrinks_;
  s.sweeps = sweeps_;
  s.arena_allocs = arena_.allocs();
  s.arena_reuses = arena_.reuses();
  s.arena_high_water = arena_.high_water();
  s.max_bucket = max_bucket_;
  return s;
}

}  // namespace nexus
