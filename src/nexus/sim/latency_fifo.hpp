// Bounded FIFO with write-to-read latency.
//
// The paper's buffers (New Args, Finished Args, Ready Tasks, Dep Counts,
// Waiting Tasks, Internal Ready Tasks) are hardware FIFOs whose data "needs
// 3 cycles to appear at their output" (Section IV-D). This model tracks, per
// item, the time at which it becomes visible to the consumer, and enforces a
// physical depth so producers observe backpressure.
#pragma once

#include <cstddef>

#include "nexus/common/fixed_ring.hpp"
#include "nexus/sim/time.hpp"
#include "nexus/telemetry/metrics.hpp"

namespace nexus {

template <typename T>
class LatencyFifo {
 public:
  LatencyFifo(std::size_t depth, Tick latency)
      : ring_(depth), latency_(latency) {}

  [[nodiscard]] bool full() const { return ring_.full(); }
  [[nodiscard]] bool empty() const { return ring_.empty(); }
  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  [[nodiscard]] std::size_t depth() const { return ring_.capacity(); }
  [[nodiscard]] Tick latency() const { return latency_; }

  /// Push at time `now`. Caller must check !full().
  void push(Tick now, T v) {
    ring_.push(Entry{now + latency_, std::move(v)});
    if (m_depth_ != nullptr) m_depth_->record(ring_.size());
  }

  /// Record post-push and post-pop depth into `h` (null detaches; no-op by
  /// default). Sampling both sides covers the drain transitions too, so the
  /// histogram sees the full depth trajectory instead of only its rises.
  void bind_depth_telemetry(telemetry::Histogram* h) { m_depth_ = h; }

  /// Time at which the front item can be consumed (kTickInfinity if empty).
  [[nodiscard]] Tick front_ready_at() const {
    return ring_.empty() ? kTickInfinity : ring_.front().visible_at;
  }

  /// True if the front item is consumable at `now`.
  [[nodiscard]] bool front_ready(Tick now) const {
    return !ring_.empty() && ring_.front().visible_at <= now;
  }

  [[nodiscard]] const T& front() const { return ring_.front().value; }

  T pop() {
    T v = ring_.pop().value;
    if (m_depth_ != nullptr) m_depth_->record(ring_.size());
    return v;
  }

 private:
  struct Entry {
    Tick visible_at;
    T value;
  };
  FixedRing<Entry> ring_;
  Tick latency_;
  telemetry::Histogram* m_depth_ = nullptr;
};

}  // namespace nexus
