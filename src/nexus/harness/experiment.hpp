// Experiment harness: core-count sweeps of a trace against a task manager,
// speedup series, and paper-style table output — the machinery every
// bench/figure binary shares.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nexus/nexuspp/nexuspp.hpp"
#include "nexus/nexussharp/nexussharp.hpp"
#include "nexus/runtime/nanos_model.hpp"
#include "nexus/runtime/simulation_driver.hpp"
#include "nexus/task/trace.hpp"

namespace nexus::harness {

/// The paper's core-count axes.
std::vector<std::uint32_t> paper_cores_256();  ///< 1,2,4,...,256 (Figs. 7/8)
std::vector<std::uint32_t> paper_cores_64();   ///< 1,2,4,...,64 (Fig. 9)
std::vector<std::uint32_t> nanos_cores_32();   ///< 1,...,32 (the test machine)

/// Which dependency-resolution back-end a sweep uses.
struct ManagerSpec {
  enum class Kind { kIdeal, kNanos, kNexusPP, kNexusSharp } kind = Kind::kIdeal;
  std::string label = "ideal";
  NanosConfig nanos{};
  NexusPPConfig npp{};
  NexusSharpConfig sharp{};
  ArbiterPolicy arbiter_policy = ArbiterPolicy::kReadyFirst;

  static ManagerSpec ideal();
  static ManagerSpec nanos_default();
  static ManagerSpec nexuspp_default();
  /// Nexus# at a TG count, clocked per Table I's test frequency (or at
  /// `mhz_override` > 0, e.g. the Fig. 7(a) fixed-100MHz runs).
  static ManagerSpec nexussharp(std::uint32_t tgs, double mhz_override = 0.0);
};

struct SweepPoint {
  std::uint32_t cores = 0;
  Tick makespan = 0;
  double speedup = 0.0;  ///< vs the ideal single-core baseline
};

struct Series {
  std::string label;
  std::vector<SweepPoint> points;

  [[nodiscard]] double max_speedup() const;
  /// Speedup at the largest cores <= n (0 if none).
  [[nodiscard]] double speedup_at(std::uint32_t n) const;
};

/// The paper's speedup baseline: "single core execution time of the ideal
/// curve" — the no-overhead makespan on one worker.
Tick ideal_baseline(const Trace& trace);

/// One makespan measurement (fresh manager instance per call).
Tick run_once(const Trace& trace, const ManagerSpec& spec, std::uint32_t cores,
              const RuntimeConfig& base = {});

/// Sweep a core-count axis. `base.workers` is overwritten per point.
Series sweep(const Trace& trace, const ManagerSpec& spec,
             const std::vector<std::uint32_t>& cores, Tick baseline,
             const RuntimeConfig& base = {});

/// Print a figure-style table: one row per core count, one column per
/// series, plus (optionally) CSV to stdout.
void print_series(const std::string& title, const std::vector<std::uint32_t>& cores,
                  const std::vector<Series>& series, bool csv = false);

}  // namespace nexus::harness
