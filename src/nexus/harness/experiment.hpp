// Experiment harness: core-count sweeps of a trace against a task manager,
// speedup series, and paper-style table output — the machinery every
// bench/figure binary shares.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "nexus/nexuspp/nexuspp.hpp"
#include "nexus/nexussharp/nexussharp.hpp"
#include "nexus/runtime/nanos_model.hpp"
#include "nexus/runtime/simulation_driver.hpp"
#include "nexus/task/trace.hpp"
#include "nexus/telemetry/snapshot.hpp"
#include "nexus/telemetry/timeline.hpp"
#include "nexus/telemetry/trace.hpp"

namespace nexus::harness {

/// The paper's core-count axes.
std::vector<std::uint32_t> paper_cores_256();  ///< 1,2,4,...,256 (Figs. 7/8)
std::vector<std::uint32_t> paper_cores_64();   ///< 1,2,4,...,64 (Fig. 9)
std::vector<std::uint32_t> nanos_cores_32();   ///< 1,...,32 (the test machine)

/// Which dependency-resolution back-end a sweep uses.
struct ManagerSpec {
  enum class Kind { kIdeal, kNanos, kNexusPP, kNexusSharp } kind = Kind::kIdeal;
  std::string label = "ideal";
  NanosConfig nanos{};
  NexusPPConfig npp{};
  NexusSharpConfig sharp{};
  ArbiterPolicy arbiter_policy = ArbiterPolicy::kReadyFirst;

  static ManagerSpec ideal();
  static ManagerSpec nanos_default();
  static ManagerSpec nexuspp_default();
  /// Nexus# at a TG count, clocked per Table I's test frequency (or at
  /// `mhz_override` > 0, e.g. the Fig. 7(a) fixed-100MHz runs).
  static ManagerSpec nexussharp(std::uint32_t tgs, double mhz_override = 0.0);
};

struct SweepPoint {
  std::uint32_t cores = 0;
  Tick makespan = 0;
  double speedup = 0.0;  ///< vs the ideal single-core baseline
  /// Interconnect topology the run used ("ideal" unless a NoC was swept).
  std::string topology = "ideal";
  /// Tile placement the run used ("default" unless one was installed).
  std::string placement = "default";
  /// Telemetry snapshot of this point's run; null unless the sweep was
  /// asked to collect metrics.
  std::shared_ptr<const telemetry::Snapshot> metrics;
  /// Sampled sim-time timeline; null unless a TimelineConfig was given.
  std::shared_ptr<const telemetry::Timeline> timeline;
};

struct Series {
  std::string label;
  std::vector<SweepPoint> points;

  [[nodiscard]] double max_speedup() const;
  /// Speedup at the largest cores <= n (0 if none).
  [[nodiscard]] double speedup_at(std::uint32_t n) const;
};

/// The paper's speedup baseline: "single core execution time of the ideal
/// curve" — the no-overhead makespan on one worker.
Tick ideal_baseline(const Trace& trace);

/// One makespan measurement (fresh manager instance per call).
Tick run_once(const Trace& trace, const ManagerSpec& spec, std::uint32_t cores,
              const RuntimeConfig& base = {});

/// A full run record: the result plus (optionally) a metric snapshot and a
/// sampled timeline.
struct RunReport {
  RunResult result;
  std::string topology = "ideal";  ///< see topology_label()
  std::string placement = "default";  ///< see placement_label()
  std::shared_ptr<const telemetry::Snapshot> metrics;  ///< null unless collected
  std::shared_ptr<const telemetry::Timeline> timeline;  ///< null unless sampled
  /// Frozen lifecycle-span trace; null unless `collect_trace` was set.
  std::shared_ptr<const telemetry::TraceData> trace;
};

/// The BENCH-record topology label of a run: the manager-side NoC kind when
/// one is configured, else the host-side (RuntimeConfig) kind, else "ideal".
std::string topology_label(const ManagerSpec& spec, const RuntimeConfig& base);

/// The BENCH-record placement label of a run (NocConfig::placement_name,
/// combined across the manager and host NoCs like topology_label). Rows
/// with different tile layouts must not collide in the perfdiff join.
std::string placement_label(const ManagerSpec& spec, const RuntimeConfig& base);

/// One measurement with full result + telemetry (fresh manager and registry
/// per call; the ideal manager runs through the DES so runtime metrics
/// exist for it too). A non-null `timeline` config attaches a
/// TimelineRecorder for the run (implies metric collection) and freezes the
/// sampled series into the report. With `collect_trace` a TraceRecorder is
/// attached for the run and its frozen span graph lands in RunReport::trace
/// (ready for chrome_trace_json / critical_path). A non-null `registry`
/// makes the run record into the caller's registry instead of a fresh local
/// one — the serving harness uses this to preset context gauges (offered
/// rate, knee) that land in the same snapshot as the run's metrics.
/// Build a fresh manager instance for `spec` (the factory run_once_report
/// uses internally). For harnesses that need to own the manager across a
/// run — e.g. to read back its stats or drive several masters against it.
std::unique_ptr<TaskManagerModel> make_manager(const ManagerSpec& spec);

RunReport run_once_report(const Trace& trace, const ManagerSpec& spec,
                          std::uint32_t cores, const RuntimeConfig& base = {},
                          bool collect_metrics = true,
                          const telemetry::TimelineConfig* timeline = nullptr,
                          bool collect_trace = false,
                          telemetry::MetricRegistry* registry = nullptr);

/// Run `spec` once with a TraceRecorder attached and write the span graph
/// as a Chrome trace-event JSON to `path` (see telemetry/trace_export.hpp;
/// the critical-path attribution rides along under otherData). Prints a
/// one-line summary on success or an error to stderr on IO failure — the
/// shared implementation of the bench binaries' --trace flag.
bool write_chrome_trace(const Trace& trace, const ManagerSpec& spec,
                        std::uint32_t cores, const RuntimeConfig& base,
                        const std::string& path);

/// Sweep a core-count axis. `base.workers` is overwritten per point; with
/// `collect_metrics` every point carries a telemetry snapshot, and a
/// non-null `timeline` config additionally attaches a per-point timeline.
Series sweep(const Trace& trace, const ManagerSpec& spec,
             const std::vector<std::uint32_t>& cores, Tick baseline,
             const RuntimeConfig& base = {}, bool collect_metrics = false,
             const telemetry::TimelineConfig* timeline = nullptr);

/// The timeline configuration shared by the bench binaries' --timeline
/// mode: the load-bearing queue/conflict/throughput paths at 100 us initial
/// resolution, capped at 192 rows (auto-coarsening keeps long runs covered).
telemetry::TimelineConfig bench_timeline_config();

/// One machine-readable per-run record for the BENCH_*.json trajectory:
/// {"schema": 4, "bench", "workload", "manager", "cores", "makespan",
///  "speedup", "metrics": {...}} — makespan in integer picoseconds, metrics
/// the flat snapshot object ({} when `metrics` is null). A non-null
/// `timeline` appends a "timeline" object (see append_timeline for its
/// schema). A `topology` other than "ideal" appends the optional
/// "topology" field, and a `placement` other than "default" the optional
/// "placement" field (absent means ideal/default, so older records stay
/// joinable). The "schema" field versions the record format for
/// nexus-perfdiff; bump it on breaking changes.
std::string metrics_report_json(std::string_view bench, std::string_view workload,
                                std::string_view manager, std::uint32_t cores,
                                Tick makespan, double speedup,
                                const telemetry::Snapshot* metrics,
                                const telemetry::Timeline* timeline = nullptr,
                                std::string_view topology = "ideal",
                                std::string_view placement = "default");

/// Accumulates metrics_report_json records into one BENCH_*.json array
/// document — the shared bookkeeping of every bench binary's --json mode.
class BenchRecordWriter {
 public:
  /// Append one record (a complete JSON object from metrics_report_json).
  void append(std::string_view record_json);

  [[nodiscard]] std::size_t count() const { return count_; }

  /// Close the array and write it to `path` (truncating); also prints the
  /// standard "wrote N record(s)" line on success or an error to stderr on
  /// IO failure. Call once.
  [[nodiscard]] bool write(const std::string& path) const;

 private:
  std::string doc_ = "[";
  std::size_t count_ = 0;
};

/// Print a figure-style table: one row per core count, one column per
/// series, plus (optionally) CSV to stdout.
void print_series(const std::string& title, const std::vector<std::uint32_t>& cores,
                  const std::vector<Series>& series, bool csv = false);

}  // namespace nexus::harness
