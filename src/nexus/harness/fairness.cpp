#include "nexus/harness/fairness.hpp"

#include <cmath>

#include "nexus/common/assert.hpp"
#include "nexus/telemetry/registry.hpp"

namespace nexus::harness {

double jain_index(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq <= 0.0) return 0.0;
  return (sum * sum) / (static_cast<double>(values.size()) * sum_sq);
}

FairnessReport run_fairness(const std::vector<TenantStream>& streams,
                            const ManagerSpec& spec, std::uint32_t cores,
                            const RuntimeConfig& base) {
  NEXUS_ASSERT_MSG(!streams.empty(), "fairness needs at least one tenant");

  RuntimeConfig rc = base;
  rc.workers = cores;

  // Solo baselines: each tenant alone on a fresh manager, no telemetry (the
  // co-run owns the snapshot).
  RuntimeConfig solo_rc = rc;
  solo_rc.metrics = nullptr;
  solo_rc.timeline = nullptr;
  solo_rc.trace = nullptr;
  FairnessReport rep;
  rep.tenants.resize(streams.size());
  for (std::size_t t = 0; t < streams.size(); ++t) {
    const std::unique_ptr<TaskManagerModel> mgr = make_manager(spec);
    const TenantRunResult solo =
        run_tenants({streams[t]}, *mgr, solo_rc);
    NEXUS_ASSERT(solo.tenants.size() == 1);
    rep.tenants[t].solo_mean_ps = solo.tenants[0].mean_ps;
  }

  // The contended co-run.
  {
    const std::unique_ptr<TaskManagerModel> mgr = make_manager(spec);
    rep.corun = run_tenants(streams, *mgr, rc);
  }

  std::vector<double> slowdowns;
  for (std::size_t t = 0; t < streams.size(); ++t) {
    TenantFairness& f = rep.tenants[t];
    const TenantLatency& co = rep.corun.tenants[t];
    f.corun_mean_ps = co.mean_ps;
    f.corun_p99_ps = co.p99_ps;
    f.nack_holds = co.nack_holds;
    if (f.solo_mean_ps > 0.0) f.slowdown = f.corun_mean_ps / f.solo_mean_ps;
    slowdowns.push_back(f.slowdown);
  }
  rep.jain = jain_index(slowdowns);
  rep.max_slowdown = slowdowns.empty() ? 0.0 : slowdowns[0];
  rep.min_slowdown = rep.max_slowdown;
  for (const double s : slowdowns) {
    rep.max_slowdown = std::max(rep.max_slowdown, s);
    rep.min_slowdown = std::min(rep.min_slowdown, s);
  }
  if (rep.min_slowdown > 0.0)
    rep.slowdown_ratio = rep.max_slowdown / rep.min_slowdown;

  if (rc.metrics != nullptr) {
    // Verdict gauges land in the same snapshot as the co-run's metrics, so
    // one BENCH record carries both the raw telemetry and the headline
    // fairness numbers (fixed-point: the registry stores integers).
    telemetry::MetricRegistry& reg = *rc.metrics;
    reg.gauge("fairness/jain_x1e6").set(std::llround(rep.jain * 1e6));
    reg.gauge("fairness/slowdown_max_x1e3")
        .set(std::llround(rep.max_slowdown * 1e3));
    reg.gauge("fairness/slowdown_min_x1e3")
        .set(std::llround(rep.min_slowdown * 1e3));
    reg.gauge("fairness/slowdown_ratio_x1e3")
        .set(std::llround(rep.slowdown_ratio * 1e3));
    for (std::size_t t = 0; t < rep.tenants.size(); ++t) {
      reg.gauge(telemetry::path_join(
                    telemetry::indexed_path(
                        "fairness/tenant", static_cast<std::uint32_t>(t),
                        static_cast<std::uint32_t>(rep.tenants.size())),
                    "slowdown_x1e3"))
          .set(std::llround(rep.tenants[t].slowdown * 1e3));
    }
  }
  return rep;
}

}  // namespace nexus::harness
