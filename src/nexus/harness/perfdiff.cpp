#include "nexus/harness/perfdiff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "nexus/telemetry/timeline.hpp"

namespace nexus::harness {

namespace {

std::string fmt(const char* format, auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof buf, format, args...);
  return buf;
}

std::string fmt_ms(std::int64_t ps) {
  return fmt("%.3fms", static_cast<double>(ps) * 1e-9);
}

/// Signed relative change in percent; 0 when the baseline is 0.
double pct_change(double base, double cand) {
  return base != 0.0 ? (cand - base) / base * 100.0 : 0.0;
}

/// Rates are per-task ratios; treat differences below this as exact noise
/// (a zero-conflict baseline should not flag on a 1e-12 artifact).
constexpr double kRateEps = 1e-9;

/// Decode a metrics_report_json "timeline" object (see append_timeline for
/// the schema) back into a Timeline, undoing the delta encoding.
bool parse_timeline(const telemetry::JsonValue& v, telemetry::Timeline* out,
                    bool* present, std::string* error) {
  const telemetry::JsonValue* f = v.find("interval_ps");
  out->interval = f != nullptr ? f->int_or(0) : 0;
  const bool delta =
      (f = v.find("encoding")) == nullptr || f->str_or("delta") == "delta";
  f = v.find("t");
  if (f == nullptr || !f->is_array()) {
    if (error != nullptr) *error = "timeline is missing the \"t\" axis";
    return false;
  }
  std::vector<std::int64_t> t;
  t.reserve(f->array.size());
  for (const telemetry::JsonValue& e : f->array) t.push_back(e.int_or(0));
  if (delta) t = telemetry::delta_decode(t);
  out->t.assign(t.begin(), t.end());
  f = v.find("series");
  if (f != nullptr && f->is_object()) {
    for (const auto& [path, sv] : f->object) {
      telemetry::TimelineSeries s;
      s.path = path;
      const telemetry::JsonValue* kind = sv.find("kind");
      s.kind = kind != nullptr && kind->str_or("counter") == "gauge"
                   ? telemetry::MetricKind::kGauge
                   : telemetry::MetricKind::kCounter;
      const telemetry::JsonValue* vals = sv.find("v");
      if (vals == nullptr || !vals->is_array()) {
        if (error != nullptr)
          *error = "timeline series \"" + path + "\" has no value array";
        return false;
      }
      s.v.reserve(vals->array.size());
      for (const telemetry::JsonValue& e : vals->array)
        s.v.push_back(e.int_or(0));
      // Mirrors append_timeline: only counter-kind series are delta-coded.
      if (delta && s.kind == telemetry::MetricKind::kCounter)
        s.v = telemetry::delta_decode(s.v);
      out->series.push_back(std::move(s));
    }
  }
  *present = true;
  return true;
}

bool parse_one_record(const telemetry::JsonValue& v, BenchRecord* out,
                      std::string* error) {
  if (!v.is_object()) {
    if (error != nullptr) *error = "record is not a JSON object";
    return false;
  }
  const telemetry::JsonValue* schema = v.find("schema");
  out->schema = schema != nullptr ? static_cast<int>(schema->int_or(1)) : 1;
  if (out->schema < 1 || out->schema > kBenchRecordSchema) {
    if (error != nullptr)
      *error = "unknown record schema version " + std::to_string(out->schema) +
               " (this tool understands <= " +
               std::to_string(kBenchRecordSchema) + ")";
    return false;
  }
  const telemetry::JsonValue* field = v.find("bench");
  if (field == nullptr || !field->is_string()) {
    if (error != nullptr) *error = "record is missing the \"bench\" field";
    return false;
  }
  out->bench = field->str;
  out->workload = (field = v.find("workload")) != nullptr ? field->str_or("") : "";
  out->manager = (field = v.find("manager")) != nullptr ? field->str_or("") : "";
  // Optional since the NoC layer; records without it are ideal-topology.
  out->topology =
      (field = v.find("topology")) != nullptr ? field->str_or("ideal") : "ideal";
  // Optional since the placement layer; absent means the identity layout.
  out->placement = (field = v.find("placement")) != nullptr
                       ? field->str_or("default")
                       : "default";
  out->cores = (field = v.find("cores")) != nullptr ? field->int_or(0) : 0;
  field = v.find("makespan");
  if (field == nullptr || !field->is_number()) {
    if (error != nullptr) *error = "record is missing the \"makespan\" field";
    return false;
  }
  out->makespan = field->int_or(0);
  out->speedup = (field = v.find("speedup")) != nullptr ? field->num_or(0.0) : 0.0;

  const telemetry::JsonValue* metrics = v.find("metrics");
  if (metrics != nullptr && metrics->is_object()) {
    for (const auto& [path, mv] : metrics->object) {
      if (mv.is_number()) {
        out->metrics.emplace_back(path, mv.number);
      } else if (mv.is_object()) {
        // Histogram: flatten the scalar summary fields (the quantiles are
        // absent from schema <= 2 records and simply contribute nothing).
        for (const char* f : {"count", "sum", "min", "max", "mean", "p50",
                              "p95", "p99", "p999"}) {
          const telemetry::JsonValue* hv = mv.find(f);
          if (hv != nullptr && hv->is_number())
            out->metrics.emplace_back(path + std::string(":") + f, hv->number);
        }
      }
    }
  }

  const telemetry::JsonValue* tl = v.find("timeline");
  if (tl != nullptr && tl->is_object() &&
      !parse_timeline(*tl, &out->timeline, &out->has_timeline, error))
    return false;
  return true;
}

}  // namespace

std::string BenchRecord::key() const {
  // "default" placements are omitted so keys (and report lines) match the
  // pre-placement format for every pre-existing record.
  return bench + "|" + workload + "|" + manager + "|" + topology +
         (placement == "default" ? "" : "|" + placement) + "|" +
         std::to_string(cores);
}

double BenchRecord::metric_sum(std::string_view glob) const {
  double sum = 0.0;
  for (const auto& [path, value] : metrics)
    if (telemetry::path_glob_match(glob, path)) sum += value;
  return sum;
}

bool BenchRecord::has_metric(std::string_view glob) const {
  for (const auto& [path, value] : metrics)
    if (telemetry::path_glob_match(glob, path)) return true;
  return false;
}

double BenchRecord::tasks() const {
  for (const auto& [path, value] : metrics)
    if (path == "runtime/tasks" && value > 0.0) return value;
  return 1.0;
}

bool parse_bench_records(std::string_view json_text,
                         std::vector<BenchRecord>* out, std::string* error) {
  out->clear();
  telemetry::JsonValue doc;
  if (!telemetry::json_parse(json_text, &doc, error)) return false;
  const auto* records = &doc.array;
  std::vector<telemetry::JsonValue> single;
  if (doc.is_object()) {
    single.push_back(std::move(doc));
    records = &single;
  } else if (!doc.is_array()) {
    if (error != nullptr) *error = "document is neither an array nor a record";
    return false;
  }
  for (std::size_t i = 0; i < records->size(); ++i) {
    BenchRecord rec;
    std::string why;
    if (!parse_one_record((*records)[i], &rec, &why)) {
      if (error != nullptr)
        *error = "record " + std::to_string(i) + ": " + why;
      return false;
    }
    out->push_back(std::move(rec));
  }
  return true;
}

std::vector<WatchedRate> default_watched_rates() {
  // '**' so the globs reach both managers' layouts: Nexus++ nests these
  // one level deep (nexus++/dep_counts/parked) but Nexus# two or three
  // (nexus#/arbiter/dep_counts/parked, nexus#/tg<i>/table/stalls), and a
  // single-segment '*' cannot cross the extra '/'.
  return {
      {"conflict_rate", "**/arbiter/conflicts", false, 0.0},
      {"retry_rate", "**/arbiter/retries", false, 0.0},
      {"park_rate", "**/dep_counts/parked", false, 0.0},
      {"table_stall_rate", "**/table/stalls", false, 0.0},
      // Kernel throughput is wall-clock-derived: deterministic in *what* it
      // simulates (the makespan field gates that tightly) but not in how
      // fast the host ran it, so only a collapse — losing three quarters of
      // the baseline's events/sec — counts as a regression.
      {"sim_events_per_sec", "simspeed/events_per_sec", true, 75.0},
      // Tail-latency gates over the schema-3 histogram quantile fields.
      // Raw picosecond values (per_task=false: a quantile is not an
      // accumulating counter) and require_both (pre-quantile baselines are
      // skipped, not failed as was-zero regressions). The sim is
      // deterministic, so the band only has to absorb histogram-bucket
      // interpolation shifts; the extreme tail gets a wider one.
      {"sojourn_p50", "runtime/sojourn_ps:p50", false, 0.0, false, true},
      {"sojourn_p99", "runtime/sojourn_ps:p99", false, 0.0, false, true},
      {"sojourn_p999", "runtime/sojourn_ps:p999", false, 15.0, false, true},
      {"serving_p50", "runtime/serving_latency_ps:p50", false, 0.0, false,
       true},
      {"serving_p99", "runtime/serving_latency_ps:p99", false, 0.0, false,
       true},
      {"serving_p999", "runtime/serving_latency_ps:p999", false, 15.0, false,
       true},
      // Saturation-knee throughput (serving rows only): shrinking the
      // sustainable rate is the regression.
      {"knee_throughput", "serving/knee_hz", true, 10.0, false, true},
      // Multi-tenant fairness verdicts (tenancy rows only). The Jain index
      // shrinking or the max/min slowdown ratio growing is an isolation
      // regression even when no makespan moved. Absolute fixed-point
      // gauges, so per_task=false; require_both so non-tenancy rows skip.
      {"fairness_jain", "fairness/jain_x1e6", true, 5.0, false, true},
      {"fairness_slowdown_ratio", "fairness/slowdown_ratio_x1e3", false, 10.0,
       false, true},
      // Schema-4 host-time attribution (simspeed --prof rows): where the
      // simulator's own wall clock went. Report-only — host time moves with
      // the machine, the load, and the thermal du jour, so no tolerance is
      // tight enough to gate on and wide enough to stay quiet — and
      // require_both so schema-3 baselines skip rather than fail.
      {"host_pop_ns", "prof/pop_ns", false, 0.0, false, true, true},
      {"host_push_ns", "prof/push_ns", false, 0.0, false, true, true},
      {"host_handle_ns", "prof/handle_ns", false, 0.0, false, true, true},
      {"host_profiled_ns", "prof/total_ns", false, 0.0, false, true, true},
  };
}

namespace {

double timeline_tol_for(const PerfdiffOptions& opts, std::string_view path) {
  for (const auto& [glob, pct] : opts.timeline_tolerances)
    if (telemetry::path_glob_match(glob, path)) return pct;
  return opts.timeline_tolerance_pct;
}

/// Point-by-point timeline diff: one detail line per diverging series,
/// carrying the sim-time of its *first* divergence. Returns true if
/// anything diverged.
bool diff_timelines(const PerfdiffOptions& opts, const telemetry::Timeline& b,
                    const telemetry::Timeline& c,
                    std::vector<std::string>* details) {
  bool bad = false;
  if (b.interval != c.interval) {
    bad = true;
    details->push_back(
        fmt("timeline interval %lld -> %lld ps (coarsening diverged)",
            static_cast<long long>(b.interval),
            static_cast<long long>(c.interval)));
  }
  const std::size_t rows = std::min(b.t.size(), c.t.size());
  for (std::size_t i = 0; i < rows; ++i) {
    if (b.t[i] != c.t[i]) {
      bad = true;
      details->push_back(fmt("timeline t-axis diverges at row %zu: %s -> %s",
                             i, fmt_ms(b.t[i]).c_str(),
                             fmt_ms(c.t[i]).c_str()));
      break;
    }
  }
  if (b.t.size() != c.t.size()) {
    bad = true;
    details->push_back(fmt("timeline rows %zu -> %zu", b.t.size(),
                           c.t.size()));
  }
  for (const auto& cs : c.series) {
    const telemetry::TimelineSeries* bs = b.find(cs.path);
    if (bs == nullptr) continue;  // fresh series (new metric): never a failure
    const double tol = timeline_tol_for(opts, cs.path);
    const std::size_t n = std::min({bs->v.size(), cs.v.size(), rows});
    for (std::size_t i = 0; i < n; ++i) {
      const auto bv = static_cast<double>(bs->v[i]);
      const auto cv = static_cast<double>(cs.v[i]);
      if (std::fabs(cv - bv) > std::fabs(bv) * tol / 100.0 + kRateEps) {
        bad = true;
        details->push_back(
            fmt("timeline %s first diverges at t=%s: %lld -> %lld "
                "(tolerance %.1f%%)",
                cs.path.c_str(), fmt_ms(b.t[i]).c_str(),
                static_cast<long long>(bs->v[i]),
                static_cast<long long>(cs.v[i]), tol));
        break;
      }
    }
  }
  for (const auto& bs : b.series) {
    if (c.find(bs.path) == nullptr) {
      bad = true;
      details->push_back(
          fmt("timeline series %s missing from candidate", bs.path.c_str()));
    }
  }
  return bad;
}

}  // namespace

PerfdiffResult perfdiff_compare(const std::vector<BenchRecord>& baseline,
                                const std::vector<BenchRecord>& candidate,
                                const PerfdiffOptions& opts) {
  PerfdiffResult res;
  std::map<std::string, const BenchRecord*> base_by_key;
  for (const auto& r : baseline) base_by_key[r.key()] = &r;

  auto line = [&res](const std::string& s) {
    res.report += s;
    res.report.push_back('\n');
  };

  std::map<std::string, bool> seen;  // baseline keys matched by a candidate
  for (const auto& cand : candidate) {
    const auto it = base_by_key.find(cand.key());
    if (it == base_by_key.end()) {
      // First run of this configuration (a fresh topology/placement row,
      // say): recorded as a new baseline, never as a failure.
      ++res.added;
      line(fmt("  [new]     %s: first record for this configuration "
               "(no baseline yet — not a regression)",
               cand.key().c_str()));
      continue;
    }
    const BenchRecord& base = *it->second;
    seen[cand.key()] = true;
    ++res.compared;

    bool regressed = false;
    bool improved = false;
    std::vector<std::string> details;

    const double mk_pct = pct_change(static_cast<double>(base.makespan),
                                     static_cast<double>(cand.makespan));
    if (mk_pct > opts.makespan_tolerance_pct) {
      regressed = true;
      details.push_back(fmt("makespan %s -> %s (%+.2f%%, limit %.2f%%)",
                            fmt_ms(base.makespan).c_str(),
                            fmt_ms(cand.makespan).c_str(), mk_pct,
                            opts.makespan_tolerance_pct));
    } else if (mk_pct < -opts.makespan_tolerance_pct) {
      improved = true;
      ++res.improvements;
      line(fmt("  [faster]  %s: makespan %s -> %s (%+.2f%%)",
               cand.key().c_str(), fmt_ms(base.makespan).c_str(),
               fmt_ms(cand.makespan).c_str(), mk_pct));
    }

    for (const auto& rate : opts.watched) {
      if (rate.require_both && (!base.has_metric(rate.numerator) ||
                                !cand.has_metric(rate.numerator)))
        continue;
      const double b =
          base.metric_sum(rate.numerator) / (rate.per_task ? base.tasks() : 1.0);
      const double c = cand.metric_sum(rate.numerator) /
                       (rate.per_task ? cand.tasks() : 1.0);
      if (rate.report_only) {
        // Echoed, never gated: the field exists so a human scanning the
        // report sees where host time moved, not so CI fails on it.
        if (!opts.quiet)
          line(fmt("  [info]    %s: %s %.6g -> %.6g (%+.1f%%; report-only)",
                   cand.key().c_str(), rate.name.c_str(), b, c,
                   pct_change(b, c)));
        continue;
      }
      const double tol = rate.tolerance_pct > 0.0 ? rate.tolerance_pct
                                                  : opts.metric_tolerance_pct;
      // Overhead rates regress by growing; throughput rates by shrinking.
      const bool bad = rate.higher_is_better
                           ? c < b * (1.0 - tol / 100.0) - kRateEps
                           : c > b * (1.0 + tol / 100.0) + kRateEps;
      if (bad) {
        regressed = true;
        details.push_back(
            b != 0.0 ? fmt("%s %.6g -> %.6g (%+.1f%%, limit %s%.1f%%)",
                           rate.name.c_str(), b, c, pct_change(b, c),
                           rate.higher_is_better ? "-" : "+", tol)
                     : fmt("%s 0 -> %.6g (was zero)", rate.name.c_str(), c));
      }
    }

    if (opts.compare_timelines) {
      if (base.has_timeline && cand.has_timeline) {
        if (diff_timelines(opts, base.timeline, cand.timeline, &details))
          regressed = true;
      } else if (base.has_timeline && !cand.has_timeline) {
        regressed = true;
        details.emplace_back(
            "timeline present in baseline but missing from candidate");
      }
    }

    if (regressed) {
      ++res.regressions;
      for (const auto& d : details)
        line(fmt("  [REGRESS] %s: %s", cand.key().c_str(), d.c_str()));
    } else if (!improved && !opts.quiet) {
      line(fmt("  [ok]      %s: makespan %s (%+.2f%%)", cand.key().c_str(),
               fmt_ms(cand.makespan).c_str(), mk_pct));
    }
  }

  for (const auto& r : baseline) {
    if (seen.find(r.key()) == seen.end()) {
      ++res.removed;
      line(fmt("  [removed] %s: record only in baseline", r.key().c_str()));
    }
  }

  line(fmt("perfdiff: %d compared, %d added, %d removed — %d regression(s), "
           "%d improvement(s)",
           res.compared, res.added, res.removed, res.regressions,
           res.improvements));
  return res;
}

}  // namespace nexus::harness
