#include "nexus/harness/experiment.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "nexus/common/table.hpp"
#include "nexus/cost/fpga_model.hpp"
#include "nexus/runtime/ideal_manager.hpp"
#include "nexus/runtime/list_scheduler.hpp"
#include "nexus/telemetry/profiler.hpp"
#include "nexus/telemetry/registry.hpp"
#include "nexus/telemetry/trace_export.hpp"
#include "nexus/telemetry/writers.hpp"

namespace nexus::harness {

std::vector<std::uint32_t> paper_cores_256() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256};
}

std::vector<std::uint32_t> paper_cores_64() { return {1, 2, 4, 8, 16, 32, 64}; }

std::vector<std::uint32_t> nanos_cores_32() { return {1, 2, 4, 8, 16, 32}; }

ManagerSpec ManagerSpec::ideal() {
  ManagerSpec s;
  s.kind = Kind::kIdeal;
  s.label = "ideal";
  return s;
}

ManagerSpec ManagerSpec::nanos_default() {
  ManagerSpec s;
  s.kind = Kind::kNanos;
  s.label = "nanos";
  return s;
}

ManagerSpec ManagerSpec::nexuspp_default() {
  ManagerSpec s;
  s.kind = Kind::kNexusPP;
  s.label = "nexus++";
  return s;
}

ManagerSpec ManagerSpec::nexussharp(std::uint32_t tgs, double mhz_override) {
  ManagerSpec s;
  s.kind = Kind::kNexusSharp;
  s.sharp.num_task_graphs = tgs;
  s.sharp.freq_mhz =
      mhz_override > 0.0 ? mhz_override : cost::nexussharp_row(tgs).test_mhz;
  char label[64];
  std::snprintf(label, sizeof label, "nexus#-%uTG@%.2fMHz", tgs, s.sharp.freq_mhz);
  s.label = label;
  return s;
}

double Series::max_speedup() const {
  double best = 0.0;
  for (const auto& p : points) best = std::max(best, p.speedup);
  return best;
}

double Series::speedup_at(std::uint32_t n) const {
  double v = 0.0;
  for (const auto& p : points)
    if (p.cores <= n) v = p.speedup;
  return v;
}

Tick ideal_baseline(const Trace& trace) { return list_schedule_makespan(trace, 1); }

std::string topology_label(const ManagerSpec& spec, const RuntimeConfig& base) {
  noc::TopologyKind mgr = noc::TopologyKind::kIdeal;
  if (spec.kind == ManagerSpec::Kind::kNexusSharp) mgr = spec.sharp.noc.kind;
  if (spec.kind == ManagerSpec::Kind::kNexusPP) mgr = spec.npp.noc.kind;
  const noc::TopologyKind host = base.noc.kind;
  // Both axes are part of the join key: a mesh-manager/ring-host run must
  // not collide with a mesh-manager/ideal-host run in perfdiff. The common
  // cases (matching kinds, or only one axis configured) keep plain labels.
  if (mgr == host) return noc::to_string(mgr);
  if (mgr == noc::TopologyKind::kIdeal)
    return std::string("host-") + noc::to_string(host);
  if (host == noc::TopologyKind::kIdeal) return noc::to_string(mgr);
  return std::string(noc::to_string(mgr)) + "+host-" + noc::to_string(host);
}

std::string placement_label(const ManagerSpec& spec, const RuntimeConfig& base) {
  std::string mgr = "default";
  if (spec.kind == ManagerSpec::Kind::kNexusSharp)
    mgr = spec.sharp.noc.placement_name;
  if (spec.kind == ManagerSpec::Kind::kNexusPP) mgr = spec.npp.noc.placement_name;
  const std::string& host = base.noc.placement_name;
  if (mgr == host) return mgr;
  if (mgr == "default") return "host-" + host;
  if (host == "default") return mgr;
  return mgr + "+host-" + host;
}

std::unique_ptr<TaskManagerModel> make_manager(const ManagerSpec& spec) {
  switch (spec.kind) {
    case ManagerSpec::Kind::kIdeal:
      return std::make_unique<IdealManager>();
    case ManagerSpec::Kind::kNanos:
      return std::make_unique<NanosModel>(spec.nanos);
    case ManagerSpec::Kind::kNexusPP:
      return std::make_unique<NexusPP>(spec.npp);
    case ManagerSpec::Kind::kNexusSharp:
      return std::make_unique<NexusSharp>(spec.sharp, spec.arbiter_policy);
  }
  NEXUS_ASSERT_MSG(false, "unknown manager kind");
  return nullptr;
}

Tick run_once(const Trace& trace, const ManagerSpec& spec, std::uint32_t cores,
              const RuntimeConfig& base) {
  // The fast list scheduler computes the identical makespan (tested against
  // the DES + IdealManager pair) without event overhead — unless host costs
  // or a host NoC are configured, which need the DES.
  if (spec.kind == ManagerSpec::Kind::kIdeal && base.host_message_cost == 0 &&
      base.master_event_cost == 0 && base.noc.ideal() &&
      base.open_loop == nullptr)
    return list_schedule_makespan(trace, cores);
  return run_once_report(trace, spec, cores, base, /*collect_metrics=*/false)
      .result.makespan;
}

RunReport run_once_report(const Trace& trace, const ManagerSpec& spec,
                          std::uint32_t cores, const RuntimeConfig& base,
                          bool collect_metrics,
                          const telemetry::TimelineConfig* timeline,
                          bool collect_trace,
                          telemetry::MetricRegistry* registry) {
  RuntimeConfig rc = base;
  rc.workers = cores;
  telemetry::MetricRegistry local_reg;
  telemetry::MetricRegistry& reg = registry != nullptr ? *registry : local_reg;
  if (collect_metrics || timeline != nullptr) rc.metrics = &reg;
  std::unique_ptr<telemetry::TimelineRecorder> rec;
  if (timeline != nullptr) {
    rec = std::make_unique<telemetry::TimelineRecorder>(reg, *timeline);
    rc.timeline = rec.get();
  }
  std::unique_ptr<telemetry::TraceRecorder> spans;
  if (collect_trace) {
    spans = std::make_unique<telemetry::TraceRecorder>();
    rc.trace = spans.get();
  }
  // Per-run profile node: everything the driver attributes nests under it,
  // so a multi-run binary (a sweep, a grid) keeps each run's time separate.
  std::uint32_t run_node = 0;
  if (rc.profiler != nullptr) {
    run_node = rc.profiler->node(rc.profile_parent, "run");
    rc.profile_parent = run_node;
  }
  RunReport rep;
  rep.topology = topology_label(spec, base);
  rep.placement = placement_label(spec, base);
  telemetry::ProfScope prof_scope(rc.profiler, run_node);
  const std::unique_ptr<TaskManagerModel> mgr = make_manager(spec);
  rep.result = run_trace(trace, *mgr, rc);
  if (rc.metrics != nullptr)
    rep.metrics = std::make_shared<telemetry::Snapshot>(reg.snapshot());
  if (rec != nullptr)
    rep.timeline = std::make_shared<telemetry::Timeline>(rec->freeze());
  if (spans != nullptr)
    rep.trace = std::make_shared<telemetry::TraceData>(spans->freeze());
  return rep;
}

bool write_chrome_trace(const Trace& trace, const ManagerSpec& spec,
                        std::uint32_t cores, const RuntimeConfig& base,
                        const std::string& path) {
  const RunReport rep = run_once_report(trace, spec, cores, base,
                                        /*collect_metrics=*/false,
                                        /*timeline=*/nullptr,
                                        /*collect_trace=*/true);
  if (!telemetry::write_text_file(path,
                                  telemetry::chrome_trace_json(*rep.trace))) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::printf("wrote Chrome trace (%zu task spans, %zu NoC messages, "
              "%.3f ms makespan) to %s\n",
              rep.trace->tasks.size(), rep.trace->messages.size(),
              to_ms(rep.result.makespan), path.c_str());
  return true;
}

Series sweep(const Trace& trace, const ManagerSpec& spec,
             const std::vector<std::uint32_t>& cores, Tick baseline,
             const RuntimeConfig& base, bool collect_metrics,
             const telemetry::TimelineConfig* timeline) {
  Series s;
  s.label = spec.label;
  // Per-sweep-point profile nodes: "sweep:<label>" / "c<cores>", so a
  // profiled sweep separates its points (and the harness glue around each
  // run lands in the point's self time).
  std::uint32_t sweep_node = 0;
  if (base.profiler != nullptr)
    sweep_node = base.profiler->node(base.profile_parent, "sweep:" + s.label);
  for (const std::uint32_t c : cores) {
    RuntimeConfig pt = base;
    std::uint32_t point_node = 0;
    if (base.profiler != nullptr) {
      point_node = base.profiler->node(sweep_node, "c" + std::to_string(c));
      pt.profile_parent = point_node;
    }
    telemetry::ProfScope prof_scope(base.profiler, point_node);
    SweepPoint p;
    p.cores = c;
    p.topology = topology_label(spec, base);
    p.placement = placement_label(spec, base);
    if (collect_metrics || timeline != nullptr) {
      RunReport rep = run_once_report(trace, spec, c, pt, true, timeline);
      p.makespan = rep.result.makespan;
      p.metrics = std::move(rep.metrics);
      p.timeline = std::move(rep.timeline);
    } else {
      p.makespan = run_once(trace, spec, c, pt);
    }
    p.speedup = p.makespan > 0 ? static_cast<double>(baseline) /
                                     static_cast<double>(p.makespan)
                               : 0.0;
    s.points.push_back(p);
  }
  return s;
}

telemetry::TimelineConfig bench_timeline_config() {
  telemetry::TimelineConfig cfg;
  cfg.interval_ps = us(100.0);
  cfg.max_points = 192;
  cfg.select = {
      // Throughput: task in/finish flows through each manager front-end.
      "nexus#/tasks_in", "nexus#/finishes", "nexus++/tasks_in",
      "nexus++/ready_out",
      // Contention: arbiter conflict bursts, dep-count parks, table stalls
      // ('**' so the per-TGU nexus#/tg<i>/table/stalls paths match too).
      "nexus#/arbiter/conflicts", "nexus#/arbiter/retries",
      "nexus#/arbiter/dep_counts/parked", "**/table/stalls",
      // Occupancy transients: queue depths and pool fill.
      "nexus#/arbiter/ready_q_depth", "nexus#/pool/occupancy",
      "runtime/ready_q_depth",
      // Interconnect pressure: message/flit flow, in-flight depth and
      // stalls on every NoC (nexus#/noc, nexus++/noc and runtime/noc).
      "**/noc/messages", "**/noc/flits", "**/noc/in_flight",
      "**/noc/stall_ps", "**/noc/blocked_flits",
      // Routing balance over time and host dispatch activity.
      "nexus#/tg*/routed", "runtime/dispatches", "sim/events",
      // Open-loop serving flow (zero-rate no-ops on closed-loop runs).
      "runtime/offered", "runtime/accepted",
  };
  return cfg;
}

std::string metrics_report_json(std::string_view bench, std::string_view workload,
                                std::string_view manager, std::uint32_t cores,
                                Tick makespan, double speedup,
                                const telemetry::Snapshot* metrics,
                                const telemetry::Timeline* timeline,
                                std::string_view topology,
                                std::string_view placement) {
  telemetry::JsonWriter w;
  w.begin_object();
  w.kv("schema", 4);
  w.kv("bench", bench);
  w.kv("workload", workload);
  w.kv("manager", manager);
  // Optional: absent means "ideal"/"default", so older records stay
  // joinable.
  if (!topology.empty() && topology != "ideal") w.kv("topology", topology);
  if (!placement.empty() && placement != "default")
    w.kv("placement", placement);
  w.kv("cores", cores);
  w.kv("makespan", makespan);
  w.kv("speedup", speedup);
  w.key("metrics");
  if (metrics != nullptr) {
    telemetry::append_snapshot(w, *metrics);
  } else {
    w.begin_object().end_object();
  }
  if (timeline != nullptr) {
    w.key("timeline");
    telemetry::append_timeline(w, *timeline);
  }
  w.end_object();
  return w.str();
}

void BenchRecordWriter::append(std::string_view record_json) {
  doc_ += count_ == 0 ? "\n" : ",\n";
  doc_ += record_json;
  ++count_;
}

bool BenchRecordWriter::write(const std::string& path) const {
  const std::string doc = doc_ + "\n]\n";
  if (!telemetry::write_text_file(path, doc)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::printf("wrote %zu record(s) to %s\n", count_, path.c_str());
  return true;
}

void print_series(const std::string& title, const std::vector<std::uint32_t>& cores,
                  const std::vector<Series>& series, bool csv) {
  std::printf("\n== %s ==\n", title.c_str());
  std::vector<std::string> header{"cores"};
  for (const auto& s : series) header.push_back(s.label);
  TextTable t(header);
  for (std::size_t i = 0; i < cores.size(); ++i) {
    std::vector<std::string> row{std::to_string(cores[i])};
    for (const auto& s : series) {
      // Series may cover a prefix of the core axis (Nanos stops at 32).
      std::string cell = "-";
      for (const auto& p : s.points)
        if (p.cores == cores[i]) cell = TextTable::num(p.speedup, 2);
      row.push_back(cell);
    }
    t.add_row(row);
  }
  t.print();
  if (csv) std::fputs(t.csv().c_str(), stdout);
}

}  // namespace nexus::harness
