#include "nexus/harness/serving.hpp"

#include <cmath>
#include <limits>

#include "nexus/common/assert.hpp"
#include "nexus/telemetry/registry.hpp"

namespace nexus::harness {
namespace {

void fill_quantiles(ServingPoint* p) {
  if (p->report.metrics == nullptr) return;
  const telemetry::MetricValue* v =
      p->report.metrics->find("runtime/serving_latency_ps");
  if (v == nullptr || v->kind != telemetry::MetricKind::kHistogram) return;
  p->p50_ps = v->hist.quantile(0.50);
  p->p95_ps = v->hist.quantile(0.95);
  p->p99_ps = v->hist.quantile(0.99);
  p->p999_ps = v->hist.quantile(0.999);
}

}  // namespace

ServingPoint run_serving(const workloads::ArrivalConfig& cfg, double rate_hz,
                         const ManagerSpec& spec, std::uint32_t cores,
                         const RuntimeConfig& base,
                         const telemetry::TimelineConfig* timeline,
                         const std::vector<ServingGauge>& gauges) {
  workloads::ArrivalConfig c = cfg;
  c.rate_hz = rate_hz;
  const workloads::ArrivalSchedule sched = workloads::generate_arrivals(c);
  const Trace trace = workloads::make_serving_trace(sched);

  RuntimeConfig rc = base;
  rc.open_loop = &sched.submission;

  // Context gauges go through the run's registry so the snapshot a BENCH
  // record serializes carries the offered rate alongside the measurements.
  telemetry::MetricRegistry reg;
  reg.gauge("serving/rate_hz").set(std::llround(rate_hz));
  reg.gauge("serving/clients").set(c.clients);
  for (const ServingGauge& g : gauges) reg.gauge(g.path).set(g.value);

  ServingPoint p;
  p.rate_hz = rate_hz;
  p.tasks = sched.tasks();
  p.horizon = sched.horizon();
  p.report = run_once_report(trace, spec, cores, rc, /*collect_metrics=*/true,
                             timeline, /*collect_trace=*/false, &reg);
  p.makespan = p.report.result.makespan;
  if (p.horizon > 0)
    p.offered_hz = static_cast<double>(p.tasks) / to_seconds(p.horizon);
  if (p.makespan > 0)
    p.accepted_hz = static_cast<double>(p.tasks) / to_seconds(p.makespan);
  fill_quantiles(&p);
  return p;
}

const char* to_string(KneeOutcome o) {
  switch (o) {
    case KneeOutcome::kUnattainable: return "unattainable";
    case KneeOutcome::kLowerBound: return "lower-bound";
    case KneeOutcome::kBracketed: return "bracketed";
  }
  return "?";
}

KneeResult find_knee(const workloads::ArrivalConfig& cfg,
                     const KneeSearch& search, const ManagerSpec& spec,
                     std::uint32_t cores, const RuntimeConfig& base) {
  NEXUS_ASSERT_MSG(search.p99_budget_ps > 0, "knee search needs a p99 budget");
  NEXUS_ASSERT_MSG(search.lo_hz > 0.0, "knee search needs a positive lo_hz");
  const double budget = static_cast<double>(search.p99_budget_ps);

  KneeResult r;
  auto probe = [&](double rate) {
    ServingPoint p = run_serving(cfg, rate, spec, cores, base);
    ++r.probes;
    const bool pass = p.p99_ps <= budget;
    if (pass && rate > r.knee_hz) {
      r.knee_hz = rate;
      r.knee = std::move(p);
    }
    return pass;
  };

  double lo = search.lo_hz;
  {
    // lo_hz must pass before any of knee_hz means anything: an unloaded
    // system already violating the budget is an unattainable-budget
    // misconfiguration, not a zero-rate knee. Keep the violating point so
    // callers can report how far off the budget was.
    ServingPoint first = run_serving(cfg, lo, spec, cores, base);
    ++r.probes;
    if (first.p99_ps > budget) {
      r.outcome = KneeOutcome::kUnattainable;
      r.knee = std::move(first);
      return r;
    }
    r.knee_hz = lo;
    r.knee = std::move(first);
  }

  double hi = search.hi_hz;
  if (hi <= lo) {
    // Exponential bracket expansion: double until the budget breaks. Stop
    // honestly (lower bound, not a bracket) if doubling would overflow.
    hi = lo;
    bool found_fail = false;
    for (std::uint32_t i = 0; i < search.max_doublings; ++i) {
      const double next = hi * 2.0;
      if (!std::isfinite(next)) break;
      hi = next;
      if (!probe(hi)) {
        found_fail = true;
        break;
      }
      lo = hi;
    }
    if (!found_fail) {
      r.outcome = KneeOutcome::kLowerBound;
      return r;  // knee_hz is a lower bound only
    }
  } else if (probe(hi)) {
    // Caller's bracket top still passes: same lower-bound case.
    r.outcome = KneeOutcome::kLowerBound;
    return r;
  }

  // Geometric bisection: rates span decades, so split in log space.
  r.outcome = KneeOutcome::kBracketed;
  r.bracketed = true;
  for (std::uint32_t i = 0; i < search.bisect_iters; ++i) {
    const double mid = std::sqrt(lo * hi);
    if (probe(mid))
      lo = mid;
    else
      hi = mid;
  }
  return r;
}

}  // namespace nexus::harness
