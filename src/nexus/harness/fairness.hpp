// Fairness harness: multi-tenant QoS experiments over the tenant driver.
//
// The question a serving knee cannot answer: when N tenants share one
// manager, who pays for contention? Each tenant first runs *solo* on a
// fresh manager instance (its un-contended baseline), then all tenants
// co-run on another fresh instance. A tenant's slowdown is its co-run mean
// serving latency over its solo mean; the report condenses the slowdown
// vector into the max/min slowdown ratio (the isolation headline) and the
// Jain fairness index J = (sum s)^2 / (n * sum s^2), which is 1.0 for
// perfect fairness and 1/n for a single starved victim.
#pragma once

#include <cstdint>
#include <vector>

#include "nexus/harness/experiment.hpp"
#include "nexus/runtime/tenancy.hpp"

namespace nexus::harness {

/// Per-tenant fairness outcome.
struct TenantFairness {
  double solo_mean_ps = 0.0;   ///< un-contended baseline mean latency
  double corun_mean_ps = 0.0;  ///< mean latency in the co-run
  double corun_p99_ps = 0.0;
  double slowdown = 0.0;       ///< corun_mean / solo_mean
  std::uint64_t nack_holds = 0;
};

struct FairnessReport {
  std::vector<TenantFairness> tenants;
  double jain = 0.0;           ///< Jain index over the slowdown vector
  double max_slowdown = 0.0;
  double min_slowdown = 0.0;
  double slowdown_ratio = 0.0; ///< max / min (1.0 = perfectly even)
  TenantRunResult corun;       ///< the full co-run result (raw latencies)
};

/// Jain fairness index over a value vector (0 if empty or all-zero).
double jain_index(const std::vector<double>& values);

/// Run the solo baselines then the co-run and compute the report. A fresh
/// manager is built from `spec` for every run (solo runs never see the
/// co-run's structure state). The co-run uses `base` verbatim — bind
/// base.metrics to collect the co-run's telemetry; the fairness verdict
/// gauges (fairness/jain_x1e6, fairness/slowdown_ratio_x1e3, per-tenant
/// slowdowns) are set into that registry before the caller snapshots it.
/// Solo runs use a metrics-free copy of `base` so baseline runs cannot
/// pollute the co-run's snapshot.
FairnessReport run_fairness(const std::vector<TenantStream>& streams,
                            const ManagerSpec& spec, std::uint32_t cores,
                            const RuntimeConfig& base = {});

}  // namespace nexus::harness
