// Perf-diff over BENCH_*.json trajectory records: the library behind the
// nexus-perfdiff tool and its tests.
//
// Two record sets are joined on (bench, workload, manager, topology,
// placement, cores) — topology and placement are optional in the record,
// absent means ideal/default. For each pair the comparator checks the
// makespan against a relative tolerance and a
// set of watched per-task rates (conflicts, retries, parks, table stalls by
// default) against their own tolerance, producing a human-readable report
// and a regression verdict — so CI can gate on the bench trajectory instead
// of eyeballing numbers. The simulator is deterministic, which makes tight
// default tolerances practical: identical code must reproduce identical
// records.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "nexus/telemetry/json.hpp"
#include "nexus/telemetry/timeline.hpp"

namespace nexus::harness {

/// The newest record schema this comparator understands (the "schema" field
/// written by metrics_report_json). Records without the field are treated as
/// schema 1 (the PR-2 format); anything newer is a hard parse error so
/// future format changes are detected instead of mis-read.
inline constexpr int kBenchRecordSchema = 4;

/// One flattened BENCH_*.json record. Histogram metrics contribute
/// "<path>:count/:sum/:min/:max/:mean" scalar entries (schema 3 adds
/// ":p50/:p95/:p99/:p999"); timeline objects are decoded into `timeline`
/// but only compared when PerfdiffOptions::compare_timelines is set (they
/// describe *when*, not *how much*, so the default diff skips them).
struct BenchRecord {
  int schema = 1;
  std::string bench;
  std::string workload;
  std::string manager;
  /// Interconnect topology; the record field is optional and absent means
  /// "ideal", so pre-NoC baselines still join against ideal candidates.
  std::string topology = "ideal";
  /// Tile placement; optional, absent means the "default" identity layout.
  std::string placement = "default";
  std::int64_t cores = 0;
  std::int64_t makespan = 0;  ///< picoseconds
  double speedup = 0.0;
  /// Flattened scalar metrics, in record order.
  std::vector<std::pair<std::string, double>> metrics;
  /// Decoded sim-time timeline (delta-encoding undone); empty axes when the
  /// record carried none.
  bool has_timeline = false;
  telemetry::Timeline timeline;

  /// Join key for matching baseline and candidate records.
  [[nodiscard]] std::string key() const;

  /// Sum of every metric whose path matches the glob (0 when none match).
  [[nodiscard]] double metric_sum(std::string_view glob) const;

  /// Whether any metric path matches the glob (distinguishes an absent
  /// metric from a present-but-zero one; see WatchedRate::require_both).
  [[nodiscard]] bool has_metric(std::string_view glob) const;

  /// The run's task count ("runtime/tasks" gauge), or 1 when absent, as the
  /// denominator for per-task rates.
  [[nodiscard]] double tasks() const;
};

/// Parse a BENCH_*.json document (a JSON array of records, or one record
/// object). Returns false with a message on malformed input or an unknown
/// schema version.
bool parse_bench_records(std::string_view json_text,
                         std::vector<BenchRecord>* out, std::string* error);

/// A watched per-task rate: sum(metrics matching `numerator`) / tasks.
struct WatchedRate {
  std::string name;       ///< report label, e.g. "conflict_rate"
  std::string numerator;  ///< glob over flattened metric paths
  /// Direction of goodness. false (the default): growth beyond the
  /// tolerance is a regression (overhead counters). true: *shrinkage*
  /// beyond the tolerance is the regression (throughput gauges like
  /// simspeed's events/sec) — growth is always fine.
  bool higher_is_better = false;
  /// Per-rate tolerance override in percent; <= 0 falls back to
  /// PerfdiffOptions::metric_tolerance_pct. Wall-clock-derived rates need a
  /// far wider band than deterministic counters (machine-to-machine churn).
  double tolerance_pct = 0.0;
  /// Divide the metric sum by the run's task count (the per-task overhead
  /// shape). false compares the raw sum — quantile fields and knee gauges
  /// are already absolute values.
  bool per_task = true;
  /// Skip the check unless *both* records carry a matching metric. Quantile
  /// fields only exist on schema-3 records and knee gauges only on serving
  /// rows (host-time fields only on schema-4); metric_sum's 0-for-absent
  /// would otherwise misread an old baseline vs a new candidate as a
  /// was-zero regression.
  bool require_both = false;
  /// Echo the change as an "[info]" line but never count it as a
  /// regression. For fields too noisy to gate on at any tolerance — the
  /// schema-4 host wall-clock attribution (prof/*_ns) varies with the
  /// machine, not the code under test.
  bool report_only = false;
};

/// The default watch list: arbiter conflict/retry rates, dep-count park
/// rate, and task-graph-table stall rate (per task, both managers), plus
/// the DES kernel throughput gauge (simspeed events/sec, higher-is-better
/// at a generous wall-clock tolerance), plus the tail-latency gates —
/// sojourn and serving-latency p50/p99/p999 and the serving knee gauge,
/// all require_both so pre-quantile baselines are skipped, not failed.
std::vector<WatchedRate> default_watched_rates();

struct PerfdiffOptions {
  /// Makespan may grow by at most this percentage before it counts as a
  /// regression (improvements are reported, never failed).
  double makespan_tolerance_pct = 2.0;
  /// A watched rate may grow by at most this percentage (with a small
  /// absolute epsilon so zero-baselines do not flag on rounding noise).
  double metric_tolerance_pct = 10.0;
  std::vector<WatchedRate> watched = default_watched_rates();
  /// Compare the records' sampled timelines point by point (the series are
  /// sim-time-deterministic, so the default per-series tolerance is exact).
  /// A diverging series is reported with the sim-time of its first
  /// divergence — *when* a run went off-trajectory, not just that it did.
  bool compare_timelines = false;
  /// Default per-point tolerance for timeline values, in percent of the
  /// baseline value (0 = exact).
  double timeline_tolerance_pct = 0.0;
  /// Per-series overrides: first glob matching the series path wins.
  std::vector<std::pair<std::string, double>> timeline_tolerances;
  /// Only emit regression/summary lines, not per-record ok lines.
  bool quiet = false;
};

struct PerfdiffResult {
  int compared = 0;     ///< records matched in both sets
  int added = 0;        ///< only in candidate (reported, not failed)
  int removed = 0;      ///< only in baseline (reported, not failed)
  int regressions = 0;  ///< failed makespan or metric checks
  int improvements = 0;
  std::string report;   ///< human-readable, one line per finding

  [[nodiscard]] bool ok() const { return regressions == 0; }
};

/// Compare candidate records against a baseline.
PerfdiffResult perfdiff_compare(const std::vector<BenchRecord>& baseline,
                                const std::vector<BenchRecord>& candidate,
                                const PerfdiffOptions& opts = {});

}  // namespace nexus::harness
