// Serving harness: offered-load experiments over the open-loop driver.
//
// A closed-loop sweep asks "how fast does this trace finish"; a serving
// sweep asks "what arrival rate can this manager sustain before tail
// latency explodes". `run_serving` measures one offered rate and extracts
// the serving-latency quantiles; `find_knee` brackets and bisects for the
// saturation knee — the highest rate whose p99 serving latency stays under
// a budget — which is the headline number of bench/ablation_serving.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nexus/harness/experiment.hpp"
#include "nexus/workloads/arrivals.hpp"

namespace nexus::harness {

/// One measured offered-load point.
struct ServingPoint {
  double rate_hz = 0.0;      ///< offered aggregate arrival rate
  std::uint64_t tasks = 0;   ///< arrivals completed (always all of them)
  Tick makespan = 0;         ///< last finish time
  Tick horizon = 0;          ///< last arrival time
  double offered_hz = 0.0;   ///< tasks / horizon — realized offered rate
  double accepted_hz = 0.0;  ///< tasks / makespan — sustained throughput
  /// Serving latency (release -> finish) quantiles, picoseconds.
  double p50_ps = 0.0;
  double p95_ps = 0.0;
  double p99_ps = 0.0;
  double p999_ps = 0.0;
  RunReport report;  ///< the full run record (metrics, timeline, labels)
};

/// Extra gauges preset into the run's registry before it starts, so they
/// land in the same snapshot (and hence the BENCH record) as the run's
/// metrics — e.g. serving/knee_hz on the knee-relative points.
struct ServingGauge {
  std::string path;
  std::int64_t value = 0;
};

/// Measure one offered rate: generate the arrival schedule at `rate_hz`
/// (overriding cfg.rate_hz), build the serving trace, run it open-loop, and
/// extract the serving-latency quantiles. Presets serving/rate_hz and
/// serving/clients gauges (plus any in `gauges`).
ServingPoint run_serving(const workloads::ArrivalConfig& cfg, double rate_hz,
                         const ManagerSpec& spec, std::uint32_t cores,
                         const RuntimeConfig& base = {},
                         const telemetry::TimelineConfig* timeline = nullptr,
                         const std::vector<ServingGauge>& gauges = {});

/// Knee-search policy: pass/fail is `p99 serving latency <= p99_budget_ps`.
struct KneeSearch {
  Tick p99_budget_ps = 0;  ///< required; no default makes sense
  /// Bracket start; must pass (an unloaded system violating the budget
  /// means the budget, not the rate, is the bottleneck).
  double lo_hz = 0.0;
  /// Optional upper bracket; 0 doubles lo_hz until failure.
  double hi_hz = 0.0;
  std::uint32_t bisect_iters = 10;   ///< geometric bisection refinements
  std::uint32_t max_doublings = 24;  ///< bracket expansion cap
};

/// How the search ended — callers must not quote knee_hz as "the knee"
/// unless the bracket is honest (kBracketed).
enum class KneeOutcome : std::uint8_t {
  /// lo_hz itself violates the budget: the budget, not the rate, is the
  /// bottleneck. knee_hz is 0 and `knee` holds the violating lo_hz point
  /// for diagnosis.
  kUnattainable = 0,
  /// No failing rate was found below the doubling cap (or the doubling
  /// overflowed, or the caller's hi_hz still passed): knee_hz is only a
  /// lower bound on the true knee.
  kLowerBound = 1,
  /// A failing rate bracketed the knee and bisection refined it.
  kBracketed = 2,
};

const char* to_string(KneeOutcome o);

struct KneeResult {
  double knee_hz = 0.0;  ///< highest passing rate found (0 if unattainable)
  ServingPoint knee;     ///< measured at knee_hz (at lo_hz if unattainable)
  std::uint32_t probes = 0;
  KneeOutcome outcome = KneeOutcome::kUnattainable;
  /// Convenience mirror of `outcome == kBracketed`.
  bool bracketed = false;
};

/// Bisect for the saturation knee. Deterministic: probe rates depend only
/// on the search policy and the pass/fail outcomes.
KneeResult find_knee(const workloads::ArrivalConfig& cfg,
                     const KneeSearch& search, const ManagerSpec& spec,
                     std::uint32_t cores, const RuntimeConfig& base = {});

}  // namespace nexus::harness
