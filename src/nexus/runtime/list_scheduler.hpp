// Stand-alone zero-overhead list scheduler.
//
// Computes the no-overhead makespan of a trace on P workers with an
// implementation independent of the DES driver: a plain timestamped
// occurrence loop. Used (a) as the oracle the DES + IdealManager pair must
// match exactly, and (b) as a fast path for ideal curves in the benches.
#pragma once

#include <cstdint>

#include "nexus/task/trace.hpp"

namespace nexus {

/// Makespan of `trace` on `workers` cores with instantaneous dependency
/// resolution, FIFO-by-readiness dispatch and lowest-index-first workers
/// (the same deterministic policy as the DES driver).
Tick list_schedule_makespan(const Trace& trace, std::uint32_t workers);

/// Length of the trace's critical path (infinite workers): the asymptote of
/// every ideal curve.
Tick critical_path(const Trace& trace);

}  // namespace nexus
