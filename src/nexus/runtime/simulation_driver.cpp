#include "nexus/runtime/simulation_driver.hpp"

#include <string>

#include "nexus/telemetry/profiler.hpp"
#include "nexus/telemetry/registry.hpp"
#include "nexus/telemetry/timeline.hpp"
#include "nexus/telemetry/trace.hpp"

namespace nexus {

RunResult run_trace(const Trace& trace, TaskManagerModel& manager,
                    const RuntimeConfig& config) {
  detail::Driver driver(trace, manager, config);
  return driver.run();
}

namespace detail {

Driver::Driver(const Trace& trace, TaskManagerModel& manager,
               const RuntimeConfig& config)
    : trace_(trace),
      manager_(manager),
      config_(config),
      workers_(config.workers),
      finished_(trace.num_tasks(), false) {
  if (config_.open_loop != nullptr) {
    NEXUS_ASSERT_MSG(config_.open_loop->release.size() == trace.num_tasks(),
                     "open-loop release vector must cover every task");
    NEXUS_ASSERT_MSG(config_.open_loop->client.empty() ||
                         config_.open_loop->client.size() == trace.num_tasks(),
                     "open-loop client vector must be empty or cover every task");
  }
  if (config_.metrics != nullptr) manager_.bind_telemetry(*config_.metrics);
  if (config_.trace != nullptr) manager_.bind_trace(config_.trace);
  self_ = sim_.add_component(this);
  manager_.attach(sim_, this);
  if (!config_.noc.ideal()) {
    // Host NoC: manager/master tile at node 0, core w at node 1+w. Created
    // only for real topologies — the ideal default keeps dispatch and
    // notification synchronous (the pre-NoC code path, bit-identical).
    host_net_ = std::make_unique<noc::Network>(
        config_.noc, config_.workers + 1, /*default_mhz=*/100.0,
        /*ideal_latency=*/0);
    host_net_->attach(sim_);
  }
  if (config_.metrics != nullptr) {
    // After attach so every manager component is registered with the kernel.
    sim_.bind_telemetry(*config_.metrics);
    if (host_net_ != nullptr)
      host_net_->bind_telemetry(*config_.metrics, "runtime/noc");
    m_ready_depth_ =
        &config_.metrics->histogram("runtime/ready_q_depth");
    m_dispatches_ = &config_.metrics->counter("runtime/dispatches");
    m_sojourn_ = &config_.metrics->histogram("runtime/sojourn_ps");
    m_queue_wait_ = &config_.metrics->histogram("runtime/queue_wait_ps");
    submit_t_.assign(trace_.num_tasks(), -1);
    ready_t_.assign(trace_.num_tasks(), -1);
    if (config_.open_loop != nullptr) {
      m_offered_ = &config_.metrics->counter("runtime/offered");
      m_accepted_ = &config_.metrics->counter("runtime/accepted");
      m_serving_ = &config_.metrics->histogram("runtime/serving_latency_ps");
      m_admission_wait_ =
          &config_.metrics->histogram("runtime/admission_wait_ps");
      // Per-client latency histograms; capped so a million-client schedule
      // cannot explode the snapshot (the aggregate histogram always exists).
      // Indices are zero-padded to a common width so snapshot order matches
      // client order past 10 clients (client02 < client10, lexicographically).
      constexpr std::uint32_t kMaxClientHistograms = 64;
      if (!config_.open_loop->client.empty() &&
          config_.open_loop->clients <= kMaxClientHistograms) {
        for (std::uint32_t c = 0; c < config_.open_loop->clients; ++c)
          m_client_sojourn_.push_back(&config_.metrics->histogram(
              telemetry::path_join(
                  "runtime",
                  telemetry::indexed_path("client", c,
                                          config_.open_loop->clients) +
                      "/sojourn_ps")));
      }
    }
  }
  if (config_.trace != nullptr && host_net_ != nullptr)
    host_net_->bind_trace(config_.trace, "runtime/noc");
  if (config_.profiler != nullptr) {
    // After every attach, so the per-component-type handle() nodes cover
    // the manager's components and the host NoC alike.
    prof_ = config_.profiler;
    sim_.bind_profiler(*prof_, config_.profile_parent);
    manager_.bind_profiler(sim_);
    const std::uint32_t me = sim_.profiler_component_node(self_);
    prof_dispatch_ = prof_->node(me, "dispatch");
    prof_notify_ = prof_->node(me, "notify");
    if (host_net_ != nullptr) {
      host_net_->bind_profiler(sim_, {"master_step", "task_done",
                                      "worker_free", "dispatch", "notify"});
    }
  }
  if (config_.timeline != nullptr) {
    NEXUS_ASSERT_MSG(config_.metrics != nullptr,
                     "RuntimeConfig::timeline requires RuntimeConfig::metrics");
    sim_.set_sampler(config_.timeline);
  }
}

RunResult Driver::run() {
  NEXUS_ASSERT_MSG(trace_.num_tasks() > 0, "empty trace");
  sim_.schedule(0, self_, kMasterStep);
  sim_.run();
  NEXUS_ASSERT_MSG(master_ == MasterState::kDone, "master did not finish");
  NEXUS_ASSERT_MSG(outstanding_ == 0, "tasks left outstanding");
  NEXUS_ASSERT_MSG(finished_count_ == trace_.num_tasks(), "tasks never ran");

  RunResult r;
  r.makespan = last_activity_;
  r.total_work = trace_.total_work();
  r.tasks = trace_.num_tasks();
  r.events = sim_.events_processed();
  r.manager = manager_.name();
  if (r.makespan > 0) {
    r.utilization = static_cast<double>(workers_.total_busy()) /
                    (static_cast<double>(r.makespan) * workers_.size());
  }

  if (config_.metrics != nullptr) {
    // Per-core busy/idle split: busy + idle == makespan for every core, so
    // the totals reconcile exactly against cores x makespan (a tested
    // consistency contract of the metric report).
    telemetry::MetricRegistry& reg = *config_.metrics;
    reg.gauge("runtime/makespan_ps").set(r.makespan);
    reg.gauge("runtime/cores").set(workers_.size());
    reg.gauge("runtime/tasks").set(static_cast<std::int64_t>(r.tasks));
    for (std::uint32_t w = 0; w < workers_.size(); ++w) {
      const Tick busy = workers_.core_busy(w);
      const std::string core = "runtime/core" + std::to_string(w);
      reg.gauge(core + "/busy_ps").set(busy);
      reg.gauge(core + "/idle_ps").set(r.makespan - busy);
    }
  }
  // Final timeline row at the makespan, after the end-of-run gauges above so
  // it captures the settled state.
  if (config_.timeline != nullptr) config_.timeline->finish(r.makespan);
  if (config_.trace != nullptr) config_.trace->set_makespan(r.makespan);
  return r;
}

void Driver::handle(Simulation& sim, const Event& ev) {
  switch (ev.op) {
    case kMasterStep:
      master_step(sim);
      break;
    case kTaskDone:
      on_task_done(sim, static_cast<std::uint32_t>(ev.a), static_cast<TaskId>(ev.b));
      break;
    case kWorkerFree:
      workers_.release(static_cast<std::uint32_t>(ev.a));
      try_dispatch(sim);
      break;
    case kDispatchArrived:
      begin_task(sim, static_cast<std::uint32_t>(ev.a), static_cast<TaskId>(ev.b));
      break;
    case kNotifyArrived:
      on_notify(sim, static_cast<std::uint32_t>(ev.a), static_cast<TaskId>(ev.b));
      break;
    default:
      NEXUS_ASSERT_MSG(false, "unknown driver op");
  }
}

void Driver::master_step(Simulation& sim) {
  // Process consecutive trace events inline while they complete instantly;
  // this collapses millions of zero-cost submissions (ideal manager) into a
  // single event.
  while (master_ == MasterState::kRunning) {
    if (next_event_ >= trace_.events().size()) {
      master_ = MasterState::kDone;
      if (outstanding_ == 0 && last_activity_ < sim.now()) last_activity_ = sim.now();
      return;
    }
    const TraceEvent& ev = trace_.events()[next_event_];
    switch (ev.op) {
      case TraceOp::kSubmit: {
        const TaskDescriptor& task = trace_.task(ev.task);
        if (config_.open_loop != nullptr) {
          // Open loop: the arrival process, not manager admission speed,
          // paces this submit. Wake up again at the release time.
          const Tick at = config_.open_loop->release[task.id];
          if (at > sim.now()) {
            sim.schedule(at, self_, kMasterStep);
            return;
          }
        }
        // Recorded before the submit so a pool-blocked retry keeps the
        // first attempt (the wait belongs to the span).
        if (config_.trace != nullptr)
          config_.trace->on_submit(task.id, sim.now());
        if (config_.metrics != nullptr && submit_t_[task.id] < 0) {
          submit_t_[task.id] = sim.now();
          telemetry::inc(m_offered_);
        }
        const Tick resume = manager_.submit(sim, task);
        if (resume < 0) {
          // kSubmitBlocked or kSubmitNacked: this driver feeds one stream,
          // so a per-tenant NACK degrades to a plain block-and-retry.
          master_ = MasterState::kBlockedOnPool;
          return;  // manager will call master_resume
        }
        NEXUS_ASSERT(resume >= sim.now());
        if (config_.trace != nullptr)
          config_.trace->on_accepted(task.id, resume);
        telemetry::inc(m_accepted_);
        if (m_admission_wait_ != nullptr)
          telemetry::record(m_admission_wait_,
                            static_cast<std::uint64_t>(
                                sim.now() -
                                config_.open_loop->release[task.id]));
        ++next_event_;
        ++outstanding_;
        for (const auto& p : task.params)
          if (is_write(p.dir)) last_writer_[p.addr] = task.id;
        const Tick cont = resume + config_.master_event_cost + config_.host_message_cost;
        if (cont > sim.now()) {
          sim.schedule(cont, self_, kMasterStep);
          return;
        }
        break;  // zero-cost: continue inline
      }
      case TraceOp::kTaskwait: {
        ++next_event_;
        if (outstanding_ > 0) {
          master_ = MasterState::kBlockedOnBarrier;
          return;  // resumed by on_task_done
        }
        break;
      }
      case TraceOp::kTaskwaitOn: {
        if (!manager_.supports_taskwait_on()) {
          // Fallback used for Nexus++ (Section III): treat as full barrier.
          ++next_event_;
          if (outstanding_ > 0) {
            master_ = MasterState::kBlockedOnBarrier;
            return;
          }
          break;
        }
        ++next_event_;
        const auto it = last_writer_.find(ev.addr);
        const bool pending =
            it != last_writer_.end() && !finished_[it->second];
        const Tick query = manager_.taskwait_on_query_cost() + config_.host_message_cost;
        if (pending) {
          master_ = MasterState::kBlockedOnTask;
          master_wait_task_ = it->second;
          return;  // resumed by on_task_done
        }
        if (query > 0) {
          sim.schedule(sim.now() + query, self_, kMasterStep);
          return;
        }
        break;
      }
    }
  }
}

void Driver::task_ready(Simulation& sim, TaskId id) {
  NEXUS_DCHECK(id < trace_.num_tasks());
  ready_queue_.push_back(id);
  telemetry::record(m_ready_depth_, ready_queue_.size());
  if (config_.metrics != nullptr) ready_t_[id] = sim.now();
  if (config_.trace != nullptr) {
    config_.trace->on_ready(id, sim.now());
    config_.trace->counter("runtime/ready_q", sim.now(),
                           static_cast<std::int64_t>(ready_queue_.size()));
  }
  try_dispatch(sim);
}

void Driver::master_resume(Simulation& sim) {
  NEXUS_ASSERT(master_ == MasterState::kBlockedOnPool);
  master_ = MasterState::kRunning;
  master_step(sim);
}

void Driver::try_dispatch(Simulation& sim) {
  telemetry::ProfScope prof_scope(prof_, prof_dispatch_);
  while (workers_.any_free() && !ready_queue_.empty()) {
    const TaskId id = ready_queue_.front();
    ready_queue_.pop_front();
    const std::uint32_t w = workers_.claim();
    // dispatch_time models the scheduler critical section (software) or the
    // ready-queue fetch (hardware); the worker is reserved from now.
    const Tick start =
        manager_.dispatch_time(sim) + config_.host_message_cost;
    NEXUS_ASSERT(start >= sim.now());
    telemetry::inc(m_dispatches_);
    if (config_.metrics != nullptr && ready_t_[id] >= 0)
      telemetry::record(m_queue_wait_,
                        static_cast<std::uint64_t>(sim.now() - ready_t_[id]));
    if (config_.trace != nullptr) {
      config_.trace->on_dispatch(id, sim.now(),
                                 static_cast<std::int32_t>(w));
      config_.trace->counter("runtime/ready_q", sim.now(),
                             static_cast<std::int64_t>(ready_queue_.size()));
    }
    if (host_net_ != nullptr) {
      // The dispatch record additionally crosses the host NoC from the
      // manager tile to the claimed core (task id + function pointer, one
      // parameter-sized payload); execution starts on arrival.
      host_net_->send(sim, start, 0, 1 + w, self_, kDispatchArrived, w, id,
                      noc::kParamBytes);
      continue;
    }
    const Tick end = start + trace_.task(id).duration;
    workers_.occupy(w, sim.now(), end);
    if (config_.schedule_out != nullptr)
      config_.schedule_out->push_back(ScheduleEntry{id, w, start, end});
    if (config_.trace != nullptr) config_.trace->on_exec(id, start, end);
    sim.schedule(end, self_, kTaskDone, w, id);
  }
}

void Driver::begin_task(Simulation& sim, std::uint32_t worker, TaskId id) {
  const Tick start = sim.now();
  const Tick end = start + trace_.task(id).duration;
  workers_.occupy(worker, start, end);
  if (config_.schedule_out != nullptr)
    config_.schedule_out->push_back(ScheduleEntry{id, worker, start, end});
  if (config_.trace != nullptr) config_.trace->on_exec(id, start, end);
  sim.schedule(end, self_, kTaskDone, worker, id);
}

void Driver::on_task_done(Simulation& sim, std::uint32_t worker, TaskId id) {
  last_activity_ = sim.now();
  if (host_net_ != nullptr) {
    // The finish notification crosses the host NoC back to the manager
    // tile; the worker stays reserved until the manager accepts it.
    host_net_->send(sim, sim.now(), 1 + worker, 0, self_, kNotifyArrived,
                    worker, id);
    return;
  }
  on_notify(sim, worker, id);
}

void Driver::on_notify(Simulation& sim, std::uint32_t worker, TaskId id) {
  telemetry::ProfScope prof_scope(prof_, prof_notify_);
  NEXUS_ASSERT(!finished_[id]);
  finished_[id] = true;
  ++finished_count_;
  NEXUS_ASSERT(outstanding_ > 0);
  --outstanding_;

  // The completion path (software: completion critical section on this
  // worker; hardware: finish notification write) holds the worker until
  // `free_at`.
  const Tick free_at = manager_.notify_finished(sim, id) + config_.host_message_cost;
  NEXUS_ASSERT(free_at >= sim.now());
  if (config_.trace != nullptr) config_.trace->on_freed(id, free_at);
  if (config_.metrics != nullptr && submit_t_[id] >= 0)
    telemetry::record(m_sojourn_,
                      static_cast<std::uint64_t>(sim.now() - submit_t_[id]));
  if (m_serving_ != nullptr) {
    // Serving latency counts from the *arrival*, not the (possibly
    // backlogged) submit attempt — the open-loop tail the knee search gates.
    const auto lat = static_cast<std::uint64_t>(
        sim.now() - config_.open_loop->release[id]);
    m_serving_->record(lat);
    if (!m_client_sojourn_.empty())
      m_client_sojourn_[config_.open_loop->client[id]]->record(lat);
  }
  if (free_at == sim.now()) {
    workers_.release(worker);
    try_dispatch(sim);
  } else {
    sim.schedule(free_at, self_, kWorkerFree, worker);
  }

  finish_barrier_checks(sim);
}

void Driver::finish_barrier_checks(Simulation& sim) {
  // master_step is safe against spurious wake-ups (it no-ops unless the
  // master is in kRunning), so resuming just flips the state and steps.
  if (master_ == MasterState::kBlockedOnBarrier && outstanding_ == 0) {
    master_ = MasterState::kRunning;
    master_step(sim);
  } else if (master_ == MasterState::kBlockedOnTask &&
             finished_[master_wait_task_]) {
    master_wait_task_ = kInvalidTask;
    master_ = MasterState::kRunning;
    const Tick query = manager_.taskwait_on_query_cost() + config_.host_message_cost;
    if (query > 0) {
      sim.schedule(sim.now() + query, self_, kMasterStep);
    } else {
      master_step(sim);
    }
  }
}

}  // namespace detail
}  // namespace nexus
