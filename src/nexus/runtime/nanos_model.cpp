#include "nexus/runtime/nanos_model.hpp"

#include "nexus/telemetry/trace.hpp"

namespace nexus {

void NanosModel::attach(Simulation& sim, RuntimeHost* host) {
  NEXUS_ASSERT(host != nullptr);
  host_ = host;
  self_ = sim.add_component(this);
  tracker_ = DependencyTracker{};
  lock_.reset();
}

Tick NanosModel::submit(Simulation& sim, const TaskDescriptor& task) {
  // Creation runs lock-free on the master; dependence insertion serializes
  // on the runtime lock with every other runtime operation.
  const Tick insert_start = sim.now() + cfg_.create_cost;
  const Tick insert_cost =
      cfg_.insert_per_param * static_cast<Tick>(task.params.size());
  const Tick done = lock_.acquire(insert_start, insert_cost);
  const bool ready = tracker_.submit(task) == 0;
  if (ready) {
    if (trace_ != nullptr) trace_->on_resolved(task.id, done);
    // Visible to idle workers once the insertion critical section ends.
    sim.schedule(done, self_, kDeliverReady, task.id);
  }
  return done;
}

Tick NanosModel::notify_finished(Simulation& sim, TaskId id) {
  const Tick done = lock_.acquire(sim.now(), cfg_.finish_cs);
  ready_scratch_.clear();
  tracker_.finish(id, &ready_scratch_);
  for (const TaskId t : ready_scratch_) {
    if (trace_ != nullptr) {
      trace_->on_dep(id, t, done);
      trace_->on_resolved(t, done);
    }
    sim.schedule(done, self_, kDeliverReady, t);
  }
  return done;  // the worker runs the completion section itself
}

Tick NanosModel::dispatch_time(Simulation& sim) {
  // Idle worker takes the scheduler lock to pop the ready queue.
  return lock_.acquire(sim.now(), cfg_.dispatch_cs);
}

void NanosModel::handle(Simulation& sim, const Event& ev) {
  switch (ev.op) {
    case kDeliverReady:
      host_->task_ready(sim, static_cast<TaskId>(ev.a));
      break;
    default:
      NEXUS_ASSERT_MSG(false, "unknown NanosModel op");
  }
}

}  // namespace nexus
