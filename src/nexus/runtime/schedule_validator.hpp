// Schedule validation: checks that an executed schedule respects a trace's
// dependency semantics (RAW/WAR/WAW per address, reader-group concurrency,
// taskwait fences and taskwait_on producer fences).
//
// This is the library-level oracle behind the hardware-manager integration
// tests, and a tool for downstream users plugging in their own manager
// models: whatever cycle model a manager implements, the schedule it
// produces must be a legal execution of the trace.
#pragma once

#include <string>
#include <vector>

#include "nexus/runtime/simulation_driver.hpp"
#include "nexus/task/trace.hpp"

namespace nexus {

/// Returns true iff `schedule` is a legal execution of `trace`:
///  - every task runs exactly once, for exactly its duration,
///  - no two tasks overlap on one worker,
///  - every task starts only after its dependences (per-address hazard
///    ordering in submission order) and after any barrier fence,
///  - taskwait_on fences at least the producer of the named address
///    (the weakest semantics any conforming manager must provide; a
///    full-barrier fallback is strictly stronger and also passes).
/// On failure, *error describes the first violation found.
bool validate_schedule(const Trace& trace, const std::vector<ScheduleEntry>& schedule,
                       std::string* error = nullptr);

}  // namespace nexus
