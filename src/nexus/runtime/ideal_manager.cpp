#include "nexus/runtime/ideal_manager.hpp"

#include "nexus/telemetry/trace.hpp"

namespace nexus {

void IdealManager::attach(Simulation& /*sim*/, RuntimeHost* host) {
  NEXUS_ASSERT(host != nullptr);
  host_ = host;
  tracker_ = DependencyTracker{};
}

Tick IdealManager::submit(Simulation& sim, const TaskDescriptor& task) {
  if (tracker_.submit(task) == 0) {
    if (trace_ != nullptr) trace_->on_resolved(task.id, sim.now());
    host_->task_ready(sim, task.id);
  }
  return sim.now();
}

Tick IdealManager::notify_finished(Simulation& sim, TaskId id) {
  ready_scratch_.clear();
  tracker_.finish(id, &ready_scratch_);
  for (const TaskId t : ready_scratch_) {
    if (trace_ != nullptr) {
      trace_->on_dep(id, t, sim.now());
      trace_->on_resolved(t, sim.now());
    }
    host_->task_ready(sim, t);
  }
  return sim.now();
}

}  // namespace nexus
