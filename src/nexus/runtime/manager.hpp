// The task-manager plug-in interface.
//
// The trace-driven host simulation (Section V-B of the paper) replays a
// benchmark trace against one of four dependency-resolution back-ends:
//
//   IdealManager   — "No Overhead": readiness is instantaneous (lower bound)
//   NanosModel     — calibrated software-runtime cost model (the baseline)
//   NexusPP        — cycle-level model of the centralized Nexus++ design
//   NexusSharp     — cycle-level model of the distributed Nexus# design
//
// A manager receives submissions and finish notifications from the host and
// delivers ready tasks back through the RuntimeHost callback at the
// simulated time its own pipeline completes the write-back.
#pragma once

#include "nexus/sim/simulation.hpp"
#include "nexus/task/task.hpp"
#include "nexus/telemetry/fwd.hpp"

namespace nexus {

/// Sentinel returned by TaskManagerModel::submit when the manager cannot
/// accept the task yet (e.g. hardware task pool full). The master blocks;
/// the manager must call RuntimeHost::master_resume once space frees, after
/// which the driver retries the same submission.
constexpr Tick kSubmitBlocked = -1;

/// Sentinel returned by TaskManagerModel::submit when the submitting
/// *tenant* is over its admission quota while the shared structures still
/// have room (multi-tenant managers only). Unlike kSubmitBlocked this is
/// backpressure on one tenant: a tenancy-aware driver holds only that
/// tenant's stream and keeps submitting for others. Single-stream drivers
/// treat it exactly like kSubmitBlocked (any negative return blocks the
/// master); the manager still calls master_resume when occupancy drops.
constexpr Tick kSubmitNacked = -2;

/// Callbacks from the manager into the host simulation.
class RuntimeHost {
 public:
  virtual ~RuntimeHost() = default;

  /// A task's write-back completed: the RTS can now see it as ready.
  virtual void task_ready(Simulation& sim, TaskId id) = 0;

  /// Space freed after a kSubmitBlocked; the master will retry.
  virtual void master_resume(Simulation& sim) = 0;
};

class TaskManagerModel {
 public:
  virtual ~TaskManagerModel() = default;

  /// Wire the manager into the simulation (register components, reset
  /// state). Called exactly once per run, before any submit.
  virtual void attach(Simulation& sim, RuntimeHost* host) = 0;

  /// Master submits a task at sim.now(). Returns the time at which the
  /// master may continue (submission occupancy / IO backpressure), or
  /// kSubmitBlocked if the manager is full.
  virtual Tick submit(Simulation& sim, const TaskDescriptor& task) = 0;

  /// A worker completed `id` at sim.now(). Returns the time at which that
  /// worker becomes free again (software runtimes run completion sections
  /// on the worker; hardware managers release it immediately).
  virtual Tick notify_finished(Simulation& sim, TaskId id) = 0;

  /// A worker picks up a ready task at sim.now(). Returns the time at which
  /// execution may begin (software scheduler critical section; hardware
  /// ready-queue fetch).
  virtual Tick dispatch_time(Simulation& sim) { return sim.now(); }

  /// Whether the `taskwait on` pragma is accelerated. Nexus++ is not
  /// (Section III): the driver falls back to a full taskwait for managers
  /// returning false, reproducing the paper's h264dec behaviour.
  [[nodiscard]] virtual bool supports_taskwait_on() const { return true; }

  /// Extra latency for a supported taskwait_on query round trip.
  [[nodiscard]] virtual Tick taskwait_on_query_cost() const { return 0; }

  /// Register the manager's internal metrics (queue depths, arbitration
  /// counts, table fill, ...) with `reg`. Called once, before attach, when
  /// the run collects telemetry; managers without internals keep the no-op.
  virtual void bind_telemetry(telemetry::MetricRegistry& reg) { (void)reg; }

  /// Attach a lifecycle trace recorder (see telemetry/trace.hpp). Called
  /// once, before attach, when the run traces. Managers fill the
  /// `resolved` span boundary and the dependency-kick edges; the driver
  /// owns every other boundary. The no-op default keeps untraced managers
  /// untraced.
  virtual void bind_trace(telemetry::TraceRecorder* trace) { (void)trace; }

  /// Attach the host-side self-profiler bound to `sim` (see
  /// telemetry/profiler.hpp). Called once, *after* attach and after
  /// Simulation::bind_profiler, when the run profiles — component handle()
  /// time is already attributed by the kernel; managers that own internal
  /// networks forward this so their message kinds get per-op send nodes.
  virtual void bind_profiler(Simulation& sim) { (void)sim; }

  [[nodiscard]] virtual const char* name() const = 0;
};

}  // namespace nexus
