// "No Overhead" manager: instantaneous dependency resolution.
//
// Reproduces the paper's ideal-scalability curves (Section V-B): "the
// simulation time does not advance while dependencies are resolved. Only the
// execution time of the tasks is taken into account." The remaining limits
// are the application's own parallelism and the worker count.
#pragma once

#include <vector>

#include "nexus/depgraph/dependency_tracker.hpp"
#include "nexus/runtime/manager.hpp"

namespace nexus {

class IdealManager final : public TaskManagerModel {
 public:
  void attach(Simulation& sim, RuntimeHost* host) override;
  Tick submit(Simulation& sim, const TaskDescriptor& task) override;
  Tick notify_finished(Simulation& sim, TaskId id) override;
  void bind_trace(telemetry::TraceRecorder* trace) override { trace_ = trace; }
  [[nodiscard]] const char* name() const override { return "ideal"; }

 private:
  RuntimeHost* host_ = nullptr;
  DependencyTracker tracker_;
  std::vector<TaskId> ready_scratch_;
  telemetry::TraceRecorder* trace_ = nullptr;
};

}  // namespace nexus
