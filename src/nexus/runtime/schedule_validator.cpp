#include "nexus/runtime/schedule_validator.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace nexus {

bool validate_schedule(const Trace& trace, const std::vector<ScheduleEntry>& schedule,
                       std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };

  // Index: every task executed exactly once, with its declared duration.
  if (schedule.size() != trace.num_tasks())
    return fail("executed " + std::to_string(schedule.size()) + " of " +
                std::to_string(trace.num_tasks()) + " tasks");
  std::vector<const ScheduleEntry*> by_task(trace.num_tasks(), nullptr);
  for (const auto& e : schedule) {
    if (e.task >= trace.num_tasks()) return fail("unknown task in schedule");
    if (by_task[e.task] != nullptr)
      return fail("task " + std::to_string(e.task) + " executed twice");
    if (e.end - e.start != trace.task(e.task).duration)
      return fail("task " + std::to_string(e.task) + " has the wrong duration");
    by_task[e.task] = &e;
  }

  // No overlap on a worker.
  std::map<std::uint32_t, std::vector<const ScheduleEntry*>> per_worker;
  for (const auto& e : schedule) per_worker[e.worker].push_back(&e);
  for (auto& [w, v] : per_worker) {
    std::sort(v.begin(), v.end(),
              [](const auto* a, const auto* b) { return a->start < b->start; });
    for (std::size_t i = 1; i < v.size(); ++i) {
      if (v[i]->start < v[i - 1]->end)
        return fail("worker " + std::to_string(w) + " overlaps tasks " +
                    std::to_string(v[i - 1]->task) + " and " +
                    std::to_string(v[i]->task));
    }
  }

  // Hazard ordering in submission order, with actual completion times.
  struct Chain {
    Tick writer_end = 0;
    Tick readers_end = 0;
  };
  std::unordered_map<Addr, Chain> chains;
  std::unordered_map<Addr, TaskId> last_writer;
  Tick fence = 0;
  Tick all_end = 0;
  for (const auto& ev : trace.events()) {
    switch (ev.op) {
      case TraceOp::kSubmit: {
        const TaskDescriptor& t = trace.task(ev.task);
        const ScheduleEntry& e = *by_task[ev.task];
        Tick min_start = fence;
        for (const auto& p : t.params) {
          const Chain& c = chains[p.addr];
          min_start = std::max(min_start, is_write(p.dir)
                                              ? std::max(c.writer_end, c.readers_end)
                                              : c.writer_end);
        }
        if (e.start < min_start)
          return fail("task " + std::to_string(ev.task) + " started at " +
                      std::to_string(e.start) + " before its dependences (" +
                      std::to_string(min_start) + ")");
        for (const auto& p : t.params) {
          Chain& c = chains[p.addr];
          if (is_write(p.dir)) {
            c.writer_end = e.end;
            c.readers_end = 0;
            last_writer[p.addr] = ev.task;
          } else {
            c.readers_end = std::max(c.readers_end, e.end);
          }
        }
        all_end = std::max(all_end, e.end);
        break;
      }
      case TraceOp::kTaskwait:
        fence = std::max(fence, all_end);
        break;
      case TraceOp::kTaskwaitOn: {
        const auto it = last_writer.find(ev.addr);
        if (it != last_writer.end())
          fence = std::max(fence, by_task[it->second]->end);
        break;
      }
    }
  }
  return true;
}

}  // namespace nexus
