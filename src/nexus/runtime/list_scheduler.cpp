#include "nexus/runtime/list_scheduler.hpp"

#include <algorithm>
#include <deque>
#include <queue>
#include <unordered_map>
#include <vector>

#include "nexus/common/assert.hpp"
#include "nexus/depgraph/dependency_tracker.hpp"

namespace nexus {
namespace {

struct Occurrence {
  Tick t;
  std::uint64_t seq;
  bool is_done;  // false = task became ready, true = task finished
  TaskId id;
};

struct Later {
  bool operator()(const Occurrence& a, const Occurrence& b) const {
    if (a.t != b.t) return a.t > b.t;
    return a.seq > b.seq;
  }
};

class ListScheduler {
 public:
  ListScheduler(const Trace& trace, std::uint32_t workers)
      : trace_(trace), finished_(trace.num_tasks(), false), free_workers_(workers) {}

  Tick run() {
    NEXUS_ASSERT(trace_.num_tasks() > 0);
    advance_master(0);
    Tick last = 0;
    while (!occ_.empty()) {
      const Occurrence o = occ_.top();
      occ_.pop();
      if (o.is_done) {
        last = o.t;
        on_done(o.t, o.id);
      } else {
        on_ready(o.t, o.id);
      }
    }
    NEXUS_ASSERT_MSG(outstanding_ == 0 && next_event_ == trace_.events().size(),
                     "list scheduler deadlocked (invalid trace?)");
    return last;
  }

 private:
  void push(Tick t, bool done, TaskId id) { occ_.push({t, seq_++, done, id}); }

  void advance_master(Tick now) {
    while (next_event_ < trace_.events().size()) {
      const TraceEvent& ev = trace_.events()[next_event_];
      if (ev.op == TraceOp::kSubmit) {
        ++next_event_;
        ++outstanding_;
        const TaskDescriptor& task = trace_.task(ev.task);
        for (const auto& p : task.params)
          if (is_write(p.dir)) last_writer_[p.addr] = task.id;
        if (tracker_.submit(task) == 0) push(now, false, task.id);
      } else if (ev.op == TraceOp::kTaskwait) {
        ++next_event_;
        if (outstanding_ > 0) {
          barrier_ = true;
          return;
        }
      } else {  // kTaskwaitOn (supported natively in the ideal model)
        const auto it = last_writer_.find(ev.addr);
        if (it != last_writer_.end() && !finished_[it->second]) {
          wait_task_ = it->second;
          return;  // do not consume the event until the producer finishes
        }
        ++next_event_;
      }
    }
  }

  void on_ready(Tick t, TaskId id) {
    if (free_workers_ > 0) {
      --free_workers_;
      push(t + trace_.task(id).duration, true, id);
    } else {
      waiting_.push_back(id);
    }
  }

  void on_done(Tick t, TaskId id) {
    finished_[id] = true;
    NEXUS_ASSERT(outstanding_ > 0);
    --outstanding_;
    ++free_workers_;
    if (!waiting_.empty()) {
      const TaskId next = waiting_.front();
      waiting_.pop_front();
      --free_workers_;
      push(t + trace_.task(next).duration, true, next);
    }
    ready_scratch_.clear();
    tracker_.finish(id, &ready_scratch_);
    for (const TaskId r : ready_scratch_) push(t, false, r);

    if (barrier_ && outstanding_ == 0) {
      barrier_ = false;
      advance_master(t);
    } else if (wait_task_ != kInvalidTask && finished_[wait_task_]) {
      wait_task_ = kInvalidTask;
      ++next_event_;  // consume the taskwait_on
      advance_master(t);
    }
  }

  const Trace& trace_;
  DependencyTracker tracker_;
  std::priority_queue<Occurrence, std::vector<Occurrence>, Later> occ_;
  std::deque<TaskId> waiting_;
  std::vector<TaskId> ready_scratch_;
  std::unordered_map<Addr, TaskId> last_writer_;
  std::vector<bool> finished_;
  std::uint32_t free_workers_;
  std::uint64_t seq_ = 0;
  std::size_t next_event_ = 0;
  std::uint64_t outstanding_ = 0;
  bool barrier_ = false;
  TaskId wait_task_ = kInvalidTask;
};

}  // namespace

Tick list_schedule_makespan(const Trace& trace, std::uint32_t workers) {
  NEXUS_ASSERT(workers > 0);
  return ListScheduler(trace, workers).run();
}

Tick critical_path(const Trace& trace) {
  // Longest path through the dependence DAG, including barrier ordering:
  // a task submitted after a taskwait cannot start before every task
  // submitted before it has finished. With infinite workers a task starts at
  // max(fence, hazards over its addresses); per-address chain state encodes
  // RAW/WAR/WAW exactly as the tracker orders accesses.
  struct AddrChain {
    Tick last_writer_done = 0;
    Tick readers_done = 0;  // max completion among readers since last write
  };
  std::unordered_map<Addr, AddrChain> chains;
  std::unordered_map<Addr, TaskId> last_writer;
  Tick fence = 0;
  Tick makespan = 0;
  std::vector<Tick> done_at(trace.num_tasks(), 0);

  for (const auto& ev : trace.events()) {
    switch (ev.op) {
      case TraceOp::kSubmit: {
        const TaskDescriptor& t = trace.task(ev.task);
        Tick start = fence;
        for (const auto& p : t.params) {
          auto& c = chains[p.addr];
          if (is_write(p.dir)) {
            start = std::max({start, c.last_writer_done, c.readers_done});
          } else {
            start = std::max(start, c.last_writer_done);
          }
        }
        const Tick done = start + t.duration;
        done_at[ev.task] = done;
        makespan = std::max(makespan, done);
        for (const auto& p : t.params) {
          auto& c = chains[p.addr];
          if (is_write(p.dir)) {
            c.last_writer_done = done;
            c.readers_done = 0;
            last_writer[p.addr] = ev.task;
          } else {
            c.readers_done = std::max(c.readers_done, done);
          }
        }
        break;
      }
      case TraceOp::kTaskwait:
        fence = std::max(fence, makespan);
        break;
      case TraceOp::kTaskwaitOn: {
        const auto it = last_writer.find(ev.addr);
        if (it != last_writer.end()) fence = std::max(fence, done_at[it->second]);
        break;
      }
    }
  }
  return makespan;
}

}  // namespace nexus
