// Worker-core bookkeeping for the host machine model.
#pragma once

#include <cstdint>
#include <vector>

#include "nexus/common/assert.hpp"
#include "nexus/sim/time.hpp"

namespace nexus {

/// A pool of identical worker cores. Tracks which are free and accumulates
/// per-core busy time for utilization reporting.
class WorkerPool {
 public:
  explicit WorkerPool(std::uint32_t n);

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(busy_until_.size());
  }
  [[nodiscard]] bool any_free() const { return !free_.empty(); }
  [[nodiscard]] std::uint32_t num_free() const {
    return static_cast<std::uint32_t>(free_.size());
  }

  /// Claim a free worker. Caller must check any_free().
  std::uint32_t claim();

  /// Record that `w` executes for [start, end) and stays reserved.
  void occupy(std::uint32_t w, Tick start, Tick end);

  /// Release `w` back to the free list.
  void release(std::uint32_t w);

  [[nodiscard]] Tick total_busy() const { return total_busy_; }

  /// Accumulated execution time of core `w` (for per-core utilization).
  [[nodiscard]] Tick core_busy(std::uint32_t w) const {
    NEXUS_ASSERT(w < size());
    return core_busy_[w];
  }

 private:
  std::vector<Tick> busy_until_;
  std::vector<Tick> core_busy_;
  std::vector<std::uint32_t> free_;
  std::vector<bool> is_free_;
  Tick total_busy_ = 0;
};

}  // namespace nexus
