#include "nexus/runtime/multi_app.hpp"

#include <algorithm>
#include <deque>
#include <string>
#include <unordered_map>

#include "nexus/runtime/machine.hpp"
#include "nexus/telemetry/registry.hpp"

namespace nexus {
namespace {

/// Per-application address-space placement: apps own disjoint 44-bit
/// windows of the 48-bit physical space.
Addr place(Addr addr, std::size_t app) {
  return (addr + (static_cast<Addr>(app) << 44)) & kAddrMask;
}

class MultiDriver final : public Component, public RuntimeHost {
 public:
  MultiDriver(const std::vector<const Trace*>& traces, TaskManagerModel& manager,
              const RuntimeConfig& config)
      : traces_(traces), manager_(manager), config_(config),
        workers_(config.workers) {
    // Densify tasks: app a's task i -> global id base[a] + i, with its
    // addresses placed into the app's window. Degenerate inputs are
    // well-defined: an empty trace list or a zero-task application simply
    // contributes nothing (its completion time is 0).
    std::uint64_t next = 0;
    for (std::size_t a = 0; a < traces_.size(); ++a) {
      const Trace& tr = *traces_[a];
      base_.push_back(static_cast<TaskId>(next));
      next += tr.num_tasks();
      for (TaskId i = 0; i < tr.num_tasks(); ++i) {
        TaskDescriptor t = tr.task(i);
        t.id = base_[a] + i;
        for (auto& p : t.params) p.addr = place(p.addr, a);
        global_.push_back(t);
      }
    }
    finished_.assign(next, false);
    app_of_.resize(next);
    for (std::size_t a = 0; a < traces_.size(); ++a)
      for (TaskId i = 0; i < traces_[a]->num_tasks(); ++i)
        app_of_[base_[a] + i] = static_cast<std::uint32_t>(a);
    apps_.resize(traces_.size());

    // The same observability surface as the single-app driver: the manager
    // publishes its block metrics/spans into the run's registry/recorder.
    if (config_.metrics != nullptr) manager_.bind_telemetry(*config_.metrics);
    if (config_.trace != nullptr) manager_.bind_trace(config_.trace);
    self_ = sim_.add_component(this);
    manager_.attach(sim_, this);
  }

  MultiAppResult run() {
    for (std::uint32_t a = 0; a < apps_.size(); ++a)
      sim_.schedule(0, self_, kMasterStep, a);
    sim_.run();

    MultiAppResult r;
    r.total_tasks = global_.size();
    for (std::size_t a = 0; a < apps_.size(); ++a) {
      NEXUS_ASSERT_MSG(apps_[a].state == AppState::kDone &&
                           apps_[a].outstanding == 0,
                       "application did not drain");
      r.app_completion.push_back(apps_[a].last_completion);
      r.makespan = std::max(r.makespan, apps_[a].last_completion);
    }
    if (r.makespan > 0) {
      r.utilization = static_cast<double>(workers_.total_busy()) /
                      (static_cast<double>(r.makespan) * workers_.size());
    }
    if (config_.metrics != nullptr) {
      // Per-core busy/idle split mirroring the single-app driver: busy +
      // idle == makespan for every core, so the report's utilization
      // reconciles exactly against cores x makespan.
      telemetry::MetricRegistry& reg = *config_.metrics;
      reg.gauge("runtime/makespan_ps").set(r.makespan);
      reg.gauge("runtime/cores").set(workers_.size());
      reg.gauge("runtime/tasks").set(static_cast<std::int64_t>(r.total_tasks));
      reg.gauge("runtime/apps").set(static_cast<std::int64_t>(apps_.size()));
      for (std::uint32_t w = 0; w < workers_.size(); ++w) {
        const Tick busy = workers_.core_busy(w);
        const std::string core = "runtime/core" + std::to_string(w);
        reg.gauge(core + "/busy_ps").set(busy);
        reg.gauge(core + "/idle_ps").set(r.makespan - busy);
      }
      for (std::size_t a = 0; a < apps_.size(); ++a)
        reg.gauge(telemetry::path_join(
                      telemetry::indexed_path(
                          "runtime/app", static_cast<std::uint32_t>(a),
                          static_cast<std::uint32_t>(apps_.size())),
                      "completion_ps"))
            .set(apps_[a].last_completion);
    }
    return r;
  }

  // Component
  void handle(Simulation& sim, const Event& ev) override {
    switch (ev.op) {
      case kMasterStep:
        master_step(sim, static_cast<std::uint32_t>(ev.a));
        break;
      case kTaskDone:
        on_task_done(sim, static_cast<std::uint32_t>(ev.a),
                     static_cast<TaskId>(ev.b));
        break;
      case kWorkerFree:
        workers_.release(static_cast<std::uint32_t>(ev.a));
        try_dispatch(sim);
        break;
      default:
        NEXUS_ASSERT_MSG(false, "unknown MultiDriver op");
    }
  }

  // RuntimeHost
  void task_ready(Simulation& sim, TaskId id) override {
    ready_queue_.push_back(id);
    try_dispatch(sim);
  }

  void master_resume(Simulation& sim) override {
    // The manager freed space; wake every pool-blocked application (the
    // first to retry wins the slot, later ones re-block inside submit).
    for (std::uint32_t a = 0; a < apps_.size(); ++a) {
      if (apps_[a].state == AppState::kBlockedOnPool) {
        apps_[a].state = AppState::kRunning;
        master_step(sim, a);
      }
    }
  }

 private:
  enum Op : std::uint32_t { kMasterStep = 0, kTaskDone = 1, kWorkerFree = 2 };

  enum class AppState : std::uint8_t {
    kRunning,
    kBlockedOnPool,
    kBlockedOnBarrier,
    kBlockedOnTask,
    kDone,
  };

  struct App {
    std::size_t next_event = 0;
    AppState state = AppState::kRunning;
    TaskId wait_task = kInvalidTask;
    std::uint64_t outstanding = 0;
    Tick last_completion = 0;
    std::unordered_map<Addr, TaskId> last_writer;  ///< placed addresses
  };

  void master_step(Simulation& sim, std::uint32_t a) {
    App& app = apps_[a];
    const Trace& tr = *traces_[a];
    while (app.state == AppState::kRunning) {
      if (app.next_event >= tr.events().size()) {
        app.state = AppState::kDone;
        return;
      }
      const TraceEvent& ev = tr.events()[app.next_event];
      switch (ev.op) {
        case TraceOp::kSubmit: {
          const TaskDescriptor& task = global_[base_[a] + ev.task];
          const Tick resume = manager_.submit(sim, task);
          if (resume < 0) {
            // kSubmitBlocked or kSubmitNacked: this app's stream holds and
            // retries on the next master_resume either way.
            app.state = AppState::kBlockedOnPool;
            return;
          }
          ++app.next_event;
          ++app.outstanding;
          for (const auto& p : task.params)
            if (is_write(p.dir)) app.last_writer[p.addr] = task.id;
          const Tick cont =
              resume + config_.master_event_cost + config_.host_message_cost;
          if (cont > sim.now()) {
            sim.schedule(cont, self_, kMasterStep, a);
            return;
          }
          break;
        }
        case TraceOp::kTaskwait: {
          ++app.next_event;
          if (app.outstanding > 0) {
            app.state = AppState::kBlockedOnBarrier;
            return;
          }
          break;
        }
        case TraceOp::kTaskwaitOn: {
          const Addr addr = place(ev.addr, a);
          if (!manager_.supports_taskwait_on()) {
            ++app.next_event;
            if (app.outstanding > 0) {
              app.state = AppState::kBlockedOnBarrier;
              return;
            }
            break;
          }
          ++app.next_event;
          const auto it = app.last_writer.find(addr);
          if (it != app.last_writer.end() && !finished_[it->second]) {
            app.state = AppState::kBlockedOnTask;
            app.wait_task = it->second;
            return;
          }
          const Tick query =
              manager_.taskwait_on_query_cost() + config_.host_message_cost;
          if (query > 0) {
            sim.schedule(sim.now() + query, self_, kMasterStep, a);
            return;
          }
          break;
        }
      }
    }
  }

  void try_dispatch(Simulation& sim) {
    while (workers_.any_free() && !ready_queue_.empty()) {
      const TaskId id = ready_queue_.front();
      ready_queue_.pop_front();
      const std::uint32_t w = workers_.claim();
      const Tick start = manager_.dispatch_time(sim) + config_.host_message_cost;
      const Tick end = start + global_[id].duration;
      workers_.occupy(w, sim.now(), end);
      if (config_.schedule_out != nullptr)
        config_.schedule_out->push_back(ScheduleEntry{id, w, start, end});
      sim.schedule(end, self_, kTaskDone, w, id);
    }
  }

  void on_task_done(Simulation& sim, std::uint32_t worker, TaskId id) {
    NEXUS_ASSERT(!finished_[id]);
    finished_[id] = true;
    App& app = apps_[app_of_[id]];
    NEXUS_ASSERT(app.outstanding > 0);
    --app.outstanding;
    app.last_completion = sim.now();

    const Tick free_at =
        manager_.notify_finished(sim, id) + config_.host_message_cost;
    if (free_at == sim.now()) {
      workers_.release(worker);
      try_dispatch(sim);
    } else {
      sim.schedule(free_at, self_, kWorkerFree, worker);
    }

    if (app.state == AppState::kBlockedOnBarrier && app.outstanding == 0) {
      app.state = AppState::kRunning;
      master_step(sim, app_of_[id]);
    } else if (app.state == AppState::kBlockedOnTask && finished_[app.wait_task]) {
      app.wait_task = kInvalidTask;
      app.state = AppState::kRunning;
      const Tick query =
          manager_.taskwait_on_query_cost() + config_.host_message_cost;
      if (query > 0) {
        sim.schedule(sim.now() + query, self_, kMasterStep, app_of_[id]);
      } else {
        master_step(sim, app_of_[id]);
      }
    }
  }

  std::vector<const Trace*> traces_;
  TaskManagerModel& manager_;
  RuntimeConfig config_;
  Simulation sim_;
  std::uint32_t self_ = 0;

  WorkerPool workers_;
  std::deque<TaskId> ready_queue_;
  std::vector<TaskDescriptor> global_;
  std::vector<TaskId> base_;
  std::vector<std::uint32_t> app_of_;
  std::vector<bool> finished_;
  std::vector<App> apps_;
};

}  // namespace

MultiAppResult run_multi_app(const std::vector<const Trace*>& traces,
                             TaskManagerModel& manager, const RuntimeConfig& config) {
  MultiDriver driver(traces, manager, config);
  return driver.run();
}

}  // namespace nexus
