// Trace-driven host-machine simulation (the paper's testbench, Section V-B):
// "It submits new tasks to Nexus#, receives ready task information from it,
// schedules ready tasks to worker cores and simulates their execution, and
// finally notifies Nexus# of finished tasks."
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "nexus/noc/network.hpp"
#include "nexus/runtime/machine.hpp"
#include "nexus/runtime/manager.hpp"
#include "nexus/sim/simulation.hpp"
#include "nexus/task/trace.hpp"
#include "nexus/telemetry/fwd.hpp"

namespace nexus {

/// One executed task interval, for schedule validation and visualization.
struct ScheduleEntry {
  TaskId task = kInvalidTask;
  std::uint32_t worker = 0;
  Tick start = 0;
  Tick end = 0;
};

/// Open-loop (serving) submission: instead of replaying the trace as fast
/// as the manager admits it, the master holds each submit event back until
/// the task's release (arrival) time. Tasks model requests from independent
/// logical clients; the vectors are indexed by dense task id.
///
/// The trace's event order is still the submission order, so release times
/// are expected to be non-decreasing along the submit stream (the arrival
/// generators emit them sorted); a manager that back-pressures (pool full)
/// delays later arrivals behind the blocked one, which is exactly the
/// admission backlog the serving metrics measure.
struct OpenLoopSubmission {
  /// Arrival time of each task (picoseconds); size must equal the trace's
  /// task count.
  std::vector<Tick> release;
  /// Logical client of each task; empty disables per-client histograms.
  std::vector<std::uint32_t> client;
  /// Number of logical clients (client[i] < clients).
  std::uint32_t clients = 0;

  friend bool operator==(const OpenLoopSubmission&,
                         const OpenLoopSubmission&) = default;
};

struct RuntimeConfig {
  std::uint32_t workers = 1;

  /// If nonnull, the run is open-loop: each submit event waits for its
  /// task's release time (see OpenLoopSubmission). With metrics bound the
  /// driver additionally records offered/accepted counters, the
  /// serving-latency histogram (release -> finish) and per-client
  /// histograms. Null keeps the closed-loop replay bit-identical.
  const OpenLoopSubmission* open_loop = nullptr;

  /// Fixed master-side cost per trace event outside the manager (models the
  /// user code between pragmas; 0 = pure trace replay as in the paper).
  Tick master_event_cost = 0;

  /// Host-interface sensitivity knob: extra cost added to every
  /// master<->manager message (submission, ready fetch, finish notify).
  /// 0 reproduces the paper's "Nexus# only" mode, where no communication
  /// overhead is accounted; nonzero values emulate a driver/PCIe stack as
  /// in the Nexus++ integration paper [11]. See DESIGN.md §5.
  Tick host_message_cost = 0;

  /// Host-side interconnect between the manager/master tile (node 0) and
  /// the worker cores (core w at node 1+w). The default ideal topology is
  /// the pre-NoC behaviour, bit-identical: dispatch and finish notification
  /// stay synchronous. On ring/mesh, every ready-task dispatch traverses
  /// manager -> core and every finish notification core -> manager over a
  /// `noc::Network` (clocked at 100 MHz unless noc.freq_mhz overrides), so
  /// core placement distance and link contention become visible.
  noc::NocConfig noc{};

  /// If nonnull, every executed task interval is appended (tests validate
  /// that no dependency or hazard is violated by a manager's schedule).
  std::vector<ScheduleEntry>* schedule_out = nullptr;

  /// If nonnull, the run binds manager + DES kernel instrumentation to this
  /// registry and fills runtime metrics (per-core busy/idle ticks, ready
  /// queue depth, makespan) at the end. Null keeps every hot path a no-op.
  telemetry::MetricRegistry* metrics = nullptr;

  /// If nonnull (requires `metrics`), the recorder samples the registry on
  /// its sim-time grid while the run executes and takes one final row at the
  /// makespan. Sampling is read-only: it cannot change the schedule or the
  /// makespan (tested contract).
  telemetry::TimelineRecorder* timeline = nullptr;

  /// If nonnull, the run records one lifecycle span chain per task plus
  /// causal dependency/NoC edges into this recorder (telemetry/trace.hpp).
  /// Recording is append-only and cannot perturb the schedule: a traced
  /// run is bit-identical to an untraced one (tested contract).
  telemetry::TraceRecorder* trace = nullptr;

  /// If nonnull, the run attributes its own host wall-clock time into this
  /// profiler under `profile_parent` (see telemetry/profiler.hpp): the DES
  /// queue ops, per-component-type handle() time, NoC send() per message
  /// kind, and the driver's dispatch/notify paths. Null keeps every hook a
  /// single branch and the schedule bit-identical (tested contract).
  telemetry::Profiler* profiler = nullptr;
  /// Profile node the run's instrumentation nests under (e.g. a per-run
  /// node the harness created); Profiler::kRoot when unset.
  std::uint32_t profile_parent = 0;
};

struct RunResult {
  Tick makespan = 0;
  Tick total_work = 0;
  std::uint64_t tasks = 0;
  std::uint64_t events = 0;       ///< DES events processed
  double utilization = 0.0;       ///< worker busy time / (makespan * workers)
  std::string manager;

  /// Speedup relative to a given single-core baseline time.
  [[nodiscard]] double speedup_vs(Tick baseline) const {
    return makespan > 0 ? static_cast<double>(baseline) / static_cast<double>(makespan)
                        : 0.0;
  }
};

/// Run `trace` on `workers` cores with the given task manager model.
/// Deterministic: identical inputs give identical results.
RunResult run_trace(const Trace& trace, TaskManagerModel& manager,
                    const RuntimeConfig& config);

namespace detail {

/// The DES component implementing the master thread, dispatcher and workers.
class Driver final : public Component, public RuntimeHost {
 public:
  Driver(const Trace& trace, TaskManagerModel& manager, const RuntimeConfig& config);

  RunResult run();

  // Component
  void handle(Simulation& sim, const Event& ev) override;

  // RuntimeHost
  void task_ready(Simulation& sim, TaskId id) override;
  void master_resume(Simulation& sim) override;

  [[nodiscard]] const char* telemetry_label() const override {
    return "driver";
  }

 private:
  enum Op : std::uint32_t {
    kMasterStep = 0,
    kTaskDone = 1,         ///< a = worker, b = task
    kWorkerFree = 2,       ///< a = worker
    kDispatchArrived = 3,  ///< a = worker, b = task (host NoC, non-ideal)
    kNotifyArrived = 4,    ///< a = worker, b = task (host NoC, non-ideal)
  };

  enum class MasterState : std::uint8_t {
    kRunning,
    kBlockedOnPool,     ///< manager returned kSubmitBlocked
    kBlockedOnBarrier,  ///< taskwait
    kBlockedOnTask,     ///< taskwait_on
    kDone,
  };

  void master_step(Simulation& sim);
  void try_dispatch(Simulation& sim);
  void begin_task(Simulation& sim, std::uint32_t worker, TaskId id);
  void on_task_done(Simulation& sim, std::uint32_t worker, TaskId id);
  void on_notify(Simulation& sim, std::uint32_t worker, TaskId id);
  void finish_barrier_checks(Simulation& sim);

  const Trace& trace_;
  TaskManagerModel& manager_;
  RuntimeConfig config_;

  Simulation sim_;
  std::uint32_t self_ = 0;
  /// Host NoC (null under the ideal default, where both directions stay
  /// synchronous — the pre-NoC code path, bit-identical).
  std::unique_ptr<noc::Network> host_net_;

  WorkerPool workers_;
  std::deque<TaskId> ready_queue_;
  std::vector<bool> finished_;
  std::unordered_map<Addr, TaskId> last_writer_;  ///< as of master progress

  std::size_t next_event_ = 0;  ///< index into trace_.events()
  MasterState master_ = MasterState::kRunning;
  TaskId master_wait_task_ = kInvalidTask;
  std::uint64_t outstanding_ = 0;  ///< submitted but not finished
  std::uint64_t finished_count_ = 0;
  Tick last_activity_ = 0;

  telemetry::Profiler* prof_ = nullptr;
  std::uint32_t prof_dispatch_ = 0;  ///< driver-node child: try_dispatch time
  std::uint32_t prof_notify_ = 0;    ///< driver-node child: on_notify time

  telemetry::Histogram* m_ready_depth_ = nullptr;  ///< host ready-queue depth
  telemetry::Counter* m_dispatches_ = nullptr;
  telemetry::Histogram* m_sojourn_ = nullptr;     ///< submit -> finish, per task
  telemetry::Histogram* m_queue_wait_ = nullptr;  ///< ready -> dispatch

  // Open-loop serving metrics (created only when `open_loop` is set and a
  // registry is bound; see docs/METRICS.md "Serving metrics").
  telemetry::Counter* m_offered_ = nullptr;   ///< arrivals whose submit was attempted
  telemetry::Counter* m_accepted_ = nullptr;  ///< arrivals admitted by the manager
  telemetry::Histogram* m_serving_ = nullptr;        ///< release -> finish
  telemetry::Histogram* m_admission_wait_ = nullptr; ///< release -> admission
  std::vector<telemetry::Histogram*> m_client_sojourn_;  ///< per client

  /// Per-task submit/ready times (task ids are dense trace indices), kept
  /// only when metrics are bound — they feed the sojourn and queue-wait
  /// histograms above.
  std::vector<Tick> submit_t_;
  std::vector<Tick> ready_t_;
};

}  // namespace detail
}  // namespace nexus
