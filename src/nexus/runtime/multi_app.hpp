// Multi-application co-management (the paper's Section VI discussion:
// "Since multiple applications use different memory spaces inherently,
// Nexus# can manage them at the same time").
//
// Runs several traces concurrently through ONE task manager instance and a
// shared worker pool: each application has its own master thread walking
// its own submission stream (with per-app taskwait/taskwait_on semantics),
// while task ids are densified globally and each app's 48-bit address space
// is placed at a disjoint offset — exactly the property the paper appeals
// to for isolation inside the shared task graphs.
#pragma once

#include <cstdint>
#include <vector>

#include "nexus/runtime/manager.hpp"
#include "nexus/runtime/simulation_driver.hpp"
#include "nexus/task/trace.hpp"

namespace nexus {

struct MultiAppResult {
  Tick makespan = 0;                     ///< all applications drained
  std::vector<Tick> app_completion;      ///< per-app final task completion
  std::uint64_t total_tasks = 0;
  double utilization = 0.0;
};

/// Run `traces` concurrently on `manager` with `config.workers` cores.
/// Address spaces are made disjoint by offsetting each app's addresses
/// (app index in the high 48-bit address nibbles); task ids are offset to a
/// dense global range. Deterministic.
MultiAppResult run_multi_app(const std::vector<const Trace*>& traces,
                             TaskManagerModel& manager, const RuntimeConfig& config);

}  // namespace nexus
