// Calibrated cost model of the Nanos software runtime (the OmpSs RTS).
//
// The paper's baseline curves come from real Nanos runs on a 40-core Xeon.
// We model the runtime costs that dominate them: per-task creation and
// dependence-graph insertion on the submitting thread, plus a single global
// runtime lock serializing the scheduler and completion critical sections.
// The lock is a DES server, so convoying at high core counts — the reason
// Nanos's rot-cc curve flattens around 24x and h264dec-1x1 never reaches 1x —
// emerges from queueing rather than being scripted.
//
// Constants are calibrated once against the paper's Table IV (see DESIGN.md
// §4 and the fig8 bench) and frozen here. Vandierendonck et al. [17] put the
// floor for software dependence tracking at ~400 cycles/task in the ideal
// case; real Nanos per-task costs on the paper's machine are several us.
#pragma once

#include <vector>

#include "nexus/depgraph/dependency_tracker.hpp"
#include "nexus/runtime/manager.hpp"
#include "nexus/sim/server.hpp"

namespace nexus {

// Defaults calibrated against Table IV (see EXPERIMENTS.md): the master-side
// costs pin Nanos's h264dec-1x1 ceiling near the paper's 0.7x (creation +
// ~5 dependence insertions exceed the 4.6 us task), while the lock critical
// sections reproduce the plateau/decline of the coarse-grained rows.
struct NanosConfig {
  Tick create_cost = us(1.8);        ///< task creation, on master, no lock
  Tick insert_per_param = us(0.9);   ///< dependence insertion, under lock
  Tick dispatch_cs = us(4.0);        ///< scheduler pop, under lock, on worker
  Tick finish_cs = us(4.0);          ///< completion + release, under lock
  Tick barrier_wake = us(2.0);       ///< taskwait wake-up cost
};

class NanosModel final : public TaskManagerModel, public Component {
 public:
  explicit NanosModel(const NanosConfig& cfg = {}) : cfg_(cfg) {}

  // TaskManagerModel
  void attach(Simulation& sim, RuntimeHost* host) override;
  Tick submit(Simulation& sim, const TaskDescriptor& task) override;
  Tick notify_finished(Simulation& sim, TaskId id) override;
  Tick dispatch_time(Simulation& sim) override;
  [[nodiscard]] Tick taskwait_on_query_cost() const override {
    return cfg_.barrier_wake;
  }
  void bind_trace(telemetry::TraceRecorder* trace) override { trace_ = trace; }
  [[nodiscard]] const char* name() const override { return "nanos"; }

  // Component: deferred ready-task delivery at lock-release times.
  void handle(Simulation& sim, const Event& ev) override;

  /// Runtime-lock occupancy statistics (for tests and the contention bench).
  [[nodiscard]] const Server& lock() const { return lock_; }

 private:
  enum Op : std::uint32_t { kDeliverReady = 0 };

  NanosConfig cfg_;
  RuntimeHost* host_ = nullptr;
  std::uint32_t self_ = 0;
  DependencyTracker tracker_;
  Server lock_;
  std::vector<TaskId> ready_scratch_;
  telemetry::TraceRecorder* trace_ = nullptr;
};

}  // namespace nexus
