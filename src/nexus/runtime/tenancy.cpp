#include "nexus/runtime/tenancy.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <string>

#include "nexus/common/assert.hpp"
#include "nexus/runtime/machine.hpp"
#include "nexus/telemetry/registry.hpp"

namespace nexus {
namespace {

/// Per-tenant address-space placement: tenants own disjoint 40-bit windows
/// of the 48-bit physical space (up to 256 tenants).
Addr place(Addr addr, std::size_t tenant) {
  return (addr + (static_cast<Addr>(tenant) << 40)) & kAddrMask;
}

constexpr std::uint32_t kNoTenant = ~std::uint32_t{0};

class TenantDriver final : public Component, public RuntimeHost {
 public:
  TenantDriver(const std::vector<TenantStream>& streams,
               TaskManagerModel& manager, const RuntimeConfig& config)
      : manager_(manager), config_(config), workers_(config.workers) {
    NEXUS_ASSERT_MSG(streams.size() <= 256,
                     "tenant address windows support up to 256 tenants");
    // Densify: tenant t's local task i -> global id base[t] + i, addresses
    // placed into the tenant's window, descriptor tagged with the tenant so
    // a tenancy-configured manager can attribute and police it.
    std::uint64_t next = 0;
    for (std::size_t t = 0; t < streams.size(); ++t) {
      const TenantStream& s = streams[t];
      NEXUS_ASSERT_MSG(s.trace != nullptr, "tenant stream needs a trace");
      NEXUS_ASSERT_MSG(s.release.size() == s.trace->num_tasks(),
                       "one release time per tenant task");
      for (std::size_t i = 0; i + 1 < s.release.size(); ++i)
        NEXUS_ASSERT_MSG(s.release[i] <= s.release[i + 1],
                         "tenant release times must be non-decreasing");
      for (const TraceEvent& ev : s.trace->events())
        NEXUS_ASSERT_MSG(ev.op == TraceOp::kSubmit,
                         "tenant streams are submit-only (no taskwaits)");
      base_.push_back(static_cast<TaskId>(next));
      next += s.trace->num_tasks();
      for (TaskId i = 0; i < s.trace->num_tasks(); ++i) {
        TaskDescriptor d = s.trace->task(i);
        d.id = base_[t] + i;
        d.tenant = static_cast<std::uint16_t>(t);
        for (auto& p : d.params) p.addr = place(p.addr, t);
        global_.push_back(d);
        release_of_.push_back(s.release[i]);
        tenant_of_.push_back(static_cast<std::uint32_t>(t));
      }
    }
    pending_.resize(streams.size());
    held_.assign(streams.size(), false);
    nack_holds_.assign(streams.size(), 0);
    raw_.resize(streams.size());

    if (config_.metrics != nullptr) {
      manager_.bind_telemetry(*config_.metrics);
      telemetry::MetricRegistry& reg = *config_.metrics;
      m_offered_ = &reg.counter("runtime/offered");
      m_accepted_ = &reg.counter("runtime/accepted");
      m_admission_wait_ = &reg.histogram("runtime/admission_wait_ps");
      m_serving_ = &reg.histogram("runtime/serving_latency_ps");
    }
    if (config_.trace != nullptr) manager_.bind_trace(config_.trace);
    self_ = sim_.add_component(this);
    manager_.attach(sim_, this);
  }

  TenantRunResult run() {
    for (TaskId id = 0; id < global_.size(); ++id)
      sim_.schedule(release_of_[id], self_, kRelease, id);
    sim_.run();

    for (std::size_t t = 0; t < pending_.size(); ++t)
      NEXUS_ASSERT_MSG(pending_[t].empty(), "tenant stream did not drain");
    NEXUS_ASSERT_MSG(outstanding_ == 0, "tasks still in flight at drain");

    TenantRunResult r;
    r.makespan = last_completion_;
    r.total_tasks = global_.size();
    for (std::size_t t = 0; t < raw_.size(); ++t) {
      TenantLatency lat;
      lat.tasks = raw_[t].size();
      lat.nack_holds = nack_holds_[t];
      lat.raw = raw_[t];
      if (!lat.raw.empty()) {
        std::uint64_t sum = 0;
        for (const Tick v : lat.raw) {
          sum += static_cast<std::uint64_t>(v);
          lat.max_ps = std::max(lat.max_ps, v);
        }
        lat.mean_ps = static_cast<double>(sum) /
                      static_cast<double>(lat.raw.size());
        std::vector<Tick> sorted = lat.raw;
        std::sort(sorted.begin(), sorted.end());
        const std::size_t n = sorted.size();
        const std::size_t idx = static_cast<std::size_t>(
            std::ceil(0.99 * static_cast<double>(n))) - 1;
        lat.p99_ps = static_cast<double>(sorted[std::min(idx, n - 1)]);
      }
      r.tenants.push_back(std::move(lat));
    }

    if (config_.metrics != nullptr) {
      telemetry::MetricRegistry& reg = *config_.metrics;
      reg.gauge("runtime/makespan_ps").set(r.makespan);
      reg.gauge("runtime/cores").set(workers_.size());
      reg.gauge("runtime/tasks").set(static_cast<std::int64_t>(r.total_tasks));
      reg.gauge("tenancy/tenants")
          .set(static_cast<std::int64_t>(r.tenants.size()));
      for (std::size_t t = 0; t < r.tenants.size(); ++t) {
        const TenantLatency& lat = r.tenants[t];
        const std::string stem = telemetry::indexed_path(
            "tenancy/tenant", static_cast<std::uint32_t>(t),
            static_cast<std::uint32_t>(r.tenants.size()));
        reg.gauge(telemetry::path_join(stem, "tasks"))
            .set(static_cast<std::int64_t>(lat.tasks));
        reg.gauge(telemetry::path_join(stem, "mean_ps"))
            .set(std::llround(lat.mean_ps));
        reg.gauge(telemetry::path_join(stem, "p99_ps"))
            .set(std::llround(lat.p99_ps));
        reg.gauge(telemetry::path_join(stem, "nack_holds"))
            .set(static_cast<std::int64_t>(lat.nack_holds));
      }
    }
    return r;
  }

  // Component
  void handle(Simulation& sim, const Event& ev) override {
    switch (ev.op) {
      case kRelease: {
        const TaskId id = static_cast<TaskId>(ev.a);
        if (m_offered_ != nullptr) m_offered_->inc();
        pending_[tenant_of_[id]].push_back(id);
        pump(sim);
        break;
      }
      case kPump:
        pump_pending_ = false;
        pump(sim);
        break;
      case kTaskDone:
        on_task_done(sim, static_cast<std::uint32_t>(ev.a),
                     static_cast<TaskId>(ev.b));
        break;
      case kWorkerFree:
        workers_.release(static_cast<std::uint32_t>(ev.a));
        try_dispatch(sim);
        break;
      default:
        NEXUS_ASSERT_MSG(false, "unknown TenantDriver op");
    }
  }

  // RuntimeHost
  void task_ready(Simulation& sim, TaskId id) override {
    ready_queue_.push_back(id);
    try_dispatch(sim);
  }

  void master_resume(Simulation& sim) override {
    // The manager freed structure space. Wake the whole port: NACK-held
    // tenants retry (re-NACK costs nothing if still over quota) and a
    // pool-full stall clears.
    port_blocked_ = false;
    std::fill(held_.begin(), held_.end(), false);
    pump(sim);
  }

  [[nodiscard]] const char* telemetry_label() const override {
    return "tenant-driver";
  }

 private:
  enum Op : std::uint32_t {
    kRelease = 0,   ///< a = global task id
    kPump = 1,      ///< retry the submission port
    kTaskDone = 2,  ///< a = worker, b = task
    kWorkerFree = 3 ///< a = worker
  };

  /// The submission port: one in-flight submit at a time (the master is a
  /// single thread), serving pending tasks in global ARRIVAL order — a
  /// tenancy-unaware runtime has no reason to reorder tenants, so a heavy
  /// burst head-of-line blocks everyone behind it when the manager stalls
  /// the port (kSubmitBlocked). The manager's per-tenant NACK is what
  /// breaks that: a kSubmitNacked return holds only the offending tenant's
  /// stream and the port moves on to the next arrival from anyone else.
  /// Both hold kinds clear on master_resume.
  void pump(Simulation& sim) {
    if (port_blocked_) return;
    const Tick now = sim.now();
    if (now < port_free_) {
      schedule_pump(sim, port_free_);
      return;
    }
    while (true) {
      std::uint32_t pick = kNoTenant;
      Tick best = 0;
      const std::uint32_t n = static_cast<std::uint32_t>(pending_.size());
      for (std::uint32_t t = 0; t < n; ++t) {
        if (held_[t] || pending_[t].empty()) continue;
        const Tick rel = release_of_[pending_[t].front()];
        if (pick == kNoTenant || rel < best) {
          pick = t;
          best = rel;
        }
      }
      if (pick == kNoTenant) return;
      const TaskId id = pending_[pick].front();
      const Tick resume = manager_.submit(sim, global_[id]);
      if (resume == kSubmitBlocked) {
        port_blocked_ = true;
        return;
      }
      if (resume == kSubmitNacked) {
        held_[pick] = true;
        ++nack_holds_[pick];
        continue;
      }
      pending_[pick].pop_front();
      ++outstanding_;
      if (m_accepted_ != nullptr) m_accepted_->inc();
      if (m_admission_wait_ != nullptr)
        m_admission_wait_->record(
            static_cast<std::uint64_t>(now - release_of_[id]));
      const Tick cont =
          resume + config_.master_event_cost + config_.host_message_cost;
      if (cont > now) {
        port_free_ = cont;
        schedule_pump(sim, cont);
        return;
      }
    }
  }

  void schedule_pump(Simulation& sim, Tick at) {
    if (pump_pending_) return;
    pump_pending_ = true;
    sim.schedule(at, self_, kPump);
  }

  void try_dispatch(Simulation& sim) {
    while (workers_.any_free() && !ready_queue_.empty()) {
      const TaskId id = ready_queue_.front();
      ready_queue_.pop_front();
      const std::uint32_t w = workers_.claim();
      const Tick start = manager_.dispatch_time(sim) + config_.host_message_cost;
      const Tick end = start + global_[id].duration;
      workers_.occupy(w, sim.now(), end);
      if (config_.schedule_out != nullptr)
        config_.schedule_out->push_back(ScheduleEntry{id, w, start, end});
      sim.schedule(end, self_, kTaskDone, w, id);
    }
  }

  void on_task_done(Simulation& sim, std::uint32_t worker, TaskId id) {
    NEXUS_ASSERT(outstanding_ > 0);
    --outstanding_;
    last_completion_ = sim.now();
    const Tick latency = sim.now() - release_of_[id];
    raw_[tenant_of_[id]].push_back(latency);
    if (m_serving_ != nullptr)
      m_serving_->record(static_cast<std::uint64_t>(latency));

    const Tick free_at =
        manager_.notify_finished(sim, id) + config_.host_message_cost;
    if (free_at == sim.now()) {
      workers_.release(worker);
      try_dispatch(sim);
    } else {
      sim.schedule(free_at, self_, kWorkerFree, worker);
    }
  }

  TaskManagerModel& manager_;
  RuntimeConfig config_;
  Simulation sim_;
  std::uint32_t self_ = 0;

  WorkerPool workers_;
  std::deque<TaskId> ready_queue_;
  std::vector<TaskDescriptor> global_;
  std::vector<TaskId> base_;
  std::vector<Tick> release_of_;
  std::vector<std::uint32_t> tenant_of_;

  std::vector<std::deque<TaskId>> pending_;  ///< released, not yet admitted
  std::vector<bool> held_;                   ///< NACK-held until resume
  std::vector<std::uint64_t> nack_holds_;
  bool port_blocked_ = false;     ///< kSubmitBlocked outstanding
  bool pump_pending_ = false;     ///< a kPump event is queued
  Tick port_free_ = 0;            ///< submission port busy until
  std::uint64_t outstanding_ = 0;
  Tick last_completion_ = 0;

  std::vector<std::vector<Tick>> raw_;  ///< per-tenant serving latencies

  telemetry::Counter* m_offered_ = nullptr;
  telemetry::Counter* m_accepted_ = nullptr;
  telemetry::Histogram* m_admission_wait_ = nullptr;
  telemetry::Histogram* m_serving_ = nullptr;
};

}  // namespace

TenantRunResult run_tenants(const std::vector<TenantStream>& streams,
                            TaskManagerModel& manager,
                            const RuntimeConfig& config) {
  TenantDriver driver(streams, manager, config);
  return driver.run();
}

}  // namespace nexus
