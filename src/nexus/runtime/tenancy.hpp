// Multi-tenant open-loop driver: N per-tenant arrival streams against ONE
// task manager instance.
//
// Extends the Section VI multi-application observation (disjoint address
// spaces let Nexus# manage several apps at once) to a *serving* setting:
// each tenant is an independent open-loop arrival process, all sharing the
// manager's submission port, structures and worker pool. The driver
// understands per-tenant admission backpressure — a kSubmitNacked return
// holds only the offending tenant's stream while the others keep
// submitting — which is what turns the manager's tenancy quotas into
// isolation instead of a shared stall. Per-tenant serving latencies are
// recorded raw so the fairness harness can compute exact means/quantiles.
#pragma once

#include <cstdint>
#include <vector>

#include "nexus/runtime/manager.hpp"
#include "nexus/runtime/simulation_driver.hpp"
#include "nexus/task/trace.hpp"

namespace nexus {

/// One tenant's open-loop submission stream. Local task ids are 0..n-1 in
/// submission order; `release[i]` is local task i's arrival time.
struct TenantStream {
  const Trace* trace = nullptr;
  std::vector<Tick> release;
};

/// Per-tenant outcome of a co-run.
struct TenantLatency {
  std::uint64_t tasks = 0;
  double mean_ps = 0.0;       ///< mean serving latency (release -> finish)
  double p99_ps = 0.0;        ///< exact-rank p99 over `raw`
  Tick max_ps = 0;
  std::uint64_t nack_holds = 0;  ///< times this tenant's stream was NACK-held
  std::vector<Tick> raw;      ///< serving latency per task, completion order
};

struct TenantRunResult {
  Tick makespan = 0;
  std::uint64_t total_tasks = 0;
  std::vector<TenantLatency> tenants;
};

/// Run all tenant streams concurrently on `manager` with `config.workers`
/// cores. Tenant t's addresses are placed into a disjoint 40-bit window
/// (up to 256 tenants) and its descriptors carry TaskDescriptor::tenant = t
/// so a tenancy-configured manager can attribute and police them.
/// The shared submission port serves pending tasks in global arrival
/// order (ties by tenant index) — only a manager NACK lets later arrivals
/// from other tenants overtake a held stream. Deterministic.
TenantRunResult run_tenants(const std::vector<TenantStream>& streams,
                            TaskManagerModel& manager,
                            const RuntimeConfig& config);

}  // namespace nexus
