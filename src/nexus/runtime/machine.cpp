#include "nexus/runtime/machine.hpp"

namespace nexus {

WorkerPool::WorkerPool(std::uint32_t n)
    : busy_until_(n, 0), core_busy_(n, 0), is_free_(n, true) {
  NEXUS_ASSERT_MSG(n > 0, "need at least one worker");
  free_.reserve(n);
  // Claim lowest-numbered workers first (deterministic dispatch order).
  for (std::uint32_t i = n; i > 0; --i) free_.push_back(i - 1);
}

std::uint32_t WorkerPool::claim() {
  NEXUS_ASSERT_MSG(!free_.empty(), "claim with no free worker");
  const std::uint32_t w = free_.back();
  free_.pop_back();
  is_free_[w] = false;
  return w;
}

void WorkerPool::occupy(std::uint32_t w, Tick start, Tick end) {
  NEXUS_ASSERT(w < size() && !is_free_[w]);
  NEXUS_ASSERT(end >= start);
  busy_until_[w] = end;
  core_busy_[w] += end - start;
  total_busy_ += end - start;
}

void WorkerPool::release(std::uint32_t w) {
  NEXUS_ASSERT(w < size() && !is_free_[w]);
  is_free_[w] = true;
  free_.push_back(w);
}

}  // namespace nexus
