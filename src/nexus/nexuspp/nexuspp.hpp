// Cycle-level model of Nexus++, the centralized baseline task manager
// (Section III, Fig. 1).
//
// Pipeline (4-parameter example from the paper, cycle counts asserted in
// tests): Input Parser 4+2p = 12 cycles, Insert 2+4p = 18 cycles,
// Write-Back 3 cycles; a second pipeline handles finished tasks and shares
// the single task-graph table with the insert stage. The Insert stage only
// starts once the whole task has been received — the serialization Nexus#
// removes. `taskwait on` is NOT supported (the paper's reason Nexus++
// cannot speed up h264dec); the driver falls back to a full barrier.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "nexus/hw/dep_counts_table.hpp"
#include "nexus/hw/task_graph_table.hpp"
#include "nexus/hw/task_pool.hpp"
#include "nexus/noc/network.hpp"
#include "nexus/runtime/manager.hpp"
#include "nexus/sim/server.hpp"

namespace nexus {

struct NexusPPConfig {
  double freq_mhz = 100.0;  ///< the paper's test frequency (Table I)
  hw::TableConfig table{};
  /// In-flight task window. The paper does not publish the pool size; 1024
  /// matches the per-TG table capacity (256 sets x 4 ways) and is large
  /// enough that the lookahead window is not the binding constraint on the
  /// paper's workloads (DESIGN.md §4).
  std::size_t pool_capacity = 1024;

  // Fig. 1 pipeline cycle counts.
  std::int64_t header_cycles = 4;     ///< header word + synchronization
  std::int64_t recv_per_param = 2;    ///< 48-bit address = two 32-bit packets
  std::int64_t insert_base = 2;
  std::int64_t insert_per_param = 4;  ///< 18 cycles at 4 params
  std::int64_t writeback_cycles = 3;
  std::int64_t fifo_latency = 3;      ///< inter-stage FIFO visibility delay

  // Finished-task pipeline.
  std::int64_t finish_receive = 2;
  std::int64_t finish_per_param = 4;
  std::int64_t kick_cycles = 2;       ///< per kicked-off waiter update
  std::int64_t chain_hop_cycles = 2;  ///< per dummy-entry hop

  /// Interconnect between the host IO port (node 0) and the single manager
  /// tile (node 1) — the degenerate all-roads-to-one-node case of the
  /// distributed model. The default (ideal at `fifo_latency`) is
  /// bit-identical to the pre-NoC pipeline; ring/mesh serialize every
  /// submission, finish and write-back over the one link pair.
  noc::NocConfig noc{};
};

/// Nexus++ NoC placement (see NexusPPConfig::noc).
constexpr noc::NodeId npp_io_node() { return 0; }
constexpr noc::NodeId npp_manager_node() { return 1; }
constexpr std::uint32_t npp_noc_endpoints() { return 2; }

class NexusPP final : public TaskManagerModel, public Component {
 public:
  explicit NexusPP(const NexusPPConfig& cfg = {});

  // TaskManagerModel
  void attach(Simulation& sim, RuntimeHost* host) override;
  Tick submit(Simulation& sim, const TaskDescriptor& task) override;
  Tick notify_finished(Simulation& sim, TaskId id) override;
  [[nodiscard]] bool supports_taskwait_on() const override { return false; }
  /// Registers pool/table/dep-counts metrics under "nexus++/".
  void bind_telemetry(telemetry::MetricRegistry& reg) override;
  /// Attach a span recorder: dependency-resolution stamps and edges, table
  /// port occupancy spans, pool/dep-count depth counters, NoC flow events.
  void bind_trace(telemetry::TraceRecorder* trace) override;
  void bind_profiler(Simulation& sim) override;
  [[nodiscard]] const char* name() const override { return "nexus++"; }

  // Component
  void handle(Simulation& sim, const Event& ev) override;
  [[nodiscard]] const char* telemetry_label() const override { return "npp"; }

  // --- introspection for tests and analysis benches ---
  struct Stats {
    std::uint64_t tasks_in = 0;
    std::uint64_t ready_out = 0;
    std::uint64_t table_stalls = 0;
    std::uint64_t pool_peak = 0;
    Tick insert_busy = 0;  ///< table-port busy time
  };
  [[nodiscard]] Stats stats() const;
  /// The host<->manager interconnect (see NexusPPConfig::noc).
  [[nodiscard]] const noc::Network& network() const { return *net_; }

 private:
  enum Op : std::uint32_t {
    kInsertArrived = 0,  ///< a = task id
    kFinishArrived = 1,  ///< a = task id
    kPump = 2,
    kReadyDelivered = 3,  ///< a = task id
    kWbArrived = 4,  ///< a = task id: ready record crossed the NoC to the WB
  };

  struct InsertJob {
    TaskId id = kInvalidTask;
    std::size_t next_param = 0;
    std::uint32_t deps = 0;
    Tick started = 0;  ///< table-port acquisition time (trace unit spans)
  };

  [[nodiscard]] Tick cycles(std::int64_t n) const { return clk_.cycles(n); }
  void pump(Simulation& sim);
  /// Continue the active insert; returns true if it completed.
  bool continue_insert(Simulation& sim);
  void process_finish(Simulation& sim, TaskId id);
  void deliver_ready(Simulation& sim, Tick not_before, TaskId id);

  NexusPPConfig cfg_;
  ClockDomain clk_;
  RuntimeHost* host_ = nullptr;
  std::uint32_t self_ = 0;
  std::unique_ptr<noc::Network> net_;

  Server io_;  ///< host interface: submissions and finish notifications
  Server wb_;  ///< write-back stage
  Tick port_free_ = 0;  ///< single-ported task-graph table
  bool pump_pending_ = false;

  hw::TaskPool pool_;
  hw::TaskGraphTable table_;
  hw::DepCountsTable depcounts_;

  std::deque<TaskId> insert_queue_;
  std::deque<TaskId> finish_queue_;
  std::optional<InsertJob> active_insert_;
  bool insert_stalled_ = false;
  bool master_blocked_ = false;

  std::vector<hw::Waiter> kicked_scratch_;
  std::uint64_t tasks_in_ = 0;
  std::uint64_t ready_out_ = 0;
  Tick insert_busy_ = 0;

  telemetry::Counter* m_tasks_in_ = nullptr;
  telemetry::Counter* m_ready_out_ = nullptr;
  telemetry::TraceRecorder* trace_ = nullptr;
};

}  // namespace nexus
