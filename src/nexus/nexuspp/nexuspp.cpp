#include "nexus/nexuspp/nexuspp.hpp"

#include <algorithm>

#include "nexus/telemetry/registry.hpp"
#include "nexus/telemetry/trace.hpp"

namespace nexus {

NexusPP::NexusPP(const NexusPPConfig& cfg)
    : cfg_(cfg), clk_(cfg.freq_mhz), pool_(cfg.pool_capacity), table_(cfg.table) {
  net_ = std::make_unique<noc::Network>(cfg_.noc, npp_noc_endpoints(),
                                        cfg.freq_mhz,
                                        clk_.cycles(cfg.fifo_latency));
}

void NexusPP::bind_telemetry(telemetry::MetricRegistry& reg) {
  pool_.bind_telemetry(reg, "nexus++/pool");
  net_->bind_telemetry(reg, "nexus++/noc");
  table_.bind_telemetry(reg, "nexus++/table");
  depcounts_.bind_telemetry(reg, "nexus++/dep_counts");
  m_tasks_in_ = &reg.counter("nexus++/tasks_in");
  m_ready_out_ = &reg.counter("nexus++/ready_out");
}

void NexusPP::bind_trace(telemetry::TraceRecorder* trace) {
  trace_ = trace;
  pool_.bind_trace(trace, "nexus++/pool");
  depcounts_.bind_trace(trace, "nexus++/dep_counts");
  net_->bind_trace(trace, "nexus++/noc",
                   {"insert", "finish", "pump", "ready", "wb"});
}

void NexusPP::bind_profiler(Simulation& sim) {
  net_->bind_profiler(sim, {"insert", "finish", "pump", "ready", "wb"});
}

void NexusPP::attach(Simulation& sim, RuntimeHost* host) {
  NEXUS_ASSERT(host != nullptr);
  host_ = host;
  self_ = sim.add_component(this);
  net_->attach(sim);  // after self_, keeping the pre-NoC component id
}

Tick NexusPP::submit(Simulation& sim, const TaskDescriptor& task) {
  if (pool_.full()) {
    master_blocked_ = true;
    return kSubmitBlocked;
  }
  ++tasks_in_;
  telemetry::inc(m_tasks_in_);
  pool_.insert(task, sim.now());
  // Input Parser: the whole task must be received before the insert stage
  // sees it (header + two packets per address), then crosses the stage FIFO.
  const Tick recv_done = io_.acquire(
      sim.now(), cycles(cfg_.header_cycles +
                        cfg_.recv_per_param *
                            static_cast<std::int64_t>(task.num_params())));
  // The submission crosses the NoC with its whole parameter list as
  // payload: large-argument tasks occupy the link for more flits.
  net_->send(sim, recv_done, npp_io_node(), npp_manager_node(), self_,
             kInsertArrived, task.id, 0,
             noc::kParamBytes * static_cast<std::uint32_t>(task.num_params()));
  return recv_done;
}

Tick NexusPP::notify_finished(Simulation& sim, TaskId id) {
  // Finish notifications share the host IO port with submissions.
  const Tick recv_done = io_.acquire(sim.now(), cycles(cfg_.finish_receive));
  net_->send(sim, recv_done, npp_io_node(), npp_manager_node(), self_,
             kFinishArrived, id);
  return recv_done;
}

void NexusPP::handle(Simulation& sim, const Event& ev) {
  switch (ev.op) {
    case kInsertArrived:
      insert_queue_.push_back(static_cast<TaskId>(ev.a));
      pump(sim);
      break;
    case kFinishArrived:
      finish_queue_.push_back(static_cast<TaskId>(ev.a));
      pump(sim);
      break;
    case kPump:
      pump_pending_ = false;
      pump(sim);
      break;
    case kReadyDelivered:
      ++ready_out_;
      telemetry::inc(m_ready_out_);
      host_->task_ready(sim, static_cast<TaskId>(ev.a));
      break;
    case kWbArrived: {
      // Non-ideal topologies only: the ready record reached the IO tile;
      // the Write-Back stage serializes from its arrival.
      const Tick done = wb_.acquire(sim.now(), cycles(cfg_.writeback_cycles));
      sim.schedule(done, self_, kReadyDelivered, ev.a);
      break;
    }
    default:
      NEXUS_ASSERT_MSG(false, "unknown NexusPP op");
  }
}

void NexusPP::pump(Simulation& sim) {
  // Single-ported table: serve one work item at a time. Finished tasks have
  // priority (they free resources); a stalled insert parks until a finish
  // frees space in its set.
  const Tick now = sim.now();
  if (now < port_free_) {
    if (!pump_pending_) {
      pump_pending_ = true;
      sim.schedule(port_free_, self_, kPump);
    }
    return;
  }

  if (!finish_queue_.empty()) {
    const TaskId id = finish_queue_.front();
    finish_queue_.pop_front();
    process_finish(sim, id);
    if (!pump_pending_ && port_free_ > now &&
        (!finish_queue_.empty() || active_insert_ || !insert_queue_.empty())) {
      pump_pending_ = true;
      sim.schedule(port_free_, self_, kPump);
    }
    return;
  }

  if (active_insert_ && insert_stalled_) return;  // wait for a finish

  if (!active_insert_ && !insert_queue_.empty()) {
    active_insert_ = InsertJob{insert_queue_.front(), 0, 0, now};
    insert_queue_.pop_front();
    port_free_ = now + cycles(cfg_.insert_base);
    insert_busy_ += cycles(cfg_.insert_base);
  }
  if (active_insert_) {
    if (continue_insert(sim)) {
      active_insert_.reset();
    }
    if (!pump_pending_ && port_free_ > sim.now() &&
        (!insert_queue_.empty() || active_insert_ || !finish_queue_.empty())) {
      pump_pending_ = true;
      sim.schedule(port_free_, self_, kPump);
    }
  }
}

bool NexusPP::continue_insert(Simulation& sim) {
  InsertJob& job = *active_insert_;
  const TaskDescriptor& task = pool_.get(job.id);
  while (job.next_param < task.num_params()) {
    const Param& p = task.params[job.next_param];
    const auto res = table_.insert(p.addr, job.id, is_write(p.dir));
    if (res.kind == hw::TaskGraphTable::InsertKind::kNoSpace) {
      // "The task graph must then wait until one task finishes" (IV-D).
      insert_stalled_ = true;
      return false;
    }
    const Tick step = cycles(cfg_.insert_per_param +
                             cfg_.chain_hop_cycles *
                                 static_cast<std::int64_t>(res.chain_hops));
    port_free_ += step;
    insert_busy_ += step;
    if (res.kind == hw::TaskGraphTable::InsertKind::kQueued) ++job.deps;
    ++job.next_param;
  }
  insert_stalled_ = false;
  if (trace_ != nullptr) {
    trace_->unit_span("npp/table", "insert", job.id, job.started,
                      port_free_ - job.started);
  }
  if (job.deps == 0) {
    deliver_ready(sim, port_free_, job.id);
  } else {
    depcounts_.set(job.id, job.deps, port_free_);
  }
  return true;
}

void NexusPP::process_finish(Simulation& sim, TaskId id) {
  const TaskDescriptor task = pool_.get(id);  // copy: erased below
  kicked_scratch_.clear();
  std::int64_t hop_cycles = 0;
  bool freed_entry = false;
  for (const auto& p : task.params) {
    const auto res = table_.finish(p.addr, id, &kicked_scratch_);
    hop_cycles += res.chain_hops;
    freed_entry |= res.entry_freed;
  }
  const Tick cost =
      cycles(cfg_.finish_per_param * static_cast<std::int64_t>(task.num_params()) +
             cfg_.kick_cycles * static_cast<std::int64_t>(kicked_scratch_.size()) +
             cfg_.chain_hop_cycles * hop_cycles);
  port_free_ = sim.now() + cost;
  insert_busy_ += cost;
  if (trace_ != nullptr) {
    trace_->unit_span("npp/table", "finish", id, sim.now(), cost);
    for (const auto& w : kicked_scratch_) trace_->on_dep(id, w.task, port_free_);
  }

  for (const auto& w : kicked_scratch_) {
    // A kicked waiter can belong to the in-flight (possibly stalled) insert
    // whose total has not been parked in the dep-counts table yet; its
    // running tally absorbs the decrement (the "simultaneous" case Nexus#
    // handles with the Sim-Tasks buffer).
    if (active_insert_ && active_insert_->id == w.task) {
      NEXUS_ASSERT(active_insert_->deps > 0);
      --active_insert_->deps;
      continue;
    }
    if (depcounts_.decrement(w.task, port_free_))
      deliver_ready(sim, port_free_, w.task);
  }
  pool_.erase(id, sim.now());

  if (freed_entry && insert_stalled_) insert_stalled_ = false;
  if (master_blocked_) {
    master_blocked_ = false;
    host_->master_resume(sim);
  }
}

void NexusPP::deliver_ready(Simulation& sim, Tick not_before, TaskId id) {
  if (trace_ != nullptr) trace_->on_resolved(id, not_before);
  if (net_->ideal()) {
    // Write-Back: 3 cycles per ready task through the output FIFO. Kept as
    // the synchronous legacy path so the default config stays bit-identical
    // (the WB server is acquired in call order, not record-arrival order).
    const Tick wb_start =
        std::max(not_before + cycles(cfg_.fifo_latency), sim.now());
    const Tick done = wb_.acquire(wb_start, cycles(cfg_.writeback_cycles));
    sim.schedule(done, self_, kReadyDelivered, id);
    return;
  }
  // The output FIFO crossing becomes a manager-tile -> IO-tile traversal
  // (ready id + function pointer, one parameter-sized payload); the WB
  // stage serializes records in their arrival order (kWbArrived).
  net_->send(sim, not_before, npp_manager_node(), npp_io_node(), self_,
             kWbArrived, id, 0, noc::kParamBytes);
}

NexusPP::Stats NexusPP::stats() const {
  Stats s;
  s.tasks_in = tasks_in_;
  s.ready_out = ready_out_;
  s.table_stalls = table_.total_stalls();
  s.pool_peak = pool_.peak();
  s.insert_busy = insert_busy_;
  return s;
}

}  // namespace nexus
