#include "nexus/telemetry/trace.hpp"

#include <algorithm>

#include "nexus/common/assert.hpp"

namespace nexus::telemetry {

const TaskSpan* TraceData::find(std::uint64_t task) const {
  const auto it = std::lower_bound(
      tasks.begin(), tasks.end(), task,
      [](const TaskSpan& s, std::uint64_t id) { return s.task < id; });
  return it != tasks.end() && it->task == task ? &*it : nullptr;
}

std::uint64_t TraceData::delivered_flits(std::string_view net) const {
  std::uint64_t flits = 0;
  for (const NocMessage& m : messages)
    if (m.arrive >= 0 && str(m.net) == net) flits += m.flits;
  return flits;
}

TaskSpan& TraceRecorder::span(std::uint64_t task) {
  const auto [it, fresh] =
      task_ix_.emplace(task, static_cast<std::uint32_t>(tasks_.size()));
  if (fresh) {
    tasks_.emplace_back();
    tasks_.back().task = task;
  }
  return tasks_[it->second];
}

std::uint32_t TraceRecorder::intern(std::string_view s) {
  const auto it = string_ix_.find(s);
  if (it != string_ix_.end()) return it->second;
  const auto ix = static_cast<std::uint32_t>(strings_.size());
  strings_.emplace_back(s);
  string_ix_.emplace(strings_.back(), ix);
  return ix;
}

void TraceRecorder::on_submit(std::uint64_t task, TraceTick t) {
  TaskSpan& s = span(task);
  if (s.submit < 0) s.submit = t;  // first attempt wins under backpressure
}

void TraceRecorder::on_accepted(std::uint64_t task, TraceTick t) {
  span(task).accepted = t;
}

void TraceRecorder::on_resolved(std::uint64_t task, TraceTick t) {
  span(task).resolved = t;
}

void TraceRecorder::on_ready(std::uint64_t task, TraceTick t) {
  span(task).ready = t;
}

void TraceRecorder::on_dispatch(std::uint64_t task, TraceTick t,
                                std::int32_t worker) {
  TaskSpan& s = span(task);
  s.dispatch = t;
  s.worker = worker;
}

void TraceRecorder::on_exec(std::uint64_t task, TraceTick start,
                            TraceTick end) {
  TaskSpan& s = span(task);
  s.exec_start = start;
  s.exec_end = end;
}

void TraceRecorder::on_freed(std::uint64_t task, TraceTick t) {
  span(task).freed = t;
}

void TraceRecorder::on_dep(std::uint64_t producer, std::uint64_t consumer,
                           TraceTick t) {
  deps_.push_back({producer, consumer, t});
}

std::uint32_t TraceRecorder::noc_send(std::string_view net, std::uint32_t src,
                                      std::uint32_t dst, std::string_view op,
                                      std::uint32_t flits, TraceTick depart) {
  NocMessage m;
  m.net = intern(net);
  m.src = src;
  m.dst = dst;
  m.op = intern(op);
  m.flits = flits;
  m.depart = depart;
  messages_.push_back(m);
  return static_cast<std::uint32_t>(messages_.size() - 1);
}

void TraceRecorder::noc_link(std::uint32_t msg, std::string_view link,
                             TraceTick start, TraceTick dur) {
  NEXUS_ASSERT(msg < messages_.size());
  link_spans_.push_back({msg, intern(link), start, dur});
}

void TraceRecorder::noc_deliver(std::uint32_t msg, TraceTick arrive) {
  NEXUS_ASSERT(msg < messages_.size());
  messages_[msg].arrive = arrive;
}

void TraceRecorder::unit_span(std::string_view unit, std::string_view what,
                              std::uint64_t task, TraceTick start,
                              TraceTick dur) {
  unit_spans_.push_back({intern(unit), intern(what), task, start, dur});
}

void TraceRecorder::counter(std::string_view track, TraceTick t,
                            std::int64_t v) {
  counters_.push_back({intern(track), t, v});
}

TraceData TraceRecorder::freeze() const {
  TraceData d;
  d.tasks = tasks_;
  std::sort(d.tasks.begin(), d.tasks.end(),
            [](const TaskSpan& a, const TaskSpan& b) { return a.task < b.task; });
  d.deps = deps_;
  d.messages = messages_;
  d.link_spans = link_spans_;
  d.unit_spans = unit_spans_;
  d.counters = counters_;
  d.strings = strings_;
  d.makespan = makespan_;
  return d;
}

}  // namespace nexus::telemetry
