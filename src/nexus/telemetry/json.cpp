#include "nexus/telemetry/json.hpp"

#include <cerrno>
#include <cstdlib>

namespace nexus::telemetry {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  const JsonValue* hit = nullptr;
  for (const auto& [k, v] : object)
    if (k == key) hit = &v;  // duplicates keep the last, like most readers
  return hit;
}

double JsonValue::num_or(double dflt) const {
  return type == Type::kNumber ? number : dflt;
}

std::int64_t JsonValue::int_or(std::int64_t dflt) const {
  if (type != Type::kNumber) return dflt;
  if (is_integer) return integer;
  // Saturate doubles outside the int64 range instead of hitting the UB
  // float->int cast: a 1e23 "makespan" must stay astronomically large, not
  // wrap to INT64_MIN and read as an improvement downstream.
  constexpr double kMax = 9223372036854775808.0;  // 2^63
  if (number >= kMax) return INT64_MAX;
  if (number <= -kMax) return INT64_MIN;
  return static_cast<std::int64_t>(number);
}

std::string JsonValue::str_or(std::string dflt) const {
  return type == Type::kString ? str : std::move(dflt);
}

namespace {

constexpr int kMaxDepth = 64;  ///< recursion guard for adversarial inputs

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool parse_document(JsonValue* out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after document");
    return true;
  }

 private:
  bool fail(const std::string& msg) {
    if (error_ != nullptr)
      *error_ = msg + " (at byte " + std::to_string(pos_) + ")";
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool consume(char expected, const char* what) {
    if (at_end() || text_[pos_] != expected)
      return fail(std::string("expected ") + what);
    ++pos_;
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      return fail("unrecognized literal");
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (at_end()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': {
        out->type = JsonValue::Type::kString;
        return parse_string(&out->str);
      }
      case 't':
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return literal("true");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return literal("false");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (at_end() || peek() != '"') return fail("expected object key string");
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!consume(':', "':' after object key")) return false;
      skip_ws();
      JsonValue v;
      if (!parse_value(&v, depth + 1)) return false;
      out->object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (at_end()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      return consume('}', "',' or '}' in object");
    }
  }

  bool parse_array(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue v;
      if (!parse_value(&v, depth + 1)) return false;
      out->array.push_back(std::move(v));
      skip_ws();
      if (at_end()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      return consume(']', "',' or ']' in array");
    }
  }

  bool parse_string(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (true) {
      if (at_end()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("unescaped control character in string");
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (at_end()) return fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned int code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad hex digit in \\u escape");
          }
          // The writer only emits \u00XX for control bytes; decode the
          // basic-multilingual-plane scalar as UTF-8. Surrogates would need
          // pairing logic and can only come from foreign producers — stay
          // strict and reject them rather than emit invalid CESU-8.
          if (code >= 0xD800 && code <= 0xDFFF)
            return fail("surrogate \\u escapes are not supported");
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return fail("unknown escape character");
      }
    }
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    bool digits = false;
    bool fractional = false;
    while (!at_end()) {
      const char c = peek();
      if (c >= '0' && c <= '9') {
        digits = true;
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        fractional = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (!digits) {
      pos_ = start;
      return fail("invalid number");
    }
    const std::string token(text_.substr(start, pos_ - start));
    out->type = JsonValue::Type::kNumber;
    errno = 0;
    char* end = nullptr;
    out->number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || errno == ERANGE) {
      pos_ = start;
      return fail("malformed number");
    }
    if (!fractional) {
      errno = 0;
      const long long ll = std::strtoll(token.c_str(), &end, 10);
      if (end == token.c_str() + token.size() && errno != ERANGE) {
        out->integer = ll;
        out->is_integer = true;
      }
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string* error_;
};

}  // namespace

bool json_parse(std::string_view text, JsonValue* out, std::string* error) {
  *out = JsonValue{};
  return Parser(text, error).parse_document(out);
}

}  // namespace nexus::telemetry
