// A Snapshot is the frozen, self-contained state of a MetricRegistry:
// plain data sorted by path, safe to keep after the registry (and the run
// that produced it) is gone. Sweeps attach one per point; exporters consume
// it without touching live metrics.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "nexus/telemetry/metrics.hpp"

namespace nexus::telemetry {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

const char* to_string(MetricKind k);

struct HistogramData {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  /// Nonzero buckets only: (bucket index, count), ascending by index.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;

  /// Interpolated quantile, identical semantics to Histogram::quantile.
  [[nodiscard]] double quantile(double q) const {
    if (count == 0) return 0.0;
    if (q <= 0.0) return static_cast<double>(min);
    if (q >= 1.0) return static_cast<double>(max);
    const double target = q * static_cast<double>(count);
    std::uint64_t below = 0;
    for (const auto& [index, n] : buckets) {
      if (static_cast<double>(below + n) >= target) {
        const double frac =
            (target - static_cast<double>(below)) / static_cast<double>(n);
        return detail::interpolate_pow2_bucket(index, frac, min, max);
      }
      below += n;
    }
    return static_cast<double>(max);
  }

  [[nodiscard]] double p50() const { return quantile(0.50); }
  [[nodiscard]] double p95() const { return quantile(0.95); }
  [[nodiscard]] double p99() const { return quantile(0.99); }
  [[nodiscard]] double p999() const { return quantile(0.999); }
};

struct MetricValue {
  std::string path;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t counter = 0;  ///< kCounter
  std::int64_t gauge = 0;     ///< kGauge
  HistogramData hist;         ///< kHistogram
};

struct Snapshot {
  std::vector<MetricValue> values;  ///< sorted by path

  /// Lookup by exact path; nullptr if absent.
  [[nodiscard]] const MetricValue* find(std::string_view path) const {
    for (const auto& v : values)
      if (v.path == path) return &v;
    return nullptr;
  }

  /// Counter value at `path` (0 if absent — convenient for reports).
  [[nodiscard]] std::uint64_t counter_at(std::string_view path) const {
    const MetricValue* v = find(path);
    return v != nullptr && v->kind == MetricKind::kCounter ? v->counter : 0;
  }

  /// Gauge value at `path` (0 if absent).
  [[nodiscard]] std::int64_t gauge_at(std::string_view path) const {
    const MetricValue* v = find(path);
    return v != nullptr && v->kind == MetricKind::kGauge ? v->gauge : 0;
  }
};

}  // namespace nexus::telemetry
