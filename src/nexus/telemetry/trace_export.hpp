// Chrome trace-event export for frozen TraceData.
//
// Produces a JSON document loadable by Perfetto (ui.perfetto.dev) and
// chrome://tracing: "X" slices on per-core, per-manager-unit and per-NoC-
// link tracks, async begin/end chains for each task's lifecycle phases,
// flow arrows for dependency kicks and multi-hop NoC messages, and "C"
// counter tracks for occupancy samples. Timestamps are microseconds
// (sim ps / 1e6); events are emitted sorted by timestamp. The critical-
// path attribution rides along under otherData so scripts/validate_trace.py
// can check phase sums == makespan without re-deriving the walk.
#pragma once

#include <string>

#include "nexus/telemetry/trace.hpp"

namespace nexus::telemetry {

/// Whole Chrome trace-event document (object form, "traceEvents" array).
[[nodiscard]] std::string chrome_trace_json(const TraceData& trace);

}  // namespace nexus::telemetry
