#include "nexus/telemetry/profile_export.hpp"

#include <algorithm>
#include <cstdio>

#include "nexus/telemetry/writers.hpp"

namespace nexus::telemetry {

namespace {

void append_node(JsonWriter& w, const ProfileData& data, std::uint32_t ix) {
  const ProfileNode& nd = data.nodes[ix];
  w.begin_object();
  w.kv("name", nd.name);
  w.kv("self_ns", nd.self_ns);
  w.kv("total_ns", nd.total_ns);
  w.kv("count", nd.count);
  if (nd.max != 0) w.kv("max", nd.max);
  if (!nd.children.empty()) {
    w.key("children").begin_array();
    for (std::uint32_t kid : nd.children) append_node(w, data, kid);
    w.end_array();
  }
  w.end_object();
}

void collect_collapsed(const ProfileData& data, std::uint32_t ix,
                       std::string& out) {
  const ProfileNode& nd = data.nodes[ix];
  if (nd.self_ns > 0) {
    out += data.path_of(ix);
    out += ' ';
    out += std::to_string(nd.self_ns);
    out += '\n';
  }
  for (std::uint32_t kid : nd.children) collect_collapsed(data, kid, out);
}

}  // namespace

void append_profile(JsonWriter& w, const ProfileData& data,
                    std::uint64_t measured_wall_ns) {
  w.begin_object();
  w.kv("schema", 1);
  w.kv("unit", "ns");
  w.kv("wall_ns", measured_wall_ns);
  w.kv("profile_wall_ns", data.wall_ns);
  w.kv("ns_per_tick", data.ns_per_tick);
  w.key("tree");
  if (data.nodes.empty()) {
    w.begin_object().end_object();
  } else {
    append_node(w, data, 0);
  }
  w.end_object();
}

std::string profile_json(const ProfileData& data,
                         std::uint64_t measured_wall_ns) {
  JsonWriter w;
  append_profile(w, data, measured_wall_ns);
  return w.str();
}

std::string profile_collapsed(const ProfileData& data) {
  std::string out;
  if (!data.nodes.empty()) collect_collapsed(data, 0, out);
  return out;
}

std::vector<ProfileTopEntry> profile_top(const ProfileData& data,
                                         std::size_t n) {
  std::vector<ProfileTopEntry> rows;
  if (data.nodes.empty()) return rows;
  const double root_total =
      data.nodes[0].total_ns > 0
          ? static_cast<double>(data.nodes[0].total_ns)
          : 1.0;
  for (std::uint32_t i = 0; i < data.nodes.size(); ++i) {
    const ProfileNode& nd = data.nodes[i];
    if (nd.self_ns == 0) continue;
    rows.push_back(ProfileTopEntry{
        .path = data.path_of(i),
        .self_ns = nd.self_ns,
        .count = nd.count,
        .pct = 100.0 * static_cast<double>(nd.self_ns) / root_total,
    });
  }
  std::sort(rows.begin(), rows.end(),
            [](const ProfileTopEntry& a, const ProfileTopEntry& b) {
              if (a.self_ns != b.self_ns) return a.self_ns > b.self_ns;
              return a.path < b.path;
            });
  if (rows.size() > n) rows.resize(n);
  return rows;
}

std::string profile_top_table(const ProfileData& data, std::size_t n) {
  const auto rows = profile_top(data, n);
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%12s %7s %10s  %s\n", "self_ns", "pct",
                "count", "path");
  out += buf;
  for (const ProfileTopEntry& r : rows) {
    std::snprintf(buf, sizeof(buf), "%12llu %6.2f%% %10llu  %s\n",
                  static_cast<unsigned long long>(r.self_ns), r.pct,
                  static_cast<unsigned long long>(r.count), r.path.c_str());
    out += buf;
  }
  return out;
}

}  // namespace nexus::telemetry
