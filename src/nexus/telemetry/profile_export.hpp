// Exporters for frozen host-side profiles (telemetry::Profiler).
//
// Three consumers, three formats: `profile_json` is the schema'd
// machine-readable tree (validated by scripts/validate_profile.py),
// `profile_collapsed` is the speedscope/FlameGraph collapsed-stack dialect
// ("a;b;c self_ns" per line — https://www.speedscope.app imports it
// directly), and `profile_top` ranks nodes by self time for terminal
// tables (nexus-prof, simspeed --prof).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nexus/telemetry/profiler.hpp"

namespace nexus::telemetry {

/// Profile as a schema'd JSON document:
///   {"schema":1,"unit":"ns","wall_ns":<measured>,"profile_wall_ns":...,
///    "tree":{"name","self_ns","total_ns","count","max","children":[...]}}
/// `measured_wall_ns` is the caller's independent wall-clock measurement of
/// the profiled region (0 = unknown); the validator reconciles the root
/// total against it. Children appear in the frozen (name-sorted) order, so
/// the document is deterministic in shape.
std::string profile_json(const ProfileData& data,
                         std::uint64_t measured_wall_ns = 0);

/// Same tree as an object *value* appended into an open JsonWriter
/// document (after a key() or inside an array).
class JsonWriter;
void append_profile(JsonWriter& w, const ProfileData& data,
                    std::uint64_t measured_wall_ns = 0);

/// Collapsed-stack / FlameGraph format: one "all;path;to;node <self_ns>"
/// line per node with nonzero self time, root first, depth-first in
/// name-sorted order.
std::string profile_collapsed(const ProfileData& data);

/// One row of the self-time ranking.
struct ProfileTopEntry {
  std::string path;          ///< ';'-joined from the root
  std::uint64_t self_ns = 0;
  std::uint64_t count = 0;
  double pct = 0.0;          ///< share of the root total
};

/// Nodes ranked by self time, descending (ties broken by path for
/// determinism), at most `n` entries, zero-self nodes skipped.
std::vector<ProfileTopEntry> profile_top(const ProfileData& data,
                                         std::size_t n);

/// The ranking rendered as an aligned text table (nexus-prof's default
/// output).
std::string profile_top_table(const ProfileData& data, std::size_t n);

}  // namespace nexus::telemetry
