#include "nexus/telemetry/writers.hpp"

#include <cstdio>

#include "nexus/common/assert.hpp"
#include "nexus/telemetry/metrics.hpp"

namespace nexus::telemetry {

namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

std::string fmt_u64(std::uint64_t v) { return std::to_string(v); }

}  // namespace

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (needs_comma_.empty()) return;
  if (needs_comma_.back()) out_.push_back(',');
  needs_comma_.back() = true;
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_.push_back('{');
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  NEXUS_ASSERT_MSG(!needs_comma_.empty(), "end_object without begin");
  needs_comma_.pop_back();
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_.push_back('[');
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  NEXUS_ASSERT_MSG(!needs_comma_.empty(), "end_array without begin");
  needs_comma_.pop_back();
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  comma();
  out_.push_back('"');
  out_.append(escape(k));
  out_.append("\":");
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma();
  out_.push_back('"');
  out_.append(escape(v));
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_.append(std::to_string(v));
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_.append(std::to_string(v));
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  out_.append(fmt_double(v));
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_.append(v ? "true" : "false");
  return *this;
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out.append("\\\""); break;
      case '\\': out.append("\\\\"); break;
      case '\n': out.append("\\n"); break;
      case '\r': out.append("\\r"); break;
      case '\t': out.append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out.append(buf);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// CsvWriter
// ---------------------------------------------------------------------------

CsvWriter::CsvWriter(std::vector<std::string> header) : arity_(header.size()) {
  NEXUS_ASSERT_MSG(arity_ > 0, "CSV needs at least one column");
  emit_row(header);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  NEXUS_ASSERT_MSG(cells.size() == arity_, "CSV row arity mismatch");
  emit_row(cells);
}

void CsvWriter::emit_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_.push_back(',');
    out_.append(escape(cells[i]));
  }
  out_.push_back('\n');
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

// ---------------------------------------------------------------------------
// Snapshot serialization
// ---------------------------------------------------------------------------

void append_snapshot(JsonWriter& w, const Snapshot& snap) {
  w.begin_object();
  for (const auto& v : snap.values) {
    w.key(v.path);
    switch (v.kind) {
      case MetricKind::kCounter:
        w.value(v.counter);
        break;
      case MetricKind::kGauge:
        w.value(v.gauge);
        break;
      case MetricKind::kHistogram: {
        const HistogramData& h = v.hist;
        w.begin_object();
        w.kv("count", h.count);
        w.kv("sum", h.sum);
        w.kv("min", h.min);
        w.kv("max", h.max);
        w.kv("mean", h.count > 0 ? static_cast<double>(h.sum) /
                                       static_cast<double>(h.count)
                                 : 0.0);
        w.kv("p50", h.p50());
        w.kv("p95", h.p95());
        w.kv("p99", h.p99());
        w.kv("p999", h.p999());
        w.key("buckets").begin_object();
        for (const auto& [idx, n] : h.buckets)
          w.kv(fmt_u64(Histogram::bucket_floor(idx)), n);
        w.end_object();
        w.end_object();
        break;
      }
    }
  }
  w.end_object();
}

std::string snapshot_json(const Snapshot& snap) {
  JsonWriter w;
  append_snapshot(w, snap);
  return w.str();
}

std::string snapshot_csv(const Snapshot& snap) {
  CsvWriter w({"path", "kind", "value", "count", "sum", "min", "max", "mean"});
  for (const auto& v : snap.values) {
    switch (v.kind) {
      case MetricKind::kCounter:
        w.row({v.path, "counter", fmt_u64(v.counter), "", "", "", "", ""});
        break;
      case MetricKind::kGauge:
        w.row({v.path, "gauge", std::to_string(v.gauge), "", "", "", "", ""});
        break;
      case MetricKind::kHistogram: {
        const HistogramData& h = v.hist;
        const double mean =
            h.count > 0
                ? static_cast<double>(h.sum) / static_cast<double>(h.count)
                : 0.0;
        w.row({v.path, "histogram", "", fmt_u64(h.count), fmt_u64(h.sum),
               fmt_u64(h.min), fmt_u64(h.max), fmt_double(mean)});
        break;
      }
    }
  }
  return w.str();
}

std::string format_tree(const Snapshot& snap) {
  std::string out;
  std::vector<std::string_view> prev;
  for (const auto& v : snap.values) {
    // Split the path into components.
    std::vector<std::string_view> parts;
    std::string_view rest = v.path;
    for (std::size_t pos = rest.find('/'); pos != std::string_view::npos;
         pos = rest.find('/')) {
      parts.push_back(rest.substr(0, pos));
      rest.remove_prefix(pos + 1);
    }
    parts.push_back(rest);

    // Print unseen directory levels (snapshot order is sorted, so shared
    // prefixes were printed by an earlier line).
    std::size_t common = 0;
    while (common + 1 < parts.size() && common < prev.size() &&
           parts[common] == prev[common])
      ++common;
    for (std::size_t d = common; d + 1 < parts.size(); ++d) {
      out.append(2 * d, ' ');
      out.append(parts[d]);
      out.push_back('\n');
    }

    // Leaf line: name, kind, value summary.
    const std::size_t depth = parts.size() - 1;
    std::string line(2 * depth, ' ');
    line.append(parts.back());
    if (line.size() < 44) line.append(44 - line.size(), ' ');
    line.push_back(' ');
    switch (v.kind) {
      case MetricKind::kCounter:
        line.append("counter    ").append(fmt_u64(v.counter));
        break;
      case MetricKind::kGauge:
        line.append("gauge      ").append(std::to_string(v.gauge));
        break;
      case MetricKind::kHistogram: {
        const HistogramData& h = v.hist;
        const double mean =
            h.count > 0
                ? static_cast<double>(h.sum) / static_cast<double>(h.count)
                : 0.0;
        line.append("histogram  count=").append(fmt_u64(h.count));
        line.append(" mean=").append(fmt_double(mean));
        line.append(" min=").append(fmt_u64(h.min));
        line.append(" max=").append(fmt_u64(h.max));
        line.append(" |");
        for (const auto& [idx, n] : h.buckets) {
          line.push_back(' ');
          line.append(fmt_u64(Histogram::bucket_floor(idx)));
          line.push_back(':');
          line.append(fmt_u64(n));
        }
        break;
      }
    }
    out.append(line);
    out.push_back('\n');

    prev.assign(parts.begin(), parts.end());
  }
  return out;
}

bool write_text_file(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = n == content.size() && std::fclose(f) == 0;
  if (n != content.size()) std::fclose(f);
  return ok;
}

}  // namespace nexus::telemetry
