// Sim-time metric timelines: a registry-attached sampler that turns live
// metrics into compact (time, value) series.
//
// A TimelineRecorder re-scans its MetricRegistry on every sample, so metrics
// registered lazily mid-run still show up (their series are zero-padded back
// to the first sample row, keeping every series aligned with the shared time
// axis). Sampling is driven by the DES kernel (Simulation::set_sampler):
// rows land on a fixed sim-time grid, recorded *before* the event that
// crosses each grid point executes. The recorder never schedules events or
// mutates metrics, so attaching a timeline cannot perturb a run — simulated
// makespans are bit-identical with and without one (a tested contract).
//
// Memory stays bounded through deterministic auto-coarsening: when the row
// count would exceed `max_points`, every other row is dropped and the
// sampling interval doubles, so one configuration covers microsecond and
// multi-second makespans alike.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "nexus/telemetry/snapshot.hpp"

namespace nexus::telemetry {

/// Sim-time picoseconds. Telemetry sits below the sim layer, so this is a
/// plain integer here; it is layout-identical to nexus::Tick.
using TimeTick = std::int64_t;

class MetricRegistry;

/// Glob match for metric paths. `*` matches any run of characters within
/// one '/'-separated segment, `**` matches across segments, `?` matches a
/// single non-'/' character; everything else is literal.
bool path_glob_match(std::string_view pattern, std::string_view path);

/// True if `path` matches any selector (an empty selector list selects all).
bool selectors_match(const std::vector<std::string>& selectors,
                     std::string_view path);

struct TimelineConfig {
  /// Initial sampling period in sim-time picoseconds. Doubles on coarsening.
  TimeTick interval_ps = 100'000'000;  // 100 us

  /// Glob selectors over metric paths; empty selects every metric.
  std::vector<std::string> select;

  /// Row-count cap: one more row than this triggers coarsening (drop every
  /// other row, double the interval). Must be >= 2.
  std::size_t max_points = 1024;
};

/// One sampled series. Histogram metrics are split into two monotone
/// series, "<path>:count" and "<path>:sum" (windowed mean is their ratio of
/// deltas), reported with kind kCounter; the ':' cannot appear ambiguously
/// because registry paths never contain it.
struct TimelineSeries {
  std::string path;
  MetricKind kind = MetricKind::kCounter;
  /// One value per Timeline::t entry. Counter/histogram values are stored
  /// raw (absolute); encoding happens at export time.
  std::vector<std::int64_t> v;
};

/// A frozen timeline: self-contained plain data, safe to keep after the
/// recorder and the run are gone (mirrors Snapshot for end-of-run state).
struct Timeline {
  TimeTick interval = 0;  ///< final (post-coarsening) sampling period
  std::vector<TimeTick> t;  ///< shared time axis, strictly increasing
  std::vector<TimelineSeries> series;  ///< sorted by path

  [[nodiscard]] const TimelineSeries* find(std::string_view path) const;
};

class TimelineRecorder {
 public:
  /// The registry must outlive the recorder. Reading starts immediately;
  /// metrics appearing later are back-filled with zeros.
  explicit TimelineRecorder(const MetricRegistry& reg, TimelineConfig cfg = {});

  /// Record every pending grid point <= t. The DES kernel calls this with
  /// each event's timestamp before dispatching it.
  void sample_until(TimeTick t);

  /// Mark every grid point <= t as unobserved (time rows with no values):
  /// a recorder attached mid-run never saw the metric state at those
  /// points, so they must export as zeros, not as fabricated history
  /// copied from the attach-time values. Series appearing at the first
  /// real sample are back-filled over the skipped rows by the usual
  /// late-metric zero-padding. Only valid before the first recorded row.
  void skip_until(TimeTick t);

  /// Record one final off-grid row at `t` (end of run), if `t` is past the
  /// last recorded row.
  void finish(TimeTick t);

  [[nodiscard]] TimeTick interval() const { return interval_; }
  [[nodiscard]] std::size_t rows() const { return times_.size(); }

  /// Deep-copy the collected series, sorted by path.
  [[nodiscard]] Timeline freeze() const;

 private:
  void record_row(TimeTick t);
  void coarsen();

  const MetricRegistry& reg_;
  TimelineConfig cfg_;
  TimeTick interval_;
  TimeTick next_t_ = 0;
  std::vector<TimeTick> times_;
  /// path -> index into series_; map keeps freeze() path-sorted.
  std::map<std::string, std::size_t, std::less<>> index_;
  std::vector<TimelineSeries> series_;
};

/// First element absolute, each following element the difference from its
/// predecessor. Empty input round-trips to empty output.
std::vector<std::int64_t> delta_encode(const std::vector<std::int64_t>& v);
std::vector<std::int64_t> delta_decode(const std::vector<std::int64_t>& v);

class JsonWriter;

/// Append a timeline as an object value into an open JSON document:
///   {"interval_ps": N, "points": M, "encoding": "delta"|"raw",
///    "t": [...], "series": {path: {"kind": k, "v": [...]}, ...}}
/// With delta encoding, "t" and every counter-kind series store
/// [first, diff, diff, ...]; gauge series are always raw.
void append_timeline(JsonWriter& w, const Timeline& tl, bool delta = true);

/// The same object as a standalone JSON document.
std::string timeline_json(const Timeline& tl, bool delta = true);

/// Columnar CSV: header "t_ps,<path>,<path>,...", one row per sample (raw
/// values, no delta encoding).
std::string timeline_csv(const Timeline& tl);

}  // namespace nexus::telemetry
