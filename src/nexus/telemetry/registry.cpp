#include "nexus/telemetry/registry.hpp"

#include "nexus/common/assert.hpp"

namespace nexus::telemetry {

const char* to_string(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

std::string path_join(std::string_view prefix, std::string_view name) {
  if (prefix.empty()) return std::string(name);
  if (name.empty()) return std::string(prefix);
  std::string out;
  out.reserve(prefix.size() + 1 + name.size());
  out.append(prefix);
  out.push_back('/');
  out.append(name);
  return out;
}

std::string indexed_path(std::string_view stem, std::uint32_t index,
                         std::uint32_t count) {
  NEXUS_ASSERT_MSG(count == 0 || index < count,
                   "indexed_path index out of range");
  std::uint32_t width = 1;
  for (std::uint32_t max = count > 0 ? count - 1 : 0; max >= 10; max /= 10)
    ++width;
  const std::string digits = std::to_string(index);
  std::string out(stem);
  if (digits.size() < width) out.append(width - digits.size(), '0');
  out.append(digits);
  return out;
}

MetricRegistry::Slot& MetricRegistry::slot_for(std::string_view path,
                                               MetricKind kind) {
  NEXUS_ASSERT_MSG(!path.empty(), "metric path must be non-empty");
  NEXUS_ASSERT_MSG(path.front() != '/' && path.back() != '/',
                   "metric path must not start or end with '/'");
  const auto it = slots_.find(path);
  if (it != slots_.end()) {
    NEXUS_ASSERT_MSG(it->second.kind == kind,
                     "metric path re-registered with a different kind");
    return it->second;
  }
  Slot s;
  s.kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      s.index = static_cast<std::uint32_t>(counters_.size());
      counters_.emplace_back();
      break;
    case MetricKind::kGauge:
      s.index = static_cast<std::uint32_t>(gauges_.size());
      gauges_.emplace_back();
      break;
    case MetricKind::kHistogram:
      s.index = static_cast<std::uint32_t>(histograms_.size());
      histograms_.emplace_back();
      break;
  }
  return slots_.emplace(std::string(path), s).first->second;
}

Counter& MetricRegistry::counter(std::string_view path) {
  return counters_[slot_for(path, MetricKind::kCounter).index];
}

Gauge& MetricRegistry::gauge(std::string_view path) {
  return gauges_[slot_for(path, MetricKind::kGauge).index];
}

Histogram& MetricRegistry::histogram(std::string_view path) {
  return histograms_[slot_for(path, MetricKind::kHistogram).index];
}

void MetricRegistry::visit(MetricVisitor& v) const {
  for (const auto& [path, slot] : slots_) {
    switch (slot.kind) {
      case MetricKind::kCounter:
        v.on_counter(path, counters_[slot.index]);
        break;
      case MetricKind::kGauge:
        v.on_gauge(path, gauges_[slot.index]);
        break;
      case MetricKind::kHistogram:
        v.on_histogram(path, histograms_[slot.index]);
        break;
    }
  }
}

Snapshot MetricRegistry::snapshot() const {
  Snapshot snap;
  snap.values.reserve(slots_.size());
  for (const auto& [path, slot] : slots_) {
    MetricValue v;
    v.path = path;
    v.kind = slot.kind;
    switch (slot.kind) {
      case MetricKind::kCounter:
        v.counter = counters_[slot.index].value();
        break;
      case MetricKind::kGauge:
        v.gauge = gauges_[slot.index].value();
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = histograms_[slot.index];
        v.hist.count = h.count();
        v.hist.sum = h.sum();
        v.hist.min = h.min();
        v.hist.max = h.max();
        for (std::uint32_t i = 0; i < Histogram::kBuckets; ++i)
          if (h.bucket(i) > 0) v.hist.buckets.emplace_back(i, h.bucket(i));
        break;
      }
    }
    snap.values.push_back(std::move(v));
  }
  return snap;
}

}  // namespace nexus::telemetry
