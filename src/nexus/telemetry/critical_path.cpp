#include "nexus/telemetry/critical_path.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "nexus/common/assert.hpp"

namespace nexus::telemetry {

const char* to_string(PathPhase p) {
  switch (p) {
    case PathPhase::kMaster: return "master";
    case PathPhase::kIngest: return "ingest";
    case PathPhase::kDepWait: return "dep_wait";
    case PathPhase::kDepResolve: return "dep_resolve";
    case PathPhase::kWriteback: return "writeback";
    case PathPhase::kQueueWait: return "queue_wait";
    case PathPhase::kDispatch: return "dispatch";
    case PathPhase::kExecute: return "execute";
    case PathPhase::kMasterTail: return "master_tail";
  }
  return "?";
}

TraceTick CriticalPathReport::total(PathPhase p) const {
  TraceTick sum = 0;
  for (const PathSegment& s : segments)
    if (s.phase == p) sum += s.dur();
  return sum;
}

CriticalPathReport critical_path(const TraceData& trace) {
  NEXUS_ASSERT_MSG(!trace.tasks.empty(), "critical_path: empty trace");

  // Anchor: the latest exec_end (ties break towards the larger task id so
  // the walk is deterministic).
  const TaskSpan* anchor = nullptr;
  for (const TaskSpan& s : trace.tasks) {
    NEXUS_ASSERT_MSG(s.complete(), "critical_path: incomplete span");
    if (anchor == nullptr || s.exec_end >= anchor->exec_end) anchor = &s;
  }

  // Binding producer per consumer: the dependency kick with the latest t.
  std::unordered_map<std::uint64_t, const DepEdge*> binding;
  for (const DepEdge& e : trace.deps) {
    const DepEdge*& slot = binding[e.consumer];
    if (slot == nullptr || e.t > slot->t ||
        (e.t == slot->t && e.producer > slot->producer))
      slot = &e;
  }

  // Per-worker occupancy order (by dispatch time) to find the task whose
  // completion freed the worker a queued task was waiting for.
  std::unordered_map<std::int32_t, std::vector<const TaskSpan*>> by_worker;
  for (const TaskSpan& s : trace.tasks) by_worker[s.worker].push_back(&s);
  for (auto& [w, v] : by_worker)
    std::sort(v.begin(), v.end(), [](const TaskSpan* a, const TaskSpan* b) {
      return a->dispatch < b->dispatch;
    });

  CriticalPathReport rep;
  rep.makespan = trace.makespan;
  rep.last_task = anchor->task;

  TraceTick cursor = trace.makespan;
  // Segments are collected back-to-front ([x, cursor] then cursor = x), so
  // contiguity holds by construction; zero-length legs move the cursor
  // without emitting a segment.
  auto push = [&](PathPhase ph, std::uint64_t task, TraceTick from) {
    NEXUS_ASSERT_MSG(from >= 0 && from <= cursor,
                     "critical_path: non-monotone walk");
    if (from < cursor) rep.segments.push_back({ph, task, from, cursor});
    cursor = from;
  };

  std::unordered_set<std::uint64_t> visited;
  const TaskSpan* t = anchor;
  push(PathPhase::kMasterTail, anchor->task, anchor->exec_end);
  for (;;) {
    visited.insert(t->task);
    push(PathPhase::kExecute, t->task, t->exec_start);
    push(PathPhase::kDispatch, t->task, t->dispatch);
    if (t->dispatch > t->ready) {
      // The task sat in the ready queue: the binding event is the previous
      // occupant of the claimed worker finishing.
      const TaskSpan* prev = nullptr;
      for (const TaskSpan* o : by_worker[t->worker]) {
        if (o->dispatch < t->dispatch)
          prev = o;
        else
          break;
      }
      if (prev != nullptr && !visited.contains(prev->task) &&
          prev->exec_end <= cursor) {
        push(PathPhase::kQueueWait, t->task, prev->exec_end);
        t = prev;
        continue;
      }
      push(PathPhase::kQueueWait, t->task, t->ready);  // no jump target
    }
    push(PathPhase::kWriteback, t->task, t->resolved);
    const auto it = binding.find(t->task);
    const TaskSpan* prod =
        it != binding.end() ? trace.find(it->second->producer) : nullptr;
    if (prod != nullptr && !visited.contains(prod->task) &&
        prod->exec_end <= cursor) {
      push(PathPhase::kDepResolve, t->task, prod->exec_end);
      t = prod;
      continue;
    }
    // Source task (or a causally-exhausted chain): close via its own
    // submit path and the serial master prefix.
    push(PathPhase::kDepWait, t->task, t->accepted);
    push(PathPhase::kIngest, t->task, t->submit);
    push(PathPhase::kMaster, t->task, 0);
    break;
  }

  std::reverse(rep.segments.begin(), rep.segments.end());

  NEXUS_ASSERT_MSG(cursor == 0, "critical_path: walk did not reach t=0");
  TraceTick sum = 0;
  for (const PathSegment& s : rep.segments) sum += s.dur();
  NEXUS_ASSERT_MSG(sum == rep.makespan,
                   "critical_path: attribution does not sum to makespan");
  return rep;
}

std::string critical_path_text(const CriticalPathReport& r) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line,
                "critical path: makespan %lld ps, anchor task %llu, %zu "
                "segments\n",
                static_cast<long long>(r.makespan),
                static_cast<unsigned long long>(r.last_task),
                r.segments.size());
  out += line;
  constexpr PathPhase kAll[] = {
      PathPhase::kMaster,    PathPhase::kIngest,     PathPhase::kDepWait,
      PathPhase::kDepResolve, PathPhase::kWriteback, PathPhase::kQueueWait,
      PathPhase::kDispatch,  PathPhase::kExecute,    PathPhase::kMasterTail,
  };
  for (const PathPhase p : kAll) {
    const TraceTick total = r.total(p);
    if (total == 0) continue;
    const double pct = r.makespan > 0 ? 100.0 * static_cast<double>(total) /
                                            static_cast<double>(r.makespan)
                                      : 0.0;
    std::snprintf(line, sizeof line, "  %-12s %14lld ps  %5.1f%%\n",
                  to_string(p), static_cast<long long>(total), pct);
    out += line;
  }
  return out;
}

}  // namespace nexus::telemetry
