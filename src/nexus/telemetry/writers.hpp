// Machine-readable exporters for telemetry snapshots.
//
// JsonWriter is a small streaming JSON builder (objects/arrays/scalars with
// automatic comma placement) used both for snapshot export and for the
// bench binaries' BENCH_*.json reports; CsvWriter mirrors the TextTable CSV
// dialect. Serialization is deterministic: snapshot values are already
// path-sorted and doubles print with a fixed format.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "nexus/telemetry/snapshot.hpp"

namespace nexus::telemetry {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key inside an object; must be followed by a value or container.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::uint32_t v) { return value(std::uint64_t{v}); }
  JsonWriter& value(int v) { return value(std::int64_t{v}); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);

  /// key+value in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  /// The document built so far. Caller is responsible for having closed
  /// every container.
  [[nodiscard]] const std::string& str() const { return out_; }

  static std::string escape(std::string_view s);

 private:
  void comma();

  std::string out_;
  std::vector<bool> needs_comma_;  ///< one level per open container
  bool after_key_ = false;         ///< suppress the comma after a key
};

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  /// Add one row; must have the same arity as the header.
  void row(const std::vector<std::string>& cells);

  [[nodiscard]] const std::string& str() const { return out_; }

  static std::string escape(const std::string& cell);

 private:
  void emit_row(const std::vector<std::string>& cells);

  std::size_t arity_;
  std::string out_;
};

/// Snapshot as a flat JSON object: path -> scalar (counter/gauge) or
/// {count,sum,min,max,mean,p50,p95,p99,p999,buckets{floor:count}}
/// (histogram).
std::string snapshot_json(const Snapshot& snap);

/// Append the same representation as an object *value* into an open
/// document (after a key() or inside an array).
void append_snapshot(JsonWriter& w, const Snapshot& snap);

/// Snapshot as CSV: path,kind,value,count,sum,min,max,mean.
std::string snapshot_csv(const Snapshot& snap);

/// Human-readable hierarchical tree ('/'-separated path components become
/// indented levels), for the metrics_report example and debugging.
std::string format_tree(const Snapshot& snap);

/// Write `content` to `path` (truncating). Returns false on IO error.
bool write_text_file(const std::string& path, std::string_view content);

}  // namespace nexus::telemetry
