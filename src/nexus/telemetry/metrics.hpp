// Telemetry metric primitives: Counter, Gauge and fixed-bucket pow2
// Histogram.
//
// Instrumented components hold *pointers* to metrics that live inside a
// MetricRegistry and stay null until the registry is bound, so the hot path
// of an un-instrumented run is a single predictable branch on a null
// pointer (measured <=2% on the micro_5tasks cycle bench). The inline
// `inc`/`set`/`record` helpers encode that contract.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>

namespace nexus::telemetry {

namespace detail {

/// Shared interpolation core for pow2-bucket quantiles (used by both the
/// live Histogram and the frozen HistogramData): `frac` in (0, 1] is the
/// rank offset into `bucket`, whose value range is clipped against the
/// recorded min/max so a single-valued histogram reports that exact value.
inline double interpolate_pow2_bucket(std::uint32_t bucket, double frac,
                                      std::uint64_t min, std::uint64_t max) {
  if (bucket == 0) return 0.0;  // bucket 0 holds exact zeros
  const double bucket_lo =
      static_cast<double>(std::uint64_t{1} << (bucket - 1));
  const double bucket_hi = bucket_lo * 2.0;  // exact in double through 2^64
  const double lo = std::max(bucket_lo, static_cast<double>(min));
  const double hi = std::min(bucket_hi, static_cast<double>(max));
  return lo + frac * (hi - lo);
}

}  // namespace detail

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written instantaneous value (occupancy, ticks, config echoes).
class Gauge {
 public:
  void set(std::int64_t v) { value_ = v; }
  void add(std::int64_t d) { value_ += d; }
  [[nodiscard]] std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Power-of-two bucketed histogram over unsigned samples.
///
/// Bucket 0 holds exact zeros; bucket i (1..64) holds [2^(i-1), 2^i).
/// 65 fixed buckets cover the full uint64 range, so recording never
/// allocates and bucket edges are identical across runs (snapshot
/// determinism is a tested contract).
class Histogram {
 public:
  static constexpr std::uint32_t kBuckets = 65;

  /// Bucket index for a sample: 0 for 0, else bit_width(v).
  [[nodiscard]] static constexpr std::uint32_t bucket_of(std::uint64_t v) {
    return static_cast<std::uint32_t>(std::bit_width(v));
  }

  /// Inclusive lower edge of bucket i (0, 1, 2, 4, 8, ...).
  [[nodiscard]] static constexpr std::uint64_t bucket_floor(std::uint32_t i) {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }

  void record(std::uint64_t v) {
    ++buckets_[bucket_of(v)];
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t min() const { return count_ > 0 ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] double mean() const {
    return count_ > 0 ? static_cast<double>(sum_) / static_cast<double>(count_)
                      : 0.0;
  }
  [[nodiscard]] std::uint64_t bucket(std::uint32_t i) const { return buckets_[i]; }

  /// Interpolated quantile (q in [0, 1]); 0 for an empty histogram. The
  /// rank lands in a pow2 bucket and is interpolated linearly inside it,
  /// clipped to the recorded [min, max] so degenerate histograms are exact.
  [[nodiscard]] double quantile(double q) const {
    if (count_ == 0) return 0.0;
    if (q <= 0.0) return static_cast<double>(min());
    if (q >= 1.0) return static_cast<double>(max_);
    const double target = q * static_cast<double>(count_);
    std::uint64_t below = 0;
    for (std::uint32_t i = 0; i < kBuckets; ++i) {
      const std::uint64_t n = buckets_[i];
      if (n == 0) continue;
      if (static_cast<double>(below + n) >= target) {
        const double frac =
            (target - static_cast<double>(below)) / static_cast<double>(n);
        return detail::interpolate_pow2_bucket(i, frac, min_, max_);
      }
      below += n;
    }
    return static_cast<double>(max_);  // FP slack: the tail owns the rest
  }

  [[nodiscard]] double p50() const { return quantile(0.50); }
  [[nodiscard]] double p95() const { return quantile(0.95); }
  [[nodiscard]] double p99() const { return quantile(0.99); }
  [[nodiscard]] double p999() const { return quantile(0.999); }

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

// --- null-safe hot-path helpers (no-ops until a registry is bound) ---

inline void inc(Counter* c, std::uint64_t n = 1) {
  if (c != nullptr) c->inc(n);
}
inline void set(Gauge* g, std::int64_t v) {
  if (g != nullptr) g->set(v);
}
inline void record(Histogram* h, std::uint64_t v) {
  if (h != nullptr) h->record(v);
}

}  // namespace nexus::telemetry
