// Host-side self-profiler: wall-clock attribution over the simulator
// itself.
//
// Everything else in the telemetry layer observes *sim* time; the Profiler
// answers a different question — where does the simulator's own wall-clock
// time go? — which is the evidence the parallel-DES work needs before any
// partitioning can pay off. It follows the same null-safe contract as
// MetricRegistry and TraceRecorder: hook sites hold a `Profiler*` that
// stays null until a profiler is bound, so a detached run pays one
// predictable branch per site and produces bit-identical schedules (a
// tested contract, like trace_test's).
//
// Nodes form a registration-time tree (find-or-create by (parent, name) at
// bind time, cold), and hot sites accumulate into pre-resolved NodeIds.
// Attribution is *exclusive* by construction: ProfScope keeps an exclusion
// ledger so a scope's recorded time nets out every timed scope that ran
// inside it, no matter how the dynamic nesting relates to the static tree.
// Each measured nanosecond therefore lands in exactly one node, node
// totals (self + descendant sum) can never exceed an ancestor's, and the
// root total reconciles against the measured run wall time — the
// invariants scripts/validate_profile.py checks.
//
// Timestamps are raw TSC ticks on x86-64 (a handful of cycles per read, so
// attached overhead stays within the simspeed-gated bound) and
// steady_clock nanoseconds elsewhere; freeze() calibrates ticks against
// steady_clock over the profiler's own lifetime, so no spin-up measurement
// is needed.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace nexus::telemetry {

/// Raw monotonic timestamp: TSC ticks on x86-64, steady_clock ns elsewhere.
/// Only differences are meaningful, and only after Profiler::freeze()
/// converts them to nanoseconds via calibration.
[[nodiscard]] inline std::uint64_t prof_ticks() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_ia32_rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// One frozen profile node. `self_ns` is the exclusively-attributed wall
/// time (never double-counted with any other node); `total_ns` is
/// `self_ns` plus the totals of `children` (computed at freeze, so the
/// reconciliation invariant holds by construction). `count` is the number
/// of closed intervals (or the absolute count for count-only stat nodes);
/// `max` carries high-water stats (queue depth, bucket occupancy) and is 0
/// for plain timer nodes.
struct ProfileNode {
  std::string name;
  std::uint32_t parent = 0;  ///< root points at itself
  std::vector<std::uint32_t> children;  ///< sorted by name (stable shape)
  std::uint64_t self_ns = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t count = 0;
  std::uint64_t max = 0;
};

/// Frozen profile tree: plain data, safe to keep after the profiler (and
/// the run) are gone. nodes[0] is the root, named "all"; a parent always
/// precedes its children in `nodes`.
struct ProfileData {
  std::vector<ProfileNode> nodes;
  double ns_per_tick = 1.0;      ///< the calibration freeze() applied
  std::uint64_t wall_ns = 0;     ///< profiler lifetime at freeze time

  /// ';'-joined path from the root, e.g. "all;run;queue;pop".
  [[nodiscard]] std::string path_of(std::uint32_t ix) const;
  /// Depth-first search by ';'-joined path *below* the root ("queue;pop");
  /// returns nullptr when absent.
  [[nodiscard]] const ProfileNode* find(std::string_view path) const;
};

class Profiler {
 public:
  using NodeId = std::uint32_t;
  static constexpr NodeId kRoot = 0;

  Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Find-or-create a child of `parent` named `name`. Cold (bind time):
  /// lookup is a linear scan of the parent's children. The returned id is
  /// stable for the profiler's lifetime.
  NodeId node(NodeId parent, std::string_view name);

  /// Close a measured interval opened at `t0` (prof_ticks) with exclusion
  /// mark `excl0` (excl_mark at open). Attributes the interval net of
  /// every interval closed inside it, then reports the gross interval to
  /// the enclosing scope's ledger. Hot path: ProfScope calls this.
  void close_interval(NodeId n, std::uint64_t t0, std::uint64_t excl0) {
    const std::uint64_t gross = prof_ticks() - t0;
    Node& nd = nodes_[n];
    nd.self_ticks += gross - (excl_ - excl0);
    nd.count += 1;
    excl_ = excl0 + gross;
  }

  /// The exclusion ledger's current mark (capture at scope open).
  [[nodiscard]] std::uint64_t excl_mark() const { return excl_; }

  // --- count/stat nodes (no wall time) ---
  void add_count(NodeId n, std::uint64_t k = 1) { nodes_[n].count += k; }
  /// Absolute count (cumulative structure stats re-flushed at run end).
  void set_count(NodeId n, std::uint64_t v) { nodes_[n].count = v; }
  void stat_max(NodeId n, std::uint64_t v) {
    if (v > nodes_[n].max) nodes_[n].max = v;
  }

  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }

  /// Freeze into plain data: ticks calibrated to nanoseconds against
  /// steady_clock over the profiler's lifetime, totals rolled up bottom-up,
  /// children sorted by name so the exported shape is deterministic.
  [[nodiscard]] ProfileData freeze() const;

 private:
  struct Node {
    std::string name;
    NodeId parent = 0;
    std::vector<NodeId> kids;
    std::uint64_t self_ticks = 0;
    std::uint64_t count = 0;
    std::uint64_t max = 0;
  };

  std::vector<Node> nodes_;
  std::uint64_t excl_ = 0;
  std::chrono::steady_clock::time_point wall0_;
  std::uint64_t ticks0_ = 0;
};

/// RAII scoped timer on a pre-resolved node. Null-safe: with a null
/// profiler both ends are a single branch (the detached-run contract).
class ProfScope {
 public:
  ProfScope(Profiler* p, Profiler::NodeId n) : p_(p) {
    if (p_ != nullptr) {
      node_ = n;
      excl0_ = p_->excl_mark();
      t0_ = prof_ticks();
    }
  }
  ~ProfScope() {
    if (p_ != nullptr) p_->close_interval(node_, t0_, excl0_);
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  Profiler* p_;
  Profiler::NodeId node_ = 0;
  std::uint64_t t0_ = 0;
  std::uint64_t excl0_ = 0;
};

}  // namespace nexus::telemetry
