// Critical-path attribution over a frozen TraceData.
//
// Walks the span graph backward from the last-finishing task, at each step
// jumping to whichever event actually bound the current boundary: the
// previous occupant of the claimed worker when the task sat in the ready
// queue, otherwise the binding producer (latest dependency kick). The
// resulting segments tile [0, makespan] exactly — the attribution *sums to
// the makespan by construction*, and critical_path() asserts it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nexus/telemetry/trace.hpp"

namespace nexus::telemetry {

enum class PathPhase : std::uint8_t {
  kMaster,      ///< serial master prefix before the chain's first submit
  kIngest,      ///< submit -> accepted (pool commit / insert pipeline)
  kDepWait,     ///< accepted -> resolved with no producer (manager pipeline)
  kDepResolve,  ///< producer exec_end -> resolved (notify + kick + arb + NoC)
  kWriteback,   ///< resolved -> ready (WB arbitration + manager->host NoC)
  kQueueWait,   ///< previous worker occupant exec_end -> dispatch
  kDispatch,    ///< dispatch -> exec_start (host->core transit)
  kExecute,     ///< exec_start -> exec_end
  kMasterTail,  ///< last exec_end -> makespan (final master bookkeeping)
};

const char* to_string(PathPhase p);

struct PathSegment {
  PathPhase phase = PathPhase::kExecute;
  std::uint64_t task = 0;  ///< task the time is charged to
  TraceTick from = 0;
  TraceTick to = 0;
  [[nodiscard]] TraceTick dur() const { return to - from; }
};

struct CriticalPathReport {
  std::vector<PathSegment> segments;  ///< contiguous, from t=0 to makespan
  TraceTick makespan = 0;
  std::uint64_t last_task = 0;  ///< the walk's anchor (latest exec_end)

  [[nodiscard]] TraceTick total(PathPhase p) const;
};

/// Requires at least one complete span; asserts the segment tiling is exact.
[[nodiscard]] CriticalPathReport critical_path(const TraceData& trace);

/// Human-readable attribution table (phase totals + the walked chain).
[[nodiscard]] std::string critical_path_text(const CriticalPathReport& r);

}  // namespace nexus::telemetry
