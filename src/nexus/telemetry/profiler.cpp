#include "nexus/telemetry/profiler.hpp"

#include <algorithm>
#include <utility>

#include "nexus/common/assert.hpp"

namespace nexus::telemetry {

Profiler::Profiler() {
  Node root;
  root.name = "all";
  root.parent = kRoot;
  nodes_.push_back(std::move(root));
  wall0_ = std::chrono::steady_clock::now();
  ticks0_ = prof_ticks();
}

Profiler::NodeId Profiler::node(NodeId parent, std::string_view name) {
  NEXUS_ASSERT_MSG(parent < nodes_.size(), "profiler: parent node out of range");
  NEXUS_ASSERT_MSG(!name.empty(), "profiler: node name must be nonempty");
  for (NodeId kid : nodes_[parent].kids) {
    if (nodes_[kid].name == name) return kid;
  }
  const auto id = static_cast<NodeId>(nodes_.size());
  Node nd;
  nd.name = std::string(name);
  nd.parent = parent;
  nodes_.push_back(std::move(nd));
  nodes_[parent].kids.push_back(id);
  return id;
}

ProfileData Profiler::freeze() const {
  // Calibrate ticks -> ns over the profiler's own lifetime. On x86-64 the
  // TSC is constant-rate, so the longer the baseline the better the
  // estimate; spin out to >= 1ms so a freeze immediately after
  // construction (unit tests) can't divide by a degenerate interval.
  auto wall_elapsed = [&] {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wall0_)
            .count());
  };
  std::uint64_t wall_ns = wall_elapsed();
  while (wall_ns < 1'000'000) wall_ns = wall_elapsed();
  const std::uint64_t ticks_elapsed = prof_ticks() - ticks0_;
  const double ns_per_tick =
      ticks_elapsed > 0
          ? static_cast<double>(wall_ns) / static_cast<double>(ticks_elapsed)
          : 1.0;

  ProfileData out;
  out.ns_per_tick = ns_per_tick;
  out.wall_ns = wall_ns;
  out.nodes.resize(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& src = nodes_[i];
    ProfileNode& dst = out.nodes[i];
    dst.name = src.name;
    dst.parent = src.parent;
    dst.children = src.kids;
    std::sort(dst.children.begin(), dst.children.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return nodes_[a].name < nodes_[b].name;
              });
    dst.self_ns = static_cast<std::uint64_t>(
        static_cast<double>(src.self_ticks) * ns_per_tick);
    dst.total_ns = dst.self_ns;
    dst.count = src.count;
    dst.max = src.max;
  }
  // node() appends children after their parent, so a reverse walk adds each
  // node's total into its parent exactly once (root is its own parent).
  for (std::size_t i = out.nodes.size(); i-- > 1;) {
    out.nodes[out.nodes[i].parent].total_ns += out.nodes[i].total_ns;
  }
  return out;
}

std::string ProfileData::path_of(std::uint32_t ix) const {
  NEXUS_ASSERT_MSG(ix < nodes.size(), "profile: node index out of range");
  std::vector<std::uint32_t> chain;
  for (std::uint32_t n = ix; n != 0; n = nodes[n].parent) chain.push_back(n);
  std::string path = nodes[0].name;
  for (std::size_t i = chain.size(); i-- > 0;) {
    path += ';';
    path += nodes[chain[i]].name;
  }
  return path;
}

const ProfileNode* ProfileData::find(std::string_view path) const {
  if (nodes.empty()) return nullptr;
  std::uint32_t cur = 0;
  std::size_t pos = 0;
  while (pos <= path.size()) {
    const std::size_t sep = path.find(';', pos);
    const std::string_view part =
        path.substr(pos, sep == std::string_view::npos ? path.size() - pos
                                                       : sep - pos);
    const ProfileNode& nd = nodes[cur];
    bool found = false;
    for (std::uint32_t kid : nd.children) {
      if (nodes[kid].name == part) {
        cur = kid;
        found = true;
        break;
      }
    }
    if (!found) return nullptr;
    if (sep == std::string_view::npos) return &nodes[cur];
    pos = sep + 1;
  }
  return nullptr;
}

}  // namespace nexus::telemetry
