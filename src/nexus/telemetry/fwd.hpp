// Forward declarations for headers that hold metric pointers without
// needing the telemetry definitions (instrumented classes bind in their
// .cpp; the hot-path helpers live in metrics.hpp).
#pragma once

namespace nexus::telemetry {

class MetricRegistry;
class Counter;
class Gauge;
class Histogram;
struct Snapshot;
class TimelineRecorder;
struct Timeline;
struct TimelineConfig;

}  // namespace nexus::telemetry
