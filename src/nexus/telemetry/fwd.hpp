// Forward declarations for headers that hold metric pointers without
// needing the telemetry definitions (instrumented classes bind in their
// .cpp; the hot-path helpers live in metrics.hpp).
#pragma once

#include <cstdint>

namespace nexus::telemetry {

class MetricRegistry;
class Counter;
class Gauge;
class Histogram;
struct Snapshot;
class TimelineRecorder;
struct Timeline;
struct TimelineConfig;
class TraceRecorder;
struct TraceData;
class Profiler;
struct ProfileData;

/// Simulation time as recorded by the trace layer (mirrors nexus::Tick
/// without depending on the sim headers; -1 marks an unset boundary).
using TraceTick = std::int64_t;

}  // namespace nexus::telemetry
