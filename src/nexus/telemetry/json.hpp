// A small, strict JSON reader — the inverse of JsonWriter, used by
// nexus-perfdiff to load BENCH_*.json records and by tests to round-trip
// exported snapshots/timelines.
//
// Scope matches what this repo writes: UTF-8 text, objects with ordered
// keys, arrays, strings with the JsonWriter escape set, bools, null, and
// numbers. Integers that fit std::int64_t are kept exact (makespans are
// 10^11-scale picosecond counts where double rounding would be visible in
// diffs); everything else falls back to double. Trailing garbage, unpaired
// containers and over-deep nesting are hard errors, never best-effort.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nexus::telemetry {

struct JsonValue {
  enum class Type : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;        ///< kNumber (always set)
  std::int64_t integer = 0;   ///< kNumber, exact when `is_integer`
  bool is_integer = false;
  std::string str;            ///< kString
  std::vector<JsonValue> array;
  /// Insertion-ordered key/value pairs (duplicates keep the last).
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_object() const { return type == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type == Type::kArray; }
  [[nodiscard]] bool is_number() const { return type == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type == Type::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Scalar accessors with defaults (non-numbers return the default).
  [[nodiscard]] double num_or(double dflt) const;
  [[nodiscard]] std::int64_t int_or(std::int64_t dflt) const;
  [[nodiscard]] std::string str_or(std::string dflt) const;
};

/// Parse a complete document into `*out`. On failure returns false and, if
/// `error` is nonnull, fills it with a message including the byte offset.
bool json_parse(std::string_view text, JsonValue* out, std::string* error);

}  // namespace nexus::telemetry
