// Causal task-lifecycle tracing.
//
// A TraceRecorder, when attached through RuntimeConfig/NexusSharpConfig,
// collects one span chain per task (submit -> accepted -> resolved ->
// ready -> dispatch -> exec -> freed) plus the causal edges that explain
// the gaps: dependency-release kicks, NoC message flights with per-link
// flit timing, manager unit service spans, and occupancy counter samples.
// Like the metric primitives, every hook site holds a *pointer* that stays
// null until a recorder is bound, so an untraced run pays one predictable
// branch and produces bit-identical schedules (a tested contract).
//
// The frozen TraceData feeds two consumers: chrome_trace_json (Perfetto /
// chrome://tracing export, trace_export.hpp) and critical_path (makespan
// attribution, critical_path.hpp).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "nexus/telemetry/fwd.hpp"

namespace nexus::telemetry {

inline constexpr TraceTick kTraceUnset = -1;

/// One task's lifecycle boundaries, all in sim time (ps). Monotone
/// non-decreasing in declaration order once the run completes:
///   submit    master issued the submit (first attempt if back-pressured)
///   accepted  manager committed the descriptor (pool insert done)
///   resolved  last dependence satisfied inside the manager
///   ready     host ready-queue push (writeback delivered)
///   dispatch  worker claimed
///   exec_start / exec_end   execution interval on the worker
///   freed     worker released after completion bookkeeping
struct TaskSpan {
  std::uint64_t task = 0;
  std::int32_t worker = -1;
  TraceTick submit = kTraceUnset;
  TraceTick accepted = kTraceUnset;
  TraceTick resolved = kTraceUnset;
  TraceTick ready = kTraceUnset;
  TraceTick dispatch = kTraceUnset;
  TraceTick exec_start = kTraceUnset;
  TraceTick exec_end = kTraceUnset;
  TraceTick freed = kTraceUnset;

  [[nodiscard]] bool complete() const {
    return submit >= 0 && accepted >= 0 && resolved >= 0 && ready >= 0 &&
           dispatch >= 0 && exec_start >= 0 && exec_end >= 0;
  }
  [[nodiscard]] TraceTick sojourn() const { return exec_end - submit; }
};

/// The six telescoping phases of a span; they sum to sojourn() exactly.
struct TaskPhases {
  TraceTick ingest = 0;      ///< submit -> accepted (pool commit)
  TraceTick dep_wait = 0;    ///< accepted -> resolved (graph wait)
  TraceTick writeback = 0;   ///< resolved -> ready (arbitration + WB transit)
  TraceTick queue_wait = 0;  ///< ready -> dispatch (host queue)
  TraceTick dispatch = 0;    ///< dispatch -> exec_start (dispatch transit)
  TraceTick execute = 0;     ///< exec_start -> exec_end
};

[[nodiscard]] inline TaskPhases phases_of(const TaskSpan& s) {
  TaskPhases p;
  p.ingest = s.accepted - s.submit;
  p.dep_wait = s.resolved - s.accepted;
  p.writeback = s.ready - s.resolved;
  p.queue_wait = s.dispatch - s.ready;
  p.dispatch = s.exec_start - s.dispatch;
  p.execute = s.exec_end - s.exec_start;
  return p;
}

/// Dependency-release kick: `producer`'s finish satisfied one of
/// `consumer`'s inputs at time `t`. A task's *binding* producer is the
/// edge with the latest t.
struct DepEdge {
  std::uint64_t producer = 0;
  std::uint64_t consumer = 0;
  TraceTick t = 0;
};

/// One NoC message flight. `net`/`op` index TraceData::strings; `arrive`
/// stays kTraceUnset for messages still in flight when the run ended.
struct NocMessage {
  std::uint32_t net = 0;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint32_t op = 0;
  std::uint32_t flits = 1;
  TraceTick depart = 0;
  TraceTick arrive = kTraceUnset;
};

/// A message occupying one link for its serialization window.
struct LinkSpan {
  std::uint32_t msg = 0;   ///< index into TraceData::messages
  std::uint32_t link = 0;  ///< label, indexes TraceData::strings
  TraceTick start = 0;
  TraceTick dur = 0;
};

/// A manager unit (TGU, arbiter, ...) serving one grant/request.
struct UnitSpan {
  std::uint32_t unit = 0;  ///< track label, indexes TraceData::strings
  std::uint32_t what = 0;  ///< op label, indexes TraceData::strings
  std::uint64_t task = 0;
  TraceTick start = 0;
  TraceTick dur = 0;
};

/// Occupancy sample on a named counter track (pool size, dep-table size,
/// ready-queue depth), recorded at each mutation.
struct CounterSample {
  std::uint32_t track = 0;  ///< indexes TraceData::strings
  TraceTick t = 0;
  std::int64_t v = 0;
};

/// Frozen trace: plain data, safe to keep after the run is gone.
struct TraceData {
  std::vector<TaskSpan> tasks;  ///< sorted by task id
  std::vector<DepEdge> deps;
  std::vector<NocMessage> messages;
  std::vector<LinkSpan> link_spans;
  std::vector<UnitSpan> unit_spans;
  std::vector<CounterSample> counters;
  std::vector<std::string> strings;  ///< interned labels
  TraceTick makespan = 0;

  [[nodiscard]] const TaskSpan* find(std::uint64_t task) const;
  [[nodiscard]] const std::string& str(std::uint32_t i) const {
    return strings[i];
  }
  /// Flits of messages actually delivered, per network label — the
  /// conservation ledger cross-checked against noc delivered_flits.
  [[nodiscard]] std::uint64_t delivered_flits(std::string_view net) const;
};

/// Accumulates spans and causal edges during a run. All hooks are cheap
/// appends; nothing here schedules events or reads the registry, so an
/// attached recorder cannot perturb the simulation.
class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // --- task lifecycle ---
  /// First attempt wins: a pool-back-pressured master re-submits the same
  /// task, and the wait belongs to the span.
  void on_submit(std::uint64_t task, TraceTick t);
  void on_accepted(std::uint64_t task, TraceTick t);
  void on_resolved(std::uint64_t task, TraceTick t);
  void on_ready(std::uint64_t task, TraceTick t);
  void on_dispatch(std::uint64_t task, TraceTick t, std::int32_t worker);
  void on_exec(std::uint64_t task, TraceTick start, TraceTick end);
  void on_freed(std::uint64_t task, TraceTick t);
  void on_dep(std::uint64_t producer, std::uint64_t consumer, TraceTick t);

  // --- NoC ---
  /// Begin a message flight; the returned handle threads through
  /// noc_link/noc_deliver.
  std::uint32_t noc_send(std::string_view net, std::uint32_t src,
                         std::uint32_t dst, std::string_view op,
                         std::uint32_t flits, TraceTick depart);
  void noc_link(std::uint32_t msg, std::string_view link, TraceTick start,
                TraceTick dur);
  void noc_deliver(std::uint32_t msg, TraceTick arrive);

  // --- manager units and occupancy ---
  void unit_span(std::string_view unit, std::string_view what,
                 std::uint64_t task, TraceTick start, TraceTick dur);
  void counter(std::string_view track, TraceTick t, std::int64_t v);

  void set_makespan(TraceTick t) { makespan_ = t; }

  [[nodiscard]] std::size_t num_tasks() const { return tasks_.size(); }

  /// Freeze into plain data (tasks sorted by id).
  [[nodiscard]] TraceData freeze() const;

 private:
  TaskSpan& span(std::uint64_t task);
  std::uint32_t intern(std::string_view s);

  std::vector<TaskSpan> tasks_;
  std::unordered_map<std::uint64_t, std::uint32_t> task_ix_;
  std::vector<DepEdge> deps_;
  std::vector<NocMessage> messages_;
  std::vector<LinkSpan> link_spans_;
  std::vector<UnitSpan> unit_spans_;
  std::vector<CounterSample> counters_;
  std::vector<std::string> strings_;
  std::map<std::string, std::uint32_t, std::less<>> string_ix_;
  TraceTick makespan_ = 0;
};

}  // namespace nexus::telemetry
