#include "nexus/telemetry/trace_export.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "nexus/telemetry/critical_path.hpp"
#include "nexus/telemetry/writers.hpp"

namespace nexus::telemetry {

namespace {

// Process ids group the tracks: cores / manager units / NoC links /
// occupancy counters / per-task lifecycle chains.
constexpr int kPidCores = 1;
constexpr int kPidUnits = 2;
constexpr int kPidNoc = 3;
constexpr int kPidState = 4;
constexpr int kPidTasks = 5;

// Flow ids for dependency kicks and NoC messages share one namespace;
// offset the messages so they never collide.
constexpr std::uint64_t kNocFlowBase = std::uint64_t{1} << 40;

struct Ev {
  TraceTick ts = 0;
  // Secondary sort key at equal timestamps: metadata first, then async
  // ends before async begins (consecutive lifecycle phases share their
  // boundary tick), then slices/counters, then flow bindings.
  int order = 3;
  char ph = 'X';
  int pid = 0;
  std::int64_t tid = 0;
  TraceTick dur = -1;  ///< >= 0 only for "X"
  std::string name;
  std::string cat;
  std::uint64_t id = 0;
  bool has_id = false;
  bool bp_e = false;  ///< "f" with bp:"e"
  std::vector<std::pair<std::string, std::int64_t>> args;
};

double to_us(TraceTick ps) { return static_cast<double>(ps) * 1e-6; }

void emit(JsonWriter& w, const Ev& e) {
  w.begin_object();
  w.kv("name", e.name);
  if (!e.cat.empty()) w.kv("cat", e.cat);
  w.kv("ph", std::string_view(&e.ph, 1));
  w.kv("ts", to_us(e.ts));
  if (e.dur >= 0) w.kv("dur", to_us(e.dur));
  w.kv("pid", e.pid);
  w.kv("tid", e.tid);
  if (e.has_id) w.kv("id", e.id);
  if (e.bp_e) w.kv("bp", "e");
  if (!e.args.empty()) {
    w.key("args").begin_object();
    for (const auto& [k, v] : e.args) w.kv(k, v);
    w.end_object();
  }
  w.end_object();
}

void metadata(std::vector<Ev>& evs, int pid, std::int64_t tid,
              std::string_view key, std::string_view name) {
  Ev e;
  e.order = -1;
  e.ph = 'M';
  e.pid = pid;
  e.tid = tid;
  e.name = key;
  e.cat = "__metadata";
  // Metadata carries its payload as a string arg; reuse args via a marker
  // handled at emission time below.
  evs.push_back(std::move(e));
  evs.back().args.emplace_back(std::string(name), 0);
}

}  // namespace

std::string chrome_trace_json(const TraceData& trace) {
  std::vector<Ev> evs;

  // --- track naming ---------------------------------------------------
  std::int64_t max_worker = -1;
  for (const TaskSpan& s : trace.tasks)
    max_worker = std::max<std::int64_t>(max_worker, s.worker);
  std::vector<Ev> meta;  // metadata handled separately (string payloads)
  auto process_name = [&](int pid, std::string_view name) {
    metadata(meta, pid, 0, "process_name", name);
  };
  auto thread_name = [&](int pid, std::int64_t tid, std::string_view name) {
    metadata(meta, pid, tid, "thread_name", name);
  };

  // Manager-unit and NoC-link tracks get tids in first-appearance order.
  std::map<std::uint32_t, std::int64_t> unit_tid;
  auto tid_for = [](std::map<std::uint32_t, std::int64_t>& m,
                    std::uint32_t str_ix) {
    return m.emplace(str_ix, static_cast<std::int64_t>(m.size())).first
        ->second;
  };
  std::map<std::uint32_t, std::int64_t> link_tid;
  std::map<std::uint32_t, std::int64_t> counter_tid;

  // --- per-core execution slices + lifecycle chains -------------------
  bool all_complete = !trace.tasks.empty();
  for (const TaskSpan& s : trace.tasks) {
    if (!s.complete()) {
      all_complete = false;
      continue;
    }
    const std::string task_name = "task" + std::to_string(s.task);
    Ev x;
    x.ph = 'X';
    x.pid = kPidCores;
    x.tid = s.worker;
    x.ts = s.exec_start;
    x.dur = s.exec_end - s.exec_start;
    x.name = task_name;
    x.cat = "exec";
    const TaskPhases p = phases_of(s);
    x.args = {{"task", static_cast<std::int64_t>(s.task)},
              {"submit_ps", s.submit},
              {"ingest_ps", p.ingest},
              {"dep_wait_ps", p.dep_wait},
              {"writeback_ps", p.writeback},
              {"queue_wait_ps", p.queue_wait},
              {"dispatch_ps", p.dispatch},
              {"execute_ps", p.execute}};
    evs.push_back(std::move(x));

    // Lifecycle chain: one async track per task (keyed by id), one
    // begin/end pair per nonzero phase. Ends sort before begins at a
    // shared boundary so consecutive phases never overlap.
    struct Leg {
      const char* name;
      TraceTick from, to;
    };
    const Leg legs[] = {{"ingest", s.submit, s.accepted},
                        {"dep_wait", s.accepted, s.resolved},
                        {"writeback", s.resolved, s.ready},
                        {"queue_wait", s.ready, s.dispatch},
                        {"dispatch", s.dispatch, s.exec_start},
                        {"execute", s.exec_start, s.exec_end}};
    for (const Leg& leg : legs) {
      if (leg.to <= leg.from) continue;
      Ev b;
      b.ph = 'b';
      b.order = 2;
      b.pid = kPidTasks;
      b.tid = 0;
      b.ts = leg.from;
      b.name = leg.name;
      b.cat = "lifecycle";
      b.id = s.task;
      b.has_id = true;
      Ev e = b;
      e.ph = 'e';
      e.order = 1;
      e.ts = leg.to;
      evs.push_back(std::move(b));
      evs.push_back(std::move(e));
    }
  }

  // --- dependency-kick flow arrows ------------------------------------
  for (std::size_t i = 0; i < trace.deps.size(); ++i) {
    const DepEdge& d = trace.deps[i];
    const TaskSpan* prod = trace.find(d.producer);
    const TaskSpan* cons = trace.find(d.consumer);
    if (prod == nullptr || cons == nullptr || !prod->complete() ||
        !cons->complete())
      continue;
    Ev s;
    s.ph = 's';
    s.order = 4;
    s.pid = kPidCores;
    s.tid = prod->worker;
    s.ts = prod->exec_end;
    s.name = "dep";
    s.cat = "dep";
    s.id = i;
    s.has_id = true;
    Ev f = s;
    f.ph = 'f';
    f.tid = cons->worker;
    f.ts = cons->exec_start;
    f.bp_e = true;
    evs.push_back(std::move(s));
    evs.push_back(std::move(f));
  }

  // --- manager unit service spans -------------------------------------
  for (const UnitSpan& u : trace.unit_spans) {
    Ev x;
    x.ph = 'X';
    x.pid = kPidUnits;
    x.tid = tid_for(unit_tid, u.unit);
    x.ts = u.start;
    x.dur = u.dur;
    x.name = trace.str(u.what);
    x.cat = "unit";
    x.args = {{"task", static_cast<std::int64_t>(u.task)}};
    evs.push_back(std::move(x));
  }

  // --- NoC link occupancy + message flows -----------------------------
  std::vector<std::vector<const LinkSpan*>> by_msg(trace.messages.size());
  for (const LinkSpan& l : trace.link_spans) by_msg[l.msg].push_back(&l);
  for (std::size_t m = 0; m < trace.messages.size(); ++m) {
    const NocMessage& msg = trace.messages[m];
    auto& spans = by_msg[m];
    std::sort(spans.begin(), spans.end(),
              [](const LinkSpan* a, const LinkSpan* b) {
                return a->start < b->start;
              });
    for (std::size_t h = 0; h < spans.size(); ++h) {
      const LinkSpan& l = *spans[h];
      Ev x;
      x.ph = 'X';
      x.pid = kPidNoc;
      x.tid = tid_for(link_tid, l.link);
      x.ts = l.start;
      x.dur = l.dur;
      x.name = trace.str(msg.op);
      x.cat = trace.str(msg.net);
      x.args = {{"msg", static_cast<std::int64_t>(m)},
                {"flits", msg.flits},
                {"src", msg.src},
                {"dst", msg.dst}};
      evs.push_back(std::move(x));
      if (spans.size() >= 2) {
        Ev fl;
        fl.ph = h == 0 ? 's' : h + 1 == spans.size() ? 'f' : 't';
        fl.order = 4;
        fl.pid = kPidNoc;
        fl.tid = tid_for(link_tid, l.link);
        fl.ts = l.start;
        fl.name = "msg";
        fl.cat = "noc";
        fl.id = kNocFlowBase + m;
        fl.has_id = true;
        evs.push_back(std::move(fl));
      }
    }
  }

  // --- occupancy counters ---------------------------------------------
  for (const CounterSample& c : trace.counters) {
    Ev e;
    e.ph = 'C';
    e.pid = kPidState;
    e.tid = tid_for(counter_tid, c.track);
    e.ts = c.t;
    e.name = trace.str(c.track);
    e.args = {{"v", c.v}};
    evs.push_back(std::move(e));
  }

  // --- track metadata --------------------------------------------------
  process_name(kPidCores, "cores");
  for (std::int64_t w = 0; w <= max_worker; ++w)
    thread_name(kPidCores, w, "core" + std::to_string(w));
  if (!unit_tid.empty()) {
    process_name(kPidUnits, "manager");
    for (const auto& [str_ix, tid] : unit_tid)
      thread_name(kPidUnits, tid, trace.str(str_ix));
  }
  if (!link_tid.empty()) {
    process_name(kPidNoc, "noc");
    for (const auto& [str_ix, tid] : link_tid)
      thread_name(kPidNoc, tid, trace.str(str_ix));
  }
  if (!counter_tid.empty()) process_name(kPidState, "state");
  if (!trace.tasks.empty()) process_name(kPidTasks, "tasks");

  std::stable_sort(evs.begin(), evs.end(), [](const Ev& a, const Ev& b) {
    return a.ts != b.ts ? a.ts < b.ts : a.order < b.order;
  });

  // --- emission ---------------------------------------------------------
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const Ev& e : meta) {
    // Metadata events: the single arg key carries the name payload.
    w.begin_object();
    w.kv("name", e.name);
    w.kv("ph", "M");
    w.kv("ts", 0.0);
    w.kv("pid", e.pid);
    w.kv("tid", e.tid);
    w.key("args").begin_object();
    w.kv("name", e.args[0].first);
    w.end_object();
    w.end_object();
  }
  for (const Ev& e : evs) emit(w, e);
  w.end_array();
  w.kv("displayTimeUnit", "ns");
  w.key("otherData").begin_object();
  w.kv("makespan_ps", trace.makespan);
  w.kv("tasks", static_cast<std::uint64_t>(trace.tasks.size()));
  if (all_complete) {
    const CriticalPathReport cp = critical_path(trace);
    w.key("critical_path").begin_object();
    w.kv("anchor_task", cp.last_task);
    w.key("totals_ps").begin_object();
    constexpr PathPhase kAll[] = {
        PathPhase::kMaster,     PathPhase::kIngest,
        PathPhase::kDepWait,    PathPhase::kDepResolve,
        PathPhase::kWriteback,  PathPhase::kQueueWait,
        PathPhase::kDispatch,   PathPhase::kExecute,
        PathPhase::kMasterTail,
    };
    for (const PathPhase p : kAll) w.kv(to_string(p), cp.total(p));
    w.end_object();
    w.key("segments").begin_array();
    for (const PathSegment& s : cp.segments) {
      w.begin_object();
      w.kv("phase", to_string(s.phase));
      w.kv("task", s.task);
      w.kv("from_ps", s.from);
      w.kv("to_ps", s.to);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace nexus::telemetry
