// The MetricRegistry: hierarchical, name-addressed metric storage.
//
// Paths are '/'-separated ("nexus#/tg0/new_q_depth"). Lookup by string
// happens once, at bind time (cold); the returned reference is stable for
// the registry's lifetime, so instrumented hot paths touch only the metric
// object itself. Requesting an existing path with the same kind returns the
// same object (so two components may share a counter); requesting it with a
// different kind is an instrumentation bug and aborts.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>

#include "nexus/telemetry/metrics.hpp"
#include "nexus/telemetry/snapshot.hpp"

namespace nexus::telemetry {

/// Read-only walk over live metrics in path order (no copies). Used by the
/// TimelineRecorder, which re-scans the registry on every sample.
class MetricVisitor {
 public:
  virtual ~MetricVisitor() = default;
  virtual void on_counter(std::string_view path, const Counter& c) = 0;
  virtual void on_gauge(std::string_view path, const Gauge& g) = 0;
  virtual void on_histogram(std::string_view path, const Histogram& h) = 0;
};

class MetricRegistry {
 public:
  Counter& counter(std::string_view path);
  Gauge& gauge(std::string_view path);
  Histogram& histogram(std::string_view path);

  [[nodiscard]] std::size_t size() const { return slots_.size(); }

  /// Deep-copy the current state, sorted by path.
  [[nodiscard]] Snapshot snapshot() const;

  /// Visit every live metric in path order without copying.
  void visit(MetricVisitor& v) const;

 private:
  struct Slot {
    MetricKind kind = MetricKind::kCounter;
    std::uint32_t index = 0;
  };

  Slot& slot_for(std::string_view path, MetricKind kind);

  /// Sorted map gives snapshots and reports deterministic path order;
  /// deques keep metric addresses stable as the registry grows.
  std::map<std::string, Slot, std::less<>> slots_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

/// Join two path segments with '/' (either side may be empty).
std::string path_join(std::string_view prefix, std::string_view name);

/// Format an indexed path segment ("client07", "tenant00") with the index
/// zero-padded to the width of `count - 1`. Lexicographic path order (the
/// registry map, the snapshot, the JSON report) then equals numeric index
/// order for any family of up to `count` siblings — without padding,
/// "client10" sorts before "client2" and per-index series shift position in
/// snapshot diffs whenever the family size crosses a power of ten.
std::string indexed_path(std::string_view stem, std::uint32_t index,
                         std::uint32_t count);

}  // namespace nexus::telemetry
