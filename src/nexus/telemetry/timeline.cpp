#include "nexus/telemetry/timeline.hpp"

#include <algorithm>

#include "nexus/common/assert.hpp"
#include "nexus/telemetry/metrics.hpp"
#include "nexus/telemetry/registry.hpp"
#include "nexus/telemetry/writers.hpp"

namespace nexus::telemetry {

namespace {

bool glob_match_impl(const char* p, const char* pe, const char* s,
                     const char* se) {
  while (p != pe) {
    if (*p == '*') {
      const bool cross = p + 1 != pe && p[1] == '*';
      const char* pn = p + (cross ? 2 : 1);
      for (const char* t = s;; ++t) {
        if (glob_match_impl(pn, pe, t, se)) return true;
        if (t == se) return false;
        if (!cross && *t == '/') return false;
      }
    }
    if (s == se) return false;
    if (*p == '?') {
      if (*s == '/') return false;
    } else if (*p != *s) {
      return false;
    }
    ++p;
    ++s;
  }
  return s == se;
}

}  // namespace

bool path_glob_match(std::string_view pattern, std::string_view path) {
  return glob_match_impl(pattern.data(), pattern.data() + pattern.size(),
                         path.data(), path.data() + path.size());
}

bool selectors_match(const std::vector<std::string>& selectors,
                     std::string_view path) {
  if (selectors.empty()) return true;
  for (const auto& sel : selectors)
    if (path_glob_match(sel, path)) return true;
  return false;
}

const TimelineSeries* Timeline::find(std::string_view path) const {
  for (const auto& s : series)
    if (s.path == path) return &s;
  return nullptr;
}

TimelineRecorder::TimelineRecorder(const MetricRegistry& reg,
                                   TimelineConfig cfg)
    : reg_(reg), cfg_(std::move(cfg)), interval_(cfg_.interval_ps) {
  NEXUS_ASSERT_MSG(cfg_.interval_ps > 0, "timeline interval must be positive");
  NEXUS_ASSERT_MSG(cfg_.max_points >= 2, "timeline needs at least two points");
}

void TimelineRecorder::sample_until(TimeTick t) {
  while (next_t_ <= t) {
    record_row(next_t_);
    next_t_ += interval_;
    if (times_.size() > cfg_.max_points) coarsen();
  }
}

void TimelineRecorder::skip_until(TimeTick t) {
  NEXUS_ASSERT_MSG(series_.empty(),
                   "skip_until must precede the first recorded sample");
  while (next_t_ <= t) {
    times_.push_back(next_t_);
    next_t_ += interval_;
    if (times_.size() > cfg_.max_points) coarsen();
  }
}

void TimelineRecorder::finish(TimeTick t) {
  if (!times_.empty() && t <= times_.back()) return;
  // Coarsen *before* appending: coarsen keeps even-indexed rows only, so
  // appending first could land the final makespan row on an odd index and
  // immediately decimate away the very row this call promises to record.
  if (times_.size() + 1 > cfg_.max_points) coarsen();
  record_row(t);
  next_t_ = std::max(next_t_, t + interval_);
}

void TimelineRecorder::record_row(TimeTick t) {
  times_.push_back(t);

  // Re-scan the registry so metrics registered after earlier rows are
  // picked up; their series get a zero prefix to stay aligned.
  struct Sampler final : MetricVisitor {
    TimelineRecorder* rec;
    std::size_t row;  ///< index of the row being filled

    void append(std::string_view path, MetricKind kind, std::int64_t value) {
      auto it = rec->index_.find(path);
      if (it == rec->index_.end()) {
        TimelineSeries s;
        s.path = std::string(path);
        s.kind = kind;
        s.v.assign(row, 0);  // back-fill rows before the metric existed
        rec->series_.push_back(std::move(s));
        it = rec->index_.emplace(std::string(path), rec->series_.size() - 1)
                 .first;
      }
      rec->series_[it->second].v.push_back(value);
    }

    void on_counter(std::string_view path, const Counter& c) override {
      append(path, MetricKind::kCounter, static_cast<std::int64_t>(c.value()));
    }
    void on_gauge(std::string_view path, const Gauge& g) override {
      append(path, MetricKind::kGauge, g.value());
    }
    void on_histogram(std::string_view path, const Histogram& h) override {
      // Split into two monotone series; windowed mean = delta(sum)/delta(count).
      append(std::string(path) + ":count", MetricKind::kCounter,
             static_cast<std::int64_t>(h.count()));
      append(std::string(path) + ":sum", MetricKind::kCounter,
             static_cast<std::int64_t>(h.sum()));
    }
  };

  struct Filter final : MetricVisitor {
    Sampler* inner;
    const std::vector<std::string>* select;
    void on_counter(std::string_view path, const Counter& c) override {
      if (selectors_match(*select, path)) inner->on_counter(path, c);
    }
    void on_gauge(std::string_view path, const Gauge& g) override {
      if (selectors_match(*select, path)) inner->on_gauge(path, g);
    }
    void on_histogram(std::string_view path, const Histogram& h) override {
      if (selectors_match(*select, path)) inner->on_histogram(path, h);
    }
  };

  Sampler sampler;
  sampler.rec = this;
  sampler.row = times_.size() - 1;
  Filter filter;
  filter.inner = &sampler;
  filter.select = &cfg_.select;
  reg_.visit(filter);

  // A series whose metric vanished can't happen (registries only grow), so
  // after the visit every series is exactly `times_.size()` long.
  for ([[maybe_unused]] const auto& s : series_)
    NEXUS_DCHECK(s.v.size() == times_.size());
}

void TimelineRecorder::coarsen() {
  // Keep even-indexed rows, double the interval: resolution halves but the
  // covered range is preserved, deterministically.
  std::size_t out = 0;
  for (std::size_t i = 0; i < times_.size(); i += 2) times_[out++] = times_[i];
  times_.resize(out);
  for (auto& s : series_) {
    out = 0;
    for (std::size_t i = 0; i < s.v.size(); i += 2) s.v[out++] = s.v[i];
    s.v.resize(out);
  }
  interval_ *= 2;
  next_t_ = times_.back() + interval_;
}

Timeline TimelineRecorder::freeze() const {
  Timeline tl;
  tl.interval = interval_;
  tl.t = times_;
  tl.series.reserve(series_.size());
  for (const auto& [path, idx] : index_) tl.series.push_back(series_[idx]);
  return tl;
}

std::vector<std::int64_t> delta_encode(const std::vector<std::int64_t>& v) {
  std::vector<std::int64_t> out;
  out.reserve(v.size());
  std::int64_t prev = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    out.push_back(i == 0 ? v[i] : v[i] - prev);
    prev = v[i];
  }
  return out;
}

std::vector<std::int64_t> delta_decode(const std::vector<std::int64_t>& v) {
  std::vector<std::int64_t> out;
  out.reserve(v.size());
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    acc = i == 0 ? v[i] : acc + v[i];
    out.push_back(acc);
  }
  return out;
}

namespace {

void append_values(JsonWriter& w, const std::vector<std::int64_t>& v,
                   bool delta) {
  w.begin_array();
  if (delta) {
    for (const std::int64_t d : delta_encode(v)) w.value(d);
  } else {
    for (const std::int64_t x : v) w.value(x);
  }
  w.end_array();
}

}  // namespace

void append_timeline(JsonWriter& w, const Timeline& tl, bool delta) {
  w.begin_object();
  w.kv("interval_ps", tl.interval);
  w.kv("points", static_cast<std::uint64_t>(tl.t.size()));
  w.kv("encoding", delta ? "delta" : "raw");
  w.key("t");
  {
    std::vector<std::int64_t> t(tl.t.begin(), tl.t.end());
    append_values(w, t, delta);
  }
  w.key("series").begin_object();
  for (const auto& s : tl.series) {
    w.key(s.path).begin_object();
    w.kv("kind", to_string(s.kind));
    w.key("v");
    // Gauges may move in both directions; deltas would not compress them
    // and complicate decoding, so only monotone (counter-kind) series are
    // delta-encoded.
    append_values(w, s.v, delta && s.kind == MetricKind::kCounter);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string timeline_json(const Timeline& tl, bool delta) {
  JsonWriter w;
  append_timeline(w, tl, delta);
  return w.str();
}

std::string timeline_csv(const Timeline& tl) {
  std::vector<std::string> header{"t_ps"};
  for (const auto& s : tl.series) header.push_back(s.path);
  CsvWriter w(std::move(header));
  for (std::size_t row = 0; row < tl.t.size(); ++row) {
    std::vector<std::string> cells{std::to_string(tl.t[row])};
    for (const auto& s : tl.series) cells.push_back(std::to_string(s.v[row]));
    w.row(cells);
  }
  return w.str();
}

}  // namespace nexus::telemetry
