// The Dependence Counts Arbiter (Fig. 2, Section IV-C/D).
//
// Gathers per-task-graph results — ready tasks, waiting-task kicks and
// dependence-count records — and concludes each task's global state. While
// a task's parameters are still in flight across graphs its partial count
// lives in the Sim(-ultaneous) Tasks buffer; concluded nonzero counts park
// in the global Dep Counts Table; ready tasks flow through the Internal
// Ready Tasks buffer to the Write-Back unit. The gather logic tolerates
// arbitrary record reordering across the interconnect: a kReady that beats
// its task's kMeta descriptor parks in the Sim Tasks buffer until the
// descriptor lands (the price of routing kMeta over a real NoC instead of
// a zero-cost side-band).
//
// The arbiter serves one record per grant with the paper's priority
// (Ready > Waiting > DepCounts), which keeps the forwarding path short and
// gives the task graphs time to work (Section IV-D).
#pragma once

#include <cstdint>
#include <deque>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "nexus/hw/dep_counts_table.hpp"
#include "nexus/noc/network.hpp"
#include "nexus/nexussharp/config.hpp"
#include "nexus/runtime/manager.hpp"
#include "nexus/sim/server.hpp"
#include "nexus/sim/simulation.hpp"

namespace nexus::detail {

class SharpArbiter final : public Component {
 public:
  /// `self_node`/`dst_node` place the arbiter on the on-manager NoC and
  /// pick where its write-back records go. The defaults (-1) are the flat
  /// single-arbiter placement: arbiter tile -> IO tile. Clustered mode
  /// reuses this class as a *leaf* arbiter — self is the cluster's leaf
  /// tile and records go to the root arbiter tile instead; the attached
  /// RuntimeHost is then a relay that converts task_ready into a
  /// cluster-ready report.
  SharpArbiter(const NexusSharpConfig& cfg, ArbiterPolicy policy,
               noc::Network* net, std::int64_t self_node = -1,
               std::int64_t dst_node = -1);

  void attach(Simulation& sim, RuntimeHost* host);

  /// Component id for event addressing (valid after attach).
  [[nodiscard]] std::uint32_t component_id() const { return self_; }

  // --- inputs from the task graphs / input parser (event-scheduled by the
  //     caller at result-buffer visibility time) ---
  enum Op : std::uint32_t {
    kReady = 0,  ///< a = task: single-param immediately-ready record
    kWait = 1,   ///< a = task: one kicked waiter (one dependence satisfied)
    kDep = 2,    ///< a = task | contributes<<32, b = source task graph
    kMeta = 3,   ///< a = task | nparams<<32 | tenant<<48: Task Pool
                 ///  descriptor committed (nparams is 16 bits; the tenant
                 ///  field is 0 outside multi-tenant runs).
                 ///  May arrive after the task's kReady when the descriptor
                 ///  crosses a non-ideal NoC; the ready record then parks in
                 ///  the Sim Tasks buffer until the descriptor lands.
    kWbDone = 4, ///< a = task: write-back completed -> host
    kPump = 5,
  };

  void handle(Simulation& sim, const Event& ev) override;

  [[nodiscard]] const char* telemetry_label() const override {
    return "arbiter";
  }

  /// Register grant/conflict/queue metrics (and the dep-counts table's)
  /// under `prefix`.
  void bind_telemetry(telemetry::MetricRegistry& reg, std::string_view prefix);

  /// Attach a span recorder: resolution stamps at write-back entry, grant
  /// occupancy spans, dep-count depth counters.
  void bind_trace(telemetry::TraceRecorder* trace);

  // --- stats ---
  [[nodiscard]] std::uint64_t ready_delivered() const { return delivered_; }
  [[nodiscard]] Tick busy_time() const { return busy_; }
  [[nodiscard]] const hw::DepCountsTable& dep_counts() const { return depcounts_; }
  [[nodiscard]] hw::DepCountsTable& dep_counts() { return depcounts_; }
  [[nodiscard]] std::uint64_t peak_sim_tasks() const { return peak_sim_tasks_; }
  /// Tasks still gathering records; must be 0 once a run drains.
  [[nodiscard]] std::size_t sim_tasks_live() const { return sim_tasks_.size(); }
  /// Ready records that arrived before their descriptor and had to park.
  [[nodiscard]] std::uint64_t meta_parks() const { return meta_parks_; }

 private:
  struct SimTask {
    std::uint32_t nparams = 0;      ///< valid once meta_arrived
    std::uint32_t seen = 0;         ///< dep-count records gathered
    std::uint32_t total = 0;        ///< blocked-parameter tally
    std::uint32_t pending_dec = 0;  ///< kicks that raced ahead of gathering
    std::uint16_t tenant = 0;       ///< from kMeta; attributes parked entries
    bool meta_arrived = false;      ///< kMeta descriptor landed
    bool ready_parked = false;      ///< kReady overtook kMeta; release on meta
  };

  [[nodiscard]] Tick cycles(std::int64_t n) const { return clk_.cycles(n); }
  void pump(Simulation& sim);
  void conclude_if_complete(Simulation& sim, TaskId id, SimTask& st, Tick at);
  void to_writeback(Simulation& sim, Tick from, TaskId id);

  const NexusSharpConfig& cfg_;
  ArbiterPolicy policy_;
  noc::Network* net_;  ///< write-back returns self_node_ -> dst_node_
  noc::NodeId self_node_ = 0;
  noc::NodeId dst_node_ = 0;
  ClockDomain clk_;
  RuntimeHost* host_ = nullptr;
  std::uint32_t self_ = 0;

  [[nodiscard]] bool dep_pending() const;

  std::deque<TaskId> ready_q_;
  std::deque<TaskId> wait_q_;
  /// Per-task-graph Dep. Counts buffers: one gather grant (2 cycles) reads
  /// one record from EVERY nonempty buffer in parallel — the paper's
  /// best-case "two cycles to collect the results of all the task graphs".
  std::vector<std::deque<std::uint64_t>> dep_q_;
  std::uint32_t rr_next_ = 0;  ///< for the round-robin ablation policy

  std::unordered_map<TaskId, SimTask> sim_tasks_;
  hw::DepCountsTable depcounts_;
  Server wb_;
  Tick port_free_ = 0;
  bool pump_pending_ = false;

  std::uint64_t delivered_ = 0;
  Tick busy_ = 0;
  telemetry::TraceRecorder* trace_ = nullptr;
  std::uint64_t peak_sim_tasks_ = 0;
  std::uint64_t meta_parks_ = 0;

  telemetry::Counter* m_grants_ready_ = nullptr;  ///< Ready Tasks grants
  telemetry::Counter* m_grants_wait_ = nullptr;   ///< Waiting Tasks grants
  telemetry::Counter* m_grants_dep_ = nullptr;    ///< Dep Counts gather grants
  telemetry::Counter* m_conflicts_ = nullptr;  ///< grants with >1 class pending
  telemetry::Counter* m_retries_ = nullptr;    ///< pumps deferred on busy port
  telemetry::Counter* m_meta_parks_ = nullptr;  ///< readies that beat their meta
  telemetry::Histogram* m_ready_depth_ = nullptr;  ///< Ready Tasks buffer depth
  telemetry::Histogram* m_wait_depth_ = nullptr;   ///< Waiting Tasks depth
};

}  // namespace nexus::detail
