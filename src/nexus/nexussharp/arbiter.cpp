#include "nexus/nexussharp/arbiter.hpp"

#include <algorithm>

#include "nexus/telemetry/registry.hpp"
#include "nexus/telemetry/trace.hpp"

namespace nexus {

const char* to_string(ArbiterPolicy p) {
  switch (p) {
    case ArbiterPolicy::kReadyFirst: return "ready-first";
    case ArbiterPolicy::kDepFirst: return "dep-first";
    case ArbiterPolicy::kRoundRobin: return "round-robin";
  }
  return "?";
}

namespace detail {

SharpArbiter::SharpArbiter(const NexusSharpConfig& cfg, ArbiterPolicy policy,
                           noc::Network* net, std::int64_t self_node,
                           std::int64_t dst_node)
    : cfg_(cfg), policy_(policy), net_(net),
      self_node_(self_node < 0 ? sharp_arbiter_node(cfg.num_task_graphs)
                               : static_cast<noc::NodeId>(self_node)),
      dst_node_(dst_node < 0 ? sharp_io_node()
                             : static_cast<noc::NodeId>(dst_node)),
      clk_(cfg.freq_mhz), dep_q_(cfg.num_task_graphs) {
  NEXUS_ASSERT(net != nullptr);
  if (cfg.tenancy.enabled()) depcounts_.configure_tenancy(cfg.tenancy.tenants);
}

bool SharpArbiter::dep_pending() const {
  for (const auto& q : dep_q_)
    if (!q.empty()) return true;
  return false;
}

void SharpArbiter::attach(Simulation& sim, RuntimeHost* host) {
  host_ = host;
  self_ = sim.add_component(this);
}

void SharpArbiter::bind_telemetry(telemetry::MetricRegistry& reg,
                                  std::string_view prefix) {
  depcounts_.bind_telemetry(reg, telemetry::path_join(prefix, "dep_counts"));
  m_grants_ready_ = &reg.counter(telemetry::path_join(prefix, "grants_ready"));
  m_grants_wait_ = &reg.counter(telemetry::path_join(prefix, "grants_wait"));
  m_grants_dep_ = &reg.counter(telemetry::path_join(prefix, "grants_dep"));
  m_conflicts_ = &reg.counter(telemetry::path_join(prefix, "conflicts"));
  m_retries_ = &reg.counter(telemetry::path_join(prefix, "retries"));
  m_meta_parks_ = &reg.counter(telemetry::path_join(prefix, "meta_parks"));
  m_ready_depth_ = &reg.histogram(telemetry::path_join(prefix, "ready_q_depth"));
  m_wait_depth_ = &reg.histogram(telemetry::path_join(prefix, "wait_q_depth"));
}

void SharpArbiter::bind_trace(telemetry::TraceRecorder* trace) {
  trace_ = trace;
  depcounts_.bind_trace(trace, "nexus#/dep_counts");
}

void SharpArbiter::handle(Simulation& sim, const Event& ev) {
  switch (ev.op) {
    case kReady: {
      const auto id = static_cast<TaskId>(ev.a);
      SimTask& st = sim_tasks_[id];
      if (st.meta_arrived) {
        // A single-param ready record supersedes any gathering state.
        ready_q_.push_back(id);
        sim_tasks_.erase(id);
        telemetry::record(m_ready_depth_, ready_q_.size());
      } else {
        // The ready record overtook its descriptor on the interconnect:
        // park it — forwarding now would let the host dispatch a task whose
        // Task Pool entry the write-back path cannot yet resolve.
        st.ready_parked = true;
        ++meta_parks_;
        telemetry::inc(m_meta_parks_);
        peak_sim_tasks_ =
            std::max<std::uint64_t>(peak_sim_tasks_, sim_tasks_.size());
      }
      pump(sim);
      break;
    }
    case kWait:
      wait_q_.push_back(static_cast<TaskId>(ev.a));
      telemetry::record(m_wait_depth_, wait_q_.size());
      pump(sim);
      break;
    case kDep:
      NEXUS_DCHECK(ev.b < dep_q_.size());
      dep_q_[ev.b].push_back(ev.a);
      pump(sim);
      break;
    case kMeta: {
      const auto id = static_cast<TaskId>(ev.a & 0xFFFFFFFF);
      const auto nparams = static_cast<std::uint32_t>((ev.a >> 32) & 0xFFFF);
      SimTask& st = sim_tasks_[id];
      st.nparams = nparams;
      st.tenant = static_cast<std::uint16_t>(ev.a >> 48);
      st.meta_arrived = true;
      peak_sim_tasks_ = std::max<std::uint64_t>(peak_sim_tasks_, sim_tasks_.size());
      if (st.ready_parked) {
        // Release the ready record that overtook this descriptor: the task
        // bypasses gathering (single-param short-circuit) now that the
        // write-back path can resolve it.
        ready_q_.push_back(id);
        sim_tasks_.erase(id);
        telemetry::record(m_ready_depth_, ready_q_.size());
      } else {
        conclude_if_complete(sim, id, st, sim.now());
      }
      pump(sim);
      break;
    }
    case kWbDone:
      ++delivered_;
      host_->task_ready(sim, static_cast<TaskId>(ev.a));
      break;
    case kPump:
      pump_pending_ = false;
      pump(sim);
      break;
    default:
      NEXUS_ASSERT_MSG(false, "unknown SharpArbiter op");
  }
}

void SharpArbiter::pump(Simulation& sim) {
  const Tick now = sim.now();
  if (now < port_free_) {
    telemetry::inc(m_retries_);
    if (!pump_pending_) {
      pump_pending_ = true;
      sim.schedule(port_free_, self_, kPump);
    }
    return;
  }

  // Grant one buffer class according to the configured priority policy.
  enum Class { kClsReady, kClsWait, kClsDep, kClsNone };
  Class pick = kClsNone;
  switch (policy_) {
    case ArbiterPolicy::kReadyFirst:
      pick = !ready_q_.empty()  ? kClsReady
             : !wait_q_.empty() ? kClsWait
             : dep_pending()    ? kClsDep
                                : kClsNone;
      break;
    case ArbiterPolicy::kDepFirst:
      pick = dep_pending()       ? kClsDep
             : !wait_q_.empty()  ? kClsWait
             : !ready_q_.empty() ? kClsReady
                                 : kClsNone;
      break;
    case ArbiterPolicy::kRoundRobin:
      for (std::uint32_t i = 0; i < 3 && pick == kClsNone; ++i) {
        const std::uint32_t cls = (rr_next_ + i) % 3;
        if (cls == 0 && !ready_q_.empty()) pick = kClsReady;
        if (cls == 1 && !wait_q_.empty()) pick = kClsWait;
        if (cls == 2 && dep_pending()) pick = kClsDep;
      }
      rr_next_ = (rr_next_ + 1) % 3;
      break;
  }
  if (pick == kClsNone) return;

  // A conflict: more than one buffer class competed for this grant — the
  // contention the service-priority policy (and its ablation) is about.
  const int pending = (ready_q_.empty() ? 0 : 1) + (wait_q_.empty() ? 0 : 1) +
                      (dep_pending() ? 1 : 0);
  if (pending > 1) telemetry::inc(m_conflicts_);

  Tick cost = 0;
  switch (pick) {
    case kClsReady: {
      const TaskId id = ready_q_.front();
      ready_q_.pop_front();
      cost = cycles(cfg_.arb_ready_cycles);
      telemetry::inc(m_grants_ready_);
      if (trace_ != nullptr)
        trace_->unit_span("sharp/arbiter", "ready", id, now, cost);
      to_writeback(sim, now + cost, id);
      break;
    }
    case kClsWait: {
      // "Decrements the dependence counts of those waiting tasks one by
      // one" (Section IV-C).
      const TaskId id = wait_q_.front();
      wait_q_.pop_front();
      cost = cycles(cfg_.arb_wait_cycles);
      telemetry::inc(m_grants_wait_);
      if (trace_ != nullptr)
        trace_->unit_span("sharp/arbiter", "wait", id, now, cost);
      const auto it = sim_tasks_.find(id);
      if (it != sim_tasks_.end()) {
        // Kick raced ahead of (or into) the gathering phase: absorb it in
        // the Sim Tasks buffer (Section IV-C's "simultaneous" case).
        ++it->second.pending_dec;
        conclude_if_complete(sim, id, it->second, now + cost);
      } else if (depcounts_.decrement(id, now + cost)) {
        to_writeback(sim, now + cost, id);
      }
      break;
    }
    case kClsDep: {
      // One gather grant reads a record from every nonempty Dep. Counts
      // buffer in parallel: "the arbiter consumes only two cycles, to
      // collect the results of all the task graphs" (Section IV-D).
      cost = cycles(cfg_.arb_dep_cycles);
      telemetry::inc(m_grants_dep_);
      if (trace_ != nullptr)
        trace_->unit_span("sharp/arbiter", "gather", 0, now, cost);
      for (auto& q : dep_q_) {
        if (q.empty()) continue;
        const std::uint64_t rec = q.front();
        q.pop_front();
        const auto id = static_cast<TaskId>(rec & 0xFFFFFFFF);
        const auto contributes = static_cast<std::uint32_t>(rec >> 32);
        SimTask& st = sim_tasks_[id];
        ++st.seen;
        st.total += contributes;
        peak_sim_tasks_ =
            std::max<std::uint64_t>(peak_sim_tasks_, sim_tasks_.size());
        conclude_if_complete(sim, id, st, now + cost);
      }
      break;
    }
    case kClsNone:
      break;
  }
  port_free_ = now + cost;
  busy_ += cost;
  if (!ready_q_.empty() || !wait_q_.empty() || dep_pending()) {
    if (!pump_pending_) {
      pump_pending_ = true;
      sim.schedule(port_free_, self_, kPump);
    }
  }
}

void SharpArbiter::conclude_if_complete(Simulation& sim, TaskId id, SimTask& st,
                                        Tick at) {
  if (!st.meta_arrived || st.seen < st.nparams) return;  // still gathering
  NEXUS_ASSERT_MSG(st.seen == st.nparams, "gathered more records than params");
  NEXUS_ASSERT_MSG(st.pending_dec <= st.total, "kick without a queued param");
  const std::uint32_t remaining = st.total - st.pending_dec;
  const std::uint16_t tenant = st.tenant;
  sim_tasks_.erase(id);  // invalidates st
  if (remaining == 0) {
    to_writeback(sim, at, id);
  } else {
    depcounts_.set(id, remaining, at, tenant);
  }
}

void SharpArbiter::to_writeback(Simulation& sim, Tick from, TaskId id) {
  // Internal Ready Tasks FIFO (3 cycles) then the Write-Back stage
  // (3 cycles: reads the Function Pointers table, forwards to Nexus IO).
  if (trace_ != nullptr) trace_->on_resolved(id, from);
  const Tick start = std::max(from + cycles(cfg_.fifo_latency), sim.now());
  const Tick done = wb_.acquire(start, cycles(cfg_.writeback_cycles));
  if (net_->ideal()) {
    // Legacy behaviour: the WB->IO forward is free (folded into
    // writeback_cycles). Kept exactly so the default config stays
    // bit-identical to the pre-NoC model.
    sim.schedule(done, self_, kWbDone, id);
  } else {
    // On a real topology the ready record crosses the interconnect from
    // this arbiter's tile back to its consumer (IO tile in flat mode, the
    // root arbiter in clustered mode): ready id + function pointer, one
    // parameter-sized payload.
    net_->send(sim, done, self_node_, dst_node_, self_, kWbDone, id, 0,
               noc::kParamBytes);
  }
}

}  // namespace detail
}  // namespace nexus
