// The root of the clustered arbiter hierarchy (arbiter_clusters >= 2).
//
// Each cluster's leaf arbiter (a SharpArbiter with re-pointed NoC nodes)
// resolves the dependences its own task graphs track and reports "this
// task has drained in my cluster". The root ANDs those per-cluster reports:
// once every participating cluster has reported, the task is globally
// ready and enters the root's per-tenant ready queues. The root grants
// from those queues weighted-round-robin (TenancyConfig::weights) — the
// QoS mechanism that stops one heavy tenant from monopolizing the
// write-back port — or strictly FIFO in arrival order when
// TenancyConfig::weighted is false (the baseline the fairness bench
// measures against). The granted task then takes the same internal-FIFO +
// Write-Back path as the flat arbiter before reaching Nexus IO.
#pragma once

#include <cstdint>
#include <deque>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "nexus/noc/network.hpp"
#include "nexus/nexussharp/config.hpp"
#include "nexus/runtime/manager.hpp"
#include "nexus/sim/server.hpp"
#include "nexus/sim/simulation.hpp"

namespace nexus::detail {

class RootArbiter final : public Component {
 public:
  RootArbiter(const NexusSharpConfig& cfg, noc::Network* net);

  void attach(Simulation& sim, RuntimeHost* host);

  [[nodiscard]] std::uint32_t component_id() const { return self_; }

  enum Op : std::uint32_t {
    kMeta = 0,    ///< a = task | nclusters<<32 | tenant<<48
    kWbDone = 1,  ///< a = task: write-back completed -> host
    kPump = 2,
  };

  void handle(Simulation& sim, const Event& ev) override;

  /// A leaf arbiter drained `id` in its cluster (called by the per-cluster
  /// relay after the leaf's report crossed the interconnect).
  void cluster_ready(Simulation& sim, TaskId id);

  [[nodiscard]] const char* telemetry_label() const override { return "root"; }

  void bind_telemetry(telemetry::MetricRegistry& reg, std::string_view prefix);
  void bind_trace(telemetry::TraceRecorder* trace) { trace_ = trace; }

  // --- stats ---
  [[nodiscard]] std::uint64_t ready_delivered() const { return delivered_; }
  [[nodiscard]] Tick busy_time() const { return busy_; }
  /// Tasks mid-merge or queued for grant; must be 0 once a run drains.
  [[nodiscard]] std::size_t live() const { return sim_tasks_.size() + queued_; }

 private:
  struct SimTask {
    std::uint32_t nclusters = 0;  ///< participating clusters (valid w/ meta)
    std::uint32_t seen = 0;       ///< cluster-ready reports gathered
    std::uint16_t tenant = 0;
    bool meta_arrived = false;
  };

  [[nodiscard]] Tick cycles(std::int64_t n) const { return clk_.cycles(n); }
  void enqueue_ready(Simulation& sim, TaskId id, std::uint16_t tenant);
  void pump(Simulation& sim);
  void to_writeback(Simulation& sim, Tick from, TaskId id);

  const NexusSharpConfig& cfg_;
  noc::Network* net_;
  ClockDomain clk_;
  RuntimeHost* host_ = nullptr;
  std::uint32_t self_ = 0;

  std::unordered_map<TaskId, SimTask> sim_tasks_;
  /// One ready queue per tenant (a single queue when tenancy is disabled
  /// or the FIFO baseline is selected).
  std::vector<std::deque<TaskId>> queues_;
  std::size_t queued_ = 0;
  std::uint32_t cur_tenant_ = 0;   ///< WRR pointer
  std::uint32_t credits_ = 0;      ///< grants left for cur_tenant_'s burst
  Server wb_;
  Tick port_free_ = 0;
  bool pump_pending_ = false;

  std::uint64_t delivered_ = 0;
  Tick busy_ = 0;
  telemetry::TraceRecorder* trace_ = nullptr;

  telemetry::Counter* m_grants_ = nullptr;        ///< ready tasks granted
  telemetry::Counter* m_merges_ = nullptr;        ///< cluster reports merged
  telemetry::Histogram* m_ready_depth_ = nullptr; ///< total queued, per enqueue
  std::vector<telemetry::Counter*> m_tenant_grants_;  ///< per-tenant grants
};

/// The RuntimeHost shim attached to each leaf arbiter in clustered mode:
/// the leaf's "task ready" (its write-back record, after crossing the
/// leaf -> root interconnect hop) becomes a cluster-ready report into the
/// root's merge stage. Leaves never drive the master.
class ClusterRelay final : public RuntimeHost {
 public:
  explicit ClusterRelay(RootArbiter* root) : root_(root) {
    NEXUS_ASSERT(root != nullptr);
  }
  void task_ready(Simulation& sim, TaskId id) override {
    root_->cluster_ready(sim, id);
  }
  void master_resume(Simulation&) override {
    NEXUS_ASSERT_MSG(false, "leaf arbiters never resume the master");
  }

 private:
  RootArbiter* root_;
};

}  // namespace nexus::detail
