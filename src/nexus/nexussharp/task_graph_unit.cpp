#include "nexus/nexussharp/task_graph_unit.hpp"

#include <algorithm>

#include "nexus/telemetry/registry.hpp"
#include "nexus/telemetry/trace.hpp"

namespace nexus::detail {

TaskGraphUnit::TaskGraphUnit(const NexusSharpConfig& cfg, std::uint32_t index,
                             SharpArbiter* arbiter, noc::Network* net,
                             std::int64_t arb_node)
    : cfg_(cfg), index_(index), arbiter_(arbiter), net_(net),
      arb_node_(arb_node < 0 ? sharp_arbiter_node(cfg.num_task_graphs)
                             : static_cast<noc::NodeId>(arb_node)),
      clk_(cfg.freq_mhz), table_(cfg.table) {
  NEXUS_ASSERT(arbiter != nullptr && net != nullptr);
  if (cfg.tenancy.enabled()) table_.configure_tenancy(cfg.tenancy.tenants);
}

void TaskGraphUnit::attach(Simulation& sim) { self_ = sim.add_component(this); }

void TaskGraphUnit::bind_telemetry(telemetry::MetricRegistry& reg,
                                   std::string_view prefix) {
  table_.bind_telemetry(reg, telemetry::path_join(prefix, "table"));
  m_new_depth_ = &reg.histogram(telemetry::path_join(prefix, "new_q_depth"));
  m_fin_depth_ = &reg.histogram(telemetry::path_join(prefix, "fin_q_depth"));
  m_args_ = &reg.counter(telemetry::path_join(prefix, "args"));
  m_kicks_ = &reg.counter(telemetry::path_join(prefix, "kicks"));
}

void TaskGraphUnit::bind_trace(telemetry::TraceRecorder* trace) {
  trace_ = trace;
  trace_track_ = "sharp/tg" + std::to_string(index_);
}

std::uint64_t TaskGraphUnit::pack(const Arg& a) {
  return static_cast<std::uint64_t>(a.task) |
         (static_cast<std::uint64_t>(a.is_writer) << 32) |
         (static_cast<std::uint64_t>(a.single_param) << 33) |
         (static_cast<std::uint64_t>(a.tenant) << 34);
}

TaskGraphUnit::Arg TaskGraphUnit::unpack(std::uint64_t meta, Addr addr) {
  Arg a;
  a.task = static_cast<TaskId>(meta & 0xFFFFFFFF);
  a.is_writer = (meta >> 32) & 1;
  a.single_param = (meta >> 33) & 1;
  a.tenant = static_cast<std::uint16_t>((meta >> 34) & 0xFFFF);
  a.addr = addr;
  return a;
}

void TaskGraphUnit::handle(Simulation& sim, const Event& ev) {
  switch (ev.op) {
    case kNewArg:
      new_q_.push_back(unpack(ev.a, ev.b));
      peak_queue_ = std::max<std::uint64_t>(peak_queue_, new_q_.size());
      telemetry::record(m_new_depth_, new_q_.size());
      pump(sim);
      break;
    case kFinishedArg:
      fin_q_.push_back(unpack(ev.a, ev.b));
      telemetry::record(m_fin_depth_, fin_q_.size());
      pump(sim);
      break;
    case kPump:
      pump_pending_ = false;
      pump(sim);
      break;
    default:
      NEXUS_ASSERT_MSG(false, "unknown TaskGraphUnit op");
  }
}

void TaskGraphUnit::pump(Simulation& sim) {
  const Tick now = sim.now();
  if (now < port_free_) {
    if (!pump_pending_) {
      pump_pending_ = true;
      sim.schedule(port_free_, self_, kPump);
    }
    return;
  }

  Tick cost = 0;
  if (!fin_q_.empty()) {
    // Finished args first: they release table space (deadlock freedom) and
    // have "potential ready tasks" behind them (Section IV-D priorities).
    const Arg a = fin_q_.front();
    fin_q_.pop_front();
    cost = serve_finished(sim, a);
  } else if (!new_q_.empty()) {
    if (!serve_new(sim, &cost)) return;  // stalled: wait for a finish
  } else {
    return;
  }

  ++processed_;
  telemetry::inc(m_args_);
  port_free_ = now + cost;
  busy_ += cost;
  if (!fin_q_.empty() || !new_q_.empty()) {
    if (!pump_pending_) {
      pump_pending_ = true;
      sim.schedule(port_free_, self_, kPump);
    }
  }
}

Tick TaskGraphUnit::serve_finished(Simulation& sim, const Arg& a) {
  kicked_scratch_.clear();
  const auto res = table_.finish(a.addr, a.task, &kicked_scratch_);
  const Tick cost =
      cycles(cfg_.tg_finish_per_param +
             cfg_.chain_hop_cycles * static_cast<std::int64_t>(res.chain_hops) +
             cfg_.kick_enqueue_cycles *
                 static_cast<std::int64_t>(kicked_scratch_.size()));
  const Tick done = sim.now() + cost;
  // Kicked waiters land in the Waiting Tasks buffer; the arbiter sees them
  // once the record crosses the interconnect (ideal: the FIFO visibility
  // latency; ring/mesh: the tg->arbiter route).
  telemetry::inc(m_kicks_, kicked_scratch_.size());
  if (trace_ != nullptr) {
    trace_->unit_span(trace_track_, "finish", a.task, sim.now(), cost);
    for (const auto& w : kicked_scratch_) trace_->on_dep(a.task, w.task, done);
  }
  for (const auto& w : kicked_scratch_) {
    net_->send(sim, done, sharp_tg_node(index_), arb_node_,
               arbiter_->component_id(), SharpArbiter::kWait, w.task);
  }
  if (res.entry_freed && stalled_) stalled_ = false;
  return cost;
}

bool TaskGraphUnit::serve_new(Simulation& sim, Tick* cost) {
  NEXUS_ASSERT(!new_q_.empty());
  const Arg a = new_q_.front();
  const auto res = table_.insert(a.addr, a.task, a.is_writer, a.tenant);
  if (res.kind == hw::TaskGraphTable::InsertKind::kNoSpace) {
    // "The task graph must then wait until one task finishes, which its
    // parameters share the same line" (Section IV-D).
    stalled_ = true;
    return false;
  }
  stalled_ = false;
  new_q_.pop_front();
  *cost =
      cycles(cfg_.tg_insert_per_param +
             cfg_.chain_hop_cycles * static_cast<std::int64_t>(res.chain_hops));
  const Tick done = sim.now() + *cost;
  if (trace_ != nullptr)
    trace_->unit_span(trace_track_, "insert", a.task, sim.now(), *cost);
  const bool runs_now = res.kind == hw::TaskGraphTable::InsertKind::kRunsNow;
  if (runs_now && a.single_param) {
    // Immediately-ready single-parameter task: skip the gather step via the
    // Ready Tasks buffer (Section IV-C's short-circuit).
    net_->send(sim, done, sharp_tg_node(index_), arb_node_,
               arbiter_->component_id(), SharpArbiter::kReady, a.task);
  } else {
    // Dep. Counts buffer record: task id + whether this parameter blocks;
    // the source graph index selects the arbiter's per-graph buffer.
    const std::uint64_t rec =
        static_cast<std::uint64_t>(a.task) |
        (static_cast<std::uint64_t>(runs_now ? 0 : 1) << 32);
    net_->send(sim, done, sharp_tg_node(index_), arb_node_,
               arbiter_->component_id(), SharpArbiter::kDep, rec, index_);
  }
  return true;
}

}  // namespace nexus::detail
