// Nexus#: the distributed hardware task manager (the paper's contribution).
//
// Block structure follows Fig. 2: a Nexus IO unit receives task submissions
// and finish notifications; the Input Parser distributes each incoming
// 48-bit parameter *immediately* to one of N task graphs via the XOR-fold
// distribution function — insertion of a task's first parameter starts
// before its later parameters have even arrived, and parameters of
// different tasks proceed in parallel across graphs (Section IV-B). Results
// are gathered by the Dependence Counts Arbiter; ready tasks leave through
// the Internal Ready Tasks buffer and Write-Back unit. Finished tasks'
// parameter lists are re-read from the Task Pool and redistributed to the
// graphs' Finished Args buffers.
//
// Unlike Nexus++, `taskwait on` is supported natively (Section I/IV): the
// host can wait for one datum's producer instead of draining everything.
#pragma once

#include <memory>
#include <vector>

#include "nexus/hw/distribution.hpp"
#include "nexus/hw/task_pool.hpp"
#include "nexus/noc/network.hpp"
#include "nexus/nexussharp/arbiter.hpp"
#include "nexus/nexussharp/config.hpp"
#include "nexus/nexussharp/task_graph_unit.hpp"
#include "nexus/runtime/manager.hpp"

namespace nexus {

class NexusSharp final : public TaskManagerModel, public Component {
 public:
  explicit NexusSharp(const NexusSharpConfig& cfg = {},
                      ArbiterPolicy arbiter_policy = ArbiterPolicy::kReadyFirst);

  // TaskManagerModel
  void attach(Simulation& sim, RuntimeHost* host) override;
  Tick submit(Simulation& sim, const TaskDescriptor& task) override;
  Tick notify_finished(Simulation& sim, TaskId id) override;
  [[nodiscard]] bool supports_taskwait_on() const override { return true; }
  [[nodiscard]] Tick taskwait_on_query_cost() const override;
  /// Registers the whole block's metrics under "nexus#/": task pool, per-TG
  /// units (tables, queue depths, routing balance) and the arbiter.
  void bind_telemetry(telemetry::MetricRegistry& reg) override;
  /// Attach a span recorder to every unit: dependency stamps and edges
  /// (arbiter + task graphs), table/arbiter occupancy spans, pool and
  /// dep-count depth counters, NoC flow events.
  void bind_trace(telemetry::TraceRecorder* trace) override;
  void bind_profiler(Simulation& sim) override;
  [[nodiscard]] const char* name() const override { return "nexus#"; }

  // Component (front-end events)
  void handle(Simulation& sim, const Event& ev) override;
  [[nodiscard]] const char* telemetry_label() const override { return "io"; }

  // --- introspection ---
  struct Stats {
    std::uint64_t tasks_in = 0;
    std::uint64_t ready_out = 0;
    std::uint64_t pool_peak = 0;
    std::uint64_t table_stalls = 0;      ///< summed over task graphs
    std::uint64_t sim_tasks_live = 0;    ///< must be 0 after a drained run
    Tick io_busy = 0;
    Tick arbiter_busy = 0;
    std::vector<Tick> tg_busy;           ///< per-task-graph busy time
    std::vector<std::uint64_t> tg_args;  ///< per-task-graph args processed
  };
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const NexusSharpConfig& config() const { return cfg_; }
  /// The on-manager interconnect (placement in NexusSharpConfig::noc docs).
  [[nodiscard]] const noc::Network& network() const { return *net_; }

 private:
  enum Op : std::uint32_t {
    kFinishDistributed = 0,  ///< a = task id: pool slot reclaimed
  };

  [[nodiscard]] Tick cycles(std::int64_t n) const { return clk_.cycles(n); }

  NexusSharpConfig cfg_;
  ClockDomain clk_;
  RuntimeHost* host_ = nullptr;
  std::uint32_t self_ = 0;

  Server io_;  ///< Nexus IO / Input Parser occupancy (shared front end)
  hw::TaskPool pool_;
  hw::Distributor distributor_;
  std::unique_ptr<noc::Network> net_;  ///< created before arbiter/TGUs
  std::unique_ptr<detail::SharpArbiter> arbiter_;
  std::vector<std::unique_ptr<detail::TaskGraphUnit>> tgs_;

  bool master_blocked_ = false;
  std::uint64_t tasks_in_ = 0;
  telemetry::TraceRecorder* trace_ = nullptr;

  telemetry::Counter* m_tasks_in_ = nullptr;
  telemetry::Counter* m_finishes_ = nullptr;
  std::vector<telemetry::Counter*> m_route_;  ///< params routed per graph
};

}  // namespace nexus
