// Nexus#: the distributed hardware task manager (the paper's contribution).
//
// Block structure follows Fig. 2: a Nexus IO unit receives task submissions
// and finish notifications; the Input Parser distributes each incoming
// 48-bit parameter *immediately* to one of N task graphs via the XOR-fold
// distribution function — insertion of a task's first parameter starts
// before its later parameters have even arrived, and parameters of
// different tasks proceed in parallel across graphs (Section IV-B). Results
// are gathered by the Dependence Counts Arbiter; ready tasks leave through
// the Internal Ready Tasks buffer and Write-Back unit. Finished tasks'
// parameter lists are re-read from the Task Pool and redistributed to the
// graphs' Finished Args buffers.
//
// Unlike Nexus++, `taskwait on` is supported natively (Section I/IV): the
// host can wait for one datum's producer instead of draining everything.
#pragma once

#include <memory>
#include <vector>

#include "nexus/hw/distribution.hpp"
#include "nexus/hw/task_pool.hpp"
#include "nexus/noc/network.hpp"
#include "nexus/nexussharp/arbiter.hpp"
#include "nexus/nexussharp/config.hpp"
#include "nexus/nexussharp/root_arbiter.hpp"
#include "nexus/nexussharp/task_graph_unit.hpp"
#include "nexus/runtime/manager.hpp"

namespace nexus {

class NexusSharp final : public TaskManagerModel, public Component {
 public:
  explicit NexusSharp(const NexusSharpConfig& cfg = {},
                      ArbiterPolicy arbiter_policy = ArbiterPolicy::kReadyFirst);

  // TaskManagerModel
  void attach(Simulation& sim, RuntimeHost* host) override;
  Tick submit(Simulation& sim, const TaskDescriptor& task) override;
  Tick notify_finished(Simulation& sim, TaskId id) override;
  [[nodiscard]] bool supports_taskwait_on() const override { return true; }
  [[nodiscard]] Tick taskwait_on_query_cost() const override;
  /// Registers the whole block's metrics under "nexus#/": task pool, per-TG
  /// units (tables, queue depths, routing balance) and the arbiter.
  void bind_telemetry(telemetry::MetricRegistry& reg) override;
  /// Attach a span recorder to every unit: dependency stamps and edges
  /// (arbiter + task graphs), table/arbiter occupancy spans, pool and
  /// dep-count depth counters, NoC flow events.
  void bind_trace(telemetry::TraceRecorder* trace) override;
  void bind_profiler(Simulation& sim) override;
  [[nodiscard]] const char* name() const override { return "nexus#"; }

  // Component (front-end events)
  void handle(Simulation& sim, const Event& ev) override;
  [[nodiscard]] const char* telemetry_label() const override { return "io"; }

  // --- introspection ---
  struct Stats {
    std::uint64_t tasks_in = 0;
    std::uint64_t ready_out = 0;
    std::uint64_t pool_peak = 0;
    std::uint64_t table_stalls = 0;      ///< summed over task graphs
    std::uint64_t sim_tasks_live = 0;    ///< leaves + root; 0 once drained
    std::uint64_t nacks = 0;             ///< per-tenant admission rejections
    Tick io_busy = 0;
    Tick arbiter_busy = 0;               ///< summed over leaves (+ root)
    std::vector<Tick> tg_busy;           ///< per-task-graph busy time
    std::vector<std::uint64_t> tg_args;  ///< per-task-graph args processed
  };
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const NexusSharpConfig& config() const { return cfg_; }
  /// The on-manager interconnect (placement in NexusSharpConfig::noc docs).
  [[nodiscard]] const noc::Network& network() const { return *net_; }
  /// The Task Pool (per-tenant occupancy via its TenantLedger).
  [[nodiscard]] const hw::TaskPool& pool() const { return pool_; }
  /// true when the arbiter hierarchy is sharded (arbiter_clusters >= 2).
  [[nodiscard]] bool clustered() const { return root_ != nullptr; }

 private:
  enum Op : std::uint32_t {
    kFinishDistributed = 0,  ///< a = task id: pool slot reclaimed
  };

  [[nodiscard]] Tick cycles(std::int64_t n) const { return clk_.cycles(n); }
  [[nodiscard]] std::uint32_t cluster_of(std::uint32_t tg) const {
    return tg / tgs_per_cluster_;
  }
  /// Per-tenant quota check at the IO tile; 0 = admit, else the NACK path.
  [[nodiscard]] bool over_quota(std::uint16_t tenant) const;

  NexusSharpConfig cfg_;
  ClockDomain clk_;
  RuntimeHost* host_ = nullptr;
  std::uint32_t self_ = 0;

  Server io_;  ///< Nexus IO / Input Parser occupancy (shared front end)
  hw::TaskPool pool_;
  hw::Distributor distributor_;
  std::unique_ptr<noc::Network> net_;  ///< created before arbiter/TGUs
  /// Flat mode: one arbiter at the legacy tile. Clustered: one leaf per
  /// cluster, plus the root that merges their reports.
  std::vector<std::unique_ptr<detail::SharpArbiter>> arbiters_;
  std::unique_ptr<detail::RootArbiter> root_;
  std::vector<std::unique_ptr<detail::ClusterRelay>> relays_;
  std::vector<std::unique_ptr<detail::TaskGraphUnit>> tgs_;
  std::uint32_t tgs_per_cluster_ = 0;  ///< num_task_graphs when flat

  bool master_blocked_ = false;
  std::uint64_t tasks_in_ = 0;
  std::uint64_t nacks_ = 0;
  telemetry::TraceRecorder* trace_ = nullptr;
  std::vector<std::uint32_t> cluster_params_;  ///< scratch: params per cluster

  telemetry::Counter* m_tasks_in_ = nullptr;
  telemetry::Counter* m_finishes_ = nullptr;
  telemetry::Counter* m_nacks_ = nullptr;      ///< quota rejections (tenancy)
  telemetry::Counter* m_hw_blocks_ = nullptr;  ///< high-water submit blocks
  std::vector<telemetry::Counter*> m_tenant_nacks_;
  std::vector<telemetry::Counter*> m_route_;  ///< params routed per graph
};

}  // namespace nexus
