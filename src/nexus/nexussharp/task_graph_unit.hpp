// One distributed task graph of Nexus# (Fig. 2).
//
// Each unit owns a Nexus++-style set-associative table and serves two input
// streams: New Args (parameter insertions) and Finished Args (releases).
// Finished args are served first — they free table space and unblock a
// stalled insertion, which also makes the stall handling deadlock-free.
// Results flow to the Dependence Counts Arbiter through the unit's Ready
// Tasks / Dep. Counts / Waiting Tasks buffers (modelled as the arbiter's
// input queues plus the FIFO visibility latency).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "nexus/hw/task_graph_table.hpp"
#include "nexus/noc/network.hpp"
#include "nexus/nexussharp/arbiter.hpp"
#include "nexus/nexussharp/config.hpp"
#include "nexus/sim/simulation.hpp"

namespace nexus::detail {

class TaskGraphUnit final : public Component {
 public:
  /// `arb_node` places the unit's result-record destination on the NoC;
  /// the default (-1) is the flat single-arbiter tile. Clustered mode
  /// points it at the cluster's leaf-arbiter tile instead.
  TaskGraphUnit(const NexusSharpConfig& cfg, std::uint32_t index,
                SharpArbiter* arbiter, noc::Network* net,
                std::int64_t arb_node = -1);

  void attach(Simulation& sim);

  /// Component id for event addressing (valid after attach).
  [[nodiscard]] std::uint32_t component_id() const { return self_; }

  /// One entry of a New Args / Finished Args buffer.
  struct Arg {
    TaskId task = kInvalidTask;
    Addr addr = 0;
    bool is_writer = false;
    bool single_param = false;  ///< task has exactly one parameter
    std::uint16_t tenant = 0;   ///< attributes table slots (tenancy quotas)
  };

  enum Op : std::uint32_t {
    kNewArg = 0,       ///< a = packed arg meta, b = addr
    kFinishedArg = 1,  ///< a = packed arg meta, b = addr
    kPump = 2,
  };

  static std::uint64_t pack(const Arg& a);
  static Arg unpack(std::uint64_t meta, Addr addr);

  void handle(Simulation& sim, const Event& ev) override;

  [[nodiscard]] const char* telemetry_label() const override { return "tg"; }

  /// Register queue-depth/service metrics (and the table's) under `prefix`.
  void bind_telemetry(telemetry::MetricRegistry& reg, std::string_view prefix);

  /// Attach a span recorder: dependency edges at kick time plus per-arg
  /// table occupancy spans on the "sharp/tg<i>" track.
  void bind_trace(telemetry::TraceRecorder* trace);

  // --- stats ---
  [[nodiscard]] const hw::TaskGraphTable& table() const { return table_; }
  [[nodiscard]] Tick busy_time() const { return busy_; }
  [[nodiscard]] std::uint64_t args_processed() const { return processed_; }
  [[nodiscard]] std::uint64_t peak_queue() const { return peak_queue_; }
  [[nodiscard]] bool idle() const {
    return new_q_.empty() && fin_q_.empty() && !stalled_;
  }

 private:
  [[nodiscard]] Tick cycles(std::int64_t n) const { return clk_.cycles(n); }
  void pump(Simulation& sim);
  /// Serve one finished arg (returns service cost).
  Tick serve_finished(Simulation& sim, const Arg& a);
  /// Try to serve the head new arg; false if stalled on table space.
  bool serve_new(Simulation& sim, Tick* cost);

  const NexusSharpConfig& cfg_;
  std::uint32_t index_;
  SharpArbiter* arbiter_;
  noc::Network* net_;  ///< result records travel tg-node -> arb_node_
  noc::NodeId arb_node_ = 0;
  ClockDomain clk_;
  std::uint32_t self_ = 0;

  hw::TaskGraphTable table_;
  std::deque<Arg> new_q_;
  std::deque<Arg> fin_q_;
  bool stalled_ = false;  ///< head new-arg is waiting for table space
  Tick port_free_ = 0;
  bool pump_pending_ = false;

  std::vector<hw::Waiter> kicked_scratch_;
  telemetry::TraceRecorder* trace_ = nullptr;
  std::string trace_track_;  ///< "sharp/tg<i>"
  Tick busy_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t peak_queue_ = 0;

  telemetry::Histogram* m_new_depth_ = nullptr;  ///< New Args depth per push
  telemetry::Histogram* m_fin_depth_ = nullptr;  ///< Finished Args depth
  telemetry::Counter* m_args_ = nullptr;         ///< args served
  telemetry::Counter* m_kicks_ = nullptr;        ///< waiters kicked
};

}  // namespace nexus::detail
