// Nexus# configuration: task-graph count, clock frequency and the cycle
// budget of every unit in Figs. 4/5.
#pragma once

#include <cstdint>

#include "nexus/hw/distribution.hpp"
#include "nexus/hw/task_graph_table.hpp"
#include "nexus/hw/tenancy.hpp"
#include "nexus/noc/topology.hpp"
#include "nexus/telemetry/fwd.hpp"

namespace nexus {

struct NexusSharpConfig {
  std::uint32_t num_task_graphs = 6;  ///< the paper's chosen configuration
  double freq_mhz = 55.56;            ///< Table I test frequency for 6 TGs
  hw::TableConfig table{};            ///< per-task-graph set-associative table
  /// In-flight task window; see NexusPPConfig::pool_capacity.
  std::size_t pool_capacity = 1024;
  hw::DistributionPolicy distribution = hw::DistributionPolicy::kXorFold;

  /// Shard the task graphs into this many clusters, each with its own leaf
  /// Dependence Counts Arbiter, under a root arbiter that merges per-cluster
  /// readiness and write-backs (Section VI's scaling direction). 0 or 1 keeps
  /// the flat single-arbiter pipeline, bit-identical to the pre-cluster
  /// model. Must divide num_task_graphs; task graph i belongs to cluster
  /// i / (num_task_graphs / clusters) (contiguous shards).
  std::uint32_t arbiter_clusters = 0;

  /// Multi-tenant admission control and QoS (see hw/tenancy.hpp). Disabled
  /// by default; when enabled, per-tenant quotas NACK over-quota tenants at
  /// the IO tile and the root arbiter serves ready tasks per-tenant
  /// weighted-round-robin instead of strictly FIFO.
  hw::TenancyConfig tenancy{};

  /// On-manager interconnect carrying the distributed traffic: Input Parser
  /// -> New/Finished Args, IO -> arbiter kMeta descriptors (non-ideal only;
  /// the ideal crossbar keeps the legacy zero-cost side-band), task graphs
  /// -> arbiter records, arbiter -> IO write-backs. Logical endpoints:
  /// IO/Input Parser at node 0, task graph i at node 1+i, the Dependence
  /// Counts Arbiter at node 1+num_task_graphs; `noc.placement` remaps them
  /// onto fabric tiles. The default (ideal crossbar at `fifo_latency`) is
  /// bit-identical to the pre-NoC model; ring/mesh/torus add per-hop
  /// distance and payload-proportional (multi-flit) per-link contention.
  noc::NocConfig noc{};

  /// Optional lifecycle-span recorder, attached to every unit at
  /// construction (equivalent to calling bind_trace after construction;
  /// RuntimeConfig::trace reaches the same hooks through the driver).
  /// Null: zero overhead, bit-identical schedules.
  telemetry::TraceRecorder* trace = nullptr;

  // --- submission pipeline (Fig. 4) ---
  std::int64_t header_cycles = 2;      ///< IPh: header word (fn ptr + #params)
  std::int64_t recv_per_param = 2;     ///< IP: two 32-bit PCIe packets/address
  std::int64_t pool_write_cycles = 1;  ///< IPf: descriptor into the Task Pool
  std::int64_t fifo_latency = 3;       ///< "data needs 3 cycles to appear"
  std::int64_t tg_insert_per_param = 5;///< IN: task-graph insertion
  std::int64_t chain_hop_cycles = 2;   ///< per dummy-entry hop in a kick-off list

  // --- Dependence Counts Arbiter (Section IV-C/D) ---
  std::int64_t arb_ready_cycles = 1;   ///< forward a ready-task record
  std::int64_t arb_wait_cycles = 2;    ///< waiting-task decrement
  std::int64_t arb_dep_cycles = 2;     ///< dep-count gather per record
  std::int64_t writeback_cycles = 3;   ///< WB: ready id + fn ptr to Nexus IO
  /// Root arbiter (clustered mode only): cycles to merge one cluster-ready
  /// report and grant a ready task from the per-tenant queues.
  std::int64_t root_grant_cycles = 1;

  // --- finished-task path ---
  std::int64_t finish_receive = 2;        ///< notification over the IO unit
  std::int64_t pool_read_cycles = 1;      ///< Task Pool I/O-list read
  std::int64_t distribute_per_param = 1;  ///< redistribute to Finished Args
  std::int64_t tg_finish_per_param = 5;   ///< task-graph update
  std::int64_t kick_enqueue_cycles = 1;   ///< per waiter into Wait. Tasks Buffer

  // --- host-visible pragma support ---
  std::int64_t taskwait_on_cycles = 5;  ///< query round trip through the IO unit
};

/// Arbiter service priority (Section IV-D): the paper's policy serves Ready
/// Tasks first, then Waiting Tasks, then Dep Counts. Alternatives exist for
/// the ablation bench.
enum class ArbiterPolicy : std::uint8_t {
  kReadyFirst = 0,  ///< paper: Ready > Waiting > DepCounts
  kDepFirst = 1,    ///< reversed: DepCounts > Waiting > Ready
  kRoundRobin = 2,  ///< rotate between the three buffer classes
};

const char* to_string(ArbiterPolicy p);

/// Nexus# NoC placement (see NexusSharpConfig::noc): the IO/Input Parser
/// tile, one tile per task graph, then the arbiter tile.
constexpr noc::NodeId sharp_io_node() { return 0; }
constexpr noc::NodeId sharp_tg_node(std::uint32_t tg) { return 1 + tg; }
constexpr noc::NodeId sharp_arbiter_node(std::uint32_t num_tgs) {
  return 1 + num_tgs;
}
constexpr std::uint32_t sharp_noc_endpoints(std::uint32_t num_tgs) {
  return num_tgs + 2;
}

/// Clustered placement (arbiter_clusters >= 2): IO at 0, task graphs at
/// 1+i, leaf arbiter of cluster c at 1+num_tgs+c, the root arbiter last.
constexpr noc::NodeId sharp_leaf_node(std::uint32_t num_tgs, std::uint32_t c) {
  return 1 + num_tgs + c;
}
constexpr noc::NodeId sharp_root_node(std::uint32_t num_tgs,
                                      std::uint32_t clusters) {
  return 1 + num_tgs + clusters;
}
constexpr std::uint32_t sharp_noc_endpoints(std::uint32_t num_tgs,
                                            std::uint32_t clusters) {
  return clusters >= 2 ? num_tgs + clusters + 2 : sharp_noc_endpoints(num_tgs);
}

}  // namespace nexus
