#include "nexus/nexussharp/root_arbiter.hpp"

#include <algorithm>

#include "nexus/telemetry/registry.hpp"
#include "nexus/telemetry/trace.hpp"

namespace nexus::detail {

RootArbiter::RootArbiter(const NexusSharpConfig& cfg, noc::Network* net)
    : cfg_(cfg), net_(net), clk_(cfg.freq_mhz) {
  NEXUS_ASSERT(net != nullptr);
  NEXUS_ASSERT(cfg.arbiter_clusters >= 2);
  // One ready queue per tenant under WRR; the FIFO baseline (and the
  // tenancy-disabled case) collapses to a single arrival-order queue.
  const std::uint32_t nq =
      cfg.tenancy.enabled() && cfg.tenancy.weighted ? cfg.tenancy.tenants : 1;
  queues_.resize(nq);
}

void RootArbiter::attach(Simulation& sim, RuntimeHost* host) {
  host_ = host;
  self_ = sim.add_component(this);
}

void RootArbiter::bind_telemetry(telemetry::MetricRegistry& reg,
                                 std::string_view prefix) {
  m_grants_ = &reg.counter(telemetry::path_join(prefix, "grants"));
  m_merges_ = &reg.counter(telemetry::path_join(prefix, "merges"));
  m_ready_depth_ =
      &reg.histogram(telemetry::path_join(prefix, "ready_q_depth"));
  if (queues_.size() > 1) {
    m_tenant_grants_.assign(queues_.size(), nullptr);
    for (std::uint32_t t = 0; t < queues_.size(); ++t)
      m_tenant_grants_[t] = &reg.counter(telemetry::path_join(
          telemetry::path_join(
              prefix, telemetry::indexed_path(
                          "tenant", t,
                          static_cast<std::uint32_t>(queues_.size()))),
          "grants"));
  }
}

void RootArbiter::handle(Simulation& sim, const Event& ev) {
  switch (ev.op) {
    case kMeta: {
      const auto id = static_cast<TaskId>(ev.a & 0xFFFFFFFF);
      SimTask& st = sim_tasks_[id];
      st.nclusters = static_cast<std::uint32_t>((ev.a >> 32) & 0xFFFF);
      st.tenant = static_cast<std::uint16_t>(ev.a >> 48);
      st.meta_arrived = true;
      if (st.seen >= st.nclusters) {
        // Every cluster report overtook the descriptor on the interconnect
        // (or a zero-parameter task participates in no cluster at all).
        const std::uint16_t tenant = st.tenant;
        sim_tasks_.erase(id);
        enqueue_ready(sim, id, tenant);
      }
      break;
    }
    case kWbDone:
      ++delivered_;
      host_->task_ready(sim, static_cast<TaskId>(ev.a));
      break;
    case kPump:
      pump_pending_ = false;
      pump(sim);
      break;
    default:
      NEXUS_ASSERT_MSG(false, "unknown RootArbiter op");
  }
}

void RootArbiter::cluster_ready(Simulation& sim, TaskId id) {
  SimTask& st = sim_tasks_[id];
  ++st.seen;
  telemetry::inc(m_merges_);
  if (st.meta_arrived && st.seen >= st.nclusters) {
    NEXUS_ASSERT_MSG(st.seen == st.nclusters,
                     "more cluster reports than participating clusters");
    const std::uint16_t tenant = st.tenant;
    sim_tasks_.erase(id);
    enqueue_ready(sim, id, tenant);
  }
}

void RootArbiter::enqueue_ready(Simulation& sim, TaskId id,
                                std::uint16_t tenant) {
  const std::size_t q = queues_.size() > 1 ? tenant : 0;
  NEXUS_ASSERT(q < queues_.size());
  queues_[q].push_back(id);
  ++queued_;
  telemetry::record(m_ready_depth_, queued_);
  pump(sim);
}

void RootArbiter::pump(Simulation& sim) {
  const Tick now = sim.now();
  if (now < port_free_) {
    if (!pump_pending_) {
      pump_pending_ = true;
      sim.schedule(port_free_, self_, kPump);
    }
    return;
  }
  if (queued_ == 0) return;

  std::uint32_t t = 0;
  if (queues_.size() > 1) {
    // Weighted round-robin: the current tenant keeps the grant while it has
    // both work and burst credits; otherwise advance to the next tenant
    // with queued work and refill its credits from the configured weight.
    if (queues_[cur_tenant_].empty() || credits_ == 0) {
      std::uint32_t c = cur_tenant_;
      do {
        c = (c + 1) % static_cast<std::uint32_t>(queues_.size());
      } while (queues_[c].empty());
      cur_tenant_ = c;
      credits_ = cfg_.tenancy.weight(c);
    }
    t = cur_tenant_;
    --credits_;
  }

  const TaskId id = queues_[t].front();
  queues_[t].pop_front();
  --queued_;
  const Tick cost = cycles(cfg_.root_grant_cycles);
  telemetry::inc(m_grants_);
  if (!m_tenant_grants_.empty()) telemetry::inc(m_tenant_grants_[t]);
  if (trace_ != nullptr)
    trace_->unit_span("sharp/root", "grant", id, now, cost);
  to_writeback(sim, now + cost, id);

  port_free_ = now + cost;
  busy_ += cost;
  if (queued_ > 0 && !pump_pending_) {
    pump_pending_ = true;
    sim.schedule(port_free_, self_, kPump);
  }
}

void RootArbiter::to_writeback(Simulation& sim, Tick from, TaskId id) {
  // Same internal-FIFO + Write-Back stage as the flat arbiter; the stamp
  // here is the *global* resolution (supersedes the per-cluster one).
  if (trace_ != nullptr) trace_->on_resolved(id, from);
  const Tick start = std::max(from + cycles(cfg_.fifo_latency), sim.now());
  const Tick done = wb_.acquire(start, cycles(cfg_.writeback_cycles));
  if (net_->ideal()) {
    sim.schedule(done, self_, kWbDone, id);
  } else {
    net_->send(sim, done,
               sharp_root_node(cfg_.num_task_graphs, cfg_.arbiter_clusters),
               sharp_io_node(), self_, kWbDone, id, 0, noc::kParamBytes);
  }
}

}  // namespace nexus::detail
