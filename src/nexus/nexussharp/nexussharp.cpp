#include "nexus/nexussharp/nexussharp.hpp"

#include <string>

#include "nexus/telemetry/registry.hpp"
#include "nexus/telemetry/trace.hpp"

namespace nexus {

NexusSharp::NexusSharp(const NexusSharpConfig& cfg, ArbiterPolicy arbiter_policy)
    : cfg_(cfg),
      clk_(cfg.freq_mhz),
      pool_(cfg.pool_capacity),
      distributor_(cfg.distribution, cfg.num_task_graphs) {
  NEXUS_ASSERT_MSG(cfg.num_task_graphs >= 1 && cfg.num_task_graphs <= 32,
                   "Nexus# supports 1..32 task graphs");
  NEXUS_ASSERT_MSG(distributor_.preserves_affinity(),
                   "dependency tracking requires an affinity-preserving "
                   "distribution function (Section IV-A)");
  net_ = std::make_unique<noc::Network>(
      cfg_.noc, sharp_noc_endpoints(cfg.num_task_graphs), cfg.freq_mhz,
      clk_.cycles(cfg.fifo_latency));
  arbiter_ =
      std::make_unique<detail::SharpArbiter>(cfg_, arbiter_policy, net_.get());
  for (std::uint32_t i = 0; i < cfg.num_task_graphs; ++i)
    tgs_.push_back(std::make_unique<detail::TaskGraphUnit>(cfg_, i,
                                                           arbiter_.get(),
                                                           net_.get()));
  if (cfg_.trace != nullptr) bind_trace(cfg_.trace);
}

void NexusSharp::bind_trace(telemetry::TraceRecorder* trace) {
  trace_ = trace;
  pool_.bind_trace(trace, "nexus#/pool");
  // Op codes are per receiving component; the ambiguous ones carry both
  // spellings (op 0 is kNewArg into a task graph, kReady into the arbiter).
  net_->bind_trace(trace, "nexus#/noc",
                   {"new_arg|ready", "fin_arg|wait", "dep", "meta", "wb"});
  arbiter_->bind_trace(trace);
  for (std::uint32_t i = 0; i < cfg_.num_task_graphs; ++i)
    tgs_[i]->bind_trace(trace);
}

void NexusSharp::bind_profiler(Simulation& sim) {
  net_->bind_profiler(sim,
                      {"new_arg|ready", "fin_arg|wait", "dep", "meta", "wb"});
}

void NexusSharp::bind_telemetry(telemetry::MetricRegistry& reg) {
  pool_.bind_telemetry(reg, "nexus#/pool");
  net_->bind_telemetry(reg, "nexus#/noc");
  arbiter_->bind_telemetry(reg, "nexus#/arbiter");
  m_route_.assign(cfg_.num_task_graphs, nullptr);
  for (std::uint32_t i = 0; i < cfg_.num_task_graphs; ++i) {
    const std::string tg = "nexus#/tg" + std::to_string(i);
    tgs_[i]->bind_telemetry(reg, tg);
    m_route_[i] = &reg.counter(tg + "/routed");
  }
  m_tasks_in_ = &reg.counter("nexus#/tasks_in");
  m_finishes_ = &reg.counter("nexus#/finishes");
}

void NexusSharp::attach(Simulation& sim, RuntimeHost* host) {
  NEXUS_ASSERT(host != nullptr);
  host_ = host;
  self_ = sim.add_component(this);
  arbiter_->attach(sim, host);
  for (auto& tg : tgs_) tg->attach(sim);
  // Last, so the block's own components keep their pre-NoC ids/labels.
  net_->attach(sim);
}

Tick NexusSharp::taskwait_on_query_cost() const {
  return clk_.cycles(cfg_.taskwait_on_cycles);
}

Tick NexusSharp::submit(Simulation& sim, const TaskDescriptor& task) {
  if (pool_.full()) {
    master_blocked_ = true;
    return kSubmitBlocked;
  }
  ++tasks_in_;
  telemetry::inc(m_tasks_in_);
  pool_.insert(task, sim.now());

  const auto nparams = static_cast<std::int64_t>(task.num_params());
  const Tick recv_done = io_.acquire(
      sim.now(), cycles(cfg_.header_cycles + cfg_.recv_per_param * nparams +
                        cfg_.pool_write_cycles));
  const Tick recv_start =
      recv_done - cycles(cfg_.header_cycles + cfg_.recv_per_param * nparams +
                         cfg_.pool_write_cycles);

  // The Input Parser distributes each parameter the cycle it arrives
  // (Section IV-B): parameter i is complete after the header plus i+1
  // two-packet address transfers; it reaches its task graph's New Args
  // buffer after the FIFO visibility latency.
  const bool single = task.num_params() == 1;
  for (std::size_t i = 0; i < task.num_params(); ++i) {
    const Param& p = task.params[i];
    const Tick arrival =
        recv_start + cycles(cfg_.header_cycles +
                            cfg_.recv_per_param * static_cast<std::int64_t>(i + 1));
    detail::TaskGraphUnit::Arg arg;
    arg.task = task.id;
    arg.addr = p.addr;
    arg.is_writer = is_write(p.dir);
    arg.single_param = single;
    const std::uint32_t tgt = distributor_.target(p.addr);
    if (!m_route_.empty()) m_route_[tgt]->inc();
    net_->send(sim, arrival, sharp_io_node(), sharp_tg_node(tgt),
               tgs_[tgt]->component_id(), detail::TaskGraphUnit::kNewArg,
               detail::TaskGraphUnit::pack(arg), p.addr, noc::kParamBytes);
  }

  // IPf: descriptor committed to the Task Pool one cycle after the last
  // parameter; the arbiter can conclude the task's gather from then on.
  const std::uint64_t meta =
      static_cast<std::uint64_t>(task.id) |
      (static_cast<std::uint64_t>(task.num_params()) << 32);
  if (net_->ideal()) {
    // Legacy behaviour: a direct pool-commit side-band, kept exactly so the
    // default config stays bit-identical to the pre-NoC model.
    sim.schedule(recv_done, arbiter_->component_id(),
                 detail::SharpArbiter::kMeta, meta);
  } else {
    // On a real topology the descriptor is routed traffic like everything
    // else: a parameter-list-sized message from the IO tile to the arbiter
    // tile. It may now arrive after the task's ready record; the arbiter
    // parks that record until the descriptor lands (meta_parks metric).
    net_->send(sim, recv_done, sharp_io_node(),
               sharp_arbiter_node(cfg_.num_task_graphs),
               arbiter_->component_id(), detail::SharpArbiter::kMeta, meta, 0,
               noc::kParamBytes * static_cast<std::uint32_t>(task.num_params()));
  }
  return recv_done;
}

Tick NexusSharp::notify_finished(Simulation& sim, TaskId id) {
  // Finish notification shares the Nexus IO / Input Parser with
  // submissions; the parser then reads the task's I/O list from the Task
  // Pool and redistributes it to the Finished Args buffers.
  telemetry::inc(m_finishes_);
  const TaskDescriptor& task = pool_.get(id);
  const auto nparams = static_cast<std::int64_t>(task.num_params());
  const Tick recv_done = io_.acquire(sim.now(), cycles(cfg_.finish_receive));
  const Tick dist_done =
      io_.acquire(recv_done, cycles(cfg_.pool_read_cycles +
                                    cfg_.distribute_per_param * nparams));
  const Tick dist_start =
      dist_done -
      cycles(cfg_.pool_read_cycles + cfg_.distribute_per_param * nparams);

  for (std::size_t i = 0; i < task.num_params(); ++i) {
    const Param& p = task.params[i];
    const Tick arrival =
        dist_start +
        cycles(cfg_.pool_read_cycles +
               cfg_.distribute_per_param * static_cast<std::int64_t>(i + 1));
    detail::TaskGraphUnit::Arg arg;
    arg.task = id;
    arg.addr = p.addr;
    arg.is_writer = is_write(p.dir);
    const std::uint32_t tgt = distributor_.target(p.addr);
    if (!m_route_.empty()) m_route_[tgt]->inc();
    net_->send(sim, arrival, sharp_io_node(), sharp_tg_node(tgt),
               tgs_[tgt]->component_id(), detail::TaskGraphUnit::kFinishedArg,
               detail::TaskGraphUnit::pack(arg), p.addr, noc::kParamBytes);
  }
  // The pool slot is reclaimable once the I/O list has been read out.
  sim.schedule(dist_done, self_, kFinishDistributed, id);
  return recv_done;  // the worker is free once the notification is accepted
}

void NexusSharp::handle(Simulation& sim, const Event& ev) {
  switch (ev.op) {
    case kFinishDistributed:
      pool_.erase(static_cast<TaskId>(ev.a), sim.now());
      if (master_blocked_) {
        master_blocked_ = false;
        host_->master_resume(sim);
      }
      break;
    default:
      NEXUS_ASSERT_MSG(false, "unknown NexusSharp op");
  }
}

NexusSharp::Stats NexusSharp::stats() const {
  Stats s;
  s.tasks_in = tasks_in_;
  s.ready_out = arbiter_->ready_delivered();
  s.pool_peak = pool_.peak();
  s.sim_tasks_live = arbiter_->sim_tasks_live();
  s.io_busy = io_.busy_time();
  s.arbiter_busy = arbiter_->busy_time();
  for (const auto& tg : tgs_) {
    s.table_stalls += tg->table().total_stalls();
    s.tg_busy.push_back(tg->busy_time());
    s.tg_args.push_back(tg->args_processed());
  }
  return s;
}

}  // namespace nexus
