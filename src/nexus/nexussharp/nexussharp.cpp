#include "nexus/nexussharp/nexussharp.hpp"

#include <string>

#include "nexus/telemetry/registry.hpp"
#include "nexus/telemetry/trace.hpp"

namespace nexus {

NexusSharp::NexusSharp(const NexusSharpConfig& cfg, ArbiterPolicy arbiter_policy)
    : cfg_(cfg),
      clk_(cfg.freq_mhz),
      pool_(cfg.pool_capacity),
      distributor_(cfg.distribution, cfg.num_task_graphs) {
  NEXUS_ASSERT_MSG(cfg.num_task_graphs >= 1 && cfg.num_task_graphs <= 32,
                   "Nexus# supports 1..32 task graphs");
  NEXUS_ASSERT_MSG(distributor_.preserves_affinity(),
                   "dependency tracking requires an affinity-preserving "
                   "distribution function (Section IV-A)");
  const std::uint32_t clusters = cfg.arbiter_clusters;
  const bool clustered = clusters >= 2;
  if (clustered) {
    NEXUS_ASSERT_MSG(cfg.num_task_graphs % clusters == 0,
                     "arbiter_clusters must divide num_task_graphs");
    tgs_per_cluster_ = cfg.num_task_graphs / clusters;
  } else {
    tgs_per_cluster_ = cfg.num_task_graphs;
  }
  if (cfg_.tenancy.enabled()) pool_.configure_tenancy(cfg_.tenancy.tenants);

  net_ = std::make_unique<noc::Network>(
      cfg_.noc, sharp_noc_endpoints(cfg.num_task_graphs, clusters),
      cfg.freq_mhz, clk_.cycles(cfg.fifo_latency));
  if (clustered) {
    root_ = std::make_unique<detail::RootArbiter>(cfg_, net_.get());
    cluster_params_.resize(clusters);
    for (std::uint32_t c = 0; c < clusters; ++c)
      arbiters_.push_back(std::make_unique<detail::SharpArbiter>(
          cfg_, arbiter_policy, net_.get(),
          sharp_leaf_node(cfg.num_task_graphs, c),
          sharp_root_node(cfg.num_task_graphs, clusters)));
  } else {
    // Flat single-arbiter pipeline: the legacy tile placement, bit-identical
    // to the pre-cluster model.
    arbiters_.push_back(std::make_unique<detail::SharpArbiter>(
        cfg_, arbiter_policy, net_.get()));
  }
  for (std::uint32_t i = 0; i < cfg.num_task_graphs; ++i) {
    const std::uint32_t c = cluster_of(i);
    tgs_.push_back(std::make_unique<detail::TaskGraphUnit>(
        cfg_, i, arbiters_[clustered ? c : 0].get(), net_.get(),
        clustered
            ? static_cast<std::int64_t>(sharp_leaf_node(cfg.num_task_graphs, c))
            : -1));
  }
  if (cfg_.trace != nullptr) bind_trace(cfg_.trace);
}

void NexusSharp::bind_trace(telemetry::TraceRecorder* trace) {
  trace_ = trace;
  pool_.bind_trace(trace, "nexus#/pool");
  // Op codes are per receiving component; the ambiguous ones carry both
  // spellings (op 0 is kNewArg into a task graph, kReady into the arbiter).
  net_->bind_trace(trace, "nexus#/noc",
                   {"new_arg|ready", "fin_arg|wait", "dep", "meta", "wb"});
  for (auto& arb : arbiters_) arb->bind_trace(trace);
  if (root_ != nullptr) root_->bind_trace(trace);
  for (std::uint32_t i = 0; i < cfg_.num_task_graphs; ++i)
    tgs_[i]->bind_trace(trace);
}

void NexusSharp::bind_profiler(Simulation& sim) {
  net_->bind_profiler(sim,
                      {"new_arg|ready", "fin_arg|wait", "dep", "meta", "wb"});
}

void NexusSharp::bind_telemetry(telemetry::MetricRegistry& reg) {
  pool_.bind_telemetry(reg, "nexus#/pool");
  net_->bind_telemetry(reg, "nexus#/noc");
  if (clustered()) {
    for (std::uint32_t c = 0; c < arbiters_.size(); ++c)
      arbiters_[c]->bind_telemetry(
          reg, telemetry::path_join(
                   telemetry::indexed_path(
                       "nexus#/cluster", c,
                       static_cast<std::uint32_t>(arbiters_.size())),
                   "arbiter"));
    root_->bind_telemetry(reg, "nexus#/root");
  } else {
    arbiters_[0]->bind_telemetry(reg, "nexus#/arbiter");
  }
  m_route_.assign(cfg_.num_task_graphs, nullptr);
  for (std::uint32_t i = 0; i < cfg_.num_task_graphs; ++i) {
    const std::string tg = "nexus#/tg" + std::to_string(i);
    tgs_[i]->bind_telemetry(reg, tg);
    m_route_[i] = &reg.counter(tg + "/routed");
  }
  m_tasks_in_ = &reg.counter("nexus#/tasks_in");
  m_finishes_ = &reg.counter("nexus#/finishes");
  if (cfg_.tenancy.enabled()) {
    pool_.tenant_ledger().bind_telemetry(reg, "nexus#/pool");
    m_nacks_ = &reg.counter("nexus#/admission/nacks");
    m_hw_blocks_ = &reg.counter("nexus#/admission/high_water_blocks");
    m_tenant_nacks_.assign(cfg_.tenancy.tenants, nullptr);
    for (std::uint32_t t = 0; t < cfg_.tenancy.tenants; ++t)
      m_tenant_nacks_[t] = &reg.counter(telemetry::path_join(
          telemetry::path_join("nexus#/admission",
                               telemetry::indexed_path("tenant", t,
                                                       cfg_.tenancy.tenants)),
          "nacks"));
  }
}

void NexusSharp::attach(Simulation& sim, RuntimeHost* host) {
  NEXUS_ASSERT(host != nullptr);
  host_ = host;
  self_ = sim.add_component(this);
  if (clustered()) {
    for (auto& arb : arbiters_) {
      relays_.push_back(std::make_unique<detail::ClusterRelay>(root_.get()));
      arb->attach(sim, relays_.back().get());
    }
    root_->attach(sim, host);
  } else {
    arbiters_[0]->attach(sim, host);
  }
  for (auto& tg : tgs_) tg->attach(sim);
  // Last, so the block's own components keep their pre-NoC ids/labels.
  net_->attach(sim);
}

Tick NexusSharp::taskwait_on_query_cost() const {
  return clk_.cycles(cfg_.taskwait_on_cycles);
}

bool NexusSharp::over_quota(std::uint16_t tenant) const {
  const hw::TenantQuota& q = cfg_.tenancy.quota;
  if (q.pool > 0 && pool_.tenant_ledger().count(tenant) >= q.pool) return true;
  if (q.table > 0) {
    std::uint64_t used = 0;
    for (const auto& tg : tgs_) used += tg->table().tenant_ledger().count(tenant);
    if (used >= q.table) return true;
  }
  if (q.dep > 0) {
    std::uint64_t parked = 0;
    for (const auto& arb : arbiters_)
      parked += arb->dep_counts().tenant_ledger().count(tenant);
    if (parked >= q.dep) return true;
  }
  return false;
}

Tick NexusSharp::submit(Simulation& sim, const TaskDescriptor& task) {
  if (pool_.full()) {
    master_blocked_ = true;
    return kSubmitBlocked;
  }
  if (cfg_.tenancy.enabled()) {
    NEXUS_ASSERT_MSG(task.tenant < cfg_.tenancy.tenants,
                     "task tenant out of range");
    // Global high-water: shared backpressure for everyone, leaving pool
    // headroom so quota-compliant tenants are never starved of slots.
    if (cfg_.tenancy.global_high_water > 0 &&
        pool_.size() >= cfg_.tenancy.global_high_water) {
      master_blocked_ = true;
      telemetry::inc(m_hw_blocks_);
      return kSubmitBlocked;
    }
    if (over_quota(task.tenant)) {
      // Per-tenant backpressure: only this tenant is held; the structures
      // still have room for others. The single-stream driver degrades this
      // to a plain block (manager.hpp, kSubmitNacked).
      master_blocked_ = true;
      ++nacks_;
      telemetry::inc(m_nacks_);
      if (!m_tenant_nacks_.empty()) telemetry::inc(m_tenant_nacks_[task.tenant]);
      return kSubmitNacked;
    }
  }
  ++tasks_in_;
  telemetry::inc(m_tasks_in_);
  pool_.insert(task, sim.now());

  const auto nparams = static_cast<std::int64_t>(task.num_params());
  const Tick recv_done = io_.acquire(
      sim.now(), cycles(cfg_.header_cycles + cfg_.recv_per_param * nparams +
                        cfg_.pool_write_cycles));
  const Tick recv_start =
      recv_done - cycles(cfg_.header_cycles + cfg_.recv_per_param * nparams +
                         cfg_.pool_write_cycles);

  // The Input Parser distributes each parameter the cycle it arrives
  // (Section IV-B): parameter i is complete after the header plus i+1
  // two-packet address transfers; it reaches its task graph's New Args
  // buffer after the FIFO visibility latency.
  const bool single = task.num_params() == 1;
  if (clustered())
    cluster_params_.assign(cluster_params_.size(), 0);
  for (std::size_t i = 0; i < task.num_params(); ++i) {
    const Param& p = task.params[i];
    const Tick arrival =
        recv_start + cycles(cfg_.header_cycles +
                            cfg_.recv_per_param * static_cast<std::int64_t>(i + 1));
    detail::TaskGraphUnit::Arg arg;
    arg.task = task.id;
    arg.addr = p.addr;
    arg.is_writer = is_write(p.dir);
    arg.single_param = single;
    arg.tenant = task.tenant;
    const std::uint32_t tgt = distributor_.target(p.addr);
    if (clustered()) ++cluster_params_[cluster_of(tgt)];
    if (!m_route_.empty()) m_route_[tgt]->inc();
    net_->send(sim, arrival, sharp_io_node(), sharp_tg_node(tgt),
               tgs_[tgt]->component_id(), detail::TaskGraphUnit::kNewArg,
               detail::TaskGraphUnit::pack(arg), p.addr, noc::kParamBytes);
  }

  // IPf: descriptor committed to the Task Pool one cycle after the last
  // parameter; the arbiter(s) can conclude the task's gather from then on.
  // The tenant field is 0 outside multi-tenant runs, keeping the packing
  // bit-identical to the legacy id|nparams encoding.
  if (!clustered()) {
    const std::uint64_t meta =
        static_cast<std::uint64_t>(task.id) |
        (static_cast<std::uint64_t>(task.num_params() & 0xFFFF) << 32) |
        (static_cast<std::uint64_t>(task.tenant) << 48);
    if (net_->ideal()) {
      // Legacy behaviour: a direct pool-commit side-band, kept exactly so
      // the default config stays bit-identical to the pre-NoC model.
      sim.schedule(recv_done, arbiters_[0]->component_id(),
                   detail::SharpArbiter::kMeta, meta);
    } else {
      // On a real topology the descriptor is routed traffic like everything
      // else: a parameter-list-sized message from the IO tile to the arbiter
      // tile. It may now arrive after the task's ready record; the arbiter
      // parks that record until the descriptor lands (meta_parks metric).
      net_->send(sim, recv_done, sharp_io_node(),
                 sharp_arbiter_node(cfg_.num_task_graphs),
                 arbiters_[0]->component_id(), detail::SharpArbiter::kMeta,
                 meta, 0,
                 noc::kParamBytes * static_cast<std::uint32_t>(task.num_params()));
    }
  } else {
    // Clustered: each participating leaf gets a descriptor carrying its
    // cluster-local parameter count; the root gets the participating-cluster
    // count so it can AND the leaves' cluster-ready reports.
    std::uint32_t participating = 0;
    for (std::uint32_t c = 0; c < cluster_params_.size(); ++c) {
      if (cluster_params_[c] == 0) continue;
      ++participating;
      const std::uint64_t meta =
          static_cast<std::uint64_t>(task.id) |
          (static_cast<std::uint64_t>(cluster_params_[c] & 0xFFFF) << 32) |
          (static_cast<std::uint64_t>(task.tenant) << 48);
      if (net_->ideal()) {
        sim.schedule(recv_done, arbiters_[c]->component_id(),
                     detail::SharpArbiter::kMeta, meta);
      } else {
        net_->send(sim, recv_done, sharp_io_node(),
                   sharp_leaf_node(cfg_.num_task_graphs, c),
                   arbiters_[c]->component_id(), detail::SharpArbiter::kMeta,
                   meta, 0, noc::kParamBytes * cluster_params_[c]);
      }
    }
    const std::uint64_t root_meta =
        static_cast<std::uint64_t>(task.id) |
        (static_cast<std::uint64_t>(participating) << 32) |
        (static_cast<std::uint64_t>(task.tenant) << 48);
    if (net_->ideal()) {
      sim.schedule(recv_done, root_->component_id(),
                   detail::RootArbiter::kMeta, root_meta);
    } else {
      net_->send(sim, recv_done, sharp_io_node(),
                 sharp_root_node(cfg_.num_task_graphs, cfg_.arbiter_clusters),
                 root_->component_id(), detail::RootArbiter::kMeta, root_meta,
                 0, noc::kParamBytes);
    }
  }
  return recv_done;
}

Tick NexusSharp::notify_finished(Simulation& sim, TaskId id) {
  // Finish notification shares the Nexus IO / Input Parser with
  // submissions; the parser then reads the task's I/O list from the Task
  // Pool and redistributes it to the Finished Args buffers.
  telemetry::inc(m_finishes_);
  const TaskDescriptor& task = pool_.get(id);
  const auto nparams = static_cast<std::int64_t>(task.num_params());
  const Tick recv_done = io_.acquire(sim.now(), cycles(cfg_.finish_receive));
  const Tick dist_done =
      io_.acquire(recv_done, cycles(cfg_.pool_read_cycles +
                                    cfg_.distribute_per_param * nparams));
  const Tick dist_start =
      dist_done -
      cycles(cfg_.pool_read_cycles + cfg_.distribute_per_param * nparams);

  for (std::size_t i = 0; i < task.num_params(); ++i) {
    const Param& p = task.params[i];
    const Tick arrival =
        dist_start +
        cycles(cfg_.pool_read_cycles +
               cfg_.distribute_per_param * static_cast<std::int64_t>(i + 1));
    detail::TaskGraphUnit::Arg arg;
    arg.task = id;
    arg.addr = p.addr;
    arg.is_writer = is_write(p.dir);
    arg.tenant = task.tenant;
    const std::uint32_t tgt = distributor_.target(p.addr);
    if (!m_route_.empty()) m_route_[tgt]->inc();
    net_->send(sim, arrival, sharp_io_node(), sharp_tg_node(tgt),
               tgs_[tgt]->component_id(), detail::TaskGraphUnit::kFinishedArg,
               detail::TaskGraphUnit::pack(arg), p.addr, noc::kParamBytes);
  }
  // The pool slot is reclaimable once the I/O list has been read out.
  sim.schedule(dist_done, self_, kFinishDistributed, id);
  return recv_done;  // the worker is free once the notification is accepted
}

void NexusSharp::handle(Simulation& sim, const Event& ev) {
  switch (ev.op) {
    case kFinishDistributed:
      pool_.erase(static_cast<TaskId>(ev.a), sim.now());
      if (master_blocked_) {
        master_blocked_ = false;
        host_->master_resume(sim);
      }
      break;
    default:
      NEXUS_ASSERT_MSG(false, "unknown NexusSharp op");
  }
}

NexusSharp::Stats NexusSharp::stats() const {
  Stats s;
  s.tasks_in = tasks_in_;
  s.nacks = nacks_;
  s.pool_peak = pool_.peak();
  s.io_busy = io_.busy_time();
  for (const auto& arb : arbiters_) {
    s.sim_tasks_live += arb->sim_tasks_live();
    s.arbiter_busy += arb->busy_time();
  }
  if (root_ != nullptr) {
    s.ready_out = root_->ready_delivered();
    s.sim_tasks_live += root_->live();
    s.arbiter_busy += root_->busy_time();
  } else {
    s.ready_out = arbiters_[0]->ready_delivered();
  }
  for (const auto& tg : tgs_) {
    s.table_stalls += tg->table().total_stalls();
    s.tg_busy.push_back(tg->busy_time());
    s.tg_args.push_back(tg->args_processed());
  }
  return s;
}

}  // namespace nexus
