// Inline fixed-capacity vector (no heap allocation).
//
// Task descriptors carry at most a handful of parameters (the paper's
// benchmarks use 1-6); storing them inline keeps descriptors contiguous and
// trivially copyable, which matters because the simulator copies them into
// hardware-model queues.
#pragma once

#include <array>
#include <cstddef>
#include <initializer_list>

#include "nexus/common/assert.hpp"

namespace nexus {

template <typename T, std::size_t N>
class InlineVec {
 public:
  InlineVec() = default;
  InlineVec(std::initializer_list<T> init) {
    NEXUS_ASSERT(init.size() <= N);
    for (const T& v : init) push_back(v);
  }

  [[nodiscard]] static constexpr std::size_t capacity() { return N; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == N; }

  void push_back(T v) {
    NEXUS_ASSERT_MSG(size_ < N, "InlineVec overflow");
    data_[size_++] = v;
  }
  void clear() { size_ = 0; }

  [[nodiscard]] T& operator[](std::size_t i) {
    NEXUS_DCHECK(i < size_);
    return data_[i];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    NEXUS_DCHECK(i < size_);
    return data_[i];
  }

  [[nodiscard]] T* begin() { return data_.data(); }
  [[nodiscard]] T* end() { return data_.data() + size_; }
  [[nodiscard]] const T* begin() const { return data_.data(); }
  [[nodiscard]] const T* end() const { return data_.data() + size_; }

  friend bool operator==(const InlineVec& a, const InlineVec& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i)
      if (!(a.data_[i] == b.data_[i])) return false;
    return true;
  }

 private:
  std::array<T, N> data_{};
  std::size_t size_ = 0;
};

}  // namespace nexus
