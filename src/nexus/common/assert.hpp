// Always-on invariant checking for the simulator.
//
// A discrete-event hardware model is only as trustworthy as its internal
// invariants; we keep them enabled in release builds because the cost is
// negligible next to event dispatch and silent corruption of a timing model
// is worse than a small slowdown.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace nexus {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "NEXUS_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg != nullptr ? msg : "");
  std::fflush(stderr);
  std::abort();
}

}  // namespace nexus

#define NEXUS_ASSERT(expr)                                              \
  do {                                                                  \
    if (!(expr)) ::nexus::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define NEXUS_ASSERT_MSG(expr, msg)                                   \
  do {                                                                \
    if (!(expr)) ::nexus::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#if defined(NDEBUG)
#define NEXUS_DCHECK(expr) ((void)0)
#else
#define NEXUS_DCHECK(expr) NEXUS_ASSERT(expr)
#endif
