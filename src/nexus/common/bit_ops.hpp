// Small bit-manipulation helpers used by the hardware models.
#pragma once

#include <bit>
#include <cstdint>

namespace nexus {

/// Extract bits [hi:lo] (inclusive, VHDL-style) of `v`.
constexpr std::uint64_t bits(std::uint64_t v, unsigned hi, unsigned lo) {
  const unsigned width = hi - lo + 1;
  return (v >> lo) & ((width >= 64) ? ~0ULL : ((1ULL << width) - 1ULL));
}

/// XOR-fold of the lowest 20 bits of an address into a 5-bit value,
/// exactly the distribution function of the paper (Section IV-B):
///   addr(19..15) ^ addr(14..10) ^ addr(9..5) ^ addr(4..0)
constexpr std::uint32_t xor_fold20_5(std::uint64_t addr) {
  return static_cast<std::uint32_t>(bits(addr, 19, 15) ^ bits(addr, 14, 10) ^
                                    bits(addr, 9, 5) ^ bits(addr, 4, 0));
}

/// True if `v` is a power of two (and nonzero).
constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Smallest power of two >= v (v must be >= 1).
constexpr std::uint64_t ceil_pow2(std::uint64_t v) { return std::bit_ceil(v); }

/// log2 of a power of two.
constexpr unsigned log2_pow2(std::uint64_t v) {
  return static_cast<unsigned>(std::bit_width(v) - 1);
}

}  // namespace nexus
