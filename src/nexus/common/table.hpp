// Aligned text tables and CSV output for the benchmark harnesses.
//
// Every bench binary prints the same rows/series the paper reports; this
// helper keeps the formatting consistent and optionally mirrors rows to CSV.
#pragma once

#include <string>
#include <vector>

namespace nexus {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Add one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with the given precision.
  static std::string num(double v, int precision = 2);
  static std::string integer(long long v);

  /// Render with column alignment and a header rule.
  [[nodiscard]] std::string str() const;

  /// Render as CSV (header + rows).
  [[nodiscard]] std::string csv() const;

  /// Print to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nexus
