// Minimal command-line flag parser for bench/example binaries.
//
// Supports `--key=value` and `--key value`; unrecognized flags abort with a
// usage message so experiment invocations never silently ignore a typo.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nexus {

class Flags {
 public:
  /// Parse argv. `spec` maps flag name -> help text; any flag outside the
  /// spec is an error.
  Flags(int argc, const char* const* argv,
        const std::map<std::string, std::string>& spec);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key, const std::string& dflt) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t dflt) const;
  [[nodiscard]] double get_double(const std::string& key, double dflt) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool dflt) const;

  /// Comma-separated integer list, e.g. --cores=1,2,4,8.
  [[nodiscard]] std::vector<std::int64_t> get_int_list(
      const std::string& key, const std::vector<std::int64_t>& dflt) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace nexus
