#include "nexus/common/stats.hpp"

namespace nexus {

BalanceReport balance_report(const std::vector<std::uint64_t>& bin_counts) {
  BalanceReport r;
  if (bin_counts.empty()) return r;
  Accumulator acc;
  for (auto c : bin_counts) acc.add(static_cast<double>(c));
  if (acc.mean() > 0.0) {
    r.max_over_mean = acc.max() / acc.mean();
    r.cv = acc.stddev() / acc.mean();
  }
  return r;
}

}  // namespace nexus
