// Deterministic random number generation for workload synthesis.
//
// All workload generators are seeded; two runs with the same parameters must
// produce bit-identical traces so that every experiment in the paper harness
// is reproducible. We use splitmix64 for seeding and xoshiro256** as the
// engine (both public-domain algorithms by Blackman & Vigna).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

namespace nexus {

/// splitmix64: used to expand a single seed into engine state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) {
    // Lemire's multiply-shift rejection-free bound is unnecessary here;
    // workloads only need statistical (not cryptographic) uniformity.
    return static_cast<std::uint64_t>(uniform() * static_cast<double>(n));
  }

  /// Standard normal via Box-Muller (uses two uniforms; no cached spare so
  /// the stream stays position-independent for reproducibility).
  double normal() {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Lognormal sample with the given log-space mu and sigma.
  double lognormal(double mu, double sigma) { return std::exp(mu + sigma * normal()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace nexus
