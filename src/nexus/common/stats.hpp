// Streaming statistics accumulators.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace nexus {

/// Welford-style streaming accumulator: count / mean / variance / min / max /
/// sum, numerically stable for long streams (sparselu has 650k+ samples).
class Accumulator {
 public:
  void add(double x) {
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact percentile computation over a retained sample vector. Used in tests
/// and ablation benches where sample counts are modest.
class Percentiles {
 public:
  void add(double x) { samples_.push_back(x); }
  [[nodiscard]] std::size_t count() const { return samples_.size(); }

  /// q in [0, 1]; nearest-rank method.
  [[nodiscard]] double quantile(double q) {
    if (samples_.empty()) return 0.0;
    std::sort(samples_.begin(), samples_.end());
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(samples_.size() - 1) + 0.5);
    return samples_[std::min(idx, samples_.size() - 1)];
  }

 private:
  std::vector<double> samples_;
};

/// Load-balance metrics over per-bin counts (used for the distribution
/// function ablation: how evenly does the XOR-fold spread addresses?).
struct BalanceReport {
  double max_over_mean = 0.0;   ///< worst bin relative to perfect balance
  double cv = 0.0;              ///< coefficient of variation across bins
};

BalanceReport balance_report(const std::vector<std::uint64_t>& bin_counts);

}  // namespace nexus
