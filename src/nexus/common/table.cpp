#include "nexus/common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "nexus/common/assert.hpp"

namespace nexus {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  NEXUS_ASSERT_MSG(row.size() == header_.size(), "row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::integer(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      // Left-align first column (labels), right-align the rest (numbers).
      if (c == 0) {
        os << row[c] << std::string(widths[c] - row[c].size(), ' ');
      } else {
        os << std::string(widths[c] - row[c].size(), ' ') << row[c];
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TextTable::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) os << (c == 0 ? "" : ",") << row[c];
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TextTable::print() const { std::fputs(str().c_str(), stdout); }

}  // namespace nexus
