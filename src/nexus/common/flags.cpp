#include "nexus/common/flags.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace nexus {
namespace {

[[noreturn]] void usage_and_exit(const std::map<std::string, std::string>& spec,
                                 const std::string& bad) {
  std::fprintf(stderr, "unknown or malformed flag: %s\nsupported flags:\n", bad.c_str());
  for (const auto& [k, help] : spec)
    std::fprintf(stderr, "  --%s  %s\n", k.c_str(), help.c_str());
  std::exit(2);
}

}  // namespace

Flags::Flags(int argc, const char* const* argv,
             const std::map<std::string, std::string>& spec) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) usage_and_exit(spec, arg);
    arg = arg.substr(2);
    std::string key;
    std::string value;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      key = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      key = arg;
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";  // bare boolean flag
      }
    }
    if (spec.find(key) == spec.end()) usage_and_exit(spec, "--" + key);
    values_[key] = value;
  }
}

bool Flags::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Flags::get(const std::string& key, const std::string& dflt) const {
  const auto it = values_.find(key);
  return it == values_.end() ? dflt : it->second;
}

std::int64_t Flags::get_int(const std::string& key, std::int64_t dflt) const {
  const auto it = values_.find(key);
  return it == values_.end() ? dflt : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& key, double dflt) const {
  const auto it = values_.find(key);
  return it == values_.end() ? dflt : std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& key, bool dflt) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return dflt;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::int64_t> Flags::get_int_list(
    const std::string& key, const std::vector<std::int64_t>& dflt) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return dflt;
  std::vector<std::int64_t> out;
  std::stringstream ss(it->second);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::strtoll(item.c_str(), nullptr, 10));
  }
  return out;
}

}  // namespace nexus
