// Fixed-capacity ring buffer.
//
// Hardware FIFOs have a physical depth; modelling them with a bounded queue
// keeps backpressure honest, and a non-allocating ring keeps the event loop
// fast. Capacity is a construction-time parameter (hardware configurations
// are runtime-selected in the experiments), storage is a single allocation.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "nexus/common/assert.hpp"

namespace nexus {

template <typename T>
class FixedRing {
 public:
  explicit FixedRing(std::size_t capacity) : buf_(capacity) {
    NEXUS_ASSERT_MSG(capacity > 0, "FixedRing capacity must be positive");
  }

  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == buf_.size(); }

  /// Push to the back. Caller must check !full() first.
  void push(T v) {
    NEXUS_ASSERT_MSG(!full(), "push on full FixedRing");
    // Conditional wrap instead of `%`: indices are always < capacity, and
    // an integer division per push is real money in the event hot loop.
    std::size_t i = head_ + size_;
    if (i >= buf_.size()) i -= buf_.size();
    buf_[i] = std::move(v);
    ++size_;
  }

  /// Try to push; returns false (leaving the ring unchanged) when full.
  [[nodiscard]] bool try_push(T v) {
    if (full()) return false;
    push(std::move(v));
    return true;
  }

  [[nodiscard]] T& front() {
    NEXUS_ASSERT_MSG(!empty(), "front on empty FixedRing");
    return buf_[head_];
  }
  [[nodiscard]] const T& front() const {
    NEXUS_ASSERT_MSG(!empty(), "front on empty FixedRing");
    return buf_[head_];
  }

  T pop() {
    NEXUS_ASSERT_MSG(!empty(), "pop on empty FixedRing");
    T v = std::move(buf_[head_]);
    if (++head_ == buf_.size()) head_ = 0;
    --size_;
    return v;
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

  /// Element i positions from the front (0 = front). For inspection in tests.
  [[nodiscard]] const T& at(std::size_t i) const {
    NEXUS_ASSERT(i < size_);
    return buf_[(head_ + i) % buf_.size()];
  }

 private:
  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace nexus
