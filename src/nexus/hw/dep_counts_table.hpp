// The global Dependence Counts Table (Fig. 2).
//
// Once the Dependence Counts Arbiter has gathered all of a task's per-graph
// results, a nonzero total is parked here; finish-path decrements retire it
// towards readiness.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "nexus/hw/tenancy.hpp"
#include "nexus/task/task.hpp"
#include "nexus/telemetry/fwd.hpp"

namespace nexus::hw {

class DepCountsTable {
 public:
  /// Park a task with `count` outstanding dependences (count >= 1). `at`
  /// stamps the trace occupancy sample; irrelevant without a recorder.
  /// `tenant` attributes the entry when tenancy accounting is configured.
  void set(TaskId id, std::uint32_t count, telemetry::TraceTick at = 0,
           std::uint16_t tenant = 0);

  /// Satisfy one dependence; returns true when the task became ready (its
  /// entry is then removed).
  bool decrement(TaskId id, telemetry::TraceTick at = 0);

  [[nodiscard]] bool contains(TaskId id) const { return counts_.count(id) > 0; }
  [[nodiscard]] std::size_t size() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t peak() const { return peak_; }

  /// Enable per-tenant occupancy accounting (tenancy quotas).
  void configure_tenancy(std::uint32_t tenants) { tenants_.configure(tenants); }
  [[nodiscard]] const TenantLedger& tenant_ledger() const { return tenants_; }

  /// Register park/hit metrics under `prefix` (cold path; call before a run).
  void bind_telemetry(telemetry::MetricRegistry& reg, std::string_view prefix);

  /// Attach a trace recorder; table size lands on counter track `track`
  /// at each park/release.
  void bind_trace(telemetry::TraceRecorder* trace, std::string_view track);

 private:
  struct Parked {
    std::uint32_t count = 0;
    std::uint16_t tenant = 0;
  };
  std::unordered_map<TaskId, Parked> counts_;
  TenantLedger tenants_;
  std::uint64_t peak_ = 0;
  telemetry::TraceRecorder* trace_ = nullptr;
  std::string track_;

  telemetry::Counter* m_parked_ = nullptr;     ///< tasks parked with a count
  telemetry::Counter* m_hits_ = nullptr;       ///< decrements applied
  telemetry::Counter* m_released_ = nullptr;   ///< decrements reaching zero
  telemetry::Histogram* m_occupancy_ = nullptr;  ///< size sampled per park
};

}  // namespace nexus::hw
