#include "nexus/hw/task_pool.hpp"

#include <algorithm>

namespace nexus::hw {

void TaskPool::insert(const TaskDescriptor& t) {
  NEXUS_ASSERT_MSG(!full(), "task pool overflow");
  const bool fresh = slots_.emplace(t.id, t).second;
  NEXUS_ASSERT_MSG(fresh, "task already pooled");
  peak_ = std::max<std::uint64_t>(peak_, slots_.size());
}

const TaskDescriptor& TaskPool::get(TaskId id) const {
  const auto it = slots_.find(id);
  NEXUS_ASSERT_MSG(it != slots_.end(), "task not in pool");
  return it->second;
}

void TaskPool::erase(TaskId id) {
  const auto n = slots_.erase(id);
  NEXUS_ASSERT_MSG(n == 1, "erase of task not in pool");
}

}  // namespace nexus::hw
