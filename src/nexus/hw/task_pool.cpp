#include "nexus/hw/task_pool.hpp"

#include <algorithm>

#include "nexus/telemetry/registry.hpp"
#include "nexus/telemetry/trace.hpp"

namespace nexus::hw {

void TaskPool::insert(const TaskDescriptor& t, telemetry::TraceTick at) {
  NEXUS_ASSERT_MSG(!full(), "task pool overflow");
  const bool fresh = slots_.emplace(t.id, t).second;
  NEXUS_ASSERT_MSG(fresh, "task already pooled");
  if (tenants_.enabled()) tenants_.add(t.tenant);
  peak_ = std::max<std::uint64_t>(peak_, slots_.size());
  telemetry::inc(m_inserts_);
  telemetry::record(m_occupancy_, slots_.size());
  telemetry::set(m_peak_, static_cast<std::int64_t>(peak_));
  if (trace_ != nullptr)
    trace_->counter(track_, at, static_cast<std::int64_t>(slots_.size()));
}

const TaskDescriptor& TaskPool::get(TaskId id) const {
  const auto it = slots_.find(id);
  NEXUS_ASSERT_MSG(it != slots_.end(), "task not in pool");
  return it->second;
}

void TaskPool::erase(TaskId id, telemetry::TraceTick at) {
  if (tenants_.enabled()) {
    const auto it = slots_.find(id);
    NEXUS_ASSERT_MSG(it != slots_.end(), "erase of task not in pool");
    tenants_.sub(it->second.tenant);
  }
  const auto n = slots_.erase(id);
  NEXUS_ASSERT_MSG(n == 1, "erase of task not in pool");
  telemetry::inc(m_retired_);
  if (trace_ != nullptr)
    trace_->counter(track_, at, static_cast<std::int64_t>(slots_.size()));
}

void TaskPool::bind_telemetry(telemetry::MetricRegistry& reg,
                              std::string_view prefix) {
  m_inserts_ = &reg.counter(telemetry::path_join(prefix, "inserts"));
  m_retired_ = &reg.counter(telemetry::path_join(prefix, "retired"));
  m_peak_ = &reg.gauge(telemetry::path_join(prefix, "peak"));
  m_occupancy_ = &reg.histogram(telemetry::path_join(prefix, "occupancy"));
}

void TaskPool::bind_trace(telemetry::TraceRecorder* trace,
                          std::string_view track) {
  trace_ = trace;
  track_ = std::string(track);
}

}  // namespace nexus::hw
