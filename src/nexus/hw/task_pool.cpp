#include "nexus/hw/task_pool.hpp"

// Header-only; this TU pins the library's symbols and include hygiene.
