#include "nexus/hw/distribution.hpp"

namespace nexus::hw {

const char* to_string(DistributionPolicy p) {
  switch (p) {
    case DistributionPolicy::kXorFold: return "xor-fold";
    case DistributionPolicy::kLowBits: return "low-bits";
    case DistributionPolicy::kModulo: return "modulo";
    case DistributionPolicy::kRoundRobin: return "round-robin";
  }
  return "?";
}

}  // namespace nexus::hw
