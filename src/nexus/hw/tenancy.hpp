// Multi-tenant resource accounting for the hardware task managers.
//
// The paper's Section VI observes that Nexus# can manage several
// applications at once because their address spaces are disjoint; this
// layer adds the isolation that observation needs at scale. A TenancyConfig
// carves per-tenant occupancy quotas out of the three bounded structures
// (Task Pool, Dependence Counts Table, Task Graph Tables) and a
// TenantLedger embedded in each structure keeps the per-tenant occupancy
// counts those quotas are checked against. A tenant that hits its quota is
// NACKed at admission (kSubmitNacked) — backpressure on that tenant only —
// instead of filling the shared structure until every tenant stalls.
//
// Everything here is disabled by default (tenants == 0): the ledgers stay
// empty, no branch beyond an `enabled()` check runs, and single-tenant
// schedules are bit-identical to the pre-tenancy model (tested contract).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "nexus/common/assert.hpp"
#include "nexus/telemetry/fwd.hpp"

namespace nexus::hw {

/// Uniform per-tenant occupancy quotas; 0 = unlimited for that structure.
struct TenantQuota {
  std::size_t pool = 0;    ///< Task Pool slots (in-flight descriptors)
  std::uint32_t table = 0; ///< task-graph-table entries, summed over graphs
  std::uint32_t dep = 0;   ///< parked dep-count entries, summed over arbiters

  friend bool operator==(const TenantQuota&, const TenantQuota&) = default;
};

struct TenancyConfig {
  /// Number of tenants sharing the manager; 0 disables tenancy entirely
  /// (the default — bit-identical to the pre-tenancy model).
  std::uint32_t tenants = 0;
  TenantQuota quota{};
  /// Global admission high-water mark on the Task Pool: submissions block
  /// (not NACK) once occupancy reaches this, leaving headroom below
  /// pool_capacity. 0 = pool capacity (no extra headroom).
  std::size_t global_high_water = 0;
  /// Per-tenant weighted-round-robin weights for the root arbiter's ready
  /// queues; empty = all 1. Ignored when `weighted` is false.
  std::vector<std::uint32_t> weights;
  /// true: per-tenant ready queues served weighted-round-robin (the QoS
  /// mode). false: one global FIFO in arrival order — the unweighted
  /// baseline a heavy tenant can monopolize.
  bool weighted = true;

  [[nodiscard]] bool enabled() const { return tenants > 0; }

  /// Weight of tenant `t` (>= 1; missing/zero entries default to 1).
  [[nodiscard]] std::uint32_t weight(std::uint32_t t) const {
    if (t >= weights.size() || weights[t] == 0) return 1;
    return weights[t];
  }

  friend bool operator==(const TenancyConfig&, const TenancyConfig&) = default;
};

/// Per-tenant occupancy counts for one bounded structure. Disabled (the
/// default) it is a no-op shell; configured, each add/sub keeps the
/// current and peak occupancy of one tenant, and optional telemetry
/// publishes the peaks as per-tenant gauges.
class TenantLedger {
 public:
  void configure(std::uint32_t tenants) {
    count_.assign(tenants, 0);
    peak_.assign(tenants, 0);
  }

  [[nodiscard]] bool enabled() const { return !count_.empty(); }
  [[nodiscard]] std::uint32_t tenants() const {
    return static_cast<std::uint32_t>(count_.size());
  }

  void add(std::uint32_t tenant);
  void sub(std::uint32_t tenant);

  [[nodiscard]] std::uint64_t count(std::uint32_t tenant) const {
    NEXUS_ASSERT(tenant < count_.size());
    return count_[tenant];
  }
  [[nodiscard]] std::uint64_t peak(std::uint32_t tenant) const {
    NEXUS_ASSERT(tenant < peak_.size());
    return peak_[tenant];
  }

  /// Register per-tenant peak-occupancy gauges "<prefix>/tenant<NN>/peak"
  /// (zero-padded indices; cold path, call once before a run).
  void bind_telemetry(telemetry::MetricRegistry& reg, std::string_view prefix);

 private:
  std::vector<std::uint64_t> count_;
  std::vector<std::uint64_t> peak_;
  std::vector<telemetry::Gauge*> m_peak_;
};

}  // namespace nexus::hw
