#include "nexus/hw/tenancy.hpp"

#include <algorithm>

#include "nexus/telemetry/registry.hpp"

namespace nexus::hw {

void TenantLedger::add(std::uint32_t tenant) {
  NEXUS_ASSERT(tenant < count_.size());
  ++count_[tenant];
  if (count_[tenant] > peak_[tenant]) {
    peak_[tenant] = count_[tenant];
    if (!m_peak_.empty())
      m_peak_[tenant]->set(static_cast<std::int64_t>(peak_[tenant]));
  }
}

void TenantLedger::sub(std::uint32_t tenant) {
  NEXUS_ASSERT(tenant < count_.size());
  NEXUS_ASSERT_MSG(count_[tenant] > 0, "tenant ledger underflow");
  --count_[tenant];
}

void TenantLedger::bind_telemetry(telemetry::MetricRegistry& reg,
                                  std::string_view prefix) {
  m_peak_.assign(count_.size(), nullptr);
  for (std::uint32_t t = 0; t < count_.size(); ++t)
    m_peak_[t] = &reg.gauge(telemetry::path_join(
        telemetry::path_join(prefix, telemetry::indexed_path("tenant", t,
                                                             tenants())),
        "peak"));
}

}  // namespace nexus::hw
