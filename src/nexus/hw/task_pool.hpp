// The Task Pool: bounded storage for in-flight task descriptors.
//
// Both Nexus designs keep every accepted task's descriptor (function
// pointer + input/output list) on-chip until the task finishes, because the
// finish path re-reads the I/O list to update the task graphs. A full pool
// back-pressures the host: submission stalls until a task retires — the
// windowing behaviour that bounds how far the manager can run ahead.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "nexus/hw/tenancy.hpp"
#include "nexus/task/task.hpp"
#include "nexus/telemetry/fwd.hpp"

namespace nexus::hw {

class TaskPool {
 public:
  explicit TaskPool(std::size_t capacity) : capacity_(capacity) {
    NEXUS_ASSERT(capacity > 0);
    slots_.reserve(capacity);
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return slots_.size(); }
  [[nodiscard]] bool full() const { return slots_.size() >= capacity_; }
  [[nodiscard]] std::uint64_t peak() const { return peak_; }

  /// `at` stamps the trace occupancy sample (sim time of the mutation);
  /// irrelevant unless a TraceRecorder is bound.
  void insert(const TaskDescriptor& t, telemetry::TraceTick at = 0);

  [[nodiscard]] const TaskDescriptor& get(TaskId id) const;

  void erase(TaskId id, telemetry::TraceTick at = 0);

  /// Enable per-tenant occupancy accounting (tenancy quotas). Descriptors
  /// are attributed to TaskDescriptor::tenant at insert/erase. Never called
  /// for single-tenant runs: the ledger stays disabled and free.
  void configure_tenancy(std::uint32_t tenants) { tenants_.configure(tenants); }
  [[nodiscard]] const TenantLedger& tenant_ledger() const { return tenants_; }
  [[nodiscard]] TenantLedger& tenant_ledger() { return tenants_; }

  /// Register occupancy/lifecycle metrics under `prefix` (cold path; call
  /// once before a run). Without this call the pool records nothing.
  void bind_telemetry(telemetry::MetricRegistry& reg, std::string_view prefix);

  /// Attach a trace recorder; occupancy samples land on counter track
  /// `track` at each insert/erase.
  void bind_trace(telemetry::TraceRecorder* trace, std::string_view track);

 private:
  std::size_t capacity_;
  std::unordered_map<TaskId, TaskDescriptor> slots_;
  TenantLedger tenants_;
  std::uint64_t peak_ = 0;
  telemetry::TraceRecorder* trace_ = nullptr;
  std::string track_;

  telemetry::Counter* m_inserts_ = nullptr;   ///< descriptors accepted
  telemetry::Counter* m_retired_ = nullptr;   ///< slots reclaimed (evictions)
  telemetry::Gauge* m_peak_ = nullptr;        ///< high-water occupancy
  telemetry::Histogram* m_occupancy_ = nullptr;  ///< size sampled per insert
};

}  // namespace nexus::hw
