// The Nexus# distribution function (Section IV-B).
//
// Incoming 48-bit addresses are steered to one of n task graphs in a single
// cycle. The paper's function XOR-folds the low 20 address bits in 5-bit
// blocks and reduces modulo the task-graph count; alternatives are provided
// for the ablation bench (speed and fairness are the two properties the
// paper demands of this function).
#pragma once

#include <cstdint>
#include <string>

#include "nexus/common/bit_ops.hpp"
#include "nexus/task/task.hpp"

namespace nexus::hw {

enum class DistributionPolicy : std::uint8_t {
  kXorFold = 0,    ///< the paper's function: xor of 5-bit blocks, mod n
  kLowBits = 1,    ///< addr[4:0] mod n (no folding)
  kModulo = 2,     ///< whole low-20-bit value mod n
  kRoundRobin = 3, ///< ignore the address; rotate (breaks same-addr affinity!)
};

const char* to_string(DistributionPolicy p);

/// Stateful distributor (round-robin needs a counter; the others are pure).
class Distributor {
 public:
  Distributor(DistributionPolicy policy, std::uint32_t num_targets)
      : policy_(policy), n_(num_targets) {
    NEXUS_ASSERT_MSG(num_targets >= 1 && num_targets <= 32,
                     "the 5-bit fold supports up to 32 task graphs");
  }

  [[nodiscard]] std::uint32_t num_targets() const { return n_; }
  [[nodiscard]] DistributionPolicy policy() const { return policy_; }

  /// Target task graph for this address.
  std::uint32_t target(Addr addr) {
    switch (policy_) {
      case DistributionPolicy::kXorFold:
        return xor_fold20_5(addr) % n_;
      case DistributionPolicy::kLowBits:
        return static_cast<std::uint32_t>(addr & 0x1F) % n_;
      case DistributionPolicy::kModulo:
        return static_cast<std::uint32_t>(addr & 0xFFFFF) % n_;
      case DistributionPolicy::kRoundRobin:
        return rr_++ % n_;
    }
    return 0;
  }

  /// IMPORTANT: dependency tracking requires all accesses to one address to
  /// meet in one task graph. Round-robin violates this; it exists only so
  /// the ablation bench can show *why* the paper rejects whole-task or
  /// stateless-rotation distribution (Section IV-A discussion).
  [[nodiscard]] bool preserves_affinity() const {
    return policy_ != DistributionPolicy::kRoundRobin;
  }

 private:
  DistributionPolicy policy_;
  std::uint32_t n_;
  std::uint32_t rr_ = 0;
};

}  // namespace nexus::hw
