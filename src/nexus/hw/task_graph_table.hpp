// The set-associative task-graph structure of Nexus++/Nexus#.
//
// Both designs keep, per tracked memory address, the currently-running
// access group (one writer or concurrent readers) and a FIFO Kick-Off List
// of waiting accesses (Section III / IV-C). The table is set-associative and
// physically bounded:
//
//  - an address maps to a set; allocation takes a free way or stalls,
//  - a kick-off list holds `kol_entries` waiters inline; longer lists chain
//    "dummy entries" allocated elsewhere in the table (the mechanism the
//    Gaussian-elimination benchmark validates, Section V-A/VI),
//  - an entry is reclaimed when its last access finishes and no waiter
//    remains.
//
// The table reports chain-hop counts so the timing models can charge extra
// cycles for walking chained lists, and reports kNoSpace so they can model
// insert-stage stalls ("the task graph must then wait until one task
// finishes", Section IV-D).
#pragma once

#include <cstdint>
#include <deque>
#include <string_view>
#include <vector>

#include "nexus/hw/tenancy.hpp"
#include "nexus/task/task.hpp"
#include "nexus/telemetry/fwd.hpp"

namespace nexus::hw {

struct TableConfig {
  std::uint32_t sets = 256;
  std::uint32_t ways = 4;
  std::uint32_t kol_entries = 8;       ///< inline kick-off-list capacity
  std::uint32_t chain_probe_limit = 8; ///< sets probed for a dummy entry
};

/// One waiting access in a kick-off list.
struct Waiter {
  TaskId task = kInvalidTask;
  bool is_writer = false;
};

class TaskGraphTable {
 public:
  explicit TaskGraphTable(const TableConfig& cfg);

  enum class InsertKind : std::uint8_t {
    kRunsNow,  ///< no dependency on this address
    kQueued,   ///< appended to the kick-off list (one dependence)
    kNoSpace,  ///< allocation failed: caller must stall and retry
  };
  struct InsertResult {
    InsertKind kind = InsertKind::kNoSpace;
    std::uint32_t chain_hops = 0;  ///< dummy entries traversed/allocated
  };

  /// Record an access by `task` to `addr`. `tenant` attributes any slots the
  /// access allocates when tenancy accounting is configured; tenant address
  /// windows are disjoint, so every entry belongs to exactly one tenant.
  InsertResult insert(Addr addr, TaskId task, bool is_writer,
                      std::uint16_t tenant = 0);

  struct FinishResult {
    std::uint32_t chain_hops = 0;
    bool entry_freed = false;  ///< address fully drained, ways reclaimed
  };

  /// Retire `task`'s access to `addr`. If the running group drains, the
  /// next kick-off-list group starts running and its members are appended
  /// to *kicked (each represents one dependence satisfied).
  FinishResult finish(Addr addr, TaskId task, std::vector<Waiter>* kicked);

  // --- occupancy / capacity introspection ---
  [[nodiscard]] std::uint32_t entries_in_use() const { return used_slots_; }
  [[nodiscard]] std::uint32_t capacity() const {
    return cfg_.sets * cfg_.ways;
  }
  [[nodiscard]] bool tracks(Addr addr) const;
  [[nodiscard]] std::uint64_t total_stalls() const { return stalls_; }
  [[nodiscard]] std::uint64_t peak_used() const { return peak_used_; }

  /// Enable per-tenant slot accounting (tenancy quotas).
  void configure_tenancy(std::uint32_t tenants) { tenants_.configure(tenants); }
  [[nodiscard]] const TenantLedger& tenant_ledger() const { return tenants_; }

  /// Register fill/stall/chain metrics under `prefix` (cold path).
  void bind_telemetry(telemetry::MetricRegistry& reg, std::string_view prefix);

 private:
  struct Entry {
    Addr addr = 0;
    bool valid = false;
    bool is_chain = false;         ///< dummy/extension slot
    bool cur_is_writer = false;
    std::uint16_t tenant = 0;  ///< owner of this slot (tenancy accounting)
    std::uint32_t cur_unfinished = 0;
    std::deque<Waiter> kol;                ///< logical kick-off list (FIFO)
    std::vector<std::uint32_t> chain_idx;  ///< slots of dummy entries backing kol
  };

  [[nodiscard]] std::uint32_t set_of(Addr addr) const;
  Entry* find(Addr addr);
  Entry* allocate(Addr addr, std::uint16_t tenant);
  /// Allocate/free physical dummy slots to cover a kick-off list of `len`.
  bool grow_chain(Entry& e, Addr addr);
  void shrink_chain(Entry& e);
  void release_entry(Entry& e);

  TableConfig cfg_;
  std::vector<Entry> slots_;  ///< sets*ways, row-major by set
  TenantLedger tenants_;
  std::uint32_t used_slots_ = 0;
  std::uint64_t stalls_ = 0;
  std::uint64_t peak_used_ = 0;

  telemetry::Counter* m_inserts_ = nullptr;     ///< accesses recorded
  telemetry::Counter* m_queued_ = nullptr;      ///< accesses that waited
  telemetry::Counter* m_stalls_ = nullptr;      ///< kNoSpace rejections
  telemetry::Counter* m_chain_hops_ = nullptr;  ///< dummy-entry traversals
  telemetry::Histogram* m_fill_ = nullptr;      ///< slots used, per insert
};

}  // namespace nexus::hw
