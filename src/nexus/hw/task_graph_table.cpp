#include "nexus/hw/task_graph_table.hpp"

#include <algorithm>

#include "nexus/common/bit_ops.hpp"
#include "nexus/telemetry/registry.hpp"

namespace nexus::hw {

TaskGraphTable::TaskGraphTable(const TableConfig& cfg) : cfg_(cfg) {
  NEXUS_ASSERT_MSG(is_pow2(cfg.sets), "set count must be a power of two");
  NEXUS_ASSERT(cfg.ways >= 1 && cfg.kol_entries >= 1);
  slots_.resize(static_cast<std::size_t>(cfg.sets) * cfg.ways);
}

std::uint32_t TaskGraphTable::set_of(Addr addr) const {
  // Cache-style index bits above the 64-byte line offset; workload address
  // maps stride by 0x40 so consecutive objects hit consecutive sets.
  return static_cast<std::uint32_t>((addr >> 6) & (cfg_.sets - 1));
}

TaskGraphTable::Entry* TaskGraphTable::find(Addr addr) {
  const std::uint32_t base = set_of(addr) * cfg_.ways;
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Entry& e = slots_[base + w];
    if (e.valid && !e.is_chain && e.addr == addr) return &e;
  }
  return nullptr;
}

TaskGraphTable::Entry* TaskGraphTable::allocate(Addr addr,
                                                std::uint16_t tenant) {
  const std::uint32_t base = set_of(addr) * cfg_.ways;
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Entry& e = slots_[base + w];
    if (!e.valid) {
      e = Entry{};
      e.valid = true;
      e.addr = addr;
      e.tenant = tenant;
      if (tenants_.enabled()) tenants_.add(tenant);
      ++used_slots_;
      peak_used_ = std::max<std::uint64_t>(peak_used_, used_slots_);
      return &e;
    }
  }
  return nullptr;
}

bool TaskGraphTable::grow_chain(Entry& e, Addr addr) {
  // Probe other sets for a free way to hold the dummy/extension entry.
  const std::uint32_t home = set_of(addr);
  for (std::uint32_t k = 1; k <= cfg_.chain_probe_limit; ++k) {
    const std::uint32_t s = (home + k * 0x9E37u) & (cfg_.sets - 1);
    const std::uint32_t base = s * cfg_.ways;
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
      Entry& c = slots_[base + w];
      if (!c.valid) {
        c = Entry{};
        c.valid = true;
        c.is_chain = true;
        c.addr = addr;
        c.tenant = e.tenant;
        if (tenants_.enabled()) tenants_.add(e.tenant);
        ++used_slots_;
        peak_used_ = std::max<std::uint64_t>(peak_used_, used_slots_);
        e.chain_idx.push_back(base + w);
        return true;
      }
    }
  }
  return false;
}

void TaskGraphTable::shrink_chain(Entry& e) {
  const std::size_t len = e.kol.size();
  const std::size_t needed =
      len <= cfg_.kol_entries
          ? 0
          : (len - cfg_.kol_entries + cfg_.kol_entries - 1) / cfg_.kol_entries;
  while (e.chain_idx.size() > needed) {
    Entry& c = slots_[e.chain_idx.back()];
    NEXUS_DCHECK(c.valid && c.is_chain);
    c.valid = false;
    if (tenants_.enabled()) tenants_.sub(c.tenant);
    NEXUS_ASSERT(used_slots_ > 0);
    --used_slots_;
    e.chain_idx.pop_back();
  }
}

void TaskGraphTable::release_entry(Entry& e) {
  NEXUS_DCHECK(e.kol.empty());
  shrink_chain(e);
  NEXUS_DCHECK(e.chain_idx.empty());
  e.valid = false;
  if (tenants_.enabled()) tenants_.sub(e.tenant);
  NEXUS_ASSERT(used_slots_ > 0);
  --used_slots_;
}

TaskGraphTable::InsertResult TaskGraphTable::insert(Addr addr, TaskId task,
                                                    bool is_writer,
                                                    std::uint16_t tenant) {
  Entry* e = find(addr);
  if (e == nullptr) {
    e = allocate(addr, tenant);
    if (e == nullptr) {
      ++stalls_;
      telemetry::inc(m_stalls_);
      return {InsertKind::kNoSpace, 0};
    }
    e->cur_is_writer = is_writer;
    e->cur_unfinished = 1;
    telemetry::inc(m_inserts_);
    telemetry::record(m_fill_, used_slots_);
    return {InsertKind::kRunsNow, 0};
  }

  if (!is_writer && !e->cur_is_writer && e->kol.empty()) {
    // Reader joins the running reader group.
    ++e->cur_unfinished;
    telemetry::inc(m_inserts_);
    telemetry::record(m_fill_, used_slots_);
    return {InsertKind::kRunsNow, 0};
  }

  // Append to the kick-off list; may need another dummy entry.
  const std::size_t capacity =
      static_cast<std::size_t>(cfg_.kol_entries) * (1 + e->chain_idx.size());
  if (e->kol.size() == capacity) {
    if (!grow_chain(*e, addr)) {
      ++stalls_;
      telemetry::inc(m_stalls_);
      return {InsertKind::kNoSpace, static_cast<std::uint32_t>(e->chain_idx.size())};
    }
  }
  e->kol.push_back(Waiter{task, is_writer});
  telemetry::inc(m_inserts_);
  telemetry::inc(m_queued_);
  telemetry::inc(m_chain_hops_, e->chain_idx.size());
  telemetry::record(m_fill_, used_slots_);
  return {InsertKind::kQueued, static_cast<std::uint32_t>(e->chain_idx.size())};
}

TaskGraphTable::FinishResult TaskGraphTable::finish(Addr addr, TaskId /*task*/,
                                                    std::vector<Waiter>* kicked) {
  NEXUS_ASSERT(kicked != nullptr);
  Entry* e = find(addr);
  NEXUS_ASSERT_MSG(e != nullptr, "finish for untracked address");
  NEXUS_ASSERT(e->cur_unfinished > 0);
  FinishResult r;
  if (--e->cur_unfinished > 0) return r;

  if (e->kol.empty()) {
    release_entry(*e);
    r.entry_freed = true;
    return r;
  }

  // Kick off the next group: a single writer, or every consecutive reader.
  r.chain_hops = static_cast<std::uint32_t>(e->chain_idx.size());
  telemetry::inc(m_chain_hops_, r.chain_hops);
  if (e->kol.front().is_writer) {
    kicked->push_back(e->kol.front());
    e->kol.pop_front();
    e->cur_is_writer = true;
    e->cur_unfinished = 1;
  } else {
    e->cur_is_writer = false;
    e->cur_unfinished = 0;
    while (!e->kol.empty() && !e->kol.front().is_writer) {
      kicked->push_back(e->kol.front());
      e->kol.pop_front();
      ++e->cur_unfinished;
    }
  }
  shrink_chain(*e);
  return r;
}

bool TaskGraphTable::tracks(Addr addr) const {
  return const_cast<TaskGraphTable*>(this)->find(addr) != nullptr;
}

void TaskGraphTable::bind_telemetry(telemetry::MetricRegistry& reg,
                                    std::string_view prefix) {
  m_inserts_ = &reg.counter(telemetry::path_join(prefix, "inserts"));
  m_queued_ = &reg.counter(telemetry::path_join(prefix, "queued"));
  m_stalls_ = &reg.counter(telemetry::path_join(prefix, "stalls"));
  m_chain_hops_ = &reg.counter(telemetry::path_join(prefix, "chain_hops"));
  m_fill_ = &reg.histogram(telemetry::path_join(prefix, "fill"));
}

}  // namespace nexus::hw
