#include "nexus/hw/dep_counts_table.hpp"

#include <algorithm>

#include "nexus/telemetry/registry.hpp"
#include "nexus/telemetry/trace.hpp"

namespace nexus::hw {

void DepCountsTable::set(TaskId id, std::uint32_t count,
                         telemetry::TraceTick at, std::uint16_t tenant) {
  NEXUS_ASSERT(count >= 1);
  const bool fresh = counts_.emplace(id, Parked{count, tenant}).second;
  NEXUS_ASSERT_MSG(fresh, "dep count already present");
  if (tenants_.enabled()) tenants_.add(tenant);
  peak_ = std::max<std::uint64_t>(peak_, counts_.size());
  telemetry::inc(m_parked_);
  telemetry::record(m_occupancy_, counts_.size());
  if (trace_ != nullptr)
    trace_->counter(track_, at, static_cast<std::int64_t>(counts_.size()));
}

bool DepCountsTable::decrement(TaskId id, telemetry::TraceTick at) {
  const auto it = counts_.find(id);
  NEXUS_ASSERT_MSG(it != counts_.end(), "decrement of unknown task");
  NEXUS_ASSERT(it->second.count > 0);
  telemetry::inc(m_hits_);
  if (--it->second.count == 0) {
    if (tenants_.enabled()) tenants_.sub(it->second.tenant);
    counts_.erase(it);
    telemetry::inc(m_released_);
    if (trace_ != nullptr)
      trace_->counter(track_, at, static_cast<std::int64_t>(counts_.size()));
    return true;
  }
  return false;
}

void DepCountsTable::bind_telemetry(telemetry::MetricRegistry& reg,
                                    std::string_view prefix) {
  m_parked_ = &reg.counter(telemetry::path_join(prefix, "parked"));
  m_hits_ = &reg.counter(telemetry::path_join(prefix, "hits"));
  m_released_ = &reg.counter(telemetry::path_join(prefix, "released"));
  m_occupancy_ = &reg.histogram(telemetry::path_join(prefix, "occupancy"));
}

void DepCountsTable::bind_trace(telemetry::TraceRecorder* trace,
                                std::string_view track) {
  trace_ = trace;
  track_ = std::string(track);
}

}  // namespace nexus::hw
