#include "nexus/hw/dep_counts_table.hpp"

#include <algorithm>

namespace nexus::hw {

void DepCountsTable::set(TaskId id, std::uint32_t count) {
  NEXUS_ASSERT(count >= 1);
  const bool fresh = counts_.emplace(id, count).second;
  NEXUS_ASSERT_MSG(fresh, "dep count already present");
  peak_ = std::max<std::uint64_t>(peak_, counts_.size());
}

bool DepCountsTable::decrement(TaskId id) {
  const auto it = counts_.find(id);
  NEXUS_ASSERT_MSG(it != counts_.end(), "decrement of unknown task");
  NEXUS_ASSERT(it->second > 0);
  if (--it->second == 0) {
    counts_.erase(it);
    return true;
  }
  return false;
}

}  // namespace nexus::hw
