#include "nexus/hw/dep_counts_table.hpp"

#include <algorithm>

#include "nexus/telemetry/registry.hpp"

namespace nexus::hw {

void DepCountsTable::set(TaskId id, std::uint32_t count) {
  NEXUS_ASSERT(count >= 1);
  const bool fresh = counts_.emplace(id, count).second;
  NEXUS_ASSERT_MSG(fresh, "dep count already present");
  peak_ = std::max<std::uint64_t>(peak_, counts_.size());
  telemetry::inc(m_parked_);
  telemetry::record(m_occupancy_, counts_.size());
}

bool DepCountsTable::decrement(TaskId id) {
  const auto it = counts_.find(id);
  NEXUS_ASSERT_MSG(it != counts_.end(), "decrement of unknown task");
  NEXUS_ASSERT(it->second > 0);
  telemetry::inc(m_hits_);
  if (--it->second == 0) {
    counts_.erase(it);
    telemetry::inc(m_released_);
    return true;
  }
  return false;
}

void DepCountsTable::bind_telemetry(telemetry::MetricRegistry& reg,
                                    std::string_view prefix) {
  m_parked_ = &reg.counter(telemetry::path_join(prefix, "parked"));
  m_hits_ = &reg.counter(telemetry::path_join(prefix, "hits"));
  m_released_ = &reg.counter(telemetry::path_join(prefix, "released"));
  m_occupancy_ = &reg.histogram(telemetry::path_join(prefix, "occupancy"));
}

}  // namespace nexus::hw
