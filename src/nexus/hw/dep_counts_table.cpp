#include "nexus/hw/dep_counts_table.hpp"

// Header-only; this TU pins the library's symbols and include hygiene.
