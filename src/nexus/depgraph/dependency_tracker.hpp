// Golden (software) dependency tracker.
//
// This is the functional specification of what every task manager in this
// repository must compute: StarSs/OmpSs data-dependency semantics over the
// tasks' declared memory footprints.
//
// Per address we keep an ordered queue of *access groups*. A group is either
// one writer (out/inout) or a set of concurrent readers (in). The head group
// is the set of accessors currently allowed to touch the address; later
// groups wait. This encodes RAW, WAR and WAW ordering while letting
// consecutive readers run concurrently — exactly the "Kick-Off List"
// behaviour of the Nexus designs, without any capacity limit.
//
// The hardware models (Nexus++/Nexus#) implement the same semantics with
// bounded structures and cycle costs; unit tests check them against this
// tracker on randomized workloads.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "nexus/task/task.hpp"

namespace nexus {

class DependencyTracker {
 public:
  /// Register a submitted task. Returns the number of its parameters that
  /// must wait for earlier accessors; 0 means the task is immediately ready.
  std::size_t submit(const TaskDescriptor& task);

  /// Mark a task finished. Appends newly-ready task ids to *newly_ready.
  /// The task must have been submitted, ready and not yet finished.
  void finish(TaskId id, std::vector<TaskId>* newly_ready);

  /// Remaining blocked parameters of a pending task (0 = ready).
  [[nodiscard]] std::size_t dep_count(TaskId id) const;

  [[nodiscard]] bool is_ready(TaskId id) const { return dep_count(id) == 0; }
  [[nodiscard]] bool is_finished(TaskId id) const;

  /// The as-yet-unfinished task that most recently wrote `addr`, if any.
  /// This is the task a `taskwait on(addr)` must wait for.
  [[nodiscard]] std::optional<TaskId> pending_writer(Addr addr) const;

  /// Number of submitted-but-unfinished tasks.
  [[nodiscard]] std::size_t in_flight() const { return in_flight_; }

  /// Number of addresses with live tracking state (tests/capacity studies).
  [[nodiscard]] std::size_t live_addresses() const { return addr_state_.size(); }

 private:
  struct Group {
    bool is_writer = false;
    // Writer groups have exactly one member; reader groups one or more.
    std::vector<TaskId> members;
    std::uint32_t unfinished = 0;  ///< members not yet finished
  };

  struct AddrState {
    std::deque<Group> groups;            ///< front = currently running group
    TaskId last_writer = kInvalidTask;   ///< most recent writer (any state)
  };

  struct TaskState {
    std::uint32_t deps = 0;
    bool submitted = false;
    bool finished = false;
    ParamList params;  ///< retained for release at finish()
  };

  TaskState& state(TaskId id);
  [[nodiscard]] const TaskState* find_state(TaskId id) const;

  std::unordered_map<Addr, AddrState> addr_state_;
  std::vector<TaskState> tasks_;  ///< indexed by TaskId (ids are dense)
  std::size_t in_flight_ = 0;
  std::vector<TaskId> finished_writers_scratch_;
};

}  // namespace nexus
