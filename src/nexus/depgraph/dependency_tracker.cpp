#include "nexus/depgraph/dependency_tracker.hpp"

#include <algorithm>

namespace nexus {

DependencyTracker::TaskState& DependencyTracker::state(TaskId id) {
  if (id >= tasks_.size()) tasks_.resize(id + 1);
  return tasks_[id];
}

const DependencyTracker::TaskState* DependencyTracker::find_state(TaskId id) const {
  return id < tasks_.size() ? &tasks_[id] : nullptr;
}

std::size_t DependencyTracker::submit(const TaskDescriptor& task) {
  NEXUS_ASSERT_MSG(validate_task(task), "invalid task submitted to tracker");
  TaskState& ts = state(task.id);
  NEXUS_ASSERT_MSG(!ts.submitted, "task submitted twice");
  ts.submitted = true;
  ts.params = task.params;
  ++in_flight_;

  std::uint32_t blocked = 0;
  for (const auto& p : task.params) {
    AddrState& as = addr_state_[p.addr];
    if (is_write(p.dir)) {
      as.last_writer = task.id;
      const bool runs_now = as.groups.empty();
      as.groups.push_back(Group{true, {task.id}, 1});
      if (!runs_now) ++blocked;
    } else {
      if (as.groups.empty()) {
        as.groups.push_back(Group{false, {task.id}, 1});
      } else if (as.groups.size() == 1 && !as.groups.front().is_writer) {
        // Join the currently-running reader group: readable immediately.
        as.groups.front().members.push_back(task.id);
        ++as.groups.front().unfinished;
      } else if (!as.groups.back().is_writer) {
        // Join the youngest waiting reader group.
        as.groups.back().members.push_back(task.id);
        ++as.groups.back().unfinished;
        ++blocked;
      } else {
        as.groups.push_back(Group{false, {task.id}, 1});
        ++blocked;
      }
    }
  }
  ts.deps = blocked;
  return blocked;
}

void DependencyTracker::finish(TaskId id, std::vector<TaskId>* newly_ready) {
  NEXUS_ASSERT(newly_ready != nullptr);
  TaskState& ts = state(id);
  NEXUS_ASSERT_MSG(ts.submitted && !ts.finished, "finish of non-running task");
  NEXUS_ASSERT_MSG(ts.deps == 0, "finish of task that was never ready");
  ts.finished = true;
  --in_flight_;

  for (const auto& p : ts.params) {
    const auto it = addr_state_.find(p.addr);
    NEXUS_ASSERT_MSG(it != addr_state_.end(), "finish for untracked address");
    AddrState& as = it->second;
    NEXUS_ASSERT_MSG(!as.groups.empty(), "finish with empty access queue");
    Group& head = as.groups.front();
    // Invariant: a running task's accesses are always in the head group.
    NEXUS_DCHECK(std::find(head.members.begin(), head.members.end(), id) !=
                 head.members.end());
    NEXUS_ASSERT(head.unfinished > 0);
    if (--head.unfinished == 0) {
      as.groups.pop_front();
      if (as.groups.empty()) {
        // Fully drained: drop the tracking state (mirrors the hardware
        // deleting a task-graph entry whose kick-off list emptied).
        addr_state_.erase(it);
      } else {
        // Kick off the next access group: every member loses one dependence.
        for (const TaskId m : as.groups.front().members) {
          TaskState& ms = state(m);
          NEXUS_ASSERT(ms.deps > 0);
          if (--ms.deps == 0) newly_ready->push_back(m);
        }
      }
    }
  }
  ts.params.clear();
}

std::size_t DependencyTracker::dep_count(TaskId id) const {
  const TaskState* ts = find_state(id);
  NEXUS_ASSERT_MSG(ts != nullptr && ts->submitted, "dep_count of unknown task");
  return ts->deps;
}

bool DependencyTracker::is_finished(TaskId id) const {
  const TaskState* ts = find_state(id);
  return ts != nullptr && ts->finished;
}

std::optional<TaskId> DependencyTracker::pending_writer(Addr addr) const {
  const auto it = addr_state_.find(addr);
  if (it == addr_state_.end()) return std::nullopt;
  const TaskId w = it->second.last_writer;
  if (w == kInvalidTask) return std::nullopt;
  const TaskState* ts = find_state(w);
  if (ts == nullptr || ts->finished) return std::nullopt;
  return w;
}

}  // namespace nexus
