#include "nexus/task/trace_io.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

namespace nexus {
namespace {

const char* dir_name(Dir d) {
  switch (d) {
    case Dir::kIn: return "in";
    case Dir::kOut: return "out";
    case Dir::kInOut: return "inout";
  }
  return "?";
}

bool parse_dir(const std::string& s, Dir* out) {
  if (s == "in") { *out = Dir::kIn; return true; }
  if (s == "out") { *out = Dir::kOut; return true; }
  if (s == "inout") { *out = Dir::kInOut; return true; }
  return false;
}

}  // namespace

void write_trace(std::ostream& os, const Trace& trace) {
  os << "trace " << (trace.name().empty() ? "unnamed" : trace.name()) << "\n";
  // Emit each task declaration immediately before its submit event so the
  // file reads in program order.
  for (const auto& ev : trace.events()) {
    switch (ev.op) {
      case TraceOp::kSubmit: {
        const auto& t = trace.task(ev.task);
        os << "task " << t.id << ' ' << t.fn << ' ' << t.duration << ' '
           << t.params.size();
        for (const auto& p : t.params)
          os << ' ' << std::hex << p.addr << std::dec << ' ' << dir_name(p.dir);
        os << "\nsubmit " << t.id << "\n";
        break;
      }
      case TraceOp::kTaskwait:
        os << "taskwait\n";
        break;
      case TraceOp::kTaskwaitOn:
        os << "taskwait_on " << std::hex << ev.addr << std::dec << "\n";
        break;
    }
  }
}

bool write_trace_file(const std::string& path, const Trace& trace) {
  std::ofstream f(path);
  if (!f) return false;
  write_trace(f, trace);
  return static_cast<bool>(f);
}

bool read_trace(std::istream& is, Trace* out, std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  Trace trace;
  std::string line;
  // Pending declared task, keyed by the file's task id; the rebuilt trace
  // re-assigns ids in submission order, so we map old -> new.
  bool have_pending = false;
  std::uint64_t pending_file_id = 0;
  std::uint32_t pending_fn = 0;
  Tick pending_dur = 0;
  ParamList pending_params;

  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string kw;
    ss >> kw;
    if (kw == "trace") {
      std::string name;
      ss >> name;
      trace.set_name(name);
    } else if (kw == "task") {
      std::uint64_t id = 0;
      std::uint32_t fn = 0;
      Tick dur = 0;
      std::size_t np = 0;
      if (!(ss >> id >> fn >> dur >> np) || np == 0 || np > kMaxParams)
        return fail("bad task line " + std::to_string(line_no));
      ParamList params;
      for (std::size_t i = 0; i < np; ++i) {
        Addr a = 0;
        std::string d;
        if (!(ss >> std::hex >> a >> std::dec >> d))
          return fail("bad param on line " + std::to_string(line_no));
        Dir dir{};
        if (!parse_dir(d, &dir)) return fail("bad direction on line " + std::to_string(line_no));
        params.push_back(Param{a, dir});
      }
      have_pending = true;
      pending_file_id = id;
      pending_fn = fn;
      pending_dur = dur;
      pending_params = params;
    } else if (kw == "submit") {
      std::uint64_t id = 0;
      if (!(ss >> id)) return fail("bad submit line " + std::to_string(line_no));
      if (!have_pending || id != pending_file_id)
        return fail("submit without matching task declaration, line " +
                    std::to_string(line_no));
      trace.submit(pending_fn, pending_dur, pending_params);
      have_pending = false;
    } else if (kw == "taskwait") {
      trace.taskwait();
    } else if (kw == "taskwait_on") {
      Addr a = 0;
      if (!(ss >> std::hex >> a)) return fail("bad taskwait_on line " + std::to_string(line_no));
      trace.taskwait_on(a);
    } else {
      return fail("unknown keyword '" + kw + "' on line " + std::to_string(line_no));
    }
  }
  std::string verr;
  if (!trace.validate(&verr)) return fail("trace invalid: " + verr);
  *out = std::move(trace);
  return true;
}

bool read_trace_file(const std::string& path, Trace* out, std::string* error) {
  std::ifstream f(path);
  if (!f) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  return read_trace(f, out, error);
}

}  // namespace nexus
