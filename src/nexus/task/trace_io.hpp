// Text serialization of traces.
//
// Format (line-oriented, '#' comments):
//   trace <name>
//   task <id> <fn> <duration_ps> <nparams> (<addr_hex> <in|out|inout>)*
//   submit <id>
//   taskwait
//   taskwait_on <addr_hex>
// Tasks are declared before their submit event (the generator emits them
// adjacently). The format is meant for inspection and for feeding external
// tools, not for performance; benches generate traces in memory.
#pragma once

#include <iosfwd>
#include <string>

#include "nexus/task/trace.hpp"

namespace nexus {

void write_trace(std::ostream& os, const Trace& trace);
bool write_trace_file(const std::string& path, const Trace& trace);

/// Parse a trace; returns false (and sets *error) on malformed input.
bool read_trace(std::istream& is, Trace* out, std::string* error = nullptr);
bool read_trace_file(const std::string& path, Trace* out, std::string* error = nullptr);

}  // namespace nexus
