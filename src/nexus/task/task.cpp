#include "nexus/task/task.hpp"

namespace nexus {

bool validate_task(const TaskDescriptor& t) {
  if (t.params.empty() || t.params.size() > kMaxParams) return false;
  if (t.duration < 0) return false;
  for (std::size_t i = 0; i < t.params.size(); ++i) {
    if ((t.params[i].addr & ~kAddrMask) != 0) return false;
    for (std::size_t j = i + 1; j < t.params.size(); ++j) {
      if (t.params[i].addr == t.params[j].addr) return false;
    }
  }
  return true;
}

}  // namespace nexus
