#include "nexus/task/trace_stats.hpp"

#include <algorithm>
#include <limits>
#include <unordered_set>

namespace nexus {

TraceStats compute_stats(const Trace& trace) {
  TraceStats s;
  s.num_tasks = trace.num_tasks();
  s.min_params = std::numeric_limits<std::size_t>::max();
  std::unordered_set<Addr> addrs;
  for (const auto& t : trace.tasks()) {
    s.total_work += t.duration;
    s.min_params = std::min(s.min_params, t.params.size());
    s.max_params = std::max(s.max_params, t.params.size());
    ++s.params_histogram[t.params.size()];
    for (const auto& p : t.params) addrs.insert(p.addr);
  }
  if (s.num_tasks == 0) s.min_params = 0;
  s.avg_task = s.num_tasks > 0 ? s.total_work / static_cast<Tick>(s.num_tasks) : 0;
  s.distinct_addresses = addrs.size();
  for (const auto& ev : trace.events()) {
    if (ev.op == TraceOp::kTaskwait) ++s.num_taskwaits;
    if (ev.op == TraceOp::kTaskwaitOn) ++s.num_taskwait_ons;
  }
  return s;
}

}  // namespace nexus
