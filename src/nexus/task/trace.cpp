#include "nexus/task/trace.hpp"

#include <unordered_set>

namespace nexus {

TaskId Trace::submit(std::uint32_t fn, Tick duration, const ParamList& params) {
  const auto id = static_cast<TaskId>(tasks_.size());
  TaskDescriptor t;
  t.id = id;
  t.fn = fn;
  t.duration = duration;
  t.params = params;
  NEXUS_ASSERT_MSG(validate_task(t), "invalid task descriptor");
  tasks_.push_back(t);
  events_.push_back(TraceEvent{TraceOp::kSubmit, id, 0});
  return id;
}

void Trace::taskwait() { events_.push_back(TraceEvent{TraceOp::kTaskwait, kInvalidTask, 0}); }

void Trace::taskwait_on(Addr addr) {
  events_.push_back(TraceEvent{TraceOp::kTaskwaitOn, kInvalidTask, addr & kAddrMask});
}

Tick Trace::total_work() const {
  Tick sum = 0;
  for (const auto& t : tasks_) sum += t.duration;
  return sum;
}

bool Trace::validate(std::string* error) const {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  std::vector<bool> seen(tasks_.size(), false);
  std::unordered_set<Addr> written;
  std::size_t submits = 0;
  for (const auto& ev : events_) {
    switch (ev.op) {
      case TraceOp::kSubmit: {
        if (ev.task >= tasks_.size()) return fail("submit of unknown task");
        if (seen[ev.task]) return fail("task submitted twice");
        seen[ev.task] = true;
        ++submits;
        const auto& t = tasks_[ev.task];
        if (!validate_task(t)) return fail("invalid task descriptor");
        for (const auto& p : t.params)
          if (is_write(p.dir)) written.insert(p.addr);
        break;
      }
      case TraceOp::kTaskwait:
        break;
      case TraceOp::kTaskwaitOn:
        if (written.find(ev.addr) == written.end())
          return fail("taskwait_on address never written");
        break;
    }
  }
  if (submits != tasks_.size()) return fail("not all tasks submitted");
  return true;
}

}  // namespace nexus
