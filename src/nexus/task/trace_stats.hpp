// Trace statistics: the columns of the paper's Table II.
#pragma once

#include <array>
#include <cstdint>

#include "nexus/task/trace.hpp"

namespace nexus {

struct TraceStats {
  std::uint64_t num_tasks = 0;
  Tick total_work = 0;
  Tick avg_task = 0;
  std::size_t min_params = 0;
  std::size_t max_params = 0;
  std::uint64_t num_taskwaits = 0;
  std::uint64_t num_taskwait_ons = 0;
  std::uint64_t distinct_addresses = 0;
  std::array<std::uint64_t, kMaxParams + 1> params_histogram{};  ///< [n] = tasks with n params

  [[nodiscard]] double total_work_ms() const { return to_ms(total_work); }
  [[nodiscard]] double avg_task_us() const { return to_us(avg_task); }
};

TraceStats compute_stats(const Trace& trace);

}  // namespace nexus
