// A trace is the master thread's recorded behaviour: an ordered stream of
// task submissions and barrier pragmas, plus the task descriptors themselves.
//
// This mirrors the paper's evaluation method (Section V-B): traces collected
// from benchmark runs are replayed against the simulated task managers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nexus/task/task.hpp"

namespace nexus {

enum class TraceOp : std::uint8_t {
  kSubmit = 0,      ///< submit task (payload: task id)
  kTaskwait = 1,    ///< #pragma omp taskwait — wait for all submitted tasks
  kTaskwaitOn = 2,  ///< #pragma omp taskwait on(addr) — wait for addr's producer
};

struct TraceEvent {
  TraceOp op = TraceOp::kSubmit;
  TaskId task = kInvalidTask;  ///< for kSubmit
  Addr addr = 0;               ///< for kTaskwaitOn
};

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  /// Append a task submission; assigns and returns the task id.
  TaskId submit(std::uint32_t fn, Tick duration, const ParamList& params);

  void taskwait();
  void taskwait_on(Addr addr);

  /// Patch a task's duration after submission. Generators build the trace
  /// structure first, then assign durations rescaled to an exact total.
  void set_duration(TaskId id, Tick d) {
    NEXUS_DCHECK(id < tasks_.size());
    NEXUS_ASSERT_MSG(d > 0, "duration must be positive");
    tasks_[id].duration = d;
  }

  [[nodiscard]] std::size_t num_tasks() const { return tasks_.size(); }
  [[nodiscard]] std::size_t num_events() const { return events_.size(); }
  [[nodiscard]] const TaskDescriptor& task(TaskId id) const {
    NEXUS_DCHECK(id < tasks_.size());
    return tasks_[id];
  }
  [[nodiscard]] const std::vector<TaskDescriptor>& tasks() const { return tasks_; }
  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }

  /// Total execution time over all tasks.
  [[nodiscard]] Tick total_work() const;

  /// Structural validation: every task valid, submit events reference
  /// existing tasks exactly once each, taskwait_on addresses were written by
  /// some previously submitted task.
  [[nodiscard]] bool validate(std::string* error = nullptr) const;

  void reserve(std::size_t n_tasks) {
    tasks_.reserve(n_tasks);
    events_.reserve(n_tasks + n_tasks / 16 + 8);
  }

 private:
  std::string name_;
  std::vector<TaskDescriptor> tasks_;
  std::vector<TraceEvent> events_;
};

}  // namespace nexus
