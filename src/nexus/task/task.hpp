// Task descriptors: the unit of work handed to a task manager.
//
// A task mirrors an OmpSs task instance: a function identifier, a list of
// parameters (48-bit memory addresses tagged in/out/inout — the memory
// footprint the pragma declares), and an execution duration taken from the
// workload trace. Descriptors are trivially copyable and compact because the
// hardware models stream them through bounded queues by value.
#pragma once

#include <cstdint>

#include "nexus/common/assert.hpp"
#include "nexus/common/inline_vec.hpp"
#include "nexus/sim/time.hpp"

namespace nexus {

using TaskId = std::uint32_t;
constexpr TaskId kInvalidTask = ~0u;

/// 48-bit memory addresses, as transmitted over the paper's PCIe-style
/// interface (two 32-bit packets per address).
using Addr = std::uint64_t;
constexpr Addr kAddrMask = (1ULL << 48) - 1;

/// Parameter direction from the OmpSs pragma.
enum class Dir : std::uint8_t {
  kIn = 0,    ///< input(...)  — read
  kOut = 1,   ///< output(...) — write
  kInOut = 2  ///< inout(...)  — read-modify-write
};

constexpr bool is_write(Dir d) { return d != Dir::kIn; }

/// One entry of a task's input/output list.
struct Param {
  Addr addr = 0;
  Dir dir = Dir::kIn;

  friend bool operator==(const Param&, const Param&) = default;
};

/// Maximum parameters per task. The paper's benchmarks use 1-6 (h264dec);
/// the hardware models also rely on this bound for their buffer sizing.
constexpr std::size_t kMaxParams = 6;

using ParamList = InlineVec<Param, kMaxParams>;

struct TaskDescriptor {
  TaskId id = kInvalidTask;
  std::uint32_t fn = 0;       ///< function-pointer identifier
  /// Submitting tenant (multi-tenant co-management; see hw/tenancy.hpp).
  /// 0 for single-tenant runs — the managers only consult it when a
  /// TenancyConfig is enabled, so legacy traces stay bit-identical.
  std::uint16_t tenant = 0;
  Tick duration = 0;          ///< execution time on a worker core
  ParamList params;

  [[nodiscard]] std::size_t num_params() const { return params.size(); }
};

/// Validate a descriptor: at least one parameter, masked addresses, and no
/// duplicate address within one task (OmpSs merges duplicate footprints; the
/// generators never emit them and the hardware models assume it).
bool validate_task(const TaskDescriptor& t);

}  // namespace nexus
