// Quickstart: build a small task graph by hand, run it through Nexus#, and
// compare against the no-overhead bound and the Nanos software-runtime
// model.
//
//   $ ./build/examples/quickstart
//
// The "application" is Listing 1 from the paper in miniature: a wavefront
// over a small macroblock matrix, where decode(x, y) reads its left and
// upper-right neighbours and updates its own block.
#include <cstdio>

#include "nexus/harness/experiment.hpp"
#include "nexus/task/trace.hpp"

using namespace nexus;

namespace {

// Build the Listing-1 wavefront: X[i][j] depends on X[i][j-1] (left) and
// X[i-1][j+1] (up-right).
Trace build_wavefront(int width, int height, Tick task_cost) {
  Trace tr("listing1-wavefront");
  auto block = [width](int i, int j) {
    return 0x10000 + static_cast<Addr>(i * width + j) * 0x40;
  };
  for (int i = 0; i < height; ++i) {
    for (int j = 0; j < width; ++j) {
      ParamList params;
      params.push_back({block(i, j), Dir::kInOut});             // inout(this)
      if (j > 0) params.push_back({block(i, j - 1), Dir::kIn}); // input(left)
      if (i > 0 && j + 1 < width)
        params.push_back({block(i - 1, j + 1), Dir::kIn});      // input(upright)
      tr.submit(/*fn=*/1, task_cost, params);
    }
  }
  tr.taskwait();
  return tr;
}

}  // namespace

int main() {
  // A 64x36 block matrix with 5 us tasks: fine-grained enough that the
  // manager's speed matters.
  const Trace trace = build_wavefront(64, 36, us(5));
  std::printf("workload: %zu wavefront tasks, %.2f ms total work\n",
              trace.num_tasks(), to_ms(trace.total_work()));

  const Tick baseline = harness::ideal_baseline(trace);

  for (const std::uint32_t cores : {8u, 32u, 128u}) {
    const Tick ideal = harness::run_once(trace, harness::ManagerSpec::ideal(), cores);
    const Tick sharp =
        harness::run_once(trace, harness::ManagerSpec::nexussharp(6), cores);
    const Tick nanos =
        harness::run_once(trace, harness::ManagerSpec::nanos_default(), cores);
    std::printf(
        "%3u cores: no-overhead %5.1fx | nexus# (6 TG) %5.1fx | nanos %5.1fx\n",
        cores, static_cast<double>(baseline) / static_cast<double>(ideal),
        static_cast<double>(baseline) / static_cast<double>(sharp),
        static_cast<double>(baseline) / static_cast<double>(nanos));
  }

  std::printf("\nThe hardware manager tracks the no-overhead bound while the\n"
              "software runtime's per-task costs cap the wavefront early.\n");
  return 0;
}
