// Gaussian elimination with partial pivoting (Fig. 6): the stress case for
// the kick-off lists. Each wave's pivot row is read by every remaining row,
// so a single table entry must absorb hundreds of waiters — the "dummy
// tasks/entries" chaining mechanism.
//
//   $ ./build/examples/gaussian_elimination [--n N] [--cores N]
//
// Prints the fan-out profile, the chaining the hardware performs, and the
// resulting speedups for Nexus++ vs Nexus# (1 and 2 task graphs).
#include <cstdio>

#include "nexus/common/flags.hpp"
#include "nexus/harness/experiment.hpp"
#include "nexus/hw/task_graph_table.hpp"
#include "nexus/workloads/workloads.hpp"

using namespace nexus;

int main(int argc, char** argv) {
  const Flags flags(argc, argv, {{"n", "matrix dimension (default 500)"},
                                 {"cores", "worker cores (default 64)"}});
  const int n = static_cast<int>(flags.get_int("n", 500));
  const auto cores = static_cast<std::uint32_t>(flags.get_int("cores", 64));

  const Trace trace = workloads::make_gaussian({.n = n});
  std::printf("gaussian-%d: %zu tasks ((n-1)(n+2)/2), first wave fans out to "
              "%d waiters on one row\n",
              n, trace.num_tasks(), n - 1);

  // Show the chaining directly on a task-graph table: one pivot row,
  // n-1 queued readers.
  {
    hw::TaskGraphTable table{hw::TableConfig{}};
    (void)table.insert(0x1000, 0, true);
    std::uint32_t max_hops = 0;
    for (TaskId id = 1; id < static_cast<TaskId>(n); ++id) {
      const auto r = table.insert(0x1000, id, false);
      if (r.kind != hw::TaskGraphTable::InsertKind::kQueued) break;
      max_hops = std::max(max_hops, r.chain_hops);
    }
    std::printf("kick-off list of the pivot row: %u physical entries "
                "(1 head + %u dummy/extension), deepest insert walks %u hops\n",
                table.entries_in_use(), table.entries_in_use() - 1, max_hops);
  }

  // The paper's Fig. 9 comparison, at this size.
  const harness::ManagerSpec npp = harness::ManagerSpec::nexuspp_default();
  const Tick base = harness::run_once(trace, npp, 1);
  struct Entry {
    const char* label;
    harness::ManagerSpec spec;
  };
  const Entry entries[] = {
      {"nexus++ @100MHz", npp},
      {"nexus# 1 TG @100MHz", harness::ManagerSpec::nexussharp(1, 100.0)},
      {"nexus# 2 TG @100MHz", harness::ManagerSpec::nexussharp(2, 100.0)},
  };
  std::printf("\n%-22s speedup on %u cores (baseline: 1-core Nexus++)\n",
              "manager", cores);
  for (const auto& e : entries) {
    const Tick makespan = harness::run_once(trace, e.spec, cores);
    std::printf("%-22s %6.2fx\n", e.label,
                static_cast<double>(base) / static_cast<double>(makespan));
  }
  std::printf("\nEvery wave funnels through one pivot-row entry, so extra task\n"
              "graphs help only marginally (the paper evaluates 2 TGs here) —\n"
              "but the unbounded waiter counts run correctly and efficiently.\n");
  return 0;
}
