// The paper's motivating scenario end-to-end: H.264 macroblock wavefront
// decoding at the finest granularity (one macroblock group per task),
// where grouping macroblocks to enlarge tasks is exactly the programmer
// burden Nexus# exists to remove.
//
//   $ ./build/examples/h264_wavefront [--group N] [--cores N]
//
// Generates the h264dec trace for the requested grouping, shows the
// taskwait_on-driven frame pipeline, and compares all four managers.
#include <cstdio>

#include "nexus/common/flags.hpp"
#include "nexus/harness/experiment.hpp"
#include "nexus/task/trace_stats.hpp"
#include "nexus/workloads/workloads.hpp"

using namespace nexus;

int main(int argc, char** argv) {
  const Flags flags(argc, argv,
                    {{"group", "macroblocks per task edge: 1, 2, 4 or 8"},
                     {"cores", "worker cores (default 32)"}});
  const int group = static_cast<int>(flags.get_int("group", 2));
  const auto cores = static_cast<std::uint32_t>(flags.get_int("cores", 32));

  const Trace trace = workloads::make_h264dec(workloads::h264_config(group));
  const TraceStats stats = compute_stats(trace);
  std::printf("h264dec-%dx%d-10f: %llu tasks, avg %.1f us, %llu taskwait_on "
              "(frame-buffer recycling)\n",
              group, group, static_cast<unsigned long long>(stats.num_tasks),
              stats.avg_task_us(),
              static_cast<unsigned long long>(stats.num_taskwait_ons));

  const Tick baseline = harness::ideal_baseline(trace);
  struct Entry {
    const char* label;
    harness::ManagerSpec spec;
  };
  const Entry entries[] = {
      {"no-overhead", harness::ManagerSpec::ideal()},
      {"nanos (software RTS)", harness::ManagerSpec::nanos_default()},
      {"nexus++ (central, no taskwait_on)", harness::ManagerSpec::nexuspp_default()},
      {"nexus# (6 TG @ 55.56 MHz)", harness::ManagerSpec::nexussharp(6)},
  };
  std::printf("\n%-36s speedup on %u cores\n", "manager", cores);
  for (const auto& e : entries) {
    const Tick makespan = harness::run_once(trace, e.spec, cores);
    std::printf("%-36s %6.2fx  (%.1f ms)\n", e.label,
                static_cast<double>(baseline) / static_cast<double>(makespan),
                to_ms(makespan));
  }

  std::printf("\nNexus++ cannot accelerate the `taskwait on` pragma, so every\n"
              "frame boundary becomes a full barrier; Nexus# pipelines frames\n"
              "and manages even 1x1 groups without programmer-side grouping.\n");
  return 0;
}
